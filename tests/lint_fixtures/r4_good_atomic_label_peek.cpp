// otmlint-fixture: src/core/fixture.cpp
// R4 good twin: observing the label counter (loads) and comparing labels is
// fine anywhere; only mutation mints new labels.
#include <atomic>
#include <cstdint>

namespace otm {

struct AllocatorView {
  std::atomic<std::uint64_t> next_label_{0};

  std::uint64_t peek() const {
    // Monotone counter; relaxed read is a diagnostic snapshot only.
    return next_label_.load(std::memory_order_relaxed);
  }
};

bool older(std::uint64_t a, std::uint64_t b) { return a < b; }

}  // namespace otm
