// Oracle property tests: for ANY stream of posted receives and incoming
// messages — with or without wildcards, across bin counts, block sizes,
// optimization toggles and execution schedules — the optimistic engine must
// produce the IDENTICAL message->receive pairing as the sequential
// two-queue list matcher. This is exactly MPI constraints C1 + C2.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "baseline/list_matcher.hpp"
#include "core/engine.hpp"
#include "core/sharded_engine.hpp"
#include "util/rng.hpp"

namespace otm {
namespace {

enum class Exec { kLockstep, kSequential, kThreaded };

struct OracleParam {
  std::size_t bins;
  unsigned block_size;
  double p_wildcard;   ///< probability a posted receive uses each wildcard
  int key_space;       ///< sources/tags drawn from [0, key_space)
  bool fast_path;
  bool early_booking;
  bool lazy_removal;
  Exec exec;
  std::uint64_t seed;
  int ops;

  friend std::ostream& operator<<(std::ostream& os, const OracleParam& p) {
    os << "bins" << p.bins << "_blk" << p.block_size << "_wild"
       << static_cast<int>(p.p_wildcard * 100) << "_keys" << p.key_space
       << (p.fast_path ? "_fp" : "_nofp") << (p.early_booking ? "_eb" : "_noeb")
       << (p.lazy_removal ? "_lazy" : "_eager") << "_exec"
       << static_cast<int>(p.exec) << "_seed" << p.seed;
    return os;
  }
};

class OracleProperty : public ::testing::TestWithParam<OracleParam> {};

TEST_P(OracleProperty, PairingMatchesSequentialSemantics) {
  const OracleParam& p = GetParam();

  MatchConfig cfg;
  cfg.bins = p.bins;
  cfg.block_size = p.block_size;
  cfg.max_receives = 4096;
  cfg.max_unexpected = 4096;
  cfg.enable_fast_path = p.fast_path;
  cfg.early_booking_check = p.early_booking;
  cfg.lazy_removal = p.lazy_removal;

  MatchEngine engine(cfg);
  ListMatcher oracle;
  LockstepExecutor lockstep;
  SequentialExecutor sequential;
  ThreadedExecutor threaded;
  BlockExecutor& ex = p.exec == Exec::kLockstep
                          ? static_cast<BlockExecutor&>(lockstep)
                          : p.exec == Exec::kSequential
                                ? static_cast<BlockExecutor&>(sequential)
                                : static_cast<BlockExecutor&>(threaded);

  Xoshiro256 rng(p.seed);
  std::uint64_t next_msg = 0;
  std::uint64_t next_recv = 0;
  std::vector<IncomingMessage> pending;

  // Flush buffered arrivals through both matchers in identical order and
  // compare per-message outcomes.
  auto flush = [&] {
    if (pending.empty()) return;
    const auto outs = engine.process(pending, ex);
    ASSERT_EQ(outs.size(), pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const auto oracle_match = oracle.arrive(pending[i].env, pending[i].wire_seq);
      if (oracle_match.has_value()) {
        ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kMatched)
            << "msg " << pending[i].wire_seq << " env "
            << to_string(pending[i].env);
        ASSERT_EQ(outs[i].match.receive_cookie, *oracle_match)
            << "msg " << pending[i].wire_seq << " paired with wrong receive";
      } else {
        ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kUnexpected)
            << "msg " << pending[i].wire_seq << " env "
            << to_string(pending[i].env);
      }
    }
    pending.clear();
  };

  for (int op = 0; op < p.ops; ++op) {
    const Rank src = static_cast<Rank>(rng.below(static_cast<std::uint64_t>(p.key_space)));
    const Tag tag = static_cast<Tag>(rng.below(static_cast<std::uint64_t>(p.key_space)));

    if (rng.chance(0.5)) {
      // Post a receive. Engine semantics: the receive is visible to all
      // not-yet-processed messages, so flush buffered arrivals first to
      // keep the oracle's event order identical.
      flush();
      MatchSpec spec{src, tag, 0};
      if (rng.chance(p.p_wildcard)) spec.source = kAnySource;
      if (rng.chance(p.p_wildcard)) spec.tag = kAnyTag;

      const std::uint64_t id = next_recv++;
      const auto engine_post = engine.post_receive(spec, 0, 0, id);
      ASSERT_NE(engine_post.kind, PostOutcome::Kind::kFallback);
      const auto oracle_post = oracle.post(spec, id);
      if (oracle_post.has_value()) {
        ASSERT_EQ(engine_post.kind, PostOutcome::Kind::kMatchedUnexpected)
            << "post " << id << " spec " << to_string(spec);
        ASSERT_EQ(engine_post.message.wire_seq, *oracle_post);
      } else {
        ASSERT_EQ(engine_post.kind, PostOutcome::Kind::kPending);
      }
    } else {
      // Bursty arrivals: sometimes several messages from the same sender
      // and tag (the paper's compatible-sequence scenario).
      const std::uint64_t burst = 1 + rng.below(rng.chance(0.3) ? 6 : 1);
      for (std::uint64_t b = 0; b < burst; ++b) {
        IncomingMessage m = IncomingMessage::make(src, tag, 0);
        m.wire_seq = next_msg++;
        pending.push_back(m);
      }
      if (rng.chance(0.4)) flush();
    }
  }
  flush();

  EXPECT_EQ(engine.receives().posted_count(), oracle.posted_size());
  EXPECT_EQ(engine.unexpected().size(), oracle.unexpected_size());
}

std::vector<OracleParam> make_params() {
  std::vector<OracleParam> out;
  // Dimension sweeps around a base configuration (lockstep = deterministic
  // maximum-conflict schedule).
  const OracleParam base{16, 4, 0.15, 3, true, true, true, Exec::kLockstep, 1, 1500};

  for (const std::size_t bins : {1u, 2u, 16u, 128u}) {
    OracleParam p = base;
    p.bins = bins;
    p.seed = 100 + bins;
    out.push_back(p);
  }
  for (const unsigned blk : {1u, 2u, 7u, 16u, 32u}) {
    OracleParam p = base;
    p.block_size = blk;
    p.seed = 200 + blk;
    out.push_back(p);
  }
  for (const double wild : {0.0, 0.05, 0.4, 1.0}) {
    OracleParam p = base;
    p.p_wildcard = wild;
    p.seed = 300 + static_cast<std::uint64_t>(wild * 100);
    out.push_back(p);
  }
  for (const int keys : {1, 2, 8, 64}) {
    // keys=1: every message/receive identical -> maximal conflicts.
    OracleParam p = base;
    p.key_space = keys;
    p.seed = 400 + static_cast<std::uint64_t>(keys);
    out.push_back(p);
  }
  // Optimization toggles (including all-off).
  for (int mask = 0; mask < 8; ++mask) {
    OracleParam p = base;
    p.fast_path = (mask & 1) != 0;
    p.early_booking = (mask & 2) != 0;
    p.lazy_removal = (mask & 4) != 0;
    p.seed = 500 + static_cast<std::uint64_t>(mask);
    out.push_back(p);
  }
  // Execution schedules, incl. racy threaded runs with several seeds.
  for (const Exec e : {Exec::kSequential, Exec::kThreaded}) {
    for (const std::uint64_t s : {7u, 8u, 9u}) {
      OracleParam p = base;
      p.exec = e;
      p.seed = s;
      p.ops = e == Exec::kThreaded ? 400 : 1500;
      p.block_size = 8;
      out.push_back(p);
    }
  }
  // Conflict-heavy threaded case: single key, big blocks.
  {
    OracleParam p = base;
    p.exec = Exec::kThreaded;
    p.key_space = 1;
    p.block_size = 8;
    p.ops = 300;
    p.seed = 42;
    out.push_back(p);
  }
  return out;
}

std::string param_name(const ::testing::TestParamInfo<OracleParam>& info) {
  std::ostringstream ss;
  ss << info.param;
  std::string s = ss.str();
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleProperty, ::testing::ValuesIn(make_params()),
                         param_name);

// ---- Three-way differential -----------------------------------------------
//
// ThreadedExecutor vs LockstepExecutor vs the sequential list-matcher
// oracle over the SAME randomized wildcard-heavy stream on the slab-backed
// stores. The two engine replays and the oracle replay each produce an
// outcome log (per-post pairing, per-message pairing, final depths); all
// three logs must be identical. A divergence prints the failing seed in
// the OTM_CHAOS_SEED re-run form (same override pattern as chaos_test).

struct DiffOp {
  bool is_post = false;
  MatchSpec spec{};              ///< when is_post
  std::vector<Envelope> burst;   ///< arrivals; wire_seq assigned at replay
  bool flush_after = false;
};

std::vector<DiffOp> make_wildcard_stream(std::uint64_t seed, int ops,
                                         double p_wild, int keys) {
  Xoshiro256 rng(seed);
  std::vector<DiffOp> out;
  for (int i = 0; i < ops; ++i) {
    const Rank src = static_cast<Rank>(rng.below(static_cast<std::uint64_t>(keys)));
    const Tag tag = static_cast<Tag>(rng.below(static_cast<std::uint64_t>(keys)));
    DiffOp op;
    if (rng.chance(0.5)) {
      op.is_post = true;
      op.spec = {src, tag, 0};
      if (rng.chance(p_wild)) op.spec.source = kAnySource;
      if (rng.chance(p_wild)) op.spec.tag = kAnyTag;
    } else {
      const std::uint64_t burst = 1 + rng.below(rng.chance(0.3) ? 6 : 1);
      for (std::uint64_t b = 0; b < burst; ++b)
        op.burst.push_back({src, tag, 0});
      op.flush_after = rng.chance(0.4);
    }
    out.push_back(std::move(op));
  }
  return out;
}

// Outcome log encoding: matched message -> receive cookie, unexpected -> -1,
// post that drained an unexpected message -> its wire_seq, pending -> -2;
// final posted/unexpected depths appended.
std::vector<std::int64_t> replay_engine(const std::vector<DiffOp>& stream,
                                        BlockExecutor& ex) {
  MatchConfig cfg;
  cfg.bins = 16;
  cfg.block_size = 8;
  cfg.max_receives = 4096;
  cfg.max_unexpected = 4096;
  MatchEngine engine(cfg);
  std::vector<std::int64_t> log;
  std::vector<IncomingMessage> pending;
  std::uint64_t next_msg = 0;
  std::uint64_t next_recv = 0;
  auto flush = [&] {
    if (pending.empty()) return;
    const auto outs = engine.process(pending, ex);
    for (const auto& o : outs)
      log.push_back(o.kind == ArrivalOutcome::Kind::kMatched
                        ? static_cast<std::int64_t>(o.match.receive_cookie)
                        : -1);
    pending.clear();
  };
  for (const DiffOp& op : stream) {
    if (op.is_post) {
      flush();  // posts are visible to all not-yet-processed arrivals
      const auto p = engine.post_receive(op.spec, 0, 0, next_recv++);
      log.push_back(p.kind == PostOutcome::Kind::kMatchedUnexpected
                        ? static_cast<std::int64_t>(p.message.wire_seq)
                        : -2);
    } else {
      for (const Envelope& env : op.burst) {
        IncomingMessage m = IncomingMessage::make(env.source, env.tag, env.comm);
        m.wire_seq = next_msg++;
        pending.push_back(m);
      }
      if (op.flush_after) flush();
    }
  }
  flush();
  log.push_back(static_cast<std::int64_t>(engine.receives().posted_count()));
  log.push_back(static_cast<std::int64_t>(engine.unexpected().size()));
  return log;
}

std::vector<std::int64_t> replay_oracle(const std::vector<DiffOp>& stream) {
  ListMatcher oracle;
  std::vector<std::int64_t> log;
  std::vector<Envelope> pending;
  std::uint64_t next_msg = 0;
  std::uint64_t next_recv = 0;
  auto flush = [&] {
    for (const Envelope& env : pending) {
      const auto m = oracle.arrive(env, next_msg++);
      log.push_back(m.has_value() ? static_cast<std::int64_t>(*m) : -1);
    }
    pending.clear();
  };
  for (const DiffOp& op : stream) {
    if (op.is_post) {
      flush();
      const auto p = oracle.post(op.spec, next_recv++);
      log.push_back(p.has_value() ? static_cast<std::int64_t>(*p) : -2);
    } else {
      pending.insert(pending.end(), op.burst.begin(), op.burst.end());
      if (op.flush_after) flush();
    }
  }
  flush();
  log.push_back(static_cast<std::int64_t>(oracle.posted_size()));
  log.push_back(static_cast<std::int64_t>(oracle.unexpected_size()));
  return log;
}

/// ANY_SOURCE-biased stream whose specific sources span the 2- and 4-shard
/// routing masks: wildcard-source posts replicate into every shard, the
/// rest pin to distinct shards, and bursts from distinct sources land in
/// the same global block — the cross-shard claim traffic the sharded
/// battery is after.
std::vector<DiffOp> make_cross_shard_stream(std::uint64_t seed, int ops,
                                            int keys) {
  Xoshiro256 rng(seed);
  std::vector<DiffOp> out;
  for (int i = 0; i < ops; ++i) {
    DiffOp op;
    if (rng.chance(0.5)) {
      op.is_post = true;
      op.spec = {static_cast<Rank>(rng.below(static_cast<std::uint64_t>(keys))),
                 static_cast<Tag>(rng.below(3)), 0};
      if (rng.chance(0.6)) op.spec.source = kAnySource;  // the bias
      if (rng.chance(0.15)) op.spec.tag = kAnyTag;
    } else {
      // Burst across sources so one block fans out to several shards.
      const std::uint64_t burst = 1 + rng.below(rng.chance(0.4) ? 6 : 2);
      for (std::uint64_t b = 0; b < burst; ++b)
        op.burst.push_back(
            {static_cast<Rank>(rng.below(static_cast<std::uint64_t>(keys))),
             static_cast<Tag>(rng.below(3)), 0});
      op.flush_after = rng.chance(0.4);
    }
    out.push_back(std::move(op));
  }
  return out;
}

/// replay_engine's twin on a ShardedEngine (identical log encoding);
/// `threaded_shards` runs each shard's matching phase on its own thread.
std::vector<std::int64_t> replay_sharded(const std::vector<DiffOp>& stream,
                                         unsigned shards,
                                         bool threaded_shards) {
  MatchConfig cfg;
  cfg.bins = 16;
  cfg.block_size = 8;
  cfg.max_receives = 4096;
  cfg.max_unexpected = 4096;
  cfg.shards = shards;
  ShardedEngine engine(cfg);
  engine.set_threaded(threaded_shards);
  LockstepExecutor ex;
  std::vector<std::int64_t> log;
  std::vector<IncomingMessage> pending;
  std::uint64_t next_msg = 0;
  std::uint64_t next_recv = 0;
  auto flush = [&] {
    if (pending.empty()) return;
    const auto outs = engine.process(pending, ex);
    for (const auto& o : outs)
      log.push_back(o.kind == ArrivalOutcome::Kind::kMatched
                        ? static_cast<std::int64_t>(o.match.receive_cookie)
                        : -1);
    pending.clear();
  };
  for (const DiffOp& op : stream) {
    if (op.is_post) {
      flush();
      const auto p = engine.post_receive(op.spec, 0, 0, next_recv++);
      log.push_back(p.kind == PostOutcome::Kind::kMatchedUnexpected
                        ? static_cast<std::int64_t>(p.message.wire_seq)
                        : -2);
    } else {
      for (const Envelope& env : op.burst) {
        IncomingMessage m = IncomingMessage::make(env.source, env.tag, env.comm);
        m.wire_seq = next_msg++;
        pending.push_back(m);
      }
      if (op.flush_after) flush();
    }
  }
  flush();
  log.push_back(static_cast<std::int64_t>(engine.posted_count()));
  log.push_back(static_cast<std::int64_t>(engine.unexpected_total()));
  return log;
}

// ---- Sharded differential battery -----------------------------------------
//
// Four ways at every seed: sequential oracle, single lockstep engine,
// sharded engine at K in {1, 2, 4} with inline shard execution, and the
// same sharded engines with one thread per shard. Every log must be
// identical — the cross-shard claim protocol may repair blocks internally,
// but externally the pairing must equal sequential semantics (C1 + C2).
TEST(ShardedDifferential, CrossShardClaimWorkloads) {
  std::uint64_t base_seed = 0x5A4D;
  if (const char* s = std::getenv("OTM_CHAOS_SEED"))
    base_seed = std::strtoull(s, nullptr, 10);
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(round);
    SCOPED_TRACE("failing seed " + std::to_string(seed) +
                 "; re-run just it with OTM_CHAOS_SEED=" +
                 std::to_string(seed));
    const auto stream = make_cross_shard_stream(seed, 400, /*keys=*/6);
    const auto oracle_log = replay_oracle(stream);
    LockstepExecutor lockstep;
    const auto single_log = replay_engine(stream, lockstep);
    ASSERT_EQ(single_log, oracle_log)
        << "single engine diverged from the sequential oracle";
    for (const unsigned shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const auto inline_log = replay_sharded(stream, shards, false);
      ASSERT_EQ(inline_log, oracle_log)
          << "sharded engine (inline) diverged from the sequential oracle";
      const auto threaded_log = replay_sharded(stream, shards, true);
      ASSERT_EQ(threaded_log, oracle_log)
          << "sharded engine (threaded shards) diverged from the oracle";
    }
  }
}

TEST(ThreeWayDifferential, WildcardHeavyRandomizedWorkloads) {
  std::uint64_t base_seed = 0xD1FF;
  if (const char* s = std::getenv("OTM_CHAOS_SEED"))
    base_seed = std::strtoull(s, nullptr, 10);
  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(round);
    SCOPED_TRACE("failing seed " + std::to_string(seed) +
                 "; re-run just it with OTM_CHAOS_SEED=" +
                 std::to_string(seed));
    const auto stream = make_wildcard_stream(seed, 500, /*p_wild=*/0.5,
                                             /*keys=*/3);
    const auto oracle_log = replay_oracle(stream);
    LockstepExecutor lockstep;
    ThreadedExecutor threaded;
    const auto lockstep_log = replay_engine(stream, lockstep);
    ASSERT_EQ(lockstep_log, oracle_log)
        << "lockstep engine diverged from the sequential oracle";
    const auto threaded_log = replay_engine(stream, threaded);
    ASSERT_EQ(threaded_log, oracle_log)
        << "threaded engine diverged from the sequential oracle";
  }
}

}  // namespace
}  // namespace otm
