# Empty dependencies file for dumpi_robustness_test.
# This may be replaced when dependencies are built.
