
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/metrics.cpp" "src/obs/CMakeFiles/otm_obs.dir/metrics.cpp.o" "gcc" "src/obs/CMakeFiles/otm_obs.dir/metrics.cpp.o.d"
  "/root/repo/src/obs/observability.cpp" "src/obs/CMakeFiles/otm_obs.dir/observability.cpp.o" "gcc" "src/obs/CMakeFiles/otm_obs.dir/observability.cpp.o.d"
  "/root/repo/src/obs/sampler.cpp" "src/obs/CMakeFiles/otm_obs.dir/sampler.cpp.o" "gcc" "src/obs/CMakeFiles/otm_obs.dir/sampler.cpp.o.d"
  "/root/repo/src/obs/tracer.cpp" "src/obs/CMakeFiles/otm_obs.dir/tracer.cpp.o" "gcc" "src/obs/CMakeFiles/otm_obs.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/otm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
