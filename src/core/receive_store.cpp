#include "core/receive_store.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace otm {

ReceiveStore::ReceiveStore(const MatchConfig& cfg)
    : cfg_(cfg), table_(cfg.max_receives) {
  OTM_ASSERT_MSG(cfg.valid(), "invalid MatchConfig");
  bin_mask_ = cfg_.bins - 1;
  for (unsigned idx = 0; idx < kNumIndexes; ++idx) {
    const std::size_t n = (idx == static_cast<unsigned>(WildcardClass::kBothWild))
                              ? 1
                              : cfg_.bins;
    bins_[idx] = std::vector<Bin>(n);
    for (Bin& bin : bins_[idx]) bin.hot.bind(&arena_);
  }
}

std::pair<unsigned, std::size_t> ReceiveStore::route_spec(
    const MatchSpec& spec) const noexcept {
  const auto wc = spec.wildcard_class();
  const auto idx = static_cast<unsigned>(wc);
  std::size_t bin = 0;
  switch (wc) {
    case WildcardClass::kNone:
      bin = hash_src_tag(spec.source, spec.tag) & bin_mask_;
      break;
    case WildcardClass::kSourceWild:
      bin = hash_tag(spec.tag) & bin_mask_;
      break;
    case WildcardClass::kTagWild:
      bin = hash_src(spec.source) & bin_mask_;
      break;
    case WildcardClass::kBothWild:
      bin = 0;
      break;
  }
  return {idx, bin};
}

std::size_t ReceiveStore::probe_bin(unsigned idx, const IncomingMessage& msg,
                                    ThreadClock& clock) const noexcept {
  const bool inlined = cfg_.use_inline_hashes && msg.has_inline_hashes;
  std::uint64_t h = 0;
  switch (static_cast<WildcardClass>(idx)) {
    case WildcardClass::kNone:
      h = inlined ? msg.hashes.src_tag : hash_src_tag(msg.env.source, msg.env.tag);
      break;
    case WildcardClass::kSourceWild:
      h = inlined ? msg.hashes.tag : hash_tag(msg.env.tag);
      break;
    case WildcardClass::kTagWild:
      h = inlined ? msg.hashes.src : hash_src(msg.env.source);
      break;
    case WildcardClass::kBothWild:
      return 0;
  }
  if (!inlined) OTM_CHARGE(clock, hash_compute);
  return h & bin_mask_;
}

ReceiveStore::PostResult ReceiveStore::post(const MatchSpec& spec,
                                            std::uint64_t buffer_addr,
                                            std::uint32_t buffer_capacity,
                                            std::uint64_t cookie) {
  // The single-engine entry point stamps from this store's own allocator;
  // post_labeled() advances next_label_ past the stamp, so the combined
  // label stream stays strictly monotone (constraint C1, otmlint R4).
  return post_labeled(spec, buffer_addr, buffer_capacity, cookie, next_label_,
                      kInvalidSlot);
}

ReceiveStore::PostResult ReceiveStore::post_labeled(const MatchSpec& spec,
                                                    std::uint64_t buffer_addr,
                                                    std::uint32_t buffer_capacity,
                                                    std::uint64_t cookie,
                                                    std::uint64_t label,
                                                    std::uint32_t claim_idx) {
  OTM_ASSERT_MSG(label >= next_label_,
                 "external posting label below this store's high-water mark");
  std::uint32_t slot = table_.allocate();
  if (slot == kInvalidSlot && cfg_.lazy_removal) {
    // Lazily-removed entries can pin every slot; reclaim and retry before
    // declaring the table full (Sec. IV-E fallback).
    if (cleanup_all() > 0) slot = table_.allocate();
  }
  if (slot == kInvalidSlot) return {kInvalidSlot, /*fallback=*/true};
  OTM_ASSERT_MSG(!cfg_.assume_no_wildcards ||
                     spec.wildcard_class() == WildcardClass::kNone,
                 "wildcard receive posted on a no-wildcard engine");

  // Compatible-sequence id: bumped whenever the new receive differs from the
  // previously posted one (Sec. III-D-3a). The very first receive starts a
  // sequence of its own.
  if (!have_last_spec_ || !spec.compatible_with(last_spec_)) ++next_seq_;
  have_last_spec_ = true;
  last_spec_ = spec;

  ReceiveDescriptor& d = table_[slot];
  d.spec = spec;
  d.label = label;
  d.seq_id = next_seq_;
  d.wclass = spec.wildcard_class();
  d.buffer_addr = buffer_addr;
  d.buffer_capacity = buffer_capacity;
  d.cookie = cookie;
  d.claim_idx = claim_idx;
  // release: publishes the descriptor fields written above to any matching
  // thread whose acquire load in posted()/consumed() observes kPosted.
  d.state.store(ReceiveState::kPosted, std::memory_order_release);

  const auto [idx, bin_id] = route_spec(spec);
  Bin& bin = bins_[idx][bin_id];
  SpinGuard g(bin.lock);
  // Lazy removal amortizes cleanup into the (engine-serialized) insert
  // path: consumed entries encountered here are compacted away now.
  if (cfg_.lazy_removal && !bin.hot.empty())
    lazy_removals_ += compact_bin_locked(idx, bin);
  HotEntry e;
  e.spec = spec;
  e.slot = slot;
  e.label = label;
  e.seq_id = next_seq_;
  bin.hot.push_back(e);
  ++index_count_[idx];
  next_label_ = label + 1;
  return {slot, /*fallback=*/false};
}

void ReceiveStore::unconsume(std::uint32_t slot) {
  ReceiveDescriptor& d = table_[slot];
  OTM_ASSERT_MSG(d.consumed(), "unconsume of a non-consumed receive");
  // release: republishes the (unchanged) descriptor fields; the repair
  // re-match that follows runs engine-serialized, but a later block's
  // acquire load in posted() must still pair with a release store.
  d.state.store(ReceiveState::kPosted, std::memory_order_release);
}

// otmlint: hot
std::uint32_t ReceiveStore::scan_bin(unsigned idx, std::size_t bin_id,
                                     const Envelope& env, std::uint32_t gen,
                                     unsigned thread_id, bool early_skip,
                                     ThreadClock& clock, SearchLocal& local,
                                     std::uint32_t& pos) const {
  OTM_CHARGE(clock, bin_lookup);
  const Bin& bin = bins_[idx][bin_id];
  const std::uint32_t n = bin.hot.size();
  std::uint64_t walked = 0;
  std::uint32_t found = kInvalidSlot;
  for (std::uint32_t i = 0; i < n; ++i) {
    const HotEntry& e = bin.hot[i];
    ++local.attempts;
    ++walked;
    OTM_CHARGE(clock, hot_scan_step);
    // Key compare on the packed entry; the cold descriptor is loaded only
    // on a match (liveness + booking live there).
    if (!e.spec.matches(env)) continue;
    const ReceiveDescriptor& d = table_[e.slot];
    if (d.consumed()) continue;
    if (early_skip && d.booking.booked_by_lower(gen, thread_id)) {
      // Early booking check (Sec. III-D): a lower-id thread will win this
      // receive; skip it instead of conflicting later.
      ++local.early_skips;
      OTM_CHARGE(clock, conflict_check);
      continue;
    }
    found = e.slot;
    pos = i;
    break;
  }
  if (walked > local.max_single_chain) local.max_single_chain = walked;
  return found;
}

// otmlint: hot
std::uint32_t ReceiveStore::search(const IncomingMessage& msg, std::uint32_t gen,
                                   unsigned thread_id, bool early_skip,
                                   ThreadClock& clock, SearchLocal& local,
                                   Cursor* hit) const {
  std::uint32_t best = kInvalidSlot;
  std::uint64_t best_label = 0;
  // Sec. VII: with the no-wildcard assertion only the hash(src,tag) index
  // can hold receives, so the other three probes are skipped entirely.
  const unsigned num_indexes = cfg_.assume_no_wildcards ? 1 : kNumIndexes;
  for (unsigned idx = 0; idx < num_indexes; ++idx) {
    // Occupancy skip: an index with no entries at all cannot produce a
    // candidate. The four counters share a cache line, so the check costs
    // one packed-word examine instead of a hash + bin probe. (The static
    // no-wildcard hint above skips even this — the probe loop is compiled
    // to a single index.)
    if (index_count_[idx] == 0) {
      OTM_CHARGE(clock, hot_scan_step);
      continue;
    }
    ++local.index_searches;
    const std::size_t bin_id = probe_bin(idx, msg, clock);
    std::uint32_t pos = 0;
    const std::uint32_t found = scan_bin(idx, bin_id, msg.env, gen, thread_id,
                                         early_skip, clock, local, pos);
    if (found == kInvalidSlot) continue;
    const std::uint64_t label = bins_[idx][bin_id].hot[pos].label;
    OTM_CHARGE(clock, label_compare);
    if (best == kInvalidSlot || label < best_label) {
      best = found;
      best_label = label;
      if (hit != nullptr)
        *hit = {idx, static_cast<std::uint32_t>(bin_id), pos};
    }
  }
  return best;
}

// otmlint: hot
std::uint32_t ReceiveStore::fast_path_candidate(const Cursor& from,
                                                const Envelope& env,
                                                unsigned shift,
                                                ThreadClock& clock,
                                                SearchLocal& local) const {
  const Bin& bin = bins_[from.idx][from.bin];
  const std::uint32_t n = bin.hot.size();
  OTM_ASSERT(from.pos < n);
  const std::uint32_t base_seq = bin.hot[from.pos].seq_id;
  unsigned advanced = 0;
  for (std::uint32_t i = from.pos + 1; i < n; ++i) {
    const HotEntry& e = bin.hot[i];
    ++local.attempts;
    OTM_CHARGE(clock, fast_path_step);
    if (!e.spec.matches(env)) continue;  // hash-collision interposer
    if (e.seq_id != base_seq) return kInvalidSlot;  // sequence broken (C1)
    // Same-sequence entries after the first live one are live at block
    // start; entries consumed during this block belong to lower-id threads
    // and are counted toward the shift, so no consumed-skip here.
    if (++advanced == shift) return e.slot;
  }
  return kInvalidSlot;  // sequence exhausted
}

void ReceiveStore::charge_eager_removal(std::uint32_t slot, ThreadClock& clock) {
  if (!clock.enabled()) return;
  const auto [idx, bin_id] = route_spec(table_[slot].spec);
  std::atomic<std::uint64_t>& removal = bins_[idx][bin_id].removal_clock;
  const std::uint64_t cost =
      clock.costs()->lock_acquire + clock.costs()->unlink;
  // relaxed: only seeds the CAS loop; the CAS itself re-reads on failure.
  std::uint64_t cur = removal.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t start = std::max(clock.cycles(), cur);
    const std::uint64_t done = start + cost;
    // acq_rel on success: the modeled remove-lock clock is a serialization
    // point — each consumer must observe the previous holder's extension
    // and publish its own. relaxed on failure: the retry recomputes.
    if (removal.compare_exchange_weak(cur, done, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      clock.set(done);
      return;
    }
  }
}

void ReceiveStore::unlink_and_release(std::uint32_t slot) {
  ReceiveDescriptor& d = table_[slot];
  OTM_ASSERT_MSG(d.consumed(), "unlink of a non-consumed receive");
  const auto [idx, bin_id] = route_spec(d.spec);
  Bin& bin = bins_[idx][bin_id];
  SpinGuard g(bin.lock);
  for (std::uint32_t i = 0; i < bin.hot.size(); ++i) {
    if (bin.hot[i].slot != slot) continue;
    bin.hot.erase_at(i);
    --index_count_[idx];
    table_.release(slot);
    return;
  }
  OTM_ASSERT_MSG(false, "consumed receive not found in its bin array");
}

std::size_t ReceiveStore::cleanup_bin(unsigned idx, Bin& bin) {
  SpinGuard g(bin.lock);
  return compact_bin_locked(idx, bin);
}

std::size_t ReceiveStore::compact_bin_locked(unsigned idx, Bin& bin) {
  const std::uint32_t before = bin.hot.size();
  std::uint32_t w = 0;
  for (std::uint32_t r = 0; r < before; ++r) {
    const HotEntry& e = bin.hot[r];
    if (table_[e.slot].consumed()) {
      table_.release(e.slot);
    } else {
      bin.hot[w++] = e;
    }
  }
  bin.hot.truncate(w);
  index_count_[idx] -= before - w;
  return before - w;
}

std::optional<std::uint64_t> ReceiveStore::cancel_by_cookie(
    std::uint64_t cookie) {
  for (unsigned idx = 0; idx < kNumIndexes; ++idx) {
    for (Bin& bin : bins_[idx]) {
      for (std::uint32_t i = 0; i < bin.hot.size(); ++i) {
        ReceiveDescriptor& d = table_[bin.hot[i].slot];
        if (d.cookie != cookie || !d.posted()) continue;
        const std::uint64_t buffer_addr = d.buffer_addr;
        const bool ok = d.try_consume();
        OTM_ASSERT_MSG(ok, "cancel raced a concurrent match");
        const std::uint32_t slot = bin.hot[i].slot;
        {
          SpinGuard g(bin.lock);
          bin.hot.erase_at(i);
          --index_count_[idx];
        }
        table_.release(slot);
        // A cancelled receive may have ended a compatible sequence; the
        // next post must not extend it across the gap.
        have_last_spec_ = false;
        return buffer_addr;
      }
    }
  }
  return std::nullopt;
}

std::size_t ReceiveStore::cleanup_all() {
  std::size_t reclaimed = 0;
  for (unsigned idx = 0; idx < kNumIndexes; ++idx)
    for (Bin& bin : bins_[idx]) reclaimed += cleanup_bin(idx, bin);
  lazy_removals_ += reclaimed;
  return reclaimed;
}

std::size_t ReceiveStore::posted_count() const noexcept {
  std::size_t n = 0;
  for (unsigned idx = 0; idx < kNumIndexes; ++idx) {
    for (const Bin& bin : bins_[idx]) {
      for (const HotEntry& e : bin.hot)
        if (table_[e.slot].posted()) ++n;
    }
  }
  return n;
}

ReceiveStore::DepthMetrics ReceiveStore::depth_metrics() const {
  DepthMetrics m;
  std::size_t nonempty = 0;
  std::size_t total_bins = 0;
  std::size_t nonempty_sum = 0;
  for (unsigned idx = 0; idx < kNumIndexes; ++idx) {
    for (const Bin& bin : bins_[idx]) {
      ++total_bins;
      std::size_t len = 0;
      for (const HotEntry& e : bin.hot)
        if (table_[e.slot].posted()) ++len;
      if (len > 0) {
        ++nonempty;
        nonempty_sum += len;
      }
      m.live_entries += len;
      m.max_chain = std::max(m.max_chain, len);
    }
  }
  m.avg_nonempty_chain =
      nonempty == 0 ? 0.0
                    : static_cast<double>(nonempty_sum) / static_cast<double>(nonempty);
  m.empty_bin_fraction =
      total_bins == 0
          ? 0.0
          : static_cast<double>(total_bins - nonempty) / static_cast<double>(total_bins);
  return m;
}

}  // namespace otm
