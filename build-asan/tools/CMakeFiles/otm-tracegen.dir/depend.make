# Empty dependencies file for otm-tracegen.
# This may be replaced when dependencies are built.
