// otmlint-fixture: src/proto/fixture.cpp
// R9 bad twin: a default: label in a switch over a protocol state enum.
// When a new Outcome is added, this switch keeps compiling and silently
// routes the new state into the default arm.
namespace otm::proto {

enum class Outcome { kCompleted, kQueued, kFailed };

int classify(Outcome o) {
  switch (o) {
    case Outcome::kCompleted:
      return 0;
    case Outcome::kQueued:
      return 1;
    default:  // swallows kFailed and anything added later
      return -1;
  }
}

}  // namespace otm::proto
