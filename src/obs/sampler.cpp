#include "obs/sampler.hpp"

#include <ostream>

namespace otm::obs {

bool DepthSampler::sample(std::string_view series, std::uint64_t t,
                          std::uint64_t v) {
  MutexGuard lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end())
    it = series_.emplace(std::string(series), Series{}).first;
  Series& s = it->second;
  if (s.has_last && min_interval_ != 0 && t >= s.last_t &&
      t - s.last_t < min_interval_)
    return false;
  s.points.push_back({t, v});
  s.has_last = true;
  s.last_t = t;
  return true;
}

std::vector<std::string> DepthSampler::series_names() const {
  MutexGuard lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

std::vector<DepthSampler::Point> DepthSampler::points(
    std::string_view series) const {
  MutexGuard lock(mu_);
  const auto it = series_.find(series);
  return it == series_.end() ? std::vector<Point>{} : it->second.points;
}

std::size_t DepthSampler::total_points() const {
  MutexGuard lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, s] : series_) n += s.points.size();
  return n;
}

void DepthSampler::write_csv(std::ostream& os) const {
  MutexGuard lock(mu_);
  os << "series,t,value\n";
  for (const auto& [name, s] : series_)
    for (const Point& p : s.points)
      os << name << ',' << p.t << ',' << p.value << "\n";
}

}  // namespace otm::obs
