// Protocol observation interface for the model checker's invariant oracles
// (src/verify, docs/VERIFICATION.md).
//
// An Endpoint with a hook installed reports the protocol events the
// machine-checkable invariants are defined over: reliable-packet acceptance
// and fencing decisions (epoch fencing, dedup), ack fencing, send-window
// occupancy, peer-health transitions, and coalescing-buffer conservation.
// The hook pointer is null in production — every call site is a single
// branch on a pointer the endpoint already has in cache, so the observable
// protocol is byte-identical with verification off.
//
// OTM_VERIFY_BREAK (read once per Endpoint construction) deliberately
// disables a named fence so the planted-bug test can prove the checker
// finds real violations: "epoch_fence" accepts stale-epoch packets,
// "ack_fence" accepts stale-epoch acks. Never set outside tests.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace otm::proto {

struct VerifyHook {
  virtual ~VerifyHook() = default;

  /// A sequenced reliable packet reached the fencing/dedup pipeline of
  /// `rx_rank`. `accepted` means it was handed to matching (delivery);
  /// fenced/deduplicated packets report false. `stashed` marks packets
  /// delivered out of the reorder stash: those were fenced against the
  /// epoch current at pipeline entry, and the stash deliberately survives
  /// epoch adoption (the seq space continues across epochs, so a stashed
  /// pre-epoch packet is either a still-valid future or a harmless
  /// duplicate of the replay). Epoch-fencing invariant: accepted and not
  /// stashed implies pkt_epoch >= rx_epoch.
  virtual void on_packet_rx(Rank rx_rank, Rank from, std::uint16_t channel_class,
                            std::uint64_t seq, std::uint16_t pkt_epoch,
                            std::uint16_t rx_epoch, bool accepted,
                            bool stashed) {
    (void)rx_rank, (void)from, (void)channel_class, (void)seq;
    (void)pkt_epoch, (void)rx_epoch, (void)accepted, (void)stashed;
  }

  /// A cumulative ack reached `rank`'s send channel for `from`. Ack-fencing
  /// invariant: accepted implies ack_epoch == channel_epoch.
  virtual void on_ack_rx(Rank rank, Rank from, std::uint16_t channel_class,
                         std::uint16_t ack_epoch, std::uint16_t channel_epoch,
                         std::uint64_t cum_seq, bool accepted) {
    (void)rank, (void)from, (void)channel_class;
    (void)ack_epoch, (void)channel_epoch, (void)cum_seq, (void)accepted;
  }

  /// try_transmit left `in_flight` sent-unacked packets on the channel to
  /// `dst`. Window invariant: in_flight <= window_limit.
  virtual void on_window(Rank rank, Rank dst, std::uint16_t channel_class,
                         std::size_t in_flight, std::size_t window_limit) {
    (void)rank, (void)dst, (void)channel_class, (void)in_flight,
        (void)window_limit;
  }

  /// `rank`'s health record for `peer` moved from `from` to `to` (values
  /// are proto::PeerHealth cast to uint8_t; the header can't name the enum
  /// before its definition). Transition-matrix invariant: only the edges
  /// documented on PeerHealth are legal, and kDead is terminal.
  virtual void on_peer_health(Rank rank, Rank peer, std::uint8_t from,
                              std::uint8_t to) {
    (void)rank, (void)peer, (void)from, (void)to;
  }

  /// One small send was appended to the (dst, class) coalescing buffer.
  virtual void on_coalesce_append(Rank rank, Rank dst,
                                  std::uint16_t channel_class,
                                  std::uint32_t buffered) {
    (void)rank, (void)dst, (void)channel_class, (void)buffered;
  }

  /// The (dst, class) coalescing buffer flushed `flushed` sub-messages into
  /// one merged packet. Conservation invariant: every appended sub-message
  /// is flushed exactly once (appends == sum of flushes per channel).
  virtual void on_coalesce_flush(Rank rank, Rank dst,
                                 std::uint16_t channel_class,
                                 std::uint32_t flushed) {
    (void)rank, (void)dst, (void)channel_class, (void)flushed;
  }
};

}  // namespace otm::proto
