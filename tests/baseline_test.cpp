// Tests for the software baselines: the traditional two-queue list matcher
// (semantic reference) and the Flajslik-style bin matcher, including a
// randomized cross-check that both implement identical MPI semantics.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "baseline/bin_matcher.hpp"
#include "baseline/list_matcher.hpp"
#include "util/rng.hpp"

namespace otm {
namespace {

TEST(ListMatcher, PostThenArrive) {
  ListMatcher m;
  EXPECT_EQ(m.post({1, 2, 0}, 10), std::nullopt);
  EXPECT_EQ(m.arrive({1, 2, 0}, 20), std::optional<std::uint64_t>(10));
  EXPECT_EQ(m.posted_size(), 0u);
}

TEST(ListMatcher, ArriveThenPost) {
  ListMatcher m;
  EXPECT_EQ(m.arrive({1, 2, 0}, 20), std::nullopt);
  EXPECT_EQ(m.unexpected_size(), 1u);
  EXPECT_EQ(m.post({1, 2, 0}, 10), std::optional<std::uint64_t>(20));
  EXPECT_EQ(m.unexpected_size(), 0u);
}

TEST(ListMatcher, C1PostingOrder) {
  ListMatcher m;
  m.post({kAnySource, kAnyTag, 0}, 1);
  m.post({5, 5, 0}, 2);
  // Both receives match; the older (wildcard) one must win.
  EXPECT_EQ(m.arrive({5, 5, 0}, 0), std::optional<std::uint64_t>(1));
  EXPECT_EQ(m.arrive({5, 5, 0}, 1), std::optional<std::uint64_t>(2));
}

TEST(ListMatcher, C2MessageOrder) {
  ListMatcher m;
  m.arrive({1, 1, 0}, 100);
  m.arrive({1, 1, 0}, 101);
  EXPECT_EQ(m.post({1, 1, 0}, 0), std::optional<std::uint64_t>(100));
  EXPECT_EQ(m.post({1, 1, 0}, 1), std::optional<std::uint64_t>(101));
}

TEST(ListMatcher, WildcardReceiveMatchesAny) {
  ListMatcher m;
  m.arrive({7, 3, 0}, 55);
  EXPECT_EQ(m.post({kAnySource, 3, 0}, 0), std::optional<std::uint64_t>(55));
  m.arrive({7, 3, 0}, 56);
  EXPECT_EQ(m.post({7, kAnyTag, 0}, 0), std::optional<std::uint64_t>(56));
}

TEST(BinMatcher, PostThenArrive) {
  BinMatcher m(32);
  EXPECT_EQ(m.post({1, 2, 0}, 10), std::nullopt);
  EXPECT_EQ(m.arrive({1, 2, 0}, 20), std::optional<std::uint64_t>(10));
}

TEST(BinMatcher, TimestampArbitratesBinVsWildcard) {
  BinMatcher m(32);
  m.post({kAnySource, 5, 0}, 1);  // wildcard list, ts 0
  m.post({2, 5, 0}, 2);           // bin, ts 1
  EXPECT_EQ(m.arrive({2, 5, 0}, 0), std::optional<std::uint64_t>(1));
  EXPECT_EQ(m.arrive({2, 5, 0}, 1), std::optional<std::uint64_t>(2));
}

TEST(BinMatcher, TimestampArbitratesOtherOrder) {
  BinMatcher m(32);
  m.post({2, 5, 0}, 2);
  m.post({kAnySource, 5, 0}, 1);
  EXPECT_EQ(m.arrive({2, 5, 0}, 0), std::optional<std::uint64_t>(2));
}

TEST(BinMatcher, WildcardPostScansUnexpectedInArrivalOrder) {
  BinMatcher m(32);
  m.arrive({1, 1, 0}, 100);
  m.arrive({2, 2, 0}, 101);
  EXPECT_EQ(m.post({kAnySource, kAnyTag, 0}, 0), std::optional<std::uint64_t>(100));
  EXPECT_EQ(m.post({kAnySource, kAnyTag, 0}, 1), std::optional<std::uint64_t>(101));
}

TEST(BinMatcher, ExactPostRemovesFromOrderList) {
  BinMatcher m(32);
  m.arrive({1, 1, 0}, 100);
  m.arrive({2, 2, 0}, 101);
  EXPECT_EQ(m.post({1, 1, 0}, 0), std::optional<std::uint64_t>(100));
  // The order list must no longer contain message 100.
  EXPECT_EQ(m.post({kAnySource, kAnyTag, 0}, 1), std::optional<std::uint64_t>(101));
  EXPECT_EQ(m.unexpected_size(), 0u);
}

TEST(BinMatcher, SingleBinDegeneratesGracefully) {
  BinMatcher m(1);
  m.post({1, 1, 0}, 1);
  m.post({2, 2, 0}, 2);
  EXPECT_EQ(m.arrive({2, 2, 0}, 0), std::optional<std::uint64_t>(2));
  EXPECT_EQ(m.max_bin_depth(), 1u);
}

TEST(BinMatcher, AttemptsDropWithMoreBins) {
  // The core claim of bin-based matching: more bins, fewer entries examined.
  auto attempts_with = [](std::size_t bins) {
    BinMatcher m(bins);
    for (Tag t = 0; t < 64; ++t) m.post({1, t, 0}, static_cast<std::uint64_t>(t));
    // Reverse arrival order forces scans past non-matching entries.
    for (Tag t = 63; t >= 0; --t) m.arrive({1, t, 0}, static_cast<std::uint64_t>(t));
    return m.stats().attempts;
  };
  const auto a1 = attempts_with(1);
  const auto a32 = attempts_with(32);
  const auto a128 = attempts_with(128);
  EXPECT_GT(a1, a32);
  EXPECT_GE(a32, a128);
}

// Randomized cross-check: list and bin matchers implement the same
// sequential MPI semantics for any operation stream.
class BaselineCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineCrossCheck, ListAndBinAgree) {
  Xoshiro256 rng(GetParam());
  ListMatcher list;
  BinMatcher bins(16);
  std::uint64_t next_recv = 0;
  std::uint64_t next_msg = 1'000'000;

  for (int op = 0; op < 2000; ++op) {
    const Rank src = static_cast<Rank>(rng.below(4));
    const Tag tag = static_cast<Tag>(rng.below(4));
    if (rng.chance(0.5)) {
      MatchSpec spec{src, tag, 0};
      if (rng.chance(0.2)) spec.source = kAnySource;
      if (rng.chance(0.2)) spec.tag = kAnyTag;
      const auto id = next_recv++;
      ASSERT_EQ(list.post(spec, id), bins.post(spec, id)) << "op " << op;
    } else {
      const Envelope env{src, tag, 0};
      const auto id = next_msg++;
      ASSERT_EQ(list.arrive(env, id), bins.arrive(env, id)) << "op " << op;
    }
  }
  EXPECT_EQ(list.posted_size(), bins.posted_size());
  EXPECT_EQ(list.unexpected_size(), bins.unexpected_size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace otm
