// Plain-text / CSV / markdown table formatting for benchmark output.
//
// Every bench binary prints the rows/series of the paper element it
// regenerates; this writer keeps that output aligned and machine-parseable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace otm {

class TableWriter {
 public:
  enum class Format { kText, kCsv, kMarkdown };

  explicit TableWriter(std::vector<std::string> headers,
                       Format format = Format::kText);

  /// Add one row; cells beyond the header count are dropped, missing cells
  /// are rendered empty.
  void add_row(std::vector<std::string> cells);

  /// Convenience for mixed cell types.
  class RowBuilder {
   public:
    explicit RowBuilder(TableWriter& t) : table_(t) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(const char* s);
    RowBuilder& cell(double v, int precision = 2);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(std::uint64_t v);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    TableWriter& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  void print(std::ostream& os) const;
  std::string str() const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  Format format_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared by benches).
std::string fmt_double(double v, int precision = 2);

/// Format a rate as "X.XX M/s" style human output.
std::string fmt_rate(double per_second);

}  // namespace otm
