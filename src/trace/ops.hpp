// In-memory MPI trace representation (Sec. V-A).
//
// The parser converts DUMPI text traces into this common representation;
// generators emit it directly. Operations carry wall-clock timestamps so
// the processing stage can interleave ranks in global time order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace otm::trace {

enum class OpType : std::uint8_t {
  // Point-to-point.
  kSend,
  kIsend,
  kRecv,
  kIrecv,
  // Progress.
  kWait,
  kWaitall,
  kWaitany,
  kTest,
  // Collectives (counted for the call-type distribution; not matched).
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kGatherv,
  kScatter,
  kAlltoall,
  kAlltoallv,
  kAllgather,
  // One-sided (counted; never used by the analyzed suite — Fig. 6).
  kPut,
  kGet,
  kAccumulate,
  // Bookkeeping.
  kInit,
  kFinalize,
};

enum class OpCategory : std::uint8_t { kP2p, kProgress, kCollective, kOneSided, kOther };

constexpr OpCategory category_of(OpType t) noexcept {
  switch (t) {
    case OpType::kSend:
    case OpType::kIsend:
    case OpType::kRecv:
    case OpType::kIrecv:
      return OpCategory::kP2p;
    case OpType::kWait:
    case OpType::kWaitall:
    case OpType::kWaitany:
    case OpType::kTest:
      return OpCategory::kProgress;
    case OpType::kBarrier:
    case OpType::kBcast:
    case OpType::kReduce:
    case OpType::kAllreduce:
    case OpType::kGather:
    case OpType::kGatherv:
    case OpType::kScatter:
    case OpType::kAlltoall:
    case OpType::kAlltoallv:
    case OpType::kAllgather:
      return OpCategory::kCollective;
    case OpType::kPut:
    case OpType::kGet:
    case OpType::kAccumulate:
      return OpCategory::kOneSided;
    case OpType::kInit:
    case OpType::kFinalize:
      return OpCategory::kOther;
  }
  return OpCategory::kOther;
}

const char* mpi_name(OpType t) noexcept;

/// One traced MPI call. Fields beyond `type` are meaningful only for the
/// categories that use them (peer/tag for p2p, request for p2p+progress).
struct TraceOp {
  OpType type = OpType::kInit;
  Rank peer = 0;           ///< dest (sends) / source (receives, may be ANY)
  Tag tag = 0;             ///< may be kAnyTag on receives
  CommId comm = 0;
  std::uint32_t bytes = 0;
  std::uint64_t request = 0;  ///< request handle for isend/irecv/wait
  double start_ts = 0.0;      ///< walltime seconds
  double end_ts = 0.0;

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

struct RankTrace {
  Rank rank = 0;
  std::vector<TraceOp> ops;

  friend bool operator==(const RankTrace&, const RankTrace&) = default;
};

struct Trace {
  std::string app_name;
  int num_ranks = 0;
  std::vector<RankTrace> ranks;

  std::size_t total_ops() const noexcept {
    std::size_t n = 0;
    for (const auto& r : ranks) n += r.ops.size();
    return n;
  }

  friend bool operator==(const Trace&, const Trace&) = default;
};

}  // namespace otm::trace
