// Clang Thread Safety Analysis macros (the OTM_LINT compile-time gate).
//
// Under clang with -Wthread-safety (scripts/check.sh --lint, CI lint job)
// these expand to the capability attributes and every annotated lock,
// guarded field and REQUIRES contract is checked on every build; under any
// other compiler they expand to nothing, so the annotations are free.
//
// Two kinds of capabilities are annotated in this tree:
//
//   1. Real locks — util::Spinlock and util::AnnotatedMutex. Fields written
//      only under a lock carry OTM_GUARDED_BY(lock); helpers that assume the
//      lock is already held carry OTM_REQUIRES(lock).
//
//   2. Serialization domains — otm::SerialDomain, a zero-size phantom
//      capability naming a single-owner phase of the concurrency contract
//      (e.g. "engine-serialized posting path", DESIGN.md C1). Acquiring one
//      compiles to nothing; the value is that clang then proves serialized
//      state is never touched from an unannotated (i.e. potentially
//      concurrent) code path. See docs/STATIC_ANALYSIS.md.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OTM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef OTM_THREAD_ANNOTATION
#define OTM_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define OTM_CAPABILITY(name) OTM_THREAD_ANNOTATION(capability(name))
#define OTM_SCOPED_CAPABILITY OTM_THREAD_ANNOTATION(scoped_lockable)
#define OTM_GUARDED_BY(x) OTM_THREAD_ANNOTATION(guarded_by(x))
#define OTM_PT_GUARDED_BY(x) OTM_THREAD_ANNOTATION(pt_guarded_by(x))
#define OTM_ACQUIRE(...) \
  OTM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OTM_ACQUIRE_SHARED(...) \
  OTM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define OTM_RELEASE(...) \
  OTM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OTM_RELEASE_SHARED(...) \
  OTM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define OTM_TRY_ACQUIRE(...) \
  OTM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define OTM_REQUIRES(...) \
  OTM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OTM_REQUIRES_SHARED(...) \
  OTM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define OTM_EXCLUDES(...) OTM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define OTM_RETURN_CAPABILITY(x) OTM_THREAD_ANNOTATION(lock_returned(x))
#define OTM_NO_THREAD_SAFETY_ANALYSIS \
  OTM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace otm {

/// std::mutex wrapper that clang's analysis can see (std::mutex itself is
/// unannotated, so GUARDED_BY fields behind it would go unchecked). Used by
/// the registry-style components (src/obs); src/core must not use it
/// (otmlint R3: spinlock / partial-barrier discipline only).
class OTM_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() OTM_ACQUIRE() { mu_.lock(); }
  void unlock() OTM_RELEASE() { mu_.unlock(); }
  bool try_lock() OTM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard for AnnotatedMutex (std::lock_guard is itself unannotated).
class OTM_SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(AnnotatedMutex& mu) OTM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexGuard() OTM_RELEASE() { mu_.unlock(); }
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  AnnotatedMutex& mu_;
};

/// Phantom capability naming a serialization domain: a phase of the
/// concurrency contract enforced by construction (one owner at a time)
/// rather than by a runtime lock. Examples: the engine-serialized posting
/// path (post_receive/process never overlap — the DPA dispatcher serializes
/// them), the endpoint's host-call domain. Acquire/release compile to
/// nothing; clang's analysis still tracks them, so fields marked
/// OTM_GUARDED_BY(domain) are provably untouched outside the domain.
class OTM_CAPABILITY("serial-domain") SerialDomain {
 public:
  SerialDomain() = default;
  SerialDomain(const SerialDomain&) = delete;
  SerialDomain& operator=(const SerialDomain&) = delete;

  void acquire() const noexcept OTM_ACQUIRE() {}
  void release() const noexcept OTM_RELEASE() {}
};

/// RAII entry into a serialization domain (zero runtime cost).
class OTM_SCOPED_CAPABILITY SerialSection {
 public:
  explicit SerialSection(const SerialDomain& d) noexcept OTM_ACQUIRE(d)
      : d_(d) {
    d_.acquire();
  }
  ~SerialSection() OTM_RELEASE() { d_.release(); }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;

 private:
  const SerialDomain& d_;
};

}  // namespace otm
