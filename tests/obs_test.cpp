// Observability layer tests: tracer event ordering (including under a
// conflicted block), ring-buffer wrap and concurrent writes, histogram
// bucket edges, depth-sampler curves, the engine's registry mirror, and the
// regression that disabled observability emits nothing.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <sstream>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "obs/observability.hpp"

namespace otm {
namespace {

using obs::EventKind;
using obs::ObsConfig;
using obs::Observability;
using obs::TraceEvent;

MatchConfig small_config(unsigned block) {
  MatchConfig c;
  c.bins = 16;
  c.block_size = block;
  c.max_receives = 128;
  c.max_unexpected = 128;
  // Off so the lockstep schedule exposes conflicts (see core_block_test).
  c.early_booking_check = false;
  return c;
}

std::vector<TraceEvent> events_of(const Observability& o, EventKind k) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : o.tracer()->snapshot())
    if (e.kind == k) out.push_back(e);
  return out;
}

// --- Tracer core ------------------------------------------------------------

TEST(Tracer, RecordsInOrderAndSnapshotSorted) {
  obs::Tracer tr(64);
  for (std::uint64_t i = 0; i < 10; ++i)
    tr.record(EventKind::kPostReceive, /*ts=*/i * 10, /*lane=*/0, i, 0);
  const auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 10u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].a0, i);
    if (i > 0) {
      EXPECT_GT(snap[i].seq, snap[i - 1].seq);
    }
  }
  EXPECT_EQ(tr.emitted(), 10u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, RingWrapKeepsNewestEvents) {
  obs::Tracer tr(16);  // capacity rounds to 16
  for (std::uint64_t i = 0; i < 40; ++i)
    tr.record(EventKind::kProbe, i, 0, i, 0);
  EXPECT_EQ(tr.emitted(), 40u);
  EXPECT_EQ(tr.dropped(), 24u);
  const auto snap = tr.snapshot();
  ASSERT_EQ(snap.size(), 16u);
  // Oldest-first and exactly the newest 16 records.
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].a0, 24u + i);
}

TEST(Tracer, ConcurrentWritersProduceNoTornEvents) {
  obs::Tracer tr(1 << 10);
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&tr, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        // a0 == a1 + lane lets the reader detect torn slot contents.
        tr.record(EventKind::kSend, i, t, i + t, i);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(tr.emitted(), kThreads * kPerThread);
  const auto snap = tr.snapshot();
  EXPECT_LE(snap.size(), tr.size());
  for (const TraceEvent& e : snap) {
    EXPECT_EQ(e.kind, EventKind::kSend);
    EXPECT_LT(e.lane, kThreads);
    EXPECT_EQ(e.a0, e.a1 + e.lane);
  }
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  Observability o(ObsConfig::enabled(64));
  o.tracer()->record(EventKind::kBlockBegin, 100, 0, 4, 1);
  o.tracer()->record(EventKind::kResolution, 150, 2, 7, 0);
  o.tracer()->record(EventKind::kBlockEnd, 200, 0, 4, 1);
  o.sampler()->sample("prq", 100, 3);
  std::ostringstream os;
  o.write_trace_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);  // block span open
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);  // block span close
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // sampler counter
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- Metrics ----------------------------------------------------------------

TEST(Metrics, HistogramBucketEdges) {
  constexpr std::array<std::uint64_t, 3> bounds = {1, 4, 16};
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h", bounds);
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 finite + overflow

  // A value exactly on an upper bound lands in that bucket (le semantics).
  h.observe(1);   // bucket 0 (le 1)
  h.observe(2);   // bucket 1 (le 4)
  h.observe(4);   // bucket 1
  h.observe(5);   // bucket 2 (le 16)
  h.observe(16);  // bucket 2
  h.observe(17);  // overflow
  h.observe(1000);

  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.sum(), 1u + 2 + 4 + 5 + 16 + 17 + 1000);
}

TEST(Metrics, RegistryFindOrCreateIsStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  a.inc(3);
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);

  obs::Gauge& g = reg.gauge("g");
  g.update_max(10);
  g.update_max(4);  // lower: no effect
  EXPECT_EQ(g.value(), 10u);

  std::ostringstream json;
  reg.write_json(json);
  EXPECT_NE(json.str().find("\"x\": 3"), std::string::npos);

  std::ostringstream csv;
  reg.write_csv(csv);
  EXPECT_NE(csv.str().find("counter,x,value,3"), std::string::npos);
}

// --- Sampler ----------------------------------------------------------------

TEST(Sampler, BurstCurveAndMinInterval) {
  obs::DepthSampler s(/*min_interval=*/10);
  // Synthetic burst: queue builds 0..5 then drains. Samples 2 time-units
  // apart; the interval filter must keep every 10th unit only.
  std::uint64_t t = 0;
  const int depths[] = {0, 1, 2, 3, 4, 5, 4, 3, 2, 1, 0};
  for (const int d : depths) {
    s.sample("q", t, static_cast<std::uint64_t>(d));
    t += 2;
  }
  const auto& pts = s.points("q");
  ASSERT_EQ(pts.size(), 3u);  // t=0, t=10, t=20
  EXPECT_EQ(pts[0].t, 0u);
  EXPECT_EQ(pts[0].value, 0u);
  EXPECT_EQ(pts[1].t, 10u);
  EXPECT_EQ(pts[1].value, 5u);
  EXPECT_EQ(pts[2].t, 20u);
  EXPECT_EQ(pts[2].value, 0u);

  std::ostringstream os;
  s.write_csv(os);
  EXPECT_NE(os.str().find("q,10,5"), std::string::npos);
}

// --- Engine integration -----------------------------------------------------

TEST(EngineObs, ConflictedBlockEmitsOrderedEvents) {
  Observability o(ObsConfig::enabled());
  MatchEngine eng(small_config(4));
  eng.attach_observability(&o, "m");

  // Four receives sharing (src, tag): every thread of the block picks the
  // same oldest candidate — three must conflict and re-resolve.
  for (unsigned i = 0; i < 4; ++i)
    eng.post_receive({1, 7, 0}, 0, 0, /*cookie=*/i);
  std::vector<IncomingMessage> msgs;
  for (unsigned i = 0; i < 4; ++i) {
    auto m = IncomingMessage::make(1, 7, 0);
    m.wire_seq = i;
    msgs.push_back(m);
  }
  LockstepExecutor ex;
  const auto out = eng.process(msgs, ex);
  ASSERT_EQ(out.size(), 4u);
  ASSERT_GT(eng.stats().conflicts_detected, 0u);

  const auto snap = o.tracer()->snapshot();
  ASSERT_FALSE(snap.empty());

  // The block span brackets all per-thread events of the block.
  const auto begins = events_of(o, EventKind::kBlockBegin);
  const auto ends = events_of(o, EventKind::kBlockEnd);
  ASSERT_EQ(begins.size(), 1u);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(begins[0].a0, 4u);  // block occupancy
  for (const TraceEvent& e : snap) {
    if (e.kind == EventKind::kPostReceive) continue;
    EXPECT_GE(e.seq, begins[0].seq);
    EXPECT_LE(e.seq, ends[0].seq);
  }

  // Per thread: exactly one candidate and one resolution, candidate first.
  const auto candidates = events_of(o, EventKind::kCandidate);
  const auto resolutions = events_of(o, EventKind::kResolution);
  ASSERT_EQ(candidates.size(), 4u);
  ASSERT_EQ(resolutions.size(), 4u);
  for (unsigned lane = 0; lane < 4; ++lane) {
    const auto c = std::find_if(candidates.begin(), candidates.end(),
                                [&](const TraceEvent& e) { return e.lane == lane; });
    const auto r = std::find_if(resolutions.begin(), resolutions.end(),
                                [&](const TraceEvent& e) { return e.lane == lane; });
    ASSERT_NE(c, candidates.end());
    ASSERT_NE(r, resolutions.end());
    EXPECT_LT(c->seq, r->seq);
    EXPECT_NE(r->a0, kInvalidSlot) << "every thread matched";
  }
  // Every detected conflict produced exactly one conflict event.
  const auto conflicts = events_of(o, EventKind::kConflict);
  EXPECT_EQ(conflicts.size(), eng.stats().conflicts_detected);
}

TEST(EngineObs, RegistryMirrorsStatsAndHistogramsFill) {
  Observability o(ObsConfig::enabled());
  MatchEngine eng(small_config(2));
  eng.attach_observability(&o, "rank0.comm0");

  for (unsigned i = 0; i < 6; ++i)
    eng.post_receive({1, static_cast<Tag>(i), 0}, 0, 0, i);
  std::vector<IncomingMessage> msgs;
  for (unsigned i = 0; i < 4; ++i)
    msgs.push_back(IncomingMessage::make(1, static_cast<Tag>(i), 0));
  msgs.push_back(IncomingMessage::make(3, 99, 0));  // goes unexpected
  LockstepExecutor ex;
  eng.process(msgs, ex);

  const MatchStats s = eng.snapshot();
  obs::MetricsRegistry& reg = *o.metrics();
  EXPECT_EQ(reg.counter("rank0.comm0.receives_posted").value(), s.receives_posted);
  EXPECT_EQ(reg.counter("rank0.comm0.messages_matched").value(), s.messages_matched);
  EXPECT_EQ(reg.counter("rank0.comm0.messages_unexpected").value(),
            s.messages_unexpected);
  EXPECT_EQ(s.messages_matched, 4u);
  EXPECT_EQ(s.messages_unexpected, 1u);

  // Shared instruments observed at least one sample each.
  EXPECT_GT(reg.histogram("match.block_occupancy", {}).count(), 0u);
  EXPECT_GT(reg.histogram("match.chain_depth", {}).count(), 0u);

  // Depth series recorded under the engine prefix.
  const auto names = o.sampler()->series_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "rank0.comm0.prq_depth"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "rank0.comm0.umq_depth"),
            names.end());
  const auto& prq = o.sampler()->points("rank0.comm0.prq_depth");
  ASSERT_FALSE(prq.empty());
  // After the run, two receives are still pending (6 posted, 4 matched).
  EXPECT_EQ(prq.back().value, 2u);
}

TEST(EngineObs, SamplerTracksBurstDepth) {
  Observability o(ObsConfig::enabled());
  MatchEngine eng(small_config(1));
  eng.attach_observability(&o, "e");

  // Burst of unexpected arrivals, then posts drain them: the UMQ series
  // must rise and fall back to zero.
  LockstepExecutor ex;
  for (unsigned i = 0; i < 8; ++i) {
    auto m = IncomingMessage::make(2, static_cast<Tag>(i), 0);
    m.wire_seq = i;
    eng.process_one(m, ex);
  }
  for (unsigned i = 0; i < 8; ++i)
    eng.post_receive({2, static_cast<Tag>(i), 0}, 0, 0, i);

  const auto& umq = o.sampler()->points("e.umq_depth");
  ASSERT_FALSE(umq.empty());
  const auto peak = std::max_element(
      umq.begin(), umq.end(),
      [](const auto& a, const auto& b) { return a.value < b.value; });
  EXPECT_EQ(peak->value, 8u);
  EXPECT_EQ(umq.back().value, 0u);
}

TEST(EngineObs, DisabledObservabilityEmitsNothing) {
  // All-off config: subsystems are never allocated and the engine's
  // instrumentation must reduce to inert null checks.
  Observability off{ObsConfig{}};
  EXPECT_EQ(off.tracer(), nullptr);
  EXPECT_EQ(off.metrics(), nullptr);
  EXPECT_EQ(off.sampler(), nullptr);

  MatchEngine eng(small_config(4));
  eng.attach_observability(&off, "x");
  for (unsigned i = 0; i < 4; ++i) eng.post_receive({1, 7, 0}, 0, 0, i);
  std::vector<IncomingMessage> msgs;
  for (unsigned i = 0; i < 4; ++i) msgs.push_back(IncomingMessage::make(1, 7, 0));
  LockstepExecutor ex;
  const auto out = eng.process(msgs, ex);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(eng.stats().messages_matched, 4u);

  // The writers still produce valid (empty) documents.
  std::ostringstream trace_os, metrics_os, samples_os;
  off.write_trace_json(trace_os);
  off.write_metrics_json(metrics_os);
  off.write_samples_csv(samples_os);
  EXPECT_NE(trace_os.str().find("\"traceEvents\":[\n\n]"), std::string::npos);
  EXPECT_NE(metrics_os.str().find("\"counters\": {}"), std::string::npos);
  EXPECT_EQ(samples_os.str(), "series,t,value\n");
}

TEST(EngineObs, DetachStopsEmission) {
  Observability o(ObsConfig::enabled());
  MatchEngine eng(small_config(1));
  eng.attach_observability(&o, "m");
  eng.post_receive({1, 1, 0}, 0, 0, 1);
  const std::uint64_t mid = o.tracer()->emitted();
  EXPECT_GT(mid, 0u);

  eng.attach_observability(nullptr);
  eng.post_receive({1, 2, 0}, 0, 0, 2);
  LockstepExecutor ex;
  eng.process_one(IncomingMessage::make(1, 1, 0), ex);
  EXPECT_EQ(o.tracer()->emitted(), mid);
}

}  // namespace
}  // namespace otm
