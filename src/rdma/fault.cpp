#include "rdma/fault.hpp"

#include "util/hash.hpp"

namespace otm::rdma {

FaultInjector::LinkState& FaultInjector::link(NodeId src, NodeId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = links_.find(key);
  if (it == links_.end())
    it = links_.emplace(key, LinkState(cfg_.seed ^ mix64(key + 1))).first;
  return it->second;
}

bool FaultInjector::forced_rnr(NodeId src, NodeId dst, std::uint16_t lane) {
  if (((cfg_.lane_mask >> lane) & 1u) == 0) return false;
  if (cfg_.rnr_period == 0 || cfg_.rnr_burst == 0) return false;
  LinkState& l = link(src, dst);
  const bool refused = (l.attempts++ % cfg_.rnr_period) < cfg_.rnr_burst;
  if (refused) ++stats_.forced_rnrs;
  return refused;
}

bool FaultInjector::forced_qp_error(NodeId src, NodeId dst,
                                    std::uint16_t lane) {
  if (qp_error_hook_) {
    if (const auto forced = qp_error_hook_(src, dst, lane)) {
      if (*forced) ++stats_.qp_errors;
      return *forced;
    }
  }
  if (((cfg_.lane_mask >> lane) & 1u) == 0) return false;
  const bool periodic = cfg_.qp_error_period != 0;
  if (!periodic && cfg_.qp_error_probability <= 0.0) return false;
  LinkState& l = link(src, dst);
  const std::uint64_t n = ++l.posts;
  bool hit = periodic && (n % cfg_.qp_error_period) == 0;
  if (!hit && cfg_.qp_error_probability > 0.0 &&
      l.rng.uniform() < cfg_.qp_error_probability)
    hit = true;
  if (hit) ++stats_.qp_errors;
  return hit;
}

FaultInjector::Fate FaultInjector::next_fate(NodeId src, NodeId dst,
                                             std::uint16_t lane) {
  if (fate_hook_) {
    if (const auto forced = fate_hook_(src, dst, lane)) {
      // Explorer-chosen fate: bypass the seeded streams (and their position
      // counters) entirely so the decision sequence alone determines the run.
      switch (*forced) {
        case Fate::kDrop: ++stats_.drops; break;
        case Fate::kDuplicate: ++stats_.duplicates; break;
        case Fate::kCorrupt: ++stats_.corruptions; break;
        case Fate::kHold: ++stats_.holds; break;
        case Fate::kDeliver: break;
      }
      return *forced;
    }
  }
  if (((cfg_.lane_mask >> lane) & 1u) == 0) return Fate::kDeliver;
  LinkState& l = link(src, dst);
  const std::uint64_t pos = l.packets++;
  if (pos < cfg_.drop_first) {
    ++stats_.drops;
    return Fate::kDrop;
  }
  if (pos < cfg_.drop_first + cfg_.corrupt_first) {
    ++stats_.corruptions;
    return Fate::kCorrupt;
  }
  // Temporally-correlated flap windows come before the i.i.d. fates: within
  // a down-window the link drops everything. The episode draw only runs when
  // flaps are configured, so legacy configs keep byte-identical RNG streams.
  bool flapped = cfg_.flap_period != 0 && cfg_.flap_down != 0 &&
                 (pos % cfg_.flap_period) < cfg_.flap_down;
  if (!flapped && pos < l.flap_until) flapped = true;
  if (!flapped && cfg_.flap_probability > 0.0 &&
      l.rng.uniform() < cfg_.flap_probability) {
    const std::uint32_t len = cfg_.flap_length == 0 ? 1 : cfg_.flap_length;
    l.flap_until = pos + 1 + l.rng.below(len);
    flapped = true;
  }
  if (flapped) {
    ++stats_.flap_drops;
    ++stats_.drops;
    return Fate::kDrop;
  }
  const double u = l.rng.uniform();
  double edge = cfg_.drop_probability;
  if (u < edge) {
    ++stats_.drops;
    return Fate::kDrop;
  }
  edge += cfg_.duplicate_probability;
  if (u < edge) {
    ++stats_.duplicates;
    return Fate::kDuplicate;
  }
  edge += cfg_.corrupt_probability;
  if (u < edge) {
    ++stats_.corruptions;
    return Fate::kCorrupt;
  }
  edge += cfg_.reorder_probability;
  if (u < edge && cfg_.reorder_window > 0) {
    ++stats_.holds;
    return Fate::kHold;
  }
  return Fate::kDeliver;
}

std::uint32_t FaultInjector::hold_delay(NodeId src, NodeId dst) {
  if (cfg_.reorder_window <= 1) return 1;
  return 1 + static_cast<std::uint32_t>(
                 link(src, dst).rng.below(cfg_.reorder_window));
}

void FaultInjector::corrupt(NodeId src, NodeId dst,
                            std::span<std::byte> packet) {
  if (packet.empty()) return;
  LinkState& l = link(src, dst);
  const std::uint64_t flips = 1 + l.rng.below(3);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t pos = l.rng.below(packet.size());
    packet[pos] ^= static_cast<std::byte>(1 + l.rng.below(255));
  }
}

}  // namespace otm::rdma
