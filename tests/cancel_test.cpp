// Tests for receive cancellation (MPI_Cancel semantics) at the engine,
// endpoint and mini-MPI layers — including the sequence-id interaction
// with the fast path and ordering after a mid-sequence cancel.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "mpi/mpi.hpp"

namespace otm {
namespace {

MatchConfig tiny() {
  MatchConfig c;
  c.bins = 8;
  c.block_size = 4;
  c.max_receives = 32;
  c.max_unexpected = 32;
  c.early_booking_check = false;
  return c;
}

TEST(EngineCancel, RemovesPendingReceive) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 5, 0}, /*buffer_addr=*/7, 0, /*cookie=*/42);
  ASSERT_TRUE(eng.cancel_receive(42).has_value());
  EXPECT_FALSE(eng.cancel_receive(42).has_value())
      << "second cancel finds nothing";
  const auto o = eng.process_one(IncomingMessage::make(1, 5, 0), ex);
  EXPECT_EQ(o.kind, ArrivalOutcome::Kind::kUnexpected)
      << "a cancelled receive must never match";
  EXPECT_EQ(eng.receives().live_descriptors(), 0u) << "slot reclaimed";
}

TEST(EngineCancel, ReturnsBufferAddressOnceThenFails) {
  MatchEngine eng(tiny());
  eng.post_receive({1, 5, 0}, 0xABC, 0, 1);
  const auto first = eng.cancel_receive(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 0xABCu);
  EXPECT_FALSE(eng.cancel_receive(1).has_value());
}

TEST(EngineCancel, UnknownCookieFails) {
  MatchEngine eng(tiny());
  EXPECT_FALSE(eng.cancel_receive(99).has_value());
}

TEST(EngineCancel, MatchedReceiveCannotBeCancelled) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 5, 0}, 0, 0, 1);
  eng.process_one(IncomingMessage::make(1, 5, 0), ex);
  EXPECT_FALSE(eng.cancel_receive(1).has_value());
}

TEST(EngineCancel, MidSequenceCancelPreservesOrdering) {
  // R0 R1 R2 same-key; cancel R1; messages must match R0 then R2.
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 5, 0}, 0, 0, 100);
  eng.post_receive({1, 5, 0}, 0, 0, 101);
  eng.post_receive({1, 5, 0}, 0, 0, 102);
  ASSERT_TRUE(eng.cancel_receive(101).has_value());
  std::vector<IncomingMessage> msgs(3, IncomingMessage::make(1, 5, 0));
  const auto outs = eng.process(msgs, ex);
  EXPECT_EQ(outs[0].match.receive_cookie, 100u);
  EXPECT_EQ(outs[1].match.receive_cookie, 102u);
  EXPECT_EQ(outs[2].kind, ArrivalOutcome::Kind::kUnexpected);
}

TEST(EngineCancel, PostAfterCancelStartsFreshSequence) {
  MatchEngine eng(tiny());
  eng.post_receive({1, 5, 0}, 0, 0, 1);
  const auto slot_before = eng.receives().desc(0).seq_id;
  (void)slot_before;
  ASSERT_TRUE(eng.cancel_receive(1).has_value());
  const auto a = eng.post_receive({1, 5, 0}, 0, 0, 2);
  const auto b = eng.post_receive({1, 5, 0}, 0, 0, 3);
  ASSERT_EQ(a.kind, PostOutcome::Kind::kPending);
  ASSERT_EQ(b.kind, PostOutcome::Kind::kPending);
  // The two fresh receives still form one compatible sequence together.
  LockstepExecutor ex;
  std::vector<IncomingMessage> msgs(2, IncomingMessage::make(1, 5, 0));
  const auto outs = eng.process(msgs, ex);
  EXPECT_EQ(outs[0].match.receive_cookie, 2u);
  EXPECT_EQ(outs[1].match.receive_cookie, 3u);
}

TEST(MpiCancel, PendingReceiveCancelsAndCompletes) {
  mpi::World world(2, {});
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 5, comm);
  EXPECT_FALSE(world.proc(1).test(req));
  ASSERT_TRUE(world.proc(1).cancel(req));
  EXPECT_TRUE(world.proc(1).test(req)) << "cancelled requests are complete";
  EXPECT_TRUE(world.proc(1).cancelled(req));
  EXPECT_FALSE(world.proc(1).cancel(req)) << "double cancel fails";
}

TEST(MpiCancel, SendRequestsCannotBeCancelled) {
  mpi::World world(2, {});
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  world.proc(1).irecv(rx, 0, 1, comm);
  auto sreq = world.proc(0).isend(std::vector<std::byte>(8), 1, 1, comm);
  EXPECT_FALSE(world.proc(0).cancel(sreq));
}

TEST(MpiCancel, CancelledReceiveNeverMatches) {
  mpi::World world(2, {});
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx1(8);
  std::vector<std::byte> rx2(8);
  auto r1 = world.proc(1).irecv(rx1, 0, 4, comm);
  auto r2 = world.proc(1).irecv(rx2, 0, 4, comm);
  ASSERT_TRUE(world.proc(1).cancel(r1));
  world.proc(0).send(std::vector<std::byte>(8, std::byte{0xEE}), 1, 4, comm);
  world.proc(1).wait(r2);
  EXPECT_EQ(rx2[0], std::byte{0xEE}) << "message skips the cancelled receive";
  EXPECT_FALSE(world.proc(1).cancelled(r2));
}

TEST(MpiCancel, DeferredPostCancelsHostSide) {
  mpi::WorldOptions opts;
  opts.match.max_receives = 2;
  mpi::World world(2, opts);
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> b0(8), b1(8), b2(8);
  world.proc(1).irecv(b0, 0, 0, comm);
  world.proc(1).irecv(b1, 0, 1, comm);
  auto deferred = world.proc(1).irecv(b2, 0, 2, comm);  // queued host-side
  ASSERT_EQ(world.proc(1).pending_posts(), 1u);
  ASSERT_TRUE(world.proc(1).cancel(deferred));
  EXPECT_EQ(world.proc(1).pending_posts(), 0u);
}

TEST(MpiCancel, HostPathCommCancel) {
  mpi::World world(2, {});
  mpi::CommInfo no_offload;
  no_offload.offload = false;
  const mpi::Comm comm = world.proc(0).comm_create(no_offload);
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 1, comm);
  ASSERT_TRUE(world.proc(1).cancel(req));
  EXPECT_TRUE(world.proc(1).cancelled(req));
}

TEST(MpiCancel, SoftwareBackendCancel) {
  mpi::WorldOptions opts;
  opts.backend = mpi::Backend::kSoftwareList;
  mpi::World world(2, opts);
  const mpi::Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 1, comm);
  ASSERT_TRUE(world.proc(1).cancel(req));
  EXPECT_TRUE(world.proc(1).cancelled(req));
}

}  // namespace
}  // namespace otm
