// otmlint-fixture: src/core/fixture.cpp
// R2 bad twin: a hot (block-matching) function that grows a container.
#include <cstdint>
#include <vector>

namespace otm {

std::vector<std::uint32_t> results;

// otmlint: hot
void scan_and_record(std::uint32_t slot) {
  results.push_back(slot);  // allocation on the matching hot path
}

}  // namespace otm
