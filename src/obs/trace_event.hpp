// Trace-event vocabulary of the observability layer.
//
// Every event is a fixed-size POD: a timestamp in the emitter's clock
// domain (modeled DPA cycles for matching events, modeled nanoseconds for
// endpoint events), a lane (block thread id / rank), and two uninterpreted
// 64-bit arguments whose meaning depends on the kind (documented per
// enumerator and in docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>

namespace otm::obs {

enum class EventKind : std::uint8_t {
  // Engine, arrival side (one matching block = one kBlockBegin/kBlockEnd
  // span; per-thread events nest inside it).
  kBlockBegin = 0,   ///< a0 = block size, a1 = generation
  kBlockEnd = 1,     ///< a0 = block size, a1 = generation
  kCandidate = 2,    ///< a0 = optimistic candidate slot (~0 = none)
  kBooking = 3,      ///< a0 = booked slot
  kConflict = 4,     ///< a0 = lost candidate slot
  kResolution = 5,   ///< a0 = final slot (~0 = unexpected), a1 = ResolutionPath
  kUmqInsert = 6,    ///< a0 = UMQ slot (~0 = dropped), a1 = wire_seq

  // Engine, post side (Fig. 1a).
  kPostReceive = 7,         ///< a0 = cookie
  kUmqMatch = 8,            ///< a0 = cookie, a1 = matched wire_seq
  kDescriptorFallback = 9,  ///< a0 = cookie; descriptor table exhausted
  kProbe = 10,              ///< a0 = 1 if a message was found
  kCancel = 11,             ///< a0 = cookie

  // Endpoint (clock domain: modeled ns).
  kSend = 12,      ///< a0 = payload bytes, a1 = Protocol
  kProgress = 13,  ///< a0 = completions drained, a1 = messages matched-on-NIC

  // Sampler tick (exported as a Perfetto counter track).
  kSample = 14,  ///< a0 = sampled value, a1 = series id
};

inline constexpr unsigned kNumEventKinds = 15;

const char* to_string(EventKind k) noexcept;

struct TraceEvent {
  std::uint64_t ts = 0;  ///< emitter clock (cycles or ns; see EventKind)
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t seq = 0;  ///< global emission order (assigned by the tracer)
  std::uint32_t lane = 0; ///< block thread id / rank; rendered as Perfetto tid
  EventKind kind = EventKind::kBlockBegin;
};

}  // namespace otm::obs
