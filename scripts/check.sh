#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass, then a second build with
# AddressSanitizer + UBSan (tests only; benches/examples skipped to keep the
# sanitized run fast), then the chaos suite (label `chaos`) re-run under the
# sanitizers across a seed matrix — each seed reshuffles every fault stream —
# and finally a ThreadSanitizer build running the concurrency suite
# (core_block_test, schedule_fuzz_test, stress_test: the tests that drive
# real racing threads through the block matcher).
#
#   scripts/check.sh            # tier-1 + ASan/UBSan + chaos + TSan
#   scripts/check.sh --fast     # tier-1 only
#   scripts/check.sh --tsan     # TSan pass only (CI runs --fast + --tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=all
case "${1:-}" in
  --fast) MODE=fast ;;
  --tsan) MODE=tsan ;;
esac

run_tsan() {
  echo "== sanitizers: TSan build + concurrency suite =="
  cmake -B build-tsan -S . \
    -DOTM_SANITIZE=thread \
    -DOTM_BUILD_BENCH=OFF \
    -DOTM_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j \
    --target core_block_test schedule_fuzz_test stress_test
  for t in core_block_test schedule_fuzz_test stress_test; do
    echo "-- tsan: $t"
    TSAN_OPTIONS=halt_on_error=1 "./build-tsan/tests/$t"
  done
}

if [[ "$MODE" == "tsan" ]]; then
  run_tsan
  echo "== TSan pass OK =="
  exit 0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$MODE" == "fast" ]]; then
  echo "== tier-1 OK (sanitizer passes skipped: --fast) =="
  exit 0
fi

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . \
  -DOTM_SANITIZE=address \
  -DOTM_BUILD_BENCH=OFF \
  -DOTM_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== chaos: sanitized fault-injection suite across seeds =="
for seed in 1 7 42 999 123456789; do
  echo "-- chaos seed $seed"
  OTM_CHAOS_SEED=$seed \
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan -L chaos --output-on-failure -j "$(nproc)"
done

run_tsan

echo "== all checks OK =="
