#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass, then a second build with
# AddressSanitizer + UBSan (tests only; benches/examples skipped to keep the
# sanitized run fast), then the chaos suite (label `chaos`) re-run under the
# sanitizers across a seed matrix — each seed reshuffles every fault stream.
#
#   scripts/check.sh            # tier-1 + sanitizers + chaos seed matrix
#   scripts/check.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$FAST" == "1" ]]; then
  echo "== tier-1 OK (sanitizer pass skipped: --fast) =="
  exit 0
fi

echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . \
  -DOTM_SANITIZE=ON \
  -DOTM_BUILD_BENCH=OFF \
  -DOTM_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== chaos: sanitized fault-injection suite across seeds =="
for seed in 1 7 42 999 123456789; do
  echo "-- chaos seed $seed"
  OTM_CHAOS_SEED=$seed \
  UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan -L chaos --output-on-failure -j "$(nproc)"
done

echo "== all checks OK =="
