file(REMOVE_RECURSE
  "CMakeFiles/sweep2d.dir/sweep2d.cpp.o"
  "CMakeFiles/sweep2d.dir/sweep2d.cpp.o.d"
  "sweep2d"
  "sweep2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
