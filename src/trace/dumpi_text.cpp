#include "trace/dumpi_text.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace otm::trace {
namespace {

namespace fs = std::filesystem;

const std::map<std::string, OpType>& name_to_type() {
  static const std::map<std::string, OpType> m = [] {
    std::map<std::string, OpType> t;
    for (int i = 0; i <= static_cast<int>(OpType::kFinalize); ++i) {
      const auto op = static_cast<OpType>(i);
      t.emplace(mpi_name(op), op);
    }
    return t;
  }();
  return m;
}

void write_ts_line(std::ostream& os, const char* name, const char* verb,
                   double ts) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s %s at walltime %.7f, cputime %.7f seconds in thread 0.\n",
                name, verb, ts, ts * 0.1);
  os << buf;
}

}  // namespace

void write_dumpi_text(const RankTrace& trace, std::ostream& os) {
  for (const TraceOp& op : trace.ops) {
    const char* name = mpi_name(op.type);
    write_ts_line(os, name, "entering", op.start_ts);
    switch (category_of(op.type)) {
      case OpCategory::kP2p:
        os << "int count=" << op.bytes << "\n";
        os << "MPI_Datatype datatype=1 (MPI_BYTE)\n";
        if (op.type == OpType::kSend || op.type == OpType::kIsend) {
          os << "int dest=" << op.peer << "\n";
        } else if (op.peer == kAnySource) {
          os << "int source=-1 (MPI_ANY_SOURCE)\n";
        } else {
          os << "int source=" << op.peer << "\n";
        }
        if (op.tag == kAnyTag) {
          os << "int tag=-1 (MPI_ANY_TAG)\n";
        } else {
          os << "int tag=" << op.tag << "\n";
        }
        os << "MPI_Comm comm=" << op.comm
           << (op.comm == 0 ? " (MPI_COMM_WORLD)" : " (user-defined)") << "\n";
        if (op.type == OpType::kIsend || op.type == OpType::kIrecv)
          os << "MPI_Request request=[" << op.request << "]\n";
        break;
      case OpCategory::kProgress:
        if (op.type == OpType::kWaitall || op.type == OpType::kWaitany) {
          os << "int count=" << op.bytes << "\n";
        }
        os << "MPI_Request request=[" << op.request << "]\n";
        break;
      case OpCategory::kCollective:
        os << "int count=" << op.bytes << "\n";
        os << "MPI_Datatype datatype=1 (MPI_BYTE)\n";
        os << "MPI_Comm comm=" << op.comm
           << (op.comm == 0 ? " (MPI_COMM_WORLD)" : " (user-defined)") << "\n";
        break;
      case OpCategory::kOneSided:
        os << "int origin_count=" << op.bytes << "\n";
        os << "int target_rank=" << op.peer << "\n";
        break;
      case OpCategory::kOther:
        break;
    }
    write_ts_line(os, name, "returning", op.end_ts);
  }
}

RankTrace parse_dumpi_text(std::istream& is, Rank rank) {
  RankTrace out;
  out.rank = rank;
  std::string line;
  bool in_block = false;
  TraceOp cur;
  std::string cur_name;

  auto parse_int = [](const std::string& s, std::size_t eq) {
    return std::strtoll(s.c_str() + eq + 1, nullptr, 10);
  };

  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;

    const std::size_t entering = line.find(" entering at walltime ");
    const std::size_t returning = line.find(" returning at walltime ");
    if (entering != std::string::npos || returning != std::string::npos) {
      const std::size_t pos = entering != std::string::npos ? entering : returning;
      const std::string name = line.substr(0, pos);
      const double ts =
          std::strtod(line.c_str() + pos +
                          (entering != std::string::npos
                               ? sizeof(" entering at walltime ") - 1
                               : sizeof(" returning at walltime ") - 1),
                      nullptr);
      if (entering != std::string::npos) {
        if (in_block)
          throw std::runtime_error("dumpi parse: nested block at line " +
                                   std::to_string(line_no));
        in_block = true;
        cur = TraceOp{};
        cur_name = name;
        cur.start_ts = ts;
        const auto it = name_to_type().find(name);
        cur.type = it != name_to_type().end() ? it->second : OpType::kInit;
        if (it == name_to_type().end()) cur_name.clear();  // skip unknown call
      } else {
        if (!in_block)
          throw std::runtime_error("dumpi parse: stray return at line " +
                                   std::to_string(line_no));
        in_block = false;
        cur.end_ts = ts;
        if (!cur_name.empty()) out.ops.push_back(cur);
      }
      continue;
    }

    if (!in_block) continue;  // prose between blocks (dumpi preambles)

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    // Keys look like "int dest" / "MPI_Comm comm" / "MPI_Request request".
    const std::size_t space = line.rfind(' ', eq);
    const std::string key =
        space == std::string::npos ? line.substr(0, eq)
                                   : line.substr(space + 1, eq - space - 1);
    if (key == "count" || key == "origin_count") {
      cur.bytes = static_cast<std::uint32_t>(parse_int(line, eq));
    } else if (key == "dest" || key == "source" || key == "target_rank") {
      cur.peer = static_cast<Rank>(parse_int(line, eq));
    } else if (key == "tag") {
      cur.tag = static_cast<Tag>(parse_int(line, eq));
    } else if (key == "comm") {
      cur.comm = static_cast<CommId>(parse_int(line, eq));
    } else if (key == "request") {
      // "request=[5]"
      const std::size_t bracket = line.find('[', eq);
      if (bracket != std::string::npos)
        cur.request =
            static_cast<std::uint64_t>(std::strtoll(line.c_str() + bracket + 1,
                                                    nullptr, 10));
    }
  }
  if (in_block)
    throw std::runtime_error("dumpi parse: unterminated block at EOF");
  return out;
}

std::string write_trace_dir(const Trace& trace, const std::string& dir) {
  fs::create_directories(dir);
  for (const RankTrace& r : trace.ranks) {
    char name[256];
    std::snprintf(name, sizeof(name), "dumpi-%s-%04d.txt",
                  trace.app_name.c_str(), r.rank);
    std::ofstream os(fs::path(dir) / name);
    OTM_ASSERT_MSG(os.good(), "cannot open trace file for writing");
    write_dumpi_text(r, os);
  }
  const fs::path meta = fs::path(dir) / ("dumpi-" + trace.app_name + ".meta");
  std::ofstream ms(meta);
  ms << "hostname=otm-sim\n";
  ms << "numprocs=" << trace.num_ranks << "\n";
  ms << "fileprefix=dumpi-" << trace.app_name << "\n";
  return meta.string();
}

Trace load_trace_dir(const std::string& meta_path) {
  std::ifstream ms(meta_path);
  if (!ms.good()) throw std::runtime_error("cannot open meta file " + meta_path);
  int numprocs = 0;
  std::string prefix;
  std::string line;
  while (std::getline(ms, line)) {
    if (line.rfind("numprocs=", 0) == 0) numprocs = std::atoi(line.c_str() + 9);
    if (line.rfind("fileprefix=", 0) == 0) prefix = line.substr(11);
  }
  if (numprocs <= 0 || prefix.empty())
    throw std::runtime_error("malformed meta file " + meta_path);

  Trace t;
  t.num_ranks = numprocs;
  t.app_name = prefix.rfind("dumpi-", 0) == 0 ? prefix.substr(6) : prefix;
  const fs::path dir = fs::path(meta_path).parent_path();
  for (int r = 0; r < numprocs; ++r) {
    char name[256];
    std::snprintf(name, sizeof(name), "%s-%04d.txt", prefix.c_str(), r);
    std::ifstream is(dir / name);
    if (!is.good())
      throw std::runtime_error(std::string("missing trace file ") + name);
    t.ranks.push_back(parse_dumpi_text(is, static_cast<Rank>(r)));
  }
  return t;
}

}  // namespace otm::trace
