file(REMOVE_RECURSE
  "CMakeFiles/otm_trace.dir/analyzer.cpp.o"
  "CMakeFiles/otm_trace.dir/analyzer.cpp.o.d"
  "CMakeFiles/otm_trace.dir/cache.cpp.o"
  "CMakeFiles/otm_trace.dir/cache.cpp.o.d"
  "CMakeFiles/otm_trace.dir/dumpi_text.cpp.o"
  "CMakeFiles/otm_trace.dir/dumpi_text.cpp.o.d"
  "CMakeFiles/otm_trace.dir/jsonl.cpp.o"
  "CMakeFiles/otm_trace.dir/jsonl.cpp.o.d"
  "CMakeFiles/otm_trace.dir/ops.cpp.o"
  "CMakeFiles/otm_trace.dir/ops.cpp.o.d"
  "CMakeFiles/otm_trace.dir/synthetic.cpp.o"
  "CMakeFiles/otm_trace.dir/synthetic.cpp.o.d"
  "libotm_trace.a"
  "libotm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
