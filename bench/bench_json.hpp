// Schema-versioned JSON emission for the benchmark harness (--json=FILE).
//
// Every bench that emits machine-readable results writes the same document
// shape, so `bench/harness.py` can merge them into BENCH_matching.json and
// `scripts/perf_gate.py` can diff any two documents:
//
//   {
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "smoke": false,
//     "config": { "<knob>": <number>, ... },   // pinned reps/seeds/sizes
//     "scenarios": [
//       { "name": "...", "kind": "modeled" | "walltime",
//         "msgs_per_sec": ..., "ns_per_msg": ...,
//         "p50_seq_ns": ..., "p99_seq_ns": ...,
//         "host_match_cycles_per_msg": ..., "conflicts_per_seq": ... }
//     ]
//   }
//
// "modeled" scenarios are deterministic (cost-model clock), so the perf
// gate can hold them to a tight tolerance; "walltime" scenarios are real
// measurements and get a wide noise band.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace otm::bench {

inline constexpr int kBenchSchemaVersion = 1;

/// Percentile over a sample set, p in [0, 100], linear interpolation
/// between order statistics. Returns 0 for an empty set.
double percentile(std::vector<double> samples, double p);

struct ScenarioRecord {
  std::string name;
  std::string kind = "modeled";  ///< "modeled" (deterministic) | "walltime"
  double msgs_per_sec = 0.0;
  double ns_per_msg = 0.0;
  double p50_seq_ns = 0.0;
  double p99_seq_ns = 0.0;
  double host_match_cycles_per_msg = 0.0;
  double conflicts_per_seq = 0.0;
  /// Bench-specific metrics serialized as additional scenario keys (the
  /// perf gate ignores keys it does not know; trends can still plot them).
  std::vector<std::pair<std::string, double>> extra;
};

struct BenchJsonDoc {
  std::string bench;  ///< binary name, e.g. "fig8_message_rate"
  bool smoke = false;
  std::vector<std::pair<std::string, double>> config;  ///< pinned knobs
  std::vector<ScenarioRecord> scenarios;
};

/// Writes `doc` to `path`; returns false on I/O failure.
bool write_bench_json(const std::string& path, const BenchJsonDoc& doc);

}  // namespace otm::bench
