// otmlint-fixture: src/core/fixture.cpp
// R1 bad twin: default-argument atomics are seq_cst, banned on matching
// paths; and even an explicit order without a justifying comment fails.
#include <atomic>

namespace otm {

std::atomic<unsigned> counter{0};

unsigned bump_default_order() {
  return counter.fetch_add(1);  // no memory_order argument at all
}

unsigned load_without_justification() {
  return counter.load(std::memory_order_acquire);
}

}  // namespace otm
