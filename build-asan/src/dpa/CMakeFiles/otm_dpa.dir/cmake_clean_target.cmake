file(REMOVE_RECURSE
  "libotm_dpa.a"
)
