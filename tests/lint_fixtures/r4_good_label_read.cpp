// otmlint-fixture: src/core/fixture.cpp
// R4 good twin: reading / comparing posting labels is how every consumer
// uses them; only producing them is restricted.
#include <cstdint>

namespace otm {

struct FakeDescriptor {
  std::uint64_t label = 0;
};

bool older(const FakeDescriptor& a, const FakeDescriptor& b) {
  return a.label < b.label;  // comparison: C1 age test, always allowed
}

}  // namespace otm
