file(REMOVE_RECURSE
  "CMakeFiles/micro_matchers.dir/micro_matchers.cpp.o"
  "CMakeFiles/micro_matchers.dir/micro_matchers.cpp.o.d"
  "micro_matchers"
  "micro_matchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_matchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
