file(REMOVE_RECURSE
  "libotm_bench_common.a"
)
