// Ring-buffered event tracer (the sPIN-style handler instrumentation of the
// observability layer).
//
// record() is wait-free: a relaxed fetch_add claims a slot, the event is
// written in place, and a per-slot sequence stamp is published with release
// ordering. The ring overwrites the oldest events once full, so tracing a
// long run keeps the most recent window — snapshot() returns whatever is
// still resident, in emission order.
//
// Readers are expected to run on quiesced data (end of a bench, test
// assertions); a snapshot taken while writers are active skips slots whose
// stamp shows a concurrent overwrite instead of returning torn events.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/trace_event.hpp"

namespace otm::obs {

class Tracer {
 public:
  /// `capacity` is rounded up to a power of two (minimum 16).
  explicit Tracer(std::size_t capacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Append one event. Thread-safe, wait-free, never allocates.
  void record(EventKind kind, std::uint64_t ts, std::uint32_t lane = 0,
              std::uint64_t a0 = 0, std::uint64_t a1 = 0) noexcept;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Events emitted since construction/clear (including overwritten ones).
  // relaxed: a point-in-time count; slot visibility is carried by the
  // per-slot stamp protocol, not by this counter.
  std::uint64_t emitted() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Events overwritten by ring wrap-around.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = emitted();
    return n > capacity() ? n - capacity() : 0;
  }

  /// Events still resident in the ring.
  std::size_t size() const noexcept {
    const std::uint64_t n = emitted();
    return n < capacity() ? static_cast<std::size_t>(n) : capacity();
  }

  /// Resident events, oldest first. Slots being overwritten concurrently
  /// are skipped (their stamp no longer matches the expected sequence).
  std::vector<TraceEvent> snapshot() const;

  /// Drop all events. Not safe against concurrent record().
  void clear() noexcept;

  /// Chrome/Perfetto trace_event JSON ({"traceEvents": [...]}).
  /// kBlockBegin/kBlockEnd become "B"/"E" duration events, kSample becomes
  /// a "C" counter event, everything else an instant event. Timestamps are
  /// emitted as microsecond ticks carrying the modeled clock verbatim.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Slot {
    // ~0 = never written; otherwise the seq of the resident event.
    std::atomic<std::uint64_t> stamp{~std::uint64_t{0}};
    TraceEvent ev{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};
};

/// Emit one event as a Chrome trace_event JSON object. `first` tracks the
/// comma state of the enclosing array (shared with the combined exporter in
/// Observability, which appends sampler counter tracks to the same array).
void write_chrome_event(std::ostream& os, const TraceEvent& e, bool& first);

}  // namespace otm::obs
