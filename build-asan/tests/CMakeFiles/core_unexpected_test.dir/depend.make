# Empty dependencies file for core_unexpected_test.
# This may be replaced when dependencies are built.
