# Empty dependencies file for offload_savings.
# This may be replaced when dependencies are built.
