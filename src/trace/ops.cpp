#include "trace/ops.hpp"

namespace otm::trace {

const char* mpi_name(OpType t) noexcept {
  switch (t) {
    case OpType::kSend: return "MPI_Send";
    case OpType::kIsend: return "MPI_Isend";
    case OpType::kRecv: return "MPI_Recv";
    case OpType::kIrecv: return "MPI_Irecv";
    case OpType::kWait: return "MPI_Wait";
    case OpType::kWaitall: return "MPI_Waitall";
    case OpType::kWaitany: return "MPI_Waitany";
    case OpType::kTest: return "MPI_Test";
    case OpType::kBarrier: return "MPI_Barrier";
    case OpType::kBcast: return "MPI_Bcast";
    case OpType::kReduce: return "MPI_Reduce";
    case OpType::kAllreduce: return "MPI_Allreduce";
    case OpType::kGather: return "MPI_Gather";
    case OpType::kGatherv: return "MPI_Gatherv";
    case OpType::kScatter: return "MPI_Scatter";
    case OpType::kAlltoall: return "MPI_Alltoall";
    case OpType::kAlltoallv: return "MPI_Alltoallv";
    case OpType::kAllgather: return "MPI_Allgather";
    case OpType::kPut: return "MPI_Put";
    case OpType::kGet: return "MPI_Get";
    case OpType::kAccumulate: return "MPI_Accumulate";
    case OpType::kInit: return "MPI_Init";
    case OpType::kFinalize: return "MPI_Finalize";
  }
  return "MPI_Unknown";
}

}  // namespace otm::trace
