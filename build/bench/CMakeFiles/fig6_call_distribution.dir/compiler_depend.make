# Empty compiler generated dependencies file for fig6_call_distribution.
# This may be replaced when dependencies are built.
