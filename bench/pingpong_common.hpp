// Shared ping-pong harness for the Fig. 8 message-rate benchmark and the
// optimization/block-size ablations.
//
// Reproduces the paper's Sec. VI methodology: a node sends a sequence of
// k=100 small messages to its peer; once the peer receives (and matches)
// all of them, it replies with an acknowledgment. Message rate = k divided
// by the modeled time from first send to ack arrival, repeated over many
// sequences.
//
// Scenarios: NC (every receive has a distinct source/tag combination),
// WC (all receives share one source/tag — conflict-heavy). The receiver
// matches either on the simulated DPA (optimistic tag matching), on the
// host CPU with the traditional list matcher (MPI-CPU), or not at all
// (RDMA-CPU reference: pure transport).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/list_matcher.hpp"
#include "core/cost_model.hpp"
#include "dpa/dpa_config.hpp"
#include "obs/observability.hpp"
#include "proto/endpoint.hpp"
#include "rdma/fabric.hpp"

namespace otm::bench {

struct PingPongConfig {
  unsigned messages_per_seq = 100;  ///< k
  unsigned repetitions = 500;
  std::uint32_t payload_bytes = 8;
  bool with_conflict = false;  ///< WC: all receives share (src, tag)
  MatchConfig match = MatchConfig::paper_prototype();
  DpaConfig dpa{};
  proto::EndpointConfig endpoint{};
  rdma::FabricConfig fabric{};

  /// Optional observability sink (DPA scenario only): the two endpoints
  /// attach under "<obs_prefix>sender" / "<obs_prefix>receiver".
  obs::Observability* obs = nullptr;
  std::string obs_prefix;
};

struct PingPongResult {
  double msg_rate = 0.0;           ///< messages matched per second (modeled)
  double avg_seq_ns = 0.0;         ///< modeled time per sequence
  std::uint64_t host_match_cycles = 0;  ///< matching cycles burned on the host
  std::uint64_t conflicts = 0;
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  std::vector<double> seq_ns;      ///< per-repetition sequence time (for p50/p99)
  double wall_ns = 0.0;            ///< real elapsed time for the whole run
  /// Per-ingress-lane receiver counters (docs/SHARDING.md, "Ingress
  /// lanes"); empty for single-lane scenarios that predate the lane split.
  std::vector<std::uint64_t> lane_cqes;
  std::vector<std::uint64_t> lane_doorbells;
};

/// Optimistic tag matching offloaded to the simulated DPA.
PingPongResult run_optimistic_dpa(const PingPongConfig& cfg);

/// Traditional two-queue matching on the host CPU (the MPI-CPU baseline).
PingPongResult run_mpi_cpu(const PingPongConfig& cfg);

/// Pure RDMA message exchange, no matching (the RDMA-CPU reference).
PingPongResult run_rdma_cpu(const PingPongConfig& cfg);

/// Senders in the incast scenario (uniform across 2- and 4-shard masks).
inline constexpr unsigned kIncastSenders = 4;

/// Incast onto a sharded receiver (docs/SHARDING.md): kIncastSenders nodes
/// stream k/kIncastSenders messages each at one receiver whose matching
/// structures are split into `shards` source-routed engines; the sequence
/// closes with an ack to every sender. With shards == 1 this is the paper's
/// single-serializer DPA; higher shard counts fan the CQE stream out across
/// per-shard completion queues. `lanes` > 1 additionally splits the ingress
/// path itself — every endpoint runs that many QP/CQ lanes with RSS-style
/// source steering, so the senders' streams arrive on distinct lane CQs and
/// the result carries per-lane cqes/doorbells plus a wall-clock time.
PingPongResult run_sharded_incast(const PingPongConfig& cfg, unsigned shards,
                                  unsigned lanes = 1);

/// Messages per storm sequence (docs/COALESCING.md). Deliberately larger
/// than the paper's k=100 ping-pong: the fixed wire/ack round-trip plus the
/// pipeline fill is ~2.4 us, so a short sequence would bury the
/// per-message savings the merged path is after.
inline constexpr unsigned kStormMessages = 4096;

/// Small-message storm: one sender streams kStormMessages tiny eager
/// messages (cfg.payload_bytes, intended 8-64 B) at one receiver, distinct
/// tags, then the receiver acks the sequence. With `coalesced` the sender's
/// endpoint packs the burst into kMerged wire packets (one doorbell and one
/// CQE per packet instead of per message); without it every message rides
/// its own packet. Sizes the match table and buffer pools for the
/// kStormMessages-deep burst; cfg.messages_per_seq is ignored. wall_ns in
/// the result covers
/// the whole repetition loop with a real clock.
PingPongResult run_small_storm(const PingPongConfig& cfg, bool coalesced);

}  // namespace otm::bench
