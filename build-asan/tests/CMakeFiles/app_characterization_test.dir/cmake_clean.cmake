file(REMOVE_RECURSE
  "CMakeFiles/app_characterization_test.dir/app_characterization_test.cpp.o"
  "CMakeFiles/app_characterization_test.dir/app_characterization_test.cpp.o.d"
  "app_characterization_test"
  "app_characterization_test.pdb"
  "app_characterization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_characterization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
