# Empty compiler generated dependencies file for wildcard_master_worker.
# This may be replaced when dependencies are built.
