// Engine configuration: bin counts, block size, capacity, and the
// Sec. III-D optimization toggles (each individually switchable so the
// ablation benches can quantify its contribution).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/booking_bitmap.hpp"
#include "util/hash.hpp"

namespace otm {

/// Upper bound on ShardedEngine instances (power-of-two source-mask routing;
/// docs/SHARDING.md). Small on purpose: each shard owns full descriptor
/// tables, so the footprint model multiplies by this.
inline constexpr unsigned kMaxShards = 8;

struct MatchConfig {
  /// Bins per hash-table index (three tables; Sec. IV-E sizes 20 B/bin).
  /// Must be a power of two. 1 bin degenerates to the traditional list.
  std::size_t bins = 128;

  /// Messages matched concurrently per block ("N" in Sec. III-A); bounded
  /// by the 32-bit booking bitmap.
  unsigned block_size = kMaxBlockThreads;

  /// Capacity of the receive-descriptor table (max receives posted at the
  /// same time, Sec. III-B). Exceeding it signals software fallback.
  std::size_t max_receives = 8 * 1024;

  /// Capacity of the unexpected-message descriptor table.
  std::size_t max_unexpected = 8 * 1024;

  // --- Sec. III-D optimizations -------------------------------------------

  /// Use sender-provided hash values from the message header when present.
  bool use_inline_hashes = true;

  /// Skip receives already booked by a lower-id thread during the
  /// optimistic search.
  bool early_booking_check = true;

  /// Mark consumed receives and clean bins up lazily at insert time instead
  /// of unlinking (and serializing) inside the matching threads.
  bool lazy_removal = true;

  /// Allow the fast conflict-resolution path (compatible-receive sequences).
  /// Disabled, every conflict takes the slow path — this is the paper's
  /// WC-SP configuration.
  bool enable_fast_path = true;

  // --- Sec. VII communicator hints ----------------------------------------

  /// mpi_assert_no_any_source + mpi_assert_no_any_tag: no receive ever uses
  /// a wildcard, so only the hash(src,tag) index exists — posts with
  /// wildcards are rejected, searches probe a single index, and unexpected
  /// messages are indexed once instead of four times.
  bool assume_no_wildcards = false;

  /// mpi_assert_allow_overtaking: the application does not rely on matching
  /// order, so the block matcher may skip the partial barriers and the
  /// ordered conflict resolution entirely — threads race on consuming
  /// receives with atomic state transitions and simply re-search on loss.
  bool allow_overtaking = false;

  // --- Multi-engine sharding (docs/SHARDING.md) ---------------------------

  /// Number of MatchEngine shards, routed by `source & (shards - 1)`. Must
  /// be a power of two; 1 keeps the single-engine behavior bit-for-bit.
  /// Wildcard-source receives are replicated into every shard and claimed
  /// at most once through the cross-shard label (ShardedEngine).
  std::size_t shards = 1;

  bool valid() const noexcept {
    return is_pow2(bins) && block_size >= 1 && block_size <= kMaxBlockThreads &&
           max_receives > 0 && max_unexpected > 0 && is_pow2(shards) &&
           shards >= 1 && shards <= kMaxShards;
  }

  /// Paper Fig. 8 prototype configuration: hash tables twice the maximum
  /// number of in-flight receives (1024), 32 DPA threads.
  static MatchConfig paper_prototype() noexcept {
    MatchConfig c;
    c.max_receives = 1024;
    c.bins = 2048;
    c.block_size = 32;
    return c;
  }
};

/// Memory-footprint model of Sec. IV-E: each bin holds a 4-byte remove lock
/// and two 8-byte pointers (head/tail of the chained queue); each receive
/// descriptor consumes 64 bytes.
struct MemoryFootprint {
  static constexpr std::size_t kBytesPerBin = 20;
  static constexpr std::size_t kBytesPerDescriptor = 64;
  static constexpr unsigned kHashIndexes = 3;  // the list index has no bins

  std::size_t bin_bytes = 0;
  std::size_t descriptor_bytes = 0;

  std::size_t total() const noexcept { return bin_bytes + descriptor_bytes; }

  static MemoryFootprint of(std::size_t bins, std::size_t max_receives) noexcept {
    MemoryFootprint f;
    f.bin_bytes = kHashIndexes * bins * kBytesPerBin;
    f.descriptor_bytes = max_receives * kBytesPerDescriptor;
    return f;
  }
};

}  // namespace otm
