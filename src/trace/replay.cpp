#include "trace/replay.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <utility>

#include "util/assert.hpp"

namespace otm::trace {
namespace {

/// Reserved tag space for replayed collectives (dissemination-barrier
/// rounds); application traces never use tags this large.
constexpr Tag kCollTagBase = 1'000'000;
constexpr std::uint32_t kCollBytes = 16;
constexpr std::uint64_t kNoStamp = ~std::uint64_t{0};

/// Packed (src, dst, tag) stream key: ranks < 2^20, tags < 2^24.
std::uint64_t stream_key(Rank src, Rank dst, Tag tag) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 44) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) &
          0xFFFFFFu);
}

std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Fold one completed receive into a fingerprint word.
std::uint64_t fold_receive(Rank src, Tag tag, std::uint64_t stamp,
                           std::uint32_t bytes) noexcept {
  std::uint64_t h = 0x2545F4914F6CDD1Dull;
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix64(h ^ stamp);
  h = mix64(h ^ bytes);
  return h;
}

int ceil_log2(int n) noexcept {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

bool has_wildcards(const Trace& trace) noexcept {
  for (const auto& rt : trace.ranks)
    for (const auto& op : rt.ops) {
      if (op.type != OpType::kRecv && op.type != OpType::kIrecv) continue;
      if (op.peer == kAnySource || op.tag == kAnyTag) return true;
    }
  return false;
}

}  // namespace

Trace slice_trace(const Trace& trace, double fraction) {
  if (fraction >= 1.0 || trace.total_ops() == 0) return trace;
  struct Span {
    double start = 0.0;
    double end = 0.0;
    std::uint64_t stream = 0;  ///< matching stream key (0 = not p2p)
    int delta = 0;             ///< +1 send, -1 receive
  };
  const bool wildcards = has_wildcards(trace);
  std::vector<Span> spans;
  spans.reserve(trace.total_ops());
  double makespan = 0.0;
  for (const auto& rt : trace.ranks)
    for (const auto& op : rt.ops) {
      Span s{op.start_ts, op.end_ts, 0, 0};
      // Wildcard traces collapse the stream key to the destination rank:
      // counts still have to balance even if pairing is ambiguous.
      switch (op.type) {
        case OpType::kSend:
        case OpType::kIsend:
          s.stream = wildcards ? stream_key(0, op.peer, 0)
                               : stream_key(rt.rank, op.peer, op.tag);
          s.delta = 1;
          break;
        case OpType::kRecv:
        case OpType::kIrecv:
          s.stream = wildcards ? stream_key(0, rt.rank, 0)
                               : stream_key(op.peer, rt.rank, op.tag);
          s.delta = -1;
          break;
        default:
          break;
      }
      spans.push_back(s);
      makespan = std::max(makespan, op.end_ts);
    }
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.start < b.start; });
  // A boundary is a start time by which (a) every earlier-starting op has
  // ended — nothing in flight on any rank — and (b) every message stream
  // is balanced: each send issued before the boundary has its matching
  // receive issued too. (a) alone is not enough: the generators' lockstep
  // 1us ops make almost every tick look quiescent even mid-phase, and a
  // cut between a phase's receives and its sends strands half the pairs.
  std::vector<double> boundaries;
  std::unordered_map<std::uint64_t, std::int64_t> stream_diff;
  std::size_t unbalanced = 0;
  double running_end = 0.0;
  for (const Span& s : spans) {
    if (s.start > 0.0 && running_end <= s.start && unbalanced == 0 &&
        (boundaries.empty() || boundaries.back() != s.start))
      boundaries.push_back(s.start);
    running_end = std::max(running_end, s.end);
    if (s.delta != 0) {
      std::int64_t& diff = stream_diff[s.stream];
      if (diff == 0) ++unbalanced;
      diff += s.delta;
      if (diff == 0) --unbalanced;
    }
  }
  if (boundaries.empty()) return trace;
  const double target = fraction * makespan;
  double best = boundaries.front();
  for (const double b : boundaries)
    if (std::abs(b - target) < std::abs(best - target)) best = b;
  Trace out;
  out.app_name = trace.app_name;
  out.num_ranks = trace.num_ranks;
  out.ranks.resize(trace.ranks.size());
  for (std::size_t i = 0; i < trace.ranks.size(); ++i) {
    out.ranks[i].rank = trace.ranks[i].rank;
    for (const auto& op : trace.ranks[i].ops)
      if (op.start_ts < best) out.ranks[i].ops.push_back(op);
  }
  return out;
}

struct TraceReplayDriver::ReqInfo {
  bool is_recv = false;
  bool counted = false;  ///< harvested once already (exactly-once guard)
  std::uint64_t expected_stamp = kNoStamp;  ///< oracle prediction
  std::uint64_t oracle_cookie = 0;
  std::vector<std::byte> buffer;  ///< payload storage, freed at harvest
};

struct TraceReplayDriver::RankState {
  const std::vector<TraceOp>* ops = nullptr;  ///< trace rank's op list
  std::size_t pc = 0;
  int group_size = 0;   ///< T: ranks per instance
  Rank group_base = 0;  ///< first global rank of this instance
  /// Trace request id -> live mpi request (issued, not yet waited).
  std::unordered_map<std::uint64_t, mpi::Request> live;
  /// Issue order of live trace request ids.
  std::deque<std::uint64_t> outstanding;
  /// mpi request id -> bookkeeping, for everything issued and not yet
  /// harvested (includes collective-round requests, which bypass `live`).
  std::unordered_map<std::uint64_t, ReqInfo> inflight;
  /// Requests the task blocked on; harvested at the next step entry.
  std::vector<mpi::Request> to_harvest;
  int coll_round = -1;  ///< -1 = not inside a collective
  int coll_rounds = 0;
  std::size_t queue_depth = 0;  ///< posted receives not yet harvested
};

TraceReplayDriver::TraceReplayDriver(const Trace& trace, int target_ranks,
                                     const ReplayConfig& cfg)
    : trace_(slice_trace(trace, cfg.slice)),
      target_ranks_(target_ranks),
      cfg_(cfg) {
  OTM_ASSERT_MSG(trace_.num_ranks > 0 && target_ranks_ >= trace_.num_ranks &&
                     target_ranks_ % trace_.num_ranks == 0,
                 "target world must be an integer multiple of the trace");
  instances_ = target_ranks_ / trace_.num_ranks;
  wildcard_free_ = !has_wildcards(trace_);

  mpi::WorldOptions opt;
  opt.backend = mpi::Backend::kOffloadDpa;
  opt.on_demand_connect = true;  // a 1024-rank full mesh is ~524k QP pairs
  opt.match.bins = 64;
  opt.match.block_size = 4;
  opt.match.max_receives = 1024;
  opt.match.max_unexpected = 1024;
  opt.match.shards = cfg_.shards;
  // Per-endpoint footprint shrunk so 1024 endpoints fit in one process.
  opt.endpoint.eager_threshold = 512;
  opt.endpoint.bounce_count = 128;
  opt.endpoint.cq_depth = 1024;
  opt.endpoint.reliability.mode = proto::ReliabilityConfig::Mode::kOn;
  opt.endpoint.reliability.rto_ns = 500;
  opt.endpoint.reliability.rto_max_ns = 4'000;
  opt.endpoint.reliability.progress_tick_ns = 100;
  opt.endpoint.reliability.retry_budget = cfg_.faults ? 64 : 16;
  opt.endpoint.coalescing.enabled = cfg_.coalescing;
  if (cfg_.faults) {
    opt.fabric.fault.enabled = true;
    opt.fabric.fault.seed = cfg_.fault_seed;
    opt.fabric.fault.drop_probability = 0.01;
    opt.fabric.fault.duplicate_probability = 0.005;
    opt.fabric.fault.reorder_probability = 0.01;
    opt.endpoint.recovery.enabled = true;
    opt.endpoint.recovery.max_attempts = 16;
    opt.endpoint.recovery.quiesce_ns = 200;
  }
  world_ = std::make_unique<mpi::World>(target_ranks_, opt);

  const int T = trace_.num_ranks;
  states_.resize(static_cast<std::size_t>(target_ranks_));
  for (int g = 0; g < target_ranks_; ++g) {
    RankState& st = states_[static_cast<std::size_t>(g)];
    st.ops = &trace_.ranks[static_cast<std::size_t>(g % T)].ops;
    st.group_size = T;
    st.group_base = static_cast<Rank>((g / T) * T);
  }
  if (cfg_.oracle) {
    oracle_.resize(static_cast<std::size_t>(target_ranks_));
    cookie_req_.resize(static_cast<std::size_t>(target_ranks_));
  }
  result_.fingerprints.resize(static_cast<std::size_t>(T));
  result_.match_counts.assign(static_cast<std::size_t>(T), 0);
  result_.oracle_strict = cfg_.oracle && wildcard_free_;
}

TraceReplayDriver::~TraceReplayDriver() = default;

std::size_t TraceReplayDriver::payload_len(std::uint32_t bytes) const noexcept {
  return std::clamp<std::size_t>(bytes, 8, cfg_.max_payload_bytes);
}

mpi::Request TraceReplayDriver::issue_send(mpi::Proc& p, RankState& st,
                                           Rank dst, Tag tag,
                                           std::uint32_t bytes) {
  ReqInfo info;
  info.buffer.resize(payload_len(bytes));
  const std::uint64_t stamp = send_seq_[stream_key(p.rank(), dst, tag)]++;
  std::memcpy(info.buffer.data(), &stamp, sizeof(stamp));
  const mpi::Request req =
      p.isend(info.buffer, dst, tag, p.world_comm());
  ++result_.messages_sent;
  if (cfg_.oracle) oracle_arrive(dst, p.rank(), tag, stamp);
  st.inflight.emplace(req.id, std::move(info));
  return req;
}

mpi::Request TraceReplayDriver::issue_recv(mpi::Proc& p, RankState& st,
                                           Rank src, Tag tag,
                                           std::uint32_t bytes) {
  ReqInfo info;
  info.is_recv = true;
  info.buffer.resize(payload_len(bytes));
  const mpi::Request req = p.irecv(info.buffer, src, tag, p.world_comm());
  ++result_.recvs_posted;
  ++st.queue_depth;
  result_.queue_depth_max = std::max(result_.queue_depth_max, st.queue_depth);
  depth_sum_ += st.queue_depth;
  ++depth_samples_;
  if (cfg_.oracle) {
    const std::uint64_t cookie = next_cookie_++;
    info.oracle_cookie = cookie;
    const auto idx = static_cast<std::size_t>(p.rank());
    if (const auto matched =
            oracle_[idx].post(MatchSpec{src, tag, 0}, cookie)) {
      info.expected_stamp = *matched;  // paired with a stored unexpected
    } else {
      cookie_req_[idx].emplace(cookie, req.id);
    }
  }
  st.inflight.emplace(req.id, std::move(info));
  return req;
}

void TraceReplayDriver::oracle_arrive(Rank dst, Rank src, Tag tag,
                                      std::uint64_t stamp) {
  const auto idx = static_cast<std::size_t>(dst);
  const auto receive =
      oracle_[idx].arrive(Envelope{src, tag, 0}, /*message_id=*/stamp);
  if (!receive) return;
  auto& cookies = cookie_req_[idx];
  const auto it = cookies.find(*receive);
  if (it == cookies.end()) return;  // receive already harvested
  RankState& dst_state = states_[idx];
  const auto inflight = dst_state.inflight.find(it->second);
  if (inflight != dst_state.inflight.end())
    inflight->second.expected_stamp = stamp;
  cookies.erase(it);
}

void TraceReplayDriver::harvest(mpi::Proc& p, RankState& st) {
  for (const mpi::Request req : st.to_harvest) {
    const auto it = st.inflight.find(req.id);
    OTM_ASSERT_MSG(it != st.inflight.end(), "harvest of an unknown request");
    ReqInfo& info = it->second;
    mpi::Status status{};
    const bool done = p.test(req, &status);
    OTM_ASSERT_MSG(done, "harvest of an incomplete request");
    if (info.is_recv) {
      OTM_ASSERT(st.queue_depth > 0);
      --st.queue_depth;
      if (p.failed(req) || p.cancelled(req)) {
        ++result_.recvs_failed;
      } else {
        if (info.counted) ++result_.exactly_once_violations;
        info.counted = true;
        ++result_.recvs_completed;
        std::uint64_t stamp = 0;
        std::memcpy(&stamp, info.buffer.data(), sizeof(stamp));
        // FIFO: the k-th delivered message of each (src, dst, tag) stream
        // must carry stamp k. Resync after a violation so one slip does
        // not cascade into thousands of counts.
        std::uint64_t& next =
            recv_seq_[stream_key(status.source, p.rank(), status.tag)];
        if (stamp != next) ++result_.fifo_violations;
        next = stamp + 1;
        if (result_.oracle_strict && info.expected_stamp != stamp)
          ++result_.oracle_mismatches;
        if (st.group_base == 0) {
          const auto t = static_cast<std::size_t>(p.rank());
          result_.fingerprints[t].push_back(
              fold_receive(status.source, status.tag, stamp, status.bytes));
          ++result_.match_counts[t];
        }
      }
      if (cfg_.oracle && info.expected_stamp == kNoStamp)
        cookie_req_[static_cast<std::size_t>(p.rank())].erase(
            info.oracle_cookie);
    } else if (p.failed(req)) {
      ++result_.sends_failed;
    }
    st.inflight.erase(it);
  }
  st.to_harvest.clear();
}

mpi::WorldScheduler::Step TraceReplayDriver::wait_outstanding(
    RankState& st, std::size_t count) {
  count = std::min(count, st.outstanding.size());
  std::vector<mpi::Request> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t trace_req = st.outstanding.front();
    st.outstanding.pop_front();
    const auto it = st.live.find(trace_req);
    if (it == st.live.end()) continue;
    reqs.push_back(it->second);
    st.live.erase(it);
  }
  if (reqs.empty()) return mpi::WorldScheduler::Step::yield();
  st.to_harvest = reqs;
  return mpi::WorldScheduler::Step::wait_all(std::move(reqs));
}

mpi::WorldScheduler::Step TraceReplayDriver::collective_step(mpi::Proc& p,
                                                             RankState& st) {
  const int t = static_cast<int>(p.rank() - st.group_base);
  const int dist = 1 << st.coll_round;
  const Rank dst =
      st.group_base + static_cast<Rank>((t + dist) % st.group_size);
  const Rank src = st.group_base +
                   static_cast<Rank>((t - dist % st.group_size +
                                      st.group_size) %
                                     st.group_size);
  const Tag tag = kCollTagBase + static_cast<Tag>(st.coll_round);
  const mpi::Request s = issue_send(p, st, dst, tag, kCollBytes);
  const mpi::Request r = issue_recv(p, st, src, tag, kCollBytes);
  ++st.coll_round;
  st.to_harvest = {s, r};
  return mpi::WorldScheduler::Step::wait_all({s, r});
}

mpi::WorldScheduler::Step TraceReplayDriver::step(mpi::Proc& p,
                                                  RankState& st) {
  harvest(p, st);
  for (;;) {
    if (st.coll_round >= 0) {
      if (st.coll_round < st.coll_rounds) return collective_step(p, st);
      st.coll_round = -1;
      ++st.pc;
      continue;
    }
    if (st.pc >= st.ops->size()) {
      // Final drain: everything still outstanding (sends that were never
      // waited, receives past the slice's last waitall) must land so the
      // exactly-once accounting closes.
      if (!st.outstanding.empty())
        return wait_outstanding(st, st.outstanding.size());
      return mpi::WorldScheduler::Step::done();
    }
    const TraceOp& op = (*st.ops)[st.pc];
    switch (op.type) {
      case OpType::kIsend: {
        const Rank dst = st.group_base + op.peer;
        const mpi::Request req = issue_send(p, st, dst, op.tag, op.bytes);
        st.live.emplace(op.request, req);
        st.outstanding.push_back(op.request);
        ++st.pc;
        break;
      }
      case OpType::kIrecv: {
        const Rank src =
            op.peer == kAnySource ? kAnySource : st.group_base + op.peer;
        const mpi::Request req = issue_recv(p, st, src, op.tag, op.bytes);
        st.live.emplace(op.request, req);
        st.outstanding.push_back(op.request);
        ++st.pc;
        break;
      }
      case OpType::kSend: {
        const Rank dst = st.group_base + op.peer;
        const mpi::Request req = issue_send(p, st, dst, op.tag, op.bytes);
        ++st.pc;
        st.to_harvest = {req};
        return mpi::WorldScheduler::Step::wait_all({req});
      }
      case OpType::kRecv: {
        const Rank src =
            op.peer == kAnySource ? kAnySource : st.group_base + op.peer;
        const mpi::Request req = issue_recv(p, st, src, op.tag, op.bytes);
        ++st.pc;
        st.to_harvest = {req};
        return mpi::WorldScheduler::Step::wait_all({req});
      }
      case OpType::kWait: {
        ++st.pc;
        const auto it = st.live.find(op.request);
        if (it == st.live.end()) break;  // already waited (or sliced)
        const mpi::Request req = it->second;
        st.live.erase(it);
        const auto pos = std::find(st.outstanding.begin(),
                                   st.outstanding.end(), op.request);
        if (pos != st.outstanding.end()) st.outstanding.erase(pos);
        st.to_harvest = {req};
        return mpi::WorldScheduler::Step::wait_all({req});
      }
      case OpType::kWaitall:
      case OpType::kWaitany:
      case OpType::kTest: {
        // The generators' waitall counts are array lengths, not request
        // identities; the sync point the apps express is "everything I
        // have issued so far is finished".
        ++st.pc;
        if (st.outstanding.empty()) break;
        return wait_outstanding(st, st.outstanding.size());
      }
      case OpType::kBarrier:
      case OpType::kBcast:
      case OpType::kReduce:
      case OpType::kAllreduce:
      case OpType::kGather:
      case OpType::kGatherv:
      case OpType::kScatter:
      case OpType::kAlltoall:
      case OpType::kAlltoallv:
      case OpType::kAllgather: {
        if (st.group_size <= 1) {
          ++st.pc;
          break;
        }
        st.coll_rounds = ceil_log2(st.group_size);
        st.coll_round = 0;
        return collective_step(p, st);
      }
      default:  // kInit, kFinalize, one-sided ops: bookkeeping only
        ++st.pc;
        break;
    }
  }
}

void TraceReplayDriver::collect_counters() {
  for (int g = 0; g < target_ranks_; ++g) {
    const auto& c = world_->endpoint(g).counters();
    result_.messages_dropped += c.messages_dropped;
    result_.retransmits += c.retransmits;
    result_.epoch_bumps += c.epoch_bumps;
    result_.modeled_ns =
        std::max(result_.modeled_ns, world_->endpoint(g).now_ns());
    if (const MatchStats* ms = world_->proc(g).match_stats()) {
      result_.conflicts += ms->conflicts_detected;
      result_.match_attempts += ms->match_attempts;
    }
  }
}

ReplayResult TraceReplayDriver::run() {
  mpi::WorldScheduler::Config sched_cfg;
  sched_cfg.seed = cfg_.sched_seed;
  mpi::WorldScheduler sched(*world_, sched_cfg);
  for (int g = 0; g < target_ranks_; ++g) {
    RankState& st = states_[static_cast<std::size_t>(g)];
    sched.add_task(g, [this, &st](mpi::Proc& p) { return step(p, st); });
  }
  const auto outcome = sched.run();
  result_.completed = outcome == mpi::WorldScheduler::Outcome::kCompleted;
  result_.deadlock = outcome == mpi::WorldScheduler::Outcome::kDeadlock;
  result_.blocked = sched.blocked_ranks();
  // Settle: a few quiet progress rounds so trailing acks/keepalives drain
  // and the endpoint counters stop moving.
  for (int round = 0; round < 64; ++round)
    for (int g = 0; g < target_ranks_; ++g) world_->proc(g).progress();
  result_.virtual_ns = sched.virtual_now();
  result_.events = sched.events_processed();
  result_.dead_peer_drains = sched.dead_peer_drains();
  for (int g = 0; g < target_ranks_; ++g)
    result_.scheduler_steps += sched.steps(g);
  if (result_.completed) {
    // Exactly-once closure: nothing may remain in flight.
    for (const RankState& st : states_)
      for (const auto& [id, info] : st.inflight)
        if (info.is_recv && !info.counted) ++result_.exactly_once_violations;
  }
  result_.queue_depth_avg =
      depth_samples_ == 0
          ? 0.0
          : static_cast<double>(depth_sum_) /
                static_cast<double>(depth_samples_);
  collect_counters();
  return result_;
}

}  // namespace otm::trace
