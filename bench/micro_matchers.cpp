// Micro-benchmarks (google-benchmark, real wall clock): raw matcher
// operation throughput for the traditional list matcher, the Flajslik bin
// matcher and the optimistic receive store, across bin counts and queue
// depths. These quantify the data-structure effects independent of the
// DPA cost model.
//
// Harness flags (translated to google-benchmark flags before Initialize):
//   --json=f.json   write results in google-benchmark's JSON format
//                   (bench/harness.py folds them into BENCH_matching.json)
//   --smoke         minimal per-benchmark runtime for the tier-1
//                   perf-smoke tests
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baseline/bin_matcher.hpp"
#include "baseline/list_matcher.hpp"
#include "core/engine.hpp"
#include "util/rng.hpp"

namespace otm {
namespace {

// Post `depth` receives with distinct tags, then match them in reverse
// order — the worst-case scan for list-based matching.
void BM_ListMatcher_ReverseDrain(benchmark::State& state) {
  const auto depth = static_cast<Tag>(state.range(0));
  for (auto _ : state) {
    ListMatcher m;
    for (Tag t = 0; t < depth; ++t) m.post({1, t, 0}, static_cast<std::uint64_t>(t));
    for (Tag t = depth - 1; t >= 0; --t) {
      auto r = m.arrive({1, t, 0}, static_cast<std::uint64_t>(t));
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_ListMatcher_ReverseDrain)->Arg(8)->Arg(32)->Arg(128);

void BM_BinMatcher_ReverseDrain(benchmark::State& state) {
  const auto depth = static_cast<Tag>(state.range(0));
  const auto bins = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    BinMatcher m(bins);
    for (Tag t = 0; t < depth; ++t) m.post({1, t, 0}, static_cast<std::uint64_t>(t));
    for (Tag t = depth - 1; t >= 0; --t) {
      auto r = m.arrive({1, t, 0}, static_cast<std::uint64_t>(t));
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_BinMatcher_ReverseDrain)
    ->Args({128, 1})
    ->Args({128, 32})
    ->Args({128, 128});

void BM_OptimisticStore_ReverseDrain(benchmark::State& state) {
  const auto depth = static_cast<Tag>(state.range(0));
  const auto bins = static_cast<std::size_t>(state.range(1));
  MatchConfig cfg;
  cfg.bins = bins;
  cfg.block_size = 1;
  cfg.max_receives = 1024;
  cfg.max_unexpected = 1024;
  LockstepExecutor ex;
  for (auto _ : state) {
    MatchEngine eng(cfg);
    for (Tag t = 0; t < depth; ++t) eng.post_receive({1, t, 0});
    for (Tag t = depth - 1; t >= 0; --t) {
      auto o = eng.process_one(IncomingMessage::make(1, t, 0), ex);
      benchmark::DoNotOptimize(o);
    }
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_OptimisticStore_ReverseDrain)
    ->Args({128, 1})
    ->Args({128, 32})
    ->Args({128, 128});

// Block matching throughput: how fast the engine chews through a stream of
// pre-posted matches at various block sizes (lockstep schedule).
void BM_Engine_BlockStream(benchmark::State& state) {
  const auto block = static_cast<unsigned>(state.range(0));
  MatchConfig cfg;
  cfg.bins = 128;
  cfg.block_size = block;
  cfg.max_receives = 4096;
  cfg.max_unexpected = 4096;
  LockstepExecutor ex;
  constexpr unsigned kMsgs = 512;
  std::vector<IncomingMessage> msgs;
  for (unsigned i = 0; i < kMsgs; ++i)
    msgs.push_back(IncomingMessage::make(1, static_cast<Tag>(i % 64), 0));
  for (auto _ : state) {
    state.PauseTiming();
    MatchEngine eng(cfg);
    for (unsigned i = 0; i < kMsgs; ++i)
      eng.post_receive({1, static_cast<Tag>(i % 64), 0});
    state.ResumeTiming();
    auto out = eng.process(msgs, ex);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * kMsgs);
}
BENCHMARK(BM_Engine_BlockStream)->Arg(1)->Arg(4)->Arg(16)->Arg(32);

// Unexpected-message flow: arrivals first, then draining posts.
void BM_Engine_UnexpectedDrain(benchmark::State& state) {
  MatchConfig cfg;
  cfg.bins = 128;
  cfg.max_receives = 1024;
  cfg.max_unexpected = 1024;
  LockstepExecutor ex;
  constexpr Tag kN = 256;
  for (auto _ : state) {
    MatchEngine eng(cfg);
    for (Tag t = 0; t < kN; ++t)
      eng.process_one(IncomingMessage::make(1, t, 0), ex);
    for (Tag t = 0; t < kN; ++t) {
      auto p = eng.post_receive({1, t, 0});
      benchmark::DoNotOptimize(p);
    }
  }
  state.SetItemsProcessed(state.iterations() * kN * 2);
}
BENCHMARK(BM_Engine_UnexpectedDrain);

// Real-thread block matching (ThreadedExecutor): hardware-concurrency
// contention on the booking bitmaps and partial barriers.
void BM_Engine_ThreadedBlock(benchmark::State& state) {
  const auto block = static_cast<unsigned>(state.range(0));
  MatchConfig cfg;
  cfg.bins = 128;
  cfg.block_size = block;
  cfg.max_receives = 4096;
  cfg.max_unexpected = 4096;
  cfg.early_booking_check = false;
  ThreadedExecutor ex;
  std::vector<IncomingMessage> msgs;
  for (unsigned i = 0; i < block; ++i)
    msgs.push_back(IncomingMessage::make(1, 5, 0));
  for (auto _ : state) {
    state.PauseTiming();
    MatchEngine eng(cfg);
    for (unsigned i = 0; i < block; ++i) eng.post_receive({1, 5, 0});
    state.ResumeTiming();
    auto out = eng.process(msgs, ex);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * block);
}
BENCHMARK(BM_Engine_ThreadedBlock)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace otm

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_out;
  std::vector<std::string> passthrough;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") {
      smoke = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json_out = a.substr(7);
    } else if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      passthrough.push_back(a);
    }
  }
  if (smoke) passthrough.push_back("--benchmark_min_time=0.001");
  if (!json_out.empty()) {
    passthrough.push_back("--benchmark_out_format=json");
    passthrough.push_back("--benchmark_out=" + json_out);
  }

  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (std::string& s : passthrough) bench_argv.push_back(s.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
