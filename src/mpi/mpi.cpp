#include "mpi/mpi.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace otm::mpi {

// --- World -------------------------------------------------------------------

World::World(int num_ranks, const WorldOptions& options)
    : options_(options), fabric_(options.fabric) {
  OTM_ASSERT(num_ranks >= 1);
  if (options_.backend == Backend::kOffloadDpa) {
    if (options_.obs.any())
      obs_ = std::make_unique<obs::Observability>(options_.obs);
    endpoints_.reserve(static_cast<std::size_t>(num_ranks));
    for (int r = 0; r < num_ranks; ++r) {
      endpoints_.push_back(std::make_unique<proto::Endpoint>(
          fabric_, static_cast<Rank>(r), options_.endpoint, options_.match,
          options_.dpa));
      if (obs_ != nullptr)
        endpoints_.back()->attach_observability(
            obs_.get(), "rank" + std::to_string(r));
    }
    // The eager full mesh is right for small worlds (every pair talks, and
    // tests poke arbitrary pairs); on_demand_connect defers each QP pair to
    // the first send between the two ranks (docs/SCALING.md).
    if (!options_.on_demand_connect)
      for (int a = 0; a < num_ranks; ++a)
        for (int b = a + 1; b < num_ranks; ++b)
          endpoints_[static_cast<std::size_t>(a)]->connect(
              *endpoints_[static_cast<std::size_t>(b)]);
  }
  procs_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r)
    procs_.push_back(std::unique_ptr<Proc>(new Proc(*this, static_cast<Rank>(r))));
}

World::~World() = default;

Proc& World::proc(Rank r) {
  OTM_ASSERT(r >= 0 && static_cast<std::size_t>(r) < procs_.size());
  return *procs_[static_cast<std::size_t>(r)];
}

void World::ensure_connected(Rank a, Rank b) {
  if (options_.backend != Backend::kOffloadDpa || a == b) return;
  OTM_ASSERT(a >= 0 && static_cast<std::size_t>(a) < endpoints_.size() &&
             b >= 0 && static_cast<std::size_t>(b) < endpoints_.size());
  std::lock_guard lock(mutex_);
  auto& ea = *endpoints_[static_cast<std::size_t>(a)];
  if (!ea.connected_to(b)) ea.connect(*endpoints_[static_cast<std::size_t>(b)]);
}

void World::run(const std::function<void(Proc&)>& program) {
  threaded_run_ = true;
  std::vector<std::thread> threads;
  threads.reserve(procs_.size());
  for (auto& p : procs_)
    threads.emplace_back([&program, proc = p.get()] { program(*proc); });
  for (auto& t : threads) t.join();
  threaded_run_ = false;
}

// --- Proc --------------------------------------------------------------------

Proc::Proc(World& world, Rank rank) : world_(&world), rank_(rank) {
  if (world.options_.backend == Backend::kSoftwareList)
    sw_matcher_ = std::make_unique<ListMatcher>();
}

int Proc::size() const noexcept { return world_->size(); }

Comm Proc::comm_create(const CommInfo& info) {
  std::lock_guard lock(world_->mutex_);
  const Comm comm{world_->next_comm_++, info};
  if (world_->options_.backend != Backend::kOffloadDpa || !info.offload)
    return comm;
  // Allocate the per-communicator structures on every rank's DPA
  // (Sec. IV-E). A rank whose budget is exhausted simply matches this
  // communicator in host software; ranks are independent in that choice.
  MatchConfig cfg = world_->options_.match;
  cfg.assume_no_wildcards = info.assert_no_any_source && info.assert_no_any_tag;
  cfg.allow_overtaking = info.assert_allow_overtaking;
  if (info.shards != 0) cfg.shards = info.shards;
  for (auto& ep : world_->endpoints_) ep->register_comm(comm.id, cfg);
  return comm;
}

bool Proc::comm_offloaded(const Comm& comm) const {
  if (world_->options_.backend != Backend::kOffloadDpa) return false;
  return world_->endpoints_[static_cast<std::size_t>(rank_)]->comm_registered(
      comm.id);
}

Proc::RequestState& Proc::state(Request req) {
  OTM_ASSERT_MSG(req.valid() && req.id < requests_.size(), "invalid request");
  return requests_[req.id];
}

void Proc::validate_spec(const MatchSpec& spec, const CommInfo& info) {
  OTM_ASSERT_MSG(!(info.assert_no_any_source && spec.any_source()),
                 "MPI_ANY_SOURCE used on a communicator asserting "
                 "mpi_assert_no_any_source");
  OTM_ASSERT_MSG(!(info.assert_no_any_tag && spec.any_tag()),
                 "MPI_ANY_TAG used on a communicator asserting "
                 "mpi_assert_no_any_tag");
}

Request Proc::isend(std::span<const std::byte> data, Rank dst, Tag tag,
                    const Comm& comm) {
  OTM_ASSERT_MSG(tag >= 0, "message tags must be non-negative");
  std::lock_guard lock(world_->mutex_);
  ++stats_.sends;

  requests_.push_back({RequestState::Kind::kSend, /*done=*/true,
                       /*cancelled=*/false,
                       Status{rank_, tag, static_cast<std::uint32_t>(data.size())},
                       {}, {}, 0});
  const Request req{requests_.size() - 1};

  if (world_->options_.backend == Backend::kOffloadDpa) {
    if (world_->options_.on_demand_connect)
      world_->ensure_connected(rank_, dst);
    const auto r =
        world_->endpoints_[static_cast<std::size_t>(rank_)]->send(dst, tag,
                                                                  comm.id, data);
    if (!r.ok) {
      // Graceful degradation instead of a crash: the send was refused
      // (receiver staging exhausted / CQ backpressure), its reliable
      // channel already failed, or the peer was declared Dead. The request
      // completes as failed with a typed cause; callers interrogate
      // failed() / request_error() / take_delivery_errors().
      RequestState& rs = requests_[req.id];
      rs.failed = true;
      switch (r.outcome) {
        case proto::Outcome::kPeerDead:
          rs.error = RequestError::kPeerDead;
          break;
        case proto::Outcome::kFailed:
          rs.error = RequestError::kDeliveryFailed;
          break;
        case proto::Outcome::kRnr:
        case proto::Outcome::kBackpressure:
          rs.error = RequestError::kSendRefused;
          break;
        case proto::Outcome::kCompleted:
        case proto::Outcome::kQueued:
        case proto::Outcome::kPending:
        case proto::Outcome::kFallback:
          // Success outcomes never pair with !ok; keep the refusal cause
          // (tools/otmlint R9: no default swallowing future outcomes).
          rs.error = RequestError::kSendRefused;
          break;
      }
      ++stats_.send_failures;
    }
  } else {
    deliver_software(dst, tag, comm, data);
  }
  if (world_->send_listener_) world_->send_listener_(rank_, dst);
  return req;
}

void Proc::deliver_software(Rank dst, Tag tag, const Comm& comm,
                            std::span<const std::byte> data) {
  Proc& peer = world_->proc(dst);
  const Envelope env{rank_, tag, comm.id};
  const std::uint64_t msg_id = peer.sw_next_msg_++;
  const auto match = peer.sw_matcher_->arrive(env, msg_id);
  if (match.has_value()) {
    RequestState& rs = peer.requests_[*match];
    const auto n = std::min(data.size(), rs.buffer.size());
    std::copy_n(data.begin(), n, rs.buffer.begin());
    rs.done = true;
    rs.status = {rank_, tag, static_cast<std::uint32_t>(n)};
  } else {
    peer.sw_unexpected_.emplace_back(
        msg_id, SwMessage{std::vector<std::byte>(data.begin(), data.end()), env});
  }
}

bool Proc::try_post_offload(const MatchSpec& spec, std::span<std::byte> buf,
                            std::uint64_t request_index) {
  auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
  const auto r = ep.post_receive(spec, buf, request_index);
  switch (r.outcome) {
    case proto::Outcome::kCompleted:
      handle_completion(request_index, r.completion.env, r.completion.bytes, true);
      return true;
    case proto::Outcome::kPending:
      return true;
    case proto::Outcome::kFallback:
      return false;
    case proto::Outcome::kQueued:
    case proto::Outcome::kRnr:
    case proto::Outcome::kBackpressure:
    case proto::Outcome::kFailed:
    case proto::Outcome::kPeerDead:
      // post_receive never reports the send-side outcomes (otmlint R9:
      // name them instead of hiding behind a default).
      OTM_ASSERT_MSG(false, "unexpected post_receive outcome");
      return false;
  }
  return false;  // unreachable; keeps -Wreturn-type happy without a default
}

Request Proc::irecv(std::span<std::byte> buf, Rank src, Tag tag,
                    const Comm& comm) {
  std::lock_guard lock(world_->mutex_);
  const MatchSpec spec{src, tag, comm.id};
  validate_spec(spec, comm.info);
  ++stats_.recvs;
  if (spec.any_source() || spec.any_tag()) ++stats_.wildcard_recvs;

  requests_.push_back({RequestState::Kind::kRecv, /*done=*/false,
                       /*cancelled=*/false, {}, buf, spec, requests_.size()});
  const Request req{requests_.size() - 1};

  if (world_->options_.backend == Backend::kOffloadDpa) {
    auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
    if (!ep.comm_registered(comm.id) || ep.dpa_degraded()) {
      // Host software matching for non-offloaded communicators — and for
      // every communicator while the DPA watchdog has demoted matching to
      // the host (docs/RELIABILITY.md §5).
      const auto match = host_matcher_.post(spec, req.id);
      if (match.has_value()) {
        auto it = std::find_if(host_unexpected_.begin(), host_unexpected_.end(),
                               [&](const auto& p) { return p.first == *match; });
        OTM_ASSERT(it != host_unexpected_.end());
        complete_host_message(req.id, std::move(it->second));
        host_unexpected_.erase(it);
      }
      return req;
    }
    // Preserve posting order (C1): once one post is deferred, all later
    // posts queue behind it until NIC descriptor slots free up.
    if (!pending_posts_.empty() || !try_post_offload(spec, buf, req.id)) {
      pending_posts_.push_back({spec, buf, req.id});
      ++stats_.fallback_deferrals;
    }
  } else {
    const auto match = sw_matcher_->post(spec, req.id);
    if (match.has_value()) {
      auto it = std::find_if(sw_unexpected_.begin(), sw_unexpected_.end(),
                             [&](const auto& p) { return p.first == *match; });
      OTM_ASSERT(it != sw_unexpected_.end());
      const auto n = std::min(it->second.payload.size(), buf.size());
      std::copy_n(it->second.payload.begin(), n, buf.begin());
      RequestState& rs = requests_[req.id];
      rs.done = true;
      rs.status = {it->second.env.source, it->second.env.tag,
                   static_cast<std::uint32_t>(n)};
      sw_unexpected_.erase(it);
    }
  }
  return req;
}

void Proc::flush_pending_posts() {
  while (!pending_posts_.empty()) {
    const PendingPost& p = pending_posts_.front();
    if (!try_post_offload(p.spec, p.buffer, p.request_index)) break;
    pending_posts_.pop_front();
  }
}

void Proc::handle_completion(std::uint64_t cookie, const Envelope& env,
                             std::uint32_t bytes, bool /*offload_path*/) {
  RequestState& rs = requests_[cookie];
  OTM_ASSERT_MSG(!rs.done, "double completion");
  rs.done = true;
  rs.status = {env.source, env.tag, bytes};
}

void Proc::complete_host_message(std::uint64_t request_index,
                                 proto::Endpoint::HostMessage&& msg) {
  RequestState& rs = requests_[request_index];
  const auto n = std::min<std::size_t>(msg.payload_bytes, rs.buffer.size());
  if (msg.protocol == Protocol::kEager) {
    std::copy_n(msg.payload.begin(), n, rs.buffer.begin());
  } else {
    auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
    ep.host_rdma_read(msg.env.source, msg.remote_key, msg.remote_addr,
                      rs.buffer.subspan(0, n), msg.arrival_ns);
  }
  rs.done = true;
  rs.status = {msg.env.source, msg.env.tag, static_cast<std::uint32_t>(n)};
}

void Proc::drain_host_messages() {
  auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
  for (auto& msg : ep.take_host_messages()) {
    const std::uint64_t id = host_next_msg_++;
    const auto match = host_matcher_.arrive(msg.env, id);
    if (match.has_value()) {
      complete_host_message(*match, std::move(msg));
    } else {
      host_unexpected_.emplace_back(id, std::move(msg));
    }
  }
}

void Proc::repost_host(const MatchSpec& spec, std::uint64_t request_index) {
  if (requests_[request_index].done) return;  // raced a cancel/completion
  const auto match = host_matcher_.post(spec, request_index);
  if (match.has_value()) {
    auto it = std::find_if(host_unexpected_.begin(), host_unexpected_.end(),
                           [&](const auto& p) { return p.first == *match; });
    OTM_ASSERT(it != host_unexpected_.end());
    complete_host_message(request_index, std::move(it->second));
    host_unexpected_.erase(it);
  }
}

void Proc::progress() {
  std::lock_guard lock(world_->mutex_);
  if (world_->options_.backend != Backend::kOffloadDpa) return;
  auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
  // Promotion gate: report whether this rank's host matching domain is
  // empty, so the endpoint re-promotes a recovered DPA only when no
  // matching state would be split across two live domains.
  ep.note_host_drained(host_matcher_.posted_size() == 0 &&
                       host_unexpected_.empty());
  for (const auto& c : ep.progress())
    handle_completion(c.cookie, c.env, c.bytes, true);
  if (ep.reliable()) {
    for (auto& e : ep.take_delivery_errors()) {
      ++stats_.delivery_errors;
      delivery_errors_.push_back(e);
    }
  }
  // Watchdog demotion: receives evicted from the NIC re-enter the host
  // matcher first (they predate everything host-queued). Drained host
  // messages follow — migrated NIC unexpecteds lead that inbox — and
  // cannot match the evicted receives (they were pairwise unmatchable on
  // the NIC already). Finally, posts deferred by NIC flow control migrate
  // host-side too: they are younger than every evicted receive and must
  // observe the migrated unexpected store when they post.
  for (const auto& er : ep.take_evicted_receives())
    repost_host(er.spec, er.cookie);
  drain_host_messages();
  if (ep.dpa_degraded()) {
    while (!pending_posts_.empty()) {
      const PendingPost p = pending_posts_.front();
      pending_posts_.pop_front();
      repost_host(p.spec, p.request_index);
    }
  }
  flush_pending_posts();
}

bool Proc::cancel(Request req) {
  std::lock_guard lock(world_->mutex_);
  RequestState& rs = state(req);
  if (rs.kind != RequestState::Kind::kRecv || rs.done) return false;

  bool withdrawn = false;
  if (world_->options_.backend == Backend::kOffloadDpa) {
    // A post still queued host-side (flow control) cancels trivially.
    for (auto it = pending_posts_.begin(); it != pending_posts_.end(); ++it) {
      if (it->request_index == req.id) {
        pending_posts_.erase(it);
        withdrawn = true;
        break;
      }
    }
    if (!withdrawn) {
      // While the watchdog has matching demoted, NIC-registered comms'
      // receives live in the host matcher (eviction moved them there).
      auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
      withdrawn = ep.comm_registered(rs.spec.comm) && !ep.dpa_degraded()
                      ? ep.cancel_receive(rs.spec.comm, req.id)
                      : host_matcher_.cancel_post(req.id);
    }
  } else {
    withdrawn = sw_matcher_->cancel_post(req.id);
  }
  if (!withdrawn) return false;
  rs.done = true;
  rs.cancelled = true;
  rs.status = {};
  return true;
}

std::size_t Proc::drain_peer(Rank peer) {
  std::lock_guard lock(world_->mutex_);
  std::size_t drained = 0;
  for (std::uint64_t i = 0; i < requests_.size(); ++i) {
    RequestState& rs = requests_[i];
    if (rs.kind != RequestState::Kind::kRecv || rs.done) continue;
    if (rs.spec.source != peer) continue;  // wildcards may still match others
    bool withdrawn = false;
    if (world_->options_.backend == Backend::kOffloadDpa) {
      for (auto it = pending_posts_.begin(); it != pending_posts_.end(); ++it) {
        if (it->request_index == i) {
          pending_posts_.erase(it);
          withdrawn = true;
          break;
        }
      }
      if (!withdrawn) {
        auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
        withdrawn = ep.comm_registered(rs.spec.comm) && !ep.dpa_degraded()
                        ? ep.cancel_receive(rs.spec.comm, i)
                        : host_matcher_.cancel_post(i);
      }
    } else {
      withdrawn = sw_matcher_->cancel_post(i);
    }
    if (!withdrawn) continue;  // already matched (completes normally)
    rs.done = true;
    rs.failed = true;
    rs.error = RequestError::kPeerDead;
    rs.status = {};
    ++drained;
  }
  return drained;
}

bool Proc::peer_dead(Rank peer) const {
  if (world_->options_.backend != Backend::kOffloadDpa) return false;
  std::lock_guard lock(world_->mutex_);
  return world_->endpoints_[static_cast<std::size_t>(rank_)]->peer_health(
             peer) == proto::PeerHealth::kDead;
}

bool Proc::cancelled(Request req) {
  std::lock_guard lock(world_->mutex_);
  return state(req).cancelled;
}

bool Proc::failed(Request req) {
  std::lock_guard lock(world_->mutex_);
  return state(req).failed;
}

Proc::RequestError Proc::request_error(Request req) {
  std::lock_guard lock(world_->mutex_);
  return state(req).error;
}

std::vector<proto::DeliveryError> Proc::take_delivery_errors() {
  std::lock_guard lock(world_->mutex_);
  return std::exchange(delivery_errors_, {});
}

bool Proc::iprobe(Rank src, Tag tag, const Comm& comm, Status* status) {
  progress();
  std::lock_guard lock(world_->mutex_);
  const MatchSpec spec{src, tag, comm.id};
  validate_spec(spec, comm.info);

  if (world_->options_.backend == Backend::kOffloadDpa) {
    auto& ep = *world_->endpoints_[static_cast<std::size_t>(rank_)];
    if (ep.comm_registered(comm.id)) {
      const auto pr = ep.probe(spec);
      if (!pr.has_value()) return false;
      if (status != nullptr) *status = to_status(*pr);
      return true;
    }
    // Host-path communicator: scan the host unexpected store (arrival
    // order preserved by the deque).
    for (const auto& [id, msg] : host_unexpected_) {
      if (spec.matches(msg.env)) {
        if (status != nullptr)
          *status = {msg.env.source, msg.env.tag, msg.payload_bytes};
        return true;
      }
    }
    return false;
  }

  for (const auto& [id, msg] : sw_unexpected_) {
    if (spec.matches(msg.env)) {
      if (status != nullptr)
        *status = {msg.env.source, msg.env.tag,
                   static_cast<std::uint32_t>(msg.payload.size())};
      return true;
    }
  }
  return false;
}

Status Proc::probe(Rank src, Tag tag, const Comm& comm) {
  Status s;
  while (!iprobe(src, tag, comm, &s)) std::this_thread::yield();
  return s;
}

bool Proc::test(Request req, Status* status) {
  progress();
  std::lock_guard lock(world_->mutex_);
  RequestState& rs = state(req);
  if (rs.done && status != nullptr) *status = rs.status;
  return rs.done;
}

bool Proc::request_done(Request req) {
  std::lock_guard lock(world_->mutex_);
  return state(req).done;
}

Status Proc::wait(Request req) {
  Status s;
  while (!test(req, &s)) std::this_thread::yield();
  return s;
}

void Proc::wait_all(std::span<Request> reqs) {
  for (const Request r : reqs) wait(r);
}

bool Proc::fail_dead_peer_waits(std::span<const Request> reqs) {
  std::lock_guard lock(world_->mutex_);
  // Only conclude "nothing can ever complete" when EVERY incomplete request
  // is a source-specific receive naming a Dead peer. Wildcard receives may
  // still be satisfied by a live rank, and sends complete on their own.
  std::vector<Rank> dead;
  bool any_incomplete = false;
  for (const Request r : reqs) {
    RequestState& rs = state(r);
    if (rs.done) continue;
    any_incomplete = true;
    if (rs.kind != RequestState::Kind::kRecv || rs.spec.any_source() ||
        !peer_dead(rs.spec.source))
      return false;
    dead.push_back(rs.spec.source);
  }
  if (!any_incomplete) return false;
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  std::size_t drained = 0;
  for (const Rank peer : dead) drained += drain_peer(peer);
  return drained > 0;
}

std::size_t Proc::wait_any(std::span<const Request> reqs, Status* status) {
  OTM_ASSERT_MSG(!reqs.empty(), "wait_any on an empty request list");
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (test(reqs[i], status)) return i;
    }
    // Dead-peer escape: once recovery declares the only peers that could
    // satisfy this list Dead, spinning would never terminate. Drain those
    // receives so the next pass returns them done + failed (kPeerDead).
    if (fail_dead_peer_waits(reqs)) continue;
    std::this_thread::yield();
  }
}

void Proc::send(std::span<const std::byte> data, Rank dst, Tag tag,
                const Comm& comm) {
  wait(isend(data, dst, tag, comm));
}

Status Proc::recv(std::span<std::byte> buf, Rank src, Tag tag, const Comm& comm) {
  return wait(irecv(buf, src, tag, comm));
}

const MatchStats* Proc::match_stats() const {
  if (world_->options_.backend != Backend::kOffloadDpa) return nullptr;
  const ShardedEngine& se =
      world_->endpoints_[static_cast<std::size_t>(rank_)]->dpa().sharded_engine();
  if (se.shard_count() == 1) return &se.shard(0).stats();
  sharded_stats_ = se.stats();
  return &sharded_stats_;
}

}  // namespace otm::mpi
