# Empty compiler generated dependencies file for ablation_block_size.
# This may be replaced when dependencies are built.
