// otmlint-fixture: src/core/fixture.hpp
// R6 bad twin: uses std::vector without including <vector> — compiles only
// when some other header happens to drag the definition in first.
#pragma once

#include <cstdint>

namespace otm {

struct NotSelfSufficient {
  std::vector<std::uint32_t> slots;  // <vector> never included
};

}  // namespace otm
