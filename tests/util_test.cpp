// Unit tests for the util module: booking bitmap generations, partial
// barrier semantics, hashing stability, RNG determinism, table/arg helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/args.hpp"
#include "util/booking_bitmap.hpp"
#include "util/hash.hpp"
#include "util/partial_barrier.hpp"
#include "util/rng.hpp"
#include "util/running_stats.hpp"
#include "util/spinlock.hpp"
#include "util/table_writer.hpp"

namespace otm {
namespace {

// --- BookingBitmap ---------------------------------------------------------

TEST(BookingBitmap, BookSetsBit) {
  BookingBitmap b;
  EXPECT_EQ(b.booked(1), 0u);
  b.book(1, 3);
  EXPECT_EQ(b.booked(1), 1u << 3);
}

TEST(BookingBitmap, StaleGenerationReadsAsEmpty) {
  BookingBitmap b;
  b.book(1, 0);
  b.book(1, 5);
  EXPECT_NE(b.booked(1), 0u);
  EXPECT_EQ(b.booked(2), 0u) << "older generation must be logically empty";
}

TEST(BookingBitmap, NewGenerationRestartsBitmap) {
  BookingBitmap b;
  b.book(1, 0);
  b.book(1, 1);
  b.book(2, 7);
  EXPECT_EQ(b.booked(2), 1u << 7) << "only the new generation's bit survives";
}

TEST(BookingBitmap, BookedByLower) {
  BookingBitmap b;
  b.book(4, 2);
  EXPECT_FALSE(b.booked_by_lower(4, 2)) << "own bit is not a lower bit";
  EXPECT_FALSE(b.booked_by_lower(4, 1));
  EXPECT_TRUE(b.booked_by_lower(4, 3));
  EXPECT_TRUE(b.booked_by_lower(4, 31));
  EXPECT_FALSE(b.booked_by_lower(5, 31)) << "different generation";
}

TEST(BookingBitmap, LowestBooker) {
  BookingBitmap b;
  EXPECT_EQ(b.lowest_booker(9), kMaxBlockThreads);
  b.book(9, 17);
  b.book(9, 4);
  EXPECT_EQ(b.lowest_booker(9), 4u);
}

TEST(BookingBitmap, BookReturnsCumulativeBitmap) {
  BookingBitmap b;
  EXPECT_EQ(b.book(3, 0), 1u);
  EXPECT_EQ(b.book(3, 1), 3u);
  EXPECT_EQ(b.book(3, 2), 7u);
}

TEST(BookingBitmap, ConcurrentBookingLosesNoBits) {
  BookingBitmap b;
  constexpr unsigned kThreads = 16;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t)
    ts.emplace_back([&b, t] { b.book(7, t); });
  for (auto& t : ts) t.join();
  EXPECT_EQ(b.booked(7), (1u << kThreads) - 1);
}

TEST(BookingBitmap, ConcurrentGenerationTransition) {
  // Threads racing on two generations: the final word must hold the newest
  // generation with at least the bits booked after the transition won.
  for (int round = 0; round < 50; ++round) {
    BookingBitmap b;
    b.book(1, 0);
    std::atomic<bool> go{false};
    std::thread t1([&] {
      while (!go.load()) {}
      b.book(2, 1);
    });
    std::thread t2([&] {
      while (!go.load()) {}
      b.book(2, 2);
    });
    go.store(true);
    t1.join();
    t2.join();
    EXPECT_EQ(b.booked(2) & 0b110u, 0b110u);
    EXPECT_EQ(b.booked(1), 0u);
  }
}

// --- PartialBarrier --------------------------------------------------------

TEST(PartialBarrier, ThreadZeroNeverWaits) {
  PartialBarrier bar(4);
  bar.wait_lower(0);  // must return immediately
  SUCCEED();
}

TEST(PartialBarrier, PublishedValuesVisibleAfterWait) {
  PartialBarrier bar(3);
  bar.arrive(0, 42);
  bar.arrive(1, 99);
  bar.wait_lower(2);
  EXPECT_EQ(bar.published(0), 42u);
  EXPECT_EQ(bar.published(1), 99u);
  EXPECT_EQ(bar.max_published_lower(2), 99u);
}

TEST(PartialBarrier, WaitsOnlyOnLowerThreads) {
  // Thread 1 can proceed while thread 2 has not arrived.
  PartialBarrier bar(3);
  bar.arrive(0, 1);
  bar.wait_lower(1);  // would deadlock if it waited on thread 2
  SUCCEED();
}

TEST(PartialBarrier, ThreadedAscendingRelease) {
  constexpr unsigned kN = 8;
  PartialBarrier bar(kN);
  std::atomic<unsigned> release_order{0};
  std::vector<unsigned> observed(kN);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kN; ++t) {
    ts.emplace_back([&, t] {
      bar.arrive(t, t * 10);
      bar.wait_lower(t);
      observed[t] = release_order.fetch_add(1);
      EXPECT_EQ(bar.max_published_lower(t), t == 0 ? 0u : (t - 1) * 10);
    });
  }
  for (auto& t : ts) t.join();
  // All threads released; thread 0 cannot be blocked by anyone.
  EXPECT_EQ(release_order.load(), kN);
}

TEST(PartialBarrier, ResetClearsState) {
  PartialBarrier bar(2);
  bar.arrive(0, 5);
  bar.reset(3);
  EXPECT_FALSE(bar.arrived(0));
  EXPECT_EQ(bar.size(), 3u);
}

// --- Hashing ---------------------------------------------------------------

TEST(Hash, SrcTagDiffersFromComponents) {
  EXPECT_NE(hash_src_tag(1, 2), hash_src_tag(2, 1));
  EXPECT_NE(hash_src(1), hash_tag(1)) << "per-index hash domains are distinct";
}

TEST(Hash, StableAcrossCalls) {
  EXPECT_EQ(hash_src_tag(7, 9), hash_src_tag(7, 9));
  EXPECT_EQ(hash_src(-3), hash_src(-3));
}

TEST(Hash, SpreadsSequentialKeys) {
  // Consecutive (src, tag) pairs must not collide excessively in 128 bins.
  std::set<std::uint64_t> bins;
  for (std::int32_t src = 0; src < 64; ++src)
    for (std::int32_t tag = 0; tag < 16; ++tag)
      bins.insert(hash_src_tag(src, tag) & 127);
  EXPECT_GE(bins.size(), 120u) << "1024 keys should touch nearly all 128 bins";
}

TEST(Hash, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(128));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(100));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(128), 128u);
  EXPECT_EQ(next_pow2(129), 256u);
}

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a(nullptr, 0), 0xcbf29ce484222325ULL);
  const char a = 'a';
  EXPECT_EQ(fnv1a(&a, 1), 0xaf63dc4c8601ec8cULL);
}

// --- RNG ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, BelowIsBounded) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Xoshiro256 r(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// --- RunningStats / Histogram -----------------------------------------------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Xoshiro256 r(5);
  for (int i = 0; i < 500; ++i) {
    const double v = r.uniform() * 10;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Histogram, MeanAndQuantiles) {
  Histogram h;
  h.add(0, 50);
  h.add(10, 50);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_EQ(h.quantile(0.25), 0);
  EXPECT_EQ(h.quantile(0.75), 10);
  EXPECT_EQ(h.max_bucket(), 10);
  EXPECT_EQ(h.total(), 100u);
}

// --- Spinlock ----------------------------------------------------------------

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock lock;
  int counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        SpinGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 20000);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

// --- TableWriter / ArgParser --------------------------------------------------

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"name", "value"});
  t.row().cell("x").cell(std::int64_t{1});
  t.row().cell("longer").cell(3.5, 1);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("3.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableWriter, CsvFormat) {
  TableWriter t({"a", "b"}, TableWriter::Format::kCsv);
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  EXPECT_EQ(t.str(), "a,b\n1,2\n");
}

TEST(ArgParser, ParsesForms) {
  const char* argv[] = {"prog", "--k=v", "--flag", "--n", "42", "pos"};
  ArgParser p(6, argv);
  EXPECT_EQ(p.get("k"), "v");
  EXPECT_TRUE(p.get_bool("flag", false));
  EXPECT_EQ(p.get_int("n", 0), 42);
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "pos");
  EXPECT_EQ(p.get_int("missing", 7), 7);
}

TEST(ArgParser, IntList) {
  const char* argv[] = {"prog", "--bins=1,32,128"};
  ArgParser p(2, argv);
  const auto v = p.get_int_list("bins", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 32);
  EXPECT_EQ(v[2], 128);
  const auto d = p.get_int_list("other", {5});
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], 5);
}

}  // namespace
}  // namespace otm
