// Figure 7 — queue depth for the different applications with 1, 32 and
// 128 bins (1 bin = the traditional linked-list matching).
//
// For every application and bin count, replay the trace through the
// optimistic-matching structures and report the average and maximum queue
// depth (chain entries examined per matching operation / deepest single
// chain scanned).
//
// Paper headlines: the cross-application average drops from 8.21 (1 bin)
// to 0.80 (32 bins, ~-90%) and 0.33 (128 bins, ~-95%); BoxLib CNS's
// maximum falls from 25 to 3 to 1. Rows print in descending 1-bin depth,
// matching the figure's ordering.
// Observability: --trace-out=f.json / --metrics-out=f.json /
// --samples-out=f.csv record the replay (matcher events, counters, and the
// Fig. 7-style PRQ/UMQ depth curves) into one context spanning the whole
// sweep; metric names carry an "<app>@<bins>." prefix.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/observability.hpp"
#include "trace/analyzer.hpp"
#include "trace/synthetic.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::trace;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  // --smoke: analyze only the cheap traces (tier-1 perf-smoke); the
  // cross-application shape checks need the full suite, so smoke runs
  // gate only on completing cleanly.
  const bool smoke = args.get_bool("smoke", false);
  const auto bins_list = args.get_int_list("bins", {1, 32, 128});
  const std::string only = args.get("app", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string samples_out = args.get("samples-out", "");

  std::unique_ptr<obs::Observability> obs;
  if (!trace_out.empty() || !metrics_out.empty() || !samples_out.empty())
    obs = std::make_unique<obs::Observability>(obs::ObsConfig::enabled());

  struct AppRow {
    const AppInfo* app;
    std::vector<AppAnalysis> per_bins;
  };
  std::vector<AppRow> rows;

  for (const AppInfo& app : application_suite()) {
    if (!only.empty() && only != app.name) continue;
    if (smoke && std::string(app.name) != "AMG" &&
        std::string(app.name) != "LULESH" && std::string(app.name) != "HILO")
      continue;
    const Trace trace = app.make();
    AppRow row{&app, {}};
    for (const auto bins : bins_list) {
      AnalyzerConfig cfg;
      cfg.bins = static_cast<std::size_t>(bins);
      if (obs != nullptr) {
        cfg.obs = obs.get();
        cfg.obs_prefix =
            std::string(app.name) + "@" + std::to_string(bins) + ".";
      }
      row.per_bins.push_back(TraceAnalyzer(cfg).analyze(trace));
      std::fprintf(stderr, "analyzed %-18s bins=%-4lld avg=%.2f max=%llu\n",
                   app.name, static_cast<long long>(bins),
                   row.per_bins.back().avg_queue_depth,
                   static_cast<unsigned long long>(
                       row.per_bins.back().max_queue_depth));
    }
    rows.push_back(std::move(row));
  }

  // The figure orders plots by descending queue depth, not by name.
  std::sort(rows.begin(), rows.end(), [](const AppRow& a, const AppRow& b) {
    return a.per_bins[0].avg_queue_depth > b.per_bins[0].avg_queue_depth;
  });

  std::printf("Figure 7: queue depth per application (bins:");
  for (const auto b : bins_list) std::printf(" %lld", static_cast<long long>(b));
  std::printf(")\n\n");

  std::vector<std::string> headers = {"Application", "ranks"};
  for (const auto b : bins_list) {
    headers.push_back("avg@" + std::to_string(b));
    headers.push_back("max@" + std::to_string(b));
  }
  headers.push_back("unique src/tag");
  TableWriter table(headers);

  std::vector<double> avg_sum(bins_list.size(), 0.0);
  for (const AppRow& row : rows) {
    auto r = table.row();
    r.cell(row.app->name).cell(static_cast<std::int64_t>(row.app->processes));
    for (std::size_t i = 0; i < bins_list.size(); ++i) {
      const AppAnalysis& a = row.per_bins[i];
      r.cell(a.avg_queue_depth, 2);
      r.cell(a.max_queue_depth);
      avg_sum[i] += a.avg_queue_depth;
    }
    r.cell(row.per_bins[0].unique_src_tag_pairs);
  }
  table.print(std::cout);

  std::printf("\naverage queue depth across all applications:\n");
  std::vector<double> averages;
  for (std::size_t i = 0; i < bins_list.size(); ++i) {
    const double avg = avg_sum[i] / static_cast<double>(rows.size());
    averages.push_back(avg);
    std::printf("  %4lld bins: %.2f", static_cast<long long>(bins_list[i]), avg);
    if (i > 0 && averages[0] > 0)
      std::printf("  (%.0f%% reduction vs 1 bin)",
                  100.0 * (1.0 - avg / averages[0]));
    std::printf("\n");
  }

  if (obs != nullptr) {
    const auto report = [](const std::ofstream& os, const char* what,
                           const std::string& file) {
      std::fprintf(stderr, os.good() ? "%s written to %s\n"
                                     : "error: cannot write %s to %s\n",
                   what, file.c_str());
    };
    if (!trace_out.empty()) {
      std::ofstream os(trace_out);
      obs->write_trace_json(os);
      report(os, "trace", trace_out);
    }
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      obs->write_metrics_json(os);
      report(os, "metrics", metrics_out);
    }
    if (!samples_out.empty()) {
      std::ofstream os(samples_out);
      obs->write_samples_csv(os);
      report(os, "samples", samples_out);
    }
  }

  // Shape checks against the paper (only when the standard sweep runs).
  if (bins_list.size() >= 3 && only.empty() && !smoke) {
    const bool reduction_32 = averages[1] < 0.25 * averages[0];
    const bool reduction_128 = averages[2] < 0.15 * averages[0];
    std::printf("\nshape: 32 bins cut avg depth by >75%% (paper: 90%%) .... %s\n",
                reduction_32 ? "OK" : "VIOLATED");
    std::printf("shape: 128 bins cut avg depth by >85%% (paper: 95%%) ... %s\n",
                reduction_128 ? "OK" : "VIOLATED");
    return (reduction_32 && reduction_128) ? 0 : 1;
  }
  return 0;
}
