file(REMOVE_RECURSE
  "CMakeFiles/ablation_block_size.dir/ablation_block_size.cpp.o"
  "CMakeFiles/ablation_block_size.dir/ablation_block_size.cpp.o.d"
  "ablation_block_size"
  "ablation_block_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
