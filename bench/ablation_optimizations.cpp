// Ablation — the Sec. III-D optimizations: inline hash values, early
// booking check, lazy removal. Each toggle runs the NC and WC ping-pong
// workloads and reports the modeled message-rate delta against the
// fully-optimized configuration.
//
// Expected directions: inline hashes help both scenarios (3 hash
// computations saved per message on the DPA); lazy removal helps whenever
// receives are consumed from shared bins (removal lock + unlink leave the
// matching threads); the early booking check only matters under conflicts
// (it converts booking conflicts into chain skips).
#include <cstdio>
#include <iostream>

#include "pingpong_common.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);  // tier-1 perf-smoke
  PingPongConfig base;
  base.repetitions =
      static_cast<unsigned>(args.get_int("reps", smoke ? 5 : 200));
  base.match.early_booking_check = false;  // timing-faithful WC conflicts

  struct Variant {
    const char* name;
    void (*apply)(MatchConfig&);
  };
  const Variant variants[] = {
      {"all optimizations", [](MatchConfig&) {}},
      {"no inline hashes", [](MatchConfig& m) { m.use_inline_hashes = false; }},
      {"no lazy removal", [](MatchConfig& m) { m.lazy_removal = false; }},
      {"early booking check on",
       [](MatchConfig& m) { m.early_booking_check = true; }},
      {"no fast path", [](MatchConfig& m) { m.enable_fast_path = false; }},
      // Sec. VII communicator hints (extensions).
      {"hint: no wildcards",
       [](MatchConfig& m) { m.assume_no_wildcards = true; }},
      {"hint: allow overtaking",
       [](MatchConfig& m) { m.allow_overtaking = true; }},
  };

  std::printf("Ablation: Sec. III-D optimizations (ping-pong, k=%u, %u reps)\n\n",
              base.messages_per_seq, base.repetitions);
  TableWriter table({"variant", "NC Mmsg/s", "NC vs base %", "WC Mmsg/s",
                     "WC vs base %", "WC conflicts/seq"});

  double nc_base = 0.0;
  double wc_base = 0.0;
  for (const Variant& v : variants) {
    PingPongConfig nc = base;
    nc.with_conflict = false;
    v.apply(nc.match);
    PingPongConfig wc = base;
    wc.with_conflict = true;
    v.apply(wc.match);
    const PingPongResult rn = run_optimistic_dpa(nc);
    const PingPongResult rw = run_optimistic_dpa(wc);
    if (nc_base == 0.0) {
      nc_base = rn.msg_rate;
      wc_base = rw.msg_rate;
    }
    table.row()
        .cell(v.name)
        .cell(rn.msg_rate / 1e6, 2)
        .cell(100.0 * (rn.msg_rate / nc_base - 1.0), 1)
        .cell(rw.msg_rate / 1e6, 2)
        .cell(100.0 * (rw.msg_rate / wc_base - 1.0), 1)
        .cell(static_cast<double>(rw.conflicts) / base.repetitions, 1);
  }
  table.print(std::cout);
  return 0;
}
