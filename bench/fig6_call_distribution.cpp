// Figure 6 — distribution of MPI calls (point-to-point / collective /
// one-sided) for the application set, plus the Table II inventory.
//
// Replays every synthetic application trace through the analyzer and
// prints the per-application call mix. Expected shape (paper): most
// applications are p2p-dominant, exactly three use p2p exclusively, the
// two HILO variants are collective-only, and no application uses
// one-sided MPI.
#include <cstdio>
#include <iostream>

#include "trace/analyzer.hpp"
#include "trace/synthetic.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::trace;

namespace {

// Tier-1 perf-smoke subset: the cheapest traces (small rank counts / a
// collective-only app), enough to exercise every analyzer path quickly.
bool in_smoke_subset(const AppInfo& app) {
  const std::string name = app.name;
  return name == "AMG" || name == "LULESH" || name == "HILO";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool show_table2 = args.get_bool("table2", true);
  // --smoke: replay only the cheap subset; shape checks need the full
  // suite, so a smoke run gates only on completing cleanly.
  const bool smoke = args.get_bool("smoke", false);

  if (show_table2) {
    std::printf("Table II: application traces analyzed\n\n");
    TableWriter t2({"Application", "Description", "Processes"});
    for (const AppInfo& app : application_suite())
      t2.row().cell(app.name).cell(app.description).cell(
          static_cast<std::int64_t>(app.processes));
    t2.print(std::cout);
    std::printf("\n");
  }

  std::printf("Figure 6: distribution of MPI calls for the application set\n\n");
  TableWriter table({"Application", "p2p %", "collective %", "one-sided %",
                     "p2p calls", "collective calls"});

  int pure_p2p = 0;
  int pure_collective = 0;
  bool any_one_sided = false;
  TraceAnalyzer analyzer{AnalyzerConfig{}};
  for (const AppInfo& app : application_suite()) {
    if (smoke && !in_smoke_subset(app)) continue;
    const Trace trace = app.make();
    const AppAnalysis a = analyzer.analyze(trace);
    table.row()
        .cell(app.name)
        .cell(a.calls.pct_p2p(), 1)
        .cell(a.calls.pct_collective(), 1)
        .cell(a.calls.pct_one_sided(), 1)
        .cell(a.calls.p2p)
        .cell(a.calls.collective);
    if (a.calls.p2p > 0 && a.calls.collective == 0) ++pure_p2p;
    if (a.calls.p2p == 0 && a.calls.collective > 0) ++pure_collective;
    if (a.calls.one_sided > 0) any_one_sided = true;
  }
  table.print(std::cout);

  std::printf("\nshape: exactly 3 applications exclusively p2p .......... %s (%d)\n",
              pure_p2p == 3 ? "OK" : "VIOLATED", pure_p2p);
  std::printf("shape: 2 applications entirely collectives (HILO x2) ... %s (%d)\n",
              pure_collective == 2 ? "OK" : "VIOLATED", pure_collective);
  std::printf("shape: no application uses one-sided MPI ............... %s\n",
              !any_one_sided ? "OK" : "VIOLATED");
  if (smoke) return 0;
  return (pure_p2p == 3 && pure_collective == 2 && !any_one_sided) ? 0 : 1;
}
