#include "verify/explorer.hpp"

#include <algorithm>
#include <cctype>
#include <span>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "mpi/mpi.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"

namespace otm::verify {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Position just past `"key"` and its colon, or npos.
std::size_t after_key(const std::string& text, const char* key,
                      std::size_t from) {
  const std::string needle = std::string("\"") + key + "\"";
  const std::size_t k = text.find(needle, from);
  if (k == std::string::npos) return std::string::npos;
  const std::size_t colon = text.find(':', k + needle.size());
  return colon == std::string::npos ? std::string::npos : colon + 1;
}

/// Reads the JSON string starting at/after `pos`, decoding exactly the
/// escapes json_escape produces (\" \\ \n \t and \uXXXX control codes).
std::optional<std::string> read_string(const std::string& text,
                                       std::size_t pos) {
  const std::size_t open = text.find('"', pos);
  if (open == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = open + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      const char esc = text[++i];
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (i + 4 >= text.size()) return std::nullopt;
          unsigned v = 0;
          for (int d = 1; d <= 4; ++d) {
            const char h = text[i + static_cast<std::size_t>(d)];
            if (!std::isxdigit(static_cast<unsigned char>(h)))
              return std::nullopt;
            v = v * 16 + static_cast<unsigned>(
                             h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          i += 4;
          out += static_cast<char>(v);  // writer only emits codes < 0x20
          break;
        }
        default:
          out += esc;  // \" \\ \/ and anything else: literal
      }
      continue;
    }
    if (c == '"') return out;
    out += c;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> read_uint(const std::string& text,
                                       std::size_t pos) {
  while (pos < text.size() &&
         !std::isdigit(static_cast<unsigned char>(text[pos])))
    ++pos;
  if (pos >= text.size()) return std::nullopt;
  std::uint64_t v = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos])))
    v = v * 10 + static_cast<std::uint64_t>(text[pos++] - '0');
  return v;
}

std::optional<Decision::Kind> kind_from_string(const std::string& s) {
  if (s == "sched") return Decision::Kind::kSched;
  if (s == "fate") return Decision::Kind::kFate;
  if (s == "qp_error") return Decision::Kind::kQpError;
  if (s == "lane") return Decision::Kind::kLane;
  return std::nullopt;
}

}  // namespace

const char* to_string(Decision::Kind k) noexcept {
  switch (k) {
    case Decision::Kind::kSched:
      return "sched";
    case Decision::Kind::kFate:
      return "fate";
    case Decision::Kind::kQpError:
      return "qp_error";
    case Decision::Kind::kLane:
      return "lane";
  }
  return "?";
}

std::string Counterexample::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"format\": \"otmsched-v1\",\n"
     << "  \"scenario\": \"" << json_escape(scenario) << "\",\n"
     << "  \"invariant\": \"" << json_escape(violation.invariant) << "\",\n"
     << "  \"detail\": \"" << json_escape(violation.detail) << "\",\n"
     << "  \"decisions\": [";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const Decision& d = decisions[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"kind\": \"" << to_string(d.kind)
       << "\", \"options\": " << d.options << ", \"choice\": " << d.choice
       << "}";
  }
  os << "\n  ],\n"
     << "  \"sched_picks\": [";
  for (std::size_t i = 0; i < sched_picks.size(); ++i)
    os << (i == 0 ? "" : ", ") << sched_picks[i];
  os << "]\n}\n";
  return os.str();
}

std::optional<Counterexample> Counterexample::from_json(
    const std::string& text) {
  Counterexample cx;
  const std::size_t sc = after_key(text, "scenario", 0);
  if (sc == std::string::npos) return std::nullopt;
  const auto scenario = read_string(text, sc);
  if (!scenario) return std::nullopt;
  cx.scenario = *scenario;
  if (const std::size_t p = after_key(text, "invariant", 0);
      p != std::string::npos)
    cx.violation.invariant = read_string(text, p).value_or("");
  if (const std::size_t p = after_key(text, "detail", 0);
      p != std::string::npos)
    cx.violation.detail = read_string(text, p).value_or("");

  const std::size_t dec = after_key(text, "decisions", 0);
  const std::size_t picks = text.find("\"sched_picks\"");
  if (dec != std::string::npos) {
    const std::size_t end = picks == std::string::npos ? text.size() : picks;
    std::size_t pos = dec;
    while (true) {
      const std::size_t k = after_key(text, "kind", pos);
      if (k == std::string::npos || k >= end) break;
      const auto kind_s = read_string(text, k);
      const std::size_t o = after_key(text, "options", k);
      const std::size_t c = after_key(text, "choice", k);
      if (!kind_s || o == std::string::npos || c == std::string::npos ||
          c >= end)
        return std::nullopt;
      const auto kind = kind_from_string(*kind_s);
      const auto options = read_uint(text, o);
      const auto choice = read_uint(text, c);
      if (!kind || !options || !choice.has_value()) return std::nullopt;
      cx.decisions.push_back(
          Decision{*kind, static_cast<std::uint32_t>(*options),
                   static_cast<std::uint32_t>(*choice)});
      pos = c;
    }
  }
  if (picks != std::string::npos) {
    std::size_t pos = text.find('[', picks);
    const std::size_t end = text.find(']', picks);
    if (pos != std::string::npos && end != std::string::npos) {
      ++pos;
      while (pos < end) {
        if (!std::isdigit(static_cast<unsigned char>(text[pos]))) {
          ++pos;
          continue;
        }
        std::uint64_t v = 0;
        while (pos < end &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
          v = v * 10 + static_cast<std::uint64_t>(text[pos++] - '0');
        cx.sched_picks.push_back(static_cast<std::uint32_t>(v));
      }
    }
  }
  return cx;
}

std::vector<std::uint32_t> Counterexample::choices() const {
  std::vector<std::uint32_t> out;
  out.reserve(decisions.size());
  for (const Decision& d : decisions) out.push_back(d.choice);
  return out;
}

Explorer::Explorer(const Scenario& scenario, const ExploreOptions& opts)
    : scenario_(&scenario), opts_(opts) {
  OTM_ASSERT_MSG(scenario.fate_options.empty() ||
                     scenario.fate_options.front() ==
                         rdma::FaultInjector::Fate::kDeliver,
                 "fate_options[0] must be kDeliver: branch 0 is the default "
                 "every other decision sequence extends");
}

RunResult Explorer::run_one(const std::vector<std::uint32_t>& forced,
                            std::uint64_t* fingerprint,
                            bool* have_fingerprint) const {
  mpi::World world(scenario_->ranks, scenario_->options());
  Oracle oracle(world);
  for (int r = 0; r < world.size(); ++r)
    world.endpoint(r).set_verify_hook(&oracle);

  RunResult result;
  std::size_t pos = 0;
  std::size_t fate_points = 0;
  std::size_t qp_points = 0;
  mpi::WorldScheduler* sched_ptr = nullptr;
  if (have_fingerprint != nullptr) *have_fingerprint = false;

  const auto decide = [&](Decision::Kind kind,
                          std::uint32_t options) -> std::uint32_t {
    // The first decision past the forced prefix is where this run starts
    // exploring new territory: its state digest keys the subsumption cache.
    if (fingerprint != nullptr && pos == forced.size() &&
        !*have_fingerprint) {
      std::uint64_t h = oracle.state_fingerprint();
      if (sched_ptr != nullptr)
        h = hash_combine(h, sched_ptr->state_fingerprint());
      *fingerprint = h;
      *have_fingerprint = true;
    }
    std::uint32_t choice = 0;
    if (pos < forced.size()) {
      choice = forced[pos];
      if (choice >= options) choice = options - 1;
    }
    ++pos;
    result.decisions.push_back(Decision{kind, options, choice});
    return choice;
  };

  mpi::WorldScheduler::Config scfg;
  scfg.pick_hook = [&](std::size_t n) -> std::size_t {
    return decide(Decision::Kind::kSched, static_cast<std::uint32_t>(n));
  };
  scfg.step_hook = [&] { oracle.step_check(); };

  rdma::FaultInjector* injector = world.fabric().injector();
  OTM_ASSERT_MSG(injector != nullptr,
                 "scenario worlds must arm fault injection "
                 "(options().fabric.fault.enabled) so fate hooks exist");
  if (!scenario_->fate_options.empty() && scenario_->max_fate_points > 0) {
    injector->set_fate_hook(
        [&](rdma::NodeId, rdma::NodeId, std::uint16_t)
            -> std::optional<rdma::FaultInjector::Fate> {
          if (fate_points >= scenario_->max_fate_points) return std::nullopt;
          ++fate_points;
          const std::uint32_t c = decide(
              Decision::Kind::kFate,
              static_cast<std::uint32_t>(scenario_->fate_options.size()));
          return scenario_->fate_options[c];
        });
  }
  if (scenario_->max_qp_points > 0) {
    injector->set_qp_error_hook(
        [&](rdma::NodeId, rdma::NodeId, std::uint16_t) -> std::optional<bool> {
          if (qp_points >= scenario_->max_qp_points) return std::nullopt;
          ++qp_points;
          return decide(Decision::Kind::kQpError, 2) == 1;
        });
  }
  std::size_t lane_points = 0;
  if (scenario_->max_lane_points > 0) {
    // Cross-lane drain interleaving: whenever any endpoint finds more than
    // one lane CQ non-empty, which lane pops its next CQE is a decision.
    // One budget across all ranks — the decision log stays a single total
    // order, which is all the stateless replayer needs.
    for (int r = 0; r < world.size(); ++r)
      world.endpoint(r).set_lane_drain_hook(
          [&](std::span<const unsigned> lanes) -> std::size_t {
            if (lane_points >= scenario_->max_lane_points) return 0;
            ++lane_points;
            return decide(Decision::Kind::kLane,
                          static_cast<std::uint32_t>(lanes.size()));
          });
  }

  mpi::WorldScheduler sched(world, scfg);
  sched_ptr = &sched;
  scenario_->setup(world, sched, oracle);
  const auto outcome = sched.run();

  result.completed = outcome == mpi::WorldScheduler::Outcome::kCompleted;
  oracle.final_check(result.completed, scenario_->expect_completion);
  result.violations = oracle.violations();
  result.sched_picks = sched.pick_log();
  return result;
}

RunResult Explorer::replay(const std::vector<std::uint32_t>& choices) const {
  return run_one(choices, nullptr, nullptr);
}

ExploreResult Explorer::explore() {
  ExploreResult res;
  std::vector<std::vector<std::uint32_t>> frontier;
  frontier.emplace_back();  // the all-defaults root execution
  /// fingerprint -> least (preemptions, faults) spent reaching it.
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      cache;

  while (!frontier.empty()) {
    if (res.stats.runs >= opts_.max_runs) {
      res.stats.budget_exhausted = true;
      break;
    }
    const std::vector<std::uint32_t> trace = std::move(frontier.back());
    frontier.pop_back();

    std::uint64_t fp = 0;
    bool have_fp = false;
    const RunResult r = run_one(trace, &fp, &have_fp);
    ++res.stats.runs;
    res.stats.decision_points += r.decisions.size();

    if (!r.violations.empty()) {
      res.counterexamples.push_back(Counterexample{
          scenario_->name, r.violations.front(), r.decisions, r.sched_picks});
      if (opts_.stop_at_first_violation) break;
      continue;  // a failing branch is reported, not extended
    }

    // Budget already spent on the forced prefix (free-suffix decisions all
    // take branch 0 and spend nothing).
    std::uint32_t preempts = 0;
    std::uint32_t faults = 0;
    const std::size_t prefix = std::min(trace.size(), r.decisions.size());
    for (std::size_t i = 0; i < prefix; ++i) {
      if (r.decisions[i].choice == 0) continue;
      // Lane picks are interleaving choices like scheduler picks, so they
      // share the preemption budget; fates/QP errors share the fault budget.
      if (r.decisions[i].kind == Decision::Kind::kSched ||
          r.decisions[i].kind == Decision::Kind::kLane)
        ++preempts;
      else
        ++faults;
    }

    if (have_fp) {
      const auto it = cache.find(fp);
      if (it != cache.end() && it->second.first <= preempts &&
          it->second.second <= faults) {
        ++res.stats.subsumed;  // subtree subsumed by a cheaper visit
        continue;
      }
      if (it == cache.end())
        cache.emplace(fp, std::make_pair(preempts, faults));
      else
        it->second = {std::min(it->second.first, preempts),
                      std::min(it->second.second, faults)};
    }

    // Expand: one frontier entry per unexplored alternative at every free
    // decision point. Alternatives at forced positions were expanded by
    // the ancestors that created this trace.
    for (std::size_t i = trace.size(); i < r.decisions.size(); ++i) {
      const Decision& d = r.decisions[i];
      for (std::uint32_t alt = 1; alt < d.options; ++alt) {
        const bool is_sched = d.kind == Decision::Kind::kSched ||
                              d.kind == Decision::Kind::kLane;
        if (is_sched && preempts + 1 > opts_.max_preemptions) {
          ++res.stats.pruned_preemption;
          continue;
        }
        if (!is_sched && faults + 1 > opts_.max_faults) {
          ++res.stats.pruned_fault;
          continue;
        }
        std::vector<std::uint32_t> child;
        child.reserve(i + 1);
        for (std::size_t j = 0; j < i; ++j)
          child.push_back(r.decisions[j].choice);
        child.push_back(alt);
        frontier.push_back(std::move(child));
      }
    }
    res.stats.frontier_peak =
        std::max<std::uint64_t>(res.stats.frontier_peak, frontier.size());
  }
  return res;
}

}  // namespace otm::verify
