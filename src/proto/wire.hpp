// Wire format of a matched-channel message (Sec. IV-A/B).
//
// Every message starts with a fixed-size header carrying the envelope, the
// sender-precomputed hash values (inline-hash optimization), the protocol
// selector and — for rendezvous — the rkey/offset the receiver needs for
// its RDMA read. Eager payload follows the header in the same packet.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "core/types.hpp"
#include "util/assert.hpp"

namespace otm::proto {

struct WireHeader {
  Rank source = 0;
  Tag tag = 0;
  CommId comm = 0;
  std::uint8_t protocol = 0;  ///< otm::Protocol
  std::uint8_t has_inline_hashes = 1;
  std::uint16_t reserved = 0;
  std::uint32_t payload_bytes = 0;  ///< full message payload size
  std::uint32_t inline_bytes = 0;   ///< payload bytes carried in this packet
  std::uint64_t sender_seq = 0;     ///< sender-side sequence (debug/trace)
  std::uint64_t hash_src_tag = 0;
  std::uint64_t hash_src = 0;
  std::uint64_t hash_tag = 0;
  std::uint32_t rkey = 0;            ///< rendezvous: send-buffer region
  std::uint32_t rkey_valid = 0;
  std::uint64_t remote_offset = 0;   ///< rendezvous: offset inside the region
};

static_assert(std::is_trivially_copyable_v<WireHeader>);
inline constexpr std::size_t kHeaderBytes = sizeof(WireHeader);

inline void encode_header(const WireHeader& h, std::span<std::byte> out) {
  OTM_ASSERT(out.size() >= kHeaderBytes);
  std::memcpy(out.data(), &h, kHeaderBytes);
}

inline WireHeader decode_header(std::span<const std::byte> in) {
  OTM_ASSERT(in.size() >= kHeaderBytes);
  WireHeader h;
  std::memcpy(&h, in.data(), kHeaderBytes);
  return h;
}

/// Build the engine-facing message descriptor from a staged packet.
inline IncomingMessage to_incoming(const WireHeader& h, std::uint64_t bounce_handle,
                                   std::uint64_t wire_seq) {
  IncomingMessage m;
  m.env = {h.source, h.tag, h.comm};
  m.hashes = {h.hash_src_tag, h.hash_src, h.hash_tag};
  m.has_inline_hashes = h.has_inline_hashes != 0;
  m.protocol = static_cast<Protocol>(h.protocol);
  m.payload_bytes = h.payload_bytes;
  m.inline_bytes = h.inline_bytes;
  m.wire_seq = wire_seq;
  m.bounce_handle = bounce_handle;
  m.remote_key = h.rkey_valid != 0 ? h.rkey : 0;
  m.remote_addr = h.remote_offset;
  return m;
}

}  // namespace otm::proto
