// Lightweight assertion macros used across the library.
//
// OTM_ASSERT is active in all build types: the invariants it guards
// (matching-order constraints, table bookkeeping) are cheap relative to the
// operations they protect, and silent corruption of a matching structure is
// far more expensive to debug than the check.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace otm::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "OTM_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace otm::detail

#define OTM_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::otm::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);      \
  } while (false)

#define OTM_ASSERT_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::otm::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));        \
  } while (false)
