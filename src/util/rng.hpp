// Deterministic PRNGs for workload generators and property tests.
//
// We avoid std::mt19937 in hot paths: xoshiro256** is faster and the small
// state keeps per-rank generators cheap in the trace generators (thousands
// of ranks).
#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace otm {

/// splitmix64: used to seed other generators and as a one-shot hash.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose generator for workloads and fuzzing.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (64x64->128 multiply done in 32-bit limbs to stay in standard C++).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const std::uint64_t x = (*this)();
    const std::uint64_t x_lo = x & 0xFFFF'FFFFULL;
    const std::uint64_t x_hi = x >> 32;
    const std::uint64_t b_lo = bound & 0xFFFF'FFFFULL;
    const std::uint64_t b_hi = bound >> 32;
    const std::uint64_t ll = x_lo * b_lo;
    const std::uint64_t lh = x_lo * b_hi;
    const std::uint64_t hl = x_hi * b_lo;
    const std::uint64_t hh = x_hi * b_hi;
    const std::uint64_t carry = ((ll >> 32) + (lh & 0xFFFF'FFFFULL) +
                                 (hl & 0xFFFF'FFFFULL)) >> 32;
    return hh + (lh >> 32) + (hl >> 32) + carry;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace otm
