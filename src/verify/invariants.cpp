#include "verify/invariants.hpp"

#include <sstream>

#include "mpi/mpi.hpp"
#include "proto/endpoint.hpp"
#include "util/hash.hpp"

namespace otm::verify {

namespace {

const char* health_name(std::uint8_t h) {
  switch (static_cast<proto::PeerHealth>(h)) {
    case proto::PeerHealth::kHealthy:
      return "Healthy";
    case proto::PeerHealth::kSuspect:
      return "Suspect";
    case proto::PeerHealth::kRecovering:
      return "Recovering";
    case proto::PeerHealth::kDead:
      return "Dead";
  }
  return "?";
}

/// The documented PeerHealth edges (proto/endpoint.hpp): soft evidence
/// suspects a healthy peer, a recovery attempt moves Suspect to
/// Recovering, success returns Suspect/Recovering to Healthy, and any
/// live state may be declared Dead — which is terminal.
bool legal_health_edge(std::uint8_t from_raw, std::uint8_t to_raw) {
  using H = proto::PeerHealth;
  const auto from = static_cast<H>(from_raw);
  const auto to = static_cast<H>(to_raw);
  if (from == H::kDead) return false;
  if (to == H::kDead) return true;
  if (from == H::kHealthy && to == H::kSuspect) return true;
  if (from == H::kSuspect && to == H::kRecovering) return true;
  if (from == H::kSuspect && to == H::kHealthy) return true;
  if (from == H::kRecovering && to == H::kHealthy) return true;
  return false;
}

}  // namespace

Oracle::Oracle(mpi::World& world) : world_(&world) {
  last_labels_.assign(static_cast<std::size_t>(world.size()), 0);
}

void Oracle::record(const char* invariant, std::string detail) {
  violations_.push_back(Violation{invariant, std::move(detail)});
}

void Oracle::on_packet_rx(Rank rx_rank, Rank from, std::uint16_t channel_class,
                          std::uint64_t seq, std::uint16_t pkt_epoch,
                          std::uint16_t rx_epoch, bool accepted, bool stashed) {
  // Stash-drained packets were fenced at pipeline entry; the stash
  // legitimately survives an epoch adoption (verify_hook.hpp), so only
  // direct accepts are held to the fence.
  if (accepted && !stashed && pkt_epoch < rx_epoch) {
    std::ostringstream os;
    os << "rank " << rx_rank << " accepted stale-epoch packet from " << from
       << " class " << channel_class << " seq " << seq << ": pkt epoch "
       << pkt_epoch << " < rx epoch " << rx_epoch;
    record("epoch_fence", os.str());
  }
}

void Oracle::on_ack_rx(Rank rank, Rank from, std::uint16_t channel_class,
                       std::uint16_t ack_epoch, std::uint16_t channel_epoch,
                       std::uint64_t cum_seq, bool accepted) {
  if (accepted && ack_epoch != channel_epoch) {
    std::ostringstream os;
    os << "rank " << rank << " accepted stale-epoch ack from " << from
       << " class " << channel_class << " cum_seq " << cum_seq
       << ": ack epoch " << ack_epoch << " != channel epoch " << channel_epoch;
    record("ack_fence", os.str());
  }
}

void Oracle::on_window(Rank rank, Rank dst, std::uint16_t channel_class,
                       std::size_t in_flight, std::size_t window_limit) {
  if (in_flight > window_limit) {
    std::ostringstream os;
    os << "rank " << rank << " -> " << dst << " class " << channel_class
       << ": " << in_flight << " sent-unacked packets exceed window limit "
       << window_limit;
    record("send_window", os.str());
  }
}

void Oracle::on_peer_health(Rank rank, Rank peer, std::uint8_t from,
                            std::uint8_t to) {
  if (!legal_health_edge(from, to)) {
    std::ostringstream os;
    os << "rank " << rank << " moved peer " << peer << " health "
       << health_name(from) << " -> " << health_name(to)
       << " (illegal edge)";
    record("health_transition", os.str());
  }
}

void Oracle::on_coalesce_append(Rank rank, Rank dst,
                                std::uint16_t channel_class,
                                std::uint32_t buffered) {
  (void)buffered;
  ++coalesce_out_[{rank, dst, channel_class}];
}

void Oracle::on_coalesce_flush(Rank rank, Rank dst,
                               std::uint16_t channel_class,
                               std::uint32_t flushed) {
  auto& outstanding = coalesce_out_[{rank, dst, channel_class}];
  outstanding -= static_cast<std::int64_t>(flushed);
  if (outstanding < 0) {
    std::ostringstream os;
    os << "rank " << rank << " -> " << dst << " class " << channel_class
       << " flushed " << flushed
       << " sub-messages, more than were ever buffered (balance "
       << outstanding << ")";
    record("coalesce_conservation", os.str());
    outstanding = 0;  // stop the cascade; the first report carries the bug
  }
}

void Oracle::note_app_recv(Rank rank, Rank src, Tag tag, std::uint64_t stamp) {
  auto [it, fresh] = app_last_.try_emplace({rank, src, tag}, stamp);
  if (fresh) return;
  if (stamp <= it->second) {
    std::ostringstream os;
    os << "rank " << rank << " received stamp " << stamp << " from " << src
       << " tag " << tag << " after stamp " << it->second
       << " (duplicate or reordered delivery)";
    record("app_fifo", os.str());
  }
  it->second = stamp;
}

void Oracle::step_check() {
  for (int r = 0; r < world_->size(); ++r) {
    const std::uint64_t now =
        world_->endpoint(r).dpa().labels_allocated(/*comm=*/0);
    auto& last = last_labels_[static_cast<std::size_t>(r)];
    if (now < last) {
      std::ostringstream os;
      os << "rank " << r << " posting-label watermark regressed from " << last
         << " to " << now << " (C1 monotonicity)";
      record("label_monotone", os.str());
    }
    last = now;
  }
}

void Oracle::final_check(bool completed, bool expect_completion) {
  if (expect_completion && !completed)
    record("liveness", "scenario expected completion but the scheduler "
                       "reported a deadlock");
  if (!completed) return;
  for (const auto& [key, outstanding] : coalesce_out_) {
    if (outstanding == 0) continue;
    std::ostringstream os;
    os << "rank " << std::get<0>(key) << " -> " << std::get<1>(key)
       << " class " << std::get<2>(key) << " completed with " << outstanding
       << " buffered sub-messages never flushed";
    record("coalesce_conservation", os.str());
  }
}

std::uint64_t Oracle::state_fingerprint() const {
  std::uint64_t h = 0x07a0'57a7eULL;
  for (int r = 0; r < world_->size(); ++r)
    h = hash_combine(h, world_->endpoint(r).verify_fingerprint());
  return h;
}

}  // namespace otm::verify
