file(REMOVE_RECURSE
  "CMakeFiles/core_block_test.dir/core_block_test.cpp.o"
  "CMakeFiles/core_block_test.dir/core_block_test.cpp.o.d"
  "core_block_test"
  "core_block_test.pdb"
  "core_block_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
