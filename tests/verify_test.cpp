// Model-checker subsystem suite (docs/VERIFICATION.md): the scenario
// registry is well formed, the explorer keeps the intact protocol green,
// replay is a pure function of the decision sequence, the planted
// OTM_VERIFY_BREAK=ack_fence bug is found and its counterexample replays
// deterministically, .otmsched counterexamples survive a JSON round trip,
// and OTM_SCHED_TRACE drives the WorldScheduler to a reproducible
// schedule.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "mpi/scheduler.hpp"
#include "verify/explorer.hpp"
#include "verify/scenarios.hpp"

namespace otm::verify {
namespace {

using Step = mpi::WorldScheduler::Step;

TEST(Scenarios, RegistryIsWellFormed) {
  const auto& all = scenarios();
  ASSERT_GE(all.size(), 4u) << "the checker gates on >= 4 scenario families";
  std::set<std::string> names;
  for (const Scenario& s : all) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_GE(s.ranks, 2);
    EXPECT_LE(s.ranks, 4);
    ASSERT_FALSE(s.fate_options.empty());
    // Branch 0 is the default every forced prefix extends: it must be the
    // fault-free fate or default runs would not be fault-free.
    EXPECT_EQ(s.fate_options.front(), rdma::FaultInjector::Fate::kDeliver);
    EXPECT_EQ(find_scenario(s.name), &s);
  }
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(Explorer, IntactProtocolExploresGreen) {
  const Scenario* s = find_scenario("coalesced_storm");
  ASSERT_NE(s, nullptr);
  ExploreOptions opts;
  opts.max_runs = 512;
  Explorer ex(*s, opts);
  const ExploreResult r = ex.explore();
  EXPECT_TRUE(r.ok()) << r.counterexamples.front().violation.invariant << ": "
                      << r.counterexamples.front().violation.detail;
  EXPECT_GT(r.stats.runs, 10u) << "the explorer must branch, not run once";
  EXPECT_FALSE(r.stats.budget_exhausted);
}

TEST(Explorer, ReplayIsAPureFunctionOfTheChoices) {
  const Scenario* s = find_scenario("eager_storm");
  ASSERT_NE(s, nullptr);
  Explorer ex(*s, ExploreOptions{});
  const std::vector<std::uint32_t> choices{0, 1, 0, 2, 1};
  const RunResult a = ex.replay(choices);
  const RunResult b = ex.replay(choices);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.sched_picks, b.sched_picks);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].kind, b.decisions[i].kind);
    EXPECT_EQ(a.decisions[i].options, b.decisions[i].options);
    EXPECT_EQ(a.decisions[i].choice, b.decisions[i].choice);
  }
  EXPECT_TRUE(a.violations.empty()) << a.violations.front().detail;
}

TEST(Explorer, PlantedAckFenceBugIsFoundAndReplaysDeterministically) {
  const Scenario* s = find_scenario("recovery_flap");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(::setenv("OTM_VERIFY_BREAK", "ack_fence", 1), 0);
  ExploreOptions opts;
  opts.max_runs = 30'000;
  opts.max_faults = 4;
  opts.stop_at_first_violation = true;
  Explorer ex(*s, opts);
  const ExploreResult r = ex.explore();
  ASSERT_FALSE(r.ok()) << "the deliberately broken ack fence must be caught";
  const Counterexample& cx = r.counterexamples.front();
  EXPECT_EQ(cx.violation.invariant, "ack_fence");
  for (int i = 0; i < 3; ++i) {
    const RunResult replay = ex.replay(cx.choices());
    ASSERT_FALSE(replay.violations.empty()) << "replay " << i;
    EXPECT_EQ(replay.violations.front().invariant, cx.violation.invariant);
    EXPECT_EQ(replay.violations.front().detail, cx.violation.detail);
  }
  ASSERT_EQ(::unsetenv("OTM_VERIFY_BREAK"), 0);
  // The same schedule on the intact protocol is clean: the fence, not the
  // schedule, is what the counterexample convicts.
  const RunResult intact = ex.replay(cx.choices());
  EXPECT_TRUE(intact.violations.empty())
      << intact.violations.front().detail;
}

TEST(Counterexample, JsonRoundTripPreservesEverything) {
  Counterexample cx;
  cx.scenario = "recovery_flap";
  cx.violation = {"ack_fence", "rank 0 accepted \"stale\" ack\n\tdetail"};
  cx.decisions = {{Decision::Kind::kSched, 3, 1},
                  {Decision::Kind::kFate, 4, 0},
                  {Decision::Kind::kQpError, 2, 1}};
  cx.sched_picks = {1, 0, 2};
  const auto back = Counterexample::from_json(cx.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->scenario, cx.scenario);
  EXPECT_EQ(back->violation.invariant, cx.violation.invariant);
  EXPECT_EQ(back->violation.detail, cx.violation.detail);
  EXPECT_EQ(back->sched_picks, cx.sched_picks);
  ASSERT_EQ(back->decisions.size(), cx.decisions.size());
  for (std::size_t i = 0; i < cx.decisions.size(); ++i) {
    EXPECT_EQ(back->decisions[i].kind, cx.decisions[i].kind);
    EXPECT_EQ(back->decisions[i].options, cx.decisions[i].options);
    EXPECT_EQ(back->decisions[i].choice, cx.decisions[i].choice);
  }
  EXPECT_EQ(back->choices(), cx.choices());
}

TEST(Counterexample, FromJsonRejectsGarbage) {
  EXPECT_FALSE(Counterexample::from_json("").has_value());
  EXPECT_FALSE(Counterexample::from_json("{\"foo\": 1}").has_value());
}

/// Two compute tasks that yield a few times: with both runnable every pick
/// is a choice point, so the schedule is exactly what the replay source
/// dictates.
mpi::WorldScheduler::Program yielder(int* left) {
  return [left](mpi::Proc&) -> Step {
    if (*left <= 0) return Step::done();
    --*left;
    return Step::yield();
  };
}

std::vector<std::uint32_t> run_with_trace_env(const char* trace_path) {
  if (trace_path != nullptr)
    EXPECT_EQ(::setenv("OTM_SCHED_TRACE", trace_path, 1), 0);
  mpi::World world(2);
  mpi::WorldScheduler sched(world, {});
  int a = 4, b = 4;
  sched.add_task(0, yielder(&a));
  sched.add_task(1, yielder(&b));
  EXPECT_EQ(sched.run(), mpi::WorldScheduler::Outcome::kCompleted);
  if (trace_path != nullptr) EXPECT_EQ(::unsetenv("OTM_SCHED_TRACE"), 0);
  return sched.pick_log();
}

TEST(SchedTrace, EnvReplayPinsTheScheduleDeterministically) {
  // A counterexample whose schedule half alternates away from FIFO.
  Counterexample cx;
  cx.scenario = "synthetic";
  cx.violation = {"none", "trace replay fixture"};
  cx.sched_picks = {1, 1, 0, 1, 0, 1};
  const std::string path =
      ::testing::TempDir() + "/verify_test_trace.otmsched";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << cx.to_json();
  }
  const auto traced1 = run_with_trace_env(path.c_str());
  const auto traced2 = run_with_trace_env(path.c_str());
  const auto fifo = run_with_trace_env(nullptr);
  EXPECT_EQ(traced1, traced2) << "OTM_SCHED_TRACE must pin the schedule";
  ASSERT_FALSE(traced1.empty());
  // The first choice point obeys the trace's non-FIFO pick; the untraced
  // run stays FIFO at the same point.
  EXPECT_EQ(traced1.front(), 1u);
  EXPECT_EQ(fifo.front(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace otm::verify
