// Sec. IV-E memory footprint — DPA memory consumed by the matching
// structures: 20 B per bin (4 B remove lock + two 8 B chain pointers)
// across the three hash-table indexes, plus 64 B per receive descriptor.
//
// Paper reference points: 128 bins -> 7.5 KiB of bins; 8 K simultaneous
// receives -> ~520 KiB total (vs 1.5 MiB DPA L2 / 3 MiB L3 on BF3).
#include <cstdio>
#include <iostream>

#include "core/config.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;

int main(int argc, char** argv) {
  // Purely analytic and instant; --smoke is accepted so every bench
  // binary exposes a uniform perf-smoke interface.
  ArgParser args(argc, argv);
  (void)args.get_bool("smoke", false);
  std::printf("Sec. IV-E: DPA memory footprint of the matching structures\n");
  std::printf("(20 B/bin x 3 hash indexes, 64 B/receive descriptor; "
              "BF3 DPA caches: L2 1.5 MiB, L3 3 MiB)\n\n");

  TableWriter table({"bins", "max receives", "bin KiB", "descriptor KiB",
                     "total KiB", "fits L2", "fits L3"});
  constexpr double kL2 = 1.5 * 1024;  // KiB
  constexpr double kL3 = 3.0 * 1024;

  bool paper_point_ok = false;
  for (const std::size_t bins : {32u, 128u, 256u, 1024u}) {
    for (const std::size_t receives : {1024u, 8u * 1024u, 64u * 1024u}) {
      const auto f = MemoryFootprint::of(bins, receives);
      const double bin_kib = static_cast<double>(f.bin_bytes) / 1024.0;
      const double desc_kib = static_cast<double>(f.descriptor_bytes) / 1024.0;
      const double total_kib = static_cast<double>(f.total()) / 1024.0;
      table.row()
          .cell(static_cast<std::uint64_t>(bins))
          .cell(static_cast<std::uint64_t>(receives))
          .cell(bin_kib, 2)
          .cell(desc_kib, 1)
          .cell(total_kib, 1)
          .cell(total_kib <= kL2 ? "yes" : "no")
          .cell(total_kib <= kL3 ? "yes" : "no");
      if (bins == 128 && receives == 8u * 1024u) {
        // The paper's quoted configuration: 7.5 KiB of bins, ~520 KiB total.
        paper_point_ok = bin_kib == 7.5 && total_kib > 515 && total_kib < 525;
      }
    }
  }
  table.print(std::cout);

  std::printf("\nshape: 128 bins/8K receives = 7.5 KiB bins, ~520 KiB total "
              "... %s\n",
              paper_point_ok ? "OK" : "VIOLATED");
  return paper_point_ok ? 0 : 1;
}
