// Traditional two-queue matching (Sec. II-A, Fig. 1): a posted-receive
// queue and an unexpected-message queue, both plain linked lists scanned
// from the head. Satisfies C1 and C2 by construction — this is the semantic
// oracle for the optimistic engine and the Fig. 8 "MPI-CPU" baseline.
#pragma once

#include <cstdint>
#include <list>
#include <optional>

#include "baseline/reference_matcher.hpp"

namespace otm {

class ListMatcher final : public ReferenceMatcher {
 public:
  std::optional<std::uint64_t> post(const MatchSpec& spec,
                                    std::uint64_t receive_id) override;
  std::optional<std::uint64_t> arrive(const Envelope& env,
                                      std::uint64_t message_id) override;

  /// MPI_Cancel support: remove the pending receive with this id.
  bool cancel_post(std::uint64_t receive_id);

  std::size_t posted_size() const override { return prq_.size(); }
  std::size_t unexpected_size() const override { return umq_.size(); }

 private:
  struct PostedReceive {
    MatchSpec spec;
    std::uint64_t id;
  };
  struct UnexpectedMessage {
    Envelope env;
    std::uint64_t id;
  };

  std::list<PostedReceive> prq_;
  std::list<UnexpectedMessage> umq_;
};

}  // namespace otm
