// The unexpected-message store (Sec. IV-C).
//
// An unexpected message is indexed in *all four* structures: a later receive
// probes only the index matching its own wildcard class, so every class must
// be able to find the message. Bin membership is an arrival-ordered packed
// hot-entry array (core/slab.hpp) of {envelope, slot}: a probe is a linear
// key scan over contiguous 16-byte entries and the cold descriptor is loaded
// only on the winning match. Append at tail preserves constraint C2 — the
// first match in any probed array is the oldest message that receive can
// match. A per-index entry count lets a probe skip structurally empty
// indexes (the common case for the wildcard indexes).
//
// Concurrency contract: mutation only happens on the engine-serialized paths
// (block epilogue inserts in thread-id order; receive posting removes).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/descriptor.hpp"
#include "core/descriptor_table.hpp"
#include "core/slab.hpp"
#include "core/types.hpp"
#include "util/thread_annotations.hpp"

namespace otm {

class UnexpectedStore {
 public:
  explicit UnexpectedStore(const MatchConfig& cfg);

  UnexpectedStore(const UnexpectedStore&) = delete;
  UnexpectedStore& operator=(const UnexpectedStore&) = delete;

  /// Capability token for the engine-serialized mutation path (same
  /// contract as ReceiveStore::serial()): insert/remove reshape the hot
  /// arrays and advance the arrival clock — constraint C2 — so they must
  /// run inside a SerialSection on this domain.
  const SerialDomain& serial() const noexcept OTM_RETURN_CAPABILITY(serial_) {
    return serial_;
  }

  /// Store an unexpected message; returns its slot or kInvalidSlot when the
  /// table is exhausted (software-fallback signal). Engine-serialized.
  /// `arrival_override`, when non-null, stamps the descriptor with an
  /// externally-allocated arrival position instead of this store's own
  /// clock: the ShardedEngine assigns global arrival stamps so C2 age
  /// comparison works across per-shard stores (docs/SHARDING.md). The
  /// override must be >= next_arrival_ (asserted) and advances it.
  std::uint32_t insert(const IncomingMessage& msg, ThreadClock& clock,
                       const std::uint64_t* arrival_override = nullptr)
      OTM_REQUIRES(serial_);

  /// Search for the oldest stored message matching `spec`, probing only the
  /// index of the spec's wildcard class. Returns kInvalidSlot if none.
  /// `attempts` accumulates examined hot entries (queue-depth metric).
  std::uint32_t search(const MatchSpec& spec, ThreadClock& clock,
                       std::uint64_t& attempts) const;

  /// Unlink from all indexed structures and release the slot. The descriptor
  /// contents are returned by value so the caller can run protocol handling.
  /// Engine-serialized.
  UnexpectedDescriptor remove(std::uint32_t slot) OTM_REQUIRES(serial_);

  const UnexpectedDescriptor& desc(std::uint32_t slot) const noexcept {
    return table_[slot];
  }

  std::size_t size() const noexcept { return table_.live(); }
  std::size_t capacity() const noexcept { return table_.capacity(); }

  /// Indexed entries in index `idx` (all live; removal is immediate).
  std::size_t index_entries(unsigned idx) const noexcept {
    return index_count_[idx];
  }

  struct DepthMetrics {
    std::size_t entries = 0;
    std::size_t max_chain = 0;
    double empty_bin_fraction = 0.0;
  };
  DepthMetrics depth_metrics() const;

 private:
  /// Index-side copy of the probe key: 16 packed bytes, four per cache line.
  struct HotEntry {
    Envelope env;
    std::uint32_t slot = kInvalidSlot;
  };
  static_assert(sizeof(HotEntry) == 16);

  struct Bin {
    SlabVec<HotEntry> hot;
  };

  std::size_t bin_for(unsigned idx, const Envelope& env) const noexcept;

  MatchConfig cfg_;
  DescriptorTable<UnexpectedDescriptor> table_;
  SlabArena arena_;
  std::vector<Bin> bins_[kNumIndexes];
  std::size_t bin_mask_ = 0;
  /// Read lock-free by search(); mutated only on the serialized path.
  /// Unannotated for the same phase-discipline reason as the bin arrays.
  std::size_t index_count_[kNumIndexes] = {0, 0, 0, 0};

  /// The mutation-path serialization domain (see serial()).
  SerialDomain serial_;

  /// C2 state: the global arrival clock; thread-id-ordered epilogue inserts
  /// stamp each message with its sequential arrival position.
  std::uint64_t next_arrival_ OTM_GUARDED_BY(serial_) = 0;
};

}  // namespace otm
