file(REMOVE_RECURSE
  "CMakeFiles/fig7_queue_depth.dir/fig7_queue_depth.cpp.o"
  "CMakeFiles/fig7_queue_depth.dir/fig7_queue_depth.cpp.o.d"
  "fig7_queue_depth"
  "fig7_queue_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_queue_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
