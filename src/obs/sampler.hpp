// Time-series sampler for queue depths (PRQ / UMQ / descriptor table),
// reproducing Fig. 7-style depth-over-time curves from any workload.
//
// Each series is an append-only (t, value) vector keyed by name. sample()
// throttles per series on a minimum timestamp interval so callers can
// sample at every block boundary without drowning long runs; the first and
// every value-changing point inside the interval of interest still lands
// because the interval is measured in the caller's modeled clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace otm::obs {

class DepthSampler {
 public:
  struct Point {
    std::uint64_t t = 0;
    std::uint64_t value = 0;
  };

  /// `min_interval`: minimum timestamp distance between retained samples of
  /// one series (0 = keep everything).
  explicit DepthSampler(std::uint64_t min_interval = 0)
      : min_interval_(min_interval) {}

  DepthSampler(const DepthSampler&) = delete;
  DepthSampler& operator=(const DepthSampler&) = delete;

  /// Append (t, v) to `series`, creating it on first use. Returns false
  /// when the sample was dropped by interval throttling.
  bool sample(std::string_view series, std::uint64_t t, std::uint64_t v);

  std::vector<std::string> series_names() const;
  std::vector<Point> points(std::string_view series) const;
  std::size_t total_points() const;

  /// CSV: series,t,value — one row per retained sample.
  void write_csv(std::ostream& os) const;

 private:
  struct Series {
    std::vector<Point> points;
    bool has_last = false;
    std::uint64_t last_t = 0;
  };

  mutable AnnotatedMutex mu_;
  std::uint64_t min_interval_;
  std::map<std::string, Series, std::less<>> series_ OTM_GUARDED_BY(mu_);
};

}  // namespace otm::obs
