// otmlint-fixture: src/core/fixture.cpp
// R4 bad twin: forging a posting label outside the receive store breaks
// constraint C1 (global posting order is a single allocator's monopoly).
#include <cstdint>

namespace otm {

struct FakeDescriptor {
  std::uint64_t label = 0;
};

void forge(FakeDescriptor& d, std::uint64_t mine) {
  d.label = mine;  // label written outside receive_store's allocator
}

}  // namespace otm
