#include "rdma/fault.hpp"

#include "util/hash.hpp"

namespace otm::rdma {

FaultInjector::LinkState& FaultInjector::link(NodeId src, NodeId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = links_.find(key);
  if (it == links_.end())
    it = links_.emplace(key, LinkState(cfg_.seed ^ mix64(key + 1))).first;
  return it->second;
}

bool FaultInjector::forced_rnr(NodeId src, NodeId dst) {
  if (cfg_.rnr_period == 0 || cfg_.rnr_burst == 0) return false;
  LinkState& l = link(src, dst);
  const bool refused = (l.attempts++ % cfg_.rnr_period) < cfg_.rnr_burst;
  if (refused) ++stats_.forced_rnrs;
  return refused;
}

FaultInjector::Fate FaultInjector::next_fate(NodeId src, NodeId dst) {
  LinkState& l = link(src, dst);
  const std::uint64_t pos = l.packets++;
  if (pos < cfg_.drop_first) {
    ++stats_.drops;
    return Fate::kDrop;
  }
  if (pos < cfg_.drop_first + cfg_.corrupt_first) {
    ++stats_.corruptions;
    return Fate::kCorrupt;
  }
  const double u = l.rng.uniform();
  double edge = cfg_.drop_probability;
  if (u < edge) {
    ++stats_.drops;
    return Fate::kDrop;
  }
  edge += cfg_.duplicate_probability;
  if (u < edge) {
    ++stats_.duplicates;
    return Fate::kDuplicate;
  }
  edge += cfg_.corrupt_probability;
  if (u < edge) {
    ++stats_.corruptions;
    return Fate::kCorrupt;
  }
  edge += cfg_.reorder_probability;
  if (u < edge && cfg_.reorder_window > 0) {
    ++stats_.holds;
    return Fate::kHold;
  }
  return Fate::kDeliver;
}

std::uint32_t FaultInjector::hold_delay(NodeId src, NodeId dst) {
  if (cfg_.reorder_window <= 1) return 1;
  return 1 + static_cast<std::uint32_t>(
                 link(src, dst).rng.below(cfg_.reorder_window));
}

void FaultInjector::corrupt(NodeId src, NodeId dst,
                            std::span<std::byte> packet) {
  if (packet.empty()) return;
  LinkState& l = link(src, dst);
  const std::uint64_t flips = 1 + l.rng.below(3);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t pos = l.rng.below(packet.size());
    packet[pos] ^= static_cast<std::byte>(1 + l.rng.below(255));
  }
}

}  // namespace otm::rdma
