// Configuration of the simulated Data Path Accelerator (Sec. II-C).
//
// The BlueField-3 DPA is a power-efficient embedded processor with 16 cores
// supporting 256 hardware threads, executing event handlers run-to-
// completion. We model it as `execution_units` cores running matching
// handlers whose primitives are charged from a CostTable; when more block
// threads are resident than cores, compute is time-shared and per-op costs
// scale by the sharing factor (synchronization waits do not — a waiting
// hart occupies no issue slots).
#pragma once

#include <cstdint>

#include "core/cost_model.hpp"

namespace otm {

struct DpaConfig {
  unsigned execution_units = 16;  ///< BF3: 16 DPA cores
  unsigned max_threads = 256;     ///< BF3: 256 hardware threads
  double clock_ghz = 1.5;         ///< DPA core clock
  CostTable costs = CostTable::dpa();

  /// Cycles between consecutive CQE deliveries when messages arrive
  /// back-to-back (NIC processing of one small message).
  std::uint64_t cqe_interval = 80;

  /// Cycles between consecutive sub-message dispatches unpacked from one
  /// kMerged packet. A merged packet consumes a single CQE; its unpack
  /// handler runs next to the matcher and hands out sub-messages from a
  /// table walk, which is much cheaper than full CQE processing — the
  /// modeled win of merged-message coalescing (docs/COALESCING.md).
  std::uint64_t merged_sub_interval = 15;

  /// Cycles between CQEs reaped within one poll batch of a *dedicated*
  /// per-lane polling hart (multi-lane ingress only, docs/SHARDING.md
  /// §"Ingress lanes"). With a single shared CQ every completion pays the
  /// full `cqe_interval` NIC-processing cost; a lane-pinned hart that finds
  /// k completions queued walks the CQ ring like the merged-sub table —
  /// the first CQE of the batch still costs `cqe_interval`, the rest this.
  std::uint64_t lane_cqe_batch_interval = 20;

  /// DPA memory available to matching structures across all registered
  /// communicators (BF3 DPA L3 cache: 3 MiB, Sec. IV-E). Communicator
  /// registration beyond the budget fails -> software tag matching.
  std::size_t memory_budget_bytes = 3u * 1024u * 1024u;

  /// DPA health watchdog (docs/RELIABILITY.md §5): demote traffic to the
  /// host software-matching path when the accelerator looks sick —
  /// sustained CQ pressure, stalled hart progress, or memory-budget
  /// exhaustion — and re-promote only after `healthy_window` consecutive
  /// clean ticks (hysteresis, so the route cannot flap).
  struct Watchdog {
    bool enabled = false;
    /// Consecutive pressure ticks (receive CQ full or engine drops observed
    /// by the endpoint) before demotion.
    std::uint32_t pressure_streak = 4;
    /// A single message whose modeled service time (finish - dispatch)
    /// exceeds this many cycles counts a stall event; 0 disables stall
    /// detection.
    std::uint64_t stall_cycles = 0;
    /// Stall events before demotion.
    std::uint32_t stall_streak = 2;
    /// Demote when register_comm() fails against the memory budget.
    bool demote_on_memory_exhaustion = true;
    /// Consecutive clean ticks before a demoted DPA offers re-promotion.
    std::uint32_t healthy_window = 16;
  };
  Watchdog watchdog{};

  /// Compute-cost multiplier for `threads` resident block threads.
  std::uint64_t sharing_factor(unsigned threads) const noexcept {
    if (execution_units == 0) return 1;
    return (threads + execution_units - 1) / execution_units;
  }

  /// Cost table with compute primitives scaled by core sharing.
  CostTable shared_costs(unsigned threads) const noexcept {
    const std::uint64_t f = sharing_factor(threads);
    CostTable c = costs;
    if (f <= 1) return c;
    c.hash_compute *= f;
    c.bin_lookup *= f;
    c.chain_step *= f;
    c.hot_scan_step *= f;
    c.label_compare *= f;
    c.booking_cas *= f;
    c.conflict_check *= f;
    c.fast_path_step *= f;
    c.research_overhead *= f;
    c.consume *= f;
    c.unexpected_insert *= f;
    c.cqe_poll *= f;
    c.eager_copy_per_byte_x1000 *= f;
    c.lock_acquire *= f;
    c.unlink *= f;
    // barrier_overhead and slow_path_sync stay: waiting costs no issue slots.
    return c;
  }

  double cycles_to_ns(std::uint64_t cycles) const noexcept {
    return static_cast<double>(cycles) / clock_ghz;
  }

  std::uint64_t ns_to_cycles(double ns) const noexcept {
    return static_cast<std::uint64_t>(ns * clock_ghz);
  }
};

}  // namespace otm
