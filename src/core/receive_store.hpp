// The four-index posted-receive store (Sec. III-B).
//
// A receive is indexed in exactly one structure according to its wildcard
// usage:
//   [0] no wildcards    -> hash(src, tag)
//   [1] ANY_SOURCE      -> hash(tag)
//   [2] ANY_TAG         -> hash(src)
//   [3] both wildcards  -> posting-ordered list (single chain)
// For each incoming message all four indexes are probed with the matching
// key and the oldest candidate (minimum posting label) wins — constraint C1.
//
// Layout: each bin holds a packed hot-entry array (core/slab.hpp) with the
// fields a probe needs — match key, posting label, compatible-sequence id,
// slot — appended at tail, so every array is posting-label ordered and a
// probe is a linear scan over contiguous memory. The 64-byte descriptor
// (atomic state, booking bitmap, buffer) is loaded only on a key match.
// A per-index live-entry count lets a search skip structurally empty
// indexes without probing them (one counter word, hot in cache).
//
// Concurrency contract: posting (insert/cleanup/unlink/release) is
// serialized by the engine and never overlaps a matching block; during a
// block the hot arrays are structurally immutable and threads only flip
// descriptor state Posted->Consumed and set booking bits, so searches are
// lock-free.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/descriptor.hpp"
#include "core/descriptor_table.hpp"
#include "core/slab.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "util/spinlock.hpp"
#include "util/thread_annotations.hpp"

namespace otm {

/// Per-thread search accounting, merged into MatchStats at block epilogue.
struct SearchLocal {
  std::uint64_t attempts = 0;        ///< hot entries examined
  std::uint64_t index_searches = 0;  ///< non-empty indexes probed
  std::uint64_t early_skips = 0;     ///< entries skipped via booking check
  std::uint64_t max_single_chain = 0;///< deepest single-bin scan (queue depth)
};

class ReceiveStore {
 public:
  explicit ReceiveStore(const MatchConfig& cfg);

  ReceiveStore(const ReceiveStore&) = delete;
  ReceiveStore& operator=(const ReceiveStore&) = delete;

  struct PostResult {
    std::uint32_t slot = kInvalidSlot;
    bool fallback = false;  ///< table exhausted -> software tag matching
  };

  /// Position of a search hit inside the index structures; valid while the
  /// arrays are structurally immutable (i.e. for the rest of the current
  /// matching block). The fast path resumes the scan from here.
  struct Cursor {
    unsigned idx = 0;
    std::uint32_t bin = 0;
    std::uint32_t pos = 0;
  };

  /// Capability token for the engine-serialized posting path. Functions
  /// below marked OTM_REQUIRES(serial_) mutate posting-ordered state
  /// (posting labels — constraint C1 — sequence ids, bin arrays) and must
  /// only run inside a SerialSection on this domain; the engine owns the
  /// only such section, which is exactly the paper's "the DPA dispatcher
  /// serializes command-QP posts against message blocks" contract.
  const SerialDomain& serial() const noexcept OTM_RETURN_CAPABILITY(serial_) {
    return serial_;
  }

  /// Index a new receive. Assigns the posting label and the
  /// compatible-sequence id (Sec. III-D fast path). Engine-serialized.
  PostResult post(const MatchSpec& spec, std::uint64_t buffer_addr,
                  std::uint32_t buffer_capacity, std::uint64_t cookie)
      OTM_REQUIRES(serial_);

  /// post() with an externally-allocated posting label: the ShardedEngine
  /// stamps every receive from its cross-shard allocator so C1 age
  /// comparison stays a single integer compare across shards
  /// (docs/SHARDING.md). `claim_idx` links wildcard-source replicas of one
  /// logical receive to their shared claim word (kInvalidSlot when the
  /// receive lives in exactly one shard). The external label must be >= this
  /// store's next_label_ (asserted) and advances it past the stamp, so bin
  /// arrays stay posting-label ordered even if posts mix both entry points.
  PostResult post_labeled(const MatchSpec& spec, std::uint64_t buffer_addr,
                          std::uint32_t buffer_capacity, std::uint64_t cookie,
                          std::uint64_t label, std::uint32_t claim_idx)
      OTM_REQUIRES(serial_);

  /// Roll a Consumed receive back to Posted (ShardedEngine block repair:
  /// a contested cross-shard claim voids the block's tentative matches
  /// before the serial re-match). Engine-serialized — runs strictly between
  /// blocks, never while matching threads are live.
  void unconsume(std::uint32_t slot) OTM_REQUIRES(serial_);

  /// Optimistic search (Sec. III-C): probe every non-empty index with the
  /// message key and return the oldest matching live receive, or
  /// kInvalidSlot. `early_skip` enables the early-booking-check
  /// optimization: entries already booked by a lower-id thread under `gen`
  /// are skipped. On a hit, `*hit` (when non-null) receives the winning
  /// entry's position for a later fast-path walk.
  std::uint32_t search(const IncomingMessage& msg, std::uint32_t gen,
                       unsigned thread_id, bool early_skip, ThreadClock& clock,
                       SearchLocal& local, Cursor* hit = nullptr) const;

  /// Fast-path walk (Sec. III-D-3a): starting from the conflicted
  /// candidate at `from`, return the `shift`-th subsequent receive matching
  /// `env` within the same compatible sequence; kInvalidSlot means the
  /// sequence ended or was broken and the caller must take the slow path.
  std::uint32_t fast_path_candidate(const Cursor& from, const Envelope& env,
                                    unsigned shift, ThreadClock& clock,
                                    SearchLocal& local) const;

  /// Unlink one consumed receive from its bin array and release the slot.
  /// Engine-serialized (block epilogue in eager-removal mode).
  void unlink_and_release(std::uint32_t slot) OTM_REQUIRES(serial_);

  /// Model the eager-removal cost for the thread consuming `slot`:
  /// acquiring the bin's remove lock serializes with every other removal
  /// from the same bin (the overhead lazy removal exists to avoid,
  /// Sec. III-D). Advances `clock` past the bin's modeled removal chain.
  /// The structural unlink itself stays in the engine epilogue so the hot
  /// arrays are immutable while a block is in flight.
  void charge_eager_removal(std::uint32_t slot, ThreadClock& clock);

  /// Withdraw the oldest pending receive whose cookie matches: mark it
  /// consumed (so in-flight searches skip it) and unlink it. Returns the
  /// cancelled receive's buffer_addr, or nullopt if no posted receive
  /// carries the cookie. Engine-serialized.
  std::optional<std::uint64_t> cancel_by_cookie(std::uint64_t cookie)
      OTM_REQUIRES(serial_);

  /// Sweep every bin, unlinking and releasing all consumed entries.
  /// Returns the number of entries reclaimed. Used by lazy removal when the
  /// descriptor table runs dry, and by tests.
  std::size_t cleanup_all() OTM_REQUIRES(serial_);

  ReceiveDescriptor& desc(std::uint32_t slot) noexcept { return table_[slot]; }
  const ReceiveDescriptor& desc(std::uint32_t slot) const noexcept {
    return table_[slot];
  }

  std::size_t capacity() const noexcept { return table_.capacity(); }
  std::size_t live_descriptors() const noexcept { return table_.live(); }

  /// Number of posted (unconsumed) receives currently indexed.
  std::size_t posted_count() const noexcept;

  /// Indexed entries (posted or consumed-awaiting-cleanup) in index `idx`.
  std::size_t index_entries(unsigned idx) const noexcept {
    return index_count_[idx];
  }

  /// Structure-health metrics for the trace analyzer (Fig. 7 queue depth).
  struct DepthMetrics {
    std::size_t live_entries = 0;      ///< posted entries across all bins
    std::size_t max_chain = 0;         ///< longest bin array (live entries)
    double avg_nonempty_chain = 0.0;   ///< mean live length of non-empty bins
    double empty_bin_fraction = 0.0;   ///< empty bins / total bins
  };
  DepthMetrics depth_metrics() const;

  std::uint64_t lazy_removals() const noexcept OTM_REQUIRES(serial_) {
    return lazy_removals_;
  }
  std::uint64_t next_label() const noexcept OTM_REQUIRES(serial_) {
    return next_label_;
  }

 private:
  /// Index-side copy of the fields a probe scans: 32 packed bytes, two per
  /// cache line, no pointer chasing. `spec`/`label`/`seq_id` are immutable
  /// once posted; liveness truth stays in the descriptor's atomic state.
  struct HotEntry {
    MatchSpec spec;
    std::uint32_t slot = kInvalidSlot;
    std::uint64_t label = 0;
    std::uint32_t seq_id = 0;
    std::uint32_t pad_ = 0;
  };
  static_assert(sizeof(HotEntry) == 32);

  struct Bin {
    Spinlock lock;  // 4-byte remove lock of Sec. IV-E (structural mutation)
    /// NOT annotated OTM_GUARDED_BY(lock) by design: searches scan `hot`
    /// lock-free while a block is in flight (the arrays are structurally
    /// immutable during a block — a *phase* discipline the lock-based
    /// analysis cannot express). Structural mutation still happens only
    /// under `lock`, enforced by routing every mutation through
    /// compact_bin_locked()/the guarded sections below and checked
    /// dynamically by the TSan suite.
    SlabVec<HotEntry> hot;
    /// Modeled time until which the remove lock is held (eager removal).
    std::atomic<std::uint64_t> removal_clock{0};
  };

  /// Bin index for a *receive spec* at post time.
  std::pair<unsigned, std::size_t> route_spec(const MatchSpec& spec) const noexcept;

  /// Bin index for a *message* probing index `idx`.
  std::size_t probe_bin(unsigned idx, const IncomingMessage& msg,
                        ThreadClock& clock) const noexcept;

  /// First live matching entry in the hot array of (idx, bin); kInvalidSlot
  /// if none. Accounts attempts/skips into `local`; `pos` receives the hit
  /// position.
  std::uint32_t scan_bin(unsigned idx, std::size_t bin, const Envelope& env,
                         std::uint32_t gen, unsigned thread_id,
                         bool early_skip, ThreadClock& clock,
                         SearchLocal& local, std::uint32_t& pos) const;

  /// Remove consumed entries from one bin's array, releasing their slots.
  /// Takes the bin's remove lock, then delegates to compact_bin_locked().
  std::size_t cleanup_bin(unsigned idx, Bin& bin) OTM_REQUIRES(serial_);

  /// Compact one bin's hot array in place, releasing the slots of consumed
  /// entries. The single implementation behind both the lazy-removal insert
  /// path and the bulk cleanup sweep. Caller must hold the bin's remove
  /// lock (checked: OTM_REQUIRES).
  std::size_t compact_bin_locked(unsigned idx, Bin& bin)
      OTM_REQUIRES(serial_, bin.lock);

  MatchConfig cfg_;
  mutable DescriptorTable<ReceiveDescriptor> table_;
  SlabArena arena_;
  std::vector<Bin> bins_[kNumIndexes];  // [3] has exactly one bin (the list)
  std::size_t bin_mask_ = 0;
  /// Read lock-free by search() (occupancy skip) while blocks are in
  /// flight; mutated only on the serialized posting path. Unannotated for
  /// the same phase-discipline reason as Bin::hot.
  std::size_t index_count_[kNumIndexes] = {0, 0, 0, 0};

  /// The posting-path serialization domain (see serial()).
  SerialDomain serial_;

  /// C1 state: the global posting label. Produced *only* here (otmlint R4);
  /// every index entry carries the label so cross-index age comparison is a
  /// single integer compare.
  std::uint64_t next_label_ OTM_GUARDED_BY(serial_) = 0;
  std::uint32_t next_seq_ OTM_GUARDED_BY(serial_) = 0;
  bool have_last_spec_ OTM_GUARDED_BY(serial_) = false;
  MatchSpec last_spec_ OTM_GUARDED_BY(serial_){};

  std::uint64_t lazy_removals_ OTM_GUARDED_BY(serial_) = 0;
};

}  // namespace otm
