// Matching statistics gathered by the engine; consumed by the trace
// analyzer, the benches and the tests.
#pragma once

#include <cstdint>

namespace otm {

struct MatchStats {
  // Post-side (Fig. 1a).
  std::uint64_t receives_posted = 0;
  std::uint64_t receives_matched_unexpected = 0;  ///< matched a UMQ entry at post
  std::uint64_t post_fallbacks = 0;  ///< descriptor table full -> software path

  // Arrival-side (Fig. 1b / Sec. III).
  std::uint64_t messages_processed = 0;
  std::uint64_t messages_matched = 0;
  std::uint64_t messages_unexpected = 0;
  std::uint64_t blocks_processed = 0;

  // Conflict behavior (Sec. III-D).
  std::uint64_t conflicts_detected = 0;   ///< threads that lost their candidate
  std::uint64_t fast_path_resolutions = 0;
  std::uint64_t slow_path_resolutions = 0;
  std::uint64_t fast_path_aborts = 0;  ///< fast path left the compatible sequence

  // Search effort.
  std::uint64_t match_attempts = 0;   ///< chain entries examined
  std::uint64_t index_searches = 0;   ///< per-index lookups performed
  std::uint64_t early_booking_skips = 0;
  std::uint64_t max_chain_scanned = 0;///< deepest single-chain scan observed

  // Structure health.
  std::uint64_t lazy_removals = 0;    ///< consumed entries cleaned at insert
  std::uint64_t eager_removals = 0;

  MatchStats& operator+=(const MatchStats& o) noexcept {
    receives_posted += o.receives_posted;
    receives_matched_unexpected += o.receives_matched_unexpected;
    post_fallbacks += o.post_fallbacks;
    messages_processed += o.messages_processed;
    messages_matched += o.messages_matched;
    messages_unexpected += o.messages_unexpected;
    blocks_processed += o.blocks_processed;
    conflicts_detected += o.conflicts_detected;
    fast_path_resolutions += o.fast_path_resolutions;
    slow_path_resolutions += o.slow_path_resolutions;
    fast_path_aborts += o.fast_path_aborts;
    match_attempts += o.match_attempts;
    index_searches += o.index_searches;
    early_booking_skips += o.early_booking_skips;
    if (o.max_chain_scanned > max_chain_scanned)
      max_chain_scanned = o.max_chain_scanned;
    lazy_removals += o.lazy_removals;
    eager_removals += o.eager_removals;
    return *this;
  }
};

}  // namespace otm
