# Empty compiler generated dependencies file for otm_util.
# This may be replaced when dependencies are built.
