// Receive and unexpected-message descriptors (Sec. III-B / IV-C).
//
// Descriptors live in fixed-size tables addressed by 32-bit slot ids. The
// index structures no longer chain slots intrusively: each bin owns a packed
// hot-entry array (core/slab.hpp) carrying the match key, posting label and
// slot id, so index probes scan contiguous memory and the cold descriptor
// fields below are loaded only on a key match. The paper's 20-byte bin /
// 64-byte descriptor accounting (Sec. IV-E) is kept as the reported memory
// model (config.hpp).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/types.hpp"
#include "util/booking_bitmap.hpp"

namespace otm {

/// Sentinel for "no slot" in intrusive chains.
inline constexpr std::uint32_t kInvalidSlot = 0xFFFF'FFFFu;

enum class ReceiveState : std::uint8_t {
  kFree = 0,
  kPosted = 1,
  kConsumed = 2,  ///< matched; awaiting (lazy) unlink from its bin chain
};

/// A posted receive. 64 bytes in the paper's accounting (Sec. IV-E); the
/// layout here mirrors that budget: spec + ordering labels + booking bitmap
/// + buffer reference. The index-side copy of the hot fields lives in the
/// bin's packed array; this descriptor holds the cold fields plus the
/// atomic state/booking words that matching threads mutate.
struct ReceiveDescriptor {
  MatchSpec spec;                 ///< matching fields (may hold wildcards)
  std::uint64_t label = 0;        ///< global posting order (constraint C1)
  std::uint32_t seq_id = 0;       ///< compatible-sequence id (fast path)
  WildcardClass wclass = WildcardClass::kNone;
  std::atomic<ReceiveState> state{ReceiveState::kFree};
  BookingBitmap booking;          ///< per-block tentative bookings (C2)
  std::uint64_t buffer_addr = 0;  ///< user-provided receive buffer
  std::uint32_t buffer_capacity = 0;
  std::uint64_t cookie = 0;       ///< upper-layer request handle
  /// ShardedEngine claim-table slot for wildcard-source replicas (all
  /// replicas of one logical receive share it); kInvalidSlot otherwise.
  std::uint32_t claim_idx = kInvalidSlot;

  // otmlint: hot
  bool posted() const noexcept {
    // acquire: pairs with the release store in ReceiveStore::post() so an
    // observer of kPosted also sees the descriptor fields written before it.
    return state.load(std::memory_order_acquire) == ReceiveState::kPosted;
  }

  // otmlint: hot
  bool consumed() const noexcept {
    // acquire: pairs with the release side of try_consume() — seeing
    // kConsumed implies seeing the consumer's prior bookkeeping.
    return state.load(std::memory_order_acquire) == ReceiveState::kConsumed;
  }

  /// Finalize the match: Posted -> Consumed. Returns false if another
  /// thread already consumed this receive.
  // otmlint: hot
  bool try_consume() noexcept {
    ReceiveState expected = ReceiveState::kPosted;
    // acq_rel on success: the winner publishes its consumption (release)
    // and observes the poster's descriptor writes (acquire). acquire on
    // failure: the loser must see the winner's transition before re-search.
    return state.compare_exchange_strong(expected, ReceiveState::kConsumed,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  void reset() noexcept {
    spec = {};
    label = 0;
    seq_id = 0;
    wclass = WildcardClass::kNone;
    // relaxed: reset runs on the engine-serialized release path; the slot
    // is unreachable from any index until a later post() republishes it.
    state.store(ReceiveState::kFree, std::memory_order_relaxed);
    booking.reset();
    buffer_addr = 0;
    buffer_capacity = 0;
    cookie = 0;
    claim_idx = kInvalidSlot;
  }
};

/// An unexpected message. Unlike receives — which live in exactly one index
/// — an unexpected message is indexed in *all four* structures (Sec. IV-C),
/// because a later receive searches only the index matching its own wildcard
/// class. The per-index membership lives in the bins' packed hot arrays;
/// removal compacts those arrays on the engine-serialized posting path.
struct UnexpectedDescriptor {
  Envelope env;
  std::uint64_t arrival = 0;   ///< global arrival order (constraint C2)
  std::uint64_t wire_seq = 0;  ///< message identity on the incoming stream
  Protocol protocol = Protocol::kEager;
  std::uint32_t payload_bytes = 0;
  std::uint32_t inline_bytes = 0;
  std::uint64_t bounce_handle = 0;
  std::uint64_t remote_key = 0;
  std::uint64_t remote_addr = 0;
  bool active = false;

  void reset() noexcept {
    env = {};
    arrival = 0;
    wire_seq = 0;
    protocol = Protocol::kEager;
    payload_bytes = 0;
    inline_bytes = 0;
    bounce_handle = 0;
    remote_key = 0;
    remote_addr = 0;
    active = false;
  }
};

}  // namespace otm
