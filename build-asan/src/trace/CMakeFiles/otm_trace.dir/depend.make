# Empty dependencies file for otm_trace.
# This may be replaced when dependencies are built.
