file(REMOVE_RECURSE
  "CMakeFiles/offload_savings.dir/offload_savings.cpp.o"
  "CMakeFiles/offload_savings.dir/offload_savings.cpp.o.d"
  "offload_savings"
  "offload_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
