// Evaluation extension — host CPU cycles freed by offloading, per
// application. The paper's headline benefit ("the offloading fully frees
// the host CPU from tag-matching overheads", Sec. VI) quantified over the
// Table-II workloads: replay each trace, count the matching primitives
// actually executed, and price them with the host-CPU cost table (what the
// host would have burned) and the DPA cost table (what the offload spends
// instead, amortized over its parallel harts).
#include <cstdio>
#include <iostream>

#include "core/cost_model.hpp"
#include "trace/analyzer.hpp"
#include "trace/synthetic.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::trace;

namespace {

/// Price a replay's matching work with a cost table.
double matching_cycles(const AppAnalysis& a, const CostTable& c,
                       std::uint64_t total_attempts) {
  // messages: CQE poll + 4 index probes (hash+bin) + consume
  // posts:    UMQ probe (hash+bin)
  // attempts: one chain step each
  // unexpected: store insert
  const double msgs = static_cast<double>(a.messages);
  const double posts = static_cast<double>(a.receives_posted);
  return msgs * static_cast<double>(c.cqe_poll + 4 * (c.hash_compute + c.bin_lookup) +
                                    c.consume) +
         posts * static_cast<double>(c.hash_compute + c.bin_lookup) +
         static_cast<double>(total_attempts) * static_cast<double>(c.chain_step) +
         static_cast<double>(a.unexpected) * static_cast<double>(c.unexpected_insert);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  // --smoke: cheap-trace subset for the tier-1 perf-smoke tests.
  const bool smoke = args.get_bool("smoke", false);
  const auto bins = static_cast<std::size_t>(args.get_int("bins", 128));
  const CostTable host = CostTable::host_cpu();
  const CostTable dpa = CostTable::dpa();
  constexpr double kHostGhz = 2.0;

  std::printf("Offload savings per application (bins=%zu): matching work the\n"
              "host CPU no longer executes, priced with the host cost table\n"
              "(%.1f GHz Xeon model) vs the DPA's spend on the same ops.\n\n",
              bins, kHostGhz);

  TableWriter table({"Application", "messages", "host Mcycles", "host ms",
                     "cycles/msg", "DPA Mcycles", "DPA:host ratio"});

  double total_host_cycles = 0;
  AnalyzerConfig cfg;
  cfg.bins = bins;
  for (const AppInfo& app : application_suite()) {
    if (smoke && std::string(app.name) != "AMG" &&
        std::string(app.name) != "LULESH" && std::string(app.name) != "HILO")
      continue;
    const Trace trace = app.make();
    const AppAnalysis a = TraceAnalyzer(cfg).analyze(trace);
    if (a.messages == 0) {
      table.row().cell(app.name).cell(std::uint64_t{0}).cell(0.0, 1).cell(0.0, 2)
          .cell(0.0, 0).cell(0.0, 1).cell("-");
      continue;
    }
    const auto attempts = static_cast<std::uint64_t>(
        a.avg_search_attempts *
        static_cast<double>(a.messages + a.receives_posted));
    const double host_cycles = matching_cycles(a, host, attempts);
    const double dpa_cycles = matching_cycles(a, dpa, attempts);
    total_host_cycles += host_cycles;
    table.row()
        .cell(app.name)
        .cell(a.messages)
        .cell(host_cycles / 1e6, 1)
        .cell(host_cycles / kHostGhz / 1e6, 2)
        .cell(host_cycles / static_cast<double>(a.messages), 0)
        .cell(dpa_cycles / 1e6, 1)
        .cell(dpa_cycles / host_cycles, 1);
  }
  table.print(std::cout);

  std::printf("\ntotal host matching work freed across the suite: %.0f Mcycles"
              " (%.1f ms of a %.1f GHz core)\n",
              total_host_cycles / 1e6, total_host_cycles / kHostGhz / 1e6,
              kHostGhz);
  std::printf("the DPA spends ~2x more cycles per op (lightweight cores) but\n"
              "they are NIC cycles: host matching cycles drop to zero.\n");
  return 0;
}
