// Offloaded communication endpoint (the full Sec. IV architecture).
//
// One Endpoint models one host + its SmartNIC: a shared receive queue of
// NIC-memory bounce buffers, a completion queue drained by the DPA-offloaded
// matching engine, eager/rendezvous protocol handling, and unexpected-
// message payload staging. Endpoints are connected pairwise over the
// simulated RDMA fabric (one QP per peer, SRQ-shared staging).
//
// The host-facing API is post_receive / send / progress; everything below
// it runs "on the NIC" (matching decisions on the DPA cost model, payload
// movement through staged buffers).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/steering.hpp"
#include "core/types.hpp"
#include "dpa/accelerator.hpp"
#include "proto/verify_hook.hpp"
#include "proto/wire.hpp"
#include "rdma/fabric.hpp"
#include "rdma/memory.hpp"
#include "util/thread_annotations.hpp"

namespace otm::proto {

/// Reliable-delivery sublayer tuning (docs/RELIABILITY.md). The layer is
/// pay-for-what-you-use: in kAuto mode it activates only when the fabric
/// injects faults, leaving the fault-free fast path untouched.
struct ReliabilityConfig {
  enum class Mode : std::uint8_t {
    kAuto,  ///< on iff the fabric has fault injection enabled
    kOn,
    kOff,
  };
  Mode mode = Mode::kAuto;
  std::uint64_t rto_ns = 20'000;         ///< initial retransmission timeout
  double rto_backoff = 2.0;              ///< exponential backoff factor
  std::uint64_t rto_max_ns = 500'000;    ///< backoff ceiling
  std::uint32_t retry_budget = 16;       ///< retransmits before giving up
  std::uint64_t rnr_backoff_ns = 2'000;  ///< base RNR/backpressure stall
  std::uint32_t rnr_backoff_cap = 8;     ///< stall doubles at most this often
  std::size_t window_limit = 256;        ///< max unacked in flight per peer
  std::size_t reorder_stash_cap = 64;    ///< out-of-order packets parked/peer
  std::uint64_t progress_tick_ns = 100;  ///< clock advance per progress() call
                                         ///< with unacked traffic (drives RTOs)
};

/// Fault-domain recovery (docs/RELIABILITY.md §5). Off by default: retry-
/// budget exhaustion then stays a terminal channel failure, byte-identical
/// to the pre-recovery behavior. Enabled, an exhausted budget (or a QP
/// error) instead quiesces the peer's channels, resets the QP, bumps each
/// windowed channel's epoch and replays its unacked packets under the new
/// epoch — stale retransmits and acks from the old epoch are fenced on both
/// sides, so exactly-once and per-(peer,tag) FIFO survive the recovery.
struct RecoveryConfig {
  bool enabled = false;
  /// Consecutive failed recoveries before the peer is declared Dead
  /// (resets whenever an ack lands at the current epoch).
  std::uint32_t max_attempts = 4;
  /// Channel stall after a recovery, letting in-flight stale packets drain.
  std::uint64_t quiesce_ns = 2'000;
  /// Probe idle channels for liveness every this many ns (0 = no probes).
  std::uint64_t keepalive_idle_ns = 0;
  /// Unanswered probes before the peer turns Suspect; twice this budget
  /// triggers a recovery attempt.
  std::uint32_t keepalive_miss_budget = 4;
};

/// Merged-message coalescing (docs/COALESCING.md): small eager sends to the
/// same (peer, tag-class) channel are packed into one CRC-sealed kMerged
/// wire message and unpacked at the receiver before matching. Flush
/// triggers: byte budget / message count (checked on every append), modeled
/// deadline (the oldest buffered message's age), and doorbell — progress()
/// always flushes every channel, so a buffered message is never stranded
/// across a progress call.
struct CoalescingConfig {
  bool enabled = false;
  std::size_t max_bytes = 0;      ///< body budget per merged packet
                                  ///< (0 = whatever the bounce buffer fits)
  std::size_t max_messages = 16;  ///< sub-messages per merged packet
  std::uint64_t deadline_ns = 0;  ///< max buffered age (0 = doorbell only)
  std::size_t eligible_bytes = 64;  ///< only payloads <= this coalesce

  /// Channels per peer: tag class = tag mod tag_classes. With one class
  /// (default) every send to a peer shares a channel and full per-peer
  /// FIFO is preserved; more classes trade cross-class (ANY_TAG) ordering
  /// for less head-of-line blocking between unrelated tag streams —
  /// per-(peer,tag) FIFO always holds (same tag => same class).
  std::uint16_t tag_classes = 1;

  /// Host cost of appending one sub-message to a channel buffer (a WQE-less
  /// memcpy; replaces the per-send doorbell cost which is paid per flush).
  double pack_ns = 4.0;
  /// Receiver-side modeled unpack cost per sub-message (the DPA-resident
  /// unpack handler's table-walk, staggering sub-message arrivals).
  double unpack_ns_per_msg = 10.0;
};

struct EndpointConfig {
  std::size_t eager_threshold = 1024;  ///< <= : eager, > : rendezvous
  std::size_t bounce_count = 2048;
  std::size_t cq_depth = 4096;

  /// Host work-request posting cost. The first send of a burst pays the
  /// full overhead (WQE build + doorbell MMIO); back-to-back sends are
  /// chained into one doorbell (ibv post-list style) and pay only
  /// `send_post_ns` (WQE build). A burst ends when progress() runs.
  double send_overhead_ns = 80.0;
  double send_post_ns = 30.0;

  /// Sec. IV-B: the rendezvous RTS "might include some message data" —
  /// when enabled, the first eager_threshold bytes travel with the RTS and
  /// the receiver's RDMA read fetches only the remainder.
  bool rts_inline_data = false;

  /// Ingress lanes (docs/SHARDING.md): per-lane CQ/SRQ pairs with RSS-style
  /// source-routed steering. Lane selection hashes the SOURCE rank with the
  /// single steering helper (core/steering.hpp), so all of one sender's
  /// traffic stays on one lane at every receiver and per-(peer,tag) FIFO is
  /// never split across lanes. Must be a power of two <= kMaxShards and
  /// identical on every endpoint of a world. With 1 lane (default) the
  /// endpoint is byte-identical to the historical single-CQ ingress path.
  unsigned ingress_lanes = 1;

  ReliabilityConfig reliability{};
  RecoveryConfig recovery{};
  CoalescingConfig coalescing{};

  std::size_t bounce_bytes() const noexcept {
    return kHeaderBytes + eager_threshold;
  }

  /// Largest kMerged body that fits the receiver's bounce buffers and the
  /// configured byte budget.
  std::size_t merged_body_budget() const noexcept {
    const std::size_t fit = eager_threshold;
    return coalescing.max_bytes == 0 ? fit
                                     : std::min(coalescing.max_bytes, fit);
  }
};

/// Unified outcome vocabulary of the host-facing API: send, post_receive
/// and the error-drain path all report from this one enum (each operation
/// documents the subset it can produce). The per-operation result structs
/// below pair an Outcome with that operation's typed payload.
enum class Outcome : std::uint8_t {
  kCompleted,     ///< finished now: send handed to the receiver NIC /
                  ///< receive matched and data delivered
  kQueued,        ///< accepted: the reliable-delivery window or a channel's
                  ///< coalescing buffer now owns delivery
  kPending,       ///< receive indexed on the NIC; completes via progress()
  kRnr,           ///< receiver had no staging buffer (unreliable path)
  kBackpressure,  ///< receiver CQ full (unreliable path); retry later
  kFallback,      ///< NIC out of descriptors: caller must match in software
  kFailed,        ///< reliable channel failed: see take_delivery_errors()
  kPeerDead,      ///< peer declared Dead by the health state machine
};

/// Per-peer health (docs/RELIABILITY.md §5). Healthy peers carry traffic;
/// hard delivery evidence (retry-budget exhaustion, QP errors) or a missed
/// keepalive budget turns a peer Suspect, a recovery attempt makes it
/// Recovering, and the first ack at the recovered epoch returns it to
/// Healthy. `RecoveryConfig::max_attempts` consecutive failed recoveries
/// declare the peer Dead — terminal: its channels fail with kPeerDead and
/// new sends fail fast.
enum class PeerHealth : std::uint8_t {
  kHealthy,
  kSuspect,
  kRecovering,
  kDead,
};

/// Typed failure surfaced when the reliable-delivery retry budget is
/// exhausted: the message is dropped, the channel to the peer is marked
/// failed, and every queued packet fails with its own error record —
/// graceful degradation instead of an assert (pending receives on the
/// remote side simply stay pending). A failed merged packet reports one
/// DeliveryError per coalesced sub-message.
struct DeliveryError {
  Rank peer = 0;
  std::uint64_t channel_seq = 0;
  Envelope env{};
  std::uint32_t payload_bytes = 0;
  std::uint32_t retries = 0;
  Outcome outcome = Outcome::kFailed;  ///< unified-outcome vocabulary
};

/// RAII handle for a staged rendezvous payload: owns the byte copy and its
/// registration in a MemoryRegistry. Registration happens on construction,
/// deregistration (and storage release) on destruction, so every exit path
/// through the send flow — including early returns on RNR/backpressure —
/// releases the staging exactly once; the raw-rkey release protocol this
/// replaces leaked the copy on those paths unless the caller remembered to
/// release by hand.
class StagedBuffer {
 public:
  StagedBuffer() = default;
  StagedBuffer(rdma::MemoryRegistry& registry, std::vector<std::byte> bytes)
      : registry_(&registry), bytes_(std::move(bytes)) {
    rkey_ = registry_->register_region(bytes_);
  }
  ~StagedBuffer() { reset(); }

  StagedBuffer(StagedBuffer&& other) noexcept
      : registry_(std::exchange(other.registry_, nullptr)),
        rkey_(other.rkey_),
        bytes_(std::move(other.bytes_)) {}
  StagedBuffer& operator=(StagedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      registry_ = std::exchange(other.registry_, nullptr);
      rkey_ = other.rkey_;
      bytes_ = std::move(other.bytes_);
    }
    return *this;
  }
  StagedBuffer(const StagedBuffer&) = delete;
  StagedBuffer& operator=(const StagedBuffer&) = delete;

  bool valid() const noexcept { return registry_ != nullptr; }
  std::uint32_t rkey() const noexcept { return rkey_; }
  std::span<const std::byte> bytes() const noexcept { return bytes_; }

  /// Deregister and free the staging copy (idempotent).
  void reset() noexcept {
    if (registry_ != nullptr) {
      registry_->unregister(rkey_);
      registry_ = nullptr;
    }
    bytes_.clear();
  }

 private:
  rdma::MemoryRegistry* registry_ = nullptr;
  std::uint32_t rkey_ = 0;
  std::vector<std::byte> bytes_;  ///< heap storage: spans survive moves
};

class Endpoint {
 public:
  Endpoint(rdma::Fabric& fabric, Rank rank, const EndpointConfig& cfg,
           const MatchConfig& match_cfg, const DpaConfig& dpa_cfg);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Create and connect the QP pair between this endpoint and `peer`.
  void connect(Endpoint& peer);

  /// True when QP pairs to `peer` exist. Lets large worlds connect
  /// lazily (docs/SCALING.md): connect() asserts on double connection, so
  /// on-demand callers probe here first.
  bool connected_to(Rank peer) const noexcept {
    const auto it = qps_.lower_bound({peer, 0});
    return it != qps_.end() && it->first.first == peer;
  }

  Rank rank() const noexcept { return rank_; }

  /// Allocate matching structures for a communicator on the DPA
  /// (Sec. IV-E). Returns false when the DPA memory budget is exhausted —
  /// the communicator then runs on host software matching: its incoming
  /// messages surface through take_host_messages().
  bool register_comm(CommId comm, const MatchConfig& cfg) {
    return dpa_.register_comm(comm, cfg);
  }

  bool comm_registered(CommId comm) const noexcept {
    return dpa_.comm_registered(comm);
  }

  struct RecvCompletion {
    std::uint64_t cookie = 0;
    Envelope env{};
    std::uint32_t bytes = 0;          ///< payload delivered to the user buffer
    std::uint64_t completion_ns = 0;  ///< modeled completion time
    bool was_unexpected = false;      ///< satisfied from the unexpected store
    ResolutionPath path = ResolutionPath::kOptimistic;

    /// ProbeResult-style envelope accessor (naming alignment).
    const Envelope& envelope() const noexcept { return env; }
  };

  /// Deprecated spellings of the unified outcome enum, kept for one PR so
  /// downstream code migrates at its own pace. (The former
  /// SendStatus::kDelivered is now Outcome::kCompleted.)
  using PostStatus [[deprecated("use proto::Outcome")]] = Outcome;
  using SendStatus [[deprecated("use proto::Outcome")]] = Outcome;

  struct PostResult {
    Outcome outcome = Outcome::kPending;  ///< kCompleted/kPending/kFallback
    RecvCompletion completion{};          ///< valid iff kCompleted
  };

  /// Post a receive targeting `user` (Fig. 1a through the offloaded path).
  PostResult post_receive(const MatchSpec& spec, std::span<std::byte> user,
                          std::uint64_t cookie);

  /// MPI_Cancel: withdraw a pending NIC-side receive by cookie; frees its
  /// user-buffer slot. Returns false if no pending receive carries the
  /// cookie (already matched, or the comm is not offloaded).
  bool cancel_receive(CommId comm, std::uint64_t cookie);

  /// MPI_Iprobe against the NIC-side unexpected store (registered comms
  /// only; host-path messages are probed by the caller's own store).
  std::optional<ProbeResult> probe(const MatchSpec& spec) {
    return dpa_.probe(spec);
  }

  /// Wire the endpoint (and its DPA + per-comm engines) into an
  /// observability context. Endpoint counters live under "<prefix>.*", the
  /// accelerator under "<prefix>.dpa", engines under "<prefix>.dpa.comm<id>".
  void attach_observability(obs::Observability* obs,
                            std::string_view prefix = "ep");
  obs::Observability* observability() const noexcept { return obs_; }

  struct SendResult {
    Outcome outcome = Outcome::kRnr;  ///< kCompleted/kQueued/kRnr/
                                      ///< kBackpressure/kFailed
    bool ok = false;                  ///< delivered, queued, or coalesced
    std::uint64_t arrival_ns = 0;     ///< modeled arrival (kCompleted only)
  };

  /// Send `data` to peer `dst`. Buffered semantics: eager payloads travel
  /// in the packet and rendezvous payloads are copied into an endpoint-
  /// owned staging buffer (registered for the remote read, deregistered
  /// and freed when the receiver's read completes), so `data` is reusable
  /// as soon as send() returns — MPI_Send buffer semantics.
  ///
  /// With the reliable-delivery layer active the message is sequenced,
  /// CRC-sealed and queued on its (peer, tag-class) channel's send window;
  /// retransmission, RNR/backpressure backoff and dedup happen inside
  /// progress(). A send never silently loses a message: transient refusals
  /// surface as kRnr/kBackpressure (unreliable path) or are retried
  /// (reliable path), and a retry-budget exhaustion is reported as a
  /// DeliveryError.
  ///
  /// With coalescing enabled, small eager payloads are appended to the
  /// channel's merge buffer (outcome kQueued) and reach the wire as one
  /// kMerged packet when a flush trigger fires — byte/count budget,
  /// modeled deadline, the next progress() call, or an ineligible send to
  /// the same peer (which flushes first to preserve FIFO).
  SendResult send(Rank dst, Tag tag, CommId comm,
                  std::span<const std::byte> data);

  /// Reliable-delivery failures recorded since the last call.
  std::vector<DeliveryError> take_delivery_errors() {
    SerialSection host(host_);
    return std::exchange(delivery_errors_, {});
  }

  /// True when the reliable-delivery sublayer is active on this endpoint.
  bool reliable() const noexcept { return rel_active_; }

  /// Unacknowledged packets currently queued for `dst` (summed over that
  /// peer's channels).
  std::size_t unacked(Rank dst) const noexcept {
    SerialSection host(host_);
    std::size_t n = 0;
    for (auto it = channels_.lower_bound({dst, 0});
         it != channels_.end() && it->first.first == dst; ++it)
      n += it->second.window.size();
    return n;
  }

  /// Sub-messages currently parked in coalescing buffers (all channels).
  std::size_t coalesced_buffered() const noexcept {
    SerialSection host(host_);
    std::size_t n = 0;
    for (const auto& [key, ch] : channels_) n += ch.buf_count;
    return n;
  }

  /// Peer-side notification: cumulative ack for every channel_seq < cum_seq
  /// on the (peer, tag-class) channel (piggybacked on the receiver's
  /// progress, the modeled ack path). `epoch` is the receiver's view of the
  /// channel epoch; acks from a stale epoch are fenced — harmless, since the
  /// recovery replay provokes fresh acks at the new epoch.
  void handle_ack(Rank from, std::uint16_t channel_class, std::uint16_t epoch,
                  std::uint64_t cum_seq);

  /// Epoch-less compatibility overload: acks at the channel's current epoch.
  void handle_ack(Rank from, std::uint16_t channel_class,
                  std::uint64_t cum_seq);

  [[deprecated("pass the channel class; this overload acks class 0")]]
  void handle_ack(Rank from, std::uint64_t cum_seq) {
    handle_ack(from, /*channel_class=*/0, cum_seq);
  }

  /// Health of `peer` as seen by the recovery state machine (kHealthy for
  /// peers with no recorded events, including unconnected ones).
  PeerHealth peer_health(Rank peer) const noexcept {
    SerialSection host(host_);
    const auto it = peer_health_.find(peer);
    return it == peer_health_.end() ? PeerHealth::kHealthy : it->second.health;
  }

  /// True when the fault-recovery machinery is live (reliable sublayer
  /// active AND RecoveryConfig::enabled).
  bool recovery_active() const noexcept {
    return rel_active_ && cfg_.recovery.enabled;
  }

  // --- Verification observation (src/verify, docs/VERIFICATION.md) --------

  /// Install (or clear, with nullptr) the invariant oracles' observation
  /// hook. Not owned; the hook must outlive the endpoint or be cleared
  /// first. Null in production: every report site is one pointer test.
  void set_verify_hook(VerifyHook* hook) noexcept { verify_hook_ = hook; }

  /// Order-insensitive digest of the protocol state the reliable-delivery
  /// invariants range over: per-channel sequencing/window/epoch/coalescing
  /// state, receive-side watermarks and stashes, and peer health. The model
  /// checker combines it with the scheduler fingerprint for its state cache.
  std::uint64_t verify_fingerprint() const noexcept;

  /// Peer notification that its rendezvous buffer `rkey` was fully read
  /// (the FIN of a real rendezvous protocol). Frees the staging copy.
  [[deprecated("staging is RAII-managed (StagedBuffer); use release_staged")]]
  void release_send_buffer(std::uint32_t rkey) { release_staged(rkey); }

  /// FIN handler behind the deprecated raw-rkey protocol above: drops the
  /// StagedBuffer, which deregisters the region and frees the copy.
  void release_staged(std::uint32_t rkey);

  /// Rendezvous payloads currently staged awaiting their remote read.
  std::size_t pending_rendezvous() const noexcept {
    return send_staging_.size();
  }

  /// Drain completed RDMA receives through the DPA matcher, run protocol
  /// handling, and return the receive completions. Messages targeting
  /// communicators without DPA structures bypass matching and accumulate
  /// as host messages (software tag matching fallback, Sec. IV-E).
  std::vector<RecvCompletion> progress();

  /// A message handed to the host unmatched (unregistered communicator).
  struct HostMessage {
    Envelope env{};
    std::uint64_t wire_seq = 0;
    Protocol protocol = Protocol::kEager;
    std::uint32_t payload_bytes = 0;
    std::vector<std::byte> payload;  ///< eager payload (copied off the NIC)
    std::uint64_t remote_key = 0;    ///< rendezvous RTS info
    std::uint64_t remote_addr = 0;
    std::uint64_t arrival_ns = 0;
  };

  /// Messages accumulated for host-side matching since the last call.
  std::vector<HostMessage> take_host_messages() {
    return std::exchange(host_inbox_, {});
  }

  // --- DPA watchdog degradation (docs/RELIABILITY.md §5) ------------------
  // When the accelerator's watchdog demotes, the endpoint evicts all NIC-
  // resident matching state in one shot: stored unexpected messages migrate
  // into the host inbox (ahead of anything already there — they are older),
  // and pending receives surface through take_evicted_receives() for the
  // caller to repost into its software matcher. While degraded, post_receive
  // returns kFallback and every arrival routes to the host inbox. Promotion
  // happens only once the accelerator reports a clean healthy window AND the
  // caller has confirmed (note_host_drained) that the host matching domain
  // is empty — matching order is never split across two live domains.

  /// True while arrivals and posts are routed to the host matching path.
  bool dpa_degraded() const noexcept { return dpa_degraded_; }

  /// A pending receive evicted from the NIC by a watchdog demotion, in
  /// posting order per communicator. The user-buffer slot is already freed;
  /// the caller reposts into its own software matcher.
  struct EvictedReceive {
    MatchSpec spec{};
    std::uint64_t cookie = 0;
  };

  /// Receives evicted by demotions since the last call.
  std::vector<EvictedReceive> take_evicted_receives() {
    SerialSection host(host_);
    return std::exchange(evicted_receives_, {});
  }

  /// Caller's promotion gate: report whether its host matching domain
  /// (software-posted receives + unexpected queue) is empty. Raw-endpoint
  /// users with no host matcher leave the hint at its default (drained).
  void note_host_drained(bool drained) noexcept {
    host_drained_hint_ = drained;
  }

  /// Host-side rendezvous completion: RDMA-read the sender's buffer.
  std::uint64_t host_rdma_read(Rank src, std::uint64_t rkey, std::uint64_t addr,
                               std::span<std::byte> dst, std::uint64_t issue_ns);

  DpaAccelerator& dpa() noexcept { return dpa_; }
  const DpaAccelerator& dpa() const noexcept { return dpa_; }
  rdma::CompletionQueue& cq() noexcept { return cq_; }

  // --- Ingress lanes (docs/SHARDING.md §"Ingress lanes") ------------------

  /// Configured lane count; lane 0 is the endpoint's primary cq_/srq_ pair.
  unsigned ingress_lanes() const noexcept { return lanes_; }

  /// The lane this endpoint's outbound traffic occupies at every receiver.
  /// Steering hashes the SOURCE rank with a world-symmetric mask, so rank R
  /// lands on lane steer_lane(R, mask) of every peer — one lane, worldwide.
  std::uint16_t tx_lane() const noexcept { return tx_lane_; }

  /// Lane `lane`'s completion queue (lane 0 aliases cq()).
  rdma::CompletionQueue& lane_cq(unsigned lane) noexcept {
    return lane == 0 ? cq_ : lanes_extra_[lane - 1]->cq;
  }
  const rdma::CompletionQueue& lane_cq(unsigned lane) const noexcept {
    return lane == 0 ? cq_ : lanes_extra_[lane - 1]->cq;
  }

  /// CQEs drained from lane `lane` so far (bench per-lane counter extras).
  std::uint64_t lane_cqes(unsigned lane) const noexcept {
    return lane_cqes_[lane];
  }
  /// Full doorbells (burst-opening MMIOs) rung on lane `lane`'s tx QPs.
  std::uint64_t lane_doorbells(unsigned lane) const noexcept {
    return lane_doorbells_[lane];
  }

  /// Verify-time lane-interleaving hook: whenever MORE THAN ONE lane has
  /// completions pending, the hook picks which lane drains its next CQE
  /// (an index into `lanes`, the non-empty lane ids in ascending order).
  /// Null (production): lanes drain in ascending id order. One CQE is
  /// drained per decision, so the model checker explores every cross-lane
  /// interleaving of parked traffic (docs/VERIFICATION.md).
  using LaneDrainHook = std::function<std::size_t(std::span<const unsigned>)>;
  void set_lane_drain_hook(LaneDrainHook hook) {
    lane_hook_ = std::move(hook);
  }
  std::size_t unexpected_payloads() const noexcept { return um_payloads_.size(); }
  std::size_t available_bounce_buffers() const noexcept { return bounce_.available(); }

  std::uint64_t now_ns() const noexcept { return clock_ns_; }
  void advance_ns(std::uint64_t t) noexcept {
    if (t > clock_ns_) clock_ns_ = t;
  }

  /// Endpoint-level counter fields (same X-macro discipline as MatchStats:
  /// the list expands into the POD below and the registry mirror).
  /// `rnr_failures` counts transient receiver-not-ready refusals (always
  /// retried when the reliability layer is active); `messages_dropped`
  /// counts only messages actually lost after the retry budget ran out.
#define OTM_ENDPOINT_COUNTER_FIELDS(X)                              \
  X(sends)                                                          \
  X(eager_sends)                                                    \
  X(rendezvous_sends)                                               \
  X(rnr_failures) /* receiver had no staging buffer (transient) */  \
  X(messages_dropped) /* retry budget exhausted */                  \
  X(rdma_reads)                                                     \
  X(retransmits)                                                    \
  X(acked_packets)                                                  \
  X(dup_discards) /* retransmit/duplicate suppressed by dedup */    \
  X(ooo_stashed) /* out-of-order packets parked for resequencing */ \
  X(corrupt_discards) /* CRC failures dropped at the receiver */    \
  X(backpressure_stalls) /* receiver CQ full, send deferred */      \
  X(engine_drops) /* matcher rejected (unexpected store full) */    \
  X(coalesced_sends) /* sends appended to a channel buffer */       \
  X(merged_packets) /* kMerged packets flushed to the wire */       \
  X(flushes_by_size) /* byte-budget / message-count flushes */      \
  X(flushes_by_deadline) /* oldest buffered message aged out */     \
  X(flushes_by_doorbell) /* progress() swept the channels */        \
  X(flushes_by_order) /* ineligible send flushed first (FIFO) */    \
  X(epoch_bumps) /* channel recoveries: epoch advanced + replayed */ \
  X(keepalives_sent) /* idle-channel liveness probes */             \
  X(peers_suspected) /* Healthy -> Suspect transitions */           \
  X(recoveries_completed) /* Recovering -> Healthy (new-epoch ack) */ \
  X(degraded_windows) /* demotion windows closed by a promotion */  \
  X(watchdog_demotions) /* DPA -> host matching demotions */

  struct Counters {
#define OTM_X(field) std::uint64_t field = 0;
    OTM_ENDPOINT_COUNTER_FIELDS(OTM_X)
#undef OTM_X
  };
  const Counters& counters() const noexcept { return counters_; }

 private:
  struct CounterHandles {
#define OTM_X(field) obs::Counter* field = nullptr;
    OTM_ENDPOINT_COUNTER_FIELDS(OTM_X)
#undef OTM_X
  };
  /// Registry mirrors of the fabric-wide fault-injector stats, published
  /// under "<prefix>.fabric.*" (values are global to the fabric).
  struct FabricCounterHandles {
    obs::Counter* drops = nullptr;
    obs::Counter* dups = nullptr;
    obs::Counter* corruptions = nullptr;
    obs::Counter* holds = nullptr;
    obs::Counter* forced_rnrs = nullptr;
    obs::Counter* flap_drops = nullptr;
    obs::Counter* qp_errors = nullptr;
  };
  void publish_counters() noexcept;

  // --- Channels: sequencing + reliable window + coalescing buffer -----------
  //
  // One Channel per (peer, tag-class) on the send side owns that stream's
  // channel_seq space, its reliable-delivery window (docs/RELIABILITY.md)
  // and its merged-message coalescing buffer (docs/COALESCING.md); the
  // receive side mirrors it with a ChannelRx resequencing window. With the
  // default single tag class this degenerates to the former flat per-peer
  // maps, byte-identically on the wire.

  /// (peer rank, tag class) — the channel identity on both sides.
  using ChannelKey = std::pair<Rank, std::uint16_t>;

  /// One sub-message record of a pending merged packet (error reporting:
  /// a failed merged packet surfaces one DeliveryError per sub-message).
  struct SubRecord {
    Envelope env{};
    std::uint32_t payload_bytes = 0;
  };

  struct PendingPacket {
    std::uint64_t seq = 0;
    std::vector<std::byte> bytes;  ///< sealed packet, byte-identical retries
    Envelope env{};
    std::uint32_t payload_bytes = 0;
    std::uint32_t rkey = 0;  ///< rendezvous staging to free on failure
    bool has_rkey = false;   ///< rkey 0 is valid, so flag it explicitly
    std::uint32_t retries = 0;
    bool sent = false;
    std::uint64_t rto_ns = 0;         ///< current (backed-off) timeout
    std::uint64_t next_retry_ns = 0;  ///< retransmit deadline
    std::vector<SubRecord> subs;      ///< merged packets: coalesced contents
  };

  struct Channel {
    // Sequencing + reliable-delivery window.
    std::uint64_t next_seq = 0;
    std::deque<PendingPacket> window;  ///< unacked, channel_seq order
    std::uint64_t stall_until_ns = 0;  ///< RNR/backpressure backoff gate
    std::uint32_t rnr_strikes = 0;
    bool failed = false;  ///< retry budget exhausted; channel is dead
    /// Recovery epoch carried in the wire flags (high 16 bits): bumped per
    /// recovery; the seq space continues across epochs, so the receiver's
    /// dedup watermark keeps exactly-once through the replay.
    std::uint16_t epoch = 0;

    // Coalescing buffer: a kMerged body under construction. `buf` is sized
    // once to the full body budget so the per-send append path never
    // allocates; `buf_bytes`/`buf_count` track the filled prefix.
    std::vector<std::byte> buf;
    std::size_t buf_bytes = 0;
    std::uint32_t buf_count = 0;
    std::uint64_t oldest_ns = 0;  ///< append time of the oldest sub-message
    std::vector<SubRecord> subs;  ///< parallel records, sized like `buf`
  };

  struct ChannelRx {
    std::uint64_t next_expected = 0;  ///< cumulative-ack watermark
    /// Highest sender epoch seen; packets from older epochs are stale
    /// retransmits fenced (re-acked + discarded) here.
    std::uint16_t epoch = 0;
    /// Out-of-order packets parked in their bounce buffers, keyed by seq.
    struct Stashed {
      std::uint64_t bounce_handle = 0;
      std::uint64_t arrival_ns = 0;
    };
    std::map<std::uint64_t, Stashed> ooo;
  };

  /// Tag class of `tag` under the configured channel split.
  std::uint16_t tag_class(Tag tag) const noexcept {
    const std::uint16_t n = cfg_.coalescing.tag_classes;
    if (n <= 1) return 0;
    return static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) % n);
  }

  /// The channel for (dst, cls), created (with a preallocated coalescing
  /// buffer) on first use.
  Channel& channel(Rank dst, std::uint16_t cls) OTM_REQUIRES(host_);

  /// Why a coalescing buffer is being flushed (counter attribution).
  enum class FlushReason : std::uint8_t { kSize, kDeadline, kDoorbell, kOrder };

  /// Append one eligible small send to the channel's coalescing buffer.
  void coalesce_append(Channel& ch, const Envelope& env,
                       std::span<const std::byte> data) OTM_REQUIRES(host_);
  /// Seal the channel's buffered sub-messages into one kMerged packet and
  /// hand it to the wire (reliable window or one-shot fabric post).
  void flush_channel(ChannelKey key, Channel& ch, FlushReason why)
      OTM_REQUIRES(host_);
  /// Flush every non-empty coalescing buffer of `dst` (FIFO barrier before
  /// an ineligible send) or of all peers (doorbell/deadline sweep).
  void flush_peer(Rank dst, FlushReason why) OTM_REQUIRES(host_);
  void flush_all(FlushReason why) OTM_REQUIRES(host_);

  void try_transmit(ChannelKey key, Channel& ch) OTM_REQUIRES(host_);
  void fail_channel(ChannelKey key, Channel& ch,
                    Outcome outcome = Outcome::kFailed) OTM_REQUIRES(host_);

  // --- Fault-domain recovery (docs/RELIABILITY.md §5) ---------------------

  /// Per-peer health record of the recovery state machine.
  struct PeerState {
    PeerHealth health = PeerHealth::kHealthy;
    std::uint32_t attempts = 0;  ///< consecutive failed recoveries
    std::uint32_t keepalive_misses = 0;
    std::uint64_t next_keepalive_ns = 0;
    bool probe_outstanding = false;
  };

  /// Hard-evidence entry point (retry-budget exhaustion / QP error): start
  /// a recovery of every windowed channel to `peer`. Returns false when the
  /// peer is (or just became) Dead — the caller then fails the channel.
  bool begin_recovery(Rank peer) OTM_REQUIRES(host_);
  /// One channel's recovery: bump the epoch, restamp + rewind the window
  /// for replay, quiesce the channel while stale packets drain.
  void recover_channel(ChannelKey key, Channel& ch) OTM_REQUIRES(host_);
  /// Terminal transition: fail every channel to `peer` with kPeerDead.
  void mark_peer_dead(Rank peer) OTM_REQUIRES(host_);
  /// Ack-derived liveness: clear keepalive debt; close a recovery window.
  void note_peer_alive(Rank peer) OTM_REQUIRES(host_);
  /// Probe idle peers for liveness; escalate unanswered probes.
  void send_keepalives() OTM_REQUIRES(host_);

  /// Watchdog demotion: evict all NIC-resident matching state into the
  /// host domain (host_inbox_ + evicted_receives_) and flip the route.
  void demote_to_host() OTM_REQUIRES(host_);

  /// Per-lane watchdog demotion (lanes_ > 1): evict only shard `lane`'s
  /// NIC-resident matching state; sibling lanes stay offloaded.
  void evict_lane(unsigned lane) OTM_REQUIRES(host_);

  /// Shared eviction tail of demote_to_host / evict_lane: migrate drained
  /// unexpected messages into the host inbox (prepended, wire_seq order)
  /// and surface drained pending receives through take_evicted_receives().
  void migrate_evicted(std::vector<MatchEngine::DrainedReceive>& pend,
                       std::vector<UnexpectedDescriptor>& ums)
      OTM_REQUIRES(host_);

  /// The QP carrying this endpoint's outbound traffic to `dst` — the
  /// {dst, tx_lane_} pair. Null when the peer is not connected.
  rdma::QueuePair* find_tx_qp(Rank dst) noexcept {
    const auto it = qps_.find({dst, tx_lane_});
    return it == qps_.end() ? nullptr : &it->second;
  }

  /// Multi-lane recovery fence: announce `ch`'s (new) epoch on EVERY lane
  /// pair to the peer. The replayed window travels only on the tx lane,
  /// but stale pre-recovery packets may be parked in any lane's CQ at the
  /// receiver; the broadcast lets it adopt the new epoch from whichever
  /// lane drains first, making the head epoch fence do real work under
  /// cross-lane interleaving (docs/VERIFICATION.md).
  void announce_epoch(ChannelKey key, const Channel& ch) OTM_REQUIRES(host_);

  RecvCompletion complete_matched(const ArrivalOutcome& o);
  RecvCompletion complete_from_unexpected(const UnexpectedDescriptor& um,
                                          std::span<std::byte> user,
                                          std::uint64_t cookie);
  void recycle_bounce(std::uint64_t handle);
  std::uint64_t dpa_ns(std::uint64_t cycles) const noexcept {
    return static_cast<std::uint64_t>(dpa_.config().cycles_to_ns(cycles));
  }

  Rank rank_;
  EndpointConfig cfg_;
  rdma::Fabric* fabric_;
  rdma::NodeId node_;
  rdma::MemoryRegistry registry_;
  rdma::CompletionQueue cq_;
  rdma::SharedReceiveQueue srq_;
  rdma::BounceBufferPool bounce_;

  /// Extra ingress lanes 1..lanes_-1; lane 0 reuses cq_/srq_ above so the
  /// single-lane endpoint stays byte-identical (same members, same order).
  struct IngressLane {
    rdma::CompletionQueue cq;
    rdma::SharedReceiveQueue srq;
    explicit IngressLane(std::size_t depth) : cq(depth) {}
  };
  std::vector<std::unique_ptr<IngressLane>> lanes_extra_;
  unsigned lanes_ = 1;
  std::uint32_t lane_mask_ = 0;    ///< lanes_ - 1 (steering hash mask)
  std::uint16_t tx_lane_ = 0;      ///< steer_lane(rank_, lane_mask_)
  /// Bounce handle -> owning lane SRQ (round-robin partition at startup);
  /// recycle_bounce reposts each buffer to the lane that staged it.
  std::vector<std::uint16_t> bounce_lane_;
  std::array<std::uint64_t, kMaxShards> lane_cqes_{};
  std::array<std::uint64_t, kMaxShards> lane_doorbells_{};
  LaneDrainHook lane_hook_;

  /// Lane `lane`'s shared receive queue (lane 0 aliases srq_).
  rdma::SharedReceiveQueue& lane_srq(unsigned lane) noexcept {
    return lane == 0 ? srq_ : lanes_extra_[lane - 1]->srq;
  }

  /// QP pairs keyed by (peer rank, ingress lane): lane l of the pair feeds
  /// the receiver's lane-l CQ/SRQ. All outbound traffic to a peer travels
  /// on the {peer, tx_lane_} pair — the receiver's steering decision for
  /// this source.
  std::map<std::pair<Rank, std::uint16_t>, rdma::QueuePair> qps_;
  DpaAccelerator dpa_;

  // User receive buffers: engine descriptors carry index+1 in buffer_addr.
  struct UserBuffer {
    std::span<std::byte> span;
    bool live = false;
  };
  std::vector<UserBuffer> user_buffers_;
  std::vector<std::size_t> free_user_buffers_;

  /// Eager payloads of unexpected messages, keyed by wire sequence.
  std::unordered_map<std::uint64_t, std::vector<std::byte>> um_payloads_;

  /// Messages for unregistered communicators awaiting host matching.
  std::vector<HostMessage> host_inbox_;

  /// Staged rendezvous payloads keyed by their rkey (buffered sends). Each
  /// entry is an RAII StagedBuffer: erasing it deregisters and frees.
  std::unordered_map<std::uint32_t, StagedBuffer> send_staging_;

  /// Live sub-message references into shared merged-packet bounce buffers:
  /// the buffer is reposted to the SRQ only after its last sub-message is
  /// recycled. Absent handles are plain packets (refcount 1 semantics).
  std::unordered_map<std::uint64_t, std::uint32_t> bounce_refs_;

  /// Peer endpoints by rank (for the read-completion notification).
  std::map<Rank, Endpoint*> peers_;

  std::uint64_t clock_ns_ = 0;
  std::uint64_t sender_seq_ = 0;
  bool send_burst_open_ = false;  ///< doorbell batching: in a send burst
  Counters counters_;

  /// Ingress batch scratch, reused across progress() calls so assembling a
  /// matching block from the CQ does not reallocate per call.
  std::vector<IncomingMessage> ingress_msgs_;
  std::vector<std::uint64_t> ingress_arrivals_;

  /// Host-API serialization domain: send/progress/handle_ack run on the
  /// host thread, never concurrently with each other (the header contract
  /// above), and the reliability windows below are written only inside a
  /// SerialSection on this domain.
  SerialDomain host_;

  // Channel state. Send-side channels carry reliable-delivery windows
  // (empty/idle when rel_active_ is false) and coalescing buffers
  // (empty/idle when coalescing is off); receive-side resequencing state
  // exists only under reliability.
  bool rel_active_ = false;
  std::map<ChannelKey, Channel> channels_ OTM_GUARDED_BY(host_);
  std::map<ChannelKey, ChannelRx> rx_channels_ OTM_GUARDED_BY(host_);
  std::vector<DeliveryError> delivery_errors_ OTM_GUARDED_BY(host_);
  std::uint64_t rx_delivery_seq_ = 0;  ///< matcher-facing wire_seq source

  /// Peer-health records of the recovery state machine (absent = Healthy).
  std::map<Rank, PeerState> peer_health_ OTM_GUARDED_BY(host_);

  /// DPA watchdog degradation: route flip + demotion eviction output.
  bool dpa_degraded_ = false;
  bool host_drained_hint_ = true;  ///< caller's host matching domain empty
  std::vector<EvictedReceive> evicted_receives_ OTM_GUARDED_BY(host_);

  obs::Observability* obs_ = nullptr;
  CounterHandles ch_{};
  FabricCounterHandles fab_ch_{};

  /// Invariant-oracle observation hook (null in production) and the
  /// OTM_VERIFY_BREAK planted-bug switches (docs/VERIFICATION.md), parsed
  /// once at construction. Breaking a fence is strictly a test device: the
  /// checker must be able to find a real violation.
  VerifyHook* verify_hook_ = nullptr;
  bool break_epoch_fence_ = false;
  bool break_ack_fence_ = false;

  /// Report a peer-health transition through the verify hook, then apply
  /// it. All health writes go through here so the transition-matrix oracle
  /// sees every edge.
  void set_peer_health(Rank peer, PeerState& ps, PeerHealth to)
      OTM_REQUIRES(host_) {
    if (verify_hook_ != nullptr && ps.health != to)
      verify_hook_->on_peer_health(rank_, peer,
                                   static_cast<std::uint8_t>(ps.health),
                                   static_cast<std::uint8_t>(to));
    ps.health = to;
  }
};

}  // namespace otm::proto
