// Unit tests for the posted-receive store: indexing by wildcard class,
// C1-ordered search across indexes, compatible-sequence ids, lazy removal,
// capacity fallback, fast-path walks and depth metrics.
#include <gtest/gtest.h>

#include "core/receive_store.hpp"

namespace otm {
namespace {

MatchConfig small_config() {
  MatchConfig c;
  c.bins = 8;
  c.block_size = 4;
  c.max_receives = 32;
  c.max_unexpected = 32;
  return c;
}

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() : store_(small_config()) {}

  std::uint32_t post(Rank src, Tag tag, std::uint64_t cookie = 0) {
    const auto r = store_.post({src, tag, 0}, 0, 0, cookie);
    EXPECT_FALSE(r.fallback);
    return r.slot;
  }

  std::uint32_t search(Rank src, Tag tag, unsigned tid = 0,
                       bool early_skip = false, std::uint32_t gen = 1) {
    const IncomingMessage m = IncomingMessage::make(src, tag, 0);
    return store_.search(m, gen, tid, early_skip, clock_, local_);
  }

  ReceiveStore store_;
  ThreadClock clock_;
  SearchLocal local_{};
};

TEST_F(StoreTest, ExactReceiveFound) {
  const auto slot = post(3, 7);
  EXPECT_EQ(search(3, 7), slot);
  EXPECT_EQ(search(3, 8), kInvalidSlot);
  EXPECT_EQ(search(4, 7), kInvalidSlot);
}

TEST_F(StoreTest, WildcardClassesEachMatch) {
  const auto s_none = post(1, 1);
  const auto r1 = store_.post({kAnySource, 2, 0}, 0, 0, 0);
  const auto r2 = store_.post({3, kAnyTag, 0}, 0, 0, 0);
  const auto r3 = store_.post({kAnySource, kAnyTag, 0}, 0, 0, 0);

  EXPECT_EQ(search(1, 1), s_none);
  EXPECT_EQ(search(99, 2), r1.slot) << "any-source receive matches tag 2";
  EXPECT_EQ(search(3, 99), r2.slot) << "any-tag receive matches source 3";
  // (9, 9) matches only the double wildcard.
  EXPECT_EQ(search(9, 9), r3.slot);
}

TEST_F(StoreTest, CommMismatchNeverMatches) {
  store_.post({1, 1, /*comm=*/5}, 0, 0, 0);
  EXPECT_EQ(search(1, 1), kInvalidSlot) << "message comm 0, receive comm 5";
}

TEST_F(StoreTest, OldestAcrossIndexesWins) {
  // C1: a no-wildcard receive posted *after* a matching wildcard receive
  // must lose to it.
  const auto wild = store_.post({kAnySource, kAnyTag, 0}, 0, 0, 0);
  post(2, 2);
  EXPECT_EQ(search(2, 2), wild.slot);
}

TEST_F(StoreTest, OldestAcrossIndexesWinsOtherOrder) {
  const auto exact = post(2, 2);
  store_.post({kAnySource, kAnyTag, 0}, 0, 0, 0);
  EXPECT_EQ(search(2, 2), exact);
}

TEST_F(StoreTest, SameKeyChainOrderedByPosting) {
  const auto first = post(5, 5, /*cookie=*/100);
  post(5, 5, /*cookie=*/101);
  EXPECT_EQ(search(5, 5), first);
}

TEST_F(StoreTest, ConsumedEntriesAreSkipped) {
  const auto first = post(5, 5);
  const auto second = post(5, 5);
  ASSERT_TRUE(store_.desc(first).try_consume());
  EXPECT_EQ(search(5, 5), second);
}

TEST_F(StoreTest, EarlyBookingSkipAvoidsLowerBookedReceive) {
  const auto first = post(5, 5);
  const auto second = post(5, 5);
  store_.desc(first).booking.book(/*gen=*/1, /*tid=*/0);
  // Thread 2 with early skip must bypass the receive booked by thread 0.
  EXPECT_EQ(search(5, 5, /*tid=*/2, /*early_skip=*/true, /*gen=*/1), second);
  EXPECT_EQ(local_.early_skips, 1u);
  // Without early skip it still returns the first one.
  EXPECT_EQ(search(5, 5, /*tid=*/2, /*early_skip=*/false, /*gen=*/1), first);
  // A different generation makes the booking stale.
  EXPECT_EQ(search(5, 5, /*tid=*/2, /*early_skip=*/true, /*gen=*/2), first);
}

TEST_F(StoreTest, SequenceIdTracksCompatibility) {
  const auto a = post(1, 1);
  const auto b = post(1, 1);
  const auto c = post(1, 2);  // incompatible: different tag
  const auto d = post(1, 1);  // new sequence, not a's
  EXPECT_EQ(store_.desc(a).seq_id, store_.desc(b).seq_id);
  EXPECT_NE(store_.desc(b).seq_id, store_.desc(c).seq_id);
  EXPECT_NE(store_.desc(a).seq_id, store_.desc(d).seq_id);
}

TEST_F(StoreTest, WildcardPostsBreakSequences) {
  const auto a = post(1, 1);
  store_.post({kAnySource, 1, 0}, 0, 0, 0);
  const auto b = post(1, 1);
  EXPECT_NE(store_.desc(a).seq_id, store_.desc(b).seq_id)
      << "a wildcard receive posted in between must break the sequence";
}

TEST_F(StoreTest, FastPathWalk) {
  const auto r0 = post(1, 1);
  const auto r1 = post(1, 1);
  const auto r2 = post(1, 1);
  const IncomingMessage m = IncomingMessage::make(1, 1, 0);
  ReceiveStore::Cursor cur;
  ASSERT_EQ(store_.search(m, 1, 0, false, clock_, local_, &cur), r0);
  EXPECT_EQ(store_.fast_path_candidate(cur, m.env, 1, clock_, local_), r1);
  EXPECT_EQ(store_.fast_path_candidate(cur, m.env, 2, clock_, local_), r2);
  EXPECT_EQ(store_.fast_path_candidate(cur, m.env, 3, clock_, local_),
            kInvalidSlot)
      << "walk past the end of the sequence must abort";
}

TEST_F(StoreTest, FastPathWalkAbortsOnBrokenSequence) {
  const auto r0 = post(1, 1);
  post(2, 2);  // breaks the sequence
  post(1, 1);  // same key, later sequence
  const IncomingMessage m = IncomingMessage::make(1, 1, 0);
  ReceiveStore::Cursor cur;
  ASSERT_EQ(store_.search(m, 1, 0, false, clock_, local_, &cur), r0);
  EXPECT_EQ(store_.fast_path_candidate(cur, m.env, 1, clock_, local_),
            kInvalidSlot);
}

TEST_F(StoreTest, TableExhaustionSignalsFallback) {
  const auto cap = store_.capacity();
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_FALSE(store_.post({1, static_cast<Tag>(i), 0}, 0, 0, 0).fallback);
  }
  EXPECT_TRUE(store_.post({1, 999, 0}, 0, 0, 0).fallback);
}

TEST_F(StoreTest, LazyRemovalReclaimsAtCapacity) {
  const auto cap = store_.capacity();
  std::vector<std::uint32_t> slots;
  for (std::size_t i = 0; i < cap; ++i)
    slots.push_back(post(1, static_cast<Tag>(i)));
  // Consume everything (lazily: still chained).
  for (const auto s : slots) ASSERT_TRUE(store_.desc(s).try_consume());
  // A further post must succeed by reclaiming consumed slots.
  EXPECT_FALSE(store_.post({2, 2, 0}, 0, 0, 0).fallback);
  EXPECT_GE(store_.lazy_removals(), cap);
}

TEST_F(StoreTest, InsertTimeCleanupUnlinksConsumed) {
  const auto a = post(1, 1);
  ASSERT_TRUE(store_.desc(a).try_consume());
  // Posting into the same bin cleans the consumed entry.
  const auto live_before = store_.live_descriptors();
  post(1, 1);
  EXPECT_LE(store_.live_descriptors(), live_before);
  EXPECT_EQ(store_.lazy_removals(), 1u);
}

TEST_F(StoreTest, UnlinkAndReleaseFreesSlot) {
  const auto a = post(1, 1);
  const auto b = post(1, 1);
  ASSERT_TRUE(store_.desc(a).try_consume());
  store_.unlink_and_release(a);
  EXPECT_EQ(search(1, 1), b);
  EXPECT_EQ(store_.live_descriptors(), 1u);
}

TEST_F(StoreTest, CleanupAllReclaimsEverything) {
  std::vector<std::uint32_t> slots;
  for (int i = 0; i < 10; ++i) slots.push_back(post(i, i));
  for (const auto s : slots) ASSERT_TRUE(store_.desc(s).try_consume());
  EXPECT_EQ(store_.cleanup_all(), 10u);
  EXPECT_EQ(store_.live_descriptors(), 0u);
  EXPECT_EQ(store_.posted_count(), 0u);
}

TEST_F(StoreTest, DepthMetricsReflectChains) {
  // One bin gets 3 same-key receives; a distinct key lands elsewhere.
  post(1, 1);
  post(1, 1);
  post(1, 1);
  post(2, 7);
  const auto m = store_.depth_metrics();
  EXPECT_EQ(m.live_entries, 4u);
  EXPECT_EQ(m.max_chain, 3u);
  EXPECT_GT(m.empty_bin_fraction, 0.5);
}

TEST_F(StoreTest, SearchAttemptsCounted) {
  post(1, 1);
  post(1, 1);
  search(1, 1);
  EXPECT_GE(local_.attempts, 1u);
  // Only the no-wildcard index holds entries; the three structurally empty
  // indexes are skipped by the occupancy check.
  EXPECT_EQ(local_.index_searches, 1u);
}

TEST_F(StoreTest, OccupancySkipProbesOnlyNonEmptyIndexes) {
  EXPECT_EQ(store_.index_entries(0), 0u);
  post(1, 1);
  store_.post({kAnySource, 2, 0}, 0, 0, 0);
  EXPECT_EQ(store_.index_entries(0), 1u);
  EXPECT_EQ(store_.index_entries(1), 1u);
  EXPECT_EQ(store_.index_entries(2), 0u);
  EXPECT_EQ(store_.index_entries(3), 0u);
  search(1, 1);
  EXPECT_EQ(local_.index_searches, 2u)
      << "exactly the two non-empty indexes are probed";
}

TEST_F(StoreTest, InlineHashesMatchComputedRouting) {
  // A message with inline hashes must find the same receive as one without.
  const auto slot = post(6, 13);
  IncomingMessage with = IncomingMessage::make(6, 13, 0);
  IncomingMessage without = with;
  without.has_inline_hashes = false;
  EXPECT_EQ(store_.search(with, 1, 0, false, clock_, local_), slot);
  EXPECT_EQ(store_.search(without, 1, 0, false, clock_, local_), slot);
}

TEST(StoreConfig, SingleBinDegeneratesToList) {
  MatchConfig c;
  c.bins = 1;
  c.max_receives = 16;
  c.max_unexpected = 16;
  ReceiveStore store(c);
  ThreadClock clock;
  SearchLocal local;
  const auto a = store.post({1, 1, 0}, 0, 0, 0);
  const auto b = store.post({2, 2, 0}, 0, 0, 0);
  (void)b;
  const IncomingMessage m = IncomingMessage::make(1, 1, 0);
  EXPECT_EQ(store.search(m, 1, 0, false, clock, local), a.slot);
  // Both receives share the single bin: searching (1,1) walks over both
  // index-0 entries plus the empty other indexes.
  EXPECT_GE(local.attempts, 1u);
}

TEST(StoreConfig, MemoryFootprintMatchesPaper) {
  // Sec. IV-E: 128 bins -> 7.5 KiB of bins; 8K receives -> ~520 KiB total.
  const auto f = MemoryFootprint::of(128, 8 * 1024);
  EXPECT_EQ(f.bin_bytes, 3u * 128u * 20u);
  EXPECT_EQ(f.bin_bytes, 7680u);  // 7.5 KiB
  EXPECT_EQ(f.descriptor_bytes, 8u * 1024u * 64u);
  EXPECT_NEAR(static_cast<double>(f.total()) / 1024.0, 519.5, 0.1);
}

}  // namespace
}  // namespace otm
