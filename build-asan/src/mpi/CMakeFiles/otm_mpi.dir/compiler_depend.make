# Empty compiler generated dependencies file for otm_mpi.
# This may be replaced when dependencies are built.
