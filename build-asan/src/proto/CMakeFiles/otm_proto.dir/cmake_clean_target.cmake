file(REMOVE_RECURSE
  "libotm_proto.a"
)
