#include "trace/analyzer.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <set>

#include "core/engine.hpp"
#include "util/assert.hpp"

namespace otm::trace {
namespace {

/// Per-rank replay state: one engine (the rank's matching structures) plus
/// the buffered not-yet-processed arrivals.
struct RankState {
  explicit RankState(const MatchConfig& cfg) : engine(cfg) {}
  MatchEngine engine;
  std::vector<IncomingMessage> pending;
  std::uint64_t next_wire_seq = 0;
};

}  // namespace

AppAnalysis TraceAnalyzer::analyze(const Trace& trace) const {
  AppAnalysis out;
  out.app = trace.app_name;
  out.ranks = trace.num_ranks;
  out.bins = cfg_.bins;

  MatchConfig mc;
  mc.bins = cfg_.bins;
  mc.block_size = cfg_.block_size;
  mc.max_receives = cfg_.max_receives;
  mc.max_unexpected = cfg_.max_unexpected;
  mc.enable_fast_path = cfg_.enable_fast_path;
  mc.early_booking_check = cfg_.early_booking_check;
  OTM_ASSERT_MSG(mc.valid(), "invalid analyzer configuration");

  std::vector<std::unique_ptr<RankState>> ranks;
  ranks.reserve(static_cast<std::size_t>(trace.num_ranks));
  for (int r = 0; r < trace.num_ranks; ++r) {
    ranks.push_back(std::make_unique<RankState>(mc));
    if (cfg_.obs != nullptr)
      ranks.back()->engine.attach_observability(
          cfg_.obs, cfg_.obs_prefix + "rank" + std::to_string(r));
  }

  LockstepExecutor executor;
  std::set<std::pair<Rank, Tag>> src_tag_pairs;

  // Occupancy-per-bin accumulators for the Fig. 7 queue-depth metric.
  double depth_sum = 0.0;
  std::uint64_t depth_ops = 0;
  const double bins = static_cast<double>(cfg_.bins);

  auto prq_live = [](const MatchEngine& e) {
    const MatchStats& s = e.stats();
    return static_cast<double>(s.receives_posted - s.receives_matched_unexpected -
                               s.messages_matched);
  };

  std::uint64_t flush_count = 0;
  std::uint64_t empty_bin_samples = 0;
  double empty_bin_sum = 0.0;

  auto flush = [&](RankState& rs) {
    if (rs.pending.empty()) return;
    // Every arrival in this batch searches the current posted-receive
    // structures; sample their per-bin occupancy before matching.
    depth_sum += prq_live(rs.engine) / bins *
                 static_cast<double>(rs.pending.size());
    depth_ops += rs.pending.size();
    // The empty-bin fraction needs a structure walk; sample sparsely.
    if (++flush_count % 64 == 1) {
      empty_bin_sum += rs.engine.receives().depth_metrics().empty_bin_fraction;
      ++empty_bin_samples;
    }
    const auto outcomes = rs.engine.process(rs.pending, executor);
    for (const auto& o : outcomes)
      if (o.kind == ArrivalOutcome::Kind::kDropped) ++out.dropped;
    rs.pending.clear();
  };

  auto sample = [&](RankState& rs) {
    ++out.data_points;
    out.depth_samples.add(prq_live(rs.engine));
    out.umq_samples.add(static_cast<double>(rs.engine.unexpected().size()));
  };

  // Merge all rank streams in global timestamp order (stable by rank).
  struct Cursor {
    double ts;
    Rank rank;
    std::size_t index;
    bool operator>(const Cursor& o) const noexcept {
      return ts != o.ts ? ts > o.ts : rank > o.rank;
    }
  };
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<>> heap;
  for (const RankTrace& r : trace.ranks)
    if (!r.ops.empty()) heap.push({r.ops[0].start_ts, r.rank, 0});

  while (!heap.empty()) {
    const Cursor c = heap.top();
    heap.pop();
    const RankTrace& rt = trace.ranks[static_cast<std::size_t>(c.rank)];
    const TraceOp& op = rt.ops[c.index];
    if (c.index + 1 < rt.ops.size())
      heap.push({rt.ops[c.index + 1].start_ts, c.rank, c.index + 1});

    RankState& rs = *ranks[static_cast<std::size_t>(c.rank)];

    switch (category_of(op.type)) {
      case OpCategory::kP2p: {
        ++out.calls.p2p;
        if (op.type == OpType::kSend || op.type == OpType::kIsend) {
          OTM_ASSERT_MSG(op.peer >= 0 && op.peer < trace.num_ranks,
                         "send to out-of-range rank");
          RankState& dst = *ranks[static_cast<std::size_t>(op.peer)];
          IncomingMessage m = IncomingMessage::make(c.rank, op.tag, op.comm,
                                                    op.bytes);
          m.wire_seq = dst.next_wire_seq++;
          dst.pending.push_back(m);
          ++out.messages;
          src_tag_pairs.emplace(c.rank, op.tag);
          ++out.tag_usage[op.tag];
          if (dst.pending.size() >= mc.block_size) flush(dst);
        } else {
          // Receives observe every message sent before them in global
          // time: flush buffered arrivals first (Fig. 1a ordering).
          flush(rs);
          const MatchSpec spec{op.peer, op.tag, op.comm};
          ++out.receives_posted;
          if (spec.any_source() || spec.any_tag()) ++out.wildcard_receives;
          // A post searches the unexpected structures: sample their
          // per-bin occupancy.
          depth_sum += static_cast<double>(rs.engine.unexpected().size()) / bins;
          ++depth_ops;
          const auto p = rs.engine.post_receive(spec, 0, 0, op.request);
          if (p.kind == PostOutcome::Kind::kMatchedUnexpected)
            ++out.matched_at_post;
          else if (p.kind == PostOutcome::Kind::kFallback)
            ++out.dropped;
          if (op.type == OpType::kRecv) sample(rs);  // blocking recv progresses
        }
        break;
      }
      case OpCategory::kProgress:
        ++out.calls.progress;
        flush(rs);
        sample(rs);
        break;
      case OpCategory::kCollective:
        ++out.calls.collective;
        break;
      case OpCategory::kOneSided:
        ++out.calls.one_sided;
        break;
      case OpCategory::kOther:
        ++out.calls.other;
        break;
    }
  }

  // Drain whatever is still buffered and take a final sample per rank.
  std::uint64_t attempts = 0;
  std::uint64_t matching_ops = 0;
  for (auto& rsp : ranks) {
    flush(*rsp);
    sample(*rsp);
    const MatchStats& s = rsp->engine.stats();
    attempts += s.match_attempts;
    matching_ops += s.messages_processed + s.receives_posted;
    out.unexpected += s.messages_unexpected;
    out.conflicts += s.conflicts_detected;
    out.max_queue_depth = std::max(out.max_queue_depth, s.max_chain_scanned);
  }
  out.avg_queue_depth =
      depth_ops == 0 ? 0.0 : depth_sum / static_cast<double>(depth_ops);
  out.avg_search_attempts = matching_ops == 0
                                ? 0.0
                                : static_cast<double>(attempts) /
                                      static_cast<double>(matching_ops);
  out.avg_empty_bin_fraction =
      empty_bin_samples == 0
          ? 1.0
          : empty_bin_sum / static_cast<double>(empty_bin_samples);
  out.unique_src_tag_pairs = src_tag_pairs.size();
  return out;
}

}  // namespace otm::trace
