// Binary trace cache (Sec. V-A: parsing is the analyzer's most expensive
// step, so the parsed in-memory representation is committed to storage and
// reused on later runs).
//
// Cache files carry a magic/version header, a fingerprint of the source
// trace directory (meta content + per-rank file sizes) and an FNV-1a
// checksum of the op payload; a stale or corrupt cache is ignored and the
// caller re-parses.
#pragma once

#include <optional>
#include <string>

#include "trace/ops.hpp"

namespace otm::trace {

/// Serialize a parsed trace. Returns false on I/O failure.
bool save_cache(const Trace& trace, const std::string& cache_path,
                std::uint64_t source_fingerprint = 0);

/// Load a cache; returns nullopt when missing, corrupt, version-mismatched
/// or when `expect_fingerprint` (if nonzero) does not match.
std::optional<Trace> load_cache(const std::string& cache_path,
                                std::uint64_t expect_fingerprint = 0);

/// Fingerprint of a DUMPI trace directory (meta content + file sizes).
std::uint64_t fingerprint_trace_dir(const std::string& meta_path);

/// Load a DUMPI trace directory through the cache: use
/// "<meta_path>.otmcache" when fresh, else parse the text and refresh it.
/// `used_cache`, when non-null, reports which path was taken.
Trace load_trace_cached(const std::string& meta_path, bool* used_cache = nullptr);

}  // namespace otm::trace
