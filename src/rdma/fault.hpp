// Deterministic fault injection for the simulated RDMA fabric.
//
// The paper's Sec. IV architecture assumes a lossless fabric; real deployments
// still see receiver-not-ready NAKs, CQ overruns and — across cables, adapters
// and firmware — lost, duplicated, reordered or corrupted deliveries. The
// injector models those edges per directed link with a seeded xoshiro stream,
// so every chaos run is exactly reproducible from (seed, traffic). The
// reliable-delivery sublayer in proto::Endpoint (docs/RELIABILITY.md) is what
// turns these faults back into exactly-once, in-order message streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>

#include "util/rng.hpp"

namespace otm::rdma {

using NodeId = std::uint32_t;

struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0xc7a05;        ///< per-link streams derive from this
  double drop_probability = 0.0;       ///< packet vanishes in flight
  double duplicate_probability = 0.0;  ///< packet delivered twice
  double corrupt_probability = 0.0;    ///< packet bytes flipped in flight
  double reorder_probability = 0.0;    ///< packet held back behind later sends
  std::uint32_t reorder_window = 3;    ///< max sends a held packet may lag
  std::uint32_t rnr_period = 0;        ///< link sends per forced-RNR cycle (0 = off)
  std::uint32_t rnr_burst = 0;         ///< refused sends opening each cycle

  /// Deterministic prefixes for unit tests: the first `drop_first` packets of
  /// every link are dropped and the next `corrupt_first` corrupted, before
  /// the probabilistic model takes over.
  std::uint32_t drop_first = 0;
  std::uint32_t corrupt_first = 0;

  /// Temporally-correlated link flaps: unlike the i.i.d. fates above, a flap
  /// opens a down-window on one directed link during which *every* packet is
  /// dropped, then the link heals. Deterministic flavor: the first
  /// `flap_down` packets of every `flap_period`-packet cycle drop.
  /// Probabilistic flavor: each delivered position opens a down-window of
  /// 1..flap_length packets with `flap_probability`.
  std::uint32_t flap_period = 0;   ///< packets per flap cycle (0 = off)
  std::uint32_t flap_down = 0;     ///< packets dropped opening each cycle
  double flap_probability = 0.0;   ///< chance a packet opens a down-window
  std::uint32_t flap_length = 8;   ///< max packets per probabilistic window

  /// Forced QP errors: the transport-level failure class (IBV_WC_RETRY_EXC
  /// and friends) that moves a QueuePair into the error state until the
  /// owner resets it. Drawn per post, before the per-packet fates.
  std::uint32_t qp_error_period = 0;   ///< every Nth post errors (0 = off)
  double qp_error_probability = 0.0;   ///< chance any post errors the QP

  /// Which ingress lanes the seeded model is allowed to touch: bit k gates
  /// faults on QPs bound to lane k. Asymmetric chaos (faults on a subset of
  /// lanes) is how the multi-lane soak proves lane isolation; the default
  /// all-ones mask leaves single-lane configs byte-identical. Explorer hooks
  /// are NOT gated — the model checker decides per (link, lane) itself.
  std::uint32_t lane_mask = 0xffffffffu;
};

class FaultInjector {
 public:
  /// What happens to the next packet entering a link.
  enum class Fate : std::uint8_t { kDeliver, kDrop, kDuplicate, kCorrupt, kHold };

  explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}

  /// True when link (src -> dst) sits inside a forced-RNR window; the fabric
  /// then refuses the send exactly as an empty SRQ would. `lane` is the
  /// ingress lane of the posting QP; lanes masked out of
  /// FaultConfig::lane_mask never refuse.
  bool forced_rnr(NodeId src, NodeId dst, std::uint16_t lane = 0);

  /// True when the next post on link (src -> dst) must move the sending
  /// QueuePair into the error state (transport retry exceeded / fatal NAK).
  /// Drawn per post from its own position counter so enabling QP errors
  /// leaves the per-packet fate stream untouched.
  bool forced_qp_error(NodeId src, NodeId dst, std::uint16_t lane = 0);

  /// Draw the fate of the next packet on link (src -> dst). Lanes masked out
  /// of FaultConfig::lane_mask always deliver (and leave the link's seeded
  /// stream position untouched, so a masked lane cannot perturb its
  /// siblings' fate sequences).
  Fate next_fate(NodeId src, NodeId dst, std::uint16_t lane = 0);

  /// How many subsequent sends a held packet lags (1..reorder_window).
  std::uint32_t hold_delay(NodeId src, NodeId dst);

  /// Flip a few bytes of an in-flight packet (after the copy, before the
  /// completion) — detected by the wire-header CRC on the receive path.
  void corrupt(NodeId src, NodeId dst, std::span<std::byte> packet);

  // --- External fate control (src/verify, docs/VERIFICATION.md) -----------
  //
  // The model checker's explorer enumerates fault decisions instead of
  // sampling them: a fate hook consulted before the seeded streams turns
  // each early packet of a link into an explicit decision point. Returning
  // nullopt (or leaving the hook unset) falls through to the seeded model,
  // so installed-but-passive hooks leave chaos runs byte-identical.

  /// Decides the fate of the next packet on (src -> dst, via `lane`), or
  /// defers. The lane lets the explorer distinguish the per-lane CQs a
  /// multi-lane endpoint drains independently.
  using FateHook =
      std::function<std::optional<Fate>(NodeId, NodeId, std::uint16_t)>;
  void set_fate_hook(FateHook hook) { fate_hook_ = std::move(hook); }

  /// Decides whether the next post on (src -> dst, via `lane`) errors the
  /// QP, or defers.
  using QpErrorHook =
      std::function<std::optional<bool>(NodeId, NodeId, std::uint16_t)>;
  void set_qp_error_hook(QpErrorHook hook) {
    qp_error_hook_ = std::move(hook);
  }

  struct Stats {
    std::uint64_t drops = 0;        ///< includes flap_drops
    std::uint64_t duplicates = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t holds = 0;
    std::uint64_t forced_rnrs = 0;
    std::uint64_t flap_drops = 0;   ///< drops attributed to a down-window
    std::uint64_t qp_errors = 0;    ///< forced QP error-state transitions
  };
  const Stats& stats() const noexcept { return stats_; }
  const FaultConfig& config() const noexcept { return cfg_; }

 private:
  struct LinkState {
    explicit LinkState(std::uint64_t seed) : rng(seed) {}
    Xoshiro256 rng;
    std::uint64_t attempts = 0;    ///< forced-RNR phase counter
    std::uint64_t packets = 0;     ///< drop_first / corrupt_first positions
    std::uint64_t posts = 0;       ///< forced-QP-error phase counter
    std::uint64_t flap_until = 0;  ///< packets below this position drop
  };
  LinkState& link(NodeId src, NodeId dst);

  FaultConfig cfg_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  Stats stats_;
  FateHook fate_hook_;
  QpErrorHook qp_error_hook_;
};

}  // namespace otm::rdma
