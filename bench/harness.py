#!/usr/bin/env python3
"""Benchmark harness: run the JSON-capable bench binaries and merge their
results into one schema-versioned BENCH_matching.json document.

Usage:
  bench/harness.py --build-dir build --out BENCH_matching.json [--smoke]
                   [--skip-micro] [--reps N] [--k N]

The merged document is what scripts/perf_gate.py diffs:

  {
    "schema_version": 1,
    "name": "BENCH_matching",
    "smoke": false,
    "benches": {
      "fig8_message_rate": { ...bench_json.hpp document... },
      "replay_soak":       { ...128-1024-rank trace replay rates... },
      "micro_matchers":    { "scenarios": [ {"name", "kind": "walltime",
                             "msgs_per_sec", ...} ] }
    }
  }

Scenario rates from the modeled cost clock are deterministic for fixed
seeds/reps (pinned below), so the committed baseline is reproducible;
micro_matchers scenarios are wall-clock and tagged "walltime" so the gate
holds them to a wide noise band only.

No dependencies beyond the Python 3 standard library.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA_VERSION = 1

# Pinned full-run parameters: the committed baseline and every candidate
# run must use the same workload or the diff is meaningless.
PINNED_FIG8 = {"reps": 500, "k": 100, "bytes": 8}
PINNED_REPLAY = {"slice": 0.25, "shards": 4}


def run(cmd):
    print("+ " + " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    if proc.returncode != 0:
        sys.exit(f"error: {cmd[0]} exited with {proc.returncode}")


def run_fig8(binary, smoke, reps, k):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out = tf.name
    try:
        cmd = [binary, f"--json={out}"]
        if smoke:
            cmd.append("--smoke")
        else:
            # Full runs also record the wall-clock storm scenarios (PR-3
            # convention: real measurements ride the wide "walltime" band).
            cmd += [f"--reps={reps}", f"--k={k}",
                    f"--bytes={PINNED_FIG8['bytes']}", "--wall"]
        run(cmd)
        with open(out, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(out)


def run_replay(binary, smoke):
    """replay_soak: 128-1024-rank trace replay through the full offloaded
    stack (PR-8). Modeled rates are deterministic for the pinned slice and
    shard count; full runs add the wall-clock twins."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out = tf.name
    try:
        cmd = [binary, f"--json={out}",
               f"--slice={PINNED_REPLAY['slice']}",
               f"--shards={PINNED_REPLAY['shards']}"]
        if smoke:
            cmd.append("--smoke")
        else:
            cmd.append("--wall")
        run(cmd)
        with open(out, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(out)


def run_micro(binary, smoke):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out = tf.name
    try:
        cmd = [binary, f"--json={out}"]
        if smoke:
            cmd.append("--smoke")
        run(cmd)
        with open(out, encoding="utf-8") as f:
            gbench = json.load(f)
    finally:
        os.unlink(out)
    # Normalize google-benchmark output into the shared scenario schema.
    scenarios = []
    for b in gbench.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scenarios.append({
            "name": b["name"],
            "kind": "walltime",
            "msgs_per_sec": b.get("items_per_second", 0.0),
            "ns_per_msg": b.get("real_time", 0.0),
        })
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "micro_matchers",
        "smoke": smoke,
        "config": {},
        "scenarios": scenarios,
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_matching.json")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny pinned runs (tier-1 perf-smoke)")
    ap.add_argument("--skip-micro", action="store_true",
                    help="skip the wall-clock micro benchmarks")
    ap.add_argument("--reps", type=int, default=PINNED_FIG8["reps"])
    ap.add_argument("--k", type=int, default=PINNED_FIG8["k"])
    args = ap.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")
    fig8 = os.path.join(bench_dir, "fig8_message_rate")
    micro = os.path.join(bench_dir, "micro_matchers")
    if not os.path.exists(fig8):
        sys.exit(f"error: {fig8} not found (build with -DOTM_BUILD_BENCH=ON)")

    benches = {"fig8_message_rate": run_fig8(fig8, args.smoke, args.reps,
                                             args.k)}
    replay = os.path.join(bench_dir, "replay_soak")
    if os.path.exists(replay):
        benches["replay_soak"] = run_replay(replay, args.smoke)
    else:
        print(f"warning: {replay} not found, skipping replay soak",
              file=sys.stderr)
    if not args.skip_micro:
        if os.path.exists(micro):
            benches["micro_matchers"] = run_micro(micro, args.smoke)
        else:
            print(f"warning: {micro} not found, skipping micro benchmarks",
                  file=sys.stderr)

    doc = {
        "schema_version": SCHEMA_VERSION,
        "name": "BENCH_matching",
        "smoke": args.smoke,
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out} ({len(benches)} benches, "
          f"{sum(len(b['scenarios']) for b in benches.values())} scenarios)",
          file=sys.stderr)


if __name__ == "__main__":
    main()
