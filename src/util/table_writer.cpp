#include "util/table_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace otm {

TableWriter::TableWriter(std::vector<std::string> headers, Format format)
    : format_(format), headers_(std::move(headers)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

TableWriter::RowBuilder& TableWriter::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}

TableWriter::RowBuilder& TableWriter::RowBuilder::cell(const char* s) {
  cells_.emplace_back(s);
  return *this;
}

TableWriter::RowBuilder& TableWriter::RowBuilder::cell(double v, int precision) {
  cells_.push_back(fmt_double(v, precision));
  return *this;
}

TableWriter::RowBuilder& TableWriter::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

TableWriter::RowBuilder& TableWriter::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

TableWriter::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

void TableWriter::print(std::ostream& os) const {
  if (format_ == Format::kCsv) {
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) os << ',';
        os << cells[i];
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
    return;
  }

  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size(); ++i)
      widths[i] = std::max(widths[i], r[i].size());

  const char* sep = format_ == Format::kMarkdown ? " | " : "  ";
  const char* edge = format_ == Format::kMarkdown ? "| " : "";
  const char* redge = format_ == Format::kMarkdown ? " |" : "";

  auto emit = [&](const std::vector<std::string>& cells) {
    os << edge;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      if (i != 0) os << sep;
      const std::string& c = i < cells.size() ? cells[i] : headers_[i];
      os << c << std::string(widths[i] - c.size(), ' ');
    }
    os << redge << '\n';
  };

  emit(headers_);
  os << edge;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i != 0) os << (format_ == Format::kMarkdown ? "-|-" : "  ");
    os << std::string(widths[i], '-');
  }
  os << redge << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string TableWriter::str() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_rate(double per_second) {
  char buf[64];
  if (per_second >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f M/s", per_second / 1e6);
  } else if (per_second >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f K/s", per_second / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f /s", per_second);
  }
  return buf;
}

}  // namespace otm
