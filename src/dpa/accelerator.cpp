#include "dpa/accelerator.hpp"

#include <algorithm>

#include "core/steering.hpp"
#include "util/assert.hpp"

namespace otm {

DpaAccelerator::DpaAccelerator(const DpaConfig& dpa_cfg,
                               const MatchConfig& default_match_cfg)
    : cfg_(dpa_cfg),
      shared_costs_(dpa_cfg.shared_costs(default_match_cfg.block_size)),
      slot_free_(kMaxBlockThreads, 0) {
  OTM_ASSERT_MSG(default_match_cfg.block_size <= dpa_cfg.max_threads,
                 "block threads exceed DPA hardware threads");
  const bool ok = register_comm(0, default_match_cfg);
  OTM_ASSERT_MSG(ok, "default communicator exceeds the DPA memory budget");
}

bool DpaAccelerator::register_comm(CommId comm, const MatchConfig& cfg) {
  OTM_ASSERT_MSG(cfg.valid(), "invalid MatchConfig");
  OTM_ASSERT_MSG(cfg.block_size <= cfg_.max_threads,
                 "block threads exceed DPA hardware threads");
  if (engines_.find(comm) != engines_.end()) return false;
  const std::size_t need = footprint_of(cfg);
  if (memory_used_ + need > cfg_.memory_budget_bytes) {
    // Memory-budget exhaustion is a watchdog demotion signal (Sec. IV-E
    // fallback escalated to a health event).
    if (cfg_.watchdog.enabled && cfg_.watchdog.demote_on_memory_exhaustion)
      memory_event_ = true;
    return false;
  }
  const auto it =
      engines_.emplace(comm, std::make_unique<CommEngine>(cfg, &shared_costs_))
          .first;
  memory_used_ += need;
  if (obs_ != nullptr) {
    attach_engine_obs(comm, it->second->engine);
    publish_gauges();
  }
  return true;
}

void DpaAccelerator::attach_observability(obs::Observability* obs,
                                          std::string_view prefix) {
  obs_ = obs;
  obs_prefix_.assign(prefix);
  g_memory_used_ = g_busy_cycles_ = g_now_ = nullptr;
  for (auto& [comm, ce] : engines_)
    attach_engine_obs(comm, ce->engine);  // detaches too when obs == nullptr
  if (obs_ == nullptr) return;
  if (obs::MetricsRegistry* reg = obs_->metrics()) {
    g_memory_used_ = &reg->gauge(obs_prefix_ + ".memory_used_bytes");
    g_busy_cycles_ = &reg->gauge(obs_prefix_ + ".busy_cycles");
    g_now_ = &reg->gauge(obs_prefix_ + ".now_cycles");
    g_degraded_ = &reg->gauge(obs_prefix_ + ".degraded");
    publish_gauges();
  }
}

void DpaAccelerator::watchdog_tick(bool pressure) noexcept {
  if (!cfg_.watchdog.enabled) return;
  const bool dirty = pressure || stall_pending_ || memory_event_;
  pressure_streak_ = pressure ? pressure_streak_ + 1 : 0;
  stall_pending_ = false;
  if (!degraded_) {
    if (pressure_streak_ >= cfg_.watchdog.pressure_streak ||
        (cfg_.watchdog.stall_cycles != 0 &&
         stall_events_ >= cfg_.watchdog.stall_streak) ||
        (memory_event_ && cfg_.watchdog.demote_on_memory_exhaustion))
      demote();
  } else {
    // Hysteresis: the healthy window restarts on any dirty tick.
    healthy_ticks_ = dirty ? 0 : healthy_ticks_ + 1;
  }
  publish_gauges();
}

void DpaAccelerator::promote() noexcept {
  degraded_ = false;
  pressure_streak_ = 0;
  stall_events_ = 0;
  healthy_ticks_ = 0;
  memory_event_ = false;
  publish_gauges();
}

void DpaAccelerator::set_ingress_lanes(unsigned lanes) {
  OTM_ASSERT_MSG(lanes >= 1 && lanes <= kMaxShards &&
                     (lanes & (lanes - 1)) == 0,
                 "ingress lanes must be a power of two <= kMaxShards");
  lanes_ = lanes;
}

void DpaAccelerator::lane_watchdog_tick(unsigned lane, bool pressure) noexcept {
  if (!cfg_.watchdog.enabled || lane >= kMaxShards) return;
  lane_pressure_streak_[lane] = pressure ? lane_pressure_streak_[lane] + 1 : 0;
  if (!lane_degraded_[lane]) {
    if (lane_pressure_streak_[lane] >= cfg_.watchdog.pressure_streak) {
      lane_degraded_[lane] = true;
      lane_healthy_ticks_[lane] = 0;
      lanes_degraded_ |= 1u << lane;
    }
  } else {
    lane_healthy_ticks_[lane] =
        pressure ? 0 : lane_healthy_ticks_[lane] + 1;
  }
}

void DpaAccelerator::lane_promote(unsigned lane) noexcept {
  if (lane >= kMaxShards) return;
  lane_degraded_[lane] = false;
  lane_pressure_streak_[lane] = 0;
  lane_healthy_ticks_[lane] = 0;
  lanes_degraded_ &= ~(1u << lane);
}

void DpaAccelerator::force_demote_lane(unsigned lane) noexcept {
  if (!cfg_.watchdog.enabled || lane >= kMaxShards) return;
  lane_degraded_[lane] = true;
  lane_healthy_ticks_[lane] = 0;
  lanes_degraded_ |= 1u << lane;
}

void DpaAccelerator::drain_lane_shard(
    unsigned shard, std::vector<MatchEngine::DrainedReceive>& receives,
    std::vector<UnexpectedDescriptor>& ums) {
  for (auto& [comm, ce] : engines_) {
    ShardedEngine& eng = ce->engine;
    if (shard < eng.shard_count()) eng.drain_shard(shard, receives, ums);
  }
  publish_gauges();
}

void DpaAccelerator::drain_all(
    std::vector<MatchEngine::DrainedReceive>& receives,
    std::vector<UnexpectedDescriptor>& ums) {
  for (auto& [comm, ce] : engines_) {
    ce->engine.drain_pending(receives);
    ce->engine.drain_unexpected(ums);
  }
  publish_gauges();
}

void DpaAccelerator::attach_engine_obs(CommId comm, ShardedEngine& eng) {
  eng.attach_observability(
      obs_, obs_prefix_ + ".comm" + std::to_string(comm));
}

void DpaAccelerator::publish_gauges() noexcept {
  if (g_memory_used_ == nullptr) return;
  g_memory_used_->set(memory_used_);
  g_busy_cycles_->set(busy_cycles_);
  g_now_->set(now_);
  if (g_degraded_ != nullptr) g_degraded_->set(degraded_ ? 1 : 0);
}

MatchEngine& DpaAccelerator::engine(CommId comm) {
  ShardedEngine& se = sharded_engine(comm);
  OTM_ASSERT_MSG(se.shard_count() == 1,
                 "sharded communicator: use sharded_engine()");
  return se.shard(0);
}

const MatchEngine& DpaAccelerator::engine(CommId comm) const {
  const ShardedEngine& se = sharded_engine(comm);
  OTM_ASSERT_MSG(se.shard_count() == 1,
                 "sharded communicator: use sharded_engine()");
  return se.shard(0);
}

ShardedEngine& DpaAccelerator::sharded_engine(CommId comm) {
  const auto it = engines_.find(comm);
  OTM_ASSERT_MSG(it != engines_.end(), "communicator not registered on the DPA");
  return it->second->engine;
}

const ShardedEngine& DpaAccelerator::sharded_engine(CommId comm) const {
  const auto it = engines_.find(comm);
  OTM_ASSERT_MSG(it != engines_.end(), "communicator not registered on the DPA");
  return it->second->engine;
}

MatchStats DpaAccelerator::total_stats() const {
  MatchStats total;
  for (const auto& [comm, ce] : engines_) total += ce->engine.stats();
  return total;
}

PostOutcome DpaAccelerator::post_receive(const MatchSpec& spec,
                                         std::uint64_t buffer_addr,
                                         std::uint32_t buffer_capacity,
                                         std::uint64_t cookie) {
  const auto it = engines_.find(spec.comm);
  if (it == engines_.end()) {
    // Unregistered communicator: the host must match in software.
    PostOutcome out;
    out.kind = PostOutcome::Kind::kFallback;
    out.cookie = cookie;
    return out;
  }
  return it->second->engine.post_receive(spec, buffer_addr, buffer_capacity,
                                         cookie);
}

std::optional<ProbeResult> DpaAccelerator::probe(const MatchSpec& spec) {
  const auto it = engines_.find(spec.comm);
  if (it == engines_.end()) return std::nullopt;
  return it->second->engine.probe(spec);
}

std::optional<std::uint64_t> DpaAccelerator::cancel_receive(
    CommId comm, std::uint64_t cookie) {
  const auto it = engines_.find(comm);
  if (it == engines_.end()) return std::nullopt;
  return it->second->engine.cancel_receive(cookie);
}

void DpaAccelerator::deliver_run(ShardedEngine& eng,
                                 std::span<const IncomingMessage> msgs,
                                 std::span<const std::uint64_t> arrivals,
                                 std::vector<ArrivalOutcome>& out) {
  if (lanes_ > 1) {
    deliver_run_lanes(eng, msgs, arrivals, out);
    return;
  }
  if (eng.shard_count() > 1) {
    deliver_run_sharded(eng, msgs, arrivals, out);
    return;
  }
  const unsigned block = eng.config().block_size;
  // Process block by block so hart-slot pipeline backpressure from block b
  // constrains the dispatch times of block b+1.
  for (std::size_t base = 0; base < msgs.size(); base += block) {
    const std::size_t n = std::min<std::size_t>(block, msgs.size() - base);

    // Dispatch time per message: serial CQE delivery (the NIC hands out
    // completions one at a time) plus hart-slot availability. The scratch
    // is accelerator-owned and reused across blocks.
    std::vector<std::uint64_t>& starts = starts_scratch_;
    starts.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t g = base + i;
      const std::uint64_t arrival =
          arrivals.empty() ? cqe_ready_ : std::max(arrivals[g], cqe_ready_);
      // Sub-messages of a merged packet share its single CQE: all but the
      // first dispatch from the unpack handler's table walk instead.
      cqe_ready_ = arrival + (msgs[g].merged_sub ? cfg_.merged_sub_interval
                                                 : cfg_.cqe_interval);
      starts[i] = std::max(arrival, slot_free_[i]);
    }

    auto block_out = eng.process(msgs.subspan(base, n), executor_, starts);
    for (std::size_t i = 0; i < block_out.size(); ++i) {
      const std::uint64_t finish = block_out[i].timing.finish_cycles;
      slot_free_[i] = std::max(slot_free_[i], finish);
      now_ = std::max(now_, finish);
      busy_cycles_ += finish - starts[i];
      note_service_time(finish - starts[i]);
      out.push_back(block_out[i]);
    }
  }
  publish_gauges();
}

void DpaAccelerator::deliver_run_sharded(ShardedEngine& eng,
                                         std::span<const IncomingMessage> msgs,
                                         std::span<const std::uint64_t> arrivals,
                                         std::vector<ArrivalOutcome>& out) {
  const unsigned block = eng.config().block_size;
  for (std::size_t base = 0; base < msgs.size(); base += block) {
    const std::size_t n = std::min<std::size_t>(block, msgs.size() - base);

    // Dispatch time per message: CQEs fan out to one completion queue per
    // shard (routed on the packet's source, like the messages themselves),
    // so only same-shard completions serialize on cqe_interval, and each
    // shard pipelines its own hart slots. Lane = this message's position
    // among its shard's messages within the block — the hart slot its
    // shard's sub-block assigns it.
    std::vector<std::uint64_t>& starts = starts_scratch_;
    starts.assign(n, 0);
    std::array<unsigned, kMaxShards> lane{};
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t g = base + i;
      const unsigned s = eng.shard_of(msgs[g].env.source);
      const std::uint64_t arrival =
          arrivals.empty() ? cqe_shard_ready_[s]
                           : std::max(arrivals[g], cqe_shard_ready_[s]);
      cqe_shard_ready_[s] =
          arrival + (msgs[g].merged_sub ? cfg_.merged_sub_interval
                                        : cfg_.cqe_interval);
      starts[i] = std::max(arrival, shard_slot_free_[s][lane[s]]);
      ++lane[s];
    }

    auto block_out = eng.process(msgs.subspan(base, n), executor_, starts);
    lane.fill(0);
    for (std::size_t i = 0; i < block_out.size(); ++i) {
      const unsigned s = eng.shard_of(msgs[base + i].env.source);
      const std::uint64_t finish = block_out[i].timing.finish_cycles;
      std::uint64_t& slot = shard_slot_free_[s][lane[s]++];
      slot = std::max(slot, finish);
      now_ = std::max(now_, finish);
      busy_cycles_ += finish - starts[i];
      note_service_time(finish - starts[i]);
      out.push_back(block_out[i]);
    }
  }
  publish_gauges();
}

void DpaAccelerator::deliver_run_lanes(ShardedEngine& eng,
                                       std::span<const IncomingMessage> msgs,
                                       std::span<const std::uint64_t> arrivals,
                                       std::vector<ArrivalOutcome>& out) {
  const unsigned block = eng.config().block_size;
  const std::uint32_t mask = lanes_ - 1;
  const std::size_t first = out.size();
  out.resize(first + msgs.size());

  // Partition the run by ingress lane — the same steering hash the matcher's
  // shard routing and the endpoint's QP binding use, so a source's packets
  // always sit in one lane's CQ and per-lane dispatch preserves per-source
  // arrival order.
  for (unsigned l = 0; l < lanes_; ++l) lane_idx_scratch_[l].clear();
  for (std::size_t i = 0; i < msgs.size(); ++i)
    lane_idx_scratch_[steer_lane(msgs[i].env.source, mask)].push_back(i);

  for (unsigned l = 0; l < lanes_; ++l) {
    const std::vector<std::size_t>& idx = lane_idx_scratch_[l];
    if (idx.empty()) continue;
    // This run is one poll batch for lane l's pinned hart: the first CQE
    // pays the full NIC-processing interval, the rest are ring walks
    // (lane_cqe_batch_interval). Each lane forms its own blocks against its
    // own hart-slot pipeline, so lanes never lockstep on block boundaries.
    bool first_cqe = true;
    for (std::size_t base = 0; base < idx.size(); base += block) {
      const std::size_t n = std::min<std::size_t>(block, idx.size() - base);
      std::vector<std::uint64_t>& starts = starts_scratch_;
      starts.assign(n, 0);
      lane_msgs_scratch_.clear();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t g = idx[base + i];
        lane_msgs_scratch_.push_back(msgs[g]);
        const std::uint64_t interval =
            msgs[g].merged_sub
                ? cfg_.merged_sub_interval
                : (first_cqe ? cfg_.cqe_interval
                             : cfg_.lane_cqe_batch_interval);
        first_cqe = false;
        const std::uint64_t arrival =
            arrivals.empty() ? lane_cqe_ready_[l]
                             : std::max(arrivals[g], lane_cqe_ready_[l]);
        lane_cqe_ready_[l] = arrival + interval;
        starts[i] = std::max(arrival, lane_slot_free_[l][i]);
      }
      auto block_out = eng.process(lane_msgs_scratch_, executor_, starts);
      for (std::size_t i = 0; i < block_out.size(); ++i) {
        const std::uint64_t finish = block_out[i].timing.finish_cycles;
        lane_slot_free_[l][i] = std::max(lane_slot_free_[l][i], finish);
        now_ = std::max(now_, finish);
        busy_cycles_ += finish - starts[i];
        note_service_time(finish - starts[i]);
        out[first + idx[base + i]] = block_out[i];
      }
    }
  }
  publish_gauges();
}

std::vector<ArrivalOutcome> DpaAccelerator::deliver(
    std::span<const IncomingMessage> msgs,
    std::span<const std::uint64_t> arrival_cycles) {
  OTM_ASSERT(arrival_cycles.empty() || arrival_cycles.size() == msgs.size());

  std::vector<ArrivalOutcome> outcomes;
  outcomes.reserve(msgs.size());

  // Split the arrival stream into maximal same-communicator runs; each run
  // is matched on its communicator's engine. Relative order within a
  // communicator is preserved (cross-communicator order carries no MPI
  // semantics).
  std::size_t base = 0;
  while (base < msgs.size()) {
    const CommId comm = msgs[base].env.comm;
    std::size_t end = base + 1;
    while (end < msgs.size() && msgs[end].env.comm == comm) ++end;
    deliver_run(sharded_engine(comm), msgs.subspan(base, end - base),
                arrival_cycles.empty()
                    ? arrival_cycles
                    : arrival_cycles.subspan(base, end - base),
                outcomes);
    base = end;
  }
  return outcomes;
}

}  // namespace otm
