file(REMOVE_RECURSE
  "CMakeFiles/offload_pingpong.dir/offload_pingpong.cpp.o"
  "CMakeFiles/offload_pingpong.dir/offload_pingpong.cpp.o.d"
  "offload_pingpong"
  "offload_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
