#include "core/unexpected_store.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace otm {

UnexpectedStore::UnexpectedStore(const MatchConfig& cfg)
    : cfg_(cfg), table_(cfg.max_unexpected) {
  bin_mask_ = cfg_.bins - 1;
  for (unsigned idx = 0; idx < kNumIndexes; ++idx) {
    const std::size_t n = (idx == static_cast<unsigned>(WildcardClass::kBothWild))
                              ? 1
                              : cfg_.bins;
    bins_[idx] = std::vector<Bin>(n);
    for (Bin& bin : bins_[idx]) bin.hot.bind(&arena_);
  }
}

std::size_t UnexpectedStore::bin_for(unsigned idx, const Envelope& env) const noexcept {
  switch (static_cast<WildcardClass>(idx)) {
    case WildcardClass::kNone:
      return hash_src_tag(env.source, env.tag) & bin_mask_;
    case WildcardClass::kSourceWild:
      return hash_tag(env.tag) & bin_mask_;
    case WildcardClass::kTagWild:
      return hash_src(env.source) & bin_mask_;
    case WildcardClass::kBothWild:
      return 0;
  }
  return 0;
}

std::uint32_t UnexpectedStore::insert(const IncomingMessage& msg,
                                      ThreadClock& clock,
                                      const std::uint64_t* arrival_override) {
  const std::uint32_t slot = table_.allocate();
  if (slot == kInvalidSlot) return kInvalidSlot;
  UnexpectedDescriptor& d = table_[slot];
  d.env = msg.env;
  if (arrival_override != nullptr) {
    OTM_ASSERT_MSG(*arrival_override >= next_arrival_,
                   "external arrival stamp below this store's clock");
    // Advance past the stamp so mixed internal/external inserts stay
    // append-ordered by arrival (constraint C2).
    next_arrival_ = *arrival_override;
  }
  d.arrival = next_arrival_++;
  d.wire_seq = msg.wire_seq;
  d.protocol = msg.protocol;
  d.payload_bytes = msg.payload_bytes;
  d.inline_bytes = msg.inline_bytes;
  d.bounce_handle = msg.bounce_handle;
  d.remote_key = msg.remote_key;
  d.remote_addr = msg.remote_addr;
  d.active = true;
  OTM_CHARGE(clock, unexpected_insert);
  // With the no-wildcard assertion only the hash(src,tag) index is ever
  // probed by a posted receive, so index the message once, not four times.
  const unsigned num_indexes = cfg_.assume_no_wildcards ? 1 : kNumIndexes;
  for (unsigned idx = 0; idx < num_indexes; ++idx) {
    Bin& bin = bins_[idx][bin_for(idx, msg.env)];
    bin.hot.push_back({msg.env, slot});
    ++index_count_[idx];
  }
  return slot;
}

std::uint32_t UnexpectedStore::search(const MatchSpec& spec, ThreadClock& clock,
                                      std::uint64_t& attempts) const {
  const auto idx = static_cast<unsigned>(spec.wildcard_class());
  // Occupancy skip: nothing indexed under this class -> no hash, no bin
  // probe; just the one packed-word examine of the occupancy counter.
  if (index_count_[idx] == 0) {
    OTM_CHARGE(clock, hot_scan_step);
    return kInvalidSlot;
  }
  std::size_t bin_id = 0;
  switch (spec.wildcard_class()) {
    case WildcardClass::kNone:
      bin_id = hash_src_tag(spec.source, spec.tag) & bin_mask_;
      OTM_CHARGE(clock, hash_compute);
      break;
    case WildcardClass::kSourceWild:
      bin_id = hash_tag(spec.tag) & bin_mask_;
      OTM_CHARGE(clock, hash_compute);
      break;
    case WildcardClass::kTagWild:
      bin_id = hash_src(spec.source) & bin_mask_;
      OTM_CHARGE(clock, hash_compute);
      break;
    case WildcardClass::kBothWild:
      bin_id = 0;
      break;
  }
  OTM_CHARGE(clock, bin_lookup);
  const Bin& bin = bins_[idx][bin_id];
  for (const HotEntry& e : bin.hot) {
    ++attempts;
    OTM_CHARGE(clock, hot_scan_step);
    if (spec.matches(e.env)) return e.slot;
  }
  return kInvalidSlot;
}

UnexpectedDescriptor UnexpectedStore::remove(std::uint32_t slot) {
  UnexpectedDescriptor& d = table_[slot];
  OTM_ASSERT_MSG(d.active, "removing inactive unexpected descriptor");
  const unsigned num_indexes = cfg_.assume_no_wildcards ? 1 : kNumIndexes;
  for (unsigned idx = 0; idx < num_indexes; ++idx) {
    Bin& bin = bins_[idx][bin_for(idx, d.env)];
    bool found = false;
    for (std::uint32_t i = 0; i < bin.hot.size(); ++i) {
      if (bin.hot[i].slot != slot) continue;
      bin.hot.erase_at(i);
      --index_count_[idx];
      found = true;
      break;
    }
    OTM_ASSERT_MSG(found, "unexpected descriptor missing from an index");
  }
  UnexpectedDescriptor out = d;
  table_.release(slot);
  return out;
}

UnexpectedStore::DepthMetrics UnexpectedStore::depth_metrics() const {
  DepthMetrics m;
  m.entries = table_.live();
  std::size_t total_bins = 0;
  std::size_t nonempty = 0;
  for (unsigned idx = 0; idx < kNumIndexes; ++idx) {
    for (const Bin& bin : bins_[idx]) {
      ++total_bins;
      const std::size_t len = bin.hot.size();
      if (len > 0) ++nonempty;
      m.max_chain = std::max(m.max_chain, len);
    }
  }
  m.empty_bin_fraction =
      total_bins == 0
          ? 0.0
          : static_cast<double>(total_bins - nonempty) / static_cast<double>(total_bins);
  return m;
}

}  // namespace otm
