// Tests for the p2p-layered collectives (Sec. VII: collectives build on
// point-to-point and therefore exercise the offloaded matcher).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpi/mpi.hpp"

namespace otm::mpi {
namespace {

class Collectives : public ::testing::TestWithParam<std::tuple<Backend, int>> {
 protected:
  WorldOptions options() const {
    WorldOptions o;
    o.backend = std::get<0>(GetParam());
    return o;
  }
  int ranks() const { return std::get<1>(GetParam()); }
};

TEST_P(Collectives, BarrierCompletes) {
  World world(ranks(), options());
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    before.fetch_add(1);
    proc.barrier(comm);
    // Everyone entered before anyone needs to have left a *second* barrier.
    proc.barrier(comm);
    after.fetch_add(1);
  });
  EXPECT_EQ(before.load(), ranks());
  EXPECT_EQ(after.load(), ranks());
}

TEST_P(Collectives, BcastFromEveryRoot) {
  World world(ranks(), options());
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    for (Rank root = 0; root < proc.size(); ++root) {
      std::vector<std::byte> buf(32);
      if (proc.rank() == root)
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = static_cast<std::byte>((i + static_cast<std::size_t>(root)) & 0xFF);
      proc.bcast(buf, root, comm);
      for (std::size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf[i],
                  static_cast<std::byte>((i + static_cast<std::size_t>(root)) & 0xFF))
            << "root " << root << " rank " << proc.rank();
    }
  });
}

TEST_P(Collectives, ReduceSumAtEveryRoot) {
  World world(ranks(), options());
  const std::int64_t n = ranks();
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    for (Rank root = 0; root < proc.size(); ++root) {
      const std::int64_t in[2] = {proc.rank() + 1, 10 * (proc.rank() + 1)};
      std::int64_t out[2] = {0, 0};
      proc.reduce(in, out, Proc::ReduceOp::kSum, root, comm);
      if (proc.rank() == root) {
        ASSERT_EQ(out[0], n * (n + 1) / 2);
        ASSERT_EQ(out[1], 10 * n * (n + 1) / 2);
      }
    }
  });
}

TEST_P(Collectives, AllreduceMinMax) {
  World world(ranks(), options());
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    const std::int64_t in[1] = {proc.rank() * 3 + 1};
    std::int64_t mn[1];
    std::int64_t mx[1];
    proc.allreduce(in, mn, Proc::ReduceOp::kMin, comm);
    proc.allreduce(in, mx, Proc::ReduceOp::kMax, comm);
    ASSERT_EQ(mn[0], 1);
    ASSERT_EQ(mx[0], (proc.size() - 1) * 3 + 1);
  });
}

TEST_P(Collectives, GatherCollectsAllBlocks) {
  World world(ranks(), options());
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    const std::byte block[4] = {
        static_cast<std::byte>(proc.rank()), static_cast<std::byte>(1),
        static_cast<std::byte>(2), static_cast<std::byte>(3)};
    std::vector<std::byte> all(4 * static_cast<std::size_t>(proc.size()));
    proc.gather(block, all, /*root=*/0, comm);
    if (proc.rank() == 0) {
      for (int r = 0; r < proc.size(); ++r)
        ASSERT_EQ(all[4 * static_cast<std::size_t>(r)], static_cast<std::byte>(r));
    }
  });
}

TEST_P(Collectives, BackToBackCollectivesDoNotCross) {
  // C2 keeps successive same-tag collective messages ordered; 20 rounds of
  // alternating allreduce + bcast must stay coherent.
  World world(ranks(), options());
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    for (int round = 0; round < 20; ++round) {
      const std::int64_t in[1] = {round + proc.rank()};
      std::int64_t out[1];
      proc.allreduce(in, out, Proc::ReduceOp::kMax, comm);
      ASSERT_EQ(out[0], round + proc.size() - 1) << "round " << round;
      std::vector<std::byte> b(8, static_cast<std::byte>(round));
      proc.bcast(b, /*root=*/round % proc.size(), comm);
      ASSERT_EQ(b[0], static_cast<std::byte>(round));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Collectives,
    ::testing::Combine(::testing::Values(Backend::kOffloadDpa,
                                         Backend::kSoftwareList),
                       ::testing::Values(1, 2, 5, 8)),
    [](const auto& param_info) {
      const auto backend = std::get<0>(param_info.param);
      return std::string(backend == Backend::kOffloadDpa ? "Dpa" : "Sw") +
             "_ranks" + std::to_string(std::get<1>(param_info.param));
    });

TEST(CollectivesHostComm, WorkOnNonOffloadedCommunicator) {
  World world(4, {});
  CommInfo no_offload;
  no_offload.offload = false;
  // comm_create takes the world lock; create before spawning SPMD threads.
  const Comm comm = world.proc(0).comm_create(no_offload);
  world.run([&](Proc& proc) {
    const std::int64_t in[1] = {proc.rank() + 1};
    std::int64_t out[1];
    proc.allreduce(in, out, Proc::ReduceOp::kSum, comm);
    ASSERT_EQ(out[0], 10);
  });
}

}  // namespace
}  // namespace otm::mpi
