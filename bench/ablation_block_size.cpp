// Ablation — block size N (messages matched concurrently, Sec. III-A).
//
// Sweeps N from 1 to the 32-thread bitmap limit for the NC and WC
// workloads. Expected shape: NC throughput grows with N until serial CQE
// dispatch dominates; WC with the fast path degrades gently (longer
// shifts); WC on the slow path degrades with N (the resolution chain is
// N-long). Also reports the core-sharing factor (16 DPA cores).
#include <cstdio>
#include <iostream>

#include "pingpong_common.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);  // tier-1 perf-smoke
  PingPongConfig base;
  base.repetitions =
      static_cast<unsigned>(args.get_int("reps", smoke ? 5 : 200));
  base.match.early_booking_check = false;

  std::printf("Ablation: block size N (ping-pong, k=%u, %u reps)\n\n",
              base.messages_per_seq, base.repetitions);
  TableWriter table({"N", "core sharing", "NC Mmsg/s", "WC-FP Mmsg/s",
                     "WC-SP Mmsg/s"});

  for (const unsigned n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    PingPongConfig nc = base;
    nc.match.block_size = n;
    nc.with_conflict = false;

    PingPongConfig wc_fp = base;
    wc_fp.match.block_size = n;
    wc_fp.with_conflict = true;

    PingPongConfig wc_sp = wc_fp;
    wc_sp.match.enable_fast_path = false;

    table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(base.dpa.sharing_factor(n)))
        .cell(run_optimistic_dpa(nc).msg_rate / 1e6, 2)
        .cell(run_optimistic_dpa(wc_fp).msg_rate / 1e6, 2)
        .cell(run_optimistic_dpa(wc_sp).msg_rate / 1e6, 2);
  }
  table.print(std::cout);
  return 0;
}
