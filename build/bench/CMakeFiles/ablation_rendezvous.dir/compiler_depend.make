# Empty compiler generated dependencies file for ablation_rendezvous.
# This may be replaced when dependencies are built.
