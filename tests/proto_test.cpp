// End-to-end tests of the offloaded endpoint: wire header round trips,
// eager and rendezvous delivery, expected and unexpected paths, bounce
// buffer recycling, and payload integrity through every path.
#include <gtest/gtest.h>

#include <cstring>

#include "proto/endpoint.hpp"

namespace otm::proto {
namespace {

std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + static_cast<std::size_t>(seed)) & 0xFF);
  return v;
}

TEST(Wire, HeaderRoundTrip) {
  WireHeader h;
  h.source = 3;
  h.tag = 42;
  h.comm = 7;
  h.protocol = static_cast<std::uint8_t>(Protocol::kRendezvous);
  h.payload_bytes = 4096;
  h.rkey = 5;
  h.rkey_valid = 1;
  h.remote_offset = 0x100;
  std::vector<std::byte> buf(kHeaderBytes);
  encode_header(h, buf);
  const WireHeader d = decode_header(buf);
  EXPECT_EQ(d.source, 3);
  EXPECT_EQ(d.tag, 42);
  EXPECT_EQ(d.comm, 7u);
  EXPECT_EQ(d.payload_bytes, 4096u);
  EXPECT_EQ(d.rkey, 5u);
  EXPECT_EQ(d.remote_offset, 0x100u);
}

TEST(Wire, ToIncomingCarriesEverything) {
  WireHeader h;
  h.source = 2;
  h.tag = 9;
  h.comm = 1;
  h.protocol = static_cast<std::uint8_t>(Protocol::kEager);
  h.payload_bytes = 128;
  const Envelope env{2, 9, 1};
  const auto hashes = InlineHashes::compute(env);
  h.hash_src_tag = hashes.src_tag;
  h.hash_src = hashes.src;
  h.hash_tag = hashes.tag;
  const IncomingMessage m = to_incoming(h, /*bounce=*/4, /*wire_seq=*/17);
  EXPECT_EQ(m.env, env);
  EXPECT_EQ(m.hashes, hashes);
  EXPECT_TRUE(m.has_inline_hashes);
  EXPECT_EQ(m.bounce_handle, 4u);
  EXPECT_EQ(m.wire_seq, 17u);
}

class EndpointTest : public ::testing::Test {
 protected:
  EndpointTest()
      : a_(fabric_, 0, ep_cfg(), match_cfg(), DpaConfig{}),
        b_(fabric_, 1, ep_cfg(), match_cfg(), DpaConfig{}) {
    a_.connect(b_);
  }

  static EndpointConfig ep_cfg() {
    EndpointConfig c;
    c.eager_threshold = 256;
    c.bounce_count = 32;
    return c;
  }

  static MatchConfig match_cfg() {
    MatchConfig c;
    c.bins = 32;
    c.block_size = 4;
    c.max_receives = 64;
    c.max_unexpected = 64;
    return c;
  }

  rdma::Fabric fabric_;
  Endpoint a_;
  Endpoint b_;
};

TEST_F(EndpointTest, EagerExpectedDeliversPayload) {
  std::vector<std::byte> user(64);
  ASSERT_EQ(b_.post_receive({0, 5, 0}, user, /*cookie=*/1).outcome,
            proto::Outcome::kPending);

  const auto tx = pattern(64);
  ASSERT_TRUE(a_.send(1, 5, 0, tx).ok);
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 1u);
  EXPECT_EQ(done[0].bytes, 64u);
  EXPECT_EQ(done[0].env.source, 0);
  EXPECT_FALSE(done[0].was_unexpected);
  EXPECT_EQ(tx, user);
  EXPECT_GT(done[0].completion_ns, 0u);
}

TEST_F(EndpointTest, EagerUnexpectedStashedAndDrained) {
  const auto tx = pattern(100, 7);
  ASSERT_TRUE(a_.send(1, 9, 0, tx).ok);
  EXPECT_TRUE(b_.progress().empty()) << "no receive posted: unexpected";
  EXPECT_EQ(b_.unexpected_payloads(), 1u);

  std::vector<std::byte> user(100);
  const auto r = b_.post_receive({0, 9, 0}, user, 2);
  ASSERT_EQ(r.outcome, proto::Outcome::kCompleted);
  EXPECT_TRUE(r.completion.was_unexpected);
  EXPECT_EQ(r.completion.bytes, 100u);
  EXPECT_EQ(tx, user);
  EXPECT_EQ(b_.unexpected_payloads(), 0u);
}

TEST_F(EndpointTest, RendezvousExpectedReadsSenderBuffer) {
  std::vector<std::byte> user(4096);
  ASSERT_EQ(b_.post_receive({0, 3, 0}, user, 5).outcome,
            proto::Outcome::kPending);

  const auto tx = pattern(4096, 3);  // > eager_threshold -> rendezvous
  ASSERT_TRUE(a_.send(1, 3, 0, tx).ok);
  EXPECT_EQ(a_.counters().rendezvous_sends, 1u);
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].bytes, 4096u);
  EXPECT_EQ(tx, user);
  EXPECT_EQ(b_.counters().rdma_reads, 1u);
}

TEST_F(EndpointTest, RendezvousUnexpectedReadsOnLatePost) {
  const auto tx = pattern(2048, 4);
  ASSERT_TRUE(a_.send(1, 8, 0, tx).ok);
  EXPECT_TRUE(b_.progress().empty());
  EXPECT_EQ(b_.unexpected_payloads(), 0u)
      << "rendezvous stores no payload, only the RTS descriptor";

  std::vector<std::byte> user(2048);
  const auto r = b_.post_receive({0, 8, 0}, user, 6);
  ASSERT_EQ(r.outcome, proto::Outcome::kCompleted);
  EXPECT_EQ(tx, user);
  EXPECT_EQ(b_.counters().rdma_reads, 1u);
}

TEST_F(EndpointTest, BounceBuffersRecycled) {
  // Send more messages than bounce buffers exist, draining in between: the
  // staging window must never run dry.
  std::vector<std::byte> user(16);
  const auto tx = pattern(16);
  for (int round = 0; round < 100; ++round) {
    ASSERT_EQ(b_.post_receive({0, 1, 0}, user, static_cast<std::uint64_t>(round)).outcome,
              proto::Outcome::kPending);
    ASSERT_TRUE(a_.send(1, 1, 0, tx).ok) << "round " << round;
    ASSERT_EQ(b_.progress().size(), 1u);
  }
  EXPECT_EQ(b_.counters().messages_dropped, 0u);
}

TEST_F(EndpointTest, WildcardReceiveOverFabric) {
  std::vector<std::byte> user(32);
  b_.post_receive({kAnySource, kAnyTag, 0}, user, 9);
  const auto tx = pattern(32, 5);
  ASSERT_TRUE(a_.send(1, 77, 0, tx).ok);
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 9u);
  EXPECT_EQ(done[0].env.tag, 77);
  EXPECT_EQ(tx, user);
}

TEST_F(EndpointTest, ManyMessagesOneProgressBatch) {
  std::vector<std::vector<std::byte>> users(10, std::vector<std::byte>(8));
  for (int i = 0; i < 10; ++i)
    b_.post_receive({0, static_cast<Tag>(i), 0}, users[static_cast<std::size_t>(i)],
                    static_cast<std::uint64_t>(i));
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(a_.send(1, static_cast<Tag>(i), 0, pattern(8, i)).ok);
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(users[static_cast<std::size_t>(i)], pattern(8, i));
}

TEST_F(EndpointTest, MessageOrderingAcrossProgressCalls) {
  // C2 over the wire: two same-envelope sends must complete in send order.
  std::vector<std::byte> u1(8);
  std::vector<std::byte> u2(8);
  b_.post_receive({0, 4, 0}, u1, 100);
  b_.post_receive({0, 4, 0}, u2, 101);
  a_.send(1, 4, 0, pattern(8, 1));
  a_.send(1, 4, 0, pattern(8, 2));
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].cookie, 100u);
  EXPECT_EQ(done[1].cookie, 101u);
  EXPECT_EQ(u1, pattern(8, 1));
  EXPECT_EQ(u2, pattern(8, 2));
}

TEST_F(EndpointTest, FallbackWhenDescriptorTableFull) {
  std::vector<std::byte> user(8);
  for (std::size_t i = 0; i < match_cfg().max_receives; ++i)
    ASSERT_EQ(b_.post_receive({0, static_cast<Tag>(i), 0}, user, i).outcome,
              proto::Outcome::kPending);
  EXPECT_EQ(b_.post_receive({0, 9999, 0}, user, 1).outcome,
            proto::Outcome::kFallback);
}

TEST_F(EndpointTest, TruncatedDeliveryClampsToUserBuffer) {
  std::vector<std::byte> user(16);  // smaller than the payload
  b_.post_receive({0, 2, 0}, user, 3);
  ASSERT_TRUE(a_.send(1, 2, 0, pattern(64)).ok);
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].bytes, 16u);
  EXPECT_TRUE(std::equal(user.begin(), user.end(), pattern(64).begin()));
}

TEST_F(EndpointTest, RendezvousSendBufferReusableImmediately) {
  // MPI_Send buffer semantics: the caller's buffer may be destroyed or
  // reused as soon as send() returns, even for rendezvous (the endpoint
  // stages a copy for the remote read).
  std::vector<std::byte> user(2048);
  b_.post_receive({0, 6, 0}, user, 1);
  const auto expect = pattern(2048, 9);
  {
    auto tx = pattern(2048, 9);
    ASSERT_TRUE(a_.send(1, 6, 0, tx).ok);
    std::fill(tx.begin(), tx.end(), std::byte{0xFF});  // clobber immediately
  }
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(user, expect) << "read must hit the staged copy, not the clobbered buffer";
}

TEST_F(EndpointTest, RendezvousStagingReleasedAfterRead) {
  std::vector<std::byte> user(2048);
  b_.post_receive({0, 6, 0}, user, 1);
  ASSERT_TRUE(a_.send(1, 6, 0, pattern(2048)).ok);
  EXPECT_EQ(a_.pending_rendezvous(), 1u);
  b_.progress();
  EXPECT_EQ(a_.pending_rendezvous(), 0u)
      << "the FIN must free the sender's staged copy";
}

TEST_F(EndpointTest, UnreceivedRendezvousStaysStagedUntilTeardown) {
  ASSERT_TRUE(a_.send(1, 6, 0, pattern(2048)).ok);
  b_.progress();  // unexpected RTS; nobody posts the receive
  EXPECT_EQ(a_.pending_rendezvous(), 1u);
  // Endpoint destructors reclaim the staging; nothing to assert beyond
  // clean teardown (ASAN/valgrind would flag leaks of the registry).
}

class InlineRtsTest : public ::testing::Test {
 protected:
  InlineRtsTest()
      : a_(fabric_, 0, ep_cfg(), match_cfg(), DpaConfig{}),
        b_(fabric_, 1, ep_cfg(), match_cfg(), DpaConfig{}) {
    a_.connect(b_);
  }

  static EndpointConfig ep_cfg() {
    EndpointConfig c;
    c.eager_threshold = 256;
    c.bounce_count = 32;
    c.rts_inline_data = true;  // Sec. IV-B: RTS carries the first fragment
    return c;
  }

  static MatchConfig match_cfg() {
    MatchConfig c;
    c.bins = 32;
    c.block_size = 4;
    c.max_receives = 64;
    c.max_unexpected = 64;
    return c;
  }

  rdma::Fabric fabric_;
  Endpoint a_;
  Endpoint b_;
};

TEST_F(InlineRtsTest, ExpectedRendezvousDeliversInlinePlusRead) {
  std::vector<std::byte> user(2048);
  ASSERT_EQ(b_.post_receive({0, 3, 0}, user, 1).outcome,
            proto::Outcome::kPending);
  const auto tx = pattern(2048, 6);
  ASSERT_TRUE(a_.send(1, 3, 0, tx).ok);
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].bytes, 2048u);
  EXPECT_EQ(tx, user) << "inline fragment + RDMA-read remainder must join up";
  EXPECT_EQ(b_.counters().rdma_reads, 1u);
}

TEST_F(InlineRtsTest, UnexpectedRendezvousStashesInlineFragment) {
  const auto tx = pattern(1024, 8);
  ASSERT_TRUE(a_.send(1, 5, 0, tx).ok);
  EXPECT_TRUE(b_.progress().empty());
  EXPECT_EQ(b_.unexpected_payloads(), 1u)
      << "the inline RTS fragment is staged off the bounce buffer";

  std::vector<std::byte> user(1024);
  const auto r = b_.post_receive({0, 5, 0}, user, 2);
  ASSERT_EQ(r.outcome, proto::Outcome::kCompleted);
  EXPECT_EQ(tx, user);
  EXPECT_EQ(b_.unexpected_payloads(), 0u);
}

TEST_F(InlineRtsTest, TruncatedReceiveWithinInlineFragmentSkipsRead) {
  // User buffer smaller than the inline fragment: no RDMA read needed.
  std::vector<std::byte> user(100);
  b_.post_receive({0, 7, 0}, user, 3);
  const auto tx = pattern(4096, 2);
  ASSERT_TRUE(a_.send(1, 7, 0, tx).ok);
  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].bytes, 100u);
  EXPECT_TRUE(std::equal(user.begin(), user.end(), tx.begin()));
  EXPECT_EQ(b_.counters().rdma_reads, 0u);
}

// --- Merged-message wire format (docs/COALESCING.md) -------------------------

TEST(Wire, MergedSubHeaderRoundTrip) {
  MergedSubHeader sh;
  sh.tag = 77;
  sh.comm = 3;
  sh.payload_bytes = 48;
  sh.sender_seq = 12345;
  const auto hashes = InlineHashes::compute({4, 77, 3});
  sh.hash_src_tag = hashes.src_tag;
  sh.hash_src = hashes.src;
  sh.hash_tag = hashes.tag;

  std::vector<std::byte> buf(kMergedSubBytes);
  encode_sub_header(sh, buf);
  const MergedSubHeader d = decode_sub_header(buf);
  EXPECT_EQ(d.tag, 77);
  EXPECT_EQ(d.comm, 3u);
  EXPECT_EQ(d.payload_bytes, 48u);
  EXPECT_EQ(d.sender_seq, 12345u);
  EXPECT_EQ(d.hash_src_tag, hashes.src_tag);

  WireHeader carrier;
  carrier.source = 4;
  carrier.flags = kWireFlagMerged;
  const IncomingMessage m =
      sub_to_incoming(carrier, d, /*payload_offset=*/52, /*merged_sub=*/true,
                      /*bounce_handle=*/9, /*wire_seq=*/31);
  EXPECT_EQ(m.env, (Envelope{4, 77, 3}));
  EXPECT_EQ(m.hashes, hashes);
  EXPECT_TRUE(m.has_inline_hashes);
  EXPECT_EQ(m.payload_bytes, 48u);
  EXPECT_EQ(m.payload_offset, 52u);
  EXPECT_TRUE(m.merged_sub);
  EXPECT_EQ(m.bounce_handle, 9u);
  EXPECT_EQ(m.wire_seq, 31u);
}

TEST(Wire, CoalescingOffHeaderIsByteIdenticalToLegacyLayout) {
  // With the default single tag class every header carries channel_class 0 —
  // the exact bytes the field's predecessor (`reserved`) always held, so a
  // coalescing-off build emits wire bytes identical to the pre-channel
  // protocol. Pin that by assembling the legacy layout by hand.
  WireHeader h;
  h.source = 3;
  h.tag = 42;
  h.comm = 7;
  h.protocol = static_cast<std::uint8_t>(Protocol::kEager);
  h.payload_bytes = 64;
  h.inline_bytes = 64;
  h.sender_seq = 5;
  const auto hashes = InlineHashes::compute({3, 42, 7});
  h.hash_src_tag = hashes.src_tag;
  h.hash_src = hashes.src;
  h.hash_tag = hashes.tag;

  std::vector<std::byte> got(kHeaderBytes);
  encode_header(h, got);

  WireHeader legacy = h;
  legacy.channel_class = 0;  // the legacy reserved field was always zero
  std::vector<std::byte> want(kHeaderBytes);
  std::memcpy(want.data(), &legacy, sizeof(WireHeader));
  EXPECT_EQ(got, want);
}

// --- Coalescing endpoint behavior --------------------------------------------

class CoalescingTest : public ::testing::Test {
 protected:
  CoalescingTest()
      : a_(fabric_, 0, ep_cfg(), match_cfg(), DpaConfig{}),
        b_(fabric_, 1, ep_cfg(), match_cfg(), DpaConfig{}) {
    a_.connect(b_);
  }

  static EndpointConfig ep_cfg() {
    EndpointConfig c;
    // Body budget = eager_threshold: must fit max_messages sub-headers
    // (48 B each) plus payloads, or the byte trigger preempts the count
    // trigger these tests exercise.
    c.eager_threshold = 512;
    c.bounce_count = 32;
    c.coalescing.enabled = true;
    c.coalescing.max_messages = 4;
    c.coalescing.eligible_bytes = 64;
    return c;
  }

  static MatchConfig match_cfg() {
    MatchConfig c;
    c.bins = 32;
    c.block_size = 4;
    c.max_receives = 64;
    c.max_unexpected = 64;
    return c;
  }

  rdma::Fabric fabric_;
  Endpoint a_;
  Endpoint b_;
};

TEST_F(CoalescingTest, CountTriggerFlushesOneMergedPacket) {
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(16));
  for (std::uint64_t i = 0; i < 4; ++i)
    ASSERT_EQ(b_.post_receive({0, 5, 0}, bufs[i], i).outcome,
              Outcome::kPending);

  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 4; ++i) {
    sent.push_back(pattern(16, i + 1));
    const auto r = a_.send(1, 5, 0, sent.back());
    EXPECT_EQ(r.outcome, Outcome::kQueued);
    EXPECT_TRUE(r.ok);
  }
  // The 4th append hit max_messages: one merged packet left immediately.
  EXPECT_EQ(a_.counters().coalesced_sends, 4u);
  EXPECT_EQ(a_.counters().merged_packets, 1u);
  EXPECT_EQ(a_.counters().flushes_by_size, 1u);
  EXPECT_EQ(a_.coalesced_buffered(), 0u);

  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(done[i].cookie, i) << "sub-messages must complete in FIFO order";
    EXPECT_EQ(bufs[i], sent[i]);
  }
}

TEST_F(CoalescingTest, DoorbellFlushOnProgress) {
  std::vector<std::vector<std::byte>> bufs(3, std::vector<std::byte>(8));
  for (std::uint64_t i = 0; i < 3; ++i)
    b_.post_receive({0, 1, 0}, bufs[i], i);

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(a_.send(1, 1, 0, pattern(8, i)).ok);
  EXPECT_EQ(a_.coalesced_buffered(), 3u) << "below every flush trigger";
  EXPECT_EQ(a_.counters().merged_packets, 0u);

  a_.progress();  // the doorbell: progress() sweeps all channels
  EXPECT_EQ(a_.coalesced_buffered(), 0u);
  EXPECT_EQ(a_.counters().merged_packets, 1u);
  EXPECT_EQ(a_.counters().flushes_by_doorbell, 1u);
  EXPECT_EQ(b_.progress().size(), 3u);
}

TEST_F(CoalescingTest, DeadlineTriggerFlushesAgedBuffer) {
  EndpointConfig c = ep_cfg();
  c.coalescing.deadline_ns = 50;
  Endpoint a(fabric_, 2, c, match_cfg(), DpaConfig{});
  Endpoint b(fabric_, 3, c, match_cfg(), DpaConfig{});
  a.connect(b);

  ASSERT_TRUE(a.send(3, 1, 0, pattern(8, 1)).ok);
  a.advance_ns(a.now_ns() + 1000);  // age the buffered message past deadline
  ASSERT_TRUE(a.send(3, 1, 0, pattern(8, 2)).ok);
  EXPECT_EQ(a.counters().flushes_by_deadline, 1u)
      << "the aged batch must flush before the new append";
  EXPECT_EQ(a.coalesced_buffered(), 1u);
}

TEST_F(CoalescingTest, IneligibleSendFlushesBufferedFirstForFifo) {
  std::vector<std::byte> small_buf0(8), small_buf1(8), big_buf(200);
  b_.post_receive({0, 4, 0}, small_buf0, 0);
  b_.post_receive({0, 4, 0}, small_buf1, 1);
  b_.post_receive({0, 4, 0}, big_buf, 2);

  ASSERT_TRUE(a_.send(1, 4, 0, pattern(8, 1)).ok);
  ASSERT_TRUE(a_.send(1, 4, 0, pattern(8, 2)).ok);
  EXPECT_EQ(a_.coalesced_buffered(), 2u);
  // 200 B > eligible_bytes: goes out as a plain packet, but only after the
  // buffered sub-messages (same peer, same tag) reach the wire.
  ASSERT_TRUE(a_.send(1, 4, 0, pattern(200, 3)).ok);
  EXPECT_EQ(a_.coalesced_buffered(), 0u);
  EXPECT_EQ(a_.counters().flushes_by_order, 1u);

  const auto done = b_.progress();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].cookie, 0u);
  EXPECT_EQ(done[1].cookie, 1u);
  EXPECT_EQ(done[2].cookie, 2u) << "per-(peer,tag) FIFO across the flush";
}

TEST_F(CoalescingTest, SharedBounceBufferRecycledAfterLastSub) {
  const std::size_t before = b_.available_bounce_buffers();
  std::vector<std::vector<std::byte>> bufs(4, std::vector<std::byte>(16));
  for (std::uint64_t i = 0; i < 4; ++i)
    b_.post_receive({0, 5, 0}, bufs[i], i);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(a_.send(1, 5, 0, pattern(16, i)).ok);
  ASSERT_EQ(b_.progress().size(), 4u);
  EXPECT_EQ(b_.available_bounce_buffers(), before)
      << "the merged packet's shared bounce buffer must repost exactly once";
}

TEST_F(CoalescingTest, UnexpectedMergedSubsStashAndDrain) {
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(a_.send(1, 6, 0, pattern(32, i)).ok);
  EXPECT_TRUE(b_.progress().empty()) << "no receives posted";
  EXPECT_EQ(b_.unexpected_payloads(), 4u);

  for (std::uint64_t i = 0; i < 4; ++i) {
    std::vector<std::byte> user(32);
    const auto r = b_.post_receive({0, 6, 0}, user, i);
    ASSERT_EQ(r.outcome, Outcome::kCompleted);
    EXPECT_TRUE(r.completion.was_unexpected);
    EXPECT_EQ(user, pattern(32, static_cast<int>(i)))
        << "unexpected stash must copy from the sub-message's offset";
  }
  EXPECT_EQ(b_.unexpected_payloads(), 0u);
}

TEST_F(CoalescingTest, TagClassesSplitChannelsButKeepPerTagFifo) {
  EndpointConfig c = ep_cfg();
  c.coalescing.tag_classes = 2;
  Endpoint a(fabric_, 4, c, match_cfg(), DpaConfig{});
  Endpoint b(fabric_, 5, c, match_cfg(), DpaConfig{});
  a.connect(b);

  std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(8));
  for (std::uint64_t i = 0; i < 8; ++i)
    b.post_receive({4, static_cast<Tag>(i % 2), 0}, bufs[i], i);
  // Interleave two tag streams; each lands in its own channel.
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(a.send(5, static_cast<Tag>(i % 2), 0, pattern(8, i)).ok);
  a.progress();  // doorbell flush: one merged packet per channel
  EXPECT_EQ(a.counters().merged_packets, 2u);

  std::uint64_t last_even = 0, last_odd = 0;
  bool first_even = true, first_odd = true;
  for (const auto& done : b.progress()) {
    const std::uint64_t i = done.cookie;
    if (i % 2 == 0) {
      EXPECT_TRUE(first_even || i > last_even) << "tag-0 FIFO violated";
      last_even = i;
      first_even = false;
    } else {
      EXPECT_TRUE(first_odd || i > last_odd) << "tag-1 FIFO violated";
      last_odd = i;
      first_odd = false;
    }
  }
}

// --- StagedBuffer RAII --------------------------------------------------------

TEST(StagedBufferTest, RegistersOnConstructionAndUnregistersOnDestruction) {
  rdma::MemoryRegistry reg;
  std::uint32_t rkey = 0;
  {
    StagedBuffer s(reg, pattern(128));
    ASSERT_TRUE(s.valid());
    rkey = s.rkey();
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.resolve(rkey, 0, 128).size(), 128u);
    EXPECT_EQ(s.bytes().size(), 128u);
  }
  EXPECT_EQ(reg.size(), 0u) << "the destructor must deregister";
  // The registry recycles freed rkeys; re-registration getting the same key
  // back proves the slot really was released.
  std::vector<std::byte> other(8);
  EXPECT_EQ(reg.register_region(other), rkey);
}

TEST(StagedBufferTest, MoveTransfersOwnershipExactlyOnce) {
  rdma::MemoryRegistry reg;
  StagedBuffer s(reg, pattern(64));
  const std::uint32_t rkey = s.rkey();
  StagedBuffer t(std::move(s));
  EXPECT_FALSE(s.valid());
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.rkey(), rkey);
  EXPECT_EQ(reg.size(), 1u) << "a move must not double-register or release";
  EXPECT_EQ(reg.resolve(rkey, 0, 64).size(), 64u);  // span survived the move
  t.reset();
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
}  // namespace otm::proto
