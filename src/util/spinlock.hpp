// Per-bin spinlock (Sec. IV-E: each bin entry carries a 4-byte remove lock).
//
// Matching threads on an on-NIC accelerator are run-to-completion tasks with
// no blocking primitives, so contention is resolved by spinning. The lock is
// only taken on structural mutation (insert, unlink); searches are lock-free
// when lazy removal is enabled.
#pragma once

#include <atomic>

namespace otm {

class Spinlock {
 public:
  Spinlock() noexcept = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  void lock() noexcept {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        // spin
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard; std::lock_guard works too, this one adds try semantics.
class SpinGuard {
 public:
  explicit SpinGuard(Spinlock& l) noexcept : lock_(l) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace otm
