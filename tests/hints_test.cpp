// Tests for the Sec. VII communicator-hint extensions:
//   - assume_no_wildcards: single-index engine (posts with wildcards are
//     rejected, searches probe one index, unexpected messages are indexed
//     once) with unchanged ordering semantics.
//   - allow_overtaking: barrier-free racing matcher; pairing need not be
//     order-preserving but must remain a valid matching.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/list_matcher.hpp"
#include "core/engine.hpp"
#include "util/rng.hpp"

namespace otm {
namespace {

MatchConfig base_cfg() {
  MatchConfig c;
  c.bins = 16;
  c.block_size = 8;
  c.max_receives = 512;
  c.max_unexpected = 512;
  c.early_booking_check = false;
  return c;
}

// --- assume_no_wildcards ------------------------------------------------------

TEST(NoWildcardHint, WildcardPostRejected) {
  MatchConfig c = base_cfg();
  c.assume_no_wildcards = true;
  MatchEngine eng(c);
  EXPECT_DEATH(eng.post_receive({kAnySource, 1, 0}), "no-wildcard engine");
  EXPECT_DEATH(eng.post_receive({1, kAnyTag, 0}), "no-wildcard engine");
}

TEST(NoWildcardHint, SearchProbesSingleIndex) {
  MatchConfig c = base_cfg();
  c.assume_no_wildcards = true;
  MatchEngine eng(c);
  eng.post_receive({1, 2, 0});
  LockstepExecutor ex;
  const auto o = eng.process_one(IncomingMessage::make(1, 2, 0), ex);
  EXPECT_EQ(o.kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(eng.stats().index_searches, 1u)
      << "the three wildcard indexes must be skipped";
}

TEST(NoWildcardHint, ModeledSearchIsCheaper) {
  const CostTable costs = CostTable::dpa();
  auto run = [&](bool hint) {
    MatchConfig c = base_cfg();
    c.block_size = 1;
    c.assume_no_wildcards = hint;
    MatchEngine eng(c, &costs);
    LockstepExecutor ex;
    eng.post_receive({1, 2, 0});
    eng.process_one(IncomingMessage::make(1, 2, 0), ex);
    return eng.last_finish_cycles();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(NoWildcardHint, UnexpectedFlowStillWorks) {
  MatchConfig c = base_cfg();
  c.assume_no_wildcards = true;
  MatchEngine eng(c);
  LockstepExecutor ex;
  IncomingMessage m = IncomingMessage::make(4, 9, 0);
  m.wire_seq = 5;
  EXPECT_EQ(eng.process_one(m, ex).kind, ArrivalOutcome::Kind::kUnexpected);
  const auto p = eng.post_receive({4, 9, 0});
  ASSERT_EQ(p.kind, PostOutcome::Kind::kMatchedUnexpected);
  EXPECT_EQ(p.message.wire_seq, 5u);
  EXPECT_EQ(eng.unexpected().size(), 0u);
}

TEST(NoWildcardHint, OracleEquivalenceOnWildcardFreeStreams) {
  // The hint must not change semantics, only cost: same pairing as the
  // sequential reference for random wildcard-free streams with bursts.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    MatchConfig c = base_cfg();
    c.assume_no_wildcards = true;
    c.max_receives = 4096;
    c.max_unexpected = 4096;  // the stream can pile up unexpected messages
    MatchEngine eng(c);
    ListMatcher oracle;
    LockstepExecutor ex;
    Xoshiro256 rng(seed);
    std::uint64_t next_msg = 0;
    std::uint64_t next_recv = 0;
    std::vector<IncomingMessage> pending;

    auto flush = [&] {
      const auto outs = eng.process(pending, ex);
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const auto om = oracle.arrive(pending[i].env, pending[i].wire_seq);
        if (om.has_value()) {
          ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kMatched);
          ASSERT_EQ(outs[i].match.receive_cookie, *om);
        } else {
          ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kUnexpected);
        }
      }
      pending.clear();
    };

    for (int op = 0; op < 800; ++op) {
      const Rank src = static_cast<Rank>(rng.below(3));
      const Tag tag = static_cast<Tag>(rng.below(3));
      if (rng.chance(0.5)) {
        flush();
        const MatchSpec spec{src, tag, 0};
        const auto id = next_recv++;
        const auto ep = eng.post_receive(spec, 0, 0, id);
        const auto op_oracle = oracle.post(spec, id);
        if (op_oracle.has_value()) {
          ASSERT_EQ(ep.kind, PostOutcome::Kind::kMatchedUnexpected);
          ASSERT_EQ(ep.message.wire_seq, *op_oracle);
        } else {
          ASSERT_EQ(ep.kind, PostOutcome::Kind::kPending);
        }
      } else {
        const std::uint64_t burst = 1 + rng.below(4);
        for (std::uint64_t b = 0; b < burst; ++b) {
          IncomingMessage m = IncomingMessage::make(src, tag, 0);
          m.wire_seq = next_msg++;
          pending.push_back(m);
        }
        if (rng.chance(0.5)) flush();
      }
    }
    flush();
  }
}

// --- allow_overtaking -----------------------------------------------------------

TEST(AllowOvertaking, EveryMessageGetsAValidReceive) {
  MatchConfig c = base_cfg();
  c.allow_overtaking = true;
  MatchEngine eng(c);
  LockstepExecutor ex;
  // Mixed receives: exact and wildcard.
  std::map<std::uint64_t, MatchSpec> specs;
  std::uint64_t cookie = 0;
  for (Tag t = 0; t < 4; ++t) {
    specs[cookie] = {1, t, 0};
    eng.post_receive({1, t, 0}, 0, 0, cookie++);
  }
  specs[cookie] = {kAnySource, kAnyTag, 0};
  eng.post_receive({kAnySource, kAnyTag, 0}, 0, 0, cookie++);

  std::vector<IncomingMessage> msgs;
  for (Tag t = 0; t < 5; ++t)
    msgs.push_back(IncomingMessage::make(1, t % 4, 0));
  const auto outs = eng.process(msgs, ex);

  std::set<std::uint64_t> used;
  unsigned matched = 0;
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (outs[i].kind != ArrivalOutcome::Kind::kMatched) continue;
    ++matched;
    EXPECT_TRUE(used.insert(outs[i].match.receive_cookie).second)
        << "a receive was consumed twice";
    EXPECT_TRUE(specs.at(outs[i].match.receive_cookie).matches(msgs[i].env))
        << "matched a receive that does not accept the envelope";
  }
  EXPECT_EQ(matched, 5u);
}

TEST(AllowOvertaking, WildcardFreeStreamsMatchSameCount) {
  // Without wildcards the envelope classes partition the receives, so any
  // order-relaxed matcher pairs exactly as many messages as the ordered one.
  for (const std::uint64_t seed : {11u, 12u}) {
    MatchConfig c = base_cfg();
    c.allow_overtaking = true;
    c.max_receives = 4096;
    c.max_unexpected = 4096;
    MatchEngine eng(c);
    ListMatcher oracle;
    LockstepExecutor ex;
    Xoshiro256 rng(seed);
    std::uint64_t ids = 0;
    std::uint64_t oracle_matched = 0;
    std::vector<IncomingMessage> pending;

    auto flush = [&] {
      for (const auto& o : eng.process(pending, ex)) (void)o;
      for (const auto& m : pending)
        if (oracle.arrive(m.env, m.wire_seq).has_value()) ++oracle_matched;
      pending.clear();
    };
    for (int op = 0; op < 600; ++op) {
      const Rank src = static_cast<Rank>(rng.below(2));
      const Tag tag = static_cast<Tag>(rng.below(3));
      if (rng.chance(0.5)) {
        flush();
        const auto p = eng.post_receive({src, tag, 0}, 0, 0, ids);
        if (oracle.post({src, tag, 0}, ids).has_value()) {
          ASSERT_EQ(p.kind, PostOutcome::Kind::kMatchedUnexpected);
          ++oracle_matched;
        }
        ++ids;
      } else {
        IncomingMessage m = IncomingMessage::make(src, tag, 0);
        m.wire_seq = ids++;
        pending.push_back(m);
        if (rng.chance(0.5)) flush();
      }
    }
    flush();
    const auto& s = eng.stats();
    EXPECT_EQ(s.messages_matched + s.receives_matched_unexpected,
              oracle_matched);
  }
}

TEST(AllowOvertaking, ThreadedRaceStaysConsistent) {
  for (int round = 0; round < 20; ++round) {
    MatchConfig c = base_cfg();
    c.allow_overtaking = true;
    MatchEngine eng(c);
    ThreadedExecutor ex;
    for (unsigned i = 0; i < 8; ++i) eng.post_receive({1, 5, 0}, 0, 0, i);
    std::vector<IncomingMessage> msgs(8, IncomingMessage::make(1, 5, 0));
    const auto outs = eng.process(msgs, ex);
    std::set<std::uint64_t> used;
    for (const auto& o : outs) {
      ASSERT_EQ(o.kind, ArrivalOutcome::Kind::kMatched);
      EXPECT_TRUE(used.insert(o.match.receive_cookie).second);
    }
    EXPECT_EQ(used.size(), 8u);
  }
}

TEST(AllowOvertaking, ModeledTimeBeatsOrderedConflictResolution) {
  const CostTable costs = CostTable::dpa();
  auto run = [&](bool overtaking, bool fast_path) {
    MatchConfig c = base_cfg();
    c.block_size = 8;
    c.allow_overtaking = overtaking;
    c.enable_fast_path = fast_path;
    MatchEngine eng(c, &costs);
    LockstepExecutor ex;
    for (unsigned i = 0; i < 8; ++i) eng.post_receive({1, 5, 0});
    std::vector<IncomingMessage> msgs(8, IncomingMessage::make(1, 5, 0));
    eng.process(msgs, ex);
    return eng.last_finish_cycles();
  };
  const auto overtaking = run(true, true);
  const auto ordered_slow = run(false, false);
  EXPECT_LT(overtaking, ordered_slow)
      << "relaxed ordering must beat slow-path serialization";
}

}  // namespace
}  // namespace otm
