// MatchEngine: the complete offloaded matching flow of Fig. 1 built on the
// optimistic block matcher.
//
//   - post_receive(): check the unexpected-message store first (Fig. 1a);
//     otherwise index the receive into the posted-receive store.
//   - process(): consume a stream of incoming messages in blocks of N,
//     matching each block optimistically in parallel (Fig. 1b + Sec. III),
//     then insert the leftovers into the unexpected store in arrival order.
//
// Concurrency contract: post_receive() and process() must not overlap (the
// DPA dispatcher serializes command-QP posts against message blocks); the
// *inside* of process() is where the parallelism lives.
//
// One engine serves one communicator in the paper's architecture
// (Sec. IV-E); sharing one engine across communicators is functionally
// correct (the envelope carries the comm id) at the cost of extra collisions.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/block_matcher.hpp"
#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/receive_store.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "core/unexpected_store.hpp"

namespace otm {

/// Result of posting a receive.
struct PostOutcome {
  enum class Kind : std::uint8_t {
    kPending,            ///< indexed; waits for a matching message
    kMatchedUnexpected,  ///< immediately satisfied by a stored message
    kFallback,           ///< descriptor table full: use software matching
  };
  Kind kind = Kind::kPending;
  std::uint64_t cookie = 0;           ///< echo of the caller's request handle
  UnexpectedDescriptor message{};     ///< valid iff kMatchedUnexpected
};

/// Result of processing one incoming message.
struct ArrivalOutcome {
  enum class Kind : std::uint8_t {
    kMatched,     ///< paired with a posted receive
    kUnexpected,  ///< stored in the unexpected-message store
    kDropped,     ///< unexpected store full: software-fallback signal
  };
  Kind kind = Kind::kUnexpected;
  Envelope env{};
  ResolutionPath path = ResolutionPath::kOptimistic;
  bool conflicted = false;

  // Matched-receive info for the protocol-handling stage (Sec. IV-B).
  std::uint64_t receive_cookie = 0;
  std::uint64_t buffer_addr = 0;
  std::uint32_t buffer_capacity = 0;

  // Message-side protocol info.
  std::uint64_t wire_seq = 0;
  Protocol protocol = Protocol::kEager;
  std::uint32_t payload_bytes = 0;
  std::uint32_t inline_bytes = 0;
  std::uint64_t bounce_handle = 0;
  std::uint64_t remote_key = 0;
  std::uint64_t remote_addr = 0;

  /// Modeled completion time (cycles) when cost accounting is enabled.
  std::uint64_t finish_cycles = 0;
};

class MatchEngine {
 public:
  explicit MatchEngine(const MatchConfig& cfg, const CostTable* costs = nullptr);

  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  /// Fig. 1a: match against stored unexpected messages, else index.
  PostOutcome post_receive(const MatchSpec& spec, std::uint64_t buffer_addr = 0,
                           std::uint32_t buffer_capacity = 0,
                           std::uint64_t cookie = 0);

  /// MPI_Iprobe semantics over the arrived stream: non-destructively find
  /// the oldest stored unexpected message matching `spec`. The message
  /// stays queued; a subsequent matching post_receive() consumes it.
  struct ProbeResult {
    Envelope env{};
    std::uint32_t payload_bytes = 0;
    Protocol protocol = Protocol::kEager;
    std::uint64_t wire_seq = 0;
  };
  std::optional<ProbeResult> probe(const MatchSpec& spec);

  /// MPI_Cancel semantics: withdraw a pending posted receive identified by
  /// its cookie. Returns the cancelled receive's buffer_addr, or nullopt
  /// when no pending receive carries the cookie (it already matched, or
  /// never existed) — in MPI terms the cancel did not succeed.
  /// Engine-serialized like post_receive().
  std::optional<std::uint64_t> cancel_receive(std::uint64_t cookie);

  /// Fig. 1b / Sec. III: process `msgs` in arrival order, in blocks of at
  /// most cfg.block_size. `arrival_cycles`, when non-empty, gives each
  /// message's modeled dispatch time (parallel to `msgs`).
  std::vector<ArrivalOutcome> process(std::span<const IncomingMessage> msgs,
                                      BlockExecutor& executor,
                                      std::span<const std::uint64_t> arrival_cycles = {});

  /// Single message convenience (block of one).
  ArrivalOutcome process_one(const IncomingMessage& msg, BlockExecutor& executor);

  const MatchStats& stats() const noexcept { return stats_; }
  const MatchConfig& config() const noexcept { return cfg_; }
  ReceiveStore& receives() noexcept { return prq_; }
  const ReceiveStore& receives() const noexcept { return prq_; }
  UnexpectedStore& unexpected() noexcept { return umq_; }
  const UnexpectedStore& unexpected() const noexcept { return umq_; }

  /// Modeled time of the latest completed message (cycles).
  std::uint64_t last_finish_cycles() const noexcept { return last_finish_cycles_; }

 private:
  MatchConfig cfg_;
  const CostTable* costs_;
  ReceiveStore prq_;
  UnexpectedStore umq_;
  MatchStats stats_;
  std::uint32_t next_gen_ = 0;
  std::uint64_t last_finish_cycles_ = 0;
  ThreadClock umq_clock_;  ///< serialization point for ordered UMQ inserts
};

}  // namespace otm
