// Behavioral tests for the optimistic block matcher: conflict-free blocks,
// fast-path and slow-path conflict resolution, fast-path aborts, unexpected
// ordering, and equivalence across execution schedules.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"

namespace otm {
namespace {

MatchConfig config(unsigned block, bool fast_path = true) {
  MatchConfig c;
  c.bins = 16;
  c.block_size = block;
  c.max_receives = 128;
  c.max_unexpected = 128;
  c.enable_fast_path = fast_path;
  // Disabled here so the lockstep schedule exposes the conflict paths: with
  // the early booking check on, thread t+1 sees thread t's booking during
  // its own (lockstep-serialized) search and sidesteps the conflict
  // entirely. The check itself is covered by the store and oracle tests.
  c.early_booking_check = false;
  return c;
}

std::vector<IncomingMessage> same_messages(unsigned n, Rank src, Tag tag) {
  std::vector<IncomingMessage> v;
  for (unsigned i = 0; i < n; ++i) {
    auto m = IncomingMessage::make(src, tag, 0);
    m.wire_seq = i;
    v.push_back(m);
  }
  return v;
}

TEST(BlockMatcher, NoConflictAllOptimistic) {
  MatchEngine eng(config(4));
  for (Tag t = 0; t < 4; ++t)
    eng.post_receive({1, t, 0}, 0, 0, /*cookie=*/100 + static_cast<std::uint64_t>(t));

  std::vector<IncomingMessage> msgs;
  for (Tag t = 0; t < 4; ++t) msgs.push_back(IncomingMessage::make(1, t, 0));

  LockstepExecutor ex;
  const auto out = eng.process(msgs, ex);
  ASSERT_EQ(out.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].kind, ArrivalOutcome::Kind::kMatched);
    EXPECT_EQ(out[i].match.receive_cookie, 100u + i);
    EXPECT_EQ(out[i].match.path, ResolutionPath::kOptimistic);
    EXPECT_FALSE(out[i].match.conflicted);
  }
  EXPECT_EQ(eng.stats().conflicts_detected, 0u);
  EXPECT_EQ(eng.stats().fast_path_resolutions, 0u);
  EXPECT_EQ(eng.stats().slow_path_resolutions, 0u);
}

TEST(BlockMatcher, WithConflictFastPath) {
  // A compatible sequence long enough for the whole block: lockstep makes
  // every thread book the head, then all but thread 0 shift (WC-FP).
  constexpr unsigned kN = 4;
  MatchEngine eng(config(kN));
  for (unsigned i = 0; i < kN; ++i) eng.post_receive({1, 5, 0}, 0, 0, 200 + i);

  LockstepExecutor ex;
  const auto out = eng.process(same_messages(kN, 1, 5), ex);
  ASSERT_EQ(out.size(), kN);
  for (unsigned i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i].kind, ArrivalOutcome::Kind::kMatched);
    EXPECT_EQ(out[i].match.receive_cookie, 200u + i)
        << "message i must take the i-th receive of the sequence (C2)";
  }
  EXPECT_EQ(out[0].match.path, ResolutionPath::kOptimistic);
  for (unsigned i = 1; i < kN; ++i)
    EXPECT_EQ(out[i].match.path, ResolutionPath::kFastPath);
  EXPECT_EQ(eng.stats().conflicts_detected, kN - 1);
  EXPECT_EQ(eng.stats().fast_path_resolutions, kN - 1);
  EXPECT_EQ(eng.stats().slow_path_resolutions, 0u);
}

TEST(BlockMatcher, WithConflictSlowPath) {
  // Same workload with the fast path disabled: every loser re-searches.
  constexpr unsigned kN = 4;
  MatchEngine eng(config(kN, /*fast_path=*/false));
  for (unsigned i = 0; i < kN; ++i) eng.post_receive({1, 5, 0}, 0, 0, 300 + i);

  LockstepExecutor ex;
  const auto out = eng.process(same_messages(kN, 1, 5), ex);
  for (unsigned i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i].kind, ArrivalOutcome::Kind::kMatched);
    EXPECT_EQ(out[i].match.receive_cookie, 300u + i);
  }
  EXPECT_EQ(out[0].match.path, ResolutionPath::kOptimistic);
  for (unsigned i = 1; i < kN; ++i)
    EXPECT_EQ(out[i].match.path, ResolutionPath::kSlowPath);
  EXPECT_EQ(eng.stats().slow_path_resolutions, kN - 1);
  EXPECT_EQ(eng.stats().fast_path_resolutions, 0u);
}

TEST(BlockMatcher, FastPathAbortFallsBackToSlowPath) {
  // Sequence of 2 receives but a block of 4 identical messages: threads 2,3
  // walk off the end, abort, and resolve via the slow path (unexpected).
  constexpr unsigned kN = 4;
  MatchEngine eng(config(kN));
  eng.post_receive({1, 5, 0}, 0, 0, 400);
  eng.post_receive({1, 5, 0}, 0, 0, 401);

  LockstepExecutor ex;
  const auto out = eng.process(same_messages(kN, 1, 5), ex);
  EXPECT_EQ(out[0].kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(out[0].match.receive_cookie, 400u);
  EXPECT_EQ(out[1].kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(out[1].match.receive_cookie, 401u);
  EXPECT_EQ(out[2].kind, ArrivalOutcome::Kind::kUnexpected);
  EXPECT_EQ(out[3].kind, ArrivalOutcome::Kind::kUnexpected);
  EXPECT_EQ(eng.stats().fast_path_aborts, 2u);
}

TEST(BlockMatcher, BrokenSequenceRespectsInterposedWildcard) {
  // R0(1,5), ANY/ANY, R1(1,5): message block of 3 x (1,5).
  // Sequential semantics: msg0->R0, msg1->ANY (older than R1), msg2->R1.
  MatchEngine eng(config(3));
  eng.post_receive({1, 5, 0}, 0, 0, 500);
  eng.post_receive({kAnySource, kAnyTag, 0}, 0, 0, 501);
  eng.post_receive({1, 5, 0}, 0, 0, 502);

  LockstepExecutor ex;
  const auto out = eng.process(same_messages(3, 1, 5), ex);
  EXPECT_EQ(out[0].match.receive_cookie, 500u);
  EXPECT_EQ(out[1].match.receive_cookie, 501u)
      << "the interposed wildcard receive is older than the sequence mate";
  EXPECT_EQ(out[2].match.receive_cookie, 502u);
}

TEST(BlockMatcher, UnexpectedMessagesKeepArrivalOrder) {
  MatchEngine eng(config(4));
  std::vector<IncomingMessage> msgs = same_messages(4, 2, 9);
  LockstepExecutor ex;
  const auto out = eng.process(msgs, ex);
  for (const auto& o : out) EXPECT_EQ(o.kind, ArrivalOutcome::Kind::kUnexpected);

  // Posting receives now must drain the UMQ in wire order (C2).
  for (unsigned i = 0; i < 4; ++i) {
    const auto p = eng.post_receive({2, 9, 0});
    ASSERT_EQ(p.kind, PostOutcome::Kind::kMatchedUnexpected);
    EXPECT_EQ(p.message.wire_seq, i);
  }
}

TEST(BlockMatcher, MixedMatchAndUnexpectedInOneBlock) {
  MatchEngine eng(config(4));
  eng.post_receive({1, 0, 0}, 0, 0, 600);
  eng.post_receive({1, 2, 0}, 0, 0, 602);

  std::vector<IncomingMessage> msgs;
  for (Tag t = 0; t < 4; ++t) {
    auto m = IncomingMessage::make(1, t, 0);
    m.wire_seq = static_cast<std::uint64_t>(t);
    msgs.push_back(m);
  }
  LockstepExecutor ex;
  const auto out = eng.process(msgs, ex);
  EXPECT_EQ(out[0].kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(out[1].kind, ArrivalOutcome::Kind::kUnexpected);
  EXPECT_EQ(out[2].kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(out[3].kind, ArrivalOutcome::Kind::kUnexpected);
}

TEST(BlockMatcher, PartialLastBlock) {
  // 6 messages with block size 4: a full block then a block of 2.
  MatchEngine eng(config(4));
  for (unsigned i = 0; i < 6; ++i) eng.post_receive({1, 5, 0}, 0, 0, 700 + i);
  LockstepExecutor ex;
  const auto out = eng.process(same_messages(6, 1, 5), ex);
  ASSERT_EQ(out.size(), 6u);
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(out[i].kind, ArrivalOutcome::Kind::kMatched);
    EXPECT_EQ(out[i].match.receive_cookie, 700u + i);
  }
  EXPECT_EQ(eng.stats().blocks_processed, 2u);
}

TEST(BlockMatcher, BlockOfOneNeverConflicts) {
  MatchEngine eng(config(1));
  eng.post_receive({1, 5, 0}, 0, 0, 800);
  LockstepExecutor ex;
  const auto out = eng.process(same_messages(1, 1, 5), ex);
  EXPECT_EQ(out[0].kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(eng.stats().conflicts_detected, 0u);
}

// The three execution schedules must produce identical pairings for the
// conflict-heavy workload (different paths are allowed, outcomes are not).
class ExecutorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorEquivalence, SameKeyBurst) {
  constexpr unsigned kN = 8;
  auto run = [&](BlockExecutor& ex) {
    MatchEngine eng(config(kN));
    for (unsigned i = 0; i < kN + 4; ++i) eng.post_receive({1, 5, 0}, 0, 0, i);
    std::vector<std::uint64_t> cookies;
    for (const auto& o : eng.process(same_messages(kN, 1, 5), ex))
      cookies.push_back(o.kind == ArrivalOutcome::Kind::kMatched
                            ? o.match.receive_cookie
                            : ~std::uint64_t{0});
    return cookies;
  };
  LockstepExecutor lockstep;
  SequentialExecutor sequential;
  ThreadedExecutor threaded;
  const auto a = run(lockstep);
  const auto b = run(sequential);
  ASSERT_EQ(a, b);
  for (int round = 0; round < GetParam(); ++round) {
    const auto c = run(threaded);
    EXPECT_EQ(a, c) << "threaded schedule diverged in round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, ExecutorEquivalence, ::testing::Values(10));

TEST(BlockMatcher, ModeledSlowPathCostsMoreThanFastPath) {
  constexpr unsigned kN = 8;
  const CostTable costs = CostTable::dpa();
  auto run = [&](bool fast) {
    MatchConfig c = config(kN, fast);
    MatchEngine eng(c, &costs);
    for (unsigned i = 0; i < kN; ++i) eng.post_receive({1, 5, 0}, 0, 0, i);
    LockstepExecutor ex;
    eng.process(same_messages(kN, 1, 5), ex);
    return eng.last_finish_cycles();
  };
  const auto fast_cycles = run(true);
  const auto slow_cycles = run(false);
  EXPECT_LT(fast_cycles, slow_cycles)
      << "slow-path serialization must dominate the modeled clock";
}

TEST(BlockMatcher, ModeledConflictFreeIsCheapest) {
  constexpr unsigned kN = 8;
  const CostTable costs = CostTable::dpa();
  // No-conflict: distinct tags.
  MatchEngine nc(config(kN), &costs);
  std::vector<IncomingMessage> msgs;
  for (unsigned i = 0; i < kN; ++i) {
    nc.post_receive({1, static_cast<Tag>(i), 0}, 0, 0, i);
    msgs.push_back(IncomingMessage::make(1, static_cast<Tag>(i), 0));
  }
  LockstepExecutor ex;
  nc.process(msgs, ex);

  MatchEngine wc(config(kN), &costs);
  for (unsigned i = 0; i < kN; ++i) wc.post_receive({1, 5, 0}, 0, 0, i);
  wc.process(same_messages(kN, 1, 5), ex);

  EXPECT_LT(nc.last_finish_cycles(), wc.last_finish_cycles());
}

}  // namespace
}  // namespace otm
