file(REMOVE_RECURSE
  "CMakeFiles/otm_util.dir/args.cpp.o"
  "CMakeFiles/otm_util.dir/args.cpp.o.d"
  "CMakeFiles/otm_util.dir/table_writer.cpp.o"
  "CMakeFiles/otm_util.dir/table_writer.cpp.o.d"
  "libotm_util.a"
  "libotm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
