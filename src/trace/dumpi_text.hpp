// DUMPI text-trace reader and writer (Sec. V-A: "currently, only a DUMPI
// text-traces reader is implemented").
//
// The format mirrors sst-dumpi's dumpi2ascii output: one block per MPI
// call, bracketed by "entering at walltime" / "returning at walltime" lines
// with one "key=value" parameter per line, e.g.
//
//   MPI_Isend entering at walltime 0.1000010, cputime 0.0000010 seconds in thread 0.
//   int count=128
//   MPI_Datatype datatype=1 (MPI_BYTE)
//   int dest=3
//   int tag=42
//   MPI_Comm comm=0 (MPI_COMM_WORLD)
//   MPI_Request request=[5]
//   MPI_Isend returning at walltime 0.1000020, cputime 0.0000020 seconds in thread 0.
//
// A trace directory holds one text file per rank (dumpi-<app>-<rank>.txt)
// plus a .meta file with the rank count — the layout sst-dumpi produces.
//
// Counts are emitted with MPI_BYTE, so `count` equals payload bytes; for
// waitall/alltoall-style calls `count` carries the request/participant
// count instead (stored in TraceOp::bytes either way).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/ops.hpp"

namespace otm::trace {

/// Serialize one rank's operations in dumpi2ascii text form.
void write_dumpi_text(const RankTrace& trace, std::ostream& os);

/// Parse one rank's dumpi2ascii text. Unknown MPI calls and parameters are
/// skipped; malformed blocks throw std::runtime_error.
RankTrace parse_dumpi_text(std::istream& is, Rank rank);

/// Write a full trace as a DUMPI directory: dumpi-<app>-<rank>.txt files
/// plus dumpi-<app>.meta. Returns the meta-file path.
std::string write_trace_dir(const Trace& trace, const std::string& dir);

/// Load a trace from a DUMPI directory written by write_trace_dir (or any
/// sst-dumpi-shaped directory with a compatible meta file).
Trace load_trace_dir(const std::string& meta_path);

}  // namespace otm::trace
