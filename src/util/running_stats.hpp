// Streaming statistics accumulators used by the trace analyzer and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace otm {

/// Welford-style running mean/min/max/stddev over a stream of samples.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& o) noexcept {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    mean_ = (n1 * mean_ + n2 * o.mean_) / (n1 + n2);
    m2_ += o.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sparse integer histogram (e.g. queue-depth distribution, tag usage).
class Histogram {
 public:
  void add(std::int64_t bucket, std::uint64_t n = 1) { counts_[bucket] += n; }

  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const auto& [k, v] : counts_) t += v;
    return t;
  }

  std::uint64_t at(std::int64_t bucket) const noexcept {
    const auto it = counts_.find(bucket);
    return it == counts_.end() ? 0 : it->second;
  }

  std::int64_t max_bucket() const noexcept {
    return counts_.empty() ? 0 : counts_.rbegin()->first;
  }

  double mean() const noexcept {
    const std::uint64_t t = total();
    if (t == 0) return 0.0;
    double s = 0.0;
    for (const auto& [k, v] : counts_)
      s += static_cast<double>(k) * static_cast<double>(v);
    return s / static_cast<double>(t);
  }

  /// Value at quantile q in [0,1], by cumulative count.
  std::int64_t quantile(double q) const noexcept {
    const std::uint64_t t = total();
    if (t == 0) return 0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(t));
    std::uint64_t cum = 0;
    for (const auto& [k, v] : counts_) {
      cum += v;
      if (cum > target) return k;
    }
    return counts_.rbegin()->first;
  }

  const std::map<std::int64_t, std::uint64_t>& buckets() const noexcept {
    return counts_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
};

}  // namespace otm
