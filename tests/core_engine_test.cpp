// Engine-level tests: the Fig. 1 post/arrive flows, unexpected handling,
// software-fallback signaling, and statistics bookkeeping.
#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace otm {
namespace {

MatchConfig tiny() {
  MatchConfig c;
  c.bins = 8;
  c.block_size = 4;
  c.max_receives = 16;
  c.max_unexpected = 8;
  return c;
}

TEST(Engine, PostThenArriveMatches) {
  MatchEngine eng(tiny());
  const auto p = eng.post_receive({1, 2, 0}, 0xBEEF, 64, 42);
  EXPECT_EQ(p.kind, PostOutcome::Kind::kPending);

  LockstepExecutor ex;
  const auto o = eng.process_one(IncomingMessage::make(1, 2, 0, 16), ex);
  EXPECT_EQ(o.kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(o.match.receive_cookie, 42u);
  EXPECT_EQ(o.match.buffer_addr, 0xBEEFu);
  EXPECT_EQ(o.match.buffer_capacity, 64u);
  EXPECT_EQ(o.proto.payload_bytes, 16u);
}

TEST(Engine, ArriveThenPostMatchesUnexpected) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  IncomingMessage m = IncomingMessage::make(1, 2, 0, 32);
  m.wire_seq = 77;
  const auto o = eng.process_one(m, ex);
  EXPECT_EQ(o.kind, ArrivalOutcome::Kind::kUnexpected);

  const auto p = eng.post_receive({1, 2, 0});
  ASSERT_EQ(p.kind, PostOutcome::Kind::kMatchedUnexpected);
  EXPECT_EQ(p.message.wire_seq, 77u);
  EXPECT_EQ(p.message.payload_bytes, 32u);
  EXPECT_EQ(eng.unexpected().size(), 0u) << "matched message must be removed";
}

TEST(Engine, WildcardPostDrainsUnexpected) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.process_one(IncomingMessage::make(3, 9, 0), ex);
  const auto p = eng.post_receive({kAnySource, kAnyTag, 0});
  EXPECT_EQ(p.kind, PostOutcome::Kind::kMatchedUnexpected);
}

TEST(Engine, ReceiveTableFullSignalsFallback) {
  MatchEngine eng(tiny());
  for (std::size_t i = 0; i < tiny().max_receives; ++i)
    EXPECT_EQ(eng.post_receive({1, static_cast<Tag>(i), 0}).kind,
              PostOutcome::Kind::kPending);
  EXPECT_EQ(eng.post_receive({1, 999, 0}).kind, PostOutcome::Kind::kFallback);
  EXPECT_EQ(eng.stats().post_fallbacks, 1u);
}

TEST(Engine, UnexpectedTableFullDropsWithSignal) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  std::vector<IncomingMessage> msgs;
  for (std::size_t i = 0; i <= tiny().max_unexpected; ++i)
    msgs.push_back(IncomingMessage::make(1, static_cast<Tag>(i), 0));
  const auto out = eng.process(msgs, ex);
  unsigned dropped = 0;
  for (const auto& o : out)
    if (o.kind == ArrivalOutcome::Kind::kDropped) ++dropped;
  EXPECT_EQ(dropped, 1u);
}

TEST(Engine, SlotReuseAfterMatchAllowsMoreReceives) {
  // Post/arrive cycles far beyond table capacity must not exhaust it.
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  for (int round = 0; round < 100; ++round) {
    const auto p = eng.post_receive({1, 1, 0}, 0, 0, static_cast<std::uint64_t>(round));
    ASSERT_EQ(p.kind, PostOutcome::Kind::kPending) << "round " << round;
    const auto o = eng.process_one(IncomingMessage::make(1, 1, 0), ex);
    ASSERT_EQ(o.kind, ArrivalOutcome::Kind::kMatched);
    ASSERT_EQ(o.match.receive_cookie, static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(eng.stats().messages_matched, 100u);
}

TEST(Engine, EagerRemovalModeAlsoReusesSlots) {
  MatchConfig c = tiny();
  c.lazy_removal = false;
  MatchEngine eng(c);
  LockstepExecutor ex;
  for (int round = 0; round < 50; ++round) {
    ASSERT_EQ(eng.post_receive({1, 1, 0}).kind, PostOutcome::Kind::kPending);
    ASSERT_EQ(eng.process_one(IncomingMessage::make(1, 1, 0), ex).kind,
              ArrivalOutcome::Kind::kMatched);
  }
  EXPECT_EQ(eng.stats().eager_removals, 50u);
  EXPECT_EQ(eng.receives().live_descriptors(), 0u);
}

TEST(Engine, StatsAddUp) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 1, 0});
  eng.post_receive({1, 2, 0});
  std::vector<IncomingMessage> msgs = {IncomingMessage::make(1, 1, 0),
                                       IncomingMessage::make(1, 2, 0),
                                       IncomingMessage::make(1, 3, 0)};
  eng.process(msgs, ex);
  const auto& s = eng.stats();
  EXPECT_EQ(s.receives_posted, 2u);
  EXPECT_EQ(s.messages_processed, 3u);
  EXPECT_EQ(s.messages_matched, 2u);
  EXPECT_EQ(s.messages_unexpected, 1u);
  EXPECT_EQ(s.blocks_processed, 1u);
}

TEST(Engine, MultiCommunicatorIsolation) {
  // One engine serving two communicators: envelopes must never cross.
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({1, 1, /*comm=*/0}, 0, 0, 10);
  eng.post_receive({1, 1, /*comm=*/1}, 0, 0, 11);
  const auto o1 = eng.process_one(IncomingMessage::make(1, 1, 1), ex);
  EXPECT_EQ(o1.match.receive_cookie, 11u);
  const auto o0 = eng.process_one(IncomingMessage::make(1, 1, 0), ex);
  EXPECT_EQ(o0.match.receive_cookie, 10u);
}

TEST(Engine, ArrivalCyclesOffsetModeledClocks) {
  const CostTable costs = CostTable::dpa();
  MatchConfig c = tiny();
  MatchEngine eng(c, &costs);
  eng.post_receive({1, 1, 0});
  LockstepExecutor ex;
  const std::vector<IncomingMessage> msgs = {IncomingMessage::make(1, 1, 0)};
  const std::vector<std::uint64_t> starts = {5000};
  const auto out = eng.process(msgs, ex, starts);
  EXPECT_GT(out[0].timing.finish_cycles, 5000u);
}

TEST(Engine, RendezvousFieldsFlowThroughMatch) {
  MatchEngine eng(tiny());
  LockstepExecutor ex;
  eng.post_receive({4, 4, 0}, 0x2000, 4096, 1);
  IncomingMessage m = IncomingMessage::make(4, 4, 0, 4096);
  m.protocol = Protocol::kRendezvous;
  m.remote_key = 0x77;
  m.remote_addr = 0x9000;
  const auto o = eng.process_one(m, ex);
  ASSERT_EQ(o.kind, ArrivalOutcome::Kind::kMatched);
  EXPECT_EQ(o.proto.protocol, Protocol::kRendezvous);
  EXPECT_EQ(o.proto.remote_key, 0x77u);
  EXPECT_EQ(o.proto.remote_addr, 0x9000u);
  EXPECT_EQ(o.match.buffer_addr, 0x2000u);
}

}  // namespace
}  // namespace otm
