// otmlint-fixture: src/core/fixture.cpp
// R5 bad twin: raw bit fiddling on a booking word bypasses the
// generation-check protocol inside BookingBitmap (constraint C2).
#include <atomic>
#include <cstdint>

namespace otm {

struct FakeBooking {
  std::atomic<std::uint64_t> word{0};
  std::uint64_t fetch_or(std::uint64_t m, std::memory_order o) {
    return word.fetch_or(m, o);  // relaxed: fixture scaffolding only
  }
};

void raw_book(FakeBooking& booking, unsigned tid) {
  booking.fetch_or(1u << tid, std::memory_order_acq_rel);
}

}  // namespace otm
