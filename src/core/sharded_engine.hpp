// Multi-engine sharding (docs/SHARDING.md): a ShardedEngine owns K
// MatchEngine instances keyed by source-rank range (power-of-two mask
// routing, MatchConfig::shards) so message blocks from distinct sources can
// be matched by independent engines — the path past the single ingress
// serializer the paper's prototype dispatches through.
//
// Constraint preservation:
//   C1 (oldest posted receive wins): every receive is stamped from ONE
//     monotonic cross-shard label allocator at post time, so "oldest" stays
//     a single integer compare no matter which shard holds the candidate.
//   C2 (non-overtaking): routing is by source, so each (source, comm)
//     stream lands in exactly one shard in arrival order; unexpected
//     messages carry a global arrival stamp so post-time UMQ arbitration
//     across shards picks the true oldest.
//
// Wildcard-source receives must be visible to every shard: they are
// replicated into all K ANY_SOURCE indexes with the SAME label and a shared
// claim word. A shard that matches a replica registers its message's global
// sequence on the claim word (min-CAS). After the block's matching phase:
//   - uncontested claims (single registrant): the winner keeps the match,
//     sibling replicas are retired — consumed without a message, then
//     reaped by the paper's lazy-removal machinery ("losers treat the entry
//     as lazily-removed");
//   - any contested claim (two shards matched replicas of one receive in
//     the same block): the tentative block is rolled back on every shard
//     and re-matched serially in global arrival order — the deterministic
//     ground truth the oracle tests compare against.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/steering.hpp"
#include "util/thread_annotations.hpp"

namespace otm {

/// The single C1 authority of a sharded engine: every posting label comes
/// from here (otmlint R4 extends the label-allocator monopoly to this
/// class). Atomic so the TSan fuzz suite can hammer it from K shard
/// threads; in production the posting path is engine-serialized and the
/// atomicity is belt-and-braces.
class CrossShardLabelAllocator {
 public:
  // otmlint: hot
  std::uint64_t allocate() noexcept {
    // relaxed: uniqueness/monotonicity need only atomicity — the label is
    // published with the descriptor's release store in
    // ReceiveStore::post_labeled(), which is what searchers acquire.
    return next_label_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Next label to be handed out (test/metrics accessor).
  std::uint64_t peek() const noexcept {
    // relaxed: monitoring read; no ordering required.
    return next_label_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> next_label_{0};
};

/// Claim words + replica bookkeeping for wildcard-source receives. One
/// record per replicated logical receive; the word arbitrates
/// matched-at-most-once across shards.
class ClaimTable {
 public:
  static constexpr std::uint64_t kUnclaimed = ~std::uint64_t{0};

  struct Record {
    /// Per-shard descriptor slot of this receive's replica.
    std::array<std::uint32_t, kMaxShards> replica_slot{};
    std::uint64_t cookie = 0;
    std::uint64_t label = 0;
    bool live = false;
  };

  explicit ClaimTable(std::size_t capacity);

  ClaimTable(const ClaimTable&) = delete;
  ClaimTable& operator=(const ClaimTable&) = delete;

  /// Engine-serialized (posting path). Returns kInvalidSlot when full.
  std::uint32_t allocate(std::uint64_t cookie, std::uint64_t label);
  /// Engine-serialized; resets the claim word back to kUnclaimed.
  void release(std::uint32_t idx);

  Record& record(std::uint32_t idx) noexcept { return records_[idx]; }
  const Record& record(std::uint32_t idx) const noexcept {
    return records_[idx];
  }

  /// Register `seq` (a global message sequence) on claim `idx`: keeps the
  /// minimum registered seq and raises the shared contested flag when any
  /// other registration is observed. Safe from concurrent shard threads.
  // otmlint: hot
  void try_claim(std::uint32_t idx, std::uint64_t seq) noexcept;

  /// Current claim word (kUnclaimed or the minimum registered seq).
  std::uint64_t claim_word(std::uint32_t idx) const noexcept {
    // acquire: pairs with try_claim's release CAS so the arbitration pass
    // reading the word also observes the registrant's prior matching state.
    return words_[idx].load(std::memory_order_acquire);
  }

  /// Reset one claim word to kUnclaimed (block repair / win cleanup).
  void reset_claim(std::uint32_t idx) noexcept {
    // relaxed: runs engine-serialized between blocks.
    words_[idx].store(kUnclaimed, std::memory_order_relaxed);
  }

  bool contested() const noexcept {
    // acquire: pairs with the release store in try_claim.
    return contested_.load(std::memory_order_acquire);
  }
  void clear_contested() noexcept {
    // relaxed: runs engine-serialized between blocks.
    contested_.store(false, std::memory_order_relaxed);
  }

  /// Oldest live claim whose record carries `cookie` (cancel path).
  std::optional<std::uint32_t> find_by_cookie(std::uint64_t cookie) const;

  std::size_t capacity() const noexcept { return records_.size(); }
  std::size_t live_claims() const noexcept { return live_; }

 private:
  std::vector<std::atomic<std::uint64_t>> words_;
  std::vector<Record> records_;
  std::vector<std::uint32_t> free_list_;
  std::atomic<bool> contested_{false};
  std::size_t live_ = 0;
};

/// K MatchEngines behind the MatchEngine-shaped API. With cfg.shards == 1
/// every call delegates verbatim to the single engine (bit-identical
/// behavior and modeled timing); with K > 1 the sharded post/claim/commit
/// protocol above runs.
class ShardedEngine {
 public:
  explicit ShardedEngine(const MatchConfig& cfg,
                         const CostTable* costs = nullptr);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// K == 1: delegates with `prefix` unchanged. K > 1: each shard registers
  /// under "<prefix>.shard<k>" and the sharding counters under
  /// "<prefix>.sharded.*".
  void attach_observability(obs::Observability* obs,
                            std::string_view prefix = "match");

  /// Fig. 1a across shards: arbitrate the oldest unexpected candidate over
  /// every shard that can hold one, else stamp a label and index (into the
  /// home shard, or all shards + claim for wildcard-source specs).
  PostOutcome post_receive(const MatchSpec& spec, std::uint64_t buffer_addr = 0,
                           std::uint32_t buffer_capacity = 0,
                           std::uint64_t cookie = 0);

  std::optional<ProbeResult> probe(const MatchSpec& spec);

  /// Cookies of replicated receives must be unique among live receives
  /// (the endpoint's request indexes are); a replicated cancel withdraws
  /// every replica and frees the claim.
  std::optional<std::uint64_t> cancel_receive(std::uint64_t cookie);

  /// Withdraw every pending receive across all shards, appending one entry
  /// per *logical* receive (wildcard replicas deduped by label) to `out` in
  /// posting-label order — the DPA watchdog's demotion eviction. Claims of
  /// replicated receives are released through the regular cancel path.
  std::size_t drain_pending(std::vector<MatchEngine::DrainedReceive>& out);

  /// Remove every stored unexpected message across all shards, appending
  /// the descriptors to `out` in global arrival-stamp order (C2).
  std::size_t drain_unexpected(std::vector<UnexpectedDescriptor>& out);

  /// Lane-local demotion eviction (docs/RELIABILITY.md §"Per-lane
  /// demotion"): withdraw shard `k`'s pending receives and stored
  /// unexpected messages only. Wildcard-source receives replicated into
  /// shard `k` are withdrawn *globally* (every replica canceled, claim
  /// released) — a wildcard must be matchable against any source, so once
  /// its lane-k replica leaves the DPA the whole logical receive migrates
  /// to the host domain. Sibling shards' source-specific state stays put.
  /// Returns the number of logical receives withdrawn.
  std::size_t drain_shard(unsigned k,
                          std::vector<MatchEngine::DrainedReceive>& receives,
                          std::vector<UnexpectedDescriptor>& ums);

  /// Fig. 1b: global blocks of cfg.block_size, partitioned by source shard
  /// (order-preserving), matched per shard, claim-arbitrated, committed —
  /// or rolled back and re-matched serially on a contested claim.
  /// `executor` drives each shard's sub-block and must be stateless (the
  /// stock executors are); with set_threaded(true) shards run concurrently.
  std::vector<ArrivalOutcome> process(
      std::span<const IncomingMessage> msgs, BlockExecutor& executor,
      std::span<const std::uint64_t> arrival_cycles = {});

  ArrivalOutcome process_one(const IncomingMessage& msg,
                             BlockExecutor& executor);

  /// Run each shard's matching phase on its own std::thread. Outcomes are
  /// schedule-independent (the claim protocol repairs every cross-shard
  /// race deterministically); off by default so modeled runs stay cheap.
  void set_threaded(bool on) noexcept { threaded_ = on; }

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }
  /// Shard routing delegates to the shared RSS steering hash so the matcher
  /// and the ingress lanes (proto::Endpoint) can never disagree on where a
  /// source's traffic lands.
  unsigned shard_of(Rank source) const noexcept {
    return steer_lane(source, shard_mask_);
  }
  MatchEngine& shard(unsigned k) noexcept { return *shards_[k]; }
  const MatchEngine& shard(unsigned k) const noexcept { return *shards_[k]; }
  const MatchConfig& config() const noexcept { return cfg_; }

  /// Summed per-shard counters. A replicated receive posts once per shard,
  /// so receives_posted counts it K times; the matching K-1
  /// cross_shard_retired (or cancels) balance the depth arithmetic.
  MatchStats stats() const;

  /// Logical pending receives: per-shard posted counts minus the extra
  /// K-1 replicas of each live replicated receive.
  std::size_t posted_count() const;
  std::size_t unexpected_total() const;
  std::uint64_t last_finish_cycles() const;

  struct ShardingStats {
    std::uint64_t replicated_posts = 0;  ///< wildcard-source posts fanned out
    std::uint64_t claims_won = 0;        ///< uncontested replica matches
    std::uint64_t claims_contested = 0;  ///< claim words seen contested
    std::uint64_t block_repairs = 0;     ///< blocks rolled back + re-matched
  };
  ShardingStats sharding_stats() const {
    SerialSection s(ingress_);
    return sstats_;
  }

  const ClaimTable& claims() const noexcept { return claims_; }
  CrossShardLabelAllocator& label_allocator() noexcept { return labels_; }

  /// Posting-label watermark: how many labels this engine has handed out
  /// (constraint C1's allocation counter). The single-shard fast path posts
  /// through the shard's own ReceiveStore and bypasses the cross-shard
  /// allocator, so the watermark reads from whichever source is live. The
  /// verification oracles check it is non-decreasing and advances exactly
  /// once per accepted post (docs/VERIFICATION.md).
  std::uint64_t labels_allocated() const noexcept;

 private:
  struct Registration {
    std::uint32_t claim_idx = kInvalidSlot;
    unsigned tid = 0;
  };

  /// Per-shard partition scratch, reused across blocks.
  struct ShardScratch {
    std::vector<IncomingMessage> msgs;
    std::vector<std::uint64_t> starts;
    std::vector<std::uint64_t> stamps;      ///< global arrival stamps
    std::vector<std::uint32_t> global_pos;  ///< index into the global block
    std::vector<Registration> regs;
    std::vector<ArrivalOutcome> out;
    BlockMatcher* armed = nullptr;
  };

  void process_block(std::span<const IncomingMessage> block,
                     std::span<const std::uint64_t> starts,
                     BlockExecutor& executor,
                     std::span<ArrivalOutcome> out) OTM_REQUIRES(ingress_);
  /// Retire the sibling replicas of a won claim and free it.
  void win_claim(std::uint32_t claim_idx, unsigned winner_shard)
      OTM_REQUIRES(ingress_);
  /// Scan one executed shard matcher for replica matches and register them.
  void register_claims(unsigned s) noexcept;
  void publish_sharded_metrics() noexcept OTM_REQUIRES(ingress_);

  MatchConfig cfg_;
  std::uint32_t shard_mask_ = 0;
  std::vector<std::unique_ptr<MatchEngine>> shards_;

  /// Serialization domain of the sharded orchestration (same contract as
  /// MatchEngine::ingress_: posts never overlap process()).
  SerialDomain ingress_;

  CrossShardLabelAllocator labels_;
  ClaimTable claims_;
  std::uint64_t global_arrival_ OTM_GUARDED_BY(ingress_) = 0;
  std::vector<ShardScratch> scratch_ OTM_GUARDED_BY(ingress_);
  std::vector<ArrivalOutcome> repair_out_ OTM_GUARDED_BY(ingress_);
  ShardingStats sstats_ OTM_GUARDED_BY(ingress_);
  bool threaded_ = false;

  obs::Observability* obs_ = nullptr;
  obs::Counter* mh_replicated_posts_ = nullptr;
  obs::Counter* mh_claims_won_ = nullptr;
  obs::Counter* mh_claims_contested_ = nullptr;
  obs::Counter* mh_block_repairs_ = nullptr;
};

}  // namespace otm
