// Figure 8 — single-process message rate for the different configurations:
// optimistic tag matching on the DPA (no-conflict NC, with-conflict fast
// path WC-FP, with-conflict slow path WC-SP), MPI tag matching on the CPU
// (MPI-CPU) and message exchange using RDMA on the CPU (RDMA-CPU).
//
// Methodology (Sec. VI): ping-pong sequences of k=100 small messages,
// 500 repetitions, 1024 in-flight receives, hash tables twice that size,
// 32 DPA threads. Rates are modeled (see DESIGN.md §6): the matching logic
// runs for real, the clock is the calibrated cost model.
//
// Shape checks: RDMA-CPU >= MPI-CPU ~ Optimistic-NC > WC-FP > WC-SP, and
// host matching cycles are zero for every offloaded configuration.
//
// Observability: --trace-out=f.json / --metrics-out=f.json record the
// offloaded scenarios (per-endpoint counters, matcher events, depth
// series) under "<scenario>." prefixes.
//
// Harness: --json=f.json writes the schema-versioned per-scenario results
// (see bench_json.hpp); --smoke pins a tiny repetition count for the
// tier-1 perf-smoke tests and always exits 0 (the shape checks still
// print but only gate the full-length run). --wall additionally records
// real-clock rates for the small-message storm scenarios as "walltime"
// entries (docs/COALESCING.md).
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench_json.hpp"
#include "obs/observability.hpp"
#include "pingpong_common.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool wall = args.get_bool("wall", false);
  const std::string json_out = args.get("json", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  std::unique_ptr<obs::Observability> obs;
  if (!trace_out.empty() || !metrics_out.empty())
    obs = std::make_unique<obs::Observability>(obs::ObsConfig::enabled());

  PingPongConfig base;
  base.obs = obs.get();
  base.messages_per_seq =
      static_cast<unsigned>(args.get_int("k", base.messages_per_seq));
  base.repetitions = static_cast<unsigned>(
      args.get_int("reps", smoke ? 10 : static_cast<int>(base.repetitions)));
  base.payload_bytes =
      static_cast<std::uint32_t>(args.get_int("bytes", base.payload_bytes));
  // Deterministic lockstep replay needs the early booking check off for the
  // WC scenarios to exhibit the paper's conflict behavior (the check would
  // otherwise observe serialized bookings and dodge every conflict).
  base.match.early_booking_check = false;

  // Optional fault injection for the offloaded scenarios only: the host
  // baselines model a reliable transport (raw post_send with no retransmit
  // layer), so faults would only abort them. The DPA endpoints auto-enable
  // the reliable-delivery sublayer when the fabric injects faults, and the
  // measured rate then includes retransmission/backoff latency.
  rdma::FaultConfig fault;
  fault.drop_probability = args.get_double("fault-drop", 0.0);
  fault.duplicate_probability = args.get_double("fault-dup", 0.0);
  fault.corrupt_probability = args.get_double("fault-corrupt", 0.0);
  fault.reorder_probability = args.get_double("fault-reorder", 0.0);
  fault.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 42));
  fault.enabled = args.get_bool("faults", false) ||
                  fault.drop_probability > 0.0 ||
                  fault.duplicate_probability > 0.0 ||
                  fault.corrupt_probability > 0.0 ||
                  fault.reorder_probability > 0.0;

  std::printf("Figure 8: single-process message rate (k=%u msgs/seq, %u reps, "
              "%uB payloads, %zu in-flight receives, %u DPA threads)\n\n",
              base.messages_per_seq, base.repetitions, base.payload_bytes,
              base.match.max_receives, base.match.block_size);
  if (fault.enabled)
    std::printf("fault injection ON for offloaded scenarios (seed=%llu, "
                "drop=%.3f dup=%.3f corrupt=%.3f reorder=%.3f); offloaded "
                "rates include retransmission latency\n\n",
                static_cast<unsigned long long>(fault.seed),
                fault.drop_probability, fault.duplicate_probability,
                fault.corrupt_probability, fault.reorder_probability);

  TableWriter table({"configuration", "message rate", "Mmsg/s", "seq time (us)",
                     "host match cycles/msg", "conflicts/seq", "resolution"});

  const double per_msg =
      static_cast<double>(base.messages_per_seq) * base.repetitions;

  struct Row {
    const char* name;
    const char* json_name;
    PingPongResult r;
    /// Messages per sequence for this row; 0 = the shared base.messages_per_seq
    /// (the storm rows run kStormMessages instead of --k).
    unsigned k = 0;
    /// Bench-specific metrics forwarded to ScenarioRecord.extra (the lane
    /// rows upload per-lane CQE/doorbell counts).
    std::vector<std::pair<std::string, double>> extra;
  };
  std::vector<Row> rows;

  {
    PingPongConfig cfg = base;  // NC: distinct source/tag per receive
    cfg.with_conflict = false;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "nc.";
    rows.push_back({"Optimistic-DPA NC", "optimistic_nc", run_optimistic_dpa(cfg)});
  }
  {
    PingPongConfig cfg = base;  // WC-FP: same source/tag, fast path on
    cfg.with_conflict = true;
    cfg.match.enable_fast_path = true;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "wc_fp.";
    rows.push_back(
        {"Optimistic-DPA WC-FP", "optimistic_wc_fp", run_optimistic_dpa(cfg)});
  }
  {
    PingPongConfig cfg = base;  // WC-SP: same source/tag, fast path off
    cfg.with_conflict = true;
    cfg.match.enable_fast_path = false;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "wc_sp.";
    rows.push_back(
        {"Optimistic-DPA WC-SP", "optimistic_wc_sp", run_optimistic_dpa(cfg)});
  }
  {
    PingPongConfig cfg = base;
    cfg.with_conflict = false;
    rows.push_back({"MPI-CPU", "mpi_cpu", run_mpi_cpu(cfg)});
  }
  {
    PingPongConfig cfg = base;
    cfg.with_conflict = false;
    rows.push_back({"RDMA-CPU (no matching)", "rdma_cpu", run_rdma_cpu(cfg)});
  }

  // Sharded incast (docs/SHARDING.md): 4 senders stream at one receiver
  // whose engine is split into --shards source-routed engines (default: the
  // {1,2,4} sweep). s=1 is the paper's single-serializer DPA on the same
  // traffic; the s=4/s=1 ratio is the modeled sharding win.
  const int shards_arg = args.get_int("shards", 0);
  std::vector<unsigned> shard_counts = {1, 2, 4};
  if (shards_arg > 0) shard_counts = {static_cast<unsigned>(shards_arg)};
  double incast_s1 = 0.0, incast_s4 = 0.0;
  std::deque<std::string> shard_names;  // stable storage for Row pointers
  for (const unsigned s : shard_counts) {
    PingPongConfig cfg = base;
    cfg.with_conflict = false;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "incast_s" + std::to_string(s) + ".";
    const std::string& name =
        shard_names.emplace_back("Sharded incast s=" + std::to_string(s));
    const std::string& json_name =
        shard_names.emplace_back("sharded_incast_s" + std::to_string(s));
    const PingPongResult r = run_sharded_incast(cfg, s);
    if (s == 1) incast_s1 = r.msg_rate;
    if (s == 4) incast_s4 = r.msg_rate;
    rows.push_back({name.c_str(), json_name.c_str(), r});
  }

  // Multi-lane ingress incast (docs/SHARDING.md, "Ingress lanes"): the same
  // 4-sender incast, but with the receiver's ingress path itself split into
  // lanes == shards QP/CQ pairs so each engine shard drains a private CQ.
  // Pinned to k=400 (--lanes-k) instead of the paper's k=100: the ack
  // round-trip is a fixed serial cost, and only a longer sequence leaves
  // enough parallel matching work for the 4-lane fan-out to show its >= 3x
  // headline. lanes=1 runs today's single-lane code byte-identically. Each
  // row uploads per-lane CQE/doorbell counts as scenario extras, and --wall
  // adds real-clock twins next to the modeled rates.
  const unsigned lanes_k =
      static_cast<unsigned>(args.get_int("lanes-k", 400));
  double incast_l1 = 0.0, incast_l4 = 0.0;
  std::vector<Row> lane_walls;  // "walltime" kind in JSON, like the storms
  for (const unsigned n : {1u, 2u, 4u}) {
    PingPongConfig cfg = base;
    cfg.with_conflict = false;
    cfg.messages_per_seq = lanes_k;
    cfg.fabric.fault = fault;
    cfg.obs_prefix = "incast_lanes" + std::to_string(n) + ".";
    const std::string stem = "sharded_incast_lanes" + std::to_string(n);
    const std::string& name = shard_names.emplace_back(
        "Sharded incast lanes=" + std::to_string(n));
    const std::string& json_name = shard_names.emplace_back(stem);
    const PingPongResult r = run_sharded_incast(cfg, /*shards=*/n, /*lanes=*/n);
    if (n == 1) incast_l1 = r.msg_rate;
    if (n == 4) incast_l4 = r.msg_rate;
    Row row{name.c_str(), json_name.c_str(), r, lanes_k, {}};
    for (unsigned l = 0; l < r.lane_cqes.size(); ++l) {
      const std::string lane = "lane" + std::to_string(l);
      row.extra.emplace_back(lane + ".cqes",
                             static_cast<double>(r.lane_cqes[l]));
      row.extra.emplace_back(lane + ".doorbells",
                             static_cast<double>(r.lane_doorbells[l]));
    }
    rows.push_back(std::move(row));
    if (wall) {
      const std::string& wall_name =
          shard_names.emplace_back(name + " (wall)");
      const std::string& wall_json = shard_names.emplace_back(stem + "_wall");
      PingPongResult wr = r;  // same run, real-clock rate
      const double msgs = static_cast<double>(lanes_k) * cfg.repetitions;
      wr.msg_rate = msgs * 1e9 / r.wall_ns;
      wr.avg_seq_ns = r.wall_ns / cfg.repetitions;
      wr.seq_ns.assign(1, wr.avg_seq_ns);
      lane_walls.push_back(
          {wall_name.c_str(), wall_json.c_str(), wr, lanes_k, {}});
    }
  }

  // Small-message storm (docs/COALESCING.md): one sender streams
  // kStormMessages tiny eager messages, with and without merged-message
  // coalescing. The coalesced/baseline rate ratio at 8 B is the headline
  // number the perf gate holds (>= 3x, full runs only).
  double storm_8_base = 0.0, storm_8_coal = 0.0;
  std::deque<std::string> storm_names;
  std::vector<Row> storm_walls;  // separate rows: "walltime" kind in JSON
  for (const std::uint32_t bytes : {8u, 64u}) {
    for (const bool coalesced : {false, true}) {
      PingPongConfig cfg = base;
      cfg.payload_bytes = bytes;
      cfg.fabric.fault = fault;
      const std::string stem = "storm_" + std::to_string(bytes) + "B_" +
                               (coalesced ? "coalesced" : "baseline");
      cfg.obs_prefix = stem + ".";
      const std::string& name = storm_names.emplace_back(
          "Storm " + std::to_string(bytes) + "B " +
          (coalesced ? "coalesced" : "baseline"));
      const std::string& json_name = storm_names.emplace_back(stem);
      const PingPongResult r = run_small_storm(cfg, coalesced);
      if (bytes == 8 && !coalesced) storm_8_base = r.msg_rate;
      if (bytes == 8 && coalesced) storm_8_coal = r.msg_rate;
      rows.push_back({name.c_str(), json_name.c_str(), r, kStormMessages});
      if (wall) {
        const std::string& wall_name =
            storm_names.emplace_back(name + " (wall)");
        const std::string& wall_json = storm_names.emplace_back(stem + "_wall");
        PingPongResult wr = r;  // same run, real-clock rate
        const double msgs = static_cast<double>(kStormMessages) *
                            cfg.repetitions;
        wr.msg_rate = msgs * 1e9 / r.wall_ns;
        wr.avg_seq_ns = r.wall_ns / cfg.repetitions;
        wr.seq_ns.assign(1, wr.avg_seq_ns);
        storm_walls.push_back(
            {wall_name.c_str(), wall_json.c_str(), wr, kStormMessages});
      }
    }
  }

  for (const Row& row : rows) {
    const PingPongResult& r = row.r;
    const double row_per_msg =
        row.k != 0 ? static_cast<double>(row.k) * base.repetitions : per_msg;
    std::string resolution = "-";
    if (r.fast_path + r.slow_path > 0)
      resolution = r.fast_path >= r.slow_path ? "fast path" : "slow path";
    table.row()
        .cell(row.name)
        .cell(fmt_rate(r.msg_rate))
        .cell(r.msg_rate / 1e6, 2)
        .cell(r.avg_seq_ns / 1e3, 2)
        .cell(static_cast<double>(r.host_match_cycles) / row_per_msg, 1)
        .cell(static_cast<double>(r.conflicts) / base.repetitions, 1)
        .cell(resolution);
  }
  table.print(std::cout);
  if (wall) {
    std::printf("\nwall-clock storm rates (kind \"walltime\", +/-35%% gate "
                "band):\n");
    for (const Row& row : storm_walls)
      std::printf("  %-28s %s (%.2f ns/msg real)\n", row.name,
                  fmt_rate(row.r.msg_rate).c_str(),
                  row.r.avg_seq_ns / kStormMessages);
    std::printf("\nwall-clock lane-incast rates (kind \"walltime\", +/-35%% "
                "gate band):\n");
    for (const Row& row : lane_walls)
      std::printf("  %-28s %s (%.2f ns/msg real)\n", row.name,
                  fmt_rate(row.r.msg_rate).c_str(),
                  row.r.avg_seq_ns / lanes_k);
  }

  if (obs != nullptr) {
    const auto report = [](const std::ofstream& os, const char* what,
                           const std::string& file) {
      std::fprintf(stderr, os.good() ? "%s written to %s\n"
                                     : "error: cannot write %s to %s\n",
                   what, file.c_str());
    };
    if (!trace_out.empty()) {
      std::ofstream os(trace_out);
      obs->write_trace_json(os);
      report(os, "trace", trace_out);
    }
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      obs->write_metrics_json(os);
      report(os, "metrics", metrics_out);
    }
  }

  if (!json_out.empty()) {
    BenchJsonDoc doc;
    doc.bench = "fig8_message_rate";
    doc.smoke = smoke;
    doc.config = {
        {"k", static_cast<double>(base.messages_per_seq)},
        {"reps", static_cast<double>(base.repetitions)},
        {"payload_bytes", static_cast<double>(base.payload_bytes)},
        {"block_size", static_cast<double>(base.match.block_size)},
        {"bins", static_cast<double>(base.match.bins)},
        {"max_receives", static_cast<double>(base.match.max_receives)},
        {"faults", fault.enabled ? 1.0 : 0.0},
        {"fault_seed", static_cast<double>(fault.seed)},
    };
    const auto record = [&](const Row& row, const char* kind) {
      const double row_k = static_cast<double>(
          row.k != 0 ? row.k : base.messages_per_seq);
      ScenarioRecord s;
      s.name = row.json_name;
      s.kind = kind;
      s.msgs_per_sec = row.r.msg_rate;
      s.ns_per_msg = row.r.avg_seq_ns / row_k;
      s.p50_seq_ns = percentile(row.r.seq_ns, 50.0);
      s.p99_seq_ns = percentile(row.r.seq_ns, 99.0);
      s.host_match_cycles_per_msg =
          static_cast<double>(row.r.host_match_cycles) /
          (row_k * base.repetitions);
      s.conflicts_per_seq =
          static_cast<double>(row.r.conflicts) / base.repetitions;
      s.extra = row.extra;
      doc.scenarios.push_back(std::move(s));
    };
    for (const Row& row : rows) record(row, "modeled");
    for (const Row& row : storm_walls) record(row, "walltime");
    for (const Row& row : lane_walls) record(row, "walltime");
    if (!write_bench_json(json_out, doc)) {
      std::fprintf(stderr, "error: cannot write json to %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "json written to %s\n", json_out.c_str());
  }

  // Shape verification against the paper's figure.
  const double nc = rows[0].r.msg_rate;
  const double wc_fp = rows[1].r.msg_rate;
  const double wc_sp = rows[2].r.msg_rate;
  const double mpi_cpu = rows[3].r.msg_rate;
  const double rdma_cpu = rows[4].r.msg_rate;
  const bool order_ok = rdma_cpu >= mpi_cpu && nc > wc_fp && wc_fp > wc_sp;
  // Retransmission latency only taxes the offloaded scenarios (the host
  // baselines run on a clean fabric), so the cross-family comparison is
  // meaningless under injected faults.
  const bool comparable =
      fault.enabled || (nc > 0.5 * mpi_cpu && nc < 2.0 * mpi_cpu);
  const bool offloaded = rows[0].r.host_match_cycles == 0 &&
                         rows[1].r.host_match_cycles == 0 &&
                         rows[2].r.host_match_cycles == 0;
  std::printf("\nshape: RDMA-CPU >= MPI-CPU, NC > WC-FP > WC-SP ........ %s\n",
              order_ok ? "OK" : "VIOLATED");
  std::printf("shape: Optimistic-NC comparable to MPI-CPU (0.5x-2x) ... %s "
              "(ratio %.2f)\n",
              comparable ? "OK" : "VIOLATED", nc / mpi_cpu);
  std::printf("shape: offload frees the host CPU (0 match cycles) ..... %s\n",
              offloaded ? "OK" : "VIOLATED");
  // The sharded check only applies when the {1,4} pair actually ran (the
  // default sweep, or no --shards narrowing). Under injected faults
  // retransmission latency dominates the incast, so — like the comparable
  // check above — the speedup band is informational only.
  bool sharding_ok = true;
  if (incast_s1 > 0.0 && incast_s4 > 0.0) {
    sharding_ok = fault.enabled || incast_s4 >= 1.5 * incast_s1;
    std::printf("shape: sharded incast s=4 >= 1.5x s=1 .................. %s "
                "(ratio %.2f)\n",
                sharding_ok ? "OK" : "VIOLATED", incast_s4 / incast_s1);
  }
  // Multi-lane headline (docs/SHARDING.md, "Ingress lanes"): splitting the
  // ingress path too — not just the matcher — must lift the 4-shard incast
  // past the shared-lane serialization ceiling. Informational under faults,
  // like the other cross-config bands.
  bool lanes_ok = true;
  if (incast_l1 > 0.0 && incast_l4 > 0.0) {
    lanes_ok = fault.enabled || incast_l4 >= 3.0 * incast_l1;
    std::printf("shape: incast 4 lanes/shards >= 3x single-lane ......... %s "
                "(ratio %.2f)\n",
                lanes_ok ? "OK" : "VIOLATED", incast_l4 / incast_l1);
  }
  // Coalescing headline (docs/COALESCING.md): merged packets must buy at
  // least 3x the message rate on the 8 B storm. Like the other cross-family
  // bands, retransmission latency under injected faults makes the ratio
  // informational only.
  bool storm_ok = true;
  if (storm_8_base > 0.0 && storm_8_coal > 0.0) {
    storm_ok = fault.enabled || storm_8_coal >= 3.0 * storm_8_base;
    std::printf("shape: 8B storm coalesced >= 3x baseline ............... %s "
                "(ratio %.2f)\n",
                storm_ok ? "OK" : "VIOLATED", storm_8_coal / storm_8_base);
  }
  // Smoke runs are too short for the shape band to be meaningful; they
  // gate only on "ran to completion and wrote valid output".
  if (smoke) return 0;
  return (order_ok && comparable && offloaded && sharding_ok && lanes_ok &&
          storm_ok)
             ? 0
             : 1;
}
