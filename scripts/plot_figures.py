#!/usr/bin/env python3
"""Render the paper's figures from otm-analyzer output (artifact-A2 style).

Usage:
    tools/otm-tracegen --out=traces
    tools/otm-analyzer --traces=traces --bins=1,32,128 --out=analysis
    scripts/plot_figures.py analysis/summary.csv --out figures/

Requires: matplotlib (pandas optional). The analyzer emits plain CSV, so
the script parses it with the standard library and only needs matplotlib
for rendering — mirroring the paper artifact's plotting step.
"""

import argparse
import csv
import os
import sys
from collections import defaultdict


def load_summary(path):
    rows = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            rows.append(
                {
                    "app": row["app"],
                    "ranks": int(row["ranks"]),
                    "bins": int(row["bins"]),
                    "avg": float(row["avg_queue_depth"]),
                    "max": int(row["max_queue_depth"]),
                    "pct_p2p": float(row["pct_p2p"]),
                    "pct_coll": float(row["pct_collective"]),
                }
            )
    return rows


def plot_fig6(rows, outdir, plt):
    """Stacked call-distribution bars (Figure 6)."""
    per_app = {}
    for r in rows:
        per_app[r["app"]] = (r["pct_p2p"], r["pct_coll"])
    apps = sorted(per_app)
    p2p = [per_app[a][0] for a in apps]
    coll = [per_app[a][1] for a in apps]

    fig, ax = plt.subplots(figsize=(10, 4))
    ax.bar(apps, p2p, label="point-to-point")
    ax.bar(apps, coll, bottom=p2p, label="collective")
    ax.set_ylabel("% of classified MPI calls")
    ax.set_title("Figure 6: distribution of MPI calls for the application set")
    ax.legend()
    plt.xticks(rotation=45, ha="right")
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig6_call_distribution.png"), dpi=150)
    plt.close(fig)


def plot_fig7(rows, outdir, plt):
    """Queue depth per app and bin count (Figure 7)."""
    by_app = defaultdict(dict)
    for r in rows:
        by_app[r["app"]][r["bins"]] = r["avg"]
    bins = sorted({r["bins"] for r in rows})
    # Order apps by descending 1-bin depth, as the paper does.
    apps = sorted(by_app, key=lambda a: -by_app[a].get(bins[0], 0.0))

    fig, ax = plt.subplots(figsize=(10, 4))
    width = 0.8 / len(bins)
    for i, b in enumerate(bins):
        xs = [j + i * width for j in range(len(apps))]
        ax.bar(xs, [by_app[a].get(b, 0.0) for a in apps], width,
               label=f"{b} bin{'s' if b > 1 else ''}")
    avg = {b: sum(by_app[a].get(b, 0.0) for a in apps) / len(apps) for b in bins}
    for i, b in enumerate(bins):
        ax.axhline(avg[b], linestyle="--", linewidth=0.8, color=f"C{i}")
    ax.set_xticks([j + 0.4 for j in range(len(apps))])
    ax.set_xticklabels(apps, rotation=45, ha="right")
    ax.set_ylabel("avg queue depth")
    ax.set_title("Figure 7: queue depth per application "
                 "(dashed lines: cross-app averages)")
    ax.legend()
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig7_queue_depth.png"), dpi=150)
    plt.close(fig)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("summary", help="analysis/summary.csv from otm-analyzer")
    ap.add_argument("--out", default="figures", help="output directory")
    args = ap.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    rows = load_summary(args.summary)
    if not rows:
        sys.exit(f"no rows in {args.summary}")
    os.makedirs(args.out, exist_ok=True)
    plot_fig6(rows, args.out, plt)
    plot_fig7(rows, args.out, plt)
    print(f"wrote fig6/fig7 PNGs to {args.out}/")


if __name__ == "__main__":
    main()
