#!/usr/bin/env python3
"""Run the clang static analyzer over the repo's own sources.

Drives `clang++ --analyze` from compile_commands.json (so every TU is
analyzed with its real flags), in parallel, and filters the diagnostics
through scripts/analyzer_suppressions.txt. Stdlib-only on purpose: the
lint gate must run on a bare toolchain image.

Suppression file format: one entry per line, `#` comments allowed.
An entry matches a diagnostic when it is a substring of the
"path:line: warning: message [checker]" string — suppress whole checkers
("[deadcode.DeadStores]"), whole files ("src/trace/"), or one specific
diagnostic ("endpoint.cpp:123"). Keep entries narrow and justified.

Usage:
  scripts/clang_analyze.py --compile-commands build-lint/compile_commands.json
  scripts/clang_analyze.py --ccdb ... --jobs 4 --filter src/proto

Exit status: 0 clean (or analyzer unavailable: prints a skip notice),
1 unsuppressed diagnostics, 2 usage/environment error.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

# Diagnostic lines look like:  path:line:col: warning: message [checker]
DIAG_RE = re.compile(r"^(?P<path>[^:\n]+):(?P<line>\d+):\d+:\s+warning:")


def find_analyzer():
    """The clang++ that will run --analyze, or None."""
    for cand in (os.environ.get("OTM_ANALYZER_CXX"), "clang++"):
        if cand and shutil.which(cand):
            return cand
    return None


def load_suppressions(path):
    if not os.path.exists(path):
        return []
    out = []
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if line and not line.startswith("#"):
                out.append(line)
    return out


def load_ccdb(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def analyze_args(entry):
    """compile_commands entry -> argv for --analyze (no -c/-o, keep flags)."""
    argv = entry.get("arguments") or shlex.split(entry["command"])
    out = []
    skip = False
    for a in argv[1:]:
        if skip:
            skip = False
            continue
        if a == "-o":
            skip = True
            continue
        if a == "-c" or a.endswith(".o"):
            continue
        out.append(a)
    return out


def run_one(analyzer, entry, root):
    args = [analyzer, "--analyze",
            "--analyzer-output", "text",
            # The core + security + deadcode packages; unix/osx checkers add
            # noise for a simulator that never does raw syscalls.
            "-Xclang", "-analyzer-checker=core,deadcode,cplusplus,security",
            *analyze_args(entry)]
    r = subprocess.run(args, capture_output=True, text=True,
                       cwd=entry.get("directory", root), timeout=600)
    diags = []
    for line in (r.stdout + r.stderr).splitlines():
        if DIAG_RE.match(line):
            diags.append(line)
    # returncode != 0 without diagnostics means the TU did not even parse
    # (wrong flags for this clang); surface that as its own failure.
    broken = r.returncode != 0 and not diags
    return entry["file"], diags, broken, r.stderr if broken else ""


def main(argv):
    ap = argparse.ArgumentParser(prog="clang_analyze.py", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--compile-commands", "--ccdb", dest="ccdb",
                    default="build-lint/compile_commands.json")
    ap.add_argument("--suppressions",
                    default="scripts/analyzer_suppressions.txt")
    ap.add_argument("--filter", default="src/",
                    help="only analyze TUs whose path contains this "
                         "(default: src/)")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    analyzer = find_analyzer()
    if analyzer is None:
        print("clang_analyze: clang++ not found; skipping "
              "(CI lint job runs the analyzer)")
        return 0
    if not os.path.exists(args.ccdb):
        print(f"clang_analyze: no {args.ccdb} (configure with "
              f"CMAKE_EXPORT_COMPILE_COMMANDS=ON first)", file=sys.stderr)
        return 2

    root = os.getcwd()
    entries = [e for e in load_ccdb(args.ccdb) if args.filter in e["file"]]
    if not entries:
        print(f"clang_analyze: no TUs match '{args.filter}' in {args.ccdb}",
              file=sys.stderr)
        return 2
    suppressions = load_suppressions(args.suppressions)

    kept, suppressed, broken_tus = [], 0, []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, analyzer, e, root) for e in entries]
        for fut in concurrent.futures.as_completed(futures):
            tu, diags, broken, err = fut.result()
            if broken:
                broken_tus.append((tu, err.strip().splitlines()[:3]))
                continue
            for d in diags:
                if any(s in d for s in suppressions):
                    suppressed += 1
                    if args.verbose:
                        print(f"suppressed: {d}")
                else:
                    kept.append(d)

    for d in sorted(kept):
        print(d)
    for tu, err in broken_tus:
        print(f"clang_analyze: {tu}: analyzer run failed:", file=sys.stderr)
        for line in err:
            print(f"  {line}", file=sys.stderr)
    print(f"clang_analyze: {len(entries)} TUs, {len(kept)} diagnostics "
          f"({suppressed} suppressed)")
    if broken_tus:
        return 2
    return 0 if not kept else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
