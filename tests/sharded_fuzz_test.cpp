// Sharded concurrency fuzzing (docs/SHARDING.md), built to run under TSan
// (scripts/check.sh --tsan): K real threads hammer the two shared-state
// primitives of the sharded engine — the cross-shard label allocator and
// the claim-word min-CAS — and full ShardedEngine workloads run with one
// thread per shard against the sequential oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

#include "baseline/list_matcher.hpp"
#include "core/sharded_engine.hpp"
#include "util/rng.hpp"

namespace otm {
namespace {

std::uint64_t chaos_seed() {
  if (const char* s = std::getenv("OTM_CHAOS_SEED"))
    return std::strtoull(s, nullptr, 10);
  return 42;
}

// Every label handed out under contention is unique, per-thread sequences
// are strictly increasing, and the final count is exact — the property C1
// borrows when "oldest" becomes a single integer compare.
TEST(ShardedFuzz, LabelAllocatorUniqueMonotoneUnderContention) {
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  CrossShardLabelAllocator alloc;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&alloc, &got, t] {
        auto& mine = got[t];
        mine.reserve(kPerThread);
        for (std::uint64_t i = 0; i < kPerThread; ++i)
          mine.push_back(alloc.allocate());
      });
    }
    for (auto& w : workers) w.join();
  }
  std::vector<std::uint64_t> all;
  all.reserve(kThreads * kPerThread);
  for (const auto& mine : got) {
    for (std::size_t i = 1; i < mine.size(); ++i)
      ASSERT_LT(mine[i - 1], mine[i]) << "per-thread labels not monotone";
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kThreads * kPerThread);
  for (std::size_t i = 0; i < all.size(); ++i)
    ASSERT_EQ(all[i], i) << "duplicate or skipped label";
  EXPECT_EQ(alloc.peek(), kThreads * kPerThread);
}

// K threads race try_claim on one claim word with distinct sequences: the
// word must end at the minimum registered sequence, and the contested flag
// must be raised exactly when more than one registrant took part.
TEST(ShardedFuzz, ClaimWordKeepsMinimumAndFlagsContention) {
  Xoshiro256 rng(chaos_seed());
  ClaimTable claims(8);
  const std::uint32_t idx = claims.allocate(/*cookie=*/1, /*label=*/0);
  ASSERT_NE(idx, kInvalidSlot);

  for (int round = 0; round < 2'000; ++round) {
    const unsigned racers = 1 + static_cast<unsigned>(rng.below(6));
    std::vector<std::uint64_t> seqs(racers);
    for (auto& s : seqs) s = rng.below(1'000'000);
    {
      std::vector<std::thread> workers;
      workers.reserve(racers);
      for (unsigned t = 0; t < racers; ++t)
        workers.emplace_back(
            [&claims, idx, seq = seqs[t]] { claims.try_claim(idx, seq); });
      for (auto& w : workers) w.join();
    }
    ASSERT_EQ(claims.claim_word(idx),
              *std::min_element(seqs.begin(), seqs.end()))
        << "round " << round << ": claim word lost the minimum";
    ASSERT_EQ(claims.contested(), racers > 1)
        << "round " << round << ": contested flag wrong for " << racers
        << " registrants";
    claims.reset_claim(idx);
    claims.clear_contested();
  }
}

// Full sharded engine with one real thread per shard, racing replicated
// wildcard receives against multi-source bursts; the pairing must equal the
// sequential oracle on every seed (the TSan build additionally proves the
// claim/label traffic race-free).
TEST(ShardedFuzz, ThreadedShardsMatchSequentialOracle) {
  const std::uint64_t base_seed = chaos_seed();
  for (const unsigned shards : {2u, 4u}) {
    for (std::uint64_t round = 0; round < 3; ++round) {
      const std::uint64_t seed = base_seed + round;
      SCOPED_TRACE("shards=" + std::to_string(shards) + " failing seed " +
                   std::to_string(seed) + "; re-run with OTM_CHAOS_SEED=" +
                   std::to_string(seed));
      MatchConfig cfg;
      cfg.bins = 8;
      cfg.block_size = 8;
      cfg.max_receives = 4096;
      cfg.max_unexpected = 4096;
      cfg.shards = shards;
      ShardedEngine engine(cfg);
      engine.set_threaded(true);
      LockstepExecutor ex;
      ListMatcher oracle;
      Xoshiro256 rng(seed);
      std::uint64_t next_id = 0;
      std::vector<IncomingMessage> pending;

      auto flush = [&] {
        if (pending.empty()) return;
        const auto outs = engine.process(pending, ex);
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const auto om = oracle.arrive(pending[i].env, pending[i].wire_seq);
          if (om.has_value()) {
            ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kMatched)
                << "msg " << pending[i].wire_seq;
            ASSERT_EQ(outs[i].match.receive_cookie, *om);
          } else {
            ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kUnexpected);
          }
        }
        pending.clear();
      };

      for (int op = 0; op < 400; ++op) {
        const auto src = static_cast<Rank>(rng.below(6));
        const auto tag = static_cast<Tag>(rng.below(3));
        if (rng.chance(0.5)) {
          flush();
          MatchSpec spec{src, tag, 0};
          if (rng.chance(0.6)) spec.source = kAnySource;
          if (rng.chance(0.15)) spec.tag = kAnyTag;
          const auto id = next_id++;
          const auto ep = engine.post_receive(spec, 0, 0, id);
          const auto oo = oracle.post(spec, id);
          if (oo.has_value()) {
            ASSERT_EQ(ep.kind, PostOutcome::Kind::kMatchedUnexpected);
            ASSERT_EQ(ep.message.wire_seq, *oo);
          } else {
            ASSERT_EQ(ep.kind, PostOutcome::Kind::kPending);
          }
        } else {
          const std::uint64_t burst = 1 + rng.below(rng.chance(0.4) ? 8 : 2);
          for (std::uint64_t b = 0; b < burst; ++b) {
            IncomingMessage m = IncomingMessage::make(
                static_cast<Rank>(rng.below(6)), tag, 0);
            m.wire_seq = next_id++;
            pending.push_back(m);
          }
          if (rng.chance(0.4)) flush();
        }
      }
      flush();
      EXPECT_EQ(engine.posted_count(), oracle.posted_size());
      EXPECT_EQ(engine.unexpected_total(), oracle.unexpected_size());
    }
  }
}

}  // namespace
}  // namespace otm
