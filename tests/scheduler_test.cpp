// Event-driven scheduler unit suite (docs/SCALING.md): deterministic event
// ordering, round-robin fairness with no starvation of low-rank Procs,
// wake-up of blocked ranks after reliability-layer recovery, the dead-peer
// drain, deadlock reporting — plus a schedule fuzz seeded by OTM_CHAOS_SEED
// that perturbs only the runnable pick and must preserve every delivery
// guarantee (the failing seed is reported for replay).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "mpi/scheduler.hpp"

namespace otm::mpi {
namespace {

using Step = WorldScheduler::Step;

std::uint64_t chaos_seed() {
  if (const char* s = std::getenv("OTM_CHAOS_SEED")) {
    const auto v = std::strtoull(s, nullptr, 10);
    if (v != 0) return v;
  }
  return 42;
}

std::uint64_t read_stamp(std::span<const std::byte> buf) {
  std::uint64_t seq = 0;
  std::memcpy(&seq, buf.data(), sizeof(seq));
  return seq;
}

/// Ring exchange: every rank sends `rounds` stamped messages to (r+1)%N
/// and receives the same count from (r-1+N)%N, blocking on both each
/// round. Exercises isend delivery events, blocked-rank wake-ups, and the
/// per-stream FIFO guarantee end to end.
struct RingState {
  int round = 0;
  bool issued = false;
  std::vector<std::byte> out;
  std::vector<std::byte> in;
  Request sreq{};
  Request rreq{};
  std::uint64_t received = 0;
  std::uint64_t misordered = 0;
};

WorldScheduler::Program ring_program(std::vector<RingState>& states, int n,
                                     int rounds, Rank r) {
  return [&states, n, rounds, r](Proc& p) -> Step {
    RingState& st = states[static_cast<std::size_t>(r)];
    if (st.issued) {
      st.issued = false;
      if (read_stamp(st.in) != static_cast<std::uint64_t>(st.round))
        ++st.misordered;
      ++st.received;
      ++st.round;
    }
    if (st.round >= rounds) return Step::done();
    const auto stamp = static_cast<std::uint64_t>(st.round);
    st.out.assign(64, std::byte{0});
    std::memcpy(st.out.data(), &stamp, sizeof(stamp));
    st.in.assign(64, std::byte{0});
    const Rank dst = (r + 1) % n;
    const Rank src = (r - 1 + n) % n;
    st.rreq = p.irecv(st.in, src, 7, p.world_comm());
    st.sreq = p.isend(st.out, dst, 7, p.world_comm());
    st.issued = true;
    return Step::wait_all({st.sreq, st.rreq});
  };
}

/// Run one ring world; returns the scheduler for introspection.
struct RingRun {
  WorldScheduler::Outcome outcome;
  std::vector<Rank> log;
  std::uint64_t vtime;
  std::uint64_t received = 0;
  std::uint64_t misordered = 0;
};

RingRun run_ring(int n, int rounds, const WorldScheduler::Config& cfg) {
  World world(n);
  std::vector<RingState> states(static_cast<std::size_t>(n));
  WorldScheduler sched(world, cfg);
  for (Rank r = 0; r < n; ++r)
    sched.add_task(r, ring_program(states, n, rounds, r));
  RingRun out{sched.run(), sched.step_log(), sched.virtual_now()};
  for (const auto& st : states) {
    out.received += st.received;
    out.misordered += st.misordered;
  }
  return out;
}

TEST(WorldScheduler, RingCompletesWithFifoDelivery) {
  const int n = 8, rounds = 5;
  const auto run = run_ring(n, rounds, {});
  EXPECT_EQ(run.outcome, WorldScheduler::Outcome::kCompleted);
  EXPECT_EQ(run.received, static_cast<std::uint64_t>(n * rounds));
  EXPECT_EQ(run.misordered, 0u);
}

TEST(WorldScheduler, IdenticalRunsProduceIdenticalStepLogs) {
  WorldScheduler::Config cfg;
  cfg.log_steps = true;
  const auto a = run_ring(8, 4, cfg);
  const auto b = run_ring(8, 4, cfg);
  ASSERT_EQ(a.outcome, WorldScheduler::Outcome::kCompleted);
  EXPECT_EQ(a.log, b.log) << "scheduling must be a pure function of the "
                             "programs and the seed";
  EXPECT_EQ(a.vtime, b.vtime);

  // A different seed is allowed to pick differently but must still deliver
  // everything in order.
  cfg.seed = 99;
  const auto c = run_ring(8, 4, cfg);
  EXPECT_EQ(c.outcome, WorldScheduler::Outcome::kCompleted);
  EXPECT_EQ(c.misordered, 0u);
}

TEST(WorldScheduler, FifoServiceNeverStarvesLowRanks) {
  // Pure-compute tasks: K yields then done. Under seed 0 the runnable
  // queue is FIFO, so service is exact round-robin: consecutive steps of
  // any rank are at most N apart in the log, and low ranks are not
  // penalized relative to high ones.
  const int n = 8, yields = 50;
  World world(n);
  std::vector<int> remaining(static_cast<std::size_t>(n), yields);
  WorldScheduler::Config cfg;
  cfg.log_steps = true;
  WorldScheduler sched(world, cfg);
  for (Rank r = 0; r < n; ++r)
    sched.add_task(r, [&remaining, r](Proc&) -> Step {
      auto& left = remaining[static_cast<std::size_t>(r)];
      if (left == 0) return Step::done();
      --left;
      return Step::yield();
    });
  ASSERT_EQ(sched.run(), WorldScheduler::Outcome::kCompleted);
  const auto& log = sched.step_log();
  std::vector<std::size_t> last_seen(static_cast<std::size_t>(n), 0);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto r = static_cast<std::size_t>(log[i]);
    if (seen[r])
      EXPECT_LE(i - last_seen[r], static_cast<std::size_t>(n))
          << "rank " << r << " starved at step " << i;
    seen[r] = true;
    last_seen[r] = i;
  }
  for (Rank r = 0; r < n; ++r)
    EXPECT_EQ(sched.steps(r), static_cast<std::uint64_t>(yields + 1));
}

TEST(WorldScheduler, BlockedRankWakesAfterRetransmitRecovery) {
  // The first packets of every link vanish; delivery then needs the RTO
  // retransmission that only runs when the scheduler keeps progressing
  // blocked ranks via periodic events (the recovery wake-up edge).
  WorldOptions opt;
  opt.fabric.fault.enabled = true;
  opt.fabric.fault.drop_first = 2;
  opt.endpoint.reliability.mode = proto::ReliabilityConfig::Mode::kOn;
  opt.endpoint.reliability.rto_ns = 500;
  opt.endpoint.reliability.rto_max_ns = 4'000;
  opt.endpoint.reliability.progress_tick_ns = 100;
  World world(2, opt);
  std::vector<RingState> states(2);
  WorldScheduler sched(world);
  for (Rank r = 0; r < 2; ++r)
    sched.add_task(r, ring_program(states, 2, 3, r));
  EXPECT_EQ(sched.run(), WorldScheduler::Outcome::kCompleted);
  EXPECT_EQ(states[0].misordered + states[1].misordered, 0u);
  const auto retransmits = world.endpoint(0).counters().retransmits +
                           world.endpoint(1).counters().retransmits;
  EXPECT_GT(retransmits, 0u) << "the drop_first faults were never exercised";
}

TEST(WorldScheduler, DeadPeerSweepUnblocksWaiters) {
  // Rank 0 waits on a receive only rank 1 could satisfy while its sends to
  // rank 1 burn their retry budget in a black-hole fabric. Once the health
  // machine declares the peer Dead, the idle-time sweep must drain the
  // receive (typed kPeerDead) and let rank 0 finish — no deadlock.
  WorldOptions opt;
  opt.fabric.fault.enabled = true;
  opt.fabric.fault.drop_probability = 1.0;
  opt.endpoint.reliability.rto_ns = 500;
  opt.endpoint.reliability.rto_max_ns = 4'000;
  opt.endpoint.reliability.progress_tick_ns = 100;
  opt.endpoint.reliability.retry_budget = 2;
  opt.endpoint.recovery.enabled = true;
  opt.endpoint.recovery.max_attempts = 2;
  opt.endpoint.recovery.quiesce_ns = 200;
  World world(2, opt);

  struct {
    int phase = 0;
    std::vector<std::byte> out = std::vector<std::byte>(64);
    std::vector<std::byte> in = std::vector<std::byte>(64);
    Request send{};
    Request recv{};
  } st;
  WorldScheduler::Config cfg;
  cfg.progress_period_ns = 100;
  WorldScheduler sched(world, cfg);
  sched.add_task(0, [&st](Proc& p) -> Step {
    if (st.phase == 0) {
      st.phase = 1;
      st.send = p.isend(st.out, 1, 0, p.world_comm());
      st.recv = p.irecv(st.in, 1, 0, p.world_comm());
      return Step::wait_all({st.send, st.recv});
    }
    return Step::done();
  });
  sched.add_task(1, [](Proc&) { return Step::done(); });

  EXPECT_EQ(sched.run(), WorldScheduler::Outcome::kCompleted);
  EXPECT_GT(sched.dead_peer_drains(), 0u);
  auto& p0 = world.proc(0);
  EXPECT_TRUE(p0.peer_dead(1));
  EXPECT_TRUE(p0.failed(st.recv));
  EXPECT_EQ(p0.request_error(st.recv), Proc::RequestError::kPeerDead);
}

TEST(WorldScheduler, TrueDeadlockIsReportedWithBlockedRanks) {
  // Rank 0 waits for a message nobody will ever send on a healthy fabric:
  // after two dry idle windows the scheduler must stop and name it.
  World world(2);
  std::vector<std::byte> buf(64);
  Request pending{};
  WorldScheduler::Config cfg;
  cfg.idle_timeout_ns = 20'000;
  WorldScheduler sched(world, cfg);
  sched.add_task(0, [&buf, &pending](Proc& p) -> Step {
    if (!pending.valid()) {
      pending = p.irecv(buf, 1, 0, p.world_comm());
      return Step::wait_all({pending});
    }
    return Step::done();
  });
  sched.add_task(1, [](Proc&) { return Step::done(); });
  EXPECT_EQ(sched.run(), WorldScheduler::Outcome::kDeadlock);
  EXPECT_EQ(sched.blocked_ranks(), std::vector<Rank>{0});
}

TEST(WorldScheduler, ScheduleFuzzPreservesDeliveryAcrossSeeds) {
  const std::uint64_t base = chaos_seed();
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t seed = base * 0x9E3779B97F4A7C15ull + 1 +
                               static_cast<std::uint64_t>(i);
    WorldScheduler::Config cfg;
    cfg.seed = seed;
    const auto run = run_ring(8, 5, cfg);
    EXPECT_EQ(run.outcome, WorldScheduler::Outcome::kCompleted)
        << "failing seed: " << seed
        << " (replay with OTM_CHAOS_SEED=" << base << ", iteration " << i
        << ")";
    EXPECT_EQ(run.received, 40u) << "failing seed: " << seed;
    EXPECT_EQ(run.misordered, 0u) << "failing seed: " << seed;
  }
}

}  // namespace
}  // namespace otm::mpi
