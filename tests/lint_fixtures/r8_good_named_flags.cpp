// otmlint-fixture: src/proto/fixture.cpp
// R8 good twin: every flags-word access goes through the named constants
// from src/proto/wire.hpp, so the epoch field in the high bits stays safe.
#include <cstdint>

namespace otm::proto {

inline constexpr std::uint32_t kWireFlagReliable = 1u << 0;
inline constexpr std::uint32_t kWireFlagMerged = 1u << 1;
inline constexpr std::uint32_t kWireEpochMask = 0xffff0000u;

struct WireHeader {
  std::uint32_t flags = 0;
};

bool is_reliable(const WireHeader& h) {
  return (h.flags & kWireFlagReliable) != 0;
}

void mark_merged(WireHeader& h) { h.flags |= kWireFlagMerged; }

void clear_epoch(WireHeader& h) { h.flags &= ~kWireEpochMask; }

// Plain assignment and named-constant combinations carry no magic bits.
void reset(WireHeader& h) { h.flags = 0; }

}  // namespace otm::proto
