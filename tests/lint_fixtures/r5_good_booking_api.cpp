// otmlint-fixture: src/core/fixture.cpp
// R5 good twin: bookings go through the BookingBitmap API, which stamps the
// block generation alongside the bit (constraint C2).
#include "util/booking_bitmap.hpp"

namespace otm {

void book_properly(BookingBitmap& booking, std::uint32_t gen, unsigned tid) {
  booking.book(gen, tid);
}

bool check(const BookingBitmap& booking, std::uint32_t gen, unsigned tid) {
  return booking.booked_by_lower(gen, tid);
}

}  // namespace otm
