// otmlint-fixture: src/proto/fixture.cpp
// R2 good twin (channel coalescing path): the channel's merge buffer is
// sized once at channel creation (untagged setup code); the hot append is
// a bounds-checked memcpy into that fixed capacity, mirroring
// Endpoint::coalesce_append.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace otm {

struct Channel {
  std::vector<std::byte> buf;
  std::size_t buf_bytes = 0;
};

void open_channel(Channel& ch, std::size_t budget) {
  ch.buf.resize(budget);  // fine: one-time setup, not a hot function
}

// otmlint: hot
bool coalesce_append(Channel& ch, const std::byte* data, std::size_t n) {
  if (ch.buf_bytes + n > ch.buf.size()) return false;  // caller flushes
  std::memcpy(ch.buf.data() + ch.buf_bytes, data, n);
  ch.buf_bytes += n;
  return true;
}

}  // namespace otm
