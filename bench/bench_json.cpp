#include "bench_json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace otm::bench {
namespace {

/// Shortest round-trippable representation, and always valid JSON (no
/// inf/nan: the cost model never produces them, but clamp defensively).
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

bool write_bench_json(const std::string& path, const BenchJsonDoc& doc) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n";
  os << "  \"schema_version\": " << kBenchSchemaVersion << ",\n";
  os << "  \"bench\": \"" << doc.bench << "\",\n";
  os << "  \"smoke\": " << (doc.smoke ? "true" : "false") << ",\n";
  os << "  \"config\": {";
  for (std::size_t i = 0; i < doc.config.size(); ++i) {
    os << (i == 0 ? "" : ",") << "\n    \"" << doc.config[i].first
       << "\": " << num(doc.config[i].second);
  }
  os << (doc.config.empty() ? "" : "\n  ") << "},\n";
  os << "  \"scenarios\": [";
  for (std::size_t i = 0; i < doc.scenarios.size(); ++i) {
    const ScenarioRecord& s = doc.scenarios[i];
    os << (i == 0 ? "" : ",") << "\n    {\n";
    os << "      \"name\": \"" << s.name << "\",\n";
    os << "      \"kind\": \"" << s.kind << "\",\n";
    os << "      \"msgs_per_sec\": " << num(s.msgs_per_sec) << ",\n";
    os << "      \"ns_per_msg\": " << num(s.ns_per_msg) << ",\n";
    os << "      \"p50_seq_ns\": " << num(s.p50_seq_ns) << ",\n";
    os << "      \"p99_seq_ns\": " << num(s.p99_seq_ns) << ",\n";
    os << "      \"host_match_cycles_per_msg\": "
       << num(s.host_match_cycles_per_msg) << ",\n";
    os << "      \"conflicts_per_seq\": " << num(s.conflicts_per_seq);
    for (const auto& [key, value] : s.extra)
      os << ",\n      \"" << key << "\": " << num(value);
    os << "\n    }";
  }
  os << (doc.scenarios.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.good();
}

}  // namespace otm::bench
