file(REMOVE_RECURSE
  "CMakeFiles/wildcard_master_worker.dir/wildcard_master_worker.cpp.o"
  "CMakeFiles/wildcard_master_worker.dir/wildcard_master_worker.cpp.o.d"
  "wildcard_master_worker"
  "wildcard_master_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildcard_master_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
