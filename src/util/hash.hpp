// Hash functions for the matching indexes.
//
// The paper's "inline hash values" optimization (Sec. III-D) lets the sender
// precompute hash(src,tag), hash(src) and hash(tag) and ship them in the
// message header; these functions are therefore part of the wire contract
// and must be stable across the library.
#pragma once

#include <bit>
#include <cstdint>

namespace otm {

/// 64-bit splittable mixer (Stafford variant 13). Cheap enough for a
/// lightweight on-NIC core, strong enough to spread (src, tag) pairs.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// hash over (source, tag): key of the no-wildcard index.
constexpr std::uint64_t hash_src_tag(std::int32_t src, std::int32_t tag) noexcept {
  return mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
               static_cast<std::uint32_t>(tag));
}

/// hash over source only: key of the ANY_TAG index.
constexpr std::uint64_t hash_src(std::int32_t src) noexcept {
  return mix64(0xa076'1d64'78bd'642fULL ^ static_cast<std::uint32_t>(src));
}

/// hash over tag only: key of the ANY_SOURCE index.
constexpr std::uint64_t hash_tag(std::int32_t tag) noexcept {
  return mix64(0xe703'7ed1'a0b4'28dbULL ^ static_cast<std::uint32_t>(tag));
}

/// FNV-1a, used for trace-cache integrity checksums.
constexpr std::uint64_t fnv1a(const void* data, std::size_t n,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr bool is_pow2(std::size_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

constexpr std::size_t next_pow2(std::size_t x) noexcept {
  return x <= 1 ? 1 : std::size_t{1} << (64 - std::countl_zero(x - 1));
}

}  // namespace otm
