// Unit tests for the unexpected-message store: packed per-bin hot arrays
// across all four indexes, class-specific probing at post time,
// arrival-order matching (C2) and removal from every index.
#include <gtest/gtest.h>

#include "core/unexpected_store.hpp"

namespace otm {
namespace {

MatchConfig small_config() {
  MatchConfig c;
  c.bins = 8;
  c.max_receives = 32;
  c.max_unexpected = 16;
  return c;
}

class UmTest : public ::testing::Test {
 protected:
  UmTest() : store_(small_config()) {}

  std::uint32_t insert(Rank src, Tag tag, std::uint64_t seq = 0) {
    IncomingMessage m = IncomingMessage::make(src, tag, 0);
    m.wire_seq = seq;
    return store_.insert(m, clock_);
  }

  std::uint32_t search(const MatchSpec& spec) {
    std::uint64_t attempts = 0;
    return store_.search(spec, clock_, attempts);
  }

  UnexpectedStore store_;
  ThreadClock clock_;
};

TEST_F(UmTest, ExactSpecFindsMessage) {
  const auto slot = insert(3, 7);
  EXPECT_EQ(search({3, 7, 0}), slot);
  EXPECT_EQ(search({3, 8, 0}), kInvalidSlot);
}

TEST_F(UmTest, EveryWildcardClassFindsTheMessage) {
  const auto slot = insert(3, 7);
  EXPECT_EQ(search({3, 7, 0}), slot);
  EXPECT_EQ(search({kAnySource, 7, 0}), slot);
  EXPECT_EQ(search({3, kAnyTag, 0}), slot);
  EXPECT_EQ(search({kAnySource, kAnyTag, 0}), slot);
}

TEST_F(UmTest, CommMismatchDoesNotMatch) {
  insert(3, 7);
  EXPECT_EQ(search({3, 7, /*comm=*/2}), kInvalidSlot);
}

TEST_F(UmTest, ArrivalOrderPreservedPerClass) {
  const auto first = insert(1, 5, /*seq=*/10);
  insert(1, 5, /*seq=*/11);
  // Every probing class must return the *older* message (C2).
  EXPECT_EQ(search({1, 5, 0}), first);
  EXPECT_EQ(search({kAnySource, 5, 0}), first);
  EXPECT_EQ(search({1, kAnyTag, 0}), first);
  EXPECT_EQ(search({kAnySource, kAnyTag, 0}), first);
}

TEST_F(UmTest, WildcardSearchSeesOlderAcrossKeys) {
  // Two different-key messages; an any/any receive must match the older.
  const auto older = insert(1, 1, 0);
  insert(2, 2, 1);
  EXPECT_EQ(search({kAnySource, kAnyTag, 0}), older);
}

TEST_F(UmTest, RemoveUnlinksFromAllIndexes) {
  const auto a = insert(1, 5, 100);
  const auto b = insert(1, 5, 101);
  const auto out = store_.remove(a);
  EXPECT_EQ(out.wire_seq, 100u);
  EXPECT_EQ(store_.size(), 1u);
  // After removing the head, every class finds the second message.
  EXPECT_EQ(search({1, 5, 0}), b);
  EXPECT_EQ(search({kAnySource, 5, 0}), b);
  EXPECT_EQ(search({1, kAnyTag, 0}), b);
  EXPECT_EQ(search({kAnySource, kAnyTag, 0}), b);
}

TEST_F(UmTest, RemoveMiddleOfChain) {
  insert(2, 2, 0);
  const auto mid = insert(2, 2, 1);
  insert(2, 2, 2);
  store_.remove(mid);
  // Chain must still contain messages 0 and 2 in order.
  const auto hit = search({2, 2, 0});
  EXPECT_EQ(store_.desc(hit).wire_seq, 0u);
  store_.remove(hit);
  const auto hit2 = search({2, 2, 0});
  EXPECT_EQ(store_.desc(hit2).wire_seq, 2u);
  store_.remove(hit2);
  EXPECT_EQ(search({2, 2, 0}), kInvalidSlot);
  EXPECT_EQ(store_.size(), 0u);
}

TEST_F(UmTest, CapacityExhaustionReturnsInvalid) {
  for (std::size_t i = 0; i < store_.capacity(); ++i)
    EXPECT_NE(insert(1, static_cast<Tag>(i)), kInvalidSlot);
  EXPECT_EQ(insert(9, 9), kInvalidSlot);
  // Removing one frees a slot again.
  store_.remove(search({1, 0, 0}));
  EXPECT_NE(insert(9, 9), kInvalidSlot);
}

TEST_F(UmTest, MessagePayloadFieldsPreserved) {
  IncomingMessage m = IncomingMessage::make(4, 2, 0, /*bytes=*/512);
  m.protocol = Protocol::kRendezvous;
  m.remote_key = 0xAB;
  m.remote_addr = 0x1000;
  m.bounce_handle = 77;
  m.wire_seq = 9;
  const auto slot = store_.insert(m, clock_);
  const auto out = store_.remove(slot);
  EXPECT_EQ(out.protocol, Protocol::kRendezvous);
  EXPECT_EQ(out.payload_bytes, 512u);
  EXPECT_EQ(out.remote_key, 0xABu);
  EXPECT_EQ(out.remote_addr, 0x1000u);
  EXPECT_EQ(out.bounce_handle, 77u);
  EXPECT_EQ(out.wire_seq, 9u);
}

TEST_F(UmTest, DepthMetrics) {
  insert(1, 1);
  insert(1, 1);
  insert(2, 2);
  const auto m = store_.depth_metrics();
  EXPECT_EQ(m.entries, 3u);
  EXPECT_GE(m.max_chain, 3u) << "the any/any list chains all messages";
}

}  // namespace
}  // namespace otm
