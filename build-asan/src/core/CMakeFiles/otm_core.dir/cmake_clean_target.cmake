file(REMOVE_RECURSE
  "libotm_core.a"
)
