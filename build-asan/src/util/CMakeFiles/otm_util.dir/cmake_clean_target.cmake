file(REMOVE_RECURSE
  "libotm_util.a"
)
