// Chaos tests for the fault-injecting fabric + reliable-delivery sublayer
// (docs/RELIABILITY.md): deterministic single-fault recovery scenarios, the
// graceful-degradation path when the retry budget runs out, and seeded
// randomized soaks asserting every posted receive completes exactly once —
// with payload integrity and ReferenceMatcher-agreeing match order — while
// the fabric drops, duplicates, corrupts and reorders packets.
//
// The soak seed is overridable via OTM_CHAOS_SEED (scripts/check.sh runs a
// small seed matrix under ASan/UBSan).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baseline/list_matcher.hpp"
#include "mpi/mpi.hpp"
#include "proto/endpoint.hpp"
#include "rdma/fault.hpp"

namespace otm::proto {
namespace {

std::uint64_t chaos_seed() {
  if (const char* s = std::getenv("OTM_CHAOS_SEED")) {
    const auto v = std::strtoull(s, nullptr, 10);
    if (v != 0) return v;
  }
  return 42;
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed * 7) & 0xFF);
  return v;
}

/// Stamp a per-message sequence number into the payload's first 8 bytes so
/// receivers can verify which message landed in which buffer.
std::vector<std::byte> stamped(std::size_t n, std::uint64_t seq) {
  auto v = pattern(n, seq);
  OTM_ASSERT(n >= sizeof(seq));
  std::memcpy(v.data(), &seq, sizeof(seq));
  return v;
}

std::uint64_t read_stamp(std::span<const std::byte> buf) {
  std::uint64_t seq = 0;
  OTM_ASSERT(buf.size() >= sizeof(seq));
  std::memcpy(&seq, buf.data(), sizeof(seq));
  return seq;
}

MatchConfig match_cfg() {
  MatchConfig c;
  c.bins = 32;
  c.block_size = 4;
  c.max_receives = 64;
  return c;
}

/// Reliability tuning scaled to test drivers: the modeled clock advances
/// ~100 ns per progress() call, so timeouts must be a handful of ticks.
ReliabilityConfig fast_reliability() {
  ReliabilityConfig r;
  r.rto_ns = 500;
  r.rto_max_ns = 4'000;
  r.rnr_backoff_ns = 200;
  r.progress_tick_ns = 100;
  return r;
}

class ChaosPair {
 public:
  ChaosPair(const rdma::FaultConfig& fault, EndpointConfig ep_cfg)
      : fabric_(make_fabric(fault)),
        a_(fabric_, 0, ep_cfg, match_cfg(), DpaConfig{}),
        b_(fabric_, 1, ep_cfg, match_cfg(), DpaConfig{}) {
    a_.connect(b_);
  }

  static rdma::FabricConfig make_fabric(const rdma::FaultConfig& fault) {
    rdma::FabricConfig f;
    f.fault = fault;
    return f;
  }

  static EndpointConfig default_ep() {
    EndpointConfig c;
    c.eager_threshold = 256;
    c.bounce_count = 64;
    c.reliability = fast_reliability();
    return c;
  }

  /// Drive both endpoints until `want` completions surface at b (or the
  /// iteration budget is exhausted — then the test fails loudly).
  std::vector<Endpoint::RecvCompletion> pump(std::size_t want,
                                             int max_iters = 4000) {
    std::vector<Endpoint::RecvCompletion> done;
    for (int i = 0; i < max_iters && done.size() < want; ++i) {
      a_.progress();
      for (auto& c : b_.progress()) done.push_back(c);
    }
    return done;
  }

  rdma::Fabric fabric_;
  Endpoint a_;
  Endpoint b_;
};

// --- Deterministic single-fault scenarios ------------------------------------

TEST(Reliability, ActivationFollowsModeAndFaults) {
  rdma::FaultConfig off;
  rdma::FaultConfig on;
  on.enabled = true;

  EndpointConfig auto_cfg = ChaosPair::default_ep();
  EXPECT_FALSE(ChaosPair(off, auto_cfg).a_.reliable())
      << "kAuto without faults stays on the fast path";
  EXPECT_TRUE(ChaosPair(on, auto_cfg).a_.reliable())
      << "kAuto engages once the fabric can lose packets";

  EndpointConfig forced = auto_cfg;
  forced.reliability.mode = ReliabilityConfig::Mode::kOn;
  EXPECT_TRUE(ChaosPair(off, forced).a_.reliable());
  forced.reliability.mode = ReliabilityConfig::Mode::kOff;
  EXPECT_FALSE(ChaosPair(on, forced).a_.reliable());
}

TEST(Reliability, NoFaultPassThrough) {
  // Reliability forced on over a clean fabric: everything completes on the
  // first transmission, no retransmits, no dedup work. Stock timeouts: the
  // fast test RTO would fire spuriously before the first ack round.
  EndpointConfig cfg = ChaosPair::default_ep();
  cfg.reliability = ReliabilityConfig{};
  cfg.reliability.mode = ReliabilityConfig::Mode::kOn;
  ChaosPair p(rdma::FaultConfig{}, cfg);

  std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(64));
  for (std::uint64_t i = 0; i < 8; ++i) {
    p.b_.post_receive({0, static_cast<Tag>(i), 0}, bufs[i], i);
    const auto r = p.a_.send(1, static_cast<Tag>(i), 0, stamped(64, i));
    EXPECT_EQ(r.outcome, Outcome::kQueued);
    EXPECT_TRUE(r.ok);
  }
  const auto done = p.pump(8);
  ASSERT_EQ(done.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(done[i].cookie, i);
    EXPECT_EQ(read_stamp(bufs[i]), i);
  }
  EXPECT_EQ(p.a_.counters().retransmits, 0u);
  EXPECT_EQ(p.b_.counters().dup_discards, 0u);
  EXPECT_EQ(p.a_.unacked(1), 0u) << "acks drained the send window";
}

TEST(Reliability, RetransmitRecoversDroppedPacket) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.drop_first = 1;  // first packet on every link vanishes
  ChaosPair p(fault, ChaosPair::default_ep());

  std::vector<std::byte> buf(64);
  p.b_.post_receive({0, 5, 0}, buf, 1);
  const auto r = p.a_.send(1, 5, 0, stamped(64, 9));
  ASSERT_TRUE(r.ok);

  const auto done = p.pump(1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 1u);
  EXPECT_EQ(read_stamp(buf), 9u);
  EXPECT_GE(p.a_.counters().retransmits, 1u);
  EXPECT_EQ(p.a_.counters().messages_dropped, 0u)
      << "a recovered drop is not a lost message";
  EXPECT_EQ(p.a_.unacked(1), 0u);
}

TEST(Reliability, DuplicatesNeverDoubleComplete) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.duplicate_probability = 1.0;  // every packet delivered twice
  ChaosPair p(fault, ChaosPair::default_ep());

  std::vector<std::vector<std::byte>> bufs(5, std::vector<std::byte>(64));
  for (std::uint64_t i = 0; i < 5; ++i) {
    p.b_.post_receive({0, 1, 0}, bufs[i], i);
    ASSERT_TRUE(p.a_.send(1, 1, 0, stamped(64, i)).ok);
  }
  const auto done = p.pump(5);
  ASSERT_EQ(done.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(done[i].cookie, i) << "same-tag stream completes in order";
    EXPECT_EQ(read_stamp(bufs[i]), i);
  }
  // Drain any trailing duplicates still in flight, then confirm nothing
  // else ever completes.
  for (int i = 0; i < 50; ++i) {
    p.a_.progress();
    EXPECT_TRUE(p.b_.progress().empty());
  }
  EXPECT_GE(p.b_.counters().dup_discards, 5u);
}

TEST(Reliability, CorruptionDetectedByCrcAndRetransmitted) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.corrupt_first = 1;  // first packet on the link arrives mangled
  ChaosPair p(fault, ChaosPair::default_ep());

  std::vector<std::byte> buf(64);
  p.b_.post_receive({0, 3, 0}, buf, 7);
  ASSERT_TRUE(p.a_.send(1, 3, 0, stamped(64, 3)).ok);

  const auto done = p.pump(1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 7u);
  EXPECT_EQ(read_stamp(buf), 3u) << "user buffer got the clean retransmit";
  EXPECT_GE(p.b_.counters().corrupt_discards, 1u);
  EXPECT_GE(p.a_.counters().retransmits, 1u);
}

TEST(Reliability, ForcedRnrBacksOffAndDelivers) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.rnr_period = 4;  // first 2 of every 4 attempts per link refused
  fault.rnr_burst = 2;
  ChaosPair p(fault, ChaosPair::default_ep());

  std::vector<std::vector<std::byte>> bufs(3, std::vector<std::byte>(32));
  for (std::uint64_t i = 0; i < 3; ++i) {
    p.b_.post_receive({0, 2, 0}, bufs[i], i);
    ASSERT_TRUE(p.a_.send(1, 2, 0, stamped(32, i)).ok);
  }
  const auto done = p.pump(3);
  ASSERT_EQ(done.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(done[i].cookie, i);
  EXPECT_GE(p.a_.counters().rnr_failures, 1u)
      << "transient refusals are counted as RNR, not as drops";
  EXPECT_EQ(p.a_.counters().messages_dropped, 0u);
  EXPECT_GT(p.fabric_.injector()->stats().forced_rnrs, 0u);
}

TEST(Reliability, ReorderingResequencedBeforeMatching) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.reorder_probability = 0.5;
  fault.reorder_window = 3;
  fault.seed = chaos_seed();
  ChaosPair p(fault, ChaosPair::default_ep());

  constexpr std::uint64_t kN = 32;
  std::vector<std::vector<std::byte>> bufs(kN, std::vector<std::byte>(32));
  for (std::uint64_t i = 0; i < kN; ++i) {
    p.b_.post_receive({0, 1, 0}, bufs[i], i);
    ASSERT_TRUE(p.a_.send(1, 1, 0, stamped(32, i)).ok);
  }
  const auto done = p.pump(kN);
  ASSERT_EQ(done.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(done[i].cookie, i)
        << "C2: same-(source,tag) stream must not be overtaken";
    EXPECT_EQ(read_stamp(bufs[i]), i);
  }
}

TEST(Reliability, RendezvousSurvivesDropsAndFreesStaging) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.drop_first = 1;
  ChaosPair p(fault, ChaosPair::default_ep());  // eager_threshold = 256

  std::vector<std::byte> buf(2048);
  p.b_.post_receive({0, 4, 0}, buf, 11);
  const auto tx = stamped(2048, 21);
  ASSERT_TRUE(p.a_.send(1, 4, 0, tx).ok);
  EXPECT_EQ(p.a_.pending_rendezvous(), 1u);

  const auto done = p.pump(1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].bytes, 2048u);
  EXPECT_EQ(tx, buf);
  EXPECT_EQ(p.a_.pending_rendezvous(), 0u)
      << "receiver's read FIN freed the staged payload";
  EXPECT_GE(p.a_.counters().retransmits, 1u);
}

// --- Graceful degradation ----------------------------------------------------

TEST(Reliability, RetryBudgetExhaustionSurfacesDeliveryError) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.drop_probability = 1.0;  // black-hole link
  EndpointConfig cfg = ChaosPair::default_ep();
  cfg.reliability.retry_budget = 3;
  ChaosPair p(fault, cfg);

  std::vector<std::byte> buf(32);
  p.b_.post_receive({0, 6, 0}, buf, 1);
  ASSERT_TRUE(p.a_.send(1, 6, 0, stamped(32, 1)).ok) << "queued, not yet failed";

  for (int i = 0; i < 400; ++i) p.a_.progress();

  const auto errs = p.a_.take_delivery_errors();
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_EQ(errs[0].peer, 1);
  EXPECT_EQ(errs[0].env.tag, 6);
  EXPECT_EQ(errs[0].retries, 3u);
  EXPECT_EQ(p.a_.counters().messages_dropped, 1u);
  EXPECT_EQ(p.a_.unacked(1), 0u) << "failed window is flushed";

  // The channel is dead: further sends fail fast with their own record.
  const auto r = p.a_.send(1, 6, 0, stamped(32, 2));
  EXPECT_EQ(r.outcome, Outcome::kFailed);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(p.a_.take_delivery_errors().size(), 1u);
  EXPECT_TRUE(p.b_.progress().empty()) << "nothing ever arrived";
}

TEST(Reliability, FailedRendezvousChannelFreesStaging) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.drop_probability = 1.0;
  EndpointConfig cfg = ChaosPair::default_ep();
  cfg.reliability.retry_budget = 2;
  ChaosPair p(fault, cfg);

  ASSERT_TRUE(p.a_.send(1, 4, 0, stamped(2048, 5)).ok);
  EXPECT_EQ(p.a_.pending_rendezvous(), 1u);
  for (int i = 0; i < 200; ++i) p.a_.progress();
  EXPECT_EQ(p.a_.take_delivery_errors().size(), 1u);
  EXPECT_EQ(p.a_.pending_rendezvous(), 0u)
      << "failing the channel releases the staged payload";
}

TEST(Reliability, EndpointCqOverrunBackpressuresInsteadOfCrashing) {
  // Tiny receiver CQ + reliability forced on: sends beyond the CQ depth are
  // deferred with backpressure and delivered once the receiver drains.
  EndpointConfig cfg = ChaosPair::default_ep();
  cfg.cq_depth = 2;
  cfg.reliability.mode = ReliabilityConfig::Mode::kOn;
  ChaosPair p(rdma::FaultConfig{}, cfg);

  constexpr std::uint64_t kN = 6;
  std::vector<std::vector<std::byte>> bufs(kN, std::vector<std::byte>(32));
  for (std::uint64_t i = 0; i < kN; ++i) {
    p.b_.post_receive({0, 1, 0}, bufs[i], i);
    ASSERT_TRUE(p.a_.send(1, 1, 0, stamped(32, i)).ok);
  }
  EXPECT_GE(p.a_.counters().backpressure_stalls, 1u);

  const auto done = p.pump(kN);
  ASSERT_EQ(done.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(done[i].cookie, i);
    EXPECT_EQ(read_stamp(bufs[i]), i);
  }
  EXPECT_EQ(p.a_.counters().messages_dropped, 0u);
}

// --- Observability -----------------------------------------------------------

TEST(Reliability, FaultStatsSurfaceInMetricsRegistry) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.drop_first = 1;
  ChaosPair p(fault, ChaosPair::default_ep());

  obs::ObsConfig oc;
  oc.metrics = true;
  obs::Observability obs(oc);
  p.a_.attach_observability(&obs, "ep");

  std::vector<std::byte> buf(32);
  p.b_.post_receive({0, 1, 0}, buf, 1);
  ASSERT_TRUE(p.a_.send(1, 1, 0, stamped(32, 1)).ok);
  ASSERT_EQ(p.pump(1).size(), 1u);

  auto* reg = obs.metrics();
  ASSERT_NE(reg, nullptr);
  EXPECT_GE(reg->counter("ep.fabric.drops").value(), 1u);
  EXPECT_GE(reg->counter("ep.retransmits").value(), 1u);
}

// --- Seeded randomized soaks -------------------------------------------------

struct SoakOutcome {
  std::size_t completions = 0;
  bool exactly_once = true;
  bool in_order = true;
  bool payload_ok = true;
  bool matches_reference = true;
};

/// Windowed streaming soak over one endpoint pair: kMessages messages across
/// kTags same-communicator tag streams, mixed eager/rendezvous sizes, with a
/// ListMatcher replay as the C1/C2 pairing oracle.
SoakOutcome run_endpoint_soak(const rdma::FaultConfig& fault,
                              std::size_t messages, std::size_t window,
                              bool mix_rendezvous) {
  EndpointConfig cfg = ChaosPair::default_ep();
  ChaosPair p(fault, cfg);

  constexpr std::uint32_t kTags = 4;
  ListMatcher oracle;
  std::map<std::uint64_t, std::uint64_t> expected;  // cookie -> message seq

  std::vector<std::vector<std::byte>> bufs(messages);
  std::vector<std::vector<std::byte>> sent(messages);
  std::vector<bool> seen(messages, false);
  SoakOutcome out;

  std::size_t posted = 0;
  std::uint64_t next_expected_per_tag[kTags] = {};
  auto harvest = [&](const std::vector<Endpoint::RecvCompletion>& done) {
    for (const auto& c : done) {
      ++out.completions;
      if (c.cookie >= messages || seen[c.cookie]) {
        out.exactly_once = false;
        continue;
      }
      seen[c.cookie] = true;
      const auto tag = static_cast<std::uint32_t>(c.env.tag);
      const std::uint64_t stamp = read_stamp(bufs[c.cookie]);
      // C2: each (source,tag) stream completes in send order.
      if (stamp / kTags != next_expected_per_tag[tag]++) out.in_order = false;
      if (bufs[c.cookie] != sent[stamp]) out.payload_ok = false;
      const auto it = expected.find(c.cookie);
      if (it == expected.end() || it->second != stamp)
        out.matches_reference = false;
    }
  };

  for (std::uint64_t i = 0; i < messages; ++i) {
    const Tag tag = static_cast<Tag>(i % kTags);
    const std::size_t bytes =
        mix_rendezvous && (i % 7 == 3) ? 2048 : 64;  // past/below threshold
    bufs[i].resize(bytes);
    // Post the receive, then send: the oracle replays the same interleaving.
    p.b_.post_receive({0, tag, 0}, bufs[i], i);
    EXPECT_FALSE(oracle.post({0, tag, 0}, i).has_value())
        << "soak posts receives before their messages";
    sent[i] = stamped(bytes, i);
    const auto r = p.a_.send(1, tag, 0, sent[i]);
    if (!r.ok) out.exactly_once = false;  // reliable sends must queue
    if (const auto m = oracle.arrive({0, tag, 0}, i); m.has_value())
      expected[*m] = i;
    ++posted;
    if (posted - out.completions >= window) {
      // Window full: pump until something completes.
      for (int spin = 0; spin < 4000 && posted - out.completions >= window;
           ++spin) {
        p.a_.progress();
        harvest(p.b_.progress());
      }
    }
  }
  for (int spin = 0; spin < 20000 && out.completions < messages; ++spin) {
    p.a_.progress();
    harvest(p.b_.progress());
  }
  // Settle: nothing further may ever complete.
  for (int spin = 0; spin < 100; ++spin) {
    p.a_.progress();
    harvest(p.b_.progress());
  }
  if (out.completions != messages) out.exactly_once = false;
  EXPECT_EQ(p.a_.take_delivery_errors().size(), 0u);
  return out;
}

TEST(ChaosSoak, TenThousandMessagesExactlyOnceUnderDrops) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.seed = chaos_seed();
  fault.drop_probability = 0.05;
  fault.duplicate_probability = 0.02;
  fault.reorder_probability = 0.05;
  fault.reorder_window = 3;

  const auto out = run_endpoint_soak(fault, 10'000, 16, /*mix_rendezvous=*/false);
  EXPECT_EQ(out.completions, 10'000u);
  EXPECT_TRUE(out.exactly_once) << "a posted receive completed 0 or 2+ times";
  EXPECT_TRUE(out.in_order) << "C2 violated within a (source,tag) stream";
  EXPECT_TRUE(out.payload_ok);
  EXPECT_TRUE(out.matches_reference)
      << "matching disagrees with the ListMatcher oracle";
}

TEST(ChaosSoak, MixedProtocolAllFaultClasses) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.seed = chaos_seed() + 1;
  fault.drop_probability = 0.03;
  fault.duplicate_probability = 0.02;
  fault.corrupt_probability = 0.02;
  fault.reorder_probability = 0.04;
  fault.reorder_window = 3;
  fault.rnr_period = 64;
  fault.rnr_burst = 2;

  const auto out = run_endpoint_soak(fault, 2'000, 8, /*mix_rendezvous=*/true);
  EXPECT_EQ(out.completions, 2'000u);
  EXPECT_TRUE(out.exactly_once);
  EXPECT_TRUE(out.in_order);
  EXPECT_TRUE(out.payload_ok);
  EXPECT_TRUE(out.matches_reference);
}

// --- Sharded receiver under chaos (docs/SHARDING.md) -------------------------

/// Incast soak: four senders stream at one receiver whose matching engine
/// is split into four source-routed shards, over a faulted fabric. Every
/// receive names a specific (source, tag), so the expected pairing is
/// deterministic per stream no matter how the fault injector interleaves
/// the streams: the k-th receive of stream (s, t) gets the k-th message of
/// stream (s, t). Asserts exactly-once completion, payload integrity, and
/// per-(peer, tag) FIFO even though CQEs fan out across shards.
TEST(ChaosSoak, ShardedIncastExactlyOnceFifoUnderFaults) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.seed = chaos_seed() + 2;
  fault.drop_probability = 0.03;
  fault.duplicate_probability = 0.02;
  fault.corrupt_probability = 0.01;
  fault.reorder_probability = 0.04;
  fault.reorder_window = 3;

  constexpr std::size_t kMessages = 10'000;
  constexpr std::size_t kWindow = 16;
  constexpr unsigned kSenders = 4;
  constexpr std::uint32_t kTags = 2;

  rdma::Fabric fabric(ChaosPair::make_fabric(fault));
  EndpointConfig ep_cfg = ChaosPair::default_ep();
  MatchConfig recv_cfg = match_cfg();
  recv_cfg.shards = 4;
  Endpoint receiver(fabric, 0, ep_cfg, recv_cfg, DpaConfig{});
  std::vector<std::unique_ptr<Endpoint>> senders;
  for (unsigned s = 0; s < kSenders; ++s) {
    senders.push_back(std::make_unique<Endpoint>(
        fabric, static_cast<Rank>(s + 1), ep_cfg, match_cfg(), DpaConfig{}));
    senders.back()->connect(receiver);
  }
  ASSERT_EQ(receiver.dpa().sharded_engine().shard_count(), 4u);

  std::vector<std::vector<std::byte>> bufs(kMessages);
  std::vector<std::vector<std::byte>> sent(kMessages);
  std::vector<bool> seen(kMessages, false);
  // Completion order per (sender, tag) stream must be send order (C2
  // survives the CQE fan-out because routing is by source).
  std::map<std::pair<Rank, Tag>, std::uint64_t> last_stamp;
  std::size_t completions = 0;
  bool exactly_once = true, in_order = true, payload_ok = true,
       pairing_ok = true;

  auto harvest = [&](const std::vector<Endpoint::RecvCompletion>& done) {
    for (const auto& c : done) {
      ++completions;
      if (c.cookie >= kMessages || seen[c.cookie]) {
        exactly_once = false;
        continue;
      }
      seen[c.cookie] = true;
      const std::uint64_t stamp = read_stamp(bufs[c.cookie]);
      if (stamp != c.cookie) pairing_ok = false;  // k-th receive, k-th msg
      if (bufs[c.cookie] != sent[stamp]) payload_ok = false;
      const std::pair<Rank, Tag> stream{c.env.source, c.env.tag};
      const auto it = last_stamp.find(stream);
      if (it != last_stamp.end() && stamp <= it->second) in_order = false;
      last_stamp[stream] = stamp;
    }
  };
  auto pump_all = [&] {
    for (auto& s : senders) s->progress();
    harvest(receiver.progress());
  };

  for (std::uint64_t i = 0; i < kMessages; ++i) {
    const unsigned s = static_cast<unsigned>(i % kSenders);
    const Tag tag = static_cast<Tag>((i / kSenders) % kTags);
    const std::size_t bytes = (i % 7 == 3) ? 2048 : 64;  // mixed protocol
    bufs[i].resize(bytes);
    const auto pr =
        receiver.post_receive({static_cast<Rank>(s + 1), tag, 0}, bufs[i], i);
    ASSERT_NE(pr.outcome, Outcome::kFallback);
    if (pr.outcome == Outcome::kCompleted) harvest({pr.completion});
    sent[i] = stamped(bytes, i);
    const auto r = senders[s]->send(0, tag, 0, sent[i]);
    if (!r.ok) exactly_once = false;  // reliable sends must queue
    if (i + 1 - completions >= kWindow) {
      for (int spin = 0; spin < 4000 && i + 1 - completions >= kWindow; ++spin)
        pump_all();
    }
  }
  for (int spin = 0; spin < 20000 && completions < kMessages; ++spin)
    pump_all();
  for (int spin = 0; spin < 100; ++spin) pump_all();  // settle: no extras

  EXPECT_EQ(completions, kMessages);
  EXPECT_TRUE(exactly_once) << "a posted receive completed 0 or 2+ times";
  EXPECT_TRUE(in_order) << "C2 violated within a (peer, tag) stream";
  EXPECT_TRUE(payload_ok);
  EXPECT_TRUE(pairing_ok) << "receive paired with the wrong stream message";
  for (auto& s : senders) EXPECT_EQ(s->take_delivery_errors().size(), 0u);
  // The traffic really spread across all four shards.
  const auto& se = receiver.dpa().sharded_engine();
  for (unsigned k = 0; k < se.shard_count(); ++k)
    EXPECT_GT(se.shard(k).stats().messages_processed, 0u)
        << "shard " << k << " never saw a message";
}

// --- Coalesced small-message storm under chaos (docs/COALESCING.md) ----------

/// Small-payload storm through the merged-message path: `messages` stamped
/// 8–64 B sends across two tag streams, coalescing enabled, over a faulted
/// fabric, into a receiver with `shards` source-routed engine shards. Every
/// receive names (source, tag), so the expected pairing is deterministic:
/// the k-th receive of a stream gets the k-th message of that stream. A
/// ListMatcher replay cross-checks the pairing; payloads must come back
/// byte-identical through the pack → merge → CRC → unpack pipeline.
void run_coalesced_storm(unsigned shards, std::uint64_t seed) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.seed = seed;
  fault.drop_probability = 0.03;
  fault.duplicate_probability = 0.02;
  fault.corrupt_probability = 0.01;
  fault.reorder_probability = 0.04;
  fault.reorder_window = 3;

  constexpr std::size_t kMessages = 10'000;
  constexpr std::size_t kWindow = 16;
  constexpr std::uint32_t kTags = 2;

  rdma::Fabric fabric(ChaosPair::make_fabric(fault));
  EndpointConfig ep_cfg = ChaosPair::default_ep();
  ep_cfg.coalescing.enabled = true;
  ep_cfg.coalescing.max_messages = 8;
  ep_cfg.coalescing.eligible_bytes = 64;
  MatchConfig recv_cfg = match_cfg();
  recv_cfg.shards = shards;
  Endpoint receiver(fabric, 0, ep_cfg, recv_cfg, DpaConfig{});
  Endpoint sender(fabric, 1, ep_cfg, match_cfg(), DpaConfig{});
  sender.connect(receiver);
  ASSERT_EQ(receiver.dpa().sharded_engine().shard_count(), shards);

  ListMatcher oracle;
  std::map<std::uint64_t, std::uint64_t> expected;  // cookie -> message seq
  std::vector<std::vector<std::byte>> bufs(kMessages);
  std::vector<std::vector<std::byte>> sent(kMessages);
  std::vector<bool> seen(kMessages, false);
  std::map<Tag, std::uint64_t> last_stamp;
  std::size_t completions = 0;
  bool exactly_once = true, in_order = true, payload_ok = true,
       pairing_ok = true;

  auto harvest = [&](const std::vector<Endpoint::RecvCompletion>& done) {
    for (const auto& c : done) {
      ++completions;
      if (c.cookie >= kMessages || seen[c.cookie]) {
        exactly_once = false;
        continue;
      }
      seen[c.cookie] = true;
      const std::uint64_t stamp = read_stamp(bufs[c.cookie]);
      if (bufs[c.cookie] != sent[stamp]) payload_ok = false;
      const auto it = expected.find(c.cookie);
      if (it == expected.end() || it->second != stamp) pairing_ok = false;
      const auto lit = last_stamp.find(c.env.tag);
      if (lit != last_stamp.end() && stamp <= lit->second) in_order = false;
      last_stamp[c.env.tag] = stamp;
    }
  };
  auto pump_all = [&] {
    sender.progress();
    harvest(receiver.progress());
  };

  for (std::uint64_t i = 0; i < kMessages; ++i) {
    const Tag tag = static_cast<Tag>(i % kTags);
    const std::size_t bytes = 8 + (i % 8) * 8;  // 8..64 B
    bufs[i].resize(bytes);
    const auto pr = receiver.post_receive({1, tag, 0}, bufs[i], i);
    ASSERT_NE(pr.outcome, Outcome::kFallback);
    if (pr.outcome == Outcome::kCompleted) harvest({pr.completion});
    EXPECT_FALSE(oracle.post({1, tag, 0}, i).has_value())
        << "storm posts receives before their messages";
    sent[i] = stamped(bytes, i);
    const auto r = sender.send(0, tag, 0, sent[i]);
    if (!r.ok) exactly_once = false;  // reliable sends must queue
    if (const auto m = oracle.arrive({1, tag, 0}, i); m.has_value())
      expected[*m] = i;
    if (i + 1 - completions >= kWindow) {
      for (int spin = 0; spin < 4000 && i + 1 - completions >= kWindow; ++spin)
        pump_all();
    }
  }
  for (int spin = 0; spin < 20000 && completions < kMessages; ++spin)
    pump_all();
  for (int spin = 0; spin < 100; ++spin) pump_all();  // settle: no extras

  EXPECT_EQ(completions, kMessages);
  EXPECT_TRUE(exactly_once) << "a posted receive completed 0 or 2+ times";
  EXPECT_TRUE(in_order) << "per-(peer,tag) FIFO violated through coalescing";
  EXPECT_TRUE(payload_ok) << "unpacked payload differs from the sent bytes";
  EXPECT_TRUE(pairing_ok) << "matching disagrees with the ListMatcher oracle";
  EXPECT_EQ(sender.take_delivery_errors().size(), 0u);
  EXPECT_GT(sender.counters().coalesced_sends, 0u);
  EXPECT_GT(sender.counters().merged_packets, 0u);
  EXPECT_LT(sender.counters().merged_packets,
            sender.counters().coalesced_sends)
      << "coalescing never actually merged anything";
}

TEST(ChaosSoak, CoalescedStormExactlyOnceFifoUnderFaults) {
  run_coalesced_storm(/*shards=*/1, chaos_seed() + 3);
}

TEST(ChaosSoak, CoalescedStormExactlyOnceFifoUnderFaultsSharded) {
  run_coalesced_storm(/*shards=*/4, chaos_seed() + 4);
}

/// Differential: the same deterministic fault-free traffic with coalescing
/// off and on must produce identical completion streams (cookie order,
/// envelopes, and payload bytes). The off run is the pre-coalescing
/// protocol byte-for-byte — wire headers carry channel_class 0 where the
/// reserved field always sat (pinned by Wire.CoalescingOff* in proto_test).
TEST(ChaosSoak, CoalescingOffIsByteIdenticalDifferential) {
  struct Run {
    std::vector<std::uint64_t> cookies;
    std::vector<Envelope> envs;
    std::vector<std::vector<std::byte>> payloads;
  };
  const auto run_once = [](bool coalesced) {
    EndpointConfig cfg = ChaosPair::default_ep();
    cfg.coalescing.enabled = coalesced;
    cfg.coalescing.max_messages = 8;
    ChaosPair p(rdma::FaultConfig{}, cfg);  // faults off: deterministic

    constexpr std::size_t kMessages = 512;
    Run out;
    std::vector<std::vector<std::byte>> bufs(kMessages);
    std::size_t done_count = 0;
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      const Tag tag = static_cast<Tag>(i % 3);
      const std::size_t bytes = 8 + (i % 8) * 8;
      bufs[i].resize(bytes);
      p.b_.post_receive({0, tag, 0}, bufs[i], i);
      p.a_.send(1, tag, 0, stamped(bytes, i));
      if (i % 16 == 15) {
        p.a_.progress();
        for (auto& c : p.b_.progress()) {
          out.cookies.push_back(c.cookie);
          out.envs.push_back(c.env);
          ++done_count;
        }
      }
    }
    for (int spin = 0; spin < 1000 && done_count < kMessages; ++spin) {
      p.a_.progress();
      for (auto& c : p.b_.progress()) {
        out.cookies.push_back(c.cookie);
        out.envs.push_back(c.env);
        ++done_count;
      }
    }
    for (auto& b : bufs) out.payloads.push_back(b);
    EXPECT_EQ(done_count, kMessages);
    return out;
  };

  const Run off = run_once(false);
  const Run on = run_once(true);
  EXPECT_EQ(off.cookies, on.cookies)
      << "coalescing changed the completion order";
  EXPECT_TRUE(off.envs == on.envs);
  EXPECT_EQ(off.payloads, on.payloads)
      << "coalescing changed delivered payload bytes";
}

// --- Mini-MPI under chaos ----------------------------------------------------

mpi::WorldOptions chaos_world(double drop, std::uint64_t seed) {
  mpi::WorldOptions opt;
  opt.fabric.fault.enabled = true;
  opt.fabric.fault.seed = seed;
  opt.fabric.fault.drop_probability = drop;
  opt.fabric.fault.duplicate_probability = 0.01;
  opt.fabric.fault.reorder_probability = 0.03;
  opt.fabric.fault.reorder_window = 3;
  opt.endpoint.reliability = fast_reliability();
  return opt;
}

TEST(ChaosSoak, MiniMpiHaloExchangeCompletes) {
  // 4 ranks in a ring, driven round-robin from one thread: every iteration
  // each rank exchanges a stamped halo with both neighbors. The mini-MPI
  // request layer asserts against double completion, so a duplicate that
  // slipped the dedup layer would abort the run.
  constexpr int kRanks = 4;
  constexpr std::uint64_t kIters = 250;
  mpi::World world(kRanks, chaos_world(0.03, chaos_seed()));
  const auto comm = world.proc(0).world_comm();

  for (std::uint64_t iter = 0; iter < kIters; ++iter) {
    std::vector<std::vector<std::byte>> rx(2 * kRanks);
    std::vector<std::vector<std::byte>> tx(2 * kRanks);
    std::vector<mpi::Request> reqs;
    std::vector<Rank> owner;
    for (int r = 0; r < kRanks; ++r) {
      auto& p = world.proc(r);
      const Rank left = (r + kRanks - 1) % kRanks;
      const Rank right = (r + 1) % kRanks;
      const auto ri = 2 * static_cast<std::size_t>(r);
      rx[ri].resize(64);
      rx[ri + 1].resize(64);
      reqs.push_back(p.irecv(rx[ri], left, /*tag=*/0, comm));
      owner.push_back(r);
      reqs.push_back(p.irecv(rx[ri + 1], right, /*tag=*/1, comm));
      owner.push_back(r);
    }
    for (int r = 0; r < kRanks; ++r) {
      auto& p = world.proc(r);
      const Rank left = (r + kRanks - 1) % kRanks;
      const Rank right = (r + 1) % kRanks;
      const auto ri = 2 * static_cast<std::size_t>(r);
      tx[ri] = stamped(64, iter * kRanks + static_cast<std::uint64_t>(r));
      tx[ri + 1] = tx[ri];
      reqs.push_back(p.isend(tx[ri], right, /*tag=*/0, comm));
      owner.push_back(r);
      reqs.push_back(p.isend(tx[ri + 1], left, /*tag=*/1, comm));
      owner.push_back(r);
    }
    bool all_done = false;
    for (int spin = 0; spin < 20000 && !all_done; ++spin) {
      for (int r = 0; r < kRanks; ++r) world.proc(r).progress();
      all_done = true;
      for (std::size_t i = 0; i < reqs.size(); ++i)
        if (!world.proc(owner[i]).test(reqs[i])) all_done = false;
    }
    ASSERT_TRUE(all_done) << "halo iteration " << iter << " wedged";
    for (int r = 0; r < kRanks; ++r) {
      const Rank left = (r + kRanks - 1) % kRanks;
      const Rank right = (r + 1) % kRanks;
      const auto ri = 2 * static_cast<std::size_t>(r);
      EXPECT_EQ(read_stamp(rx[ri]),
                iter * kRanks + static_cast<std::uint64_t>(left));
      EXPECT_EQ(read_stamp(rx[ri + 1]),
                iter * kRanks + static_cast<std::uint64_t>(right));
    }
  }
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(world.proc(r).stats().delivery_errors, 0u);
    EXPECT_EQ(world.proc(r).stats().send_failures, 0u);
  }
}

TEST(ChaosSoak, MiniMpiBlackHolePeerDegradesGracefully) {
  // A fully lossy fabric with a tiny retry budget: the isend never lands,
  // the delivery error surfaces through the Proc stats, and nothing crashes.
  mpi::WorldOptions opt;
  opt.fabric.fault.enabled = true;
  opt.fabric.fault.drop_probability = 1.0;
  opt.endpoint.reliability = fast_reliability();
  opt.endpoint.reliability.retry_budget = 3;
  mpi::World world(2, opt);
  const auto comm = world.proc(0).world_comm();

  const auto tx = stamped(32, 1);
  const auto req = world.proc(0).isend(tx, 1, 0, comm);
  EXPECT_FALSE(world.proc(0).failed(req)) << "queued reliably at first";
  for (int i = 0; i < 500; ++i) world.proc(0).progress();

  EXPECT_EQ(world.proc(0).stats().delivery_errors, 1u);
  const auto errs = world.proc(0).take_delivery_errors();
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_EQ(errs[0].peer, 1);

  // The dead channel now fails sends immediately.
  const auto req2 = world.proc(0).isend(tx, 1, 0, comm);
  EXPECT_TRUE(world.proc(0).failed(req2));
  EXPECT_EQ(world.proc(0).stats().send_failures, 1u);
}

// --- Fault-domain recovery (docs/RELIABILITY.md §5) --------------------------

/// Endpoint config with the recovery state machine armed: small retry
/// budget so faults escalate quickly, short quiesce so tests converge.
EndpointConfig recovery_ep(std::uint32_t retry_budget,
                           std::uint32_t max_attempts) {
  EndpointConfig c = ChaosPair::default_ep();
  c.reliability.retry_budget = retry_budget;
  c.recovery.enabled = true;
  c.recovery.max_attempts = max_attempts;
  c.recovery.quiesce_ns = 200;
  return c;
}

TEST(Recovery, RetryExhaustionResurrectsChannel) {
  // 12 consecutive drops outlive one retry budget (1 + 3 retries) three
  // times over: recovery must bump the epoch and replay until the fabric
  // heals, instead of declaring the message lost.
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.drop_first = 12;
  ChaosPair p(fault, recovery_ep(3, 16));

  std::vector<std::byte> buf(64);
  p.b_.post_receive({0, 5, 0}, buf, 1);
  ASSERT_TRUE(p.a_.send(1, 5, 0, stamped(64, 9)).ok);

  const auto done = p.pump(1, 20000);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].cookie, 1u);
  EXPECT_EQ(read_stamp(buf), 9u);
  EXPECT_GE(p.a_.counters().epoch_bumps, 1u);
  EXPECT_GE(p.a_.counters().recoveries_completed, 1u);
  EXPECT_EQ(p.a_.counters().messages_dropped, 0u)
      << "a recovered channel loses nothing";
  EXPECT_TRUE(p.a_.take_delivery_errors().empty());
  EXPECT_EQ(p.a_.peer_health(1), PeerHealth::kHealthy);
  EXPECT_EQ(p.a_.unacked(1), 0u);
}

TEST(Recovery, QpErrorRecoversAndPreservesFifo) {
  // Every 5th post wedges the QP. Recovery resets it, replays the window at
  // the new epoch, and the same-tag stream still completes in send order.
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.qp_error_period = 20;
  ChaosPair p(fault, recovery_ep(3, 16));

  constexpr std::uint64_t kN = 50;
  std::vector<std::vector<std::byte>> bufs(kN, std::vector<std::byte>(64));
  std::vector<Endpoint::RecvCompletion> done;
  auto pump_once = [&] {
    p.a_.progress();
    for (auto& c : p.b_.progress()) done.push_back(c);
  };
  for (std::uint64_t i = 0; i < kN; ++i) {
    p.b_.post_receive({0, 1, 0}, bufs[i], i);
    ASSERT_TRUE(p.a_.send(1, 1, 0, stamped(64, i)).ok);
    for (int s = 0; s < 8; ++s) pump_once();  // streaming, not batch
  }
  for (int s = 0; s < 4000 && done.size() < kN; ++s) pump_once();
  ASSERT_EQ(done.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(done[i].cookie, i) << "C2 must survive QP resets";
    EXPECT_EQ(read_stamp(bufs[i]), i);
  }
  EXPECT_GT(p.fabric_.injector()->stats().qp_errors, 0u);
  EXPECT_GE(p.a_.counters().epoch_bumps, 1u);
  EXPECT_EQ(p.a_.counters().messages_dropped, 0u);
  EXPECT_TRUE(p.a_.take_delivery_errors().empty());
}

TEST(Recovery, LaneLocalQpErrorDoesNotQuiesceSiblingLanes) {
  // Four senders on four distinct tx lanes into one 4-lane receiver; the
  // injector's lane mask confines the periodic QP wedge to lane 2 — i.e.
  // to rank 2's tx QP only. That sender must recover (epoch bump, window
  // replay at the new epoch) while the three sibling lanes never see an
  // epoch bump or a delivery error: a lane-local fault quiesces only the
  // channels bound to that lane.
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.qp_error_period = 20;
  fault.lane_mask = 1u << 2;

  constexpr unsigned kSenders = 4;
  constexpr std::uint64_t kPerSender = 64;
  rdma::Fabric fabric(ChaosPair::make_fabric(fault));
  EndpointConfig ep_cfg = recovery_ep(/*retry_budget=*/3, /*max_attempts=*/16);
  ep_cfg.ingress_lanes = 4;
  Endpoint receiver(fabric, 0, ep_cfg, match_cfg(), DpaConfig{});
  std::vector<std::unique_ptr<Endpoint>> senders;
  for (unsigned s = 0; s < kSenders; ++s) {
    senders.push_back(std::make_unique<Endpoint>(
        fabric, static_cast<Rank>(s + 1), ep_cfg, match_cfg(), DpaConfig{}));
    senders.back()->connect(receiver);
  }

  // done[s] collects rank s+1's completion stamps in arrival order.
  std::vector<std::vector<std::uint64_t>> done(kSenders);
  std::vector<std::vector<std::vector<std::byte>>> bufs(
      kSenders, std::vector<std::vector<std::byte>>(
                    kPerSender, std::vector<std::byte>(64)));
  std::size_t completions = 0;
  auto pump_once = [&] {
    for (auto& s : senders) s->progress();
    for (auto& c : receiver.progress()) {
      const unsigned s = static_cast<unsigned>(c.env.source - 1);
      done[s].push_back(read_stamp(bufs[s][c.cookie % kPerSender]));
      ++completions;
    }
  };
  for (std::uint64_t i = 0; i < kPerSender; ++i) {
    for (unsigned s = 0; s < kSenders; ++s) {
      receiver.post_receive({static_cast<Rank>(s + 1), 1, 0},
                            bufs[s][i], s * kPerSender + i);
      ASSERT_TRUE(senders[s]->send(0, 1, 0, stamped(64, i)).ok);
    }
    for (int spin = 0; spin < 8; ++spin) pump_once();  // streaming, not batch
  }
  for (int spin = 0; spin < 8000 && completions < kSenders * kPerSender; ++spin)
    pump_once();

  ASSERT_EQ(completions, kSenders * kPerSender);
  for (unsigned s = 0; s < kSenders; ++s) {
    ASSERT_EQ(done[s].size(), kPerSender);
    for (std::uint64_t i = 0; i < kPerSender; ++i)
      EXPECT_EQ(done[s][i], i) << "C2 must survive lane-" << ((s + 1) & 3)
                               << " QP resets";
    EXPECT_TRUE(senders[s]->take_delivery_errors().empty());
    EXPECT_EQ(senders[s]->counters().messages_dropped, 0u);
  }
  EXPECT_GT(fabric.injector()->stats().qp_errors, 0u);
  // senders[1] is rank 2 = tx lane 2: the only one the wedge may touch.
  EXPECT_GE(senders[1]->counters().epoch_bumps, 1u)
      << "the faulted lane never exercised a recovery";
  EXPECT_EQ(senders[0]->counters().epoch_bumps, 0u) << "lane 1 was quiesced";
  EXPECT_EQ(senders[2]->counters().epoch_bumps, 0u) << "lane 3 was quiesced";
  EXPECT_EQ(senders[3]->counters().epoch_bumps, 0u) << "lane 0 was quiesced";
  EXPECT_EQ(senders[1]->peer_health(0), PeerHealth::kHealthy);
}

TEST(Recovery, QpErrorWithoutRecoveryIsTerminal) {
  // RecoveryConfig off (the default): a QP error keeps the legacy
  // fail-the-channel semantics — typed delivery error, fail-fast sends, no
  // epoch machinery engaged.
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.qp_error_period = 1;  // the very first post errors the QP
  ChaosPair p(fault, ChaosPair::default_ep());

  p.a_.send(1, 1, 0, stamped(64, 0));
  for (int i = 0; i < 200; ++i) p.a_.progress();

  const auto errs = p.a_.take_delivery_errors();
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_EQ(errs[0].outcome, Outcome::kFailed);
  EXPECT_EQ(p.a_.counters().epoch_bumps, 0u);
  EXPECT_EQ(p.a_.counters().messages_dropped, 1u);

  const auto r = p.a_.send(1, 1, 0, stamped(64, 1));
  EXPECT_EQ(r.outcome, Outcome::kFailed);
  EXPECT_FALSE(r.ok);
}

TEST(Recovery, RecoveryOnIsByteIdenticalOnCleanFabric) {
  // Differential: with no faults, arming RecoveryConfig must not change a
  // single observable — same completion order, same payloads, zero
  // retransmits, zero epoch bumps, zero probes. Epoch 0 keeps the wire
  // byte-identical to the legacy format.
  struct Run {
    std::vector<std::uint64_t> cookies;
    std::vector<std::vector<std::byte>> payloads;
    std::uint64_t retransmits = 0;
  };
  const auto run_once = [](bool recovery) {
    EndpointConfig cfg = ChaosPair::default_ep();
    cfg.reliability = ReliabilityConfig{};  // stock timeouts
    cfg.reliability.mode = ReliabilityConfig::Mode::kOn;
    cfg.recovery.enabled = recovery;
    ChaosPair p(rdma::FaultConfig{}, cfg);

    constexpr std::size_t kMessages = 256;
    Run out;
    std::vector<std::vector<std::byte>> bufs(kMessages);
    std::size_t done_count = 0;
    auto harvest = [&] {
      p.a_.progress();
      for (auto& c : p.b_.progress()) {
        out.cookies.push_back(c.cookie);
        ++done_count;
      }
    };
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      const Tag tag = static_cast<Tag>(i % 3);
      const std::size_t bytes = 8 + (i % 8) * 8;
      bufs[i].resize(bytes);
      p.b_.post_receive({0, tag, 0}, bufs[i], i);
      p.a_.send(1, tag, 0, stamped(bytes, i));
      if (i % 16 == 15) harvest();
    }
    for (int spin = 0; spin < 2000 && done_count < kMessages; ++spin) harvest();
    EXPECT_EQ(done_count, kMessages);
    out.retransmits = p.a_.counters().retransmits;
    EXPECT_EQ(p.a_.counters().epoch_bumps, 0u);
    EXPECT_EQ(p.a_.counters().keepalives_sent, 0u);
    EXPECT_EQ(p.a_.counters().peers_suspected, 0u);
    for (auto& b : bufs) out.payloads.push_back(std::move(b));
    return out;
  };

  const Run off = run_once(false);
  const Run on = run_once(true);
  EXPECT_EQ(off.cookies, on.cookies)
      << "recovery machinery changed fault-free completion order";
  EXPECT_EQ(off.payloads, on.payloads);
  EXPECT_EQ(off.retransmits, on.retransmits);
}

TEST(Recovery, SilentPeerSuspectedThenDead) {
  // Keepalive probing over a clean fabric against a peer that simply stops
  // progressing: missed probes turn it Suspect, empty-window recoveries
  // burn the attempt budget, and the peer lands in the terminal Dead state.
  EndpointConfig cfg = ChaosPair::default_ep();
  cfg.reliability.mode = ReliabilityConfig::Mode::kOn;
  cfg.recovery.enabled = true;
  cfg.recovery.max_attempts = 2;
  cfg.recovery.quiesce_ns = 200;
  cfg.recovery.keepalive_idle_ns = 500;
  cfg.recovery.keepalive_miss_budget = 2;
  ChaosPair p(rdma::FaultConfig{}, cfg);

  // One delivered message proves the link before b falls silent.
  std::vector<std::byte> buf(64);
  p.b_.post_receive({0, 1, 0}, buf, 1);
  ASSERT_TRUE(p.a_.send(1, 1, 0, stamped(64, 1)).ok);
  ASSERT_EQ(p.pump(1).size(), 1u);
  ASSERT_EQ(p.a_.peer_health(1), PeerHealth::kHealthy);

  bool saw_suspect = false;
  for (int i = 0; i < 3000 && p.a_.peer_health(1) != PeerHealth::kDead; ++i) {
    p.a_.progress();  // b never progresses: probes go unanswered
    if (p.a_.peer_health(1) == PeerHealth::kSuspect) saw_suspect = true;
  }
  EXPECT_TRUE(saw_suspect) << "death must pass through Suspect first";
  EXPECT_EQ(p.a_.peer_health(1), PeerHealth::kDead);
  EXPECT_GE(p.a_.counters().keepalives_sent, 2u);
  EXPECT_GE(p.a_.counters().peers_suspected, 1u);

  // Sends to a Dead peer fail fast with the typed outcome.
  const auto r = p.a_.send(1, 1, 0, stamped(64, 2));
  EXPECT_EQ(r.outcome, Outcome::kPeerDead);
  EXPECT_FALSE(r.ok);
  const auto errs = p.a_.take_delivery_errors();
  ASSERT_FALSE(errs.empty());
  EXPECT_EQ(errs.back().outcome, Outcome::kPeerDead);
  EXPECT_EQ(p.a_.counters().messages_dropped, 1u);
}

TEST(Recovery, PeerDeathFreesRendezvousStagingAndCoalesceBuffer) {
  // A black-hole link with a tight attempt budget: the peer dies holding a
  // staged rendezvous payload and a coalesce buffer. Death must surface
  // every queued message as kPeerDead and release the staging.
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.drop_probability = 1.0;
  EndpointConfig cfg = recovery_ep(2, 2);
  cfg.coalescing.enabled = true;
  cfg.coalescing.max_messages = 8;
  cfg.coalescing.eligible_bytes = 64;
  ChaosPair p(fault, cfg);

  ASSERT_TRUE(p.a_.send(1, 4, 0, stamped(2048, 1)).ok);  // rendezvous: staged
  ASSERT_TRUE(p.a_.send(1, 4, 0, stamped(32, 2)).ok);    // eager: coalesced
  EXPECT_EQ(p.a_.pending_rendezvous(), 1u);

  for (int i = 0; i < 2000 && p.a_.peer_health(1) != PeerHealth::kDead; ++i)
    p.a_.progress();

  EXPECT_EQ(p.a_.peer_health(1), PeerHealth::kDead);
  EXPECT_EQ(p.a_.pending_rendezvous(), 0u)
      << "peer death must release staged rendezvous payloads";
  const auto errs = p.a_.take_delivery_errors();
  ASSERT_GE(errs.size(), 2u) << "both queued messages surface an error";
  for (const auto& e : errs) EXPECT_EQ(e.outcome, Outcome::kPeerDead);
  EXPECT_GE(p.a_.counters().epoch_bumps, 1u)
      << "death followed failed recovery attempts, not a straight fail";
  EXPECT_EQ(p.a_.unacked(1), 0u);
}

// --- Chaos recovery storm ----------------------------------------------------

/// Recovery soak: 10k stamped messages across two tag streams and mixed
/// eager/rendezvous sizes, over a fabric that — on top of the usual
/// drop/dup/corrupt/reorder noise — flaps the link down for 25-packet
/// bursts and wedges the QP every 503 posts. The recovery machinery must
/// resurrect the channel through every episode: exactly-once, per-(peer,
/// tag) FIFO, zero lost messages, and at least one completed recovery.
void run_recovery_storm(unsigned shards, std::uint64_t seed) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.seed = seed;
  fault.drop_probability = 0.02;
  fault.duplicate_probability = 0.01;
  fault.corrupt_probability = 0.01;
  fault.reorder_probability = 0.03;
  fault.reorder_window = 3;
  fault.flap_period = 97;  // correlated outages: 25 drops every 97 packets
  fault.flap_down = 25;
  fault.qp_error_period = 503;

  constexpr std::size_t kMessages = 10'000;
  constexpr std::size_t kWindow = 16;
  constexpr std::uint32_t kTags = 2;

  rdma::Fabric fabric(ChaosPair::make_fabric(fault));
  EndpointConfig ep_cfg = recovery_ep(/*retry_budget=*/3, /*max_attempts=*/64);
  MatchConfig recv_cfg = match_cfg();
  recv_cfg.shards = shards;
  Endpoint receiver(fabric, 0, ep_cfg, recv_cfg, DpaConfig{});
  Endpoint sender(fabric, 1, ep_cfg, match_cfg(), DpaConfig{});
  sender.connect(receiver);
  ASSERT_EQ(receiver.dpa().sharded_engine().shard_count(), shards);

  ListMatcher oracle;
  std::map<std::uint64_t, std::uint64_t> expected;  // cookie -> message seq
  std::vector<std::vector<std::byte>> bufs(kMessages);
  std::vector<std::vector<std::byte>> sent(kMessages);
  std::vector<bool> seen(kMessages, false);
  std::map<Tag, std::uint64_t> last_stamp;
  std::size_t completions = 0;
  bool exactly_once = true, in_order = true, payload_ok = true,
       pairing_ok = true;

  auto harvest = [&](const std::vector<Endpoint::RecvCompletion>& done) {
    for (const auto& c : done) {
      ++completions;
      if (c.cookie >= kMessages || seen[c.cookie]) {
        exactly_once = false;
        continue;
      }
      seen[c.cookie] = true;
      const std::uint64_t stamp = read_stamp(bufs[c.cookie]);
      if (bufs[c.cookie] != sent[stamp]) payload_ok = false;
      const auto it = expected.find(c.cookie);
      if (it == expected.end() || it->second != stamp) pairing_ok = false;
      const auto lit = last_stamp.find(c.env.tag);
      if (lit != last_stamp.end() && stamp <= lit->second) in_order = false;
      last_stamp[c.env.tag] = stamp;
    }
  };
  auto pump_all = [&] {
    sender.progress();
    harvest(receiver.progress());
  };

  for (std::uint64_t i = 0; i < kMessages; ++i) {
    const Tag tag = static_cast<Tag>(i % kTags);
    const std::size_t bytes = (i % 7 == 3) ? 2048 : 64;  // mixed protocol
    bufs[i].resize(bytes);
    const auto pr = receiver.post_receive({1, tag, 0}, bufs[i], i);
    ASSERT_NE(pr.outcome, Outcome::kFallback);
    if (pr.outcome == Outcome::kCompleted) harvest({pr.completion});
    EXPECT_FALSE(oracle.post({1, tag, 0}, i).has_value())
        << "storm posts receives before their messages";
    sent[i] = stamped(bytes, i);
    const auto r = sender.send(0, tag, 0, sent[i]);
    if (!r.ok) exactly_once = false;  // reliable sends must queue
    if (const auto m = oracle.arrive({1, tag, 0}, i); m.has_value())
      expected[*m] = i;
    if (i + 1 - completions >= kWindow) {
      for (int spin = 0; spin < 4000 && i + 1 - completions >= kWindow; ++spin)
        pump_all();
    }
  }
  for (int spin = 0; spin < 20000 && completions < kMessages; ++spin)
    pump_all();
  for (int spin = 0; spin < 100; ++spin) pump_all();  // settle: no extras

  EXPECT_EQ(completions, kMessages);
  EXPECT_TRUE(exactly_once) << "a posted receive completed 0 or 2+ times";
  EXPECT_TRUE(in_order) << "per-(peer,tag) FIFO violated across recoveries";
  EXPECT_TRUE(payload_ok) << "replayed payload differs from the sent bytes";
  EXPECT_TRUE(pairing_ok) << "matching disagrees with the ListMatcher oracle";
  EXPECT_EQ(sender.take_delivery_errors().size(), 0u);
  EXPECT_EQ(sender.counters().messages_dropped, 0u)
      << "recovery must not lose messages";
  EXPECT_GE(sender.counters().epoch_bumps, 1u)
      << "the storm never exercised a channel recovery";
  EXPECT_GE(sender.counters().recoveries_completed, 1u);
  EXPECT_NE(sender.peer_health(0), PeerHealth::kDead);
  const auto& fs = fabric.injector()->stats();
  EXPECT_GT(fs.flap_drops, 0u) << "flap episodes never fired";
  EXPECT_GT(fs.qp_errors, 0u) << "forced QP errors never fired";
}

TEST(ChaosRecovery, StormFullRecoveryZeroLoss) {
  run_recovery_storm(/*shards=*/1, chaos_seed() + 10);
}

TEST(ChaosRecovery, StormFullRecoveryZeroLossSharded) {
  run_recovery_storm(/*shards=*/4, chaos_seed() + 11);
}

// --- Multi-lane ingress under chaos (docs/SHARDING.md, "Ingress lanes") ------

/// Incast soak over four ingress lanes with asymmetric chaos. Every
/// endpoint runs ingress_lanes = 4, so the four senders' tx lanes spread
/// as steer_lane(rank, 3): ranks 1..4 land on lanes 1, 2, 3, 0.
/// FaultConfig::lane_mask arms drop/dup/reorder/flap noise on lanes 1 and
/// 2 ONLY — two senders stream through correlated outages while the other
/// two ride clean lanes. Exactly-once, per-(sender, tag) FIFO and a
/// ListMatcher pairing oracle must hold across all four streams, and the
/// asymmetry itself must be visible: faulted-lane senders retransmit,
/// clean-lane senders never even bump an epoch.
void run_multi_lane_incast(unsigned shards, std::uint64_t seed) {
  rdma::FaultConfig fault;
  fault.enabled = true;
  fault.seed = seed;
  fault.drop_probability = 0.03;
  fault.duplicate_probability = 0.02;
  fault.reorder_probability = 0.04;
  fault.reorder_window = 3;
  fault.flap_period = 211;  // correlated outages, faulted lanes only
  fault.flap_down = 9;
  fault.lane_mask = 0b0110;  // chaos on lanes 1 and 2; lanes 0 and 3 clean

  constexpr std::size_t kMessages = 10'000;
  constexpr std::size_t kWindow = 16;
  constexpr unsigned kSenders = 4;
  constexpr unsigned kLanes = 4;
  constexpr std::uint32_t kTags = 2;

  rdma::Fabric fabric(ChaosPair::make_fabric(fault));
  EndpointConfig ep_cfg = recovery_ep(/*retry_budget=*/3, /*max_attempts=*/64);
  ep_cfg.ingress_lanes = kLanes;
  MatchConfig recv_cfg = match_cfg();
  recv_cfg.shards = shards;
  Endpoint receiver(fabric, 0, ep_cfg, recv_cfg, DpaConfig{});
  std::vector<std::unique_ptr<Endpoint>> senders;
  for (unsigned s = 0; s < kSenders; ++s) {
    senders.push_back(std::make_unique<Endpoint>(
        fabric, static_cast<Rank>(s + 1), ep_cfg, match_cfg(), DpaConfig{}));
    senders.back()->connect(receiver);
  }
  ASSERT_EQ(receiver.ingress_lanes(), kLanes);
  ASSERT_EQ(receiver.dpa().sharded_engine().shard_count(), shards);

  ListMatcher oracle;
  std::map<std::uint64_t, std::uint64_t> expected;  // cookie -> message seq
  std::vector<std::vector<std::byte>> bufs(kMessages);
  std::vector<std::vector<std::byte>> sent(kMessages);
  std::vector<bool> seen(kMessages, false);
  std::map<std::pair<Rank, Tag>, std::uint64_t> last_stamp;
  std::size_t completions = 0;
  bool exactly_once = true, in_order = true, payload_ok = true,
       pairing_ok = true;

  auto harvest = [&](const std::vector<Endpoint::RecvCompletion>& done) {
    for (const auto& c : done) {
      ++completions;
      if (c.cookie >= kMessages || seen[c.cookie]) {
        exactly_once = false;
        continue;
      }
      seen[c.cookie] = true;
      const std::uint64_t stamp = read_stamp(bufs[c.cookie]);
      if (bufs[c.cookie] != sent[stamp]) payload_ok = false;
      const auto it = expected.find(c.cookie);
      if (it == expected.end() || it->second != stamp) pairing_ok = false;
      const std::pair<Rank, Tag> stream{c.env.source, c.env.tag};
      const auto lit = last_stamp.find(stream);
      if (lit != last_stamp.end() && stamp <= lit->second) in_order = false;
      last_stamp[stream] = stamp;
    }
  };
  auto pump_all = [&] {
    for (auto& s : senders) s->progress();
    harvest(receiver.progress());
  };

  for (std::uint64_t i = 0; i < kMessages; ++i) {
    const unsigned s = static_cast<unsigned>(i % kSenders);
    const Rank src = static_cast<Rank>(s + 1);
    const Tag tag = static_cast<Tag>((i / kSenders) % kTags);
    const std::size_t bytes = (i % 7 == 3) ? 2048 : 64;  // mixed protocol
    bufs[i].resize(bytes);
    const auto pr = receiver.post_receive({src, tag, 0}, bufs[i], i);
    ASSERT_NE(pr.outcome, Outcome::kFallback);
    if (pr.outcome == Outcome::kCompleted) harvest({pr.completion});
    EXPECT_FALSE(oracle.post({src, tag, 0}, i).has_value())
        << "incast posts receives before their messages";
    sent[i] = stamped(bytes, i);
    const auto r = senders[s]->send(0, tag, 0, sent[i]);
    if (!r.ok) exactly_once = false;  // reliable sends must queue
    if (const auto m = oracle.arrive({src, tag, 0}, i); m.has_value())
      expected[*m] = i;
    if (i + 1 - completions >= kWindow) {
      for (int spin = 0; spin < 4000 && i + 1 - completions >= kWindow; ++spin)
        pump_all();
    }
  }
  for (int spin = 0; spin < 20000 && completions < kMessages; ++spin)
    pump_all();
  for (int spin = 0; spin < 100; ++spin) pump_all();  // settle: no extras

  EXPECT_EQ(completions, kMessages);
  EXPECT_TRUE(exactly_once) << "a posted receive completed 0 or 2+ times";
  EXPECT_TRUE(in_order) << "C2 violated within a (peer, tag) stream";
  EXPECT_TRUE(payload_ok) << "delivered payload differs from the sent bytes";
  EXPECT_TRUE(pairing_ok) << "matching disagrees with the ListMatcher oracle";
  for (auto& s : senders) {
    EXPECT_EQ(s->take_delivery_errors().size(), 0u);
    EXPECT_EQ(s->counters().messages_dropped, 0u);
  }
  // The asymmetry: rank 1 -> lane 1 and rank 2 -> lane 2 fought the
  // injector; rank 3 -> lane 3 and rank 4 -> lane 0 never saw a fault, so
  // their reliability layer stayed on the transmit-once fast path.
  EXPECT_GT(senders[0]->counters().retransmits, 0u) << "lane 1 rode clean?";
  EXPECT_GT(senders[1]->counters().retransmits, 0u) << "lane 2 rode clean?";
  EXPECT_EQ(senders[2]->counters().epoch_bumps, 0u)
      << "faults leaked onto clean lane 3";
  EXPECT_EQ(senders[3]->counters().epoch_bumps, 0u)
      << "faults leaked onto clean lane 0";
  EXPECT_GT(fabric.injector()->stats().flap_drops, 0u);
  // Traffic really spread across every ingress lane (and every shard).
  for (unsigned l = 0; l < kLanes; ++l)
    EXPECT_GT(receiver.lane_cqes(l), 0u) << "lane " << l << " saw no CQEs";
  const auto& se = receiver.dpa().sharded_engine();
  for (unsigned k = 0; k < se.shard_count(); ++k)
    EXPECT_GT(se.shard(k).stats().messages_processed, 0u)
        << "shard " << k << " never saw a message";
}

TEST(ChaosSoak, MultiLaneIncastExactlyOnceFifoUnderFaults) {
  run_multi_lane_incast(/*shards=*/1, chaos_seed() + 20);
}

TEST(ChaosSoak, MultiLaneIncastExactlyOnceFifoUnderFaultsSharded) {
  run_multi_lane_incast(/*shards=*/4, chaos_seed() + 21);
}

TEST(ChaosSoak, IngressLanesOffIsByteIdenticalDifferential) {
  // Three runs of the same clean-fabric traffic: the stock config, an
  // explicit ingress_lanes = 1 (must be the stock path, bit for bit), and
  // ingress_lanes = 4. Single-source traffic rides exactly one tx lane, so
  // even the 4-lane run must reproduce the app-visible completion stream
  // unchanged — and never engage the epoch-announce machinery.
  struct Run {
    std::vector<std::uint64_t> cookies;
    std::vector<Envelope> envs;
    std::vector<std::vector<std::byte>> payloads;
    std::uint64_t keepalives = 0;
  };
  const auto run_once = [](unsigned lanes) {
    EndpointConfig cfg = ChaosPair::default_ep();
    if (lanes != 0) cfg.ingress_lanes = lanes;  // 0 = leave the stock default
    ChaosPair p(rdma::FaultConfig{}, cfg);  // faults off: deterministic

    constexpr std::size_t kMessages = 512;
    Run out;
    std::vector<std::vector<std::byte>> bufs(kMessages);
    std::size_t done_count = 0;
    const auto drain = [&] {
      p.a_.progress();
      for (auto& c : p.b_.progress()) {
        out.cookies.push_back(c.cookie);
        out.envs.push_back(c.env);
        ++done_count;
      }
    };
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      const Tag tag = static_cast<Tag>(i % 3);
      const std::size_t bytes = 8 + (i % 8) * 8;
      bufs[i].resize(bytes);
      p.b_.post_receive({0, tag, 0}, bufs[i], i);
      p.a_.send(1, tag, 0, stamped(bytes, i));
      if (i % 16 == 15) drain();
    }
    for (int spin = 0; spin < 1000 && done_count < kMessages; ++spin) drain();
    for (auto& b : bufs) out.payloads.push_back(b);
    out.keepalives =
        p.a_.counters().keepalives_sent + p.b_.counters().keepalives_sent;
    EXPECT_EQ(done_count, kMessages);
    return out;
  };

  const Run stock = run_once(0);
  const Run one = run_once(1);
  const Run four = run_once(4);
  EXPECT_EQ(stock.cookies, one.cookies)
      << "ingress_lanes=1 diverged from the stock single-lane path";
  EXPECT_TRUE(stock.envs == one.envs);
  EXPECT_EQ(stock.payloads, one.payloads);
  EXPECT_EQ(stock.cookies, four.cookies)
      << "lane fan-out changed a single-stream completion order";
  EXPECT_TRUE(stock.envs == four.envs);
  EXPECT_EQ(stock.payloads, four.payloads);
  EXPECT_EQ(four.keepalives, 0u)
      << "a clean fabric must never trigger an epoch announce";
}

// --- DPA watchdog degradation (docs/RELIABILITY.md §5) -----------------------

TEST(Watchdog, ForcedDemotionIsResultIdenticalAndRepromotes) {
  // Differential at the mini-MPI layer: the same 300-message traffic with
  // and without a mid-stream forced demotion must complete with identical
  // statuses and payloads — host software matching is result-identical to
  // the NIC engine — and the demoted DPA must re-promote once the host
  // domain drains.
  struct Run {
    std::vector<mpi::Status> statuses;
    std::vector<std::vector<std::byte>> payloads;
  };
  constexpr std::uint64_t kN = 300;
  const auto run_once = [&](bool demote_midway) {
    mpi::WorldOptions opt;
    opt.endpoint.reliability = fast_reliability();
    opt.dpa.watchdog.enabled = true;
    opt.dpa.watchdog.healthy_window = 4;
    mpi::World world(2, opt);
    const auto comm = world.proc(0).world_comm();

    Run out;
    std::vector<std::vector<std::byte>> rx(kN);
    std::vector<std::vector<std::byte>> tx(kN);
    std::vector<mpi::Request> rreqs, sreqs;
    for (std::uint64_t i = 0; i < kN; ++i) {
      const Tag tag = static_cast<Tag>(i % 3);
      const std::size_t bytes = (i % 9 == 7) ? 2048 : 64;
      rx[i].resize(bytes);
      rreqs.push_back(world.proc(1).irecv(rx[i], 0, tag, comm));
      tx[i] = stamped(bytes, i);
      sreqs.push_back(world.proc(0).isend(tx[i], 1, tag, comm));
      if (demote_midway && i == kN / 2)
        world.endpoint(1).dpa().force_demote();
      world.proc(0).progress();
      world.proc(1).progress();
    }
    for (int spin = 0; spin < 20000; ++spin) {
      world.proc(0).progress();
      world.proc(1).progress();
      bool all = true;
      for (auto& r : rreqs)
        if (!world.proc(1).test(r)) all = false;
      for (auto& r : sreqs)
        if (!world.proc(0).test(r)) all = false;
      if (all) break;
    }
    for (std::uint64_t i = 0; i < kN; ++i) {
      mpi::Status st{};
      EXPECT_TRUE(world.proc(1).test(rreqs[i], &st)) << "receive " << i;
      EXPECT_FALSE(world.proc(1).failed(rreqs[i]));
      out.statuses.push_back(st);
      out.payloads.push_back(rx[i]);
    }
    EXPECT_EQ(world.proc(1).stats().delivery_errors, 0u);

    auto& ep = world.endpoint(1);
    if (demote_midway) {
      EXPECT_GE(ep.counters().watchdog_demotions, 1u);
      // With the host domain drained, hysteresis re-promotes the DPA.
      for (int spin = 0; spin < 2000 && ep.dpa_degraded(); ++spin)
        world.proc(1).progress();
      EXPECT_FALSE(ep.dpa_degraded()) << "DPA never re-promoted";
      EXPECT_GE(ep.counters().degraded_windows, 1u);
    } else {
      EXPECT_EQ(ep.counters().watchdog_demotions, 0u);
      EXPECT_FALSE(ep.dpa_degraded());
    }
    return out;
  };

  const Run baseline = run_once(false);
  const Run demoted = run_once(true);
  ASSERT_EQ(baseline.statuses.size(), demoted.statuses.size());
  for (std::size_t i = 0; i < baseline.statuses.size(); ++i) {
    EXPECT_EQ(baseline.statuses[i].source, demoted.statuses[i].source);
    EXPECT_EQ(baseline.statuses[i].tag, demoted.statuses[i].tag);
    EXPECT_EQ(baseline.statuses[i].bytes, demoted.statuses[i].bytes);
  }
  EXPECT_EQ(baseline.payloads, demoted.payloads)
      << "host-fallback matching delivered different bytes";
}

}  // namespace
}  // namespace otm::proto
