file(REMOVE_RECURSE
  "libotm_baseline.a"
)
