// otmlint-fixture: src/proto/fixture.cpp
// R8 bad twin: raw numeric bit masks on the wire flags word. The high 16
// bits carry the channel epoch, so a magic mask silently collides with it.
#include <cstdint>

namespace otm::proto {

struct WireHeader {
  std::uint32_t flags = 0;
};

bool is_reliable(const WireHeader& h) {
  return (h.flags & 0x1u) != 0;  // magic bit instead of kWireFlagReliable
}

void mark_merged(WireHeader& h) {
  h.flags |= 2u;  // magic bit instead of kWireFlagMerged
}

void stomp_epoch(WireHeader* h) {
  h->flags &= 0xffff;  // hand-rolled epoch mask instead of kWireEpochMask
}

}  // namespace otm::proto
