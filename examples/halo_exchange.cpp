// Halo exchange: the communication pattern that motivates bin-based
// matching (Sec. I/V) — every rank of a 3D process grid exchanges ghost
// cells with its 6 face neighbors each iteration, receive-first.
//
//   $ ./halo_exchange [--nx=4 --ny=4 --nz=4 --iters=5]
//
// Runs the pattern twice — once on the offloaded optimistic matcher, once
// on the traditional software list matcher — verifies the transported
// data, and contrasts the matching statistics.
#include <cstdio>
#include <vector>

#include "mpi/mpi.hpp"
#include "util/args.hpp"

using namespace otm;

namespace {

struct GridDims {
  int nx, ny, nz;
  int size() const { return nx * ny * nz; }
  Rank id(int x, int y, int z) const {
    const int wx = ((x % nx) + nx) % nx;
    const int wy = ((y % ny) + ny) % ny;
    const int wz = ((z % nz) + nz) % nz;
    return static_cast<Rank>((wz * ny + wy) * nx + wx);
  }
};

std::vector<std::byte> face_payload(Rank owner, int direction, int iter) {
  std::vector<std::byte> v(256);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::byte>((static_cast<std::size_t>(owner) * 7 +
                                   static_cast<std::size_t>(direction) * 13 +
                                   static_cast<std::size_t>(iter) * 31 + i) &
                                  0xFF);
  return v;
}

std::uint64_t run(mpi::World& world, const GridDims& g, int iters) {
  std::uint64_t checksum = 0;
  world.run([&](mpi::Proc& proc) {
    const mpi::Comm comm = proc.world_comm();
    const Rank me = proc.rank();
    const int x = me % g.nx;
    const int y = (me / g.nx) % g.ny;
    const int z = me / (g.nx * g.ny);
    const int offsets[6][3] = {{+1, 0, 0}, {-1, 0, 0}, {0, +1, 0},
                               {0, -1, 0}, {0, 0, +1}, {0, 0, -1}};

    for (int iter = 0; iter < iters; ++iter) {
      std::vector<std::vector<std::byte>> rx(6, std::vector<std::byte>(256));
      std::vector<std::vector<std::byte>> tx;
      std::vector<mpi::Request> reqs;
      // Receive-first: post all ghost-cell receives before sending
      // (Sec. II-A: avoids unexpected messages).
      for (int d = 0; d < 6; ++d) {
        const Rank nbr = g.id(x + offsets[d][0], y + offsets[d][1],
                              z + offsets[d][2]);
        reqs.push_back(proc.irecv(rx[static_cast<std::size_t>(d)], nbr,
                                  static_cast<Tag>(d), comm));
      }
      for (int d = 0; d < 6; ++d) {
        const Rank nbr = g.id(x + offsets[d][0], y + offsets[d][1],
                              z + offsets[d][2]);
        // The neighbor receives this face under the mirrored direction.
        tx.push_back(face_payload(me, d, iter));
        proc.send(tx.back(), nbr, static_cast<Tag>(d ^ 1), comm);
      }
      proc.wait_all(reqs);
      // Verify: face d came from the neighbor in direction d, who sent it
      // as its direction (d ^ 1).
      for (int d = 0; d < 6; ++d) {
        const Rank nbr = g.id(x + offsets[d][0], y + offsets[d][1],
                              z + offsets[d][2]);
        const auto expect = face_payload(nbr, d ^ 1, iter);
        if (rx[static_cast<std::size_t>(d)] != expect) {
          std::fprintf(stderr, "rank %d: bad ghost data (dir %d iter %d)\n",
                       me, d, iter);
          std::abort();
        }
      }
    }
  });
  for (Rank r = 0; r < g.size(); ++r) {
    if (const MatchStats* s = world.proc(r).match_stats())
      checksum += s->messages_matched;
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const GridDims g{static_cast<int>(args.get_int("nx", 3)),
                   static_cast<int>(args.get_int("ny", 3)),
                   static_cast<int>(args.get_int("nz", 2))};
  const int iters = static_cast<int>(args.get_int("iters", 4));

  std::printf("halo exchange on a %dx%dx%d grid (%d ranks), %d iterations\n",
              g.nx, g.ny, g.nz, g.size(), iters);

  mpi::WorldOptions offload;
  offload.backend = mpi::Backend::kOffloadDpa;
  mpi::World world_offload(g.size(), offload);
  run(world_offload, g, iters);

  mpi::WorldOptions software;
  software.backend = mpi::Backend::kSoftwareList;
  mpi::World world_sw(g.size(), software);
  run(world_sw, g, iters);

  std::printf("data verified on both backends.\n\n");
  std::printf("offloaded matching stats per rank (rank 0 shown):\n");
  const MatchStats& s = *world_offload.proc(0).match_stats();
  std::printf("  posted=%llu  matched=%llu  unexpected=%llu\n",
              static_cast<unsigned long long>(s.receives_posted),
              static_cast<unsigned long long>(s.messages_matched),
              static_cast<unsigned long long>(s.messages_unexpected));
  std::printf("  search attempts=%llu over %llu messages (avg %.2f, the\n"
              "  low queue depth Fig. 7 predicts for halo patterns)\n",
              static_cast<unsigned long long>(s.match_attempts),
              static_cast<unsigned long long>(s.messages_processed),
              static_cast<double>(s.match_attempts) /
                  static_cast<double>(s.messages_processed + s.receives_posted));
  return 0;
}
