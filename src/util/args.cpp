#include "util/args.hpp"

#include <cstdlib>
#include <sstream>

namespace otm {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "true";
    }
  }
}

bool ArgParser::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string ArgParser::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second.empty();
}

std::vector<std::int64_t> ArgParser::get_int_list(
    const std::string& key, std::vector<std::int64_t> def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace otm
