// otmlint-fixture: src/proto/fixture.cpp
// R10 bad twin: the steering hash inlined by hand. Each of these picks an
// ingress lane without going through steer_lane(), so the copy can diverge
// from the RSS indirection and split one (peer, tag-class) flow across two
// lanes' reliable-delivery windows.
#include <cstdint>

namespace otm::proto {

struct Envelope {
  std::uint32_t source = 0;
};

unsigned pick_lane_modulo(const Envelope& env, unsigned lanes) {
  return env.source % lanes;  // hand-rolled hash, slow form
}

unsigned pick_lane_mask(const Envelope& env, unsigned lanes) {
  return env.source & (lanes - 1);  // hand-rolled hash, fast form
}

unsigned pick_lane_member_mask(const Envelope& env, std::uint32_t lane_mask) {
  return env.source & lane_mask;  // same hash against a cached mask
}

}  // namespace otm::proto
