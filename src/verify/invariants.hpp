// Machine-checkable invariant oracles (docs/VERIFICATION.md).
//
// One Oracle observes every endpoint of a small simulated world through
// proto::VerifyHook and checks the protocol's safety invariants after
// every observation — each violation is recorded with enough context to
// serialize a counterexample schedule (verify/explorer.hpp):
//
//   epoch_fence            accepted packet implies pkt_epoch >= rx_epoch
//   ack_fence              accepted ack implies ack_epoch == channel_epoch
//   send_window            sent-unacked in flight <= window_limit
//   health_transition      PeerHealth moves only along documented edges;
//                          kDead is terminal
//   coalesce_conservation  a channel never flushes more sub-messages than
//                          it buffered; a completed run leaves none behind
//   label_monotone         the DPA posting-label watermark (C1) never
//                          regresses, sampled after every scheduler step
//   app_fifo               application-level per-(src, dst, tag) stamps
//                          arrive strictly increasing (FIFO, exactly-once;
//                          scenario programs feed note_app_recv)
//   liveness               a scenario expecting completion must not
//                          deadlock (checked by final_check)
//
// The oracle is an observer: it never mutates the world, so a run with an
// oracle attached is byte-identical to one without.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "proto/verify_hook.hpp"

namespace otm::mpi {
class World;
}

namespace otm::verify {

/// One invariant violation, in counterexample-serializable form.
struct Violation {
  std::string invariant;  ///< short id, e.g. "epoch_fence"
  std::string detail;     ///< human-readable context
};

class Oracle final : public proto::VerifyHook {
 public:
  /// The world must outlive the oracle (offload backend — the oracles
  /// observe the reliable-delivery protocol, which the software baseline
  /// does not have).
  explicit Oracle(mpi::World& world);

  // --- proto::VerifyHook observations -------------------------------------
  void on_packet_rx(Rank rx_rank, Rank from, std::uint16_t channel_class,
                    std::uint64_t seq, std::uint16_t pkt_epoch,
                    std::uint16_t rx_epoch, bool accepted,
                    bool stashed) override;
  void on_ack_rx(Rank rank, Rank from, std::uint16_t channel_class,
                 std::uint16_t ack_epoch, std::uint16_t channel_epoch,
                 std::uint64_t cum_seq, bool accepted) override;
  void on_window(Rank rank, Rank dst, std::uint16_t channel_class,
                 std::size_t in_flight, std::size_t window_limit) override;
  void on_peer_health(Rank rank, Rank peer, std::uint8_t from,
                      std::uint8_t to) override;
  void on_coalesce_append(Rank rank, Rank dst, std::uint16_t channel_class,
                          std::uint32_t buffered) override;
  void on_coalesce_flush(Rank rank, Rank dst, std::uint16_t channel_class,
                         std::uint32_t flushed) override;

  /// Application-level delivery stamp: scenario programs call this for
  /// every successfully received message, stamping payloads with the
  /// sender's per-(src, dst, tag) sequence number. Checks app_fifo.
  void note_app_recv(Rank rank, Rank src, Tag tag, std::uint64_t stamp);

  /// Scheduler step checkpoint (WorldScheduler::Config::step_hook):
  /// samples the per-rank C1 posting-label watermark for label_monotone.
  void step_check();

  /// End-of-run checks: liveness (completion expected but the scheduler
  /// deadlocked) and terminal coalesce conservation (a completed run must
  /// not strand buffered sub-messages).
  void final_check(bool completed, bool expect_completion);

  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }

  /// Protocol-state digest folded over every endpoint's
  /// verify_fingerprint() — the endpoint half of the explorer's
  /// state-fingerprint cache key.
  std::uint64_t state_fingerprint() const;

 private:
  void record(const char* invariant, std::string detail);

  mpi::World* world_;
  std::vector<Violation> violations_;

  /// label_monotone: last sampled watermark per rank.
  std::vector<std::uint64_t> last_labels_;

  /// coalesce_conservation: outstanding (appended, not yet flushed)
  /// sub-messages per (rank, dst, channel_class).
  std::map<std::tuple<Rank, Rank, std::uint16_t>, std::int64_t> coalesce_out_;

  /// app_fifo: last stamp seen per (receiver, src, tag) stream.
  std::map<std::tuple<Rank, Rank, Tag>, std::uint64_t> app_last_;
};

}  // namespace otm::verify
