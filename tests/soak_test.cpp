// Scale soak battery (docs/SCALING.md): NERSC-style traces replayed
// through the FULL offloaded stack — Endpoint channels, reliability
// windows, sharded DPA matching — at 128-1024 simulated ranks multiplexed
// by the event-driven WorldScheduler. The oracle at every scale is the
// ListMatcher differential plus the exactly-once and per-stream FIFO
// asserts the replay driver computes as it harvests completions.
#include <gtest/gtest.h>

#include <cstdlib>

#include "trace/replay.hpp"
#include "trace/synthetic.hpp"

namespace otm::trace {
namespace {

std::uint64_t chaos_seed() {
  if (const char* s = std::getenv("OTM_CHAOS_SEED")) {
    const auto v = std::strtoull(s, nullptr, 10);
    if (v != 0) return v;
  }
  return 42;
}

Trace app(const char* name) {
  const AppInfo* info = find_app(name);
  EXPECT_NE(info, nullptr) << name << " missing from the application suite";
  return info == nullptr ? Trace{} : info->make();
}

void expect_clean(const ReplayResult& r, const char* what) {
  EXPECT_TRUE(r.completed) << what << ": replay did not complete";
  EXPECT_FALSE(r.deadlock) << what << ": deadlocked, blocked ranks: "
                           << r.blocked.size();
  EXPECT_EQ(r.exactly_once_violations, 0u) << what;
  EXPECT_EQ(r.fifo_violations, 0u) << what;
  EXPECT_EQ(r.messages_dropped, 0u) << what;
  EXPECT_EQ(r.recvs_failed, 0u) << what;
  EXPECT_EQ(r.sends_failed, 0u) << what;
  EXPECT_EQ(r.recvs_completed, r.messages_sent)
      << what << ": every send must be received exactly once";
  if (r.oracle_strict)
    EXPECT_EQ(r.oracle_mismatches, 0u)
        << what << ": ListMatcher differential disagreed";
}

TEST(ScaleSoak, Lulesh128ThroughFullStack) {
  const Trace t = app("LULESH");
  ASSERT_GT(t.num_ranks, 0);
  ReplayConfig cfg;
  cfg.slice = 0.25;
  TraceReplayDriver driver(t, 128, cfg);
  EXPECT_TRUE(driver.wildcard_free());
  const auto r = driver.run();
  expect_clean(r, "lulesh r128");
  EXPECT_TRUE(r.oracle_strict);
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_GT(r.queue_depth_max, 0u);
  EXPECT_GT(r.match_attempts, 0u) << "traffic bypassed the DPA matcher";
}

TEST(ScaleSoak, ChaosSoakReplayedTraceExactlyOnceUnderFaults) {
  // 128-rank LULESH replay with the PR-2 fault injector dropping,
  // duplicating and reordering packets while channel recovery is armed.
  // Retry budgets are sized so reliability must save every message: zero
  // messages_dropped, oracle green, exactly-once at both shard counts.
  const Trace t = app("LULESH");
  ASSERT_GT(t.num_ranks, 0);
  for (const unsigned shards : {1u, 4u}) {
    ReplayConfig cfg;
    cfg.slice = 0.12;
    cfg.shards = shards;
    cfg.faults = true;
    cfg.fault_seed = chaos_seed();
    TraceReplayDriver driver(t, 128, cfg);
    const auto r = driver.run();
    SCOPED_TRACE(testing::Message() << "shards=" << shards
                                    << " fault seed=" << cfg.fault_seed);
    expect_clean(r, "lulesh r128 faults");
    EXPECT_GT(r.retransmits, 0u) << "the fault injector never fired";
  }
}

TEST(ScaleSoak, CrossScaleInvariance8To128) {
  // The same AMG slice replayed natively (8 ranks) and tiled onto 128
  // ranks (16 instances): instance 0 shares the fabric and matcher shards
  // with 15 noisy neighbors, yet its per-receive delivery fingerprints and
  // match counts must be identical to the native run.
  const Trace t = app("AMG");
  ASSERT_GT(t.num_ranks, 0);
  ReplayConfig cfg;
  cfg.slice = 0.3;
  TraceReplayDriver native(t, 8, cfg);
  ASSERT_TRUE(native.wildcard_free());
  const auto a = native.run();
  expect_clean(a, "amg native r8");

  TraceReplayDriver tiled(t, 128, cfg);
  const auto b = tiled.run();
  expect_clean(b, "amg tiled r128");

  EXPECT_GT(b.messages_sent, a.messages_sent * 15)
      << "tiling did not scale the traffic";
  ASSERT_EQ(a.match_counts.size(), b.match_counts.size());
  EXPECT_EQ(a.match_counts, b.match_counts)
      << "per-rank match counts diverged across world sizes";
  ASSERT_EQ(a.fingerprints.size(), b.fingerprints.size());
  for (std::size_t r = 0; r < a.fingerprints.size(); ++r)
    EXPECT_EQ(a.fingerprints[r], b.fingerprints[r])
        << "per-(peer,tag) delivery order diverged at rank " << r;
}

TEST(ScaleSoak, BigFft1024RanksThroughFullEndpoint) {
  // The acceptance run: a 1024-rank BigFFT transpose phase through the
  // full offloaded endpoint (not matcher-only), sharded 4 ways, with the
  // differential oracle strict (the trace is wildcard-free).
  const Trace t = app("BigFFT");
  ASSERT_EQ(t.num_ranks, 1024);
  ReplayConfig cfg;
  cfg.slice = 0.25;  // one of the four transpose phases
  cfg.shards = 4;
  TraceReplayDriver driver(t, 1024, cfg);
  ASSERT_TRUE(driver.wildcard_free());
  const auto r = driver.run();
  expect_clean(r, "bigfft r1024");
  EXPECT_TRUE(r.oracle_strict);
  EXPECT_GT(r.messages_sent, 10'000u);
  EXPECT_GT(r.match_attempts, 0u);
  EXPECT_GT(r.modeled_ns, 0u);
}

TEST(ScaleSoak, SliceCutsAtSyncBoundaries) {
  const Trace t = app("BigFFT");
  ASSERT_EQ(t.num_ranks, 1024);
  const Trace half = slice_trace(t, 0.5);
  EXPECT_LT(half.total_ops(), t.total_ops());
  EXPECT_GT(half.total_ops(), 0u);
  // A boundary slice keeps send/recv pairs together: per rank, equal send
  // and receive op counts (BigFFT is a symmetric transpose).
  for (const auto& rt : half.ranks) {
    std::size_t sends = 0, recvs = 0;
    for (const auto& op : rt.ops) {
      sends += op.type == OpType::kIsend || op.type == OpType::kSend;
      recvs += op.type == OpType::kIrecv || op.type == OpType::kRecv;
    }
    EXPECT_EQ(sends, recvs) << "rank " << rt.rank;
  }
  const Trace all = slice_trace(t, 1.0);
  EXPECT_EQ(all.total_ops(), t.total_ops());
}

}  // namespace
}  // namespace otm::trace
