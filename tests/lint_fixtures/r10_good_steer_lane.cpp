// otmlint-fixture: src/proto/fixture.cpp
// R10 good twin: every lane decision routes through steer_lane(), and the
// legal lane-on-lane arithmetic (power-of-two checks, mask derivation,
// suppressed non-routing uses) stays quiet.
#include <cstdint>

namespace otm::proto {

using Rank = std::uint32_t;

constexpr unsigned steer_lane(Rank source, std::uint32_t mask) noexcept {
  return static_cast<unsigned>(source & mask);
}

struct Envelope {
  Rank source = 0;
};

unsigned pick_lane(const Envelope& env, std::uint32_t lane_mask) {
  return steer_lane(env.source, lane_mask);
}

bool lanes_are_power_of_two(unsigned lanes) {
  return (lanes & (lanes - 1)) == 0;  // lane-on-lane bookkeeping, not routing
}

std::uint32_t derive_mask(unsigned lanes) { return lanes - 1; }

unsigned spread_buffer(std::uint32_t handle, unsigned lanes) {
  // otmlint: allow(R10) -- pool round-robin partition, not flow steering
  return handle % lanes;
}

}  // namespace otm::proto
