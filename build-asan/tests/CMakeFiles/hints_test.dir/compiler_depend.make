# Empty compiler generated dependencies file for hints_test.
# This may be replaced when dependencies are built.
