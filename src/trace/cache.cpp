#include "trace/cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "trace/dumpi_text.hpp"
#include "util/hash.hpp"

namespace otm::trace {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kMagic = 0x4F544D5452414345ULL;  // "OTMTRACE"
constexpr std::uint32_t kVersion = 2;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t num_ranks = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t checksum = 0;
  std::uint32_t name_len = 0;
  std::uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<Header>);

std::uint64_t ops_checksum(const Trace& t) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const RankTrace& r : t.ranks) {
    h = fnv1a(&r.rank, sizeof(r.rank), h);
    if (!r.ops.empty())
      h = fnv1a(r.ops.data(), r.ops.size() * sizeof(TraceOp), h);
  }
  return h;
}

}  // namespace

bool save_cache(const Trace& trace, const std::string& cache_path,
                std::uint64_t source_fingerprint) {
  std::ofstream os(cache_path, std::ios::binary);
  if (!os.good()) return false;

  Header h;
  h.num_ranks = static_cast<std::uint32_t>(trace.num_ranks);
  h.fingerprint = source_fingerprint;
  h.checksum = ops_checksum(trace);
  h.name_len = static_cast<std::uint32_t>(trace.app_name.size());
  os.write(reinterpret_cast<const char*>(&h), sizeof(h));
  os.write(trace.app_name.data(),
           static_cast<std::streamsize>(trace.app_name.size()));
  const auto rank_count = static_cast<std::uint32_t>(trace.ranks.size());
  os.write(reinterpret_cast<const char*>(&rank_count), sizeof(rank_count));
  for (const RankTrace& r : trace.ranks) {
    os.write(reinterpret_cast<const char*>(&r.rank), sizeof(r.rank));
    const auto n = static_cast<std::uint64_t>(r.ops.size());
    os.write(reinterpret_cast<const char*>(&n), sizeof(n));
    if (n != 0)
      os.write(reinterpret_cast<const char*>(r.ops.data()),
               static_cast<std::streamsize>(n * sizeof(TraceOp)));
  }
  return os.good();
}

std::optional<Trace> load_cache(const std::string& cache_path,
                                std::uint64_t expect_fingerprint) {
  std::ifstream is(cache_path, std::ios::binary);
  if (!is.good()) return std::nullopt;

  Header h;
  is.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!is.good() || h.magic != kMagic || h.version != kVersion) return std::nullopt;
  if (expect_fingerprint != 0 && h.fingerprint != expect_fingerprint)
    return std::nullopt;  // source trace changed: cache is stale

  Trace t;
  t.num_ranks = static_cast<int>(h.num_ranks);
  t.app_name.resize(h.name_len);
  is.read(t.app_name.data(), h.name_len);
  std::uint32_t rank_count = 0;
  is.read(reinterpret_cast<char*>(&rank_count), sizeof(rank_count));
  if (!is.good()) return std::nullopt;
  t.ranks.resize(rank_count);
  for (RankTrace& r : t.ranks) {
    std::uint64_t n = 0;
    is.read(reinterpret_cast<char*>(&r.rank), sizeof(r.rank));
    is.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!is.good()) return std::nullopt;
    r.ops.resize(n);
    if (n != 0)
      is.read(reinterpret_cast<char*>(r.ops.data()),
              static_cast<std::streamsize>(n * sizeof(TraceOp)));
    if (!is.good()) return std::nullopt;
  }
  if (ops_checksum(t) != h.checksum) return std::nullopt;  // corruption
  return t;
}

std::uint64_t fingerprint_trace_dir(const std::string& meta_path) {
  std::ifstream ms(meta_path, std::ios::binary);
  if (!ms.good()) return 0;
  std::stringstream content;
  content << ms.rdbuf();
  const std::string meta = content.str();
  std::uint64_t h = fnv1a(meta.data(), meta.size());

  // Fold in per-rank file sizes: cheap and catches regenerated traces.
  std::string prefix;
  int numprocs = 0;
  std::istringstream lines(meta);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("numprocs=", 0) == 0) numprocs = std::atoi(line.c_str() + 9);
    if (line.rfind("fileprefix=", 0) == 0) prefix = line.substr(11);
  }
  const fs::path dir = fs::path(meta_path).parent_path();
  for (int r = 0; r < numprocs; ++r) {
    char name[256];
    std::snprintf(name, sizeof(name), "%s-%04d.txt", prefix.c_str(), r);
    std::error_code ec;
    const auto size = fs::file_size(dir / name, ec);
    const std::uint64_t s = ec ? 0 : size;
    h = fnv1a(&s, sizeof(s), h);
  }
  return h;
}

Trace load_trace_cached(const std::string& meta_path, bool* used_cache) {
  const std::string cache_path = meta_path + ".otmcache";
  const std::uint64_t fp = fingerprint_trace_dir(meta_path);
  if (auto cached = load_cache(cache_path, fp)) {
    if (used_cache != nullptr) *used_cache = true;
    return std::move(*cached);
  }
  Trace t = load_trace_dir(meta_path);
  save_cache(t, cache_path, fp);
  if (used_cache != nullptr) *used_cache = false;
  return t;
}

}  // namespace otm::trace
