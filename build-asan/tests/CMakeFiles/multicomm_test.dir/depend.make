# Empty dependencies file for multicomm_test.
# This may be replaced when dependencies are built.
