#include "baseline/list_matcher.hpp"

namespace otm {

std::optional<std::uint64_t> ListMatcher::post(const MatchSpec& spec,
                                               std::uint64_t receive_id) {
  ++stats_.posts;
  for (auto it = umq_.begin(); it != umq_.end(); ++it) {
    charge_step();
    if (spec.matches(it->env)) {
      const std::uint64_t id = it->id;
      umq_.erase(it);
      return id;
    }
  }
  prq_.push_back({spec, receive_id});
  return std::nullopt;
}

std::optional<std::uint64_t> ListMatcher::arrive(const Envelope& env,
                                                 std::uint64_t message_id) {
  ++stats_.arrivals;
  for (auto it = prq_.begin(); it != prq_.end(); ++it) {
    charge_step();
    if (it->spec.matches(env)) {
      const std::uint64_t id = it->id;
      prq_.erase(it);
      return id;
    }
  }
  umq_.push_back({env, message_id});
  return std::nullopt;
}

bool ListMatcher::cancel_post(std::uint64_t receive_id) {
  for (auto it = prq_.begin(); it != prq_.end(); ++it) {
    if (it->id == receive_id) {
      prq_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace otm
