// Stateless schedule/fault explorer (docs/VERIFICATION.md).
//
// An explored execution is a pure function of its decision sequence: every
// runnable pick with more than one candidate (WorldScheduler pick_hook),
// every early packet fate (FaultInjector fate hook) and every early
// forced-QP-error draw is a decision point. A run is driven by a *forced
// prefix* of choices; past the prefix every decision takes branch 0 (FIFO
// pick / deliver / no error). After the run, each free decision point
// spawns one frontier entry per unexplored alternative — depth-first,
// DPOR-style stateless search over a disposable World per run.
//
// Pruning (soundness caveats documented in docs/VERIFICATION.md):
//  - bounded preemption: at most max_preemptions non-FIFO scheduler picks
//    per execution;
//  - fault budget: at most max_faults non-default fate/QP decisions;
//  - fingerprint subsumption: the (scheduler x endpoint-protocol) state
//    digest at a run's first free decision point is cached with the budget
//    spent reaching it; a revisit that has spent at least as much of every
//    budget is not expanded (its subtree is subsumed modulo hash
//    collisions and event tie-break order).
//
// Every invariant-oracle violation yields a Counterexample whose decision
// sequence replays the failing execution deterministically — serialized
// as a .otmsched JSON whose "sched_picks" array doubles as the
// OTM_SCHED_TRACE input of WorldScheduler.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/invariants.hpp"
#include "verify/scenarios.hpp"

namespace otm::verify {

/// One recorded decision point of an execution.
struct Decision {
  enum class Kind : std::uint8_t {
    kSched,    ///< runnable pick, options = runnable count
    kFate,     ///< packet fate, options = scenario fate_options
    kQpError,  ///< forced QP error, options = {no, yes}
    kLane,     ///< ingress-lane drain pick, options = non-empty lane count
  };
  Kind kind = Kind::kSched;
  std::uint32_t options = 0;  ///< branching factor at this point
  std::uint32_t choice = 0;   ///< branch taken (0 = default)
};

const char* to_string(Decision::Kind k) noexcept;

/// Outcome of one executed schedule.
struct RunResult {
  bool completed = false;  ///< scheduler reported kCompleted
  std::vector<Violation> violations;
  std::vector<Decision> decisions;         ///< full decision log, in order
  std::vector<std::uint32_t> sched_picks;  ///< WorldScheduler pick_log()
};

/// A serialized failing execution: scenario + decision sequence +
/// violation. to_json() emits the .otmsched format; from_json() reads the
/// subset this writer produces (tolerant scan, not a general parser).
struct Counterexample {
  std::string scenario;
  Violation violation;
  std::vector<Decision> decisions;
  std::vector<std::uint32_t> sched_picks;

  std::string to_json() const;
  static std::optional<Counterexample> from_json(const std::string& text);

  /// The forced prefix that reproduces this execution.
  std::vector<std::uint32_t> choices() const;
};

struct ExploreOptions {
  std::uint64_t max_runs = 4096;     ///< execution budget
  std::uint32_t max_preemptions = 2; ///< non-FIFO scheduler picks per run
  std::uint32_t max_faults = 3;      ///< non-default fate/QP choices per run
  bool stop_at_first_violation = true;
};

struct ExploreStats {
  std::uint64_t runs = 0;
  std::uint64_t decision_points = 0;   ///< summed over executed runs
  std::uint64_t frontier_peak = 0;
  std::uint64_t subsumed = 0;          ///< expansions skipped by the cache
  std::uint64_t pruned_preemption = 0; ///< branches over the preemption bound
  std::uint64_t pruned_fault = 0;      ///< branches over the fault budget
  bool budget_exhausted = false;       ///< frontier remained at max_runs
};

struct ExploreResult {
  std::vector<Counterexample> counterexamples;
  ExploreStats stats;
  bool ok() const noexcept { return counterexamples.empty(); }
};

class Explorer {
 public:
  Explorer(const Scenario& scenario, const ExploreOptions& opts);

  /// Exhaustively (within budgets) explore the scenario's decision tree,
  /// checking every invariant oracle on every branch.
  ExploreResult explore();

  /// Execute one schedule under the given forced choices (defaults past
  /// the end) — deterministic: equal choices yield equal RunResults.
  RunResult replay(const std::vector<std::uint32_t>& choices) const;

 private:
  /// Runs one execution; when fingerprint is non-null, stores the state
  /// digest captured at the first free decision point (trace.size()) and
  /// sets *have_fingerprint accordingly.
  RunResult run_one(const std::vector<std::uint32_t>& forced,
                    std::uint64_t* fingerprint,
                    bool* have_fingerprint) const;

  const Scenario* scenario_;
  ExploreOptions opts_;
};

}  // namespace otm::verify
