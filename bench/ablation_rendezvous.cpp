// Ablation — rendezvous protocol variants (Sec. IV-B): RTS with and
// without the inline first fragment, across message sizes, measured as
// modeled completion latency of a single expected message (post, send,
// match on the DPA, protocol handling).
//
// Expected shape: inline data removes the RDMA read for payloads that fit
// the fragment and shrinks the read for larger ones, so the benefit decays
// as size grows; eager is shown as the small-message reference.
#include <cstdio>
#include <iostream>

#include "proto/endpoint.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::proto;

namespace {

/// Modeled ns from posting the receive to delivery into the user buffer.
/// `recv_bytes` sizes the user buffer (0 = full payload).
double one_message_latency(std::size_t bytes, bool inline_rts,
                           std::size_t eager_threshold,
                           std::size_t recv_bytes = 0) {
  rdma::Fabric fabric;
  EndpointConfig cfg;
  cfg.eager_threshold = eager_threshold;
  cfg.rts_inline_data = inline_rts;
  MatchConfig mc;
  mc.bins = 64;
  mc.block_size = 4;
  mc.max_receives = 64;
  mc.max_unexpected = 64;
  Endpoint sender(fabric, 0, cfg, mc, DpaConfig{});
  Endpoint receiver(fabric, 1, cfg, mc, DpaConfig{});
  sender.connect(receiver);

  std::vector<std::byte> tx(bytes, std::byte{0x3C});
  std::vector<std::byte> rx(recv_bytes == 0 ? bytes : recv_bytes);
  receiver.post_receive({0, 1, 0}, rx, 1);
  const std::uint64_t start = sender.now_ns();
  const auto s = sender.send(1, 1, 0, tx);
  OTM_ASSERT(s.ok);
  const auto done = receiver.progress();
  OTM_ASSERT(done.size() == 1);
  OTM_ASSERT(std::equal(rx.begin(), rx.end(), tx.begin()));
  return static_cast<double>(done[0].completion_ns - start);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  // Already fast enough for tier-1; --smoke is accepted so every bench
  // binary exposes a uniform perf-smoke interface.
  (void)args.get_bool("smoke", false);
  const std::size_t threshold =
      static_cast<std::size_t>(args.get_int("eager-threshold", 1024));

  std::printf("Ablation: rendezvous RTS inline data (eager threshold %zu B)\n\n",
              threshold);
  TableWriter table({"payload B", "protocol", "plain RTS (us)",
                     "inline RTS (us)", "speedup %"});

  for (const std::size_t bytes :
       {256u, 1024u, 2048u, 4096u, 16384u, 65536u, 262144u}) {
    const bool eager = bytes <= threshold;
    const double plain = one_message_latency(bytes, false, threshold);
    const double with_inline = one_message_latency(bytes, true, threshold);
    table.row()
        .cell(static_cast<std::uint64_t>(bytes))
        .cell(eager ? "eager" : "rendezvous")
        .cell(plain / 1e3, 2)
        .cell(with_inline / 1e3, 2)
        .cell(100.0 * (plain / with_inline - 1.0), 1);
  }
  table.print(std::cout);
  std::printf(
      "\nThe fragment is capped at the eager threshold, so for full-size\n"
      "receives the saving is one threshold's worth of read serialization —\n"
      "marginal once the RDMA-read round trip dominates. The decisive win is\n"
      "a receive that truncates *within* the fragment: the read (and its\n"
      "round trip) disappears entirely:\n\n");

  TableWriter trunc({"payload B", "recv B", "plain RTS (us)", "inline RTS (us)",
                     "speedup %"});
  for (const std::size_t recv_bytes : {128u, 512u, 1024u}) {
    const double plain = one_message_latency(65536, false, threshold, recv_bytes);
    const double with_inline =
        one_message_latency(65536, true, threshold, recv_bytes);
    trunc.row()
        .cell(static_cast<std::uint64_t>(65536))
        .cell(static_cast<std::uint64_t>(recv_bytes))
        .cell(plain / 1e3, 2)
        .cell(with_inline / 1e3, 2)
        .cell(100.0 * (plain / with_inline - 1.0), 1);
  }
  trunc.print(std::cout);
  return 0;
}
