#include "obs/metrics.hpp"

#include <ostream>

#include "util/assert.hpp"

namespace otm::obs {

Histogram::Histogram(std::span<const std::uint64_t> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(upper_bounds.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    OTM_ASSERT_MSG(bounds_[i] > bounds_[i - 1],
                   "histogram bounds must be ascending");
  bounds_.push_back(~std::uint64_t{0});  // +inf overflow bucket
}

void Histogram::observe(std::uint64_t v) noexcept {
  std::size_t i = 0;
  while (v > bounds_[i]) ++i;  // last bound is +inf: always terminates
  // All updates relaxed: each total is individually exact; readers accept
  // that count/sum/buckets may be from different instants (class contract),
  // and the observed hot paths must not inherit fences from metrics.
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);  // relaxed: see above

  // relaxed fetch-max loop: value-monotonic, ordering irrelevant.
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexGuard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexGuard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(
    std::string_view name, std::span<const std::uint64_t> upper_bounds) {
  MutexGuard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(upper_bounds))
             .first;
  return *it->second;
}

std::size_t MetricsRegistry::size() const {
  MutexGuard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  MutexGuard lock(mu_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
       << h->count() << ", \"sum\": " << h->sum() << ", \"max\": " << h->max()
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      if (i != 0) os << ", ";
      os << "{\"le\": ";
      if (h->bound(i) == ~std::uint64_t{0})
        os << "\"inf\"";
      else
        os << h->bound(i);
      os << ", \"n\": " << h->bucket_count(i) << "}";
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  MutexGuard lock(mu_);
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_)
    os << "counter," << name << ",value," << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << "gauge," << name << ",value," << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",count," << h->count() << "\n";
    os << "histogram," << name << ",sum," << h->sum() << "\n";
    os << "histogram," << name << ",max," << h->max() << "\n";
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      os << "histogram," << name << ",le_";
      if (h->bound(i) == ~std::uint64_t{0})
        os << "inf";
      else
        os << h->bound(i);
      os << "," << h->bucket_count(i) << "\n";
    }
  }
}

}  // namespace otm::obs
