file(REMOVE_RECURSE
  "libotm_obs.a"
)
