// otmlint-fixture: src/core/fixture.cpp
// R3 bad twin: an OS blocking primitive inside the matching core.
#include <mutex>

namespace otm {

struct BadStore {
  std::mutex mu;  // core must use Spinlock / PartialBarrier
  int value = 0;

  void set(int v) {
    std::lock_guard<std::mutex> g(mu);
    value = v;
  }
};

}  // namespace otm
