# Empty dependencies file for otm_obs.
# This may be replaced when dependencies are built.
