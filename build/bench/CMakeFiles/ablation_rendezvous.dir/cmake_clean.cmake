file(REMOVE_RECURSE
  "CMakeFiles/ablation_rendezvous.dir/ablation_rendezvous.cpp.o"
  "CMakeFiles/ablation_rendezvous.dir/ablation_rendezvous.cpp.o.d"
  "ablation_rendezvous"
  "ablation_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
