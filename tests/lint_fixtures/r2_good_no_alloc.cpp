// otmlint-fixture: src/core/fixture.cpp
// R2 good twin: the hot function writes into preallocated scratch; the
// allocation happens in untagged setup code.
#include <cstdint>
#include <vector>

namespace otm {

std::vector<std::uint32_t> results;

void setup(std::size_t n) {
  results.resize(n);  // fine: not a hot function
}

// otmlint: hot
void scan_and_record(std::size_t i, std::uint32_t slot) {
  results[i] = slot;  // fixed-capacity scratch, no growth
}

}  // namespace otm
