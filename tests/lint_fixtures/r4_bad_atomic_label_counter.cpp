// otmlint-fixture: src/core/fixture.cpp
// R4 bad twin: minting labels from a private atomic counter outside the
// sanctioned allocators breaks constraint C1 across shards — two counters
// cannot agree on "oldest" (docs/SHARDING.md).
#include <atomic>
#include <cstdint>

namespace otm {

struct RogueAllocator {
  std::atomic<std::uint64_t> next_label_{0};

  std::uint64_t mint() {
    // Atomic or not, producing labels is the allocator's monopoly.
    return next_label_.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace otm
