file(REMOVE_RECURSE
  "CMakeFiles/otm_mpi.dir/collectives.cpp.o"
  "CMakeFiles/otm_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/otm_mpi.dir/mpi.cpp.o"
  "CMakeFiles/otm_mpi.dir/mpi.cpp.o.d"
  "libotm_mpi.a"
  "libotm_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
