# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_store_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_unexpected_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_block_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_engine_test[1]_include.cmake")
include("/root/repo/build-asan/tests/baseline_test[1]_include.cmake")
include("/root/repo/build-asan/tests/oracle_property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/dpa_test[1]_include.cmake")
include("/root/repo/build-asan/tests/rdma_test[1]_include.cmake")
include("/root/repo/build-asan/tests/proto_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mpi_test[1]_include.cmake")
include("/root/repo/build-asan/tests/trace_test[1]_include.cmake")
include("/root/repo/build-asan/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build-asan/tests/hints_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stress_test[1]_include.cmake")
include("/root/repo/build-asan/tests/multicomm_test[1]_include.cmake")
include("/root/repo/build-asan/tests/collectives_test[1]_include.cmake")
include("/root/repo/build-asan/tests/schedule_fuzz_test[1]_include.cmake")
include("/root/repo/build-asan/tests/probe_test[1]_include.cmake")
include("/root/repo/build-asan/tests/dumpi_robustness_test[1]_include.cmake")
include("/root/repo/build-asan/tests/jsonl_test[1]_include.cmake")
include("/root/repo/build-asan/tests/patterns_test[1]_include.cmake")
include("/root/repo/build-asan/tests/app_characterization_test[1]_include.cmake")
include("/root/repo/build-asan/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cancel_test[1]_include.cmake")
include("/root/repo/build-asan/tests/obs_test[1]_include.cmake")
