// Trace analysis end to end (the paper's contribution C2): generate a
// synthetic application trace, write it to disk in DUMPI text format, load
// it back through the binary cache, and analyze its matching behavior at
// several bin counts.
//
//   $ ./trace_analysis [--app=LULESH] [--bins=1,32,128] [--dir=/tmp/otm_traces]
//
// This is exactly the pipeline behind Figures 6 and 7.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "trace/analyzer.hpp"
#include "trace/cache.hpp"
#include "trace/dumpi_text.hpp"
#include "trace/synthetic.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::trace;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string app_name = args.get("app", "LULESH");
  const auto bins_list = args.get_int_list("bins", {1, 32, 128});
  const std::string dir =
      args.get("dir", (std::filesystem::temp_directory_path() / "otm_traces" /
                       app_name)
                          .string());

  const AppInfo* app = find_app(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown app '%s'; available:\n", app_name.c_str());
    for (const AppInfo& a : application_suite())
      std::fprintf(stderr, "  %s\n", a.name);
    return 1;
  }

  // 1) Generate and persist the trace in DUMPI text format.
  std::printf("generating %s (%d ranks, %s)...\n", app->name, app->processes,
              app->description);
  const Trace trace = app->make();
  const std::string meta = write_trace_dir(trace, dir);
  std::printf("wrote %zu ops across %d rank files under %s\n",
              trace.total_ops(), trace.num_ranks, dir.c_str());

  // 2) Load through the parser + binary cache (Sec. V-A: parsing is the
  //    expensive step, so the in-memory form is cached).
  bool used_cache = false;
  const Trace first = load_trace_cached(meta, &used_cache);
  std::printf("first load: parsed text (cache hit: %s)\n",
              used_cache ? "yes" : "no");
  const Trace loaded = load_trace_cached(meta, &used_cache);
  std::printf("second load: cache hit: %s\n\n", used_cache ? "yes" : "no");
  (void)first;

  // 3) Analyze the matching behavior per bin count.
  TableWriter table({"bins", "avg depth", "max depth", "avg attempts",
                     "unexpected", "conflicts", "empty bins %"});
  for (const auto bins : bins_list) {
    AnalyzerConfig cfg;
    cfg.bins = static_cast<std::size_t>(bins);
    cfg.block_size = 8;  // also gather conflict statistics
    const AppAnalysis a = TraceAnalyzer(cfg).analyze(loaded);
    table.row()
        .cell(static_cast<std::int64_t>(bins))
        .cell(a.avg_queue_depth, 3)
        .cell(a.max_queue_depth)
        .cell(a.avg_search_attempts, 2)
        .cell(a.unexpected)
        .cell(a.conflicts)
        .cell(100.0 * a.avg_empty_bin_fraction, 1);
  }
  table.print(std::cout);

  const AppAnalysis base = TraceAnalyzer(AnalyzerConfig{}).analyze(loaded);
  std::printf("\ncall mix: %.1f%% p2p, %.1f%% collective, %.1f%% one-sided "
              "(%llu unique src/tag pairs)\n",
              base.calls.pct_p2p(), base.calls.pct_collective(),
              base.calls.pct_one_sided(),
              static_cast<unsigned long long>(base.unique_src_tag_pairs));
  return 0;
}
