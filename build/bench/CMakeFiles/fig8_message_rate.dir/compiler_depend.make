# Empty compiler generated dependencies file for fig8_message_rate.
# This may be replaced when dependencies are built.
