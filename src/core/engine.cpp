#include "core/engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace otm {

MatchEngine::MatchEngine(const MatchConfig& cfg, const CostTable* costs)
    : cfg_(cfg), costs_(costs), prq_(cfg), umq_(cfg), umq_clock_(costs) {
  OTM_ASSERT_MSG(cfg.valid(), "invalid MatchConfig");
}

PostOutcome MatchEngine::post_receive(const MatchSpec& spec,
                                      std::uint64_t buffer_addr,
                                      std::uint32_t buffer_capacity,
                                      std::uint64_t cookie) {
  PostOutcome out;
  out.cookie = cookie;

  // Fig. 1a step 1: the unexpected store is checked before indexing.
  ThreadClock clock(costs_);
  std::uint64_t attempts = 0;
  const std::uint32_t um = umq_.search(spec, clock, attempts);
  stats_.match_attempts += attempts;
  if (attempts > stats_.max_chain_scanned) stats_.max_chain_scanned = attempts;
  if (um != kInvalidSlot) {
    out.kind = PostOutcome::Kind::kMatchedUnexpected;
    out.message = umq_.remove(um);
    ++stats_.receives_matched_unexpected;
    ++stats_.receives_posted;
    return out;
  }

  const ReceiveStore::PostResult pr =
      prq_.post(spec, buffer_addr, buffer_capacity, cookie);
  if (pr.fallback) {
    out.kind = PostOutcome::Kind::kFallback;
    ++stats_.post_fallbacks;
    return out;
  }
  out.kind = PostOutcome::Kind::kPending;
  ++stats_.receives_posted;
  return out;
}

std::optional<MatchEngine::ProbeResult> MatchEngine::probe(const MatchSpec& spec) {
  ThreadClock clock(costs_);
  std::uint64_t attempts = 0;
  const std::uint32_t um = umq_.search(spec, clock, attempts);
  stats_.match_attempts += attempts;
  if (um == kInvalidSlot) return std::nullopt;
  const UnexpectedDescriptor& d = umq_.desc(um);
  return ProbeResult{d.env, d.payload_bytes, d.protocol, d.wire_seq};
}

std::optional<std::uint64_t> MatchEngine::cancel_receive(std::uint64_t cookie) {
  return prq_.cancel_by_cookie(cookie);
}

std::vector<ArrivalOutcome> MatchEngine::process(
    std::span<const IncomingMessage> msgs, BlockExecutor& executor,
    std::span<const std::uint64_t> arrival_cycles) {
  OTM_ASSERT(arrival_cycles.empty() || arrival_cycles.size() == msgs.size());
  std::vector<ArrivalOutcome> outcomes;
  outcomes.reserve(msgs.size());

  for (std::size_t base = 0; base < msgs.size(); base += cfg_.block_size) {
    const std::size_t n = std::min<std::size_t>(cfg_.block_size, msgs.size() - base);
    const std::span<const IncomingMessage> block = msgs.subspan(base, n);
    const std::span<const std::uint64_t> starts =
        arrival_cycles.empty() ? arrival_cycles : arrival_cycles.subspan(base, n);

    BlockMatcher matcher(cfg_, prq_, ++next_gen_, block, costs_, starts);
    executor.execute(matcher);
    ++stats_.blocks_processed;

    // Epilogue (engine-serialized): collect results in arrival order; insert
    // unexpected messages into the UMQ in thread-id order so constraint C2
    // holds across the block boundary.
    std::vector<std::uint32_t> consumed_slots;
    for (unsigned t = 0; t < matcher.num_threads(); ++t) {
      const BlockMatcher::ThreadResult& r = matcher.result(t);
      const IncomingMessage& msg = block[t];

      stats_.match_attempts += r.search.attempts;
      stats_.index_searches += r.search.index_searches;
      stats_.early_booking_skips += r.search.early_skips;
      if (r.search.max_single_chain > stats_.max_chain_scanned)
        stats_.max_chain_scanned = r.search.max_single_chain;
      ++stats_.messages_processed;
      if (r.conflicted) ++stats_.conflicts_detected;
      if (r.fast_path_aborted) ++stats_.fast_path_aborts;
      if (r.final_slot != kInvalidSlot) {
        if (r.path == ResolutionPath::kFastPath) ++stats_.fast_path_resolutions;
        if (r.path == ResolutionPath::kSlowPath) ++stats_.slow_path_resolutions;
      } else if (r.path == ResolutionPath::kSlowPath) {
        ++stats_.slow_path_resolutions;
      }

      ArrivalOutcome o;
      o.env = msg.env;
      o.path = r.path;
      o.conflicted = r.conflicted;
      o.wire_seq = msg.wire_seq;
      o.protocol = msg.protocol;
      o.payload_bytes = msg.payload_bytes;
      o.inline_bytes = msg.inline_bytes;
      o.bounce_handle = msg.bounce_handle;
      o.remote_key = msg.remote_key;
      o.remote_addr = msg.remote_addr;
      o.finish_cycles = r.finish_cycles;

      if (r.final_slot != kInvalidSlot) {
        const ReceiveDescriptor& d = prq_.desc(r.final_slot);
        OTM_ASSERT_MSG(d.consumed(), "matched receive not consumed");
        OTM_ASSERT_MSG(d.spec.matches(msg.env), "matched receive does not match");
        o.kind = ArrivalOutcome::Kind::kMatched;
        o.receive_cookie = d.cookie;
        o.buffer_addr = d.buffer_addr;
        o.buffer_capacity = d.buffer_capacity;
        ++stats_.messages_matched;
        consumed_slots.push_back(r.final_slot);
      } else {
        // Ordered UMQ insertion; the insert itself is a serialization
        // point, modeled by threading the umq_clock_ through the inserts.
        if (umq_clock_.enabled()) {
          umq_clock_.sync_to(r.finish_cycles);
        }
        const std::uint32_t slot = umq_.insert(msg, umq_clock_);
        if (slot == kInvalidSlot) {
          o.kind = ArrivalOutcome::Kind::kDropped;
        } else {
          o.kind = ArrivalOutcome::Kind::kUnexpected;
          ++stats_.messages_unexpected;
        }
        if (umq_clock_.enabled()) o.finish_cycles = umq_clock_.cycles();
      }
      last_finish_cycles_ = std::max(last_finish_cycles_, o.finish_cycles);
      outcomes.push_back(o);
    }

    // Eager removal: unlink consumed receives now (the matching threads
    // already paid the modeled lock/unlink cost); lazy removal leaves them
    // marked for the amortized insert-time cleanup.
    if (!cfg_.lazy_removal) {
      for (const std::uint32_t slot : consumed_slots) {
        prq_.unlink_and_release(slot);
        ++stats_.eager_removals;
      }
    }
  }
  return outcomes;
}

ArrivalOutcome MatchEngine::process_one(const IncomingMessage& msg,
                                        BlockExecutor& executor) {
  const auto v = process(std::span<const IncomingMessage>(&msg, 1), executor);
  return v.front();
}

}  // namespace otm
