# Empty compiler generated dependencies file for micro_matchers.
# This may be replaced when dependencies are built.
