# Empty dependencies file for fig7_queue_depth.
# This may be replaced when dependencies are built.
