#include "baseline/bin_matcher.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace otm {

BinMatcher::BinMatcher(std::size_t bins)
    : prq_bins_(next_pow2(bins)), umq_bins_(next_pow2(bins)),
      mask_(next_pow2(bins) - 1) {
  OTM_ASSERT(bins >= 1);
}

std::optional<std::uint64_t> BinMatcher::post(const MatchSpec& spec,
                                              std::uint64_t receive_id) {
  ++stats_.posts;
  const std::uint64_t ts = next_ts_++;
  const bool wild = spec.any_source() || spec.any_tag();

  // Unexpected-message check first (Fig. 1a). A fully-specified receive
  // probes only its bin; a wildcard receive scans the arrival-ordered list.
  if (!wild) {
    auto& bin = umq_bins_[bin_of(spec.source, spec.tag)];
    for (auto it = bin.begin(); it != bin.end(); ++it) {
      charge_step();
      if (spec.matches((*it)->env)) {
        const std::uint64_t id = (*it)->id;
        um_order_.erase(*it);
        bin.erase(it);
        return id;
      }
    }
    prq_bins_[bin_of(spec.source, spec.tag)].push_back({spec, receive_id, ts});
    return std::nullopt;
  }

  for (auto it = um_order_.begin(); it != um_order_.end(); ++it) {
    charge_step();
    if (spec.matches(it->env)) {
      const std::uint64_t id = it->id;
      auto& bin = umq_bins_[bin_of(it->env.source, it->env.tag)];
      for (auto bit = bin.begin(); bit != bin.end(); ++bit) {
        if (*bit == it) {
          bin.erase(bit);
          break;
        }
      }
      um_order_.erase(it);
      return id;
    }
  }
  prq_wild_.push_back({spec, receive_id, ts});
  return std::nullopt;
}

std::optional<std::uint64_t> BinMatcher::arrive(const Envelope& env,
                                                std::uint64_t message_id) {
  ++stats_.arrivals;

  auto& bin = prq_bins_[bin_of(env.source, env.tag)];
  auto bin_hit = bin.end();
  for (auto it = bin.begin(); it != bin.end(); ++it) {
    charge_step();
    if (it->spec.matches(env)) {
      bin_hit = it;
      break;
    }
  }
  auto wild_hit = prq_wild_.end();
  for (auto it = prq_wild_.begin(); it != prq_wild_.end(); ++it) {
    charge_step();
    if (it->spec.matches(env)) {
      wild_hit = it;
      break;
    }
  }

  // Timestamp arbitration between the bin hit and the wildcard hit (C1).
  if (bin_hit != bin.end() &&
      (wild_hit == prq_wild_.end() || bin_hit->timestamp < wild_hit->timestamp)) {
    const std::uint64_t id = bin_hit->id;
    bin.erase(bin_hit);
    return id;
  }
  if (wild_hit != prq_wild_.end()) {
    const std::uint64_t id = wild_hit->id;
    prq_wild_.erase(wild_hit);
    return id;
  }

  um_order_.push_back({env, message_id, next_ts_++});
  umq_bins_[bin_of(env.source, env.tag)].push_back(std::prev(um_order_.end()));
  return std::nullopt;
}

std::size_t BinMatcher::posted_size() const {
  std::size_t n = prq_wild_.size();
  for (const auto& b : prq_bins_) n += b.size();
  return n;
}

std::size_t BinMatcher::max_bin_depth() const {
  std::size_t m = prq_wild_.size();
  for (const auto& b : prq_bins_) m = std::max(m, b.size());
  return m;
}

}  // namespace otm
