// otmlint-fixture: src/proto/fixture.cpp
// R9 good twin: protocol state switches name every enumerator (so -Wswitch
// flags additions); defaults stay legal in switches over non-protocol
// values like characters.
namespace otm::proto {

enum class Outcome { kCompleted, kQueued, kFailed };

int classify(Outcome o) {
  switch (o) {
    case Outcome::kCompleted:
      return 0;
    case Outcome::kQueued:
      return 1;
    case Outcome::kFailed:
      return -1;
  }
  return -1;  // unreachable; keeps -Wreturn-type happy without a default
}

char escape(char c) {
  switch (c) {  // not a protocol state machine: default is fine here
    case '\n':
      return 'n';
    default:
      return c;
  }
}

}  // namespace otm::proto
