// Replay soak — full-stack trace replay rates at 128-1024 simulated ranks
// (docs/SCALING.md): each scenario tiles a NERSC-style synthetic trace onto
// a WorldScheduler-multiplexed world and replays it through the complete
// offloaded endpoint stack (proto channels, reliability windows, sharded
// DPA matcher). The ListMatcher differential, FIFO and exactly-once
// verdicts ride along with every run and gate the full-length exit code.
//
// Scenario family: replay_<app>_r<ranks> —
//   replay_lulesh_r{128,512,1024}  (64-rank LULESH tiled 2x/8x/16x)
//   replay_bigfft_r1024            (native 1024-rank pure point-to-point)
//
// Rates are modeled (the endpoint cost-model clock), so the perf gate
// holds them to the tight "modeled" band. Queue-depth and collision
// metrics publish as extra scenario keys the gate ignores but the trend
// plots can track.
//
// Harness: --json=f.json writes the schema-versioned results; --smoke pins
// a tiny trace slice and always exits 0. --wall adds real-clock "walltime"
// twins (wide gate band) for every scenario. --faults enables the PR-2
// injector plus recovery — informational only (retransmission latency
// makes modeled rates incomparable to the clean-fabric baseline).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "trace/replay.hpp"
#include "trace/synthetic.hpp"
#include "util/args.hpp"
#include "util/table_writer.hpp"

using namespace otm;
using namespace otm::bench;
using namespace otm::trace;

namespace {

struct Scenario {
  const char* json_name;
  const char* app;  ///< synthetic registry name (trace/synthetic.hpp)
  int ranks;        ///< target world size (multiple of the app's ranks)
};

constexpr Scenario kScenarios[] = {
    {"replay_lulesh_r128", "LULESH", 128},
    {"replay_lulesh_r512", "LULESH", 512},
    {"replay_lulesh_r1024", "LULESH", 1024},
    {"replay_bigfft_r1024", "BigFFT", 1024},
};

struct Run {
  const Scenario* scn;
  ReplayResult r;
  double wall_ns = 0.0;
  bool clean = false;  ///< completed with every verification verdict green
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool wall = args.get_bool("wall", false);
  const std::string json_out = args.get("json", "");

  ReplayConfig cfg;
  cfg.shards = static_cast<unsigned>(args.get_int("shards", 4));
  cfg.sched_seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  cfg.faults = args.get_bool("faults", false);
  cfg.fault_seed =
      static_cast<std::uint64_t>(args.get_int("fault-seed", 0xc7a05));
  // Pinned workload: the committed baseline and every candidate must slice
  // identically or the modeled-rate diff is meaningless. Smoke runs use the
  // same slice — slicing below ~0.25 can cut BigFFT's first sync boundary
  // before any message is sent, and the whole family finishes in seconds.
  cfg.slice = args.get_double("slice", 0.25);

  std::printf("Replay soak: full-stack trace replay at 128-1024 ranks "
              "(slice=%.2f, shards=%u, sched_seed=%llu%s)\n\n",
              cfg.slice, cfg.shards,
              static_cast<unsigned long long>(cfg.sched_seed),
              cfg.faults ? ", faults ON" : "");

  std::vector<Run> runs;
  for (const Scenario& scn : kScenarios) {
    const AppInfo* info = find_app(scn.app);
    if (info == nullptr) {
      std::fprintf(stderr, "error: unknown app %s\n", scn.app);
      return 1;
    }
    const Trace t = info->make();
    TraceReplayDriver driver(t, scn.ranks, cfg);
    const auto t0 = std::chrono::steady_clock::now();
    Run run{&scn, driver.run(), 0.0, false};
    run.wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    const ReplayResult& r = run.r;
    run.clean = r.completed && !r.deadlock && r.fifo_violations == 0 &&
                r.exactly_once_violations == 0 && r.oracle_mismatches == 0 &&
                r.messages_dropped == 0 &&
                r.recvs_completed == r.messages_sent;
    runs.push_back(std::move(run));
  }

  TableWriter table({"scenario", "ranks", "messages", "Mmsg/s (modeled)",
                     "qdepth max", "qdepth avg", "collisions/msg",
                     "verdict"});
  for (const Run& run : runs) {
    const ReplayResult& r = run.r;
    const double secs = static_cast<double>(r.modeled_ns) / 1e9;
    const double rate =
        secs > 0.0 ? static_cast<double>(r.messages_sent) / secs : 0.0;
    const double coll =
        r.messages_sent > 0
            ? static_cast<double>(r.conflicts) /
                  static_cast<double>(r.messages_sent)
            : 0.0;
    table.row()
        .cell(run.scn->json_name)
        .cell(static_cast<double>(run.scn->ranks), 0)
        .cell(static_cast<double>(r.messages_sent), 0)
        .cell(rate / 1e6, 2)
        .cell(static_cast<double>(r.queue_depth_max), 0)
        .cell(r.queue_depth_avg, 2)
        .cell(coll, 4)
        .cell(run.clean ? "clean" : "VIOLATED");
  }
  table.print(std::cout);
  if (wall) {
    std::printf("\nwall-clock replay rates (kind \"walltime\", +/-35%% gate "
                "band):\n");
    for (const Run& run : runs) {
      const double rate = run.wall_ns > 0.0
                              ? static_cast<double>(run.r.messages_sent) *
                                    1e9 / run.wall_ns
                              : 0.0;
      std::printf("  %-22s %.2f Mmsg/s (%.0f ms real)\n",
                  run.scn->json_name, rate / 1e6, run.wall_ns / 1e6);
    }
  }

  if (!json_out.empty()) {
    BenchJsonDoc doc;
    doc.bench = "replay_soak";
    doc.smoke = smoke;
    doc.config = {
        {"slice", cfg.slice},
        {"shards", static_cast<double>(cfg.shards)},
        {"sched_seed", static_cast<double>(cfg.sched_seed)},
        {"faults", cfg.faults ? 1.0 : 0.0},
        {"fault_seed", static_cast<double>(cfg.fault_seed)},
    };
    for (const Run& run : runs) {
      const ReplayResult& r = run.r;
      ScenarioRecord s;
      s.name = run.scn->json_name;
      s.kind = "modeled";
      const double secs = static_cast<double>(r.modeled_ns) / 1e9;
      s.msgs_per_sec =
          secs > 0.0 ? static_cast<double>(r.messages_sent) / secs : 0.0;
      s.ns_per_msg = r.messages_sent > 0
                         ? static_cast<double>(r.modeled_ns) /
                               static_cast<double>(r.messages_sent)
                         : 0.0;
      // The matching runs entirely on the simulated DPA; the host never
      // spends a matching cycle, same as fig8's offloaded scenarios.
      s.host_match_cycles_per_msg = 0.0;
      s.conflicts_per_seq =
          r.messages_sent > 0 ? static_cast<double>(r.conflicts) /
                                    static_cast<double>(r.messages_sent)
                              : 0.0;
      s.extra = {
          {"queue_depth_max", static_cast<double>(r.queue_depth_max)},
          {"queue_depth_avg", r.queue_depth_avg},
          {"ranks", static_cast<double>(run.scn->ranks)},
          {"messages", static_cast<double>(r.messages_sent)},
          {"retransmits", static_cast<double>(r.retransmits)},
      };
      doc.scenarios.push_back(std::move(s));
      if (wall) {
        ScenarioRecord w;
        w.name = std::string(run.scn->json_name) + "_wall";
        w.kind = "walltime";
        w.msgs_per_sec = run.wall_ns > 0.0
                             ? static_cast<double>(r.messages_sent) * 1e9 /
                                   run.wall_ns
                             : 0.0;
        w.ns_per_msg = r.messages_sent > 0
                           ? run.wall_ns /
                                 static_cast<double>(r.messages_sent)
                           : 0.0;
        doc.scenarios.push_back(std::move(w));
      }
    }
    if (!write_bench_json(json_out, doc)) {
      std::fprintf(stderr, "error: cannot write json to %s\n",
                   json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "json written to %s\n", json_out.c_str());
  }

  // The verification verdicts are the oracle: every scenario must replay
  // clean at every scale. Smoke runs still print the verdicts but gate only
  // on "ran to completion and wrote valid output".
  bool all_clean = true;
  for (const Run& run : runs) {
    if (!run.clean) {
      all_clean = false;
      std::printf("\nVIOLATED: %s (completed=%d deadlock=%d fifo=%llu "
                  "once=%llu oracle=%llu dropped=%llu)\n",
                  run.scn->json_name, run.r.completed ? 1 : 0,
                  run.r.deadlock ? 1 : 0,
                  static_cast<unsigned long long>(run.r.fifo_violations),
                  static_cast<unsigned long long>(
                      run.r.exactly_once_violations),
                  static_cast<unsigned long long>(run.r.oracle_mismatches),
                  static_cast<unsigned long long>(run.r.messages_dropped));
    }
  }
  std::printf("\nverdict: %s (exactly-once, FIFO, differential oracle, "
              "zero drops at every scale)\n",
              all_clean ? "CLEAN" : "VIOLATED");
  if (smoke) return 0;
  return all_clean ? 0 : 1;
}
