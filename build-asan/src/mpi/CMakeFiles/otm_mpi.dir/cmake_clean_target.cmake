file(REMOVE_RECURSE
  "libotm_mpi.a"
)
