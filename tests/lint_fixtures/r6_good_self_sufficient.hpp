// otmlint-fixture: src/core/fixture.hpp
// R6 good twin: every name the header uses comes from an include it owns.
#pragma once

#include <cstdint>
#include <vector>

namespace otm {

struct SelfSufficient {
  std::vector<std::uint32_t> slots;
};

}  // namespace otm
