# Empty dependencies file for otm_baseline.
# This may be replaced when dependencies are built.
