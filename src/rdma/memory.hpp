// Simulated NIC/host memory: registered regions addressable by rkey (for
// RDMA reads) and the NIC-resident bounce-buffer pool of Sec. IV-A.
//
// Bounce buffers stage incoming messages until matching determines the
// user buffer; keeping them in NIC memory avoids crossing PCIe twice
// (match + copy), which the latency model reflects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace otm::rdma {

/// Registered memory regions resolvable by remote key. One registry per
/// simulated node.
class MemoryRegistry {
 public:
  /// Register a caller-owned region; returns its rkey. The storage must
  /// outlive the registry entry (until unregister()).
  std::uint32_t register_region(std::span<std::byte> region) {
    if (!free_keys_.empty()) {
      const std::uint32_t rkey = free_keys_.back();
      free_keys_.pop_back();
      regions_[rkey] = region;
      live_[rkey] = true;
      return rkey;
    }
    regions_.push_back(region);
    live_.push_back(true);
    return static_cast<std::uint32_t>(regions_.size() - 1);
  }

  /// Invalidate an rkey (memory deregistration); the key is recycled.
  void unregister(std::uint32_t rkey) {
    OTM_ASSERT_MSG(rkey < regions_.size() && live_[rkey], "unknown rkey");
    live_[rkey] = false;
    regions_[rkey] = {};
    free_keys_.push_back(rkey);
  }

  /// Resolve rkey+offset to memory; asserts on out-of-bounds access or a
  /// deregistered key (a protection fault on real hardware).
  std::span<std::byte> resolve(std::uint32_t rkey, std::uint64_t offset,
                               std::size_t len) const {
    OTM_ASSERT_MSG(rkey < regions_.size() && live_[rkey], "unknown rkey");
    const std::span<std::byte> r = regions_[rkey];
    OTM_ASSERT_MSG(offset + len <= r.size(), "RDMA access out of bounds");
    return r.subspan(offset, len);
  }

  std::size_t size() const noexcept { return regions_.size() - free_keys_.size(); }

 private:
  std::vector<std::span<std::byte>> regions_;
  std::vector<bool> live_;
  std::vector<std::uint32_t> free_keys_;
};

/// Fixed pool of equally-sized staging buffers in (simulated) NIC memory.
class BounceBufferPool {
 public:
  BounceBufferPool(std::size_t count, std::size_t buffer_bytes)
      : storage_(count * buffer_bytes), buffer_bytes_(buffer_bytes) {
    free_.reserve(count);
    for (std::size_t i = count; i > 0; --i)
      free_.push_back(static_cast<std::uint64_t>(i - 1));
  }

  std::optional<std::uint64_t> allocate() {
    if (free_.empty()) return std::nullopt;
    const std::uint64_t h = free_.back();
    free_.pop_back();
    return h;
  }

  void release(std::uint64_t handle) {
    OTM_ASSERT(handle < capacity());
    free_.push_back(handle);
  }

  std::span<std::byte> data(std::uint64_t handle) {
    OTM_ASSERT(handle < capacity());
    return std::span<std::byte>(storage_).subspan(handle * buffer_bytes_,
                                                  buffer_bytes_);
  }

  std::span<const std::byte> data(std::uint64_t handle) const {
    OTM_ASSERT(handle < capacity());
    return std::span<const std::byte>(storage_).subspan(
        handle * buffer_bytes_, buffer_bytes_);
  }

  std::size_t buffer_bytes() const noexcept { return buffer_bytes_; }
  std::size_t capacity() const noexcept {
    return buffer_bytes_ == 0 ? 0 : storage_.size() / buffer_bytes_;
  }
  std::size_t available() const noexcept { return free_.size(); }

 private:
  std::vector<std::byte> storage_;
  std::size_t buffer_bytes_;
  std::vector<std::uint64_t> free_;
};

}  // namespace otm::rdma
