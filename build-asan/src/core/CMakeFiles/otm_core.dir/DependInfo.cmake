
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_matcher.cpp" "src/core/CMakeFiles/otm_core.dir/block_matcher.cpp.o" "gcc" "src/core/CMakeFiles/otm_core.dir/block_matcher.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/otm_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/otm_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/receive_store.cpp" "src/core/CMakeFiles/otm_core.dir/receive_store.cpp.o" "gcc" "src/core/CMakeFiles/otm_core.dir/receive_store.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/otm_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/otm_core.dir/types.cpp.o.d"
  "/root/repo/src/core/unexpected_store.cpp" "src/core/CMakeFiles/otm_core.dir/unexpected_store.cpp.o" "gcc" "src/core/CMakeFiles/otm_core.dir/unexpected_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/otm_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/otm_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
