// Model-checking scenario families (docs/VERIFICATION.md).
//
// A Scenario is a small closed world (2-4 ranks) plus the decision surface
// the explorer enumerates over it: which packet fates are on the table,
// how many early packets of the run are explicit fault decision points,
// and whether forced QP errors participate. Each family targets one
// protocol regime:
//
//   eager_storm      pipelined small eager sends under drop/dup/hold —
//                    retransmission, dedup and per-stream FIFO
//   rendezvous_mix   eager and rendezvous traffic from two senders into
//                    one receiver — RTS/data interleavings across ranks
//   recovery_flap    retry-budget exhaustion driving epoch-bump recovery
//                    while held stale packets are still in flight — the
//                    ack-fencing regime (planted-bug family:
//                    OTM_VERIFY_BREAK=ack_fence must be caught here)
//   multi_lane_ingress  two ingress lanes: the recovery epoch announce on
//                    lane 1 can overtake stale epoch-0 data parked in the
//                    lane-0 CQ, so the receive-side HEAD epoch fence does
//                    real work (planted-bug family:
//                    OTM_VERIFY_BREAK=epoch_fence must be caught here)
//   coalesced_storm  merged-message coalescing under loss — buffer
//                    conservation and sub-message FIFO
//
// Programs stamp every payload with the sender's per-stream sequence
// number and report received stamps into the Oracle (app_fifo).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "mpi/scheduler.hpp"
#include "rdma/fault.hpp"
#include "verify/invariants.hpp"

namespace otm::verify {

struct Scenario {
  std::string name;
  std::string description;
  int ranks = 2;
  /// The liveness oracle: every schedule/fault combination within the
  /// explorer's budgets must drive the world to completion.
  bool expect_completion = true;
  /// Packet fates the explorer may force, index 0 MUST be kDeliver (the
  /// default branch every other decision sequence extends).
  std::vector<rdma::FaultInjector::Fate> fate_options;
  /// The first this-many fate draws of a run are explicit decision
  /// points; later packets fall through to the seeded model (which, with
  /// all probabilities zero, always delivers).
  std::size_t max_fate_points = 0;
  /// Forced-QP-error decision points ({no-error, error}), same budget idea.
  std::size_t max_qp_points = 0;
  /// Ingress-lane drain decision points: the first this-many times an
  /// endpoint finds MORE THAN ONE lane CQ non-empty, which lane pops its
  /// next CQE is an explicit decision (cross-lane interleaving of parked
  /// traffic). Later draws fall back to ascending lane order. Only
  /// meaningful when the scenario's endpoints run ingress_lanes > 1.
  std::size_t max_lane_points = 0;
  /// World recipe — called once per explored run (worlds are disposable).
  std::function<mpi::WorldOptions()> options;
  /// Registers one program per rank on the scheduler; programs feed
  /// received stamps into the oracle.
  std::function<void(mpi::World&, mpi::WorldScheduler&, Oracle&)> setup;
};

/// The built-in scenario registry, in documentation order.
const std::vector<Scenario>& scenarios();

/// nullptr when `name` is not a registered scenario.
const Scenario* find_scenario(std::string_view name);

}  // namespace otm::verify
