// Schedule-independence fuzzing: the block matcher's waits all target
// strictly lower thread ids, so ANY topological order of (phase, thread)
// tasks respecting
//     optimistic(j) < detect(t)   for j <= t
//     detect(j)     < resolve(t)  for j <= t
//     resolve(j)    < resolve(t)  for j <  t
// is a legal single-threaded schedule that cannot spin. A RandomSchedule
// executor samples such linear extensions uniformly at random — far more
// interleavings than real threads ever produce on a small machine — and
// the oracle property must hold under every one of them.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/list_matcher.hpp"
#include "core/engine.hpp"
#include "util/rng.hpp"

namespace otm {
namespace {

class RandomScheduleExecutor final : public BlockExecutor {
 public:
  explicit RandomScheduleExecutor(std::uint64_t seed) : rng_(seed) {}

  void execute(BlockMatcher& m) override {
    const unsigned n = m.num_threads();
    // next_phase[t]: 0 = optimistic pending, 1 = detect pending,
    // 2 = resolve pending, 3 = done.
    std::vector<unsigned> phase(n, 0);

    auto ready = [&](unsigned t) {
      switch (phase[t]) {
        case 0:
          return true;
        case 1:  // detect(t) needs optimistic(j) for all j < t
          for (unsigned j = 0; j < t; ++j)
            if (phase[j] < 1) return false;
          return true;
        case 2:  // resolve(t) needs detect(j<=t) and resolve(j<t)
          for (unsigned j = 0; j < t; ++j)
            if (phase[j] < 3) return false;  // j fully resolved
          // detect(j<t) implied by phase[j]==3; own detect done since
          // phase[t]==2.
          return true;
        default:
          return false;
      }
    };

    unsigned remaining = 3 * n;
    std::vector<unsigned> candidates;
    while (remaining > 0) {
      candidates.clear();
      for (unsigned t = 0; t < n; ++t)
        if (phase[t] < 3 && ready(t)) candidates.push_back(t);
      ASSERT_FALSE(candidates.empty()) << "schedule deadlocked";
      const unsigned t = candidates[rng_.below(candidates.size())];
      switch (phase[t]) {
        case 0: m.run_optimistic(t); break;
        case 1: m.run_detect(t); break;
        case 2: m.run_resolve(t); break;
      }
      ++phase[t];
      --remaining;
    }
  }

 private:
  Xoshiro256 rng_;
};

struct FuzzParam {
  std::uint64_t seed;
  unsigned block_size;
  int key_space;
  double p_wildcard;
  bool fast_path;
  bool early_booking;
};

class ScheduleFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(ScheduleFuzz, OracleHoldsUnderRandomLegalSchedules) {
  const FuzzParam& p = GetParam();
  MatchConfig cfg;
  cfg.bins = 8;
  cfg.block_size = p.block_size;
  cfg.max_receives = 4096;
  cfg.max_unexpected = 4096;
  cfg.enable_fast_path = p.fast_path;
  cfg.early_booking_check = p.early_booking;

  MatchEngine engine(cfg);
  ListMatcher oracle;
  RandomScheduleExecutor executor(p.seed * 7919);
  Xoshiro256 rng(p.seed);
  std::uint64_t next_id = 0;
  std::vector<IncomingMessage> pending;

  auto flush = [&] {
    if (pending.empty()) return;
    const auto outs = engine.process(pending, executor);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const auto om = oracle.arrive(pending[i].env, pending[i].wire_seq);
      if (om.has_value()) {
        ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kMatched)
            << "msg " << pending[i].wire_seq;
        ASSERT_EQ(outs[i].match.receive_cookie, *om);
      } else {
        ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kUnexpected);
      }
    }
    pending.clear();
  };

  for (int op = 0; op < 800; ++op) {
    const Rank src = static_cast<Rank>(
        rng.below(static_cast<std::uint64_t>(p.key_space)));
    const Tag tag = static_cast<Tag>(
        rng.below(static_cast<std::uint64_t>(p.key_space)));
    if (rng.chance(0.5)) {
      flush();
      MatchSpec spec{src, tag, 0};
      if (rng.chance(p.p_wildcard)) spec.source = kAnySource;
      if (rng.chance(p.p_wildcard)) spec.tag = kAnyTag;
      const auto id = next_id++;
      const auto ep = engine.post_receive(spec, 0, 0, id);
      const auto oo = oracle.post(spec, id);
      if (oo.has_value()) {
        ASSERT_EQ(ep.kind, PostOutcome::Kind::kMatchedUnexpected);
        ASSERT_EQ(ep.message.wire_seq, *oo);
      } else {
        ASSERT_EQ(ep.kind, PostOutcome::Kind::kPending);
      }
    } else {
      const std::uint64_t burst = 1 + rng.below(rng.chance(0.4) ? 8 : 2);
      for (std::uint64_t b = 0; b < burst; ++b) {
        IncomingMessage m = IncomingMessage::make(src, tag, 0);
        m.wire_seq = next_id++;
        pending.push_back(m);
      }
      if (rng.chance(0.4)) flush();
    }
  }
  flush();
  EXPECT_EQ(engine.receives().posted_count(), oracle.posted_size());
  EXPECT_EQ(engine.unexpected().size(), oracle.unexpected_size());
}

std::vector<FuzzParam> fuzz_params() {
  std::vector<FuzzParam> out;
  // Broad seed sweep on the conflict-heavy configuration.
  for (std::uint64_t s = 1; s <= 12; ++s)
    out.push_back({s, 8, 2, 0.1, true, false});
  // Single-key (maximum conflicts), with and without the fast path.
  for (std::uint64_t s = 20; s <= 24; ++s) {
    out.push_back({s, 8, 1, 0.0, true, false});
    out.push_back({s, 8, 1, 0.0, false, false});
  }
  // Wildcard-heavy and early-booking-check variants.
  for (std::uint64_t s = 30; s <= 33; ++s) {
    out.push_back({s, 6, 3, 0.5, true, true});
    out.push_back({s, 32, 4, 0.2, true, false});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScheduleFuzz, ::testing::ValuesIn(fuzz_params()),
                         [](const auto& param_info) {
                           const FuzzParam& p = param_info.param;
                           return "seed" + std::to_string(p.seed) + "_blk" +
                                  std::to_string(p.block_size) + "_keys" +
                                  std::to_string(p.key_space) +
                                  (p.fast_path ? "_fp" : "_nofp") +
                                  (p.early_booking ? "_eb" : "_noeb");
                         });

}  // namespace
}  // namespace otm
