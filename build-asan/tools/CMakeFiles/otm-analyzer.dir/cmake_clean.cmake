file(REMOVE_RECURSE
  "CMakeFiles/otm-analyzer.dir/analyzer_cli.cpp.o"
  "CMakeFiles/otm-analyzer.dir/analyzer_cli.cpp.o.d"
  "otm-analyzer"
  "otm-analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm-analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
