// Tests for the DPA simulator: core-sharing cost scaling, serial CQE
// dispatch, hart-slot pipelining, and the offload's headline property —
// zero host matching cycles.
#include <gtest/gtest.h>

#include "dpa/accelerator.hpp"

namespace otm {
namespace {

MatchConfig match_cfg(unsigned block) {
  MatchConfig c;
  c.bins = 64;
  c.block_size = block;
  c.max_receives = 256;
  c.max_unexpected = 256;
  return c;
}

std::vector<IncomingMessage> distinct_messages(unsigned n) {
  std::vector<IncomingMessage> v;
  for (unsigned i = 0; i < n; ++i)
    v.push_back(IncomingMessage::make(1, static_cast<Tag>(i), 0));
  return v;
}

TEST(DpaConfig, SharingFactor) {
  DpaConfig c;
  c.execution_units = 16;
  EXPECT_EQ(c.sharing_factor(1), 1u);
  EXPECT_EQ(c.sharing_factor(16), 1u);
  EXPECT_EQ(c.sharing_factor(17), 2u);
  EXPECT_EQ(c.sharing_factor(32), 2u);
  EXPECT_EQ(c.sharing_factor(33), 3u);
}

TEST(DpaConfig, SharedCostsScaleComputeNotSync) {
  DpaConfig c;
  c.execution_units = 16;
  const CostTable shared = c.shared_costs(32);
  EXPECT_EQ(shared.chain_step, c.costs.chain_step * 2);
  EXPECT_EQ(shared.hash_compute, c.costs.hash_compute * 2);
  EXPECT_EQ(shared.barrier_overhead, c.costs.barrier_overhead)
      << "waiting harts burn no issue slots";
  EXPECT_EQ(shared.slow_path_sync, c.costs.slow_path_sync);
}

TEST(DpaConfig, ClockConversionRoundTrips) {
  DpaConfig c;
  c.clock_ghz = 1.5;
  EXPECT_DOUBLE_EQ(c.cycles_to_ns(1500), 1000.0);
  EXPECT_EQ(c.ns_to_cycles(1000.0), 1500u);
}

TEST(DpaAccelerator, MatchesAndAdvancesClock) {
  DpaAccelerator dpa(DpaConfig{}, match_cfg(4));
  for (Tag t = 0; t < 4; ++t)
    dpa.post_receive({1, t, 0}, 0, 0, 10 + static_cast<std::uint64_t>(t));
  const auto out = dpa.deliver(distinct_messages(4));
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].kind, ArrivalOutcome::Kind::kMatched);
    EXPECT_EQ(out[i].match.receive_cookie, 10u + i);
  }
  EXPECT_GT(dpa.now(), 0u);
  EXPECT_GT(dpa.busy_cycles(), 0u);
  EXPECT_EQ(dpa.host_matching_cycles(), 0u)
      << "offloading fully frees the host CPU (Sec. VI)";
}

TEST(DpaAccelerator, SerialCqeDispatchStaggersThreads) {
  DpaConfig cfg;
  cfg.cqe_interval = 100;
  DpaAccelerator dpa(cfg, match_cfg(4));
  for (Tag t = 0; t < 4; ++t) dpa.post_receive({1, t, 0});
  const auto out = dpa.deliver(distinct_messages(4));
  // With no conflicts, later messages finish later by at least the
  // dispatch interval (they also start later).
  for (unsigned i = 1; i < 4; ++i)
    EXPECT_GT(out[i].timing.finish_cycles, out[i - 1].timing.finish_cycles);
}

TEST(DpaAccelerator, ExplicitArrivalTimesRespected) {
  DpaAccelerator dpa(DpaConfig{}, match_cfg(2));
  dpa.post_receive({1, 0, 0});
  dpa.post_receive({1, 1, 0});
  const std::vector<std::uint64_t> arrivals = {100'000, 200'000};
  const auto out = dpa.deliver(distinct_messages(2), arrivals);
  EXPECT_GT(out[0].timing.finish_cycles, 100'000u);
  EXPECT_GT(out[1].timing.finish_cycles, 200'000u);
}

TEST(DpaAccelerator, PipelineBackpressureAcrossBlocks) {
  // Two back-to-back blocks: slot t of block 2 cannot start before slot t
  // of block 1 finished, so total time exceeds a single block's time.
  DpaAccelerator one_block(DpaConfig{}, match_cfg(4));
  DpaAccelerator two_blocks(DpaConfig{}, match_cfg(4));
  for (Tag t = 0; t < 8; ++t) {
    one_block.post_receive({1, t, 0});
    two_blocks.post_receive({1, t, 0});
  }
  one_block.deliver(distinct_messages(4));
  const auto single = one_block.now();
  two_blocks.deliver(distinct_messages(8));
  EXPECT_GT(two_blocks.now(), single);
}

TEST(DpaAccelerator, WithConflictSlowerThanWithout) {
  // The modeled clock must reproduce Fig. 8's ordering: NC > WC-FP > WC-SP
  // in message rate, i.e. NC finishes earliest for the same message count.
  constexpr unsigned kN = 16;
  auto run = [&](bool same_key, bool fast_path) {
    MatchConfig mc = match_cfg(kN);
    mc.enable_fast_path = fast_path;
    mc.early_booking_check = false;
    DpaAccelerator dpa(DpaConfig{}, mc);
    std::vector<IncomingMessage> msgs;
    for (unsigned i = 0; i < kN; ++i) {
      const Tag t = same_key ? 5 : static_cast<Tag>(i);
      dpa.post_receive({1, t, 0});
    }
    for (unsigned i = 0; i < kN; ++i) {
      const Tag t = same_key ? 5 : static_cast<Tag>(i);
      msgs.push_back(IncomingMessage::make(1, t, 0));
    }
    dpa.deliver(msgs);
    return dpa.now();
  };
  const auto nc = run(false, true);
  const auto wc_fp = run(true, true);
  const auto wc_sp = run(true, false);
  EXPECT_LT(nc, wc_fp);
  EXPECT_LT(wc_fp, wc_sp);
}

TEST(DpaAccelerator, RejectsBlocksBeyondHardwareThreads) {
  DpaConfig cfg;
  cfg.max_threads = 8;
  MatchConfig mc = match_cfg(16);
  EXPECT_DEATH(DpaAccelerator(cfg, mc), "exceed DPA hardware threads");
}

TEST(DpaWatchdog, PressureStreakDemotesAndHealthyWindowRepromotes) {
  DpaConfig cfg;
  cfg.watchdog.enabled = true;
  cfg.watchdog.pressure_streak = 3;
  cfg.watchdog.healthy_window = 2;
  DpaAccelerator dpa(cfg, match_cfg(4));

  // Two dirty ticks are under the streak threshold; a clean tick in between
  // resets the streak entirely.
  dpa.watchdog_tick(true);
  dpa.watchdog_tick(true);
  EXPECT_FALSE(dpa.degraded());
  dpa.watchdog_tick(false);
  dpa.watchdog_tick(true);
  dpa.watchdog_tick(true);
  EXPECT_FALSE(dpa.degraded()) << "clean tick must reset the pressure streak";

  // Third consecutive dirty tick demotes.
  dpa.watchdog_tick(true);
  EXPECT_TRUE(dpa.degraded());
  EXPECT_FALSE(dpa.promotable());

  // Hysteresis: a dirty tick while degraded restarts the healthy window.
  dpa.watchdog_tick(false);
  dpa.watchdog_tick(true);
  EXPECT_FALSE(dpa.promotable());
  dpa.watchdog_tick(false);
  dpa.watchdog_tick(false);
  EXPECT_TRUE(dpa.promotable());

  dpa.promote();
  EXPECT_FALSE(dpa.degraded());
  EXPECT_FALSE(dpa.promotable());
}

TEST(DpaWatchdog, ForceDemoteIsNoopWhenDisabled) {
  DpaAccelerator off(DpaConfig{}, match_cfg(4));
  off.force_demote();
  EXPECT_FALSE(off.degraded());

  DpaConfig cfg;
  cfg.watchdog.enabled = true;
  DpaAccelerator on(cfg, match_cfg(4));
  on.force_demote();
  EXPECT_TRUE(on.degraded());
}

TEST(DpaWatchdog, DrainAllEvictsPendingAndUnexpected) {
  DpaConfig cfg;
  cfg.watchdog.enabled = true;
  DpaAccelerator dpa(cfg, match_cfg(4));

  // A pending receive that matches nothing in flight, plus one unexpected
  // arrival that matches no posted receive.
  MatchSpec spec;
  spec.source = 7;
  spec.tag = 99;
  ASSERT_EQ(dpa.post_receive(spec, /*buffer_addr=*/0x1000,
                             /*buffer_capacity=*/64, /*cookie=*/41)
                .kind,
            PostOutcome::Kind::kPending);
  dpa.deliver(distinct_messages(1));  // source 1, tag 0: goes unexpected

  dpa.force_demote();
  std::vector<MatchEngine::DrainedReceive> receives;
  std::vector<UnexpectedDescriptor> ums;
  dpa.drain_all(receives, ums);

  ASSERT_EQ(receives.size(), 1u);
  EXPECT_EQ(receives[0].spec.source, 7);
  EXPECT_EQ(receives[0].spec.tag, 99);
  EXPECT_EQ(receives[0].cookie, 41u);
  EXPECT_EQ(receives[0].buffer_addr, 0x1000u);
  ASSERT_EQ(ums.size(), 1u);
  EXPECT_EQ(ums[0].env.source, 1);
  EXPECT_EQ(ums[0].env.tag, 0);

  // The NIC domain is now empty: draining again yields nothing.
  receives.clear();
  ums.clear();
  dpa.drain_all(receives, ums);
  EXPECT_TRUE(receives.empty());
  EXPECT_TRUE(ums.empty());
}

TEST(DpaWatchdog, LaneDemotionIsLaneLocalAndRepromotes) {
  // Per-lane watchdog over a 4-lane, 4-shard accelerator: a pressure
  // streak on lane 2 demotes only lane 2 — siblings keep matching on the
  // NIC and the global (whole-accelerator) demotion path stays untouched.
  DpaConfig cfg;
  cfg.watchdog.enabled = true;
  cfg.watchdog.pressure_streak = 3;
  cfg.watchdog.healthy_window = 2;
  MatchConfig mc = match_cfg(4);
  mc.shards = 4;
  DpaAccelerator dpa(cfg, mc);
  dpa.set_ingress_lanes(4);

  dpa.lane_watchdog_tick(2, true);
  dpa.lane_watchdog_tick(2, true);
  EXPECT_FALSE(dpa.lane_degraded(2)) << "two dirty ticks are under the streak";
  dpa.lane_watchdog_tick(2, true);
  EXPECT_TRUE(dpa.lane_degraded(2));
  EXPECT_TRUE(dpa.any_lane_degraded());
  for (unsigned l : {0u, 1u, 3u})
    EXPECT_FALSE(dpa.lane_degraded(l)) << "lane " << l << " caught lane 2's demotion";
  EXPECT_FALSE(dpa.degraded()) << "a lane demotion must not demote the DPA";

  // Eviction is shard-scoped: a pending receive for source 2 (shard 2,
  // lane 2's traffic) drains to the host; the source-1 receive stays on
  // the NIC and still matches a later delivery.
  MatchSpec on_lane2;
  on_lane2.source = 2;
  on_lane2.tag = 5;
  ASSERT_EQ(dpa.post_receive(on_lane2, 0x2000, 64, /*cookie=*/52).kind,
            PostOutcome::Kind::kPending);
  MatchSpec on_lane1;
  on_lane1.source = 1;
  on_lane1.tag = 5;
  ASSERT_EQ(dpa.post_receive(on_lane1, 0x1000, 64, /*cookie=*/51).kind,
            PostOutcome::Kind::kPending);

  std::vector<MatchEngine::DrainedReceive> receives;
  std::vector<UnexpectedDescriptor> ums;
  dpa.drain_lane_shard(2, receives, ums);
  ASSERT_EQ(receives.size(), 1u);
  EXPECT_EQ(receives[0].spec.source, 2);
  EXPECT_EQ(receives[0].cookie, 52u);
  EXPECT_TRUE(ums.empty());

  const std::vector<IncomingMessage> lane1_msg = {IncomingMessage::make(1, 5, 0)};
  const auto out = dpa.deliver(lane1_msg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, ArrivalOutcome::Kind::kMatched)
      << "sibling lanes must keep matching on the NIC while lane 2 is down";
  EXPECT_EQ(out[0].match.receive_cookie, 51u);

  // Hysteresis mirrors the global watchdog: a healthy window re-promotes
  // just this lane.
  dpa.lane_watchdog_tick(2, false);
  EXPECT_FALSE(dpa.lane_promotable(2));
  dpa.lane_watchdog_tick(2, false);
  ASSERT_TRUE(dpa.lane_promotable(2));
  dpa.lane_promote(2);
  EXPECT_FALSE(dpa.lane_degraded(2));
  EXPECT_FALSE(dpa.any_lane_degraded());
}

TEST(DpaWatchdog, ForceDemoteLaneIsNoopWhenDisabled) {
  MatchConfig mc = match_cfg(4);
  mc.shards = 4;
  DpaAccelerator off(DpaConfig{}, mc);
  off.set_ingress_lanes(4);
  off.force_demote_lane(1);
  EXPECT_FALSE(off.lane_degraded(1));
  EXPECT_FALSE(off.any_lane_degraded());

  DpaConfig cfg;
  cfg.watchdog.enabled = true;
  DpaAccelerator on(cfg, mc);
  on.set_ingress_lanes(4);
  on.force_demote_lane(1);
  EXPECT_TRUE(on.lane_degraded(1));
  EXPECT_FALSE(on.degraded());
}

}  // namespace
}  // namespace otm
