// The optimistic parallel matching of a block of N incoming messages
// (Sec. III-A/C/D).
//
// Thread t processes message t of the block (messages are arrival-ordered,
// so thread ids encode arrival order — the basis of constraint C2). The
// algorithm runs in three phases:
//
//   1. optimistic:  search all four indexes as if alone; tentatively book
//                   the oldest candidate in its booking bitmap.
//                   [partial barrier: wait for lower threads to book]
//   2. detect:      a lower-id bit on my candidate's bitmap means I lost;
//                   publish the lowest losing thread id.
//                   [partial barrier: wait for lower threads to detect]
//   3. resolve:     threads below the first loser keep their candidate;
//                   the rest resolve via the fast path (full bitmap =>
//                   everyone wants the head of a compatible sequence; take
//                   the entry shifted by my thread id) or the slow path
//                   (wait for the previous thread, then re-search).
//
// Every wait targets a strictly lower thread id, so executing the phases
// sequentially in ascending thread order is always a legal schedule — the
// LockstepExecutor exploits this for deterministic tests and trace replay,
// while the ThreadedExecutor provides real concurrency.
//
// A BlockMatcher is reusable: the engine constructs one per store and calls
// begin_block() for each matching block, recycling the fixed-size per-thread
// scratch (states, results, barriers) instead of reallocating per block.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/cost_model.hpp"
#include "core/receive_store.hpp"
#include "core/types.hpp"
#include "util/partial_barrier.hpp"

namespace otm {

/// How a message's final decision was reached.
enum class ResolutionPath : std::uint8_t {
  kOptimistic = 0,  ///< kept the optimistic candidate (no conflict involved)
  kFastPath = 1,    ///< resolved by shifting along a compatible sequence
  kSlowPath = 2,    ///< resolved by synchronized re-search
};

class BlockMatcher {
 public:
  /// Reusable form: bind the store once, then begin_block() per block.
  BlockMatcher(const MatchConfig& cfg, ReceiveStore& store,
               const CostTable* costs = nullptr);

  /// One-shot convenience (tests): construct ready-to-run for one block.
  /// `generation` must be unique per block (booking-bitmap epoch).
  /// `start_cycles[t]`, when accounting is on, is thread t's modeled
  /// dispatch time (e.g. CQE arrival); pass empty for zero.
  BlockMatcher(const MatchConfig& cfg, ReceiveStore& store,
               std::uint32_t generation, std::span<const IncomingMessage> msgs,
               const CostTable* costs = nullptr,
               std::span<const std::uint64_t> start_cycles = {});

  BlockMatcher(const BlockMatcher&) = delete;
  BlockMatcher& operator=(const BlockMatcher&) = delete;

  /// Arm the matcher for a new block, resetting all per-block scratch.
  /// Must not be called while a previous block is still executing.
  void begin_block(std::uint32_t generation,
                   std::span<const IncomingMessage> msgs,
                   std::span<const std::uint64_t> start_cycles = {});

  unsigned num_threads() const noexcept {
    return static_cast<unsigned>(msgs_.size());
  }

  // Phase entry points (see class comment for the contract).
  void run_optimistic(unsigned tid);
  void run_detect(unsigned tid);
  void run_resolve(unsigned tid);

  /// Convenience: all three phases back to back (threaded execution).
  void run_all(unsigned tid) {
    run_optimistic(tid);
    run_detect(tid);
    run_resolve(tid);
  }

  struct ThreadResult {
    std::uint32_t final_slot = kInvalidSlot;  ///< matched receive, or invalid
    std::uint32_t first_candidate = kInvalidSlot;  ///< optimistic-phase pick
    ResolutionPath path = ResolutionPath::kOptimistic;
    bool conflicted = false;       ///< lost its optimistic candidate
    bool fast_path_aborted = false;
    std::uint64_t finish_cycles = 0;
    SearchLocal search;
  };

  /// Valid after all threads completed run_resolve.
  const ThreadResult& result(unsigned tid) const noexcept {
    return results_[tid];
  }

  const IncomingMessage& message(unsigned tid) const noexcept {
    return msgs_[tid];
  }

 private:
  struct ThreadState {
    std::uint32_t candidate = kInvalidSlot;
    bool lost = false;
    ReceiveStore::Cursor cursor;  ///< candidate's position (fast-path start)
    ThreadClock clock;
  };

  void finalize(unsigned tid, std::uint32_t slot, ResolutionPath path);

  /// Eager removal pays a per-consume lock+unlink cost inside the matching
  /// thread, serialized per bin on the remove lock; lazy removal defers the
  /// work to the insert path (Sec. III-D).
  void charge_removal(ThreadClock& clock, std::uint32_t slot) const {
    if (!cfg_.lazy_removal) store_.charge_eager_removal(slot, clock);
  }

  std::uint32_t full_mask() const noexcept {
    const unsigned n = num_threads();
    return n >= 32 ? 0xFFFF'FFFFu : ((1u << n) - 1u);
  }

  const MatchConfig& cfg_;
  ReceiveStore& store_;
  const CostTable* costs_;
  std::uint32_t gen_ = 0;
  std::span<const IncomingMessage> msgs_;

  std::array<ThreadState, kMaxBlockThreads> threads_;
  std::array<ThreadResult, kMaxBlockThreads> results_;

  PartialBarrier booked_barrier_;
  PartialBarrier detect_barrier_;
  std::atomic<std::uint32_t> first_loser_{0};

  // resolved[t] set (release) once thread t's decision is final; the
  // published value is its modeled finish time for slow-path joins.
  std::atomic<std::uint32_t> resolved_bits_{0};
  std::array<std::atomic<std::uint64_t>, kMaxBlockThreads> resolved_time_{};
};

/// Scheduling strategy for a block (see class comment of BlockMatcher).
class BlockExecutor {
 public:
  virtual ~BlockExecutor() = default;
  virtual void execute(BlockMatcher& m) = 0;
};

/// Deterministic single-threaded schedule: every phase runs for all threads
/// in ascending id before the next phase starts. Models simultaneous
/// arrival (maximum conflict exposure) and is the analyzer's executor.
class LockstepExecutor final : public BlockExecutor {
 public:
  void execute(BlockMatcher& m) override;
};

/// Real concurrency: one std::thread per message of the block.
class ThreadedExecutor final : public BlockExecutor {
 public:
  void execute(BlockMatcher& m) override;
};

/// Sequential schedule: each thread runs all phases to completion before the
/// next starts. Minimum conflict exposure (each thread observes all earlier
/// consumptions); useful as a scheduling extreme in tests.
class SequentialExecutor final : public BlockExecutor {
 public:
  void execute(BlockMatcher& m) override;
};

}  // namespace otm
