// Common interface for the software (CPU-side) matching baselines.
//
// Both baselines — the traditional two-queue linked list (what mainstream
// MPI implementations use, Sec. II-A) and the Flajslik-style binned hash
// tables (Table I) — implement sequential MPI matching semantics. The list
// matcher is the semantic reference: the oracle property tests require the
// optimistic engine to produce the identical message->receive pairing.
#pragma once

#include <cstdint>
#include <optional>

#include "core/cost_model.hpp"
#include "core/types.hpp"

namespace otm {

class ReferenceMatcher {
 public:
  virtual ~ReferenceMatcher() = default;

  /// Post a receive identified by `receive_id`. If a stored unexpected
  /// message matches, that message's id is returned (and removed);
  /// otherwise the receive is queued.
  virtual std::optional<std::uint64_t> post(const MatchSpec& spec,
                                            std::uint64_t receive_id) = 0;

  /// Process an incoming message identified by `message_id`. If a posted
  /// receive matches, its id is returned (and removed); otherwise the
  /// message is stored as unexpected.
  virtual std::optional<std::uint64_t> arrive(const Envelope& env,
                                              std::uint64_t message_id) = 0;

  virtual std::size_t posted_size() const = 0;
  virtual std::size_t unexpected_size() const = 0;

  struct Stats {
    std::uint64_t posts = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t attempts = 0;  ///< queue entries examined in total
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Optional modeled-cycle accounting (Fig. 8 MPI-CPU baseline).
  void set_clock(ThreadClock* clock) noexcept { clock_ = clock; }

 protected:
  void charge_step() noexcept {
    ++stats_.attempts;
    if (clock_ != nullptr) OTM_CHARGE(*clock_, chain_step);
  }
  void charge(std::uint64_t CostTable::* field) noexcept {
    if (clock_ != nullptr && clock_->enabled())
      clock_->charge(clock_->costs()->*field);
  }

  Stats stats_;
  ThreadClock* clock_ = nullptr;
};

}  // namespace otm
