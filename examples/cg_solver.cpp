// Distributed conjugate gradient on a 1D Poisson problem — the canonical
// HPC workload mix the paper's application analysis is about: a halo
// exchange per matrix-vector product (p2p through the offloaded matcher)
// plus dot-product allreduces (collectives layered over matched p2p,
// Sec. VII).
//
//   $ ./cg_solver [--ranks=8 --local=64 --tol=1e-10]
//
// Solves A u = b where A is the tridiagonal (-1, 2, -1) Laplacian, with a
// manufactured right-hand side so the solution is known exactly. Prints
// convergence and the matching statistics gathered on the way.
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpi/mpi.hpp"
#include "util/args.hpp"

using namespace otm;

namespace {

constexpr Tag kHaloLeft = 10;   // value travelling left -> right boundary
constexpr Tag kHaloRight = 11;  // value travelling right -> left boundary

/// Tridiagonal Laplacian matvec with a one-value halo on each side.
void matvec(mpi::Proc& proc, const mpi::Comm& comm,
            const std::vector<double>& x, std::vector<double>& y) {
  const int p = proc.size();
  const Rank me = proc.rank();
  const std::size_t n = x.size();
  double left_ghost = 0.0;   // Dirichlet boundary outside the domain
  double right_ghost = 0.0;

  std::vector<mpi::Request> reqs;
  if (me > 0)
    reqs.push_back(proc.irecv(
        std::as_writable_bytes(std::span(&left_ghost, 1)), me - 1, kHaloLeft,
        comm));
  if (me < p - 1)
    reqs.push_back(proc.irecv(
        std::as_writable_bytes(std::span(&right_ghost, 1)), me + 1, kHaloRight,
        comm));
  if (me > 0)
    proc.send(std::as_bytes(std::span(&x.front(), 1)), me - 1, kHaloRight, comm);
  if (me < p - 1)
    proc.send(std::as_bytes(std::span(&x.back(), 1)), me + 1, kHaloLeft, comm);
  proc.wait_all(reqs);

  for (std::size_t i = 0; i < n; ++i) {
    const double xl = i == 0 ? left_ghost : x[i - 1];
    const double xr = i == n - 1 ? right_ghost : x[i + 1];
    y[i] = 2.0 * x[i] - xl - xr;
  }
}

double dot(mpi::Proc& proc, const mpi::Comm& comm,
           const std::vector<double>& a, const std::vector<double>& b) {
  double local[1] = {0.0};
  for (std::size_t i = 0; i < a.size(); ++i) local[0] += a[i] * b[i];
  double global[1];
  proc.allreduce(local, global, mpi::Proc::ReduceOp::kSum, comm);
  return global[0];
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 8));
  const std::size_t local = static_cast<std::size_t>(args.get_int("local", 64));
  const double tol = args.get_double("tol", 1e-10);
  const std::size_t total = local * static_cast<std::size_t>(ranks);

  std::printf("CG on a %zu-point 1D Poisson problem over %d ranks "
              "(%zu points/rank)\n", total, ranks, local);

  mpi::World world(ranks, {});
  double final_err = 0.0;
  int final_iters = 0;

  world.run([&](mpi::Proc& proc) {
    const mpi::Comm comm = proc.world_comm();
    const std::size_t off = local * static_cast<std::size_t>(proc.rank());
    const double h = 1.0 / static_cast<double>(total + 1);

    // Manufactured solution u(s) = sin(pi s): b = A u with
    // u'' known analytically; use the discrete operator for exactness.
    auto u_exact = [&](std::size_t gi) {
      return std::sin(M_PI * static_cast<double>(gi + 1) * h);
    };
    std::vector<double> u_true(local);
    for (std::size_t i = 0; i < local; ++i) u_true[i] = u_exact(off + i);
    std::vector<double> b(local);
    matvec(proc, comm, u_true, b);  // b = A u*, via real halo exchange

    // CG iteration.
    std::vector<double> x(local, 0.0);
    std::vector<double> r = b;
    std::vector<double> d = r;
    std::vector<double> q(local);
    double rho = dot(proc, comm, r, r);
    const double rho0 = rho;
    int it = 0;
    for (; it < 10 * static_cast<int>(total) && rho > tol * tol * rho0; ++it) {
      matvec(proc, comm, d, q);
      const double alpha = rho / dot(proc, comm, d, q);
      for (std::size_t i = 0; i < local; ++i) {
        x[i] += alpha * d[i];
        r[i] -= alpha * q[i];
      }
      const double rho_new = dot(proc, comm, r, r);
      const double beta = rho_new / rho;
      rho = rho_new;
      for (std::size_t i = 0; i < local; ++i) d[i] = r[i] + beta * d[i];
    }

    // Error against the manufactured solution.
    double local_err[1] = {0.0};
    for (std::size_t i = 0; i < local; ++i)
      local_err[0] = std::max(local_err[0], std::fabs(x[i] - u_true[i]));
    double global_err[1];
    proc.allreduce(local_err, global_err, mpi::Proc::ReduceOp::kMax, comm);
    if (proc.rank() == 0) {
      final_err = global_err[0];
      final_iters = it;
    }
    proc.barrier(comm);
  });

  std::printf("converged in %d iterations, max error %.3e %s\n", final_iters,
              final_err, final_err < 1e-6 ? "(OK)" : "(BAD)");

  MatchStats total_stats;
  for (Rank r = 0; r < ranks; ++r)
    if (const MatchStats* s = world.proc(r).match_stats()) total_stats += *s;
  std::printf("matching offloaded across the job: %llu messages matched, "
              "%llu unexpected, %llu search attempts, 0 host cycles\n",
              static_cast<unsigned long long>(total_stats.messages_matched),
              static_cast<unsigned long long>(total_stats.messages_unexpected),
              static_cast<unsigned long long>(total_stats.match_attempts));
  return final_err < 1e-6 ? 0 : 1;
}
