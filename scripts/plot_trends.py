#!/usr/bin/env python3
"""Trend lines across per-commit benchmark documents.

CI uploads one BENCH_matching.json artifact per commit (see the perf-gate
job); this script turns an ordered series of those documents into
per-scenario trajectories so rate history can be inspected without
re-running the harness:

  scripts/plot_trends.py BENCH_a.json BENCH_b.json BENCH_c.json \
      [--out trends] [--labels sha1,sha2,sha3] [--bench fig8_message_rate]

Outputs (no dependencies beyond the Python 3 standard library):
  <out>.csv  — bench,scenario,label,msgs_per_sec rows, document order
  <out>.svg  — one polyline per scenario, normalized to its first point,
               so modeled and walltime scenarios share one axis
  stdout     — per-scenario ASCII sparkline + first->last delta

Documents are validated with the perf-gate loader, so anything this script
accepts is also gate-compatible. Order of the positional arguments is the
commit order; --labels (comma-separated, same length) names the points.

Exit codes: 0 ok, 1 invalid document, 2 usage error.
"""

import argparse
import csv
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from perf_gate import DocumentError, load_scenarios  # noqa: E402

SPARKS = "▁▂▃▄▅▆▇█"

SVG_W, SVG_H, SVG_PAD = 720, 360, 48
PALETTE = (
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
)


def sparkline(values):
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARKS[0] * len(values)
    step = (hi - lo) / (len(SPARKS) - 1)
    return "".join(SPARKS[int(round((v - lo) / step))] for v in values)


def collect(paths, bench_filter):
    """[(label-less) series] -> {(bench, scenario): [rate or None per doc]}."""
    series = {}
    for i, path in enumerate(paths):
        doc = load_scenarios(path)
        for (bench, name), s in doc.items():
            if bench_filter and bench != bench_filter:
                continue
            series.setdefault((bench, name), [None] * len(paths))
            series[(bench, name)][i] = float(s["msgs_per_sec"])
    return series


def write_csv(out_csv, series, labels):
    with open(out_csv, "w", newline="", encoding="utf-8") as f:
        w = csv.writer(f)
        w.writerow(["bench", "scenario", "label", "msgs_per_sec"])
        for (bench, name), rates in sorted(series.items()):
            for label, rate in zip(labels, rates):
                if rate is not None:
                    w.writerow([bench, name, label, f"{rate:.3f}"])


def write_svg(out_svg, series, labels):
    """Normalized polylines (first present point == 1.0) in a plain SVG."""
    n = len(labels)
    plot_w = SVG_W - 2 * SVG_PAD
    plot_h = SVG_H - 2 * SVG_PAD
    norm = {}
    lo, hi = 1.0, 1.0
    for key, rates in sorted(series.items()):
        base = next((r for r in rates if r is not None), None)
        if base is None or base <= 0:
            continue
        vals = [None if r is None else r / base for r in rates]
        norm[key] = vals
        for v in vals:
            if v is not None:
                lo, hi = min(lo, v), max(hi, v)
    span = (hi - lo) or 1.0

    def xy(i, v):
        x = SVG_PAD + (plot_w * i / max(n - 1, 1))
        y = SVG_PAD + plot_h * (1.0 - (v - lo) / span)
        return f"{x:.1f},{y:.1f}"

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{SVG_W}" '
        f'height="{SVG_H + 14 * len(norm)}" font-family="monospace" '
        'font-size="11">',
        f'<rect x="{SVG_PAD}" y="{SVG_PAD}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#ccc"/>',
        f'<text x="{SVG_PAD}" y="{SVG_PAD - 8}">msgs_per_sec, '
        'normalized to first point per scenario</text>',
    ]
    baseline_y = SVG_PAD + plot_h * (1.0 - (1.0 - lo) / span)
    parts.append(
        f'<line x1="{SVG_PAD}" y1="{baseline_y:.1f}" x2="{SVG_PAD + plot_w}" '
        f'y2="{baseline_y:.1f}" stroke="#eee"/>')
    for i, label in enumerate(labels):
        x = SVG_PAD + (plot_w * i / max(n - 1, 1))
        parts.append(
            f'<text x="{x:.1f}" y="{SVG_H - SVG_PAD + 16}" '
            f'text-anchor="middle">{label}</text>')
    for ci, (key, vals) in enumerate(sorted(norm.items())):
        color = PALETTE[ci % len(PALETTE)]
        pts = " ".join(xy(i, v) for i, v in enumerate(vals) if v is not None)
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            'stroke-width="1.5"/>')
        parts.append(
            f'<text x="{SVG_PAD}" y="{SVG_H + 14 * ci}" fill="{color}">'
            f'{key[0]}/{key[1]}</text>')
    parts.append("</svg>")
    with open(out_svg, "w", encoding="utf-8") as f:
        f.write("\n".join(parts) + "\n")


def self_test():
    import json
    import tempfile

    def doc(rate):
        return {
            "schema_version": 1,
            "bench": "fig8_message_rate",
            "scenarios": [
                {"name": "optimistic_nc", "kind": "modeled",
                 "msgs_per_sec": rate},
                {"name": "storm_8b", "kind": "modeled",
                 "msgs_per_sec": rate * 2},
            ],
        }

    with tempfile.TemporaryDirectory() as td:
        paths = []
        for i, rate in enumerate([100.0, 110.0, 104.0]):
            p = os.path.join(td, f"d{i}.json")
            with open(p, "w", encoding="utf-8") as f:
                json.dump(doc(rate), f)
            paths.append(p)
        series = collect(paths, None)
        assert len(series) == 2, series
        key = ("fig8_message_rate", "optimistic_nc")
        assert series[key] == [100.0, 110.0, 104.0]
        out = os.path.join(td, "t")
        write_csv(out + ".csv", series, ["a", "b", "c"])
        write_svg(out + ".svg", series, ["a", "b", "c"])
        with open(out + ".csv", encoding="utf-8") as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["bench", "scenario", "label", "msgs_per_sec"]
        assert len(rows) == 1 + 6, rows
        with open(out + ".svg", encoding="utf-8") as f:
            svg = f.read()
        assert "polyline" in svg and "optimistic_nc" in svg
        assert sparkline([1.0, 2.0, 3.0]) == "▁▅█"
    print("plot_trends self-test OK")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("docs", nargs="*", help="bench documents, commit order")
    ap.add_argument("--out", default="trends", help="output basename")
    ap.add_argument("--labels", help="comma-separated point labels")
    ap.add_argument("--bench", help="restrict to one bench family")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        self_test()
        return 0
    if len(args.docs) < 2:
        ap.error("need at least two documents to draw a trend")
    labels = (args.labels.split(",") if args.labels
              else [os.path.splitext(os.path.basename(p))[0]
                    for p in args.docs])
    if len(labels) != len(args.docs):
        ap.error("--labels length must match the number of documents")

    try:
        series = collect(args.docs, args.bench)
    except DocumentError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    if not series:
        print("error: no scenarios matched", file=sys.stderr)
        return 1

    write_csv(args.out + ".csv", series, labels)
    write_svg(args.out + ".svg", series, labels)
    for (bench, name), rates in sorted(series.items()):
        present = [r for r in rates if r is not None]
        delta = (present[-1] / present[0] - 1.0) * 100 if len(present) > 1 else 0
        print(f"{bench}/{name:32s} {sparkline(present)}  "
              f"{present[0]:.3g} -> {present[-1]:.3g}  ({delta:+.1f}%)")
    print(f"wrote {args.out}.csv, {args.out}.svg")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
