#include "proto/endpoint.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace otm::proto {

Endpoint::Endpoint(rdma::Fabric& fabric, Rank rank, const EndpointConfig& cfg,
                   const MatchConfig& match_cfg, const DpaConfig& dpa_cfg)
    : rank_(rank),
      cfg_(cfg),
      fabric_(&fabric),
      node_(fabric.add_node()),
      cq_(cfg.cq_depth),
      bounce_(cfg.bounce_count, cfg.bounce_bytes()),
      dpa_(dpa_cfg, match_cfg) {
  // Ingress lanes (docs/SHARDING.md): per-lane CQ/SRQ pairs; lane 0 reuses
  // the members above so a single-lane endpoint is byte-identical.
  lanes_ = cfg_.ingress_lanes == 0 ? 1u : cfg_.ingress_lanes;
  OTM_ASSERT_MSG((lanes_ & (lanes_ - 1)) == 0 && lanes_ <= kMaxShards,
                 "ingress_lanes must be a power of two <= kMaxShards");
  lane_mask_ = lanes_ - 1;
  tx_lane_ = static_cast<std::uint16_t>(steer_lane(rank_, lane_mask_));
  for (unsigned l = 1; l < lanes_; ++l)
    lanes_extra_.push_back(std::make_unique<IngressLane>(cfg_.cq_depth));
  dpa_.set_ingress_lanes(lanes_);
  // Stage every bounce buffer as a receive WQE up front (Sec. IV-A),
  // partitioned round-robin across the lane SRQs (with one lane this is
  // the historical whole-pool post into srq_).
  bounce_lane_.resize(bounce_.capacity(), 0);
  for (std::size_t i = 0; i < bounce_.capacity(); ++i) {
    const auto h = bounce_.allocate();
    OTM_ASSERT(h.has_value());
    // otmlint: allow(R10) -- buffer-pool round-robin, not flow steering
    const auto lane = static_cast<std::uint16_t>(*h % lanes_);
    OTM_ASSERT(*h < bounce_lane_.size());
    bounce_lane_[*h] = lane;
    lane_srq(lane).post(*h, bounce_.data(*h));
  }
  // Pay-for-what-you-use: the reliable-delivery sublayer engages only when
  // asked for, or automatically once the fabric can actually lose packets.
  using Mode = ReliabilityConfig::Mode;
  rel_active_ = cfg_.reliability.mode == Mode::kOn ||
                (cfg_.reliability.mode == Mode::kAuto &&
                 fabric.config().fault.enabled);
  // Planted-bug switches for the model checker's self-test
  // (docs/VERIFICATION.md): OTM_VERIFY_BREAK names fences to disable.
  // Read per construction so a test can scope the break to one World.
  if (const char* breaks = std::getenv("OTM_VERIFY_BREAK")) {
    break_epoch_fence_ = std::strstr(breaks, "epoch_fence") != nullptr;
    break_ack_fence_ = std::strstr(breaks, "ack_fence") != nullptr;
  }
}

void Endpoint::connect(Endpoint& peer) {
  OTM_ASSERT_MSG(!connected_to(peer.rank_), "already connected");
  OTM_ASSERT_MSG(lanes_ == peer.lanes_,
                 "ingress lane counts must match world-wide (the steering "
                 "hash is symmetric)");
  // One QP pair per ingress lane: lane l of the pair feeds the receiver's
  // lane-l CQ/SRQ on both ends (the receiver's RSS steering decision).
  // In-place construction: QueuePair owns a capability token and is
  // intentionally immovable.
  for (unsigned l = 0; l < lanes_; ++l) {
    const auto lane = static_cast<std::uint16_t>(l);
    auto [it, ok] =
        qps_.try_emplace({peer.rank_, lane}, *fabric_, node_, lane_cq(l),
                         registry_, lane_srq(l), lane);
    OTM_ASSERT(ok);
    auto [pit, pok] = peer.qps_.try_emplace({rank_, lane}, *fabric_,
                                            peer.node_, peer.lane_cq(l),
                                            peer.registry_, peer.lane_srq(l),
                                            lane);
    OTM_ASSERT(pok);
    it->second.connect(pit->second);
  }
  peers_.emplace(peer.rank_, &peer);
  peer.peers_.emplace(rank_, this);
}

void Endpoint::attach_observability(obs::Observability* obs,
                                    std::string_view prefix) {
  obs_ = obs;
  ch_ = CounterHandles{};
  fab_ch_ = FabricCounterHandles{};
  const std::string p(prefix);
  dpa_.attach_observability(obs, p + ".dpa");
  if (obs_ == nullptr) return;
  if (obs::MetricsRegistry* reg = obs_->metrics()) {
#define OTM_X(field) ch_.field = &reg->counter(p + "." #field);
    OTM_ENDPOINT_COUNTER_FIELDS(OTM_X)
#undef OTM_X
    if (fabric_->injector() != nullptr) {
      fab_ch_.drops = &reg->counter(p + ".fabric.drops");
      fab_ch_.dups = &reg->counter(p + ".fabric.dups");
      fab_ch_.corruptions = &reg->counter(p + ".fabric.corruptions");
      fab_ch_.holds = &reg->counter(p + ".fabric.holds");
      fab_ch_.forced_rnrs = &reg->counter(p + ".fabric.forced_rnrs");
      fab_ch_.flap_drops = &reg->counter(p + ".fabric.flap_drops");
      fab_ch_.qp_errors = &reg->counter(p + ".fabric.qp_errors");
    }
    publish_counters();
  }
}

void Endpoint::publish_counters() noexcept {
  if (ch_.sends == nullptr) return;
#define OTM_X(field) ch_.field->set(counters_.field);
  OTM_ENDPOINT_COUNTER_FIELDS(OTM_X)
#undef OTM_X
  if (fab_ch_.drops != nullptr) {
    const auto& s = fabric_->injector()->stats();
    fab_ch_.drops->set(s.drops);
    fab_ch_.dups->set(s.duplicates);
    fab_ch_.corruptions->set(s.corruptions);
    fab_ch_.holds->set(s.holds);
    fab_ch_.forced_rnrs->set(s.forced_rnrs);
    fab_ch_.flap_drops->set(s.flap_drops);
    fab_ch_.qp_errors->set(s.qp_errors);
  }
}

std::uint64_t Endpoint::verify_fingerprint() const noexcept {
  SerialSection host(host_);
  std::uint64_t h = mix64(static_cast<std::uint64_t>(rank_) + 0x0f0f);
  for (const auto& [key, ch] : channels_) {
    h = mix64(h ^ (static_cast<std::uint64_t>(key.first) << 16 | key.second));
    h = mix64(h ^ ch.next_seq);
    h = mix64(h ^ (static_cast<std::uint64_t>(ch.epoch) << 1 |
                   static_cast<std::uint64_t>(ch.failed)));
    h = mix64(h ^ ch.buf_count);
    for (const auto& p : ch.window)
      h = mix64(h ^ (p.seq * 8 + p.retries * 2 +
                     static_cast<std::uint64_t>(p.sent)));
  }
  for (const auto& [key, rx] : rx_channels_) {
    h = mix64(h ^ (static_cast<std::uint64_t>(key.first) << 16 | key.second));
    h = mix64(h ^ rx.next_expected);
    h = mix64(h ^ rx.epoch);
    for (const auto& [seq, stash] : rx.ooo) h = mix64(h ^ (seq + 0x0051));
  }
  for (const auto& [peer, ps] : peer_health_)
    h = mix64(h ^ (static_cast<std::uint64_t>(peer) << 8 |
                   static_cast<std::uint64_t>(ps.health) << 4 | ps.attempts));
  h = mix64(h ^ host_inbox_.size());
  h = mix64(h ^ um_payloads_.size());
  // Fold the fabric-resident state too: packets staged in the receive CQ
  // (arrived but not yet drained) and packets held inside each QP's
  // reorder buffer. Without these, the model checker's subsumption cache
  // would merge states that differ only in undelivered traffic.
  for (unsigned l = 0; l < lanes_; ++l) {
    const rdma::CompletionQueue& lcq = lane_cq(l);
    for (std::uint64_t seq = lcq.next_sequence() - lcq.available();
         seq != lcq.next_sequence(); ++seq) {
      const auto cqe = lcq.peek_sequence(seq);
      OTM_ASSERT(cqe.has_value());
      const WireHeader wh = decode_header(bounce_.data(cqe->wr_id));
      h = mix64(h ^ (static_cast<std::uint64_t>(wh.source) << 32 |
                     static_cast<std::uint64_t>(wh.flags) << 16 |
                     wh.channel_class));
      h = mix64(h ^ (wh.channel_seq + (static_cast<std::uint64_t>(l) << 48)));
    }
  }
  for (const auto& [key, qp] : qps_)
    h = mix64(h ^ (static_cast<std::uint64_t>(key.first) +
                   (static_cast<std::uint64_t>(key.second) << 32) +
                   qp.verify_digest()));
  return h;
}

void Endpoint::release_staged(std::uint32_t rkey) {
  const auto it = send_staging_.find(rkey);
  OTM_ASSERT_MSG(it != send_staging_.end(), "releasing unknown send buffer");
  // The StagedBuffer destructor deregisters the region and frees the copy.
  send_staging_.erase(it);
}

Endpoint::Channel& Endpoint::channel(Rank dst, std::uint16_t cls) {
  const ChannelKey key{dst, cls};
  auto it = channels_.find(key);
  if (it != channels_.end()) return it->second;
  it = channels_.emplace(key, Channel{}).first;
  Channel& ch = it->second;
  if (cfg_.coalescing.enabled) {
    // Size the merge buffer once so the per-send append path never
    // allocates (tools/otmlint R2 guards it).
    ch.buf.resize(kMergedCountBytes + cfg_.merged_body_budget());
    ch.subs.resize(std::max<std::size_t>(cfg_.coalescing.max_messages, 1));
  }
  return ch;
}

bool Endpoint::cancel_receive(CommId comm, std::uint64_t cookie) {
  const auto buffer_addr = dpa_.cancel_receive(comm, cookie);
  if (!buffer_addr.has_value()) return false;
  OTM_ASSERT(*buffer_addr != 0);
  const std::size_t idx = static_cast<std::size_t>(*buffer_addr) - 1;
  OTM_ASSERT(idx < user_buffers_.size() && user_buffers_[idx].live);
  user_buffers_[idx].live = false;
  free_user_buffers_.push_back(idx);
  return true;
}

Endpoint::SendResult Endpoint::send(Rank dst, Tag tag, CommId comm,
                                    std::span<const std::byte> data) {
  SerialSection host(host_);
  rdma::QueuePair* qp = find_tx_qp(dst);
  OTM_ASSERT_MSG(qp != nullptr, "send to unconnected peer");

  const bool eager = data.size() <= cfg_.eager_threshold;
  const Envelope env{rank_, tag, comm};
  const std::uint16_t cls = tag_class(tag);
  const CoalescingConfig& co = cfg_.coalescing;

  Channel* ch = nullptr;
  if (rel_active_ || co.enabled) {
    ch = &channel(dst, cls);
    if (rel_active_) {
      const auto ph = peer_health_.find(dst);
      if (ph != peer_health_.end() && ph->second.health == PeerHealth::kDead) {
        // The health state machine declared the peer Dead: fail fast with
        // the typed outcome instead of the generic channel failure.
        delivery_errors_.push_back({dst, ch->next_seq++, env,
                                    static_cast<std::uint32_t>(data.size()), 0,
                                    Outcome::kPeerDead});
        ++counters_.messages_dropped;
        publish_counters();
        return {Outcome::kPeerDead, false, 0};
      }
    }
    if (rel_active_ && ch->failed) {
      // Graceful degradation: the channel is dead, so fail fast instead of
      // queueing work that can never complete.
      delivery_errors_.push_back({dst, ch->next_seq++, env,
                                  static_cast<std::uint32_t>(data.size()), 0});
      ++counters_.messages_dropped;
      publish_counters();
      return {Outcome::kFailed, false, 0};
    }
  }

  if (co.enabled) {
    const std::size_t budget = cfg_.merged_body_budget();
    const bool eligible =
        eager && data.size() <= co.eligible_bytes &&
        kMergedCountBytes + merged_sub_footprint(data.size()) <= budget;
    if (eligible) {
      // Age-based flush first: a buffered batch past its modeled deadline
      // goes out before this message starts a fresh accounting window.
      if (ch->buf_count != 0 && co.deadline_ns != 0 &&
          clock_ns_ >= ch->oldest_ns + co.deadline_ns)
        flush_channel({dst, cls}, *ch, FlushReason::kDeadline);
      // Byte budget: flush whatever is buffered if this one would not fit.
      if (kMergedCountBytes + ch->buf_bytes +
              merged_sub_footprint(data.size()) >
          budget)
        flush_channel({dst, cls}, *ch, FlushReason::kSize);
      coalesce_append(*ch, env, data);
      if (verify_hook_ != nullptr)
        verify_hook_->on_coalesce_append(rank_, dst, cls, ch->buf_count);
      ++counters_.sends;
      ++counters_.eager_sends;
      ++counters_.coalesced_sends;
      // Message-count / byte-budget trigger.
      if (ch->buf_count >= std::max<std::size_t>(co.max_messages, 1) ||
          kMergedCountBytes + ch->buf_bytes >= budget)
        flush_channel({dst, cls}, *ch, FlushReason::kSize);
      if (obs_ != nullptr) {
        if (obs::Tracer* tr = obs_->tracer())
          tr->record(obs::EventKind::kSend, clock_ns_,
                     static_cast<std::uint32_t>(dst), data.size(), 1u);
      }
      if (rel_active_ && ch->failed) {
        // The flush exhausted the retry budget; the append above is among
        // the reported DeliveryErrors.
        publish_counters();
        return {Outcome::kFailed, false, 0};
      }
      publish_counters();
      return {Outcome::kQueued, true, 0};
    }
    // Ineligible (rendezvous, large eager, ...): everything buffered for
    // this peer must reach the wire first, or the coalesced messages would
    // be overtaken — the per-(peer,tag) FIFO guarantee (docs/COALESCING.md).
    flush_peer(dst, FlushReason::kOrder);
    if (rel_active_ && ch->failed) {
      delivery_errors_.push_back({dst, ch->next_seq++, env,
                                  static_cast<std::uint32_t>(data.size()), 0});
      ++counters_.messages_dropped;
      publish_counters();
      return {Outcome::kFailed, false, 0};
    }
  }

  WireHeader h;
  h.source = rank_;
  h.tag = tag;
  h.comm = comm;
  h.protocol = static_cast<std::uint8_t>(eager ? Protocol::kEager
                                               : Protocol::kRendezvous);
  h.channel_class = cls;
  h.payload_bytes = static_cast<std::uint32_t>(data.size());
  h.sender_seq = sender_seq_++;
  const InlineHashes hashes = InlineHashes::compute(env);
  h.hash_src_tag = hashes.src_tag;
  h.hash_src = hashes.src;
  h.hash_tag = hashes.tag;
  if (rel_active_) {
    h.channel_seq = ch->next_seq++;
    // Epoch 0 encodes to zero bits: the wire stays byte-identical until the
    // channel's first recovery.
    h.flags = kWireFlagReliable | wire_epoch_bits(ch->epoch);
  }

  // Rendezvous staging is RAII: if this send bails out before the fabric
  // (or the send window) accepts the packet, the local handle deregisters
  // and frees the copy on return — the leak-on-early-return hazard of the
  // raw-rkey protocol is gone.
  StagedBuffer staged;
  std::vector<std::byte> packet;
  if (eager) {
    h.inline_bytes = h.payload_bytes;
    packet.resize(kHeaderBytes + data.size());
    encode_header(h, packet);
    std::copy(data.begin(), data.end(), packet.begin() + kHeaderBytes);
  } else {
    // Rendezvous RTS: stage a copy of the payload (buffered-send
    // semantics), register it for the remote read, and optionally carry
    // the first fragment inline (Sec. IV-B).
    h.inline_bytes = cfg_.rts_inline_data
                         ? static_cast<std::uint32_t>(
                               std::min(cfg_.eager_threshold, data.size()))
                         : 0;
    staged = StagedBuffer(registry_,
                          std::vector<std::byte>(data.begin(), data.end()));
    h.rkey = staged.rkey();
    h.rkey_valid = 1;
    h.remote_offset = 0;
    packet.resize(kHeaderBytes + h.inline_bytes);
    encode_header(h, packet);
    std::copy_n(data.begin(), h.inline_bytes, packet.begin() + kHeaderBytes);
  }

  // Doorbell batching: the first send of a burst pays the full posting
  // overhead (WQE build + doorbell MMIO); subsequent back-to-back sends are
  // chained into the same doorbell and pay only the WQE build. progress()
  // closes the burst.
  if (!send_burst_open_) ++lane_doorbells_[tx_lane_];
  clock_ns_ += static_cast<std::uint64_t>(send_burst_open_ ? cfg_.send_post_ns
                                                           : cfg_.send_overhead_ns);
  send_burst_open_ = true;
  ++counters_.sends;

  if (rel_active_) {
    // Reliable path: seal the packet (CRC over the final bytes, so retries
    // are byte-identical) and queue it on the channel's send window. The
    // window, not the fabric, now owns delivery.
    seal_packet(packet);
    PendingPacket p;
    p.seq = h.channel_seq;
    p.bytes = std::move(packet);
    p.env = env;
    p.payload_bytes = h.payload_bytes;
    p.rkey = h.rkey;
    p.has_rkey = !eager;
    p.rto_ns = cfg_.reliability.rto_ns;
    ch->window.push_back(std::move(p));
    // Hand the staging to the endpoint before transmission is attempted so
    // a failing channel frees it alongside its window entry.
    if (!eager) send_staging_.emplace(h.rkey, std::move(staged));
    if (eager) {
      ++counters_.eager_sends;
    } else {
      ++counters_.rendezvous_sends;
    }
    try_transmit({dst, cls}, *ch);
    if (obs_ != nullptr) {
      if (obs::Tracer* tr = obs_->tracer())
        tr->record(obs::EventKind::kSend, clock_ns_,
                   static_cast<std::uint32_t>(dst), data.size(), 1u);
    }
    if (ch->failed) {
      publish_counters();
      return {Outcome::kFailed, false, 0};
    }
    publish_counters();
    return {Outcome::kQueued, true, 0};
  }

  // Unreliable path: one shot at the fabric; refusals surface as typed,
  // recoverable statuses (the caller may retry after draining/progressing).
  const auto r = qp->post_send(packet, clock_ns_);
  if (obs_ != nullptr) {
    if (obs::Tracer* tr = obs_->tracer())
      tr->record(obs::EventKind::kSend, clock_ns_,
                 static_cast<std::uint32_t>(dst), data.size(),
                 r.delivered ? 1u : 0u);
  }
  using FabricStatus = rdma::QueuePair::SendStatus;
  if (r.status == FabricStatus::kQpError) {
    // Unreliable path has no retransmit machinery to recover a QP error:
    // surface a typed delivery failure (the QP stays errored until reset).
    delivery_errors_.push_back({dst, 0, env,
                                static_cast<std::uint32_t>(data.size()), 0});
    ++counters_.messages_dropped;
    publish_counters();
    return {Outcome::kFailed, false, 0};
  }
  if (r.status == FabricStatus::kRnr || r.status == FabricStatus::kCqFull) {
    if (r.status == FabricStatus::kRnr) {
      ++counters_.rnr_failures;
    } else {
      ++counters_.backpressure_stalls;
    }
    publish_counters();
    // The RTS never left; `staged` un-stages the rendezvous copy here.
    return {r.status == FabricStatus::kRnr ? Outcome::kRnr
                                           : Outcome::kBackpressure,
            false, 0};
  }
  if (eager) {
    ++counters_.eager_sends;
  } else {
    ++counters_.rendezvous_sends;
    send_staging_.emplace(h.rkey, std::move(staged));
  }
  publish_counters();
  // Accepted by the fabric; under injected faults it may still have been
  // lost in flight (r.delivered == false) — that is what the reliable
  // layer exists for.
  return {Outcome::kCompleted, r.delivered, r.arrival_ns};
}

// otmlint: hot
// Per-message coalescing append (docs/COALESCING.md): one sub-header encode
// plus one payload memcpy into the channel's preallocated merge buffer —
// this replaces a full WQE build + doorbell on the small-message fast path,
// so it must stay allocation-free.
void Endpoint::coalesce_append(Channel& ch, const Envelope& env,
                               std::span<const std::byte> data) {
  if (ch.buf_count == 0) ch.oldest_ns = clock_ns_;
  MergedSubHeader sh;
  sh.tag = env.tag;
  sh.comm = env.comm;
  sh.payload_bytes = static_cast<std::uint32_t>(data.size());
  sh.sender_seq = sender_seq_++;
  const InlineHashes hashes = InlineHashes::compute(env);
  sh.hash_src_tag = hashes.src_tag;
  sh.hash_src = hashes.src;
  sh.hash_tag = hashes.tag;
  std::byte* out = ch.buf.data() + kMergedCountBytes + ch.buf_bytes;
  std::memcpy(out, &sh, kMergedSubBytes);
  if (!data.empty())
    std::memcpy(out + kMergedSubBytes, data.data(), data.size());
  ch.buf_bytes += merged_sub_footprint(data.size());
  ch.subs[ch.buf_count] = {env, sh.payload_bytes};
  ++ch.buf_count;
  clock_ns_ += static_cast<std::uint64_t>(cfg_.coalescing.pack_ns);
}

void Endpoint::flush_channel(ChannelKey key, Channel& ch, FlushReason why) {
  if (ch.buf_count == 0) return;
  const Rank dst = key.first;
  if (rel_active_ && ch.failed) {
    // Channel died between append and flush: surface the buffered
    // sub-messages as delivery errors instead of sending into the void.
    for (std::uint32_t i = 0; i < ch.buf_count; ++i) {
      delivery_errors_.push_back({dst, ch.next_seq++, ch.subs[i].env,
                                  ch.subs[i].payload_bytes, 0});
      ++counters_.messages_dropped;
    }
    // Conservation accounting: a delivery-error drain still "flushes" —
    // every appended sub-message leaves the buffer exactly once.
    if (verify_hook_ != nullptr)
      verify_hook_->on_coalesce_flush(rank_, dst, key.second, ch.buf_count);
    ch.buf_bytes = 0;
    ch.buf_count = 0;
    return;
  }
  rdma::QueuePair* qp = find_tx_qp(dst);
  OTM_ASSERT(qp != nullptr);

  WireHeader h;
  h.source = rank_;
  h.tag = 0;  // envelopes travel per sub-message
  h.comm = ch.subs[0].env.comm;
  h.protocol = static_cast<std::uint8_t>(Protocol::kEager);
  h.has_inline_hashes = 0;
  h.channel_class = key.second;
  h.payload_bytes =
      static_cast<std::uint32_t>(kMergedCountBytes + ch.buf_bytes);
  h.inline_bytes = h.payload_bytes;
  h.sender_seq = sender_seq_++;
  h.flags = kWireFlagMerged;
  if (rel_active_) {
    h.channel_seq = ch.next_seq++;
    h.flags |= kWireFlagReliable | wire_epoch_bits(ch.epoch);
  }

  std::vector<std::byte> packet(kHeaderBytes + h.payload_bytes);
  encode_header(h, packet);
  std::memcpy(packet.data() + kHeaderBytes, &ch.buf_count, kMergedCountBytes);
  std::memcpy(packet.data() + kHeaderBytes + kMergedCountBytes,
              ch.buf.data() + kMergedCountBytes, ch.buf_bytes);
  // Merged packets are always CRC-sealed — even on an unreliable fabric — a
  // corrupted sub-message table could misdirect every message it carries.
  seal_packet(packet);

  // The flush is the doorbell the buffered sends never rang.
  if (!send_burst_open_) ++lane_doorbells_[tx_lane_];
  clock_ns_ += static_cast<std::uint64_t>(send_burst_open_ ? cfg_.send_post_ns
                                                           : cfg_.send_overhead_ns);
  send_burst_open_ = true;

  switch (why) {
    case FlushReason::kSize: ++counters_.flushes_by_size; break;
    case FlushReason::kDeadline: ++counters_.flushes_by_deadline; break;
    case FlushReason::kDoorbell: ++counters_.flushes_by_doorbell; break;
    case FlushReason::kOrder: ++counters_.flushes_by_order; break;
  }

  if (rel_active_) {
    PendingPacket p;
    p.seq = h.channel_seq;
    p.bytes = std::move(packet);
    p.env = ch.subs[0].env;
    p.payload_bytes = h.payload_bytes;
    p.rto_ns = cfg_.reliability.rto_ns;
    p.subs.assign(ch.subs.begin(), ch.subs.begin() + ch.buf_count);
    ch.window.push_back(std::move(p));
    ++counters_.merged_packets;
    if (verify_hook_ != nullptr)
      verify_hook_->on_coalesce_flush(rank_, dst, key.second, ch.buf_count);
    ch.buf_bytes = 0;
    ch.buf_count = 0;
    try_transmit(key, ch);
    return;
  }

  const auto r = qp->post_send(packet, clock_ns_);
  using FabricStatus = rdma::QueuePair::SendStatus;
  if (r.status != FabricStatus::kOk) {
    // Receiver can't take the merged packet right now (or the QP errored):
    // keep the buffered sub-messages; the next flush trigger retries.
    if (r.status == FabricStatus::kRnr) {
      ++counters_.rnr_failures;
    } else {
      ++counters_.backpressure_stalls;
    }
    return;
  }
  ++counters_.merged_packets;
  if (verify_hook_ != nullptr)
    verify_hook_->on_coalesce_flush(rank_, dst, key.second, ch.buf_count);
  ch.buf_bytes = 0;
  ch.buf_count = 0;
}

void Endpoint::flush_peer(Rank dst, FlushReason why) {
  for (auto it = channels_.lower_bound({dst, 0});
       it != channels_.end() && it->first.first == dst; ++it)
    flush_channel(it->first, it->second, why);
}

void Endpoint::flush_all(FlushReason why) {
  for (auto& [key, ch] : channels_) flush_channel(key, ch, why);
}

void Endpoint::try_transmit(ChannelKey key, Channel& ch) {
  if (ch.failed || clock_ns_ < ch.stall_until_ns) return;
  rdma::QueuePair* qp = find_tx_qp(key.first);
  OTM_ASSERT(qp != nullptr);
  const ReliabilityConfig& rc = cfg_.reliability;

  std::size_t in_flight = 0;
  for (auto& p : ch.window) {
    if (p.sent && clock_ns_ < p.next_retry_ns) {
      ++in_flight;  // waiting on its ack; deadline not reached
      continue;
    }
    if (in_flight >= rc.window_limit) break;
    const bool is_retry = p.sent;
    if (is_retry && p.retries >= rc.retry_budget) {
      // Retry budget exhausted. With recovery enabled this is the hard
      // evidence that starts a peer recovery (epoch bump + window replay)
      // instead of a terminal channel failure.
      if (recovery_active() && begin_recovery(key.first)) return;
      fail_channel(key, ch);
      return;
    }
    const auto r = qp->post_send(p.bytes, clock_ns_);
    using FabricStatus = rdma::QueuePair::SendStatus;
    if (r.status == FabricStatus::kQpError) {
      // The QP entered the error state: nothing posts until a reset. With
      // recovery off the channel dies (the verbs semantics the reliability
      // layer inherited); with recovery on, the reset is part of recovery.
      if (recovery_active() && begin_recovery(key.first)) return;
      fail_channel(key, ch);
      return;
    }
    if (r.status != FabricStatus::kOk) {
      // Receiver can't take anything right now (no WQE / CQ full): stall
      // the whole channel with exponential backoff instead of hammering it.
      if (r.status == FabricStatus::kRnr) {
        ++counters_.rnr_failures;
      } else {
        ++counters_.backpressure_stalls;
      }
      const std::uint32_t shift = std::min(ch.rnr_strikes, rc.rnr_backoff_cap);
      ch.stall_until_ns = clock_ns_ + (rc.rnr_backoff_ns << shift);
      ++ch.rnr_strikes;
      return;
    }
    // Accepted by the fabric. It may still be dropped in flight; the RTO
    // covers that case.
    ch.rnr_strikes = 0;
    if (is_retry) {
      ++p.retries;
      ++counters_.retransmits;
      p.rto_ns = std::min(
          static_cast<std::uint64_t>(static_cast<double>(p.rto_ns) *
                                     rc.rto_backoff),
          rc.rto_max_ns);
    }
    p.sent = true;
    p.next_retry_ns = clock_ns_ + p.rto_ns;
    ++in_flight;
  }
  if (verify_hook_ != nullptr)
    verify_hook_->on_window(rank_, key.first, key.second, in_flight,
                            rc.window_limit);
}

void Endpoint::fail_channel(ChannelKey key, Channel& ch, Outcome outcome) {
  ch.failed = true;
  for (auto& p : ch.window) {
    if (!p.subs.empty()) {
      // A merged packet fails as its individual messages: callers reason
      // about sends, not about the wire packing underneath them.
      for (const auto& sub : p.subs) {
        delivery_errors_.push_back({key.first, p.seq, sub.env,
                                    sub.payload_bytes, p.retries, outcome});
        ++counters_.messages_dropped;
      }
    } else {
      delivery_errors_.push_back(
          {key.first, p.seq, p.env, p.payload_bytes, p.retries, outcome});
      ++counters_.messages_dropped;
    }
    if (p.has_rkey) {
      // Tolerant cleanup: the receiver's FIN may already have freed it.
      const auto sit = send_staging_.find(p.rkey);
      if (sit != send_staging_.end()) send_staging_.erase(sit);
    }
  }
  ch.window.clear();
}

bool Endpoint::begin_recovery(Rank peer) {
  PeerState& ps = peer_health_[peer];
  if (ps.health == PeerHealth::kDead) return false;
  if (ps.health == PeerHealth::kHealthy) {
    set_peer_health(peer, ps, PeerHealth::kSuspect);
    ++counters_.peers_suspected;
  }
  if (ps.attempts >= cfg_.recovery.max_attempts) {
    mark_peer_dead(peer);
    return false;
  }
  ++ps.attempts;
  set_peer_health(peer, ps, PeerHealth::kRecovering);
  ps.keepalive_misses = 0;
  ps.probe_outstanding = false;
  // Fence the fault domain: reset the tx-lane QP (flushing in-flight
  // WQEs), then recover every channel of the peer under a fresh epoch.
  // Recovery is lane-local by construction — all of this endpoint's
  // traffic to the peer rides the {peer, tx_lane_} pair, so sibling lanes
  // (other sources' flows) are never quiesced.
  if (rdma::QueuePair* qp = find_tx_qp(peer)) qp->reset();
  for (auto it = channels_.lower_bound({peer, 0});
       it != channels_.end() && it->first.first == peer; ++it)
    recover_channel(it->first, it->second);
  return true;
}

void Endpoint::recover_channel(ChannelKey key, Channel& ch) {
  ch.rnr_strikes = 0;
  if (ch.window.empty()) return;
  // The epoch bump fences the old wire state: stale retransmits still in
  // flight are discarded by the receiver, stale acks are ignored here. The
  // seq space continues, so the receiver's dedup watermark keeps
  // exactly-once through the replay.
  ++ch.epoch;
  ++counters_.epoch_bumps;
  for (auto& p : ch.window) {
    restamp_epoch(p.bytes, ch.epoch);
    p.retries = 0;
    p.sent = false;
    p.rto_ns = cfg_.reliability.rto_ns;
    p.next_retry_ns = 0;
  }
  // Quiesce: let in-flight stale packets drain before the replay starts.
  ch.stall_until_ns = clock_ns_ + cfg_.recovery.quiesce_ns;
  // Multi-lane fence: broadcast the new epoch on every lane pair so the
  // receiver adopts it from whichever lane drains first (the replay itself
  // travels only on the tx lane). Single-lane endpoints skip this — the
  // replay's own epoch bits fence the FIFO CQ, byte-identically to before.
  if (lanes_ > 1) announce_epoch(key, ch);
}

void Endpoint::announce_epoch(ChannelKey key, const Channel& ch) {
  // A keepalive-framed probe carrying the channel's new epoch: consumes no
  // sequence number, adopted by the receiver's keepalive handler, re-acked
  // at the new epoch. Best-effort per lane — a lost announce just means
  // that lane's stale packets are fenced later, when the replay lands.
  WireHeader h;
  h.source = rank_;
  h.tag = 0;
  h.comm = 0;
  h.protocol = static_cast<std::uint8_t>(Protocol::kEager);
  h.has_inline_hashes = 0;
  h.channel_class = key.second;
  h.payload_bytes = 0;
  h.inline_bytes = 0;
  h.sender_seq = sender_seq_++;
  h.channel_seq = ch.next_seq;  // informational: not consumed
  h.flags =
      kWireFlagReliable | kWireFlagKeepalive | wire_epoch_bits(ch.epoch);
  std::vector<std::byte> packet(kHeaderBytes);
  encode_header(h, packet);
  seal_packet(packet);
  for (unsigned l = 0; l < lanes_; ++l) {
    const auto it = qps_.find({key.first, static_cast<std::uint16_t>(l)});
    if (it == qps_.end()) continue;
    it->second.post_send(packet, clock_ns_);
    ++counters_.keepalives_sent;
  }
}

void Endpoint::mark_peer_dead(Rank peer) {
  PeerState& ps = peer_health_[peer];
  set_peer_health(peer, ps, PeerHealth::kDead);
  for (auto it = channels_.lower_bound({peer, 0});
       it != channels_.end() && it->first.first == peer; ++it) {
    Channel& ch = it->second;
    // Death is final: drain the coalescing buffer eagerly (fail_channel
    // normally leaves it to the next flush) so every buffered sub-message
    // reports kPeerDead now.
    if (ch.buf_count != 0) {
      for (std::uint32_t i = 0; i < ch.buf_count; ++i) {
        delivery_errors_.push_back({peer, ch.next_seq++, ch.subs[i].env,
                                    ch.subs[i].payload_bytes, 0,
                                    Outcome::kPeerDead});
        ++counters_.messages_dropped;
      }
      if (verify_hook_ != nullptr)
        verify_hook_->on_coalesce_flush(rank_, peer, it->first.second,
                                        ch.buf_count);
      ch.buf_bytes = 0;
      ch.buf_count = 0;
    }
    fail_channel(it->first, ch, Outcome::kPeerDead);
  }
}

void Endpoint::note_peer_alive(Rank peer) {
  const auto it = peer_health_.find(peer);
  if (it == peer_health_.end()) return;
  PeerState& ps = it->second;
  ps.keepalive_misses = 0;
  ps.probe_outstanding = false;
  if (ps.health == PeerHealth::kRecovering) {
    // First ack at the recovered epoch: the recovery worked.
    set_peer_health(peer, ps, PeerHealth::kHealthy);
    ps.attempts = 0;
    ++counters_.recoveries_completed;
  } else if (ps.health == PeerHealth::kSuspect) {
    set_peer_health(peer, ps, PeerHealth::kHealthy);
    ps.attempts = 0;
  }
}

void Endpoint::handle_ack(Rank from, std::uint16_t channel_class,
                          std::uint16_t epoch, std::uint64_t cum_seq) {
  SerialSection host(host_);
  const ChannelKey key{from, channel_class};
  const auto it = channels_.find(key);
  if (it == channels_.end()) return;
  Channel& ch = it->second;
  const bool stale = epoch != ch.epoch;
  if (verify_hook_ != nullptr)
    verify_hook_->on_ack_rx(rank_, from, channel_class, epoch, ch.epoch,
                            cum_seq, !stale || break_ack_fence_);
  if (stale && !break_ack_fence_) return;  // stale-epoch ack: fenced
  if (recovery_active()) note_peer_alive(from);
  while (!ch.window.empty() && ch.window.front().seq < cum_seq) {
    ++counters_.acked_packets;
    ch.window.pop_front();
  }
  // An ack proves the receiver is alive and draining: lift any RNR stall
  // and push the window forward immediately.
  ch.rnr_strikes = 0;
  ch.stall_until_ns = 0;
  if (!ch.window.empty()) try_transmit(key, ch);
  publish_counters();
}

void Endpoint::handle_ack(Rank from, std::uint16_t channel_class,
                          std::uint64_t cum_seq) {
  std::uint16_t epoch = 0;
  {
    SerialSection host(host_);
    const auto it = channels_.find({from, channel_class});
    if (it != channels_.end()) epoch = it->second.epoch;
  }
  handle_ack(from, channel_class, epoch, cum_seq);
}

Endpoint::PostResult Endpoint::post_receive(const MatchSpec& spec,
                                            std::span<std::byte> user,
                                            std::uint64_t cookie) {
  // While watchdog-demoted every post belongs to the host matching path.
  if (dpa_degraded_) return {Outcome::kFallback, {}};
  // Reserve a user-buffer slot first; index+1 travels in the descriptor.
  std::size_t idx;
  if (!free_user_buffers_.empty()) {
    idx = free_user_buffers_.back();
    free_user_buffers_.pop_back();
  } else {
    idx = user_buffers_.size();
    user_buffers_.emplace_back();
  }
  user_buffers_[idx] = {user, true};

  const PostOutcome out = dpa_.post_receive(
      spec, idx + 1, static_cast<std::uint32_t>(user.size()), cookie);

  switch (out.kind) {
    case PostOutcome::Kind::kPending:
      return {Outcome::kPending, {}};
    case PostOutcome::Kind::kFallback:
      user_buffers_[idx].live = false;
      free_user_buffers_.push_back(idx);
      return {Outcome::kFallback, {}};
    case PostOutcome::Kind::kMatchedUnexpected: {
      user_buffers_[idx].live = false;
      free_user_buffers_.push_back(idx);
      return {Outcome::kCompleted,
              complete_from_unexpected(out.message, user, cookie)};
    }
  }
  return {Outcome::kPending, {}};
}

Endpoint::RecvCompletion Endpoint::complete_from_unexpected(
    const UnexpectedDescriptor& um, std::span<std::byte> user,
    std::uint64_t cookie) {
  RecvCompletion c;
  c.cookie = cookie;
  c.env = um.env;
  c.bytes = std::min<std::uint32_t>(um.payload_bytes,
                                    static_cast<std::uint32_t>(user.size()));
  c.was_unexpected = true;

  if (um.protocol == Protocol::kEager) {
    const auto it = um_payloads_.find(um.wire_seq);
    OTM_ASSERT_MSG(it != um_payloads_.end(), "missing unexpected payload");
    std::copy_n(it->second.begin(), c.bytes, user.begin());
    um_payloads_.erase(it);
    const auto copy_ns = static_cast<std::uint64_t>(
        static_cast<double>(c.bytes) / fabric_->config().host_copy_bytes_per_ns);
    clock_ns_ += copy_ns;
    c.completion_ns = clock_ns_;
  } else {
    // Rendezvous: deliver the inline RTS fragment (if any), then RDMA-read
    // the remainder from the sender's registered buffer.
    const std::uint32_t inline_n = std::min(um.inline_bytes, c.bytes);
    if (inline_n != 0) {
      const auto it = um_payloads_.find(um.wire_seq);
      OTM_ASSERT_MSG(it != um_payloads_.end(), "missing RTS inline fragment");
      std::copy_n(it->second.begin(), inline_n, user.begin());
      um_payloads_.erase(it);
    }
    if (c.bytes > inline_n) {
      rdma::QueuePair* qp = find_tx_qp(um.env.source);
      OTM_ASSERT_MSG(qp != nullptr, "rendezvous read to unconnected peer");
      c.completion_ns = qp->rdma_read(
          static_cast<std::uint32_t>(um.remote_key), um.remote_addr + inline_n,
          user.subspan(inline_n, c.bytes - inline_n), clock_ns_);
      ++counters_.rdma_reads;
      advance_ns(c.completion_ns);
    } else {
      c.completion_ns = clock_ns_;
    }
    // FIN: the sender can free its staged copy.
    peers_.at(um.env.source)
        ->release_staged(static_cast<std::uint32_t>(um.remote_key));
  }
  return c;
}

void Endpoint::recycle_bounce(std::uint64_t handle) {
  // A merged packet's bounce buffer is shared by all its sub-messages; it
  // reposts only once the last consumer releases it.
  const auto it = bounce_refs_.find(handle);
  if (it != bounce_refs_.end()) {
    if (--it->second > 0) return;
    bounce_refs_.erase(it);
  }
  // Repost immediately so the staging window stays full (Sec. IV-A), back
  // to the lane SRQ that staged the buffer (lane 0 for single-lane).
  lane_srq(bounce_lane_[static_cast<std::size_t>(handle)])
      .post(handle, bounce_.data(handle));
}

Endpoint::RecvCompletion Endpoint::complete_matched(const ArrivalOutcome& o) {
  OTM_ASSERT(o.match.buffer_addr != 0);
  const std::size_t idx = static_cast<std::size_t>(o.match.buffer_addr) - 1;
  OTM_ASSERT(idx < user_buffers_.size() && user_buffers_[idx].live);
  const std::span<std::byte> user = user_buffers_[idx].span;
  user_buffers_[idx].live = false;
  free_user_buffers_.push_back(idx);

  RecvCompletion c;
  c.cookie = o.match.receive_cookie;
  c.env = o.env;
  c.bytes = std::min<std::uint32_t>(o.proto.payload_bytes,
                                    static_cast<std::uint32_t>(user.size()));
  c.path = o.match.path;

  if (o.proto.protocol == Protocol::kEager) {
    const auto src = bounce_.data(o.proto.bounce_handle)
                         .subspan(kHeaderBytes + o.proto.payload_offset,
                                  c.bytes);
    std::copy(src.begin(), src.end(), user.begin());
    // On-NIC copy cost is part of the DPA cost model (eager_copy); convert
    // the matcher finish time and add the copy serialization.
    const auto copy_ns = static_cast<std::uint64_t>(
        static_cast<double>(c.bytes) / fabric_->config().bandwidth_bytes_per_ns);
    c.completion_ns = dpa_ns(o.timing.finish_cycles) + copy_ns;
  } else {
    // Inline RTS fragment straight from the bounce buffer, remainder via
    // RDMA read (Sec. IV-B).
    const std::uint32_t inline_n = std::min(o.proto.inline_bytes, c.bytes);
    if (inline_n != 0) {
      const auto src =
          bounce_.data(o.proto.bounce_handle).subspan(kHeaderBytes, inline_n);
      std::copy(src.begin(), src.end(), user.begin());
    }
    if (c.bytes > inline_n) {
      rdma::QueuePair* qp = find_tx_qp(o.env.source);
      OTM_ASSERT_MSG(qp != nullptr, "rendezvous read to unconnected peer");
      c.completion_ns = qp->rdma_read(
          static_cast<std::uint32_t>(o.proto.remote_key),
          o.proto.remote_addr + inline_n,
          user.subspan(inline_n, c.bytes - inline_n),
          dpa_ns(o.timing.finish_cycles));
      ++counters_.rdma_reads;
    } else {
      c.completion_ns = dpa_ns(o.timing.finish_cycles);
    }
    // FIN: the sender can free its staged copy.
    peers_.at(o.env.source)
        ->release_staged(static_cast<std::uint32_t>(o.proto.remote_key));
  }
  advance_ns(c.completion_ns);
  return c;
}

std::uint64_t Endpoint::host_rdma_read(Rank src, std::uint64_t rkey,
                                       std::uint64_t addr,
                                       std::span<std::byte> dst,
                                       std::uint64_t issue_ns) {
  rdma::QueuePair* qp = find_tx_qp(src);
  OTM_ASSERT_MSG(qp != nullptr, "host rendezvous read to unconnected peer");
  ++counters_.rdma_reads;
  const std::uint64_t done =
      qp->rdma_read(static_cast<std::uint32_t>(rkey), addr, dst, issue_ns);
  advance_ns(done);
  peers_.at(src)->release_staged(static_cast<std::uint32_t>(rkey));
  return done;
}

void Endpoint::send_keepalives() {
  const RecoveryConfig& rc = cfg_.recovery;
  for (auto& [key, qp] : qps_) {
    // Probes ride the tx lane only: one liveness clock per peer, not one
    // per lane pair (sibling-lane QPs carry no data from this endpoint).
    if (key.second != tx_lane_) continue;
    const Rank peer = key.first;
    PeerState& ps = peer_health_[peer];
    if (ps.health == PeerHealth::kDead) continue;
    // Idle = no unacked window and no coalesced bytes on any channel of the
    // peer; live traffic carries its own liveness evidence (acks).
    bool idle = true;
    for (auto it = channels_.lower_bound({peer, 0});
         it != channels_.end() && it->first.first == peer; ++it) {
      if (!it->second.window.empty() || it->second.buf_count != 0) {
        idle = false;
        break;
      }
    }
    if (!idle) {
      ps.probe_outstanding = false;
      ps.next_keepalive_ns = clock_ns_ + rc.keepalive_idle_ns;
      continue;
    }
    if (ps.next_keepalive_ns == 0) {
      // First idle observation starts the probe clock.
      ps.next_keepalive_ns = clock_ns_ + rc.keepalive_idle_ns;
      continue;
    }
    if (clock_ns_ < ps.next_keepalive_ns) continue;
    if (ps.probe_outstanding) {
      // The previous probe went unanswered through a whole idle period.
      ++ps.keepalive_misses;
      if (ps.health == PeerHealth::kHealthy &&
          ps.keepalive_misses >= rc.keepalive_miss_budget) {
        set_peer_health(peer, ps, PeerHealth::kSuspect);
        ++counters_.peers_suspected;
      }
      if (ps.keepalive_misses >= 2 * rc.keepalive_miss_budget) {
        // Soft evidence exhausted: escalate to a recovery attempt (which
        // eventually escalates to Dead via the attempts cap).
        if (!begin_recovery(peer)) continue;
        ps.next_keepalive_ns = clock_ns_ + rc.keepalive_idle_ns;
        continue;
      }
    }
    // Probe: a sealed reliable packet that carries no payload and consumes
    // no sequence number — the receiver re-acks its watermark and drops it.
    Channel& ch = channel(peer, 0);
    WireHeader h;
    h.source = rank_;
    h.tag = 0;
    h.comm = 0;
    h.protocol = static_cast<std::uint8_t>(Protocol::kEager);
    h.has_inline_hashes = 0;
    h.channel_class = 0;
    h.payload_bytes = 0;
    h.inline_bytes = 0;
    h.sender_seq = sender_seq_++;
    h.channel_seq = ch.next_seq;  // informational: not consumed
    h.flags =
        kWireFlagReliable | kWireFlagKeepalive | wire_epoch_bits(ch.epoch);
    std::vector<std::byte> packet(kHeaderBytes);
    encode_header(h, packet);
    seal_packet(packet);
    qp.post_send(packet, clock_ns_);  // best-effort: a lost probe is a miss
    ++counters_.keepalives_sent;
    ps.probe_outstanding = true;
    ps.next_keepalive_ns = clock_ns_ + rc.keepalive_idle_ns;
  }
}

void Endpoint::demote_to_host() {
  dpa_degraded_ = true;
  ++counters_.watchdog_demotions;
  std::vector<MatchEngine::DrainedReceive> pend;
  std::vector<UnexpectedDescriptor> ums;
  dpa_.drain_all(pend, ums);
  migrate_evicted(pend, ums);
}

void Endpoint::evict_lane(unsigned lane) {
  // Lane-local demotion (lanes_ > 1): only shard `lane`'s NIC-resident
  // matching state leaves the accelerator; sibling lanes keep matching
  // offloaded. Arrivals steered to this lane route to the host inbox at
  // the drain (drain_lane_degraded) until the lane heals.
  ++counters_.watchdog_demotions;
  std::vector<MatchEngine::DrainedReceive> pend;
  std::vector<UnexpectedDescriptor> ums;
  dpa_.drain_lane_shard(lane, pend, ums);
  migrate_evicted(pend, ums);
}

void Endpoint::migrate_evicted(std::vector<MatchEngine::DrainedReceive>& pend,
                               std::vector<UnexpectedDescriptor>& ums) {
  // Stored unexpected messages migrate as host messages, globally ordered
  // by wire_seq (the endpoint's delivery order) and PREPENDED to the inbox:
  // everything NIC-resident predates anything already queued for the host.
  std::sort(ums.begin(), ums.end(),
            [](const UnexpectedDescriptor& a, const UnexpectedDescriptor& b) {
              return a.wire_seq < b.wire_seq;
            });
  std::vector<HostMessage> inbox;
  inbox.reserve(ums.size() + host_inbox_.size());
  for (const auto& um : ums) {
    HostMessage hm;
    hm.env = um.env;
    hm.wire_seq = um.wire_seq;
    hm.protocol = um.protocol;
    hm.payload_bytes = um.payload_bytes;
    hm.arrival_ns = clock_ns_;
    const auto pit = um_payloads_.find(um.wire_seq);
    if (um.protocol == Protocol::kEager) {
      OTM_ASSERT_MSG(pit != um_payloads_.end(), "missing unexpected payload");
      hm.payload = std::move(pit->second);
      um_payloads_.erase(pit);
    } else {
      // Drop the staged RTS inline fragment: the host path reads the whole
      // payload through the sender's registered staging buffer.
      if (pit != um_payloads_.end()) um_payloads_.erase(pit);
      hm.remote_key = um.remote_key;
      hm.remote_addr = um.remote_addr;
    }
    inbox.push_back(std::move(hm));
  }
  for (auto& hm : host_inbox_) inbox.push_back(std::move(hm));
  host_inbox_ = std::move(inbox);

  // Pending receives: release their user-buffer slots (mirroring
  // cancel_receive) and surface {spec, cookie} for the caller to repost
  // into its software matcher — per-comm posting order preserved, and NIC-
  // resident receives can never have matched the evicted messages above
  // (they coexisted unmatched), so the repost order between the two sets
  // carries no matching semantics.
  for (const auto& r : pend) {
    if (r.buffer_addr != 0) {
      const std::size_t idx = static_cast<std::size_t>(r.buffer_addr) - 1;
      OTM_ASSERT(idx < user_buffers_.size() && user_buffers_[idx].live);
      user_buffers_[idx].live = false;
      free_user_buffers_.push_back(idx);
    }
    evicted_receives_.push_back({r.spec, r.cookie});
  }
}

std::vector<Endpoint::RecvCompletion> Endpoint::progress() {
  SerialSection host(host_);
  // Host attention is the coalescing backstop: whatever is buffered goes to
  // the wire now (while the burst is still open, so the flush doorbells
  // chain), and the burst then closes — the next send() rings a fresh one.
  if (cfg_.coalescing.enabled) flush_all(FlushReason::kDoorbell);
  send_burst_open_ = false;

  // Retransmission pass: with unacked traffic outstanding, each progress()
  // call advances the modeled clock a tick (single-threaded drivers have no
  // other time source between completions) and re-offers expired packets.
  if (rel_active_) {
    bool pending = false;
    for (const auto& [key, ch] : channels_) {
      if (!ch.window.empty()) {
        pending = true;
        break;
      }
    }
    if (pending) {
      clock_ns_ += cfg_.reliability.progress_tick_ns;
      for (auto& [key, ch] : channels_)
        if (!ch.window.empty()) try_transmit(key, ch);
    } else if (recovery_active() && cfg_.recovery.keepalive_idle_ns != 0) {
      // Keepalive mode keeps the modeled clock ticking on idle endpoints so
      // probe deadlines can expire (off by default: byte-identity with the
      // pre-recovery clock behavior).
      clock_ns_ += cfg_.reliability.progress_tick_ns;
    }
    if (recovery_active() && cfg_.recovery.keepalive_idle_ns != 0)
      send_keepalives();
  }

  // Watchdog evidence, sampled before the drain empties the CQs. Per-lane
  // pressure feeds the per-lane watchdog (lanes_ > 1); the OR of all lanes
  // feeds the whole-accelerator watchdog exactly as before.
  std::array<bool, kMaxShards> lane_pressure{};
  std::array<bool, kMaxShards> lane_drop_evidence{};
  bool cq_pressure = false;
  for (unsigned l = 0; l < lanes_; ++l) {
    lane_pressure[l] = lane_cq(l).full();
    cq_pressure = cq_pressure || lane_pressure[l];
  }
  const std::uint64_t drops_before = counters_.engine_drops;

  // Drain staged completions into engine-facing descriptors, assembling the
  // full matching block in one pass over the CQ. The batch scratch is
  // endpoint-owned and reused across calls (no per-call allocation).
  // Messages for communicators without DPA structures go straight to the
  // host inbox.
  std::vector<IncomingMessage>& msgs = ingress_msgs_;
  std::vector<std::uint64_t>& arrivals = ingress_arrivals_;
  msgs.clear();
  arrivals.clear();
  struct AckVal {
    std::uint16_t epoch = 0;
    std::uint64_t cum = 0;
  };
  std::map<ChannelKey, AckVal> ack_peers;  ///< channel -> (epoch, cum. ack)

  // Lane of the CQE currently being drained is watchdog-demoted: its
  // arrivals route to the host inbox while sibling lanes stay offloaded.
  bool drain_lane_degraded = false;

  const auto accept = [&](const WireHeader& h, std::uint64_t wr_id,
                          std::uint64_t arrival_ns) {
    if ((h.flags & kWireFlagMerged) != 0) {
      // Merged packet: unpack the sub-message table into individual
      // messages BEFORE matching, so the engine (and the host inbox) only
      // ever see ordinary eager messages. Validate the whole table first —
      // a mangled count or length must not deliver a partial batch.
      const auto body =
          bounce_.data(wr_id).subspan(kHeaderBytes, h.payload_bytes);
      std::uint32_t count = 0;
      bool ok = body.size() >= kMergedCountBytes;
      if (ok) std::memcpy(&count, body.data(), kMergedCountBytes);
      std::size_t off = kMergedCountBytes;
      for (std::uint32_t i = 0; ok && i < count; ++i) {
        if (off + kMergedSubBytes > body.size()) {
          ok = false;
          break;
        }
        const MergedSubHeader sh = decode_sub_header(body.subspan(off));
        off += kMergedSubBytes + sh.payload_bytes;
        if (off > body.size()) ok = false;
      }
      if (!ok || count == 0) {
        ++counters_.corrupt_discards;
        recycle_bounce(wr_id);
        return;
      }
      // Emit pass. Each sub-message is charged a table-walk unpack cost on
      // top of the carrier's arrival; engine-bound subs share the carrier's
      // bounce buffer (refcounted) and reference their payload by offset.
      const double unpack = cfg_.coalescing.unpack_ns_per_msg;
      std::uint32_t engine_subs = 0;
      off = kMergedCountBytes;
      for (std::uint32_t i = 0; i < count; ++i) {
        const MergedSubHeader sh = decode_sub_header(body.subspan(off));
        off += kMergedSubBytes;
        const double sub_arrival_ns =
            static_cast<double>(arrival_ns) +
            static_cast<double>(i + 1) * unpack;
        if (dpa_degraded_ || drain_lane_degraded ||
            !dpa_.comm_registered(sh.comm)) {
          HostMessage hm;
          hm.env = {h.source, sh.tag, sh.comm};
          hm.wire_seq = rx_delivery_seq_++;
          hm.protocol = Protocol::kEager;
          hm.payload_bytes = sh.payload_bytes;
          const auto src = body.subspan(off, sh.payload_bytes);
          hm.payload.assign(src.begin(), src.end());
          hm.arrival_ns = static_cast<std::uint64_t>(sub_arrival_ns);
          host_inbox_.push_back(std::move(hm));
        } else {
          msgs.push_back(sub_to_incoming(h, sh,
                                         static_cast<std::uint32_t>(off),
                                         engine_subs != 0, wr_id,
                                         rx_delivery_seq_++));
          arrivals.push_back(dpa_.config().ns_to_cycles(sub_arrival_ns));
          ++engine_subs;
        }
        off += sh.payload_bytes;
      }
      if (engine_subs > 0) {
        bounce_refs_[wr_id] = engine_subs;
      } else {
        recycle_bounce(wr_id);
      }
      return;
    }
    if (dpa_degraded_ || drain_lane_degraded || !dpa_.comm_registered(h.comm)) {
      HostMessage hm;
      hm.env = {h.source, h.tag, h.comm};
      hm.wire_seq = rx_delivery_seq_++;
      hm.protocol = static_cast<Protocol>(h.protocol);
      hm.payload_bytes = h.payload_bytes;
      if (hm.protocol == Protocol::kEager) {
        const auto src =
            bounce_.data(wr_id).subspan(kHeaderBytes, h.payload_bytes);
        hm.payload.assign(src.begin(), src.end());
      } else {
        hm.remote_key = h.rkey_valid != 0 ? h.rkey : 0;
        hm.remote_addr = h.remote_offset;
      }
      hm.arrival_ns = arrival_ns;
      host_inbox_.push_back(std::move(hm));
      recycle_bounce(wr_id);
      return;
    }
    msgs.push_back(to_incoming(h, wr_id, rx_delivery_seq_++));
    arrivals.push_back(
        dpa_.config().ns_to_cycles(static_cast<double>(arrival_ns)));
  };

  // Lane-interleaved drain: each iteration pops one CQE from one lane.
  // Single-lane endpoints reduce to the historical FIFO drain of cq_; with
  // several lanes the default policy drains ascending lane ids, and the
  // verify-time lane hook overrides the pick per CQE so the model checker
  // explores cross-lane interleavings of parked traffic.
  std::array<unsigned, kMaxShards> ready_lanes{};
  for (;;) {
    unsigned nready = 0;
    for (unsigned l = 0; l < lanes_; ++l)
      if (lane_cq(l).available() != 0) ready_lanes[nready++] = l;
    if (nready == 0) break;
    unsigned lane = ready_lanes[0];
    if (nready > 1 && lane_hook_) {
      const std::size_t pick =
          lane_hook_(std::span<const unsigned>(ready_lanes.data(), nready));
      lane = ready_lanes[pick < nready ? pick : 0];
    }
    const auto cqe = lane_cq(lane).poll();
    OTM_ASSERT(cqe.has_value());
    ++lane_cqes_[lane];
    drain_lane_degraded = lanes_ > 1 && dpa_.lane_degraded(lane);
    if (cqe->byte_len < kHeaderBytes) {
      // Truncated beyond recognition (corruption of the length path).
      ++counters_.corrupt_discards;
      recycle_bounce(cqe->wr_id);
      continue;
    }
    const auto packet = bounce_.data(cqe->wr_id).first(cqe->byte_len);
    const WireHeader h = decode_header(packet);

    if (!rel_active_) {
      // Legacy/unreliable framing: no CRC, no sequencing — deliver as-is.
      // Exception: merged packets are always sealed (their sub-message
      // table can misdirect a whole batch), so they are checked even here.
      if ((h.flags & kWireFlagMerged) != 0 && !packet_crc_ok(packet)) {
        ++counters_.corrupt_discards;
        recycle_bounce(cqe->wr_id);
        continue;
      }
      accept(h, cqe->wr_id, cqe->timestamp_ns);
      continue;
    }

    // Integrity first: a corrupted packet may lie about everything —
    // including the reliable-framing flag itself, so a cleared flag must
    // not route a mangled packet around the CRC/dedup checks. Every packet
    // reaching a reliability-active endpoint is CRC-sealed by its sender;
    // anything that fails the check (or lost its framing bit) is dropped
    // and recovered by retransmission.
    if (!packet_crc_ok(packet) || (h.flags & kWireFlagReliable) == 0) {
      ++counters_.corrupt_discards;
      recycle_bounce(cqe->wr_id);
      continue;
    }

    const ChannelKey rx_key{h.source, h.channel_class};
    ChannelRx& rx = rx_channels_[rx_key];
    const std::uint16_t pkt_epoch = wire_epoch(h.flags);
    if ((h.flags & kWireFlagKeepalive) != 0) {
      // Liveness probe: no payload, no sequence consumption. Adopt a newer
      // epoch and re-ack the current watermark — the evidence the sender's
      // peer-health machine is waiting for.
      if (pkt_epoch > rx.epoch) rx.epoch = pkt_epoch;
      ack_peers[rx_key] = {rx.epoch, rx.next_expected};
      recycle_bounce(cqe->wr_id);
      continue;
    }
    if (pkt_epoch < rx.epoch && !break_epoch_fence_) {
      // Stale retransmit from before the sender's recovery: fence it (the
      // replayed copy carries the live epoch) but re-ack so a confused
      // sender stops resending.
      if (verify_hook_ != nullptr)
        verify_hook_->on_packet_rx(rank_, h.source, h.channel_class,
                                   h.channel_seq, pkt_epoch, rx.epoch, false,
                                   false);
      ++counters_.dup_discards;
      recycle_bounce(cqe->wr_id);
      ack_peers[rx_key] = {rx.epoch, rx.next_expected};
      continue;
    }
    if (pkt_epoch > rx.epoch) {
      // Recovery replay reached us: adopt the new epoch. The watermark and
      // the ooo stash survive — the seq space continues across epochs, so
      // stashed packets are either still-valid futures or harmless
      // duplicates of the replay.
      rx.epoch = pkt_epoch;
    }
    if (h.channel_seq < rx.next_expected ||
        rx.ooo.find(h.channel_seq) != rx.ooo.end()) {
      // Duplicate (fabric dup or retransmit racing an in-flight ack):
      // discard, but re-ack so the sender stops resending.
      if (verify_hook_ != nullptr)
        verify_hook_->on_packet_rx(rank_, h.source, h.channel_class,
                                   h.channel_seq, pkt_epoch, rx.epoch, false,
                                   false);
      ++counters_.dup_discards;
      recycle_bounce(cqe->wr_id);
      ack_peers[rx_key] = {rx.epoch, rx.next_expected};
      continue;
    }
    if (h.channel_seq > rx.next_expected) {
      // Out of order: park it in its bounce buffer until the gap fills.
      // The SRQ shrinks by one WQE — exactly the backpressure a real NIC
      // resequencing window exerts.
      if (rx.ooo.size() >= cfg_.reliability.reorder_stash_cap) {
        recycle_bounce(cqe->wr_id);  // stash full: treat as loss, RTO recovers
        continue;
      }
      ++counters_.ooo_stashed;
      rx.ooo.emplace(h.channel_seq,
                     ChannelRx::Stashed{cqe->wr_id, cqe->timestamp_ns});
      continue;
    }

    // In order: deliver, then drain any now-consecutive stashed packets.
    rx.next_expected = h.channel_seq + 1;
    if (verify_hook_ != nullptr)
      verify_hook_->on_packet_rx(rank_, h.source, h.channel_class,
                                 h.channel_seq, pkt_epoch, rx.epoch, true,
                                 false);
    accept(h, cqe->wr_id, cqe->timestamp_ns);
    auto sit = rx.ooo.find(rx.next_expected);
    while (sit != rx.ooo.end()) {
      const auto stash = sit->second;
      rx.ooo.erase(sit);
      const WireHeader sh = decode_header(bounce_.data(stash.bounce_handle));
      if (verify_hook_ != nullptr)
        verify_hook_->on_packet_rx(rank_, sh.source, sh.channel_class,
                                   sh.channel_seq, wire_epoch(sh.flags),
                                   rx.epoch, true, true);
      accept(sh, stash.bounce_handle, stash.arrival_ns);
      ++rx.next_expected;
      sit = rx.ooo.find(rx.next_expected);
    }
    ack_peers[rx_key] = {rx.epoch, rx.next_expected};
  }

  std::vector<RecvCompletion> completions;
  if (!msgs.empty()) {
    const auto outcomes = dpa_.deliver(msgs, arrivals);
    for (const auto& o : outcomes) {
      switch (o.kind) {
        case ArrivalOutcome::Kind::kMatched:
          completions.push_back(complete_matched(o));
          recycle_bounce(o.proto.bounce_handle);
          break;
        case ArrivalOutcome::Kind::kUnexpected: {
          // Stash staged payload (full eager message, or the RTS inline
          // fragment) so the bounce buffer can be reposted; the engine's
          // unexpected descriptor references it by wire sequence.
          const std::uint32_t staged = o.proto.protocol == Protocol::kEager
                                           ? o.proto.payload_bytes
                                           : o.proto.inline_bytes;
          if (staged != 0) {
            const auto src = bounce_.data(o.proto.bounce_handle)
                                 .subspan(kHeaderBytes + o.proto.payload_offset,
                                          staged);
            um_payloads_.emplace(
                o.proto.wire_seq,
                std::vector<std::byte>(src.begin(), src.end()));
          }
          recycle_bounce(o.proto.bounce_handle);
          break;
        }
        case ArrivalOutcome::Kind::kDropped:
          ++counters_.engine_drops;
          if (lanes_ > 1)
            lane_drop_evidence[steer_lane(o.env.source, lane_mask_)] = true;
          recycle_bounce(o.proto.bounce_handle);
          break;
      }
    }
  }

  // One watchdog tick per progress call: CQ pressure and engine drops are
  // the endpoint-observable sickness evidence. Demotion evicts the NIC
  // domain in one shot; promotion waits for the accelerator's healthy
  // window AND an empty host domain (both inboxes + the caller's hint), so
  // matching order is never split across two live domains.
  if (dpa_.watchdog_enabled()) {
    if (lanes_ > 1) {
      // Per-lane watchdog: each lane's pinned polling hart demotes (and
      // heals) on its own evidence — one sick lane degrades to host
      // matching while its siblings stay offloaded (docs/RELIABILITY.md).
      for (unsigned l = 0; l < lanes_; ++l) {
        const bool was_degraded = dpa_.lane_degraded(l);
        dpa_.lane_watchdog_tick(l, lane_pressure[l] || lane_drop_evidence[l]);
        if (dpa_.lane_degraded(l) && !was_degraded) {
          evict_lane(l);
        } else if (was_degraded && dpa_.lane_promotable(l) &&
                   host_drained_hint_ && host_inbox_.empty() &&
                   evicted_receives_.empty()) {
          dpa_.lane_promote(l);
          ++counters_.degraded_windows;
        }
      }
    } else {
      dpa_.watchdog_tick(cq_pressure ||
                         counters_.engine_drops != drops_before);
      if (dpa_.degraded() && !dpa_degraded_) {
        demote_to_host();
      } else if (dpa_degraded_ && dpa_.promotable() && host_drained_hint_ &&
                 host_inbox_.empty() && evicted_receives_.empty()) {
        dpa_.promote();
        dpa_degraded_ = false;
        ++counters_.degraded_windows;
      }
    }
  }

  // Cumulative acks ride the progress call (the modeled piggyback path);
  // ack loss is harmless — the next retransmit just gets deduplicated.
  for (const auto& [key, ack] : ack_peers) {
    const auto pit = peers_.find(key.first);
    if (pit != peers_.end())
      pit->second->handle_ack(rank_, key.second, ack.epoch, ack.cum);
  }

  if (obs_ != nullptr) {
    if (obs::Tracer* tr = obs_->tracer())
      tr->record(obs::EventKind::kProgress, clock_ns_,
                 static_cast<std::uint32_t>(rank_), msgs.size(),
                 completions.size());
    publish_counters();
  }
  return completions;
}

}  // namespace otm::proto
