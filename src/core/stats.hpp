// Matching statistics gathered by the engine; consumed by the trace
// analyzer, the benches and the tests.
//
// The counter fields are declared once through OTM_MATCH_COUNTER_FIELDS and
// expanded everywhere they are needed — the POD snapshot below, the
// aggregation operator, and the registry mirror in MatchEngine (each counter
// becomes a named obs::Counter when an Observability is attached). Adding a
// stat means adding one X() line; the summation, snapshot and metric export
// follow automatically.
#pragma once

#include <cstdint>

namespace otm {

/// Every monotonically-increasing matching counter. max_chain_scanned is a
/// high-water mark (aggregated by max, exported as a gauge) and is kept
/// outside the list.
#define OTM_MATCH_COUNTER_FIELDS(X)                                      \
  /* Post-side (Fig. 1a). */                                             \
  X(receives_posted)                                                     \
  X(receives_matched_unexpected) /* matched a UMQ entry at post */       \
  X(post_fallbacks)              /* descriptor table full -> software */ \
  /* Arrival-side (Fig. 1b / Sec. III). */                               \
  X(messages_processed)                                                  \
  X(messages_matched)                                                    \
  X(messages_unexpected)                                                 \
  X(blocks_processed)                                                    \
  /* Conflict behavior (Sec. III-D). */                                  \
  X(conflicts_detected)      /* threads that lost their candidate */     \
  X(fast_path_resolutions)                                               \
  X(slow_path_resolutions)                                               \
  X(fast_path_aborts)        /* fast path left the compatible seq */     \
  /* Search effort. */                                                   \
  X(match_attempts)          /* chain entries examined */                \
  X(index_searches)          /* per-index lookups performed */           \
  X(early_booking_skips)                                                 \
  /* Structure health. */                                                \
  X(lazy_removals)           /* consumed entries cleaned at insert */    \
  X(eager_removals)                                                      \
  X(cross_shard_retired)     /* replicas retired by a sibling's claim */

/// Point-in-time snapshot of one engine's matching counters.
struct MatchStats {
#define OTM_X(field) std::uint64_t field = 0;
  OTM_MATCH_COUNTER_FIELDS(OTM_X)
#undef OTM_X

  std::uint64_t max_chain_scanned = 0;  ///< deepest single-chain scan observed

  MatchStats& operator+=(const MatchStats& o) noexcept {
#define OTM_X(field) field += o.field;
    OTM_MATCH_COUNTER_FIELDS(OTM_X)
#undef OTM_X
    if (o.max_chain_scanned > max_chain_scanned)
      max_chain_scanned = o.max_chain_scanned;
    return *this;
  }
};

}  // namespace otm
