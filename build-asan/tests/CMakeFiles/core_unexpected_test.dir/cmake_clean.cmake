file(REMOVE_RECURSE
  "CMakeFiles/core_unexpected_test.dir/core_unexpected_test.cpp.o"
  "CMakeFiles/core_unexpected_test.dir/core_unexpected_test.cpp.o.d"
  "core_unexpected_test"
  "core_unexpected_test.pdb"
  "core_unexpected_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_unexpected_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
