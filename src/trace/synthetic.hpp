// Synthetic trace generators for the Table-II application suite.
//
// Substitution note (DESIGN.md §2): the paper analyzes DUMPI traces from
// the NERSC "Characterization of DOE mini-apps" project, which are not
// redistributable. Fig. 6/7 depend only on the *pattern* of posted receives
// and message arrivals — which ranks talk, how many receives are
// outstanding, how diverse the (src, tag) keys are — so each generator
// reproduces its mini-app's published communication structure (halo
// exchanges, all-to-all transposes, wavefront sweeps, staged crystal
// routing, collective-only solvers) at the Table-II process counts.
//
// All generators are deterministic for a given seed.
#pragma once

#include <span>
#include <string>

#include "trace/ops.hpp"

namespace otm::trace {

/// Registry entry mirroring Table II.
struct AppInfo {
  const char* name;
  const char* description;
  int processes;
  Trace (*make)();
};

/// The 16 applications of Table II, alphabetically sorted as in the paper.
std::span<const AppInfo> application_suite();

/// Lookup by name; returns nullptr if unknown.
const AppInfo* find_app(const std::string& name);

// Individual generators (one per Table-II row).
Trace make_amg();               // 8 ranks
Trace make_amr_miniapp();       // 64
Trace make_bigfft();            // 1024
Trace make_boxlib_cns();        // 64
Trace make_boxlib_multigrid();  // 64
Trace make_crystal_router();    // 100
Trace make_fill_boundary();     // 1000
Trace make_hilo();              // 256
Trace make_hilo_2d();           // 256
Trace make_lulesh();            // 64
Trace make_minife();            // 1152
Trace make_mocfe();             // 64
Trace make_multigrid();         // 1000
Trace make_nekbone();           // 64
Trace make_partisn();           // 168
Trace make_snap();              // 168

}  // namespace otm::trace
