# Empty compiler generated dependencies file for otm-analyzer.
# This may be replaced when dependencies are built.
