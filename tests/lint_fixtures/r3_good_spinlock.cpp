// otmlint-fixture: src/core/fixture.cpp
// R3 good twin: the core-sanctioned lock. (A std::mutex in src/obs would
// also be fine — R3 only covers src/core and src/util.)
#include "util/spinlock.hpp"

namespace otm {

struct GoodStore {
  Spinlock lock;
  int value = 0;

  void set(int v) {
    SpinGuard g(lock);
    value = v;
  }
};

}  // namespace otm
