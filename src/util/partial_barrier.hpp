// Partial barrier between block-matching threads (Sec. III-D-1).
//
// Thread i must wait only on threads j < i: later threads either match a
// different receive or lose any conflict to i by constraint C2, and waiting
// on *future* messages could stall the stream. Each thread publishes a value
// (e.g. its modeled clock at barrier entry) and then sets its bit; waiters
// spin until all lower bits are visible.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/assert.hpp"
#include "util/booking_bitmap.hpp"
#include "util/thread_annotations.hpp"

namespace otm {

class PartialBarrier {
 public:
  explicit PartialBarrier(unsigned num_threads = kMaxBlockThreads) noexcept
      : num_threads_(num_threads) {
    OTM_ASSERT(num_threads_ <= kMaxBlockThreads);
  }

  void reset(unsigned num_threads) noexcept {
    OTM_ASSERT(num_threads <= kMaxBlockThreads);
    num_threads_ = num_threads;
    // relaxed: reset runs on the engine-serialized path between blocks; no
    // matching thread is concurrently observing the barrier.
    bits_.store(0, std::memory_order_relaxed);
    for (auto& v : published_) v.store(0, std::memory_order_relaxed);
  }

  /// Publish `value` and mark thread `tid` as arrived. The value is readable
  /// by any thread that has observed the bit (release/acquire pairing).
  // otmlint: hot
  void arrive(unsigned tid, std::uint64_t value = 0) noexcept {
    OTM_ASSERT(tid < num_threads_);
    // relaxed: the value is published by the release fetch_or below — the
    // bit, not the value store, is the synchronization edge.
    published_[tid].store(value, std::memory_order_relaxed);
    // release: pairs with the acquire load in wait_lower()/arrived(), making
    // the published value (and the phase work before it) visible to waiters.
    bits_.fetch_or(1u << tid, std::memory_order_release);
  }

  /// Spin until all threads j < tid have arrived.
  // otmlint: hot
  void wait_lower(unsigned tid) const noexcept {
    const std::uint32_t mask = (tid == 0) ? 0u : ((1u << tid) - 1u);
    // acquire: pairs with the release fetch_or in arrive(); once all lower
    // bits are visible, so are the lower threads' published values.
    while ((bits_.load(std::memory_order_acquire) & mask) != mask) {
      // Busy-wait: block threads are short-lived, run-to-completion tasks.
    }
  }

  /// Value published by thread `tid` at arrival. Only meaningful after
  /// wait_lower() has returned for a tid greater than `tid`.
  std::uint64_t published(unsigned tid) const noexcept {
    OTM_ASSERT(tid < num_threads_);
    // relaxed: ordered by the acquire in wait_lower() that the caller must
    // have executed first (see contract above).
    return published_[tid].load(std::memory_order_relaxed);
  }

  /// Max published value among threads j < tid (0 if tid == 0).
  std::uint64_t max_published_lower(unsigned tid) const noexcept {
    std::uint64_t m = 0;
    for (unsigned j = 0; j < tid; ++j) {
      const std::uint64_t v = published(j);
      if (v > m) m = v;
    }
    return m;
  }

  bool arrived(unsigned tid) const noexcept {
    // acquire: observing the bit must also make the published value visible
    // (same pairing as wait_lower()).
    return (bits_.load(std::memory_order_acquire) & (1u << tid)) != 0;
  }

  unsigned size() const noexcept { return num_threads_; }

 private:
  unsigned num_threads_;
  std::atomic<std::uint32_t> bits_{0};
  std::atomic<std::uint64_t> published_[kMaxBlockThreads] = {};
};

}  // namespace otm
