// Collectives layered over the matched point-to-point path (Sec. VII).
//
// Algorithms are the textbook log-P constructions:
//   - barrier:   dissemination (each round r, exchange with rank +/- 2^r)
//   - bcast:     binomial tree rooted at `root`
//   - reduce:    binomial tree, children fold into parents
//   - allreduce: reduce to rank 0 + bcast
//   - gather:    direct sends to the root (the many-to-one pattern of
//                Sec. I — a deliberate stress on the matching queues)
//
// Tags live in a reserved range; correctness across *successive*
// collectives on the same communicator follows from MPI's non-overtaking
// guarantee (C2): same (src, tag, comm) messages match in send order.
#include <algorithm>

#include "mpi/mpi.hpp"
#include "util/assert.hpp"

namespace otm::mpi {
namespace {

constexpr Tag kBarrierTag = 0x7F00'0000;
constexpr Tag kBcastTag = 0x7F10'0000;
constexpr Tag kReduceTag = 0x7F20'0000;
constexpr Tag kGatherTag = 0x7F30'0000;

template <typename T>
T apply(Proc::ReduceOp op, T a, T b) {
  switch (op) {
    case Proc::ReduceOp::kSum: return a + b;
    case Proc::ReduceOp::kMin: return std::min(a, b);
    case Proc::ReduceOp::kMax: return std::max(a, b);
  }
  return a;
}

/// Rank relative to the root (binomial trees are root-rotated).
Rank rel(Rank r, Rank root, int p) {
  return static_cast<Rank>((r - root + p) % p);
}

Rank abs_rank(Rank relative, Rank root, int p) {
  return static_cast<Rank>((relative + root) % p);
}

}  // namespace

void Proc::barrier(const Comm& comm) {
  const int p = size();
  std::byte token{0};
  std::byte sink{0};
  for (int round = 0, dist = 1; dist < p; ++round, dist <<= 1) {
    const Rank to = static_cast<Rank>((rank() + dist) % p);
    const Rank from = static_cast<Rank>(((rank() - dist) % p + p) % p);
    const Tag tag = kBarrierTag + round;
    auto req = irecv({&sink, 1}, from, tag, comm);
    send({&token, 1}, to, tag, comm);
    wait(req);
  }
}

void Proc::bcast(std::span<std::byte> buf, Rank root, const Comm& comm) {
  const int p = size();
  const Rank me = rel(rank(), root, p);
  // Canonical binomial tree: receive from the lowest-set-bit parent, then
  // forward down every lower bit position.
  int mask = 1;
  while (mask < p) {
    if ((me & mask) != 0) {
      recv(buf, abs_rank(static_cast<Rank>(me ^ mask), root, p), kBcastTag,
           comm);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const Rank child = static_cast<Rank>(me + mask);
    if (child < p) send(buf, abs_rank(child, root, p), kBcastTag, comm);
    mask >>= 1;
  }
}

namespace {

/// Binomial fold shared by the int64 and double reductions: in round k,
/// relative ranks with bit k set send their partial result to (me & ~bit)
/// and leave.
template <typename T>
void reduce_impl(Proc& proc, std::span<const T> in, std::span<T> out,
                 Proc::ReduceOp op, Rank root, const Comm& comm) {
  OTM_ASSERT(out.size() >= in.size());
  const int p = proc.size();
  const Rank me = rel(proc.rank(), root, p);
  std::copy(in.begin(), in.end(), out.begin());
  std::vector<T> incoming(in.size());

  for (int mask = 1; mask < p; mask <<= 1) {
    if ((me & mask) != 0) {
      const Rank parent = abs_rank(static_cast<Rank>(me & ~mask), root, p);
      proc.send(std::as_bytes(out.subspan(0, in.size())), parent, kReduceTag,
                comm);
      return;
    }
    const Rank child = static_cast<Rank>(me | mask);
    if (child < p) {
      proc.recv(std::as_writable_bytes(std::span(incoming)),
                abs_rank(child, root, p), kReduceTag, comm);
      for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = apply(op, out[i], incoming[i]);
    }
  }
}

}  // namespace

void Proc::reduce(std::span<const std::int64_t> in, std::span<std::int64_t> out,
                  ReduceOp op, Rank root, const Comm& comm) {
  reduce_impl(*this, in, out, op, root, comm);
}

void Proc::allreduce(std::span<const std::int64_t> in,
                     std::span<std::int64_t> out, ReduceOp op,
                     const Comm& comm) {
  reduce(in, out, op, /*root=*/0, comm);
  bcast(std::as_writable_bytes(out.subspan(0, in.size())), /*root=*/0, comm);
}

void Proc::reduce(std::span<const double> in, std::span<double> out,
                  ReduceOp op, Rank root, const Comm& comm) {
  reduce_impl(*this, in, out, op, root, comm);
}

void Proc::allreduce(std::span<const double> in, std::span<double> out,
                     ReduceOp op, const Comm& comm) {
  reduce(in, out, op, /*root=*/0, comm);
  bcast(std::as_writable_bytes(out.subspan(0, in.size())), /*root=*/0, comm);
}

void Proc::gather(std::span<const std::byte> send_block,
                  std::span<std::byte> recv_all, Rank root, const Comm& comm) {
  const int p = size();
  if (rank() == root) {
    OTM_ASSERT_MSG(recv_all.size() >= send_block.size() * static_cast<std::size_t>(p),
                   "gather receive buffer too small");
    std::copy(send_block.begin(), send_block.end(),
              recv_all.begin() +
                  static_cast<std::ptrdiff_t>(send_block.size() *
                                              static_cast<std::size_t>(root)));
    // Post all receives up front: the many-to-one burst of Sec. I.
    std::vector<Request> reqs;
    for (Rank r = 0; r < p; ++r) {
      if (r == root) continue;
      reqs.push_back(irecv(
          recv_all.subspan(send_block.size() * static_cast<std::size_t>(r),
                           send_block.size()),
          r, kGatherTag, comm));
    }
    wait_all(reqs);
  } else {
    send(send_block, root, kGatherTag, comm);
  }
}

}  // namespace otm::mpi
