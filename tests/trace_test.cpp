// Tests for the trace substrate: op classification, DUMPI text round
// trips, binary cache integrity/staleness, and the analyzer's replay
// semantics on hand-built traces.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/analyzer.hpp"
#include "trace/cache.hpp"
#include "trace/dumpi_text.hpp"
#include "trace/trace_builder.hpp"

namespace otm::trace {
namespace {

namespace fs = std::filesystem;

TEST(Ops, Categories) {
  EXPECT_EQ(category_of(OpType::kIsend), OpCategory::kP2p);
  EXPECT_EQ(category_of(OpType::kIrecv), OpCategory::kP2p);
  EXPECT_EQ(category_of(OpType::kWaitall), OpCategory::kProgress);
  EXPECT_EQ(category_of(OpType::kAllreduce), OpCategory::kCollective);
  EXPECT_EQ(category_of(OpType::kPut), OpCategory::kOneSided);
  EXPECT_EQ(category_of(OpType::kInit), OpCategory::kOther);
}

TEST(Ops, MpiNames) {
  EXPECT_STREQ(mpi_name(OpType::kIsend), "MPI_Isend");
  EXPECT_STREQ(mpi_name(OpType::kAlltoallv), "MPI_Alltoallv");
}

// --- TraceBuilder ---------------------------------------------------------

TEST(TraceBuilder, TimestampsMonotonePerRank) {
  TraceBuilder b("test", 2);
  b.isend(0, 1, 1, 8);
  b.isend(0, 1, 2, 8);
  b.irecv(1, 0, 1, 8);
  const Trace t = b.finish();
  for (const auto& r : t.ranks) {
    for (std::size_t i = 1; i < r.ops.size(); ++i)
      EXPECT_GT(r.ops[i].start_ts, r.ops[i - 1].start_ts);
  }
}

TEST(TraceBuilder, SyncAlignsClocks) {
  TraceBuilder b("test", 2);
  for (int i = 0; i < 10; ++i) b.isend(0, 1, 1, 8);  // rank 0 races ahead
  b.sync_clocks();
  b.irecv(1, 0, 1, 8);
  const Trace t = b.finish();
  // Rank 1's post-sync op must start no earlier than rank 0's last send.
  const auto& r0 = t.ranks[0].ops;
  const auto& r1 = t.ranks[1].ops;
  EXPECT_GE(r1[r1.size() - 2].start_ts, r0[r0.size() - 2].start_ts);
}

// --- DUMPI text round trip --------------------------------------------------

Trace small_trace() {
  TraceBuilder b("roundtrip", 2);
  b.irecv(1, 0, 5, 64);
  b.irecv(1, kAnySource, kAnyTag, 32);
  b.isend(0, 1, 5, 64);
  b.send(0, 1, 6, 32);
  b.recv(1, 0, 6, 32);
  b.wait(1, 1);
  b.waitall(1, 2);
  b.collective_all(OpType::kAllreduce, 8);
  b.collective_all(OpType::kBarrier, 0);
  return b.finish();
}

TEST(DumpiText, RoundTripPreservesOps) {
  const Trace t = small_trace();
  for (const auto& rank_trace : t.ranks) {
    std::stringstream ss;
    write_dumpi_text(rank_trace, ss);
    const RankTrace parsed = parse_dumpi_text(ss, rank_trace.rank);
    ASSERT_EQ(parsed.ops.size(), rank_trace.ops.size());
    for (std::size_t i = 0; i < parsed.ops.size(); ++i) {
      const TraceOp& a = rank_trace.ops[i];
      const TraceOp& b = parsed.ops[i];
      EXPECT_EQ(a.type, b.type) << "op " << i;
      if (category_of(a.type) == OpCategory::kP2p) {
        EXPECT_EQ(a.peer, b.peer) << "op " << i;
        EXPECT_EQ(a.tag, b.tag) << "op " << i;
        EXPECT_EQ(a.bytes, b.bytes) << "op " << i;
        EXPECT_EQ(a.comm, b.comm) << "op " << i;
      }
      EXPECT_NEAR(a.start_ts, b.start_ts, 1e-6);
    }
  }
}

TEST(DumpiText, WildcardsEncodedAsMinusOne) {
  TraceBuilder b("wild", 1);
  b.irecv(0, kAnySource, kAnyTag, 8);
  const Trace t = b.finish();
  std::stringstream ss;
  write_dumpi_text(t.ranks[0], ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("source=-1 (MPI_ANY_SOURCE)"), std::string::npos);
  EXPECT_NE(text.find("tag=-1 (MPI_ANY_TAG)"), std::string::npos);
  std::stringstream ss2(text);
  const RankTrace parsed = parse_dumpi_text(ss2, 0);
  const auto& recv = parsed.ops[1];  // after MPI_Init
  EXPECT_EQ(recv.peer, kAnySource);
  EXPECT_EQ(recv.tag, kAnyTag);
}

TEST(DumpiText, UnknownCallsSkipped) {
  std::stringstream ss;
  ss << "MPI_Comm_rank entering at walltime 0.1, cputime 0.0 seconds in thread 0.\n"
     << "int rank=3\n"
     << "MPI_Comm_rank returning at walltime 0.2, cputime 0.0 seconds in thread 0.\n"
     << "MPI_Send entering at walltime 0.3, cputime 0.0 seconds in thread 0.\n"
     << "int count=8\n"
     << "int dest=1\n"
     << "int tag=4\n"
     << "MPI_Comm comm=0 (MPI_COMM_WORLD)\n"
     << "MPI_Send returning at walltime 0.4, cputime 0.0 seconds in thread 0.\n";
  const RankTrace parsed = parse_dumpi_text(ss, 0);
  ASSERT_EQ(parsed.ops.size(), 1u);
  EXPECT_EQ(parsed.ops[0].type, OpType::kSend);
  EXPECT_EQ(parsed.ops[0].peer, 1);
}

TEST(DumpiText, MalformedBlockThrows) {
  std::stringstream ss;
  ss << "MPI_Send entering at walltime 0.3, cputime 0.0 seconds in thread 0.\n"
     << "int dest=1\n";  // no return line
  EXPECT_THROW(parse_dumpi_text(ss, 0), std::runtime_error);
}

TEST(DumpiText, DirectoryRoundTrip) {
  const Trace t = small_trace();
  const std::string dir = (fs::temp_directory_path() / "otm_dumpi_test").string();
  fs::remove_all(dir);
  const std::string meta = write_trace_dir(t, dir);
  const Trace loaded = load_trace_dir(meta);
  EXPECT_EQ(loaded.app_name, t.app_name);
  EXPECT_EQ(loaded.num_ranks, t.num_ranks);
  EXPECT_EQ(loaded.total_ops(), t.total_ops());
  fs::remove_all(dir);
}

// --- Binary cache -----------------------------------------------------------

TEST(Cache, SaveLoadRoundTrip) {
  const Trace t = small_trace();
  const std::string path =
      (fs::temp_directory_path() / "otm_cache_test.bin").string();
  ASSERT_TRUE(save_cache(t, path, /*fingerprint=*/42));
  const auto loaded = load_cache(path, 42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, t);
  fs::remove(path);
}

TEST(Cache, FingerprintMismatchRejected) {
  const Trace t = small_trace();
  const std::string path =
      (fs::temp_directory_path() / "otm_cache_fp.bin").string();
  ASSERT_TRUE(save_cache(t, path, 42));
  EXPECT_FALSE(load_cache(path, 43).has_value()) << "stale cache must re-parse";
  EXPECT_TRUE(load_cache(path, 0).has_value()) << "0 skips the check";
  fs::remove(path);
}

TEST(Cache, CorruptionDetected) {
  const Trace t = small_trace();
  const std::string path =
      (fs::temp_directory_path() / "otm_cache_corrupt.bin").string();
  ASSERT_TRUE(save_cache(t, path));
  // Flip a byte in the middle of the payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(200);
  char c = 0x5A;
  f.write(&c, 1);
  f.close();
  EXPECT_FALSE(load_cache(path).has_value());
  fs::remove(path);
}

TEST(Cache, CachedLoadUsesCacheSecondTime) {
  const Trace t = small_trace();
  const std::string dir = (fs::temp_directory_path() / "otm_cached_load").string();
  fs::remove_all(dir);
  const std::string meta = write_trace_dir(t, dir);
  bool used_cache = true;
  const Trace first = load_trace_cached(meta, &used_cache);
  EXPECT_FALSE(used_cache) << "first load parses the text";
  const Trace second = load_trace_cached(meta, &used_cache);
  EXPECT_TRUE(used_cache) << "second load hits the cache";
  EXPECT_EQ(first.total_ops(), second.total_ops());
  fs::remove_all(dir);
}

TEST(Cache, RegeneratedTraceInvalidatesCache) {
  Trace t = small_trace();
  const std::string dir = (fs::temp_directory_path() / "otm_cache_regen").string();
  fs::remove_all(dir);
  const std::string meta = write_trace_dir(t, dir);
  bool used_cache = false;
  load_trace_cached(meta, &used_cache);
  // Regenerate with one extra op: file sizes change, fingerprint changes.
  TraceBuilder b("roundtrip", 2);
  b.isend(0, 1, 1, 8);
  b.isend(0, 1, 1, 8);
  b.isend(0, 1, 1, 8);
  write_trace_dir(b.finish(), dir);
  load_trace_cached(meta, &used_cache);
  EXPECT_FALSE(used_cache) << "changed source must invalidate the cache";
  fs::remove_all(dir);
}

// --- Analyzer ---------------------------------------------------------------

AnalyzerConfig cfg_with_bins(std::size_t bins) {
  AnalyzerConfig c;
  c.bins = bins;
  return c;
}

TEST(Analyzer, CountsCallDistribution) {
  const Trace t = small_trace();
  const auto a = TraceAnalyzer(cfg_with_bins(16)).analyze(t);
  EXPECT_EQ(a.calls.p2p, 5u);
  EXPECT_EQ(a.calls.collective, 4u);  // 2 ranks x (allreduce + barrier)
  EXPECT_EQ(a.calls.one_sided, 0u);
  EXPECT_EQ(a.calls.progress, 2u);
  EXPECT_GT(a.calls.other, 0u);  // init/finalize
  EXPECT_NEAR(a.calls.pct_p2p() + a.calls.pct_collective() + a.calls.pct_one_sided(),
              100.0, 1e-9);
}

TEST(Analyzer, MatchesAcrossRanks) {
  const Trace t = small_trace();
  const auto a = TraceAnalyzer(cfg_with_bins(16)).analyze(t);
  EXPECT_EQ(a.messages, 2u);
  EXPECT_EQ(a.receives_posted, 3u);
  EXPECT_EQ(a.wildcard_receives, 1u);
  EXPECT_EQ(a.dropped, 0u);
}

TEST(Analyzer, QueueDepthDropsWithBins) {
  // 64 outstanding same-destination receives with distinct tags, then the
  // matching messages in reverse order: 1 bin scans deep, 128 bins do not.
  TraceBuilder b("depth", 2);
  for (Tag tag = 0; tag < 64; ++tag) b.irecv(1, 0, tag, 8);
  b.sync_clocks();
  for (Tag tag = 63; tag >= 0; --tag) b.isend(0, 1, tag, 8);
  b.waitall(1, 64);
  const Trace t = b.finish();

  const auto a1 = TraceAnalyzer(cfg_with_bins(1)).analyze(t);
  const auto a128 = TraceAnalyzer(cfg_with_bins(128)).analyze(t);
  EXPECT_GT(a1.avg_queue_depth, 8.0);
  EXPECT_LT(a128.avg_queue_depth, a1.avg_queue_depth / 4.0);
  EXPECT_GT(a1.max_queue_depth, a128.max_queue_depth);
  EXPECT_EQ(a1.unique_src_tag_pairs, 64u);
}

TEST(Analyzer, UnexpectedMessagesCounted) {
  TraceBuilder b("unexpected", 2);
  b.isend(0, 1, 9, 8);   // arrives before any receive
  b.sync_clocks();
  b.waitall(1, 0);       // progress: flushes the arrival into the UMQ
  b.irecv(1, 0, 9, 8);   // drains it at post time
  b.wait(1, 1);
  const Trace t = b.finish();
  const auto a = TraceAnalyzer(cfg_with_bins(16)).analyze(t);
  EXPECT_EQ(a.unexpected, 1u);
  EXPECT_EQ(a.matched_at_post, 1u);
}

TEST(Analyzer, TagUsageHistogram) {
  TraceBuilder b("tags", 2);
  for (int i = 0; i < 5; ++i) b.isend(0, 1, 7, 8);
  b.isend(0, 1, 3, 8);
  const Trace t = b.finish();
  const auto a = TraceAnalyzer(cfg_with_bins(16)).analyze(t);
  EXPECT_EQ(a.tag_usage.at(7), 5u);
  EXPECT_EQ(a.tag_usage.at(3), 1u);
}

TEST(Analyzer, BlockSizeAboveOneExposesConflicts) {
  // A compatible sequence hit by a burst: with block_size 8 the analyzer
  // must observe conflicts; with block_size 1 it cannot.
  TraceBuilder b("conflicts", 2);
  for (int i = 0; i < 8; ++i) b.irecv(1, 0, 5, 8);
  b.sync_clocks();
  for (int i = 0; i < 8; ++i) b.isend(0, 1, 5, 8);
  b.waitall(1, 8);
  const Trace t = b.finish();

  AnalyzerConfig c1 = cfg_with_bins(32);
  c1.block_size = 1;
  AnalyzerConfig c8 = cfg_with_bins(32);
  c8.block_size = 8;
  EXPECT_EQ(TraceAnalyzer(c1).analyze(t).conflicts, 0u);
  EXPECT_GT(TraceAnalyzer(c8).analyze(t).conflicts, 0u);
}

}  // namespace
}  // namespace otm::trace
