// Stress and failure-injection tests: long randomized runs against the
// oracle under real thread concurrency, descriptor-table churn at capacity,
// endpoint-level storms, and modeled-clock determinism.
#include <gtest/gtest.h>

#include <set>

#include "baseline/list_matcher.hpp"
#include "core/engine.hpp"
#include "proto/endpoint.hpp"
#include "util/rng.hpp"

namespace otm {
namespace {

TEST(Stress, ThreadedOracleLongRun) {
  // A long conflict-heavy run under real concurrency: the pairing must
  // stay oracle-identical throughout.
  MatchConfig cfg;
  cfg.bins = 8;
  cfg.block_size = 8;
  cfg.max_receives = 2048;
  cfg.max_unexpected = 2048;
  cfg.early_booking_check = false;
  MatchEngine eng(cfg);
  ListMatcher oracle;
  ThreadedExecutor ex;
  Xoshiro256 rng(77);
  std::uint64_t ids = 0;

  for (int round = 0; round < 150; ++round) {
    // Burst of receives: mostly one hot envelope, some diversity, a few
    // wildcards.
    const unsigned posts = 4 + static_cast<unsigned>(rng.below(8));
    for (unsigned i = 0; i < posts; ++i) {
      MatchSpec spec{1, rng.chance(0.7) ? 5 : static_cast<Tag>(rng.below(4)), 0};
      if (rng.chance(0.1)) spec.source = kAnySource;
      const auto id = ids++;
      const auto ep = eng.post_receive(spec, 0, 0, id);
      const auto op = oracle.post(spec, id);
      if (op.has_value()) {
        ASSERT_EQ(ep.kind, PostOutcome::Kind::kMatchedUnexpected);
        ASSERT_EQ(ep.message.wire_seq, *op);
      } else {
        ASSERT_EQ(ep.kind, PostOutcome::Kind::kPending);
      }
    }
    // Burst of messages matching the hot envelope plus strays.
    std::vector<IncomingMessage> msgs;
    const unsigned n = 1 + static_cast<unsigned>(rng.below(8));
    for (unsigned i = 0; i < n; ++i) {
      IncomingMessage m = IncomingMessage::make(
          1, rng.chance(0.7) ? 5 : static_cast<Tag>(rng.below(4)), 0);
      m.wire_seq = ids++;
      msgs.push_back(m);
    }
    const auto outs = eng.process(msgs, ex);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      const auto om = oracle.arrive(msgs[i].env, msgs[i].wire_seq);
      if (om.has_value()) {
        ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kMatched)
            << "round " << round << " msg " << i;
        ASSERT_EQ(outs[i].match.receive_cookie, *om);
      } else {
        ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kUnexpected);
      }
    }
  }
  // Real-thread scheduling may serialize on small machines and dodge
  // conflicts; guarantee conflict coverage with a final lockstep burst
  // (simultaneous arrival by construction) against the same oracle.
  LockstepExecutor lockstep;
  for (unsigned i = 0; i < 8; ++i) {
    const auto id = ids++;
    eng.post_receive({1, 5, 0}, 0, 0, id);
    oracle.post({1, 5, 0}, id);
  }
  std::vector<IncomingMessage> burst;
  for (unsigned i = 0; i < 8; ++i) {
    IncomingMessage m = IncomingMessage::make(1, 5, 0);
    m.wire_seq = ids++;
    burst.push_back(m);
  }
  const auto outs = eng.process(burst, lockstep);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const auto om = oracle.arrive(burst[i].env, burst[i].wire_seq);
    ASSERT_TRUE(om.has_value());
    ASSERT_EQ(outs[i].match.receive_cookie, *om);
  }
  EXPECT_GT(eng.stats().conflicts_detected, 0u)
      << "the lockstep burst must exercise conflicts";
}

TEST(Stress, DescriptorChurnAtCapacity) {
  // Run the table at 100% occupancy for thousands of post/match cycles:
  // lazy reclamation must keep it serviceable with zero leaks.
  MatchConfig cfg;
  cfg.bins = 4;
  cfg.block_size = 4;
  cfg.max_receives = 64;
  cfg.max_unexpected = 64;
  MatchEngine eng(cfg);
  LockstepExecutor ex;
  Xoshiro256 rng(5);

  std::uint64_t posted = 0;
  std::uint64_t matched = 0;
  for (int round = 0; round < 2000; ++round) {
    // Fill the table completely.
    while (true) {
      const auto p = eng.post_receive({1, static_cast<Tag>(rng.below(8)), 0});
      if (p.kind == PostOutcome::Kind::kFallback) break;
      ASSERT_EQ(p.kind, PostOutcome::Kind::kPending);
      ++posted;
    }
    // Drain a random amount.
    const unsigned drain = 1 + static_cast<unsigned>(rng.below(32));
    for (unsigned i = 0; i < drain; ++i) {
      const auto o = eng.process_one(
          IncomingMessage::make(1, static_cast<Tag>(rng.below(8)), 0), ex);
      if (o.kind == ArrivalOutcome::Kind::kMatched) ++matched;
    }
    // Unexpected store can fill up too; drain it via wildcard posts.
    while (eng.unexpected().size() > 0) {
      const auto p = eng.post_receive({kAnySource, kAnyTag, 0});
      if (p.kind != PostOutcome::Kind::kMatchedUnexpected) break;
    }
  }
  EXPECT_GT(matched, 10000u);
  EXPECT_LE(eng.receives().live_descriptors(), cfg.max_receives);
}

TEST(Stress, EndpointMessageStorm) {
  // Thousands of messages through the full offload stack with payload
  // verification, mixing expected/unexpected and eager/rendezvous.
  rdma::Fabric fabric;
  proto::EndpointConfig ep_cfg;
  ep_cfg.eager_threshold = 128;
  ep_cfg.bounce_count = 512;
  MatchConfig mc;
  mc.bins = 64;
  mc.block_size = 16;
  mc.max_receives = 1024;
  mc.max_unexpected = 1024;
  proto::Endpoint a(fabric, 0, ep_cfg, mc, DpaConfig{});
  proto::Endpoint b(fabric, 1, ep_cfg, mc, DpaConfig{});
  a.connect(b);

  Xoshiro256 rng(99);
  std::uint64_t delivered = 0;
  std::vector<std::vector<std::byte>> tx_keep;  // rendezvous buffers live on
  for (int round = 0; round < 200; ++round) {
    const unsigned n = 1 + static_cast<unsigned>(rng.below(16));
    const bool post_first = rng.chance(0.6);
    std::vector<std::vector<std::byte>> rx(n);
    std::vector<std::uint32_t> sizes(n);
    for (unsigned i = 0; i < n; ++i) {
      sizes[i] = rng.chance(0.8) ? 64 : 512;  // eager or rendezvous
      rx[i] = std::vector<std::byte>(sizes[i]);
    }
    auto post_all = [&] {
      for (unsigned i = 0; i < n; ++i)
        b.post_receive({0, static_cast<Tag>(i), 0}, rx[i],
                       static_cast<std::uint64_t>(i));
    };
    if (post_first) post_all();
    std::vector<std::vector<std::byte>> tx(n);
    for (unsigned i = 0; i < n; ++i) {
      tx[i] = std::vector<std::byte>(sizes[i],
                                     static_cast<std::byte>(round + static_cast<int>(i)));
      ASSERT_TRUE(a.send(1, static_cast<Tag>(i), 0, tx[i]).ok);
    }
    if (post_first) {
      delivered += b.progress().size();
    } else {
      b.progress();  // all unexpected
      unsigned completed = 0;
      for (unsigned i = 0; i < n; ++i) {
        const auto p = b.post_receive({0, static_cast<Tag>(i), 0}, rx[i],
                                      static_cast<std::uint64_t>(i));
        if (p.outcome == proto::Outcome::kCompleted) ++completed;
      }
      ASSERT_EQ(completed, n);
      delivered += completed;
    }
    for (unsigned i = 0; i < n; ++i)
      ASSERT_EQ(rx[i], tx[i]) << "round " << round << " msg " << i;
    // Keep rendezvous source buffers alive (registered regions).
    for (auto& t : tx)
      if (t.size() > ep_cfg.eager_threshold) tx_keep.push_back(std::move(t));
  }
  EXPECT_GT(delivered, 1000u);
  EXPECT_EQ(b.counters().messages_dropped, 0u);
}

TEST(Stress, ModeledClockDeterminism) {
  // Same inputs + lockstep schedule => identical modeled times, bit for bit.
  const CostTable costs = CostTable::dpa();
  auto run = [&] {
    MatchConfig cfg;
    cfg.bins = 16;
    cfg.block_size = 8;
    cfg.max_receives = 256;
    cfg.max_unexpected = 256;
    cfg.early_booking_check = false;
    MatchEngine eng(cfg, &costs);
    LockstepExecutor ex;
    Xoshiro256 rng(3);
    std::vector<std::uint64_t> finishes;
    for (int round = 0; round < 30; ++round) {
      for (unsigned i = 0; i < 8; ++i)
        eng.post_receive({1, static_cast<Tag>(rng.below(3)), 0});
      std::vector<IncomingMessage> msgs;
      for (unsigned i = 0; i < 8; ++i)
        msgs.push_back(
            IncomingMessage::make(1, static_cast<Tag>(rng.below(3)), 0));
      for (const auto& o : eng.process(msgs, ex))
        finishes.push_back(o.timing.finish_cycles);
    }
    return finishes;
  };
  EXPECT_EQ(run(), run());
}

TEST(Stress, RepeatedThreadedRunsNeverViolateInvariants) {
  // Repeat a short racy workload many times; internal asserts (double
  // consume, wrong-match) police the invariants.
  for (int round = 0; round < 100; ++round) {
    MatchConfig cfg;
    cfg.bins = 2;
    cfg.block_size = 8;
    cfg.max_receives = 64;
    cfg.max_unexpected = 64;
    cfg.early_booking_check = (round % 2 == 0);
    cfg.enable_fast_path = (round % 3 != 0);
    MatchEngine eng(cfg);
    ThreadedExecutor ex;
    for (unsigned i = 0; i < 12; ++i) eng.post_receive({1, 5, 0}, 0, 0, i);
    std::vector<IncomingMessage> msgs(8, IncomingMessage::make(1, 5, 0));
    const auto outs = eng.process(msgs, ex);
    std::set<std::uint64_t> used;
    for (const auto& o : outs) {
      ASSERT_EQ(o.kind, ArrivalOutcome::Kind::kMatched);
      ASSERT_TRUE(used.insert(o.match.receive_cookie).second);
    }
    // C2: cookies must be the first 8 receives in order.
    unsigned expect = 0;
    for (const auto& o : outs) ASSERT_EQ(o.match.receive_cookie, expect++);
  }
}

}  // namespace
}  // namespace otm
