// Observability facade: one object bundling the event tracer, the metrics
// registry and the queue-depth sampler behind a single ObsConfig.
//
// Zero-cost-when-disabled contract: instrumented components hold a
// `Observability*` (null = observability off) and guard every emission with
// a pointer test on the specific subsystem (`tracer()`, `metrics()`,
// `sampler()` return null for disabled subsystems). A disabled build path
// therefore costs one predictable branch per emission site and allocates
// nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"

namespace otm::obs {

struct ObsConfig {
  bool trace = false;    ///< ring-buffered event tracer
  bool metrics = false;  ///< counters / gauges / histograms
  bool sampler = false;  ///< queue-depth time series

  std::size_t trace_capacity = 1 << 16;     ///< events resident in the ring
  std::uint64_t sample_interval = 0;        ///< min timestamp gap per series

  bool any() const noexcept { return trace || metrics || sampler; }

  /// Everything on — the configuration of the bench/tool --trace-out paths.
  static ObsConfig enabled(std::size_t trace_capacity = 1 << 16,
                           std::uint64_t sample_interval = 0) noexcept {
    ObsConfig c;
    c.trace = c.metrics = c.sampler = true;
    c.trace_capacity = trace_capacity;
    c.sample_interval = sample_interval;
    return c;
  }
};

class Observability {
 public:
  explicit Observability(const ObsConfig& cfg);

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  const ObsConfig& config() const noexcept { return cfg_; }

  /// Null when the subsystem is disabled.
  Tracer* tracer() noexcept { return tracer_.get(); }
  MetricsRegistry* metrics() noexcept { return metrics_.get(); }
  DepthSampler* sampler() noexcept { return sampler_.get(); }
  const Tracer* tracer() const noexcept { return tracer_.get(); }
  const MetricsRegistry* metrics() const noexcept { return metrics_.get(); }
  const DepthSampler* sampler() const noexcept { return sampler_.get(); }

  /// Combined Chrome/Perfetto trace: tracer events plus one counter track
  /// per sampler series. Valid (loadable) even when subsystems are off.
  void write_trace_json(std::ostream& os) const;

  /// Metrics snapshot writers (no-ops emitting empty documents when the
  /// metrics subsystem is off).
  void write_metrics_json(std::ostream& os) const;
  void write_metrics_csv(std::ostream& os) const;

  /// Sampler CSV (header-only when the sampler is off).
  void write_samples_csv(std::ostream& os) const;

 private:
  ObsConfig cfg_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<DepthSampler> sampler_;
};

}  // namespace otm::obs
