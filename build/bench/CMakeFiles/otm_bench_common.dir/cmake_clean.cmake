file(REMOVE_RECURSE
  "CMakeFiles/otm_bench_common.dir/pingpong_common.cpp.o"
  "CMakeFiles/otm_bench_common.dir/pingpong_common.cpp.o.d"
  "libotm_bench_common.a"
  "libotm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
