file(REMOVE_RECURSE
  "CMakeFiles/rdma_test.dir/rdma_test.cpp.o"
  "CMakeFiles/rdma_test.dir/rdma_test.cpp.o.d"
  "rdma_test"
  "rdma_test.pdb"
  "rdma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
