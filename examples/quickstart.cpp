// Quickstart: two simulated MPI processes exchanging messages with the
// matching fully offloaded to the simulated SmartNIC DPA.
//
//   $ ./quickstart
//
// Walks through the core flows of the paper's Fig. 1: a pre-posted receive
// (expected message), a message arriving before its receive (unexpected
// message), and a wildcard receive — then prints the matching statistics
// the offloaded engine gathered.
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpi/mpi.hpp"

using namespace otm;

int main() {
  // A world of two ranks over the simulated RDMA fabric; matching runs on
  // the DPA model with the paper's default configuration (128 bins,
  // 32-thread blocks).
  mpi::World world(2, {});
  mpi::Proc& sender = world.proc(0);
  mpi::Proc& receiver = world.proc(1);
  const mpi::Comm comm = sender.world_comm();

  const char kGreeting[] = "hello from rank 0";
  std::vector<std::byte> buf(sizeof(kGreeting));

  // 1) Expected message: the receive is posted (and indexed on the NIC)
  //    before the message arrives.
  auto req = receiver.irecv(buf, /*src=*/0, /*tag=*/1, comm);
  sender.send(std::as_bytes(std::span(kGreeting)), /*dst=*/1, /*tag=*/1, comm);
  mpi::Status st = receiver.wait(req);
  std::printf("[expected]   matched %u bytes from rank %d tag %d: \"%s\"\n",
              st.bytes, st.source, st.tag,
              reinterpret_cast<const char*>(buf.data()));

  // 2) Unexpected message: it arrives first, is staged in NIC memory, and
  //    the later receive drains it from the unexpected-message store.
  sender.send(std::as_bytes(std::span(kGreeting)), 1, /*tag=*/2, comm);
  receiver.progress();  // message lands on the NIC, goes unexpected
  st = receiver.recv(buf, 0, 2, comm);
  std::printf("[unexpected] matched %u bytes after the fact\n", st.bytes);

  // 3) Wildcard receive: MPI_ANY_SOURCE / MPI_ANY_TAG.
  auto wild = receiver.irecv(buf, mpi::kAnySource, mpi::kAnyTag, comm);
  sender.send(std::as_bytes(std::span(kGreeting)), 1, /*tag=*/42, comm);
  st = receiver.wait(wild);
  std::printf("[wildcard]   matched source=%d tag=%d\n", st.source, st.tag);

  // The engine's statistics: everything matched on the (simulated) NIC,
  // zero matching cycles on the host CPU.
  const MatchStats& s = *receiver.match_stats();
  std::printf("\noffloaded matching stats: posted=%llu matched=%llu "
              "unexpected=%llu conflicts=%llu attempts=%llu\n",
              static_cast<unsigned long long>(s.receives_posted),
              static_cast<unsigned long long>(s.messages_matched),
              static_cast<unsigned long long>(s.messages_unexpected),
              static_cast<unsigned long long>(s.conflicts_detected),
              static_cast<unsigned long long>(s.match_attempts));
  return 0;
}
