#include "core/engine.hpp"

#include <algorithm>
#include <array>

#include "util/assert.hpp"

namespace otm {

namespace {

// Shared histogram layouts (all engines observe into the same instruments;
// histogram observation is additive so cross-engine sharing is sound).
constexpr std::array<std::uint64_t, 8> kChainDepthBounds = {1,  2,  4,  8,
                                                            16, 32, 64, 128};
constexpr std::array<std::uint64_t, 6> kBlockOccupancyBounds = {1, 2, 4,
                                                                8, 16, 32};
constexpr std::array<std::uint64_t, 8> kConflictLatencyBounds = {
    64, 128, 256, 512, 1024, 2048, 4096, 8192};

}  // namespace

MatchEngine::MatchEngine(const MatchConfig& cfg, const CostTable* costs)
    : cfg_(cfg),
      costs_(costs),
      prq_(cfg),
      umq_(cfg),
      umq_clock_(costs),
      matcher_(cfg_, prq_, costs) {
  OTM_ASSERT_MSG(cfg.valid(), "invalid MatchConfig");
}

void MatchEngine::attach_observability(obs::Observability* obs,
                                       std::string_view prefix) {
  SerialSection ingress(ingress_);
  obs_ = obs;
  obs_prefix_.assign(prefix);
  mh_ = MetricHandles{};
  if (obs_ == nullptr) return;
  if (obs::MetricsRegistry* reg = obs_->metrics()) {
    // Per-engine counters/gauge carry the prefix; histograms are shared.
#define OTM_X(field) mh_.field = &reg->counter(obs_prefix_ + "." #field);
    OTM_MATCH_COUNTER_FIELDS(OTM_X)
#undef OTM_X
    mh_.max_chain_scanned = &reg->gauge(obs_prefix_ + ".max_chain_scanned");
    mh_.chain_depth = &reg->histogram("match.chain_depth", kChainDepthBounds);
    mh_.block_occupancy =
        &reg->histogram("match.block_occupancy", kBlockOccupancyBounds);
    mh_.conflict_latency =
        &reg->histogram("match.conflict_latency_cycles", kConflictLatencyBounds);
    publish_metrics();
  }
}

void MatchEngine::publish_metrics() noexcept {
  if (mh_.receives_posted == nullptr) return;
#define OTM_X(field) mh_.field->set(stats_.field);
  OTM_MATCH_COUNTER_FIELDS(OTM_X)
#undef OTM_X
  mh_.max_chain_scanned->update_max(stats_.max_chain_scanned);
}

void MatchEngine::sample_depths(std::uint64_t t) {
  obs::DepthSampler* s = obs_->sampler();
  if (s == nullptr) return;
  s->sample(obs_prefix_ + ".prq_depth", t, posted_depth());
  s->sample(obs_prefix_ + ".umq_depth", t, umq_.size());
  s->sample(obs_prefix_ + ".desc_table_live", t, prq_.live_descriptors());
}

PostOutcome MatchEngine::post_receive(const MatchSpec& spec,
                                      std::uint64_t buffer_addr,
                                      std::uint32_t buffer_capacity,
                                      std::uint64_t cookie) {
  // The engine-serialized phase: command-QP posts never overlap a message
  // block (header contract), mechanized as capability acquisition.
  SerialSection ingress(ingress_);
  SerialSection prq_serial(prq_.serial());
  SerialSection umq_serial(umq_.serial());

  PostOutcome out;
  out.cookie = cookie;
  obs::Tracer* tr = obs_ != nullptr ? obs_->tracer() : nullptr;

  // Fig. 1a step 1: the unexpected store is checked before indexing.
  ThreadClock clock(costs_);
  std::uint64_t attempts = 0;
  const std::uint32_t um = umq_.search(spec, clock, attempts);
  stats_.match_attempts += attempts;
  if (attempts > stats_.max_chain_scanned) stats_.max_chain_scanned = attempts;
  if (um != kInvalidSlot) {
    out.kind = PostOutcome::Kind::kMatchedUnexpected;
    out.message = umq_.remove(um);
    ++stats_.receives_matched_unexpected;
    ++stats_.receives_posted;
    if (tr != nullptr)
      tr->record(obs::EventKind::kUmqMatch, last_finish_cycles_, 0, cookie,
                 attempts);
  } else {
    const ReceiveStore::PostResult pr =
        prq_.post(spec, buffer_addr, buffer_capacity, cookie);
    if (pr.fallback) {
      out.kind = PostOutcome::Kind::kFallback;
      ++stats_.post_fallbacks;
      if (tr != nullptr)
        tr->record(obs::EventKind::kDescriptorFallback, last_finish_cycles_, 0,
                   cookie, prq_.live_descriptors());
    } else {
      out.kind = PostOutcome::Kind::kPending;
      out.slot = pr.slot;
      ++stats_.receives_posted;
      if (tr != nullptr)
        tr->record(obs::EventKind::kPostReceive, last_finish_cycles_, 0, cookie,
                   attempts);
    }
  }
  if (obs_ != nullptr) {
    if (mh_.chain_depth != nullptr && attempts > 0)
      mh_.chain_depth->observe(attempts);
    publish_metrics();
    sample_depths(last_finish_cycles_);
  }
  return out;
}

std::optional<ProbeResult> MatchEngine::probe(const MatchSpec& spec) {
  SerialSection ingress(ingress_);
  ThreadClock clock(costs_);
  std::uint64_t attempts = 0;
  const std::uint32_t um = umq_.search(spec, clock, attempts);
  stats_.match_attempts += attempts;
  if (obs_ != nullptr) {
    if (obs::Tracer* tr = obs_->tracer())
      tr->record(obs::EventKind::kProbe, last_finish_cycles_, 0,
                 um != kInvalidSlot ? 1u : 0u, attempts);
    publish_metrics();
  }
  if (um == kInvalidSlot) return std::nullopt;
  const UnexpectedDescriptor& d = umq_.desc(um);
  return ProbeResult{d.env.source, d.env.tag,  d.payload_bytes,
                     d.env.comm,   d.protocol, d.wire_seq};
}

std::optional<std::uint64_t> MatchEngine::cancel_receive(std::uint64_t cookie) {
  SerialSection ingress(ingress_);
  SerialSection prq_serial(prq_.serial());
  const std::optional<std::uint64_t> r = prq_.cancel_by_cookie(cookie);
  if (r.has_value()) ++cancelled_receives_;
  if (obs_ != nullptr) {
    if (obs::Tracer* tr = obs_->tracer())
      tr->record(obs::EventKind::kCancel, last_finish_cycles_, 0, cookie,
                 r.has_value() ? 1u : 0u);
    sample_depths(last_finish_cycles_);
  }
  return r;
}

void MatchEngine::collect_pending(std::vector<DrainedReceive>& out) const {
  SerialSection ingress(ingress_);
  const auto first = static_cast<std::ptrdiff_t>(out.size());
  for (std::uint32_t slot = 0; slot < prq_.capacity(); ++slot) {
    const ReceiveDescriptor& d = prq_.desc(slot);
    if (!d.posted()) continue;
    out.push_back({d.spec, d.label, d.cookie, d.buffer_addr, d.buffer_capacity,
                   d.claim_idx});
  }
  std::sort(out.begin() + first, out.end(),
            [](const DrainedReceive& a, const DrainedReceive& b) {
              return a.label < b.label;
            });
}

std::size_t MatchEngine::drain_pending(std::vector<DrainedReceive>& out) {
  const std::size_t first = out.size();
  collect_pending(out);
  // Live cookies are unique (the endpoint's request ids are), so the cancel
  // path withdraws exactly the collected receive.
  for (std::size_t i = first; i < out.size(); ++i)
    cancel_receive(out[i].cookie);
  return out.size() - first;
}

std::size_t MatchEngine::drain_unexpected(std::vector<UnexpectedDescriptor>& out) {
  SerialSection ingress(ingress_);
  SerialSection umq_serial(umq_.serial());
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;  // (arrival, slot)
  for (std::uint32_t slot = 0; slot < umq_.capacity(); ++slot) {
    const UnexpectedDescriptor& d = umq_.desc(slot);
    if (d.active) order.emplace_back(d.arrival, slot);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [arrival, slot] : order) out.push_back(umq_.remove(slot));
  if (obs_ != nullptr) {
    publish_metrics();
    sample_depths(last_finish_cycles_);
  }
  return order.size();
}

BlockMatcher& MatchEngine::arm_block(std::span<const IncomingMessage> msgs,
                                     std::span<const std::uint64_t> starts) {
  SerialSection ingress(ingress_);
  OTM_ASSERT_MSG(!armed_, "arm_block while a block is armed");
  OTM_ASSERT(!msgs.empty() && msgs.size() <= cfg_.block_size);
  OTM_ASSERT(starts.empty() || starts.size() == msgs.size());
  armed_msgs_ = msgs;
  armed_starts_ = starts;
  armed_block_start_ = starts.empty() ? last_finish_cycles_ : starts.front();
  armed_ = true;
  if (obs_ != nullptr) {
    if (obs::Tracer* tr = obs_->tracer())
      tr->record(obs::EventKind::kBlockBegin, armed_block_start_, 0,
                 msgs.size(), next_gen_ + 1);
  }
  // The matcher is reused across blocks: begin_block() rearms the fixed
  // per-thread scratch instead of reallocating it for every block.
  matcher_.begin_block(++next_gen_, msgs, starts);
  return matcher_;
}

void MatchEngine::rollback_block() {
  SerialSection ingress(ingress_);
  SerialSection prq_serial(prq_.serial());
  OTM_ASSERT_MSG(armed_, "rollback_block without an armed block");
  for (unsigned t = 0; t < matcher_.num_threads(); ++t) {
    const BlockMatcher::ThreadResult& r = matcher_.result(t);
    if (r.final_slot != kInvalidSlot) prq_.unconsume(r.final_slot);
  }
  armed_ = false;
  if (obs_ != nullptr) {
    if (obs::Tracer* tr = obs_->tracer())
      tr->record(obs::EventKind::kBlockEnd, armed_block_start_, 0, 0, next_gen_);
  }
}

void MatchEngine::commit_block(std::vector<ArrivalOutcome>& outcomes,
                               std::span<const std::uint64_t> arrival_stamps) {
  // Holding the serial capabilities here is sound: the matching threads
  // finished in arm_block()'s executor run; only this (serialized) epilogue
  // mutates structural state.
  SerialSection ingress(ingress_);
  SerialSection prq_serial(prq_.serial());
  SerialSection umq_serial(umq_.serial());
  OTM_ASSERT_MSG(armed_, "commit_block without an armed block");
  OTM_ASSERT(arrival_stamps.empty() ||
             arrival_stamps.size() == armed_msgs_.size());
  armed_ = false;
  obs::Tracer* tr = obs_ != nullptr ? obs_->tracer() : nullptr;
  const std::span<const IncomingMessage> block = armed_msgs_;
  const std::span<const std::uint64_t> starts = armed_starts_;
  const std::uint64_t block_start = armed_block_start_;

  ++stats_.blocks_processed;
  if (mh_.block_occupancy != nullptr) mh_.block_occupancy->observe(block.size());

  // Epilogue (engine-serialized): collect results in arrival order; insert
  // unexpected messages into the UMQ in thread-id order so constraint C2
  // holds across the block boundary.
  std::size_t block_matched = 0;
  consumed_scratch_.clear();
  for (unsigned t = 0; t < matcher_.num_threads(); ++t) {
    const BlockMatcher::ThreadResult& r = matcher_.result(t);
    const IncomingMessage& msg = block[t];
    const std::uint64_t thread_start = starts.empty() ? block_start : starts[t];

    stats_.match_attempts += r.search.attempts;
    stats_.index_searches += r.search.index_searches;
    stats_.early_booking_skips += r.search.early_skips;
    if (r.search.max_single_chain > stats_.max_chain_scanned)
      stats_.max_chain_scanned = r.search.max_single_chain;
    ++stats_.messages_processed;
    if (r.conflicted) ++stats_.conflicts_detected;
    if (r.fast_path_aborted) ++stats_.fast_path_aborts;
    if (r.final_slot != kInvalidSlot) {
      if (r.path == ResolutionPath::kFastPath) ++stats_.fast_path_resolutions;
      if (r.path == ResolutionPath::kSlowPath) ++stats_.slow_path_resolutions;
    } else if (r.path == ResolutionPath::kSlowPath) {
      ++stats_.slow_path_resolutions;
    }

    if (tr != nullptr) {
      tr->record(obs::EventKind::kCandidate, thread_start, t,
                 r.first_candidate, r.search.attempts);
      if (r.first_candidate != kInvalidSlot)
        tr->record(obs::EventKind::kBooking, thread_start, t,
                   r.first_candidate, next_gen_);
      if (r.conflicted)
        tr->record(obs::EventKind::kConflict, r.finish_cycles, t,
                   r.first_candidate, r.fast_path_aborted ? 1u : 0u);
      tr->record(obs::EventKind::kResolution, r.finish_cycles, t,
                 r.final_slot, static_cast<std::uint64_t>(r.path));
    }
    if (mh_.chain_depth != nullptr && r.search.max_single_chain > 0)
      mh_.chain_depth->observe(r.search.max_single_chain);
    if (mh_.conflict_latency != nullptr && r.conflicted)
      mh_.conflict_latency->observe(r.finish_cycles - thread_start);

    ArrivalOutcome o;
    o.env = msg.env;
    o.match.path = r.path;
    o.match.conflicted = r.conflicted;
    o.proto = ProtocolInfo::from(msg);
    o.timing.start_cycles = thread_start;
    o.timing.finish_cycles = r.finish_cycles;

    if (r.final_slot != kInvalidSlot) {
      const ReceiveDescriptor& d = prq_.desc(r.final_slot);
      OTM_ASSERT_MSG(d.consumed(), "matched receive not consumed");
      OTM_ASSERT_MSG(d.spec.matches(msg.env), "matched receive does not match");
      o.kind = ArrivalOutcome::Kind::kMatched;
      o.match.receive_cookie = d.cookie;
      o.match.buffer_addr = d.buffer_addr;
      o.match.buffer_capacity = d.buffer_capacity;
      ++stats_.messages_matched;
      ++block_matched;
      consumed_scratch_.push_back(r.final_slot);
    } else {
      // Ordered UMQ insertion; the insert itself is a serialization
      // point, modeled by threading the umq_clock_ through the inserts.
      if (umq_clock_.enabled()) {
        umq_clock_.sync_to(r.finish_cycles);
      }
      const std::uint64_t* stamp =
          arrival_stamps.empty() ? nullptr : &arrival_stamps[t];
      const std::uint32_t slot = umq_.insert(msg, umq_clock_, stamp);
      if (slot == kInvalidSlot) {
        o.kind = ArrivalOutcome::Kind::kDropped;
      } else {
        o.kind = ArrivalOutcome::Kind::kUnexpected;
        ++stats_.messages_unexpected;
      }
      if (umq_clock_.enabled()) o.timing.finish_cycles = umq_clock_.cycles();
      if (tr != nullptr)
        tr->record(obs::EventKind::kUmqInsert, o.timing.finish_cycles, t,
                   slot, msg.wire_seq);
    }
    last_finish_cycles_ = std::max(last_finish_cycles_, o.timing.finish_cycles);
    outcomes.push_back(o);
  }

  // Eager removal: unlink consumed receives now (the matching threads
  // already paid the modeled lock/unlink cost); lazy removal leaves them
  // marked for the amortized insert-time cleanup.
  if (!cfg_.lazy_removal) {
    for (const std::uint32_t slot : consumed_scratch_) {
      prq_.unlink_and_release(slot);
      ++stats_.eager_removals;
    }
  }
  stats_.lazy_removals = prq_.lazy_removals();

  if (tr != nullptr)
    tr->record(obs::EventKind::kBlockEnd, last_finish_cycles_, 0,
               block_matched, next_gen_);
  if (obs_ != nullptr) sample_depths(last_finish_cycles_);
}

std::vector<ArrivalOutcome> MatchEngine::process(
    std::span<const IncomingMessage> msgs, BlockExecutor& executor,
    std::span<const std::uint64_t> arrival_cycles) {
  OTM_ASSERT(arrival_cycles.empty() || arrival_cycles.size() == msgs.size());
  std::vector<ArrivalOutcome> outcomes;
  outcomes.reserve(msgs.size());

  for (std::size_t base = 0; base < msgs.size(); base += cfg_.block_size) {
    const std::size_t n = std::min<std::size_t>(cfg_.block_size, msgs.size() - base);
    const std::span<const std::uint64_t> starts =
        arrival_cycles.empty() ? arrival_cycles : arrival_cycles.subspan(base, n);
    BlockMatcher& m = arm_block(msgs.subspan(base, n), starts);
    executor.execute(m);
    commit_block(outcomes);
  }
  {
    SerialSection ingress(ingress_);
    if (obs_ != nullptr) publish_metrics();
  }
  return outcomes;
}

ArrivalOutcome MatchEngine::process_one(const IncomingMessage& msg,
                                        BlockExecutor& executor) {
  const auto v = process(std::span<const IncomingMessage>(&msg, 1), executor);
  return v.front();
}

std::optional<MatchEngine::UnexpectedPeek> MatchEngine::peek_unexpected(
    const MatchSpec& spec) {
  SerialSection ingress(ingress_);
  ThreadClock clock(costs_);
  std::uint64_t attempts = 0;
  const std::uint32_t um = umq_.search(spec, clock, attempts);
  stats_.match_attempts += attempts;
  if (attempts > stats_.max_chain_scanned) stats_.max_chain_scanned = attempts;
  if (um == kInvalidSlot) return std::nullopt;
  return UnexpectedPeek{um, umq_.desc(um).arrival};
}

PostOutcome MatchEngine::take_unexpected(std::uint32_t slot,
                                         std::uint64_t cookie) {
  SerialSection ingress(ingress_);
  SerialSection umq_serial(umq_.serial());
  PostOutcome out;
  out.cookie = cookie;
  out.kind = PostOutcome::Kind::kMatchedUnexpected;
  out.message = umq_.remove(slot);
  ++stats_.receives_matched_unexpected;
  ++stats_.receives_posted;
  if (obs_ != nullptr) {
    if (obs::Tracer* tr = obs_->tracer())
      tr->record(obs::EventKind::kUmqMatch, last_finish_cycles_, 0, cookie, 0);
    publish_metrics();
    sample_depths(last_finish_cycles_);
  }
  return out;
}

PostOutcome MatchEngine::post_pending(const MatchSpec& spec,
                                      std::uint64_t buffer_addr,
                                      std::uint32_t buffer_capacity,
                                      std::uint64_t cookie, std::uint64_t label,
                                      std::uint32_t claim_idx) {
  SerialSection ingress(ingress_);
  SerialSection prq_serial(prq_.serial());
  PostOutcome out;
  out.cookie = cookie;
  obs::Tracer* tr = obs_ != nullptr ? obs_->tracer() : nullptr;
  const ReceiveStore::PostResult pr = prq_.post_labeled(
      spec, buffer_addr, buffer_capacity, cookie, label, claim_idx);
  if (pr.fallback) {
    out.kind = PostOutcome::Kind::kFallback;
    ++stats_.post_fallbacks;
    if (tr != nullptr)
      tr->record(obs::EventKind::kDescriptorFallback, last_finish_cycles_, 0,
                 cookie, prq_.live_descriptors());
  } else {
    out.kind = PostOutcome::Kind::kPending;
    out.slot = pr.slot;
    ++stats_.receives_posted;
    if (tr != nullptr)
      tr->record(obs::EventKind::kPostReceive, last_finish_cycles_, 0, cookie,
                 0);
  }
  if (obs_ != nullptr) {
    publish_metrics();
    sample_depths(last_finish_cycles_);
  }
  return out;
}

void MatchEngine::retire_replica(std::uint32_t slot) {
  SerialSection ingress(ingress_);
  SerialSection prq_serial(prq_.serial());
  const bool ok = prq_.desc(slot).try_consume();
  OTM_ASSERT_MSG(ok, "replica retire raced a live consumption");
  ++stats_.cross_shard_retired;
  // Same removal discipline as a locally-matched receive: eager mode
  // unlinks now, lazy mode leaves the consumed entry to the insert-time
  // compaction (the "losers treat it as lazily-removed" rule).
  if (!cfg_.lazy_removal) {
    prq_.unlink_and_release(slot);
    ++stats_.eager_removals;
  }
}

}  // namespace otm
