// Robustness tests for the DUMPI text parser: hostile, truncated and
// mutated inputs must either parse to something sensible or throw — never
// crash or hang — and the cache loader must reject every corruption.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/cache.hpp"
#include "trace/dumpi_text.hpp"
#include "trace/trace_builder.hpp"
#include "util/rng.hpp"

namespace otm::trace {
namespace {

namespace fs = std::filesystem;

RankTrace parse(const std::string& text) {
  std::stringstream ss(text);
  return parse_dumpi_text(ss, 0);
}

TEST(DumpiRobustness, EmptyInput) {
  EXPECT_TRUE(parse("").ops.empty());
}

TEST(DumpiRobustness, ProseOnlyInput) {
  EXPECT_TRUE(parse("this is not a trace\njust some text\n\n").ops.empty());
}

TEST(DumpiRobustness, ParametersOutsideBlocksIgnored) {
  EXPECT_TRUE(parse("int dest=3\nint tag=4\n").ops.empty());
}

TEST(DumpiRobustness, UnterminatedBlockThrows) {
  EXPECT_THROW(
      parse("MPI_Send entering at walltime 1.0, cputime 0.0 seconds in "
            "thread 0.\nint dest=1\n"),
      std::runtime_error);
}

TEST(DumpiRobustness, NestedBlockThrows) {
  EXPECT_THROW(
      parse("MPI_Send entering at walltime 1.0, cputime 0.0 seconds in "
            "thread 0.\n"
            "MPI_Recv entering at walltime 1.1, cputime 0.0 seconds in "
            "thread 0.\n"),
      std::runtime_error);
}

TEST(DumpiRobustness, StrayReturnThrows) {
  EXPECT_THROW(
      parse("MPI_Send returning at walltime 1.0, cputime 0.0 seconds in "
            "thread 0.\n"),
      std::runtime_error);
}

TEST(DumpiRobustness, MissingFieldsDefaultToZero) {
  const auto t =
      parse("MPI_Send entering at walltime 1.0, cputime 0.0 seconds in "
            "thread 0.\n"
            "MPI_Send returning at walltime 1.1, cputime 0.0 seconds in "
            "thread 0.\n");
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].peer, 0);
  EXPECT_EQ(t.ops[0].tag, 0);
  EXPECT_EQ(t.ops[0].bytes, 0u);
}

TEST(DumpiRobustness, GarbageParameterLinesIgnored) {
  const auto t =
      parse("MPI_Send entering at walltime 1.0, cputime 0.0 seconds in "
            "thread 0.\n"
            "int dest=2\n"
            "????\n"
            "key_without_equals\n"
            "weird stuff = = =\n"
            "int tag=9\n"
            "MPI_Send returning at walltime 1.1, cputime 0.0 seconds in "
            "thread 0.\n");
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].peer, 2);
  EXPECT_EQ(t.ops[0].tag, 9);
}

TEST(DumpiRobustness, NegativeAndHugeValues) {
  const auto t =
      parse("MPI_Irecv entering at walltime 1.0, cputime 0.0 seconds in "
            "thread 0.\n"
            "int count=4294967295\n"
            "int source=-1 (MPI_ANY_SOURCE)\n"
            "int tag=-1 (MPI_ANY_TAG)\n"
            "MPI_Request request=[18446744073709551615]\n"
            "MPI_Irecv returning at walltime 1.1, cputime 0.0 seconds in "
            "thread 0.\n");
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].peer, kAnySource);
  EXPECT_EQ(t.ops[0].tag, kAnyTag);
}

TEST(DumpiRobustness, WindowsLineEndings) {
  const auto t =
      parse("MPI_Send entering at walltime 1.0, cputime 0.0 seconds in "
            "thread 0.\r\n"
            "int dest=2\r\n"
            "int tag=5\r\n"
            "MPI_Send returning at walltime 1.1, cputime 0.0 seconds in "
            "thread 0.\r\n");
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].peer, 2);
}

TEST(DumpiRobustness, LineMutationFuzzNeverCrashes) {
  // Write a real trace, then mutate one line at a time: the parser must
  // either succeed or throw, never crash/hang.
  TraceBuilder b("fuzz", 1);
  for (int i = 0; i < 10; ++i) {
    b.isend(0, 0, static_cast<Tag>(i), 8);  // self-sends fine for text fuzz
    b.waitall(0, 1);
  }
  std::stringstream base;
  write_dumpi_text(b.finish().ranks[0], base);
  const std::string text = base.str();

  std::vector<std::string> lines;
  {
    std::stringstream ss(text);
    std::string l;
    while (std::getline(ss, l)) lines.push_back(l);
  }

  Xoshiro256 rng(17);
  int parsed_ok = 0;
  int threw = 0;
  for (int round = 0; round < 300; ++round) {
    auto mutated = lines;
    const std::size_t idx = rng.below(mutated.size());
    switch (rng.below(4)) {
      case 0: mutated[idx].clear(); break;                       // blank line
      case 1: mutated.erase(mutated.begin() +                    // drop line
                            static_cast<std::ptrdiff_t>(idx));
        break;
      case 2:                                                     // corrupt char
        if (!mutated[idx].empty())
          mutated[idx][rng.below(mutated[idx].size())] =
              static_cast<char>('!' + rng.below(90));
        break;
      case 3: mutated.insert(mutated.begin() +                    // dup line
                             static_cast<std::ptrdiff_t>(idx), mutated[idx]);
        break;
    }
    std::string joined;
    for (const auto& l : mutated) {
      joined += l;
      joined += '\n';
    }
    try {
      parse(joined);
      ++parsed_ok;
    } catch (const std::runtime_error&) {
      ++threw;
    }
  }
  EXPECT_EQ(parsed_ok + threw, 300);
  EXPECT_GT(parsed_ok, 0) << "most single-line mutations should still parse";
}

TEST(DumpiRobustness, TruncatedCacheRejected) {
  TraceBuilder b("trunc", 2);
  b.isend(0, 1, 1, 8);
  b.irecv(1, 0, 1, 8);
  const Trace t = b.finish();
  const std::string path =
      (fs::temp_directory_path() / "otm_trunc_cache.bin").string();
  ASSERT_TRUE(save_cache(t, path));
  const auto full_size = fs::file_size(path);
  // Truncate at several byte offsets; every load must fail cleanly.
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    fs::resize_file(path, static_cast<std::uintmax_t>(
                              static_cast<double>(full_size) * frac));
    EXPECT_FALSE(load_cache(path).has_value()) << "fraction " << frac;
  }
  fs::remove(path);
}

TEST(DumpiRobustness, CacheOfWrongMagicRejected) {
  const std::string path =
      (fs::temp_directory_path() / "otm_badmagic.bin").string();
  std::ofstream os(path, std::ios::binary);
  const char junk[64] = "definitely not a trace cache";
  os.write(junk, sizeof(junk));
  os.close();
  EXPECT_FALSE(load_cache(path).has_value());
  fs::remove(path);
}

TEST(DumpiRobustness, MissingRankFileThrows) {
  TraceBuilder b("missing", 3);
  b.isend(0, 1, 1, 8);
  const Trace t = b.finish();
  const std::string dir = (fs::temp_directory_path() / "otm_missing").string();
  fs::remove_all(dir);
  const std::string meta = write_trace_dir(t, dir);
  fs::remove(fs::path(dir) / "dumpi-missing-0001.txt");
  EXPECT_THROW(load_trace_dir(meta), std::runtime_error);
  fs::remove_all(dir);
}

TEST(DumpiRobustness, MalformedMetaThrows) {
  const std::string dir = (fs::temp_directory_path() / "otm_badmeta").string();
  fs::create_directories(dir);
  const std::string meta = dir + "/dumpi-bad.meta";
  std::ofstream(meta) << "not a real meta file\n";
  EXPECT_THROW(load_trace_dir(meta), std::runtime_error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace otm::trace
