#include "trace/jsonl.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>

namespace otm::trace {
namespace {

/// Minimal flat-object JSON scanner: extracts "key":value pairs where the
/// value is a number or a double-quoted string (no nesting — the format is
/// flat by construction). Tolerates arbitrary whitespace.
class FlatJson {
 public:
  explicit FlatJson(const std::string& line) {
    std::size_t i = 0;
    auto skip_ws = [&] {
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    };
    skip_ws();
    if (i >= line.size() || line[i] != '{')
      throw std::runtime_error("jsonl: expected object");
    ++i;
    for (;;) {
      skip_ws();
      if (i < line.size() && line[i] == '}') break;
      if (i >= line.size() || line[i] != '"')
        throw std::runtime_error("jsonl: expected key");
      const std::size_t key_end = line.find('"', i + 1);
      if (key_end == std::string::npos)
        throw std::runtime_error("jsonl: unterminated key");
      const std::string key = line.substr(i + 1, key_end - i - 1);
      i = key_end + 1;
      skip_ws();
      if (i >= line.size() || line[i] != ':')
        throw std::runtime_error("jsonl: expected ':'");
      ++i;
      skip_ws();
      if (i < line.size() && line[i] == '"') {
        const std::size_t val_end = line.find('"', i + 1);
        if (val_end == std::string::npos)
          throw std::runtime_error("jsonl: unterminated string");
        strings_[key] = line.substr(i + 1, val_end - i - 1);
        i = val_end + 1;
      } else {
        const std::size_t start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
        if (i == start) throw std::runtime_error("jsonl: empty value");
        numbers_[key] = std::strtod(line.c_str() + start, nullptr);
      }
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') break;
      throw std::runtime_error("jsonl: expected ',' or '}'");
    }
  }

  bool has_string(const std::string& k) const { return strings_.count(k) != 0; }
  bool has_number(const std::string& k) const { return numbers_.count(k) != 0; }
  const std::string& str(const std::string& k) const { return strings_.at(k); }
  double num(const std::string& k, double def = 0.0) const {
    const auto it = numbers_.find(k);
    return it == numbers_.end() ? def : it->second;
  }

 private:
  std::map<std::string, std::string> strings_;
  std::map<std::string, double> numbers_;
};

}  // namespace

void write_jsonl(const Trace& trace, std::ostream& os) {
  os << "{\"app\":\"" << trace.app_name << "\",\"ranks\":" << trace.num_ranks
     << "}\n";
  char buf[320];
  for (const RankTrace& r : trace.ranks) {
    for (const TraceOp& op : r.ops) {
      std::snprintf(buf, sizeof(buf),
                    "{\"rank\":%d,\"op\":\"%s\",\"peer\":%d,\"tag\":%d,"
                    "\"comm\":%u,\"bytes\":%u,\"request\":%llu,"
                    "\"t0\":%.9f,\"t1\":%.9f}\n",
                    r.rank, mpi_name(op.type), op.peer, op.tag, op.comm,
                    op.bytes, static_cast<unsigned long long>(op.request),
                    op.start_ts, op.end_ts);
      os << buf;
    }
  }
}

Trace parse_jsonl(std::istream& is) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("jsonl: empty input");
  const FlatJson header(line);
  if (!header.has_string("app") || !header.has_number("ranks"))
    throw std::runtime_error("jsonl: missing header");

  Trace t;
  t.app_name = header.str("app");
  t.num_ranks = static_cast<int>(header.num("ranks"));
  if (t.num_ranks <= 0) throw std::runtime_error("jsonl: invalid rank count");
  t.ranks.resize(static_cast<std::size_t>(t.num_ranks));
  for (int r = 0; r < t.num_ranks; ++r)
    t.ranks[static_cast<std::size_t>(r)].rank = static_cast<Rank>(r);

  std::map<std::string, OpType> by_name;
  for (int i = 0; i <= static_cast<int>(OpType::kFinalize); ++i)
    by_name.emplace(mpi_name(static_cast<OpType>(i)), static_cast<OpType>(i));

  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const FlatJson rec(line);
    if (!rec.has_number("rank") || !rec.has_string("op"))
      throw std::runtime_error("jsonl: record missing rank/op at line " +
                               std::to_string(line_no));
    const int rank = static_cast<int>(rec.num("rank"));
    if (rank < 0 || rank >= t.num_ranks)
      throw std::runtime_error("jsonl: rank out of range at line " +
                               std::to_string(line_no));
    const auto it = by_name.find(rec.str("op"));
    if (it == by_name.end()) continue;  // unknown call: skip, like DUMPI
    TraceOp op;
    op.type = it->second;
    op.peer = static_cast<Rank>(rec.num("peer"));
    op.tag = static_cast<Tag>(rec.num("tag"));
    op.comm = static_cast<CommId>(rec.num("comm"));
    op.bytes = static_cast<std::uint32_t>(rec.num("bytes"));
    op.request = static_cast<std::uint64_t>(rec.num("request"));
    op.start_ts = rec.num("t0");
    op.end_ts = rec.num("t1");
    t.ranks[static_cast<std::size_t>(rank)].ops.push_back(op);
  }
  return t;
}

}  // namespace otm::trace
