// Mini-MPI: an MPI-flavored point-to-point API over the offloaded matching
// endpoint (or a software baseline matcher).
//
// This is the substrate a downstream application programs against:
// communicators with MPI-4 info hints (mpi_assert_no_any_source/_tag,
// mpi_assert_allow_overtaking — Sec. VII), isend/irecv/send/recv with
// wildcards, request test/wait, and transparent flow control when the NIC
// descriptor table fills (posting falls back to a host-side pending queue
// that preserves posting order, the paper's "software tag matching"
// fallback).
//
// A World owns the simulated fabric and one process ("Proc") per rank.
// Programs either drive Procs explicitly from one thread (tests, benches)
// or use World::run(), which executes the program per rank on real threads
// with blocking wait semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "baseline/list_matcher.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"
#include "obs/observability.hpp"
#include "proto/endpoint.hpp"

namespace otm::mpi {

inline constexpr Rank kAnySource = otm::kAnySource;
inline constexpr Tag kAnyTag = otm::kAnyTag;

/// Communicator assertions (MPI_Info hints, MPI 4.0 §11.4.4 / paper Sec. VII).
struct CommInfo {
  bool assert_no_any_source = false;
  bool assert_no_any_tag = false;
  bool assert_allow_overtaking = false;
  bool offload = true;  ///< request DPA offload for this communicator
  /// Matching shards for this communicator (docs/SHARDING.md). 0 inherits
  /// WorldOptions.match.shards; otherwise a power of two <= kMaxShards.
  unsigned shards = 0;
};

struct Comm {
  CommId id = 0;
  CommInfo info{};
};

/// Which matcher backs the world.
enum class Backend : std::uint8_t {
  kOffloadDpa,    ///< optimistic tag matching on the simulated DPA
  kSoftwareList,  ///< traditional two-queue matching on the host
};

struct WorldOptions {
  Backend backend = Backend::kOffloadDpa;
  MatchConfig match{};
  DpaConfig dpa{};
  proto::EndpointConfig endpoint{};
  rdma::FabricConfig fabric{};
  obs::ObsConfig obs{};  ///< observability (off by default; offload backend)
  /// Skip the O(N^2) pairwise QP mesh at construction and connect endpoint
  /// pairs lazily on the first send between them (docs/SCALING.md). Large
  /// simulated worlds (128-1024 ranks) only pay for the pairs that actually
  /// communicate; a 1024-rank full mesh would be ~524k QP pairs.
  bool on_demand_connect = false;
};

struct Status {
  Rank source = 0;
  Tag tag = 0;
  std::uint32_t bytes = 0;
};

/// otm::ProbeResult leads with Status's fields in Status's order, so probe
/// results translate by prefix copy — the asserts pin the alignment.
inline Status to_status(const ProbeResult& pr) noexcept {
  static_assert(std::is_trivially_copyable_v<Status>);
  static_assert(std::is_trivially_copyable_v<ProbeResult>);
  static_assert(offsetof(ProbeResult, source) == offsetof(Status, source));
  static_assert(offsetof(ProbeResult, tag) == offsetof(Status, tag));
  static_assert(offsetof(ProbeResult, bytes) == offsetof(Status, bytes));
  static_assert(sizeof(Status) <= sizeof(ProbeResult));
  Status s;
  std::memcpy(static_cast<void*>(&s), static_cast<const void*>(&pr),
              sizeof(Status));
  return s;
}

/// Opaque request handle.
struct Request {
  std::uint64_t id = ~std::uint64_t{0};
  bool valid() const noexcept { return id != ~std::uint64_t{0}; }
};

class World;

/// One simulated MPI process.
class Proc {
 public:
  Rank rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// The predefined world communicator (id 0, no assertions).
  Comm world_comm() const noexcept { return Comm{0, {}}; }

  /// Create a communicator with the given assertions (collective in
  /// spirit: allocates DPA structures on every rank's NIC). When
  /// `info.offload` is false — or the DPA memory budget is exhausted
  /// (Sec. IV-E) — the communicator's matching runs on the host.
  Comm comm_create(const CommInfo& info);

  /// True if this rank's NIC matches `comm` on the DPA.
  bool comm_offloaded(const Comm& comm) const;

  Request isend(std::span<const std::byte> data, Rank dst, Tag tag,
                const Comm& comm);
  Request irecv(std::span<std::byte> buf, Rank src, Tag tag, const Comm& comm);

  /// Blocking variants (single-threaded drivers must ensure the matching
  /// send/receive was already initiated, or use World::run()).
  void send(std::span<const std::byte> data, Rank dst, Tag tag, const Comm& comm);
  Status recv(std::span<std::byte> buf, Rank src, Tag tag, const Comm& comm);

  /// MPI_Iprobe: non-blocking check whether a matching message has already
  /// arrived (and could be received). Does not consume the message.
  bool iprobe(Rank src, Tag tag, const Comm& comm, Status* status = nullptr);

  /// MPI_Probe: blocking variant of iprobe.
  Status probe(Rank src, Tag tag, const Comm& comm);

  /// MPI_Cancel: withdraw a pending receive request. Returns true when the
  /// request was cancelled (it then completes with `cancelled()` set);
  /// false when it already matched or is not a pending receive.
  bool cancel(Request req);

  /// True if the request completed by cancellation rather than by a match.
  bool cancelled(Request req);

  /// True if the request failed instead of completing: the send was refused
  /// by the fabric (unreliable path) or its reliable-delivery retry budget
  /// ran out. Failed requests are `done` — wait() returns — so a crashed
  /// peer degrades the application gracefully instead of wedging it.
  bool failed(Request req);

  /// Typed cause of a failed request (kNone while not failed).
  enum class RequestError : std::uint8_t {
    kNone,
    kSendRefused,     ///< transient fabric refusal (RNR / CQ backpressure)
    kDeliveryFailed,  ///< reliable channel failed (retry budget exhausted)
    kPeerDead,        ///< peer declared Dead by the health state machine
  };
  RequestError request_error(Request req);

  /// True when the endpoint's recovery state machine declared `peer` Dead
  /// (offload backend only; the software backend has no fault model).
  bool peer_dead(Rank peer) const;

  /// Fault cleanup after a peer death: cancel every pending receive that
  /// only `peer` could satisfy (non-wildcard source == peer). Each drained
  /// request completes done + failed with RequestError::kPeerDead — its
  /// buffer is released and wait() returns. Wildcard-source receives stay
  /// posted (another peer may still match them). Returns the count drained.
  std::size_t drain_peer(Rank peer);

  /// Non-blocking completion check; fills `status` when done.
  bool test(Request req, Status* status = nullptr);

  /// Completion check WITHOUT driving progress (unlike test()). The event-
  /// driven scheduler (mpi/scheduler.hpp) evaluates blocked tasks' wait
  /// predicates with this after progressing exactly the ranks its event
  /// queue names, keeping the event accounting honest.
  bool request_done(Request req);
  Status wait(Request req);
  void wait_all(std::span<Request> reqs);

  /// MPI_Waitany: block until any request in `reqs` completes; returns its
  /// index and fills `status` from the completed request. `reqs` must be
  /// non-empty.
  std::size_t wait_any(std::span<const Request> reqs, Status* status = nullptr);

  // --- Collectives over point-to-point -------------------------------------
  //
  // Sec. VII: collective operations are normally built on top of p2p and
  // hence need matching to be performed in order to be offloaded. These
  // implementations run entirely over isend/irecv (dissemination barrier,
  // binomial-tree bcast/reduce/gather, reduce+bcast allreduce) so every
  // collective message goes through the offloaded matcher. All ranks of
  // the communicator must call them concurrently (use World::run()).

  enum class ReduceOp : std::uint8_t { kSum, kMin, kMax };

  /// Dissemination barrier: ceil(log2 P) rounds.
  void barrier(const Comm& comm);

  /// Binomial-tree broadcast of `buf` from `root`.
  void bcast(std::span<std::byte> buf, Rank root, const Comm& comm);

  /// Binomial-tree reduction of int64 vectors into `out` at `root` (other
  /// ranks' `out` is scratch).
  void reduce(std::span<const std::int64_t> in, std::span<std::int64_t> out,
              ReduceOp op, Rank root, const Comm& comm);

  /// reduce to rank 0 + bcast.
  void allreduce(std::span<const std::int64_t> in, std::span<std::int64_t> out,
                 ReduceOp op, const Comm& comm);

  /// Floating-point variants (dot products, residual norms, dt reductions).
  void reduce(std::span<const double> in, std::span<double> out, ReduceOp op,
              Rank root, const Comm& comm);
  void allreduce(std::span<const double> in, std::span<double> out, ReduceOp op,
                 const Comm& comm);

  /// Gather fixed-size blocks to `root`: recv.size() == size()*send.size()
  /// at the root (ignored elsewhere).
  void gather(std::span<const std::byte> send, std::span<std::byte> recv,
              Rank root, const Comm& comm);

  /// Drain network progress once (non-blocking).
  void progress();

  /// Number of receives queued host-side awaiting NIC descriptor slots.
  std::size_t pending_posts() const noexcept { return pending_posts_.size(); }

  struct ProcStats {
    std::uint64_t sends = 0;
    std::uint64_t recvs = 0;
    std::uint64_t wildcard_recvs = 0;
    std::uint64_t fallback_deferrals = 0;
    std::uint64_t send_failures = 0;    ///< isends refused/failed by the fabric
    std::uint64_t delivery_errors = 0;  ///< retry budgets exhausted (reliable)
  };
  const ProcStats& stats() const noexcept { return stats_; }

  /// Reliable-delivery failures surfaced by the endpoint since the last
  /// call (drained during progress()).
  std::vector<proto::DeliveryError> take_delivery_errors();

  /// Matching statistics from the backing engine (offload backend). For a
  /// sharded default communicator the counters are summed over shards into
  /// a per-Proc snapshot (the pointer stays valid until the next call).
  const MatchStats* match_stats() const;

 private:
  friend class World;
  friend class WorldScheduler;  ///< dead-peer sweep reuses the wait escape
  Proc(World& world, Rank rank);

  struct RequestState {
    enum class Kind : std::uint8_t { kSend, kRecv } kind = Kind::kRecv;
    bool done = false;
    bool cancelled = false;
    Status status{};
    std::span<std::byte> buffer{};
    MatchSpec spec{};
    std::uint64_t cookie = 0;
    bool failed = false;  ///< send refused or delivery budget exhausted
    RequestError error = RequestError::kNone;  ///< typed cause when failed
  };

  struct PendingPost {
    MatchSpec spec;
    std::span<std::byte> buffer;
    std::uint64_t request_index;
  };

  RequestState& state(Request req);
  void validate_spec(const MatchSpec& spec, const CommInfo& info);
  /// wait_any escape hatch: when every incomplete request in `reqs` is a
  /// source-specific receive naming a Dead peer, drain those peers so the
  /// requests complete failed (RequestError::kPeerDead) instead of spinning
  /// forever. Returns true when a drain happened (re-test the list).
  bool fail_dead_peer_waits(std::span<const Request> reqs);
  void flush_pending_posts();
  /// Post (or re-post, after a watchdog eviction) a receive into the host
  /// matcher, completing it immediately against the host unexpected store.
  void repost_host(const MatchSpec& spec, std::uint64_t request_index);
  void handle_completion(std::uint64_t cookie, const Envelope& env,
                         std::uint32_t bytes, bool offload_path);
  bool try_post_offload(const MatchSpec& spec, std::span<std::byte> buf,
                        std::uint64_t request_index);
  void deliver_software(Rank dst, Tag tag, const Comm& comm,
                        std::span<const std::byte> data);

  World* world_;
  Rank rank_;
  std::deque<RequestState> requests_;
  std::deque<PendingPost> pending_posts_;
  ProcStats stats_;
  std::vector<proto::DeliveryError> delivery_errors_;  ///< drained via accessor
  mutable MatchStats sharded_stats_;  ///< match_stats() snapshot (sharded)

  // Software-backend state: sequential matcher plus payload staging.
  std::unique_ptr<ListMatcher> sw_matcher_;
  struct SwMessage {
    std::vector<std::byte> payload;
    Envelope env;
  };
  std::deque<std::pair<std::uint64_t, SwMessage>> sw_unexpected_;  // id -> msg
  std::uint64_t sw_next_msg_ = 0;

  // Host-side fallback matching for communicators without DPA structures
  // (offload backend, Sec. IV-E "fall back to software tag matching").
  void drain_host_messages();
  void complete_host_message(std::uint64_t request_index,
                             proto::Endpoint::HostMessage&& msg);
  ListMatcher host_matcher_;
  std::deque<std::pair<std::uint64_t, proto::Endpoint::HostMessage>>
      host_unexpected_;  // message id -> stored message
  std::uint64_t host_next_msg_ = 1'000'000'000;  ///< distinct id space
};

class World {
 public:
  explicit World(int num_ranks, const WorldOptions& options = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return static_cast<int>(procs_.size()); }
  Proc& proc(Rank r);

  /// SPMD driver: run `program` once per rank on its own thread; blocking
  /// wait() calls make progress until their request completes.
  void run(const std::function<void(Proc&)>& program);

  const WorldOptions& options() const noexcept { return options_; }

  /// Rank r's endpoint (offload backend only — asserted): operational and
  /// test access to recovery counters and DPA watchdog state.
  proto::Endpoint& endpoint(Rank r) {
    OTM_ASSERT_MSG(options_.backend == Backend::kOffloadDpa &&
                       r >= 0 && static_cast<std::size_t>(r) < endpoints_.size(),
                   "endpoint() requires the offload backend and a valid rank");
    return *endpoints_[static_cast<std::size_t>(r)];
  }

  /// The world-owned simulated fabric. The verification harness reaches
  /// the fault injector through here (fabric().injector(), non-null iff
  /// options.fabric.fault.enabled) to install explorer fate hooks.
  rdma::Fabric& fabric() noexcept { return fabric_; }

  /// The world-owned observability context (null when options.obs is all
  /// off or the backend is software). Rank r's endpoint publishes under
  /// the "rank<r>" prefix.
  obs::Observability* observability() noexcept { return obs_.get(); }
  const obs::Observability* observability() const noexcept { return obs_.get(); }

  /// Connect the QP pair between `a` and `b` if it does not exist yet
  /// (no-op for a == b, the software backend, or an already-connected
  /// pair). isend() calls this under on_demand_connect; drivers that know
  /// the communication graph up front (trace replay) may pre-connect.
  void ensure_connected(Rank a, Rank b);

  /// Observer invoked after every isend (src, dst), under the world mutex.
  /// The event-driven scheduler uses it to schedule delivery/progress
  /// events instead of polling every rank. The listener must not re-enter
  /// Proc/World calls. Replaces any previous listener; pass {} to clear.
  using SendListener = std::function<void(Rank src, Rank dst)>;
  void set_send_listener(SendListener listener) {
    std::lock_guard lock(mutex_);
    send_listener_ = std::move(listener);
  }

 private:
  friend class Proc;

  WorldOptions options_;
  rdma::Fabric fabric_;
  std::unique_ptr<obs::Observability> obs_;
  std::vector<std::unique_ptr<proto::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Proc>> procs_;
  SendListener send_listener_;  ///< scheduler hook (may be empty)
  CommId next_comm_ = 1;
  std::recursive_mutex mutex_;  ///< serializes cross-rank fabric access
  bool threaded_run_ = false;
};

}  // namespace otm::mpi
