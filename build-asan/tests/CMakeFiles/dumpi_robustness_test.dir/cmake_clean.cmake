file(REMOVE_RECURSE
  "CMakeFiles/dumpi_robustness_test.dir/dumpi_robustness_test.cpp.o"
  "CMakeFiles/dumpi_robustness_test.dir/dumpi_robustness_test.cpp.o.d"
  "dumpi_robustness_test"
  "dumpi_robustness_test.pdb"
  "dumpi_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dumpi_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
