#include "verify/scenarios.hpp"

#include <cstring>
#include <map>
#include <memory>
#include <utility>

namespace otm::verify {

namespace {

using Step = mpi::WorldScheduler::Step;
using Fate = rdma::FaultInjector::Fate;

/// One message of a sender program, issued in program order. Stamps are
/// assigned per (dst, tag) stream: the i-th message of a stream carries
/// stamp i in its first 8 payload bytes.
struct Message {
  Rank dst = 0;
  Tag tag = 0;
  std::size_t bytes = 16;
};

/// One posted receive of a receiver program, in posting order. Matching
/// is FIFO per (src, tag) stream, so the i-th posted receive of a stream
/// must complete with stamp i — note_app_recv checks exactly that.
struct Recv {
  Rank src = 0;
  Tag tag = 0;
  std::size_t bytes = 16;
};

/// Issue every message back-to-back (pipelined — this is what stresses
/// windows, retransmission and recovery replay), then block on all of
/// them. Failed sends (peer declared Dead under an adversarial fault
/// budget) still complete, so the program always terminates.
mpi::WorldScheduler::Program sender_program(std::vector<Message> msgs) {
  struct St {
    bool issued = false;
    std::vector<std::vector<std::byte>> bufs;  ///< stable: reserved up front
    std::vector<mpi::Request> reqs;
  };
  auto st = std::make_shared<St>();
  return [st, msgs = std::move(msgs)](mpi::Proc& p) -> Step {
    if (st->issued) return Step::done();
    st->issued = true;
    st->bufs.reserve(msgs.size());
    std::map<std::pair<Rank, Tag>, std::uint64_t> stamps;
    for (const Message& m : msgs) {
      st->bufs.emplace_back(m.bytes);
      const std::uint64_t stamp = stamps[{m.dst, m.tag}]++;
      std::memcpy(st->bufs.back().data(), &stamp, sizeof(stamp));
      st->reqs.push_back(p.isend(st->bufs.back(), m.dst, m.tag, p.world_comm()));
    }
    return Step::wait_all(st->reqs);
  };
}

/// Post every receive up front, block on all, then report each completed
/// (non-failed) payload's stamp to the oracle.
mpi::WorldScheduler::Program receiver_program(std::vector<Recv> rs,
                                              Oracle& oracle) {
  struct St {
    bool issued = false;
    std::vector<std::vector<std::byte>> bufs;
    std::vector<mpi::Request> reqs;
  };
  auto st = std::make_shared<St>();
  return [st, rs = std::move(rs), &oracle](mpi::Proc& p) -> Step {
    if (!st->issued) {
      st->issued = true;
      st->bufs.reserve(rs.size());
      for (const Recv& r : rs) {
        st->bufs.emplace_back(r.bytes);
        st->reqs.push_back(p.irecv(st->bufs.back(), r.src, r.tag, p.world_comm()));
      }
      return Step::wait_all(st->reqs);
    }
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (p.failed(st->reqs[i])) continue;  // dead-peer drain, not a delivery
      std::uint64_t stamp = 0;
      std::memcpy(&stamp, st->bufs[i].data(), sizeof(stamp));
      oracle.note_app_recv(p.rank(), rs[i].src, rs[i].tag, stamp);
    }
    return Step::done();
  };
}

/// Small-world base recipe: offload backend, fault injection armed with
/// every probability at zero (the explorer's fate hook is the only fault
/// source, so default runs are fault-free), reliability pinned on, and
/// NIC resources scaled down so a disposable per-run World is cheap.
mpi::WorldOptions base_options() {
  mpi::WorldOptions o;
  o.endpoint.bounce_count = 64;
  o.endpoint.cq_depth = 128;
  o.fabric.fault.enabled = true;
  o.endpoint.reliability.mode = proto::ReliabilityConfig::Mode::kOn;
  o.endpoint.reliability.rto_ns = 2'000;
  o.endpoint.reliability.rto_max_ns = 8'000;
  return o;
}

std::vector<Scenario> build_scenarios() {
  std::vector<Scenario> v;

  {
    Scenario s;
    s.name = "eager_storm";
    s.description =
        "rank 0 pipelines 3 small eager sends to rank 1 under "
        "drop/duplicate/hold fates; retransmission, dedup and per-stream "
        "FIFO must hold on every branch";
    s.ranks = 2;
    s.fate_options = {Fate::kDeliver, Fate::kDrop, Fate::kDuplicate,
                      Fate::kHold};
    s.max_fate_points = 6;
    s.options = [] {
      mpi::WorldOptions o = base_options();
      o.fabric.fault.reorder_window = 2;
      return o;
    };
    s.setup = [](mpi::World&, mpi::WorldScheduler& sched, Oracle& oracle) {
      sched.add_task(0, sender_program({{1, 7, 16}, {1, 7, 16}, {1, 7, 16}}));
      sched.add_task(1, receiver_program(
                            {{0, 7, 16}, {0, 7, 16}, {0, 7, 16}}, oracle));
    };
    v.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "rendezvous_mix";
    s.description =
        "two senders feed one receiver a mix of eager and rendezvous "
        "messages under drops; RTS/data interleavings across ranks must "
        "preserve per-stream FIFO";
    s.ranks = 3;
    s.fate_options = {Fate::kDeliver, Fate::kDrop};
    s.max_fate_points = 5;
    s.options = [] {
      mpi::WorldOptions o = base_options();
      o.endpoint.eager_threshold = 16;  // 48-byte payloads go rendezvous
      return o;
    };
    s.setup = [](mpi::World&, mpi::WorldScheduler& sched, Oracle& oracle) {
      sched.add_task(0, sender_program({{2, 1, 8}, {2, 2, 48}}));
      sched.add_task(1, sender_program({{2, 1, 8}}));
      sched.add_task(2, receiver_program(
                            {{0, 1, 8}, {0, 2, 48}, {1, 1, 8}}, oracle));
    };
    v.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "recovery_flap";
    s.description =
        "a 1-retry budget turns early drops into epoch-bump recoveries "
        "while pre-recovery acks are still pending; epoch fencing must "
        "discard every stale packet and ack (the planted-bug family: "
        "OTM_VERIFY_BREAK=ack_fence is caught here)";
    s.ranks = 2;
    s.fate_options = {Fate::kDeliver, Fate::kDrop, Fate::kHold};
    s.max_fate_points = 8;
    s.max_qp_points = 2;
    s.options = [] {
      mpi::WorldOptions o = base_options();
      o.endpoint.reliability.rto_ns = 500;
      o.endpoint.reliability.rto_max_ns = 2'000;
      o.endpoint.reliability.retry_budget = 1;
      o.endpoint.recovery.enabled = true;
      o.endpoint.recovery.max_attempts = 3;
      o.endpoint.recovery.quiesce_ns = 200;
      o.fabric.fault.reorder_window = 1;  // a held packet lags exactly 1 send
      return o;
    };
    s.setup = [](mpi::World&, mpi::WorldScheduler& sched, Oracle& oracle) {
      sched.add_task(0, sender_program({{1, 5, 16}, {1, 5, 16}}));
      sched.add_task(1, receiver_program({{0, 5, 16}, {0, 5, 16}}, oracle));
    };
    v.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "multi_lane_ingress";
    s.description =
        "two ingress lanes under a 1-retry budget: stale epoch-0 data parks "
        "in the receiver's lane-0 CQ while the recovery's epoch announce "
        "lands on lane 1; the lane-drain decision lets the announce overtake "
        "the stale data, so the head epoch fence must discard it (the "
        "planted-bug family: OTM_VERIFY_BREAK=epoch_fence is caught here)";
    s.ranks = 2;
    s.fate_options = {Fate::kDeliver, Fate::kDrop};
    s.max_fate_points = 6;
    s.max_qp_points = 2;
    s.max_lane_points = 4;
    s.options = [] {
      mpi::WorldOptions o = base_options();
      o.endpoint.ingress_lanes = 2;
      o.endpoint.reliability.rto_ns = 500;
      o.endpoint.reliability.rto_max_ns = 2'000;
      o.endpoint.reliability.retry_budget = 1;
      o.endpoint.recovery.enabled = true;
      o.endpoint.recovery.max_attempts = 3;
      o.endpoint.recovery.quiesce_ns = 200;
      return o;
    };
    s.setup = [](mpi::World&, mpi::WorldScheduler& sched, Oracle& oracle) {
      sched.add_task(0, sender_program({{1, 9, 16}, {1, 9, 16}}));
      sched.add_task(1, receiver_program({{0, 9, 16}, {0, 9, 16}}, oracle));
    };
    v.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "coalesced_storm";
    s.description =
        "5 tiny sends coalesce into merged packets under drops; the "
        "coalescing buffer must conserve sub-messages (every append "
        "flushed exactly once) and unpacked sub-messages must stay FIFO";
    s.ranks = 2;
    s.fate_options = {Fate::kDeliver, Fate::kDrop};
    s.max_fate_points = 4;
    s.options = [] {
      mpi::WorldOptions o = base_options();
      o.endpoint.coalescing.enabled = true;
      o.endpoint.coalescing.max_messages = 3;
      o.endpoint.coalescing.eligible_bytes = 64;
      return o;
    };
    s.setup = [](mpi::World&, mpi::WorldScheduler& sched, Oracle& oracle) {
      sched.add_task(0, sender_program({{1, 3, 16},
                                        {1, 3, 16},
                                        {1, 3, 16},
                                        {1, 3, 16},
                                        {1, 3, 16}}));
      sched.add_task(1, receiver_program({{0, 3, 16},
                                          {0, 3, 16},
                                          {0, 3, 16},
                                          {0, 3, 16},
                                          {0, 3, 16}},
                                         oracle));
    };
    v.push_back(std::move(s));
  }

  return v;
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> registry = build_scenarios();
  return registry;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : scenarios())
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace otm::verify
