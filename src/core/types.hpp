// Fundamental matching types: envelopes, match specs, wildcard classes.
//
// Terminology follows the paper (Sec. II-A): received messages are "incoming
// messages", receive requests are "posted receives". A posted receive may use
// MPI_ANY_SOURCE / MPI_ANY_TAG wildcards; an incoming message never does.
#pragma once

#include <cstdint>
#include <string>

#include "util/hash.hpp"

namespace otm {

using Rank = std::int32_t;
using Tag = std::int32_t;
using CommId = std::uint32_t;

/// Wildcard sentinels (match MPI's "any" semantics; negative values are
/// invalid as real sources/tags, mirroring MPI_ANY_SOURCE/MPI_ANY_TAG).
inline constexpr Rank kAnySource = -1;
inline constexpr Tag kAnyTag = -1;

/// The four receive classes of Sec. III-B; the enum value doubles as the
/// index-table id inside the receive store.
enum class WildcardClass : std::uint8_t {
  kNone = 0,       ///< fully specified: indexed by hash(src, tag)
  kSourceWild = 1,  ///< source wildcard: indexed by hash(tag)
  kTagWild = 2,    ///< tag wildcard: indexed by hash(src)
  kBothWild = 3,   ///< both wildcards: kept in a posting-ordered list
};

inline constexpr unsigned kNumIndexes = 4;

const char* to_string(WildcardClass c) noexcept;

/// The matching fields carried by every incoming message (no wildcards).
struct Envelope {
  Rank source = 0;
  Tag tag = 0;
  CommId comm = 0;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Matching specification of a posted receive (may contain wildcards).
struct MatchSpec {
  Rank source = 0;
  Tag tag = 0;
  CommId comm = 0;

  bool any_source() const noexcept { return source == kAnySource; }
  bool any_tag() const noexcept { return tag == kAnyTag; }

  WildcardClass wildcard_class() const noexcept {
    if (any_source()) return any_tag() ? WildcardClass::kBothWild : WildcardClass::kSourceWild;
    return any_tag() ? WildcardClass::kTagWild : WildcardClass::kNone;
  }

  bool matches(const Envelope& e) const noexcept {
    return comm == e.comm && (any_source() || source == e.source) &&
           (any_tag() || tag == e.tag);
  }

  /// Two receives are "compatible" (Sec. III-D, fast path) when they have
  /// the same source, tag and communicator — including wildcard usage — so
  /// that consecutive compatible receives form a shiftable sequence.
  bool compatible_with(const MatchSpec& o) const noexcept {
    return source == o.source && tag == o.tag && comm == o.comm;
  }

  friend bool operator==(const MatchSpec&, const MatchSpec&) = default;
};

/// Sender-precomputed hash values (inline-hash optimization, Sec. III-D).
/// They depend only on the envelope, so the sender can ship them in the
/// message header and spare the on-NIC cores the hash computation.
struct InlineHashes {
  std::uint64_t src_tag = 0;
  std::uint64_t src = 0;
  std::uint64_t tag = 0;

  static InlineHashes compute(const Envelope& e) noexcept {
    return {hash_src_tag(e.source, e.tag), hash_src(e.source), hash_tag(e.tag)};
  }

  friend bool operator==(const InlineHashes&, const InlineHashes&) = default;
};

/// Wire protocol selector (Sec. IV-B).
enum class Protocol : std::uint8_t {
  kEager = 0,       ///< full payload staged in the bounce buffer
  kRendezvous = 1,  ///< RTS header; receiver issues an RDMA read
};

/// An incoming message as seen by the matching engine: envelope plus the
/// metadata needed by the protocol-handling stage.
struct IncomingMessage {
  Envelope env;
  InlineHashes hashes;        ///< valid iff `has_inline_hashes`
  bool has_inline_hashes = false;
  Protocol protocol = Protocol::kEager;
  std::uint32_t payload_bytes = 0;
  std::uint32_t inline_bytes = 0;  ///< payload staged with the header (RTS
                                   ///< first fragment, Sec. IV-B)
  std::uint64_t wire_seq = 0;     ///< arrival order on the stream (global)
  std::uint64_t bounce_handle = 0;  ///< staging location (opaque to core)
  std::uint64_t remote_key = 0;     ///< rendezvous: rkey of the send buffer
  std::uint64_t remote_addr = 0;    ///< rendezvous: address of the send buffer
  std::uint32_t payload_offset = 0;  ///< payload start inside the staged body
                                     ///< (non-zero for coalesced sub-messages)
  bool merged_sub = false;  ///< dispatched by a merged-packet unpack handler,
                            ///< not by its own CQE (smaller dispatch cost)

  static IncomingMessage make(Rank src, Tag tag, CommId comm,
                              std::uint32_t bytes = 0) noexcept {
    IncomingMessage m;
    m.env = {src, tag, comm};
    m.hashes = InlineHashes::compute(m.env);
    m.has_inline_hashes = true;
    m.payload_bytes = bytes;
    m.inline_bytes = bytes;
    return m;
  }
};

std::string to_string(const Envelope& e);
std::string to_string(const MatchSpec& s);

}  // namespace otm
