#include "mpi/scheduler.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace otm::mpi {

namespace {

/// Extract the "sched_picks" integer array from a .otmsched counterexample
/// (docs/VERIFICATION.md). Deliberately minimal — the scheduler must not
/// depend on src/verify (which depends on it), and the emitter writes the
/// array on one canonical form: "sched_picks": [1, 0, 2].
std::vector<std::uint32_t> parse_sched_picks(const std::string& text) {
  std::vector<std::uint32_t> picks;
  const auto key = text.find("\"sched_picks\"");
  if (key == std::string::npos) return picks;
  const auto open = text.find('[', key);
  if (open == std::string::npos) return picks;
  std::size_t i = open + 1;
  while (i < text.size() && text[i] != ']') {
    if (std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      std::uint32_t v = 0;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        v = v * 10 + static_cast<std::uint32_t>(text[i] - '0');
        ++i;
      }
      picks.push_back(v);
    } else {
      ++i;
    }
  }
  return picks;
}

}  // namespace

WorldScheduler::WorldScheduler(World& world, const Config& cfg)
    : world_(&world), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.replay_picks.empty() && cfg_.pick_hook == nullptr) {
    if (const char* path = std::getenv("OTM_SCHED_TRACE")) {
      std::ifstream in(path);
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        cfg_.replay_picks = parse_sched_picks(text.str());
      }
    }
  }
  tasks_.resize(static_cast<std::size_t>(world.size()));
  next_event_at_.assign(static_cast<std::size_t>(world.size()), kNoEvent);
  // Delivery edge: every isend schedules a progress pair — the sender (to
  // flush coalescing buffers and reap acks) and the receiver (to drain its
  // CQ / host inbox into completions). This is what makes the scheduler
  // event-driven rather than poll-everything.
  world_->set_send_listener([this](Rank src, Rank dst) {
    const std::uint64_t at = vtime_ + cfg_.delivery_delay_ns;
    schedule_progress(src, at);
    schedule_progress(dst, at);
  });
}

WorldScheduler::~WorldScheduler() { world_->set_send_listener({}); }

void WorldScheduler::add_task(Rank r, Program program) {
  OTM_ASSERT_MSG(r >= 0 && static_cast<std::size_t>(r) < tasks_.size(),
                 "task rank outside the world");
  Task& t = tasks_[static_cast<std::size_t>(r)];
  OTM_ASSERT_MSG(t.program == nullptr, "rank already has a task");
  t.program = std::move(program);
  t.state = Task::State::kRunnable;
  runnable_.push_back(r);
  ++live_tasks_;
}

WorldScheduler::Task* WorldScheduler::task(Rank r) {
  if (r < 0 || static_cast<std::size_t>(r) >= tasks_.size()) return nullptr;
  Task& t = tasks_[static_cast<std::size_t>(r)];
  return t.program == nullptr ? nullptr : &t;
}

std::uint64_t WorldScheduler::steps(Rank r) const {
  if (r < 0 || static_cast<std::size_t>(r) >= tasks_.size()) return 0;
  return tasks_[static_cast<std::size_t>(r)].steps;
}

std::vector<Rank> WorldScheduler::blocked_ranks() const {
  std::vector<Rank> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    if (tasks_[i].program != nullptr && tasks_[i].state == Task::State::kBlocked)
      out.push_back(static_cast<Rank>(i));
  return out;
}

/// splitmix64 — small, deterministic, and good enough to fuzz pick order.
std::uint64_t WorldScheduler::next_rng() noexcept {
  rng_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = rng_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool WorldScheduler::wait_satisfied(Task& t) {
  if (t.wait_reqs.empty()) return true;
  Proc& p = world_->proc(static_cast<Rank>(&t - tasks_.data()));
  if (t.wait == Step::Wait::kAny) {
    for (const Request r : t.wait_reqs)
      if (p.request_done(r)) return true;
    return false;
  }
  for (const Request r : t.wait_reqs)
    if (!p.request_done(r)) return false;
  return true;
}

void WorldScheduler::make_runnable(Rank r) {
  Task& t = tasks_[static_cast<std::size_t>(r)];
  t.state = Task::State::kRunnable;
  t.wait_reqs.clear();
  runnable_.push_back(r);
  last_useful_vt_ = vtime_;
}

void WorldScheduler::schedule_progress(Rank r, std::uint64_t at) {
  const auto idx = static_cast<std::size_t>(r);
  if (next_event_at_[idx] <= at) return;  // an earlier/equal event is pending
  events_heap_.push(Event{at, event_seq_++, r});
  // XOR-fold over (at, rank): order-insensitive, removable on pop. The push
  // sequence is deliberately excluded — it numbers events globally, so two
  // otherwise-identical states would never fingerprint equal.
  events_hash_ ^= mix64(at * 0x9E37u + static_cast<std::uint64_t>(r) + 1);
  next_event_at_[idx] = at;
}

void WorldScheduler::run_task(Rank r) {
  Task& t = tasks_[static_cast<std::size_t>(r)];
  Proc& p = world_->proc(r);
  for (std::uint32_t s = 0; s < std::max<std::uint32_t>(cfg_.quantum, 1); ++s) {
    Step st = t.program(p);
    ++t.steps;
    if (cfg_.log_steps) step_log_.push_back(r);
    vtime_ += 1;  // a step occupies virtual time so event order stays total
    last_useful_vt_ = vtime_;
    if (cfg_.step_hook) cfg_.step_hook();
    switch (st.kind) {
      case Step::Kind::kDone:
        t.state = Task::State::kDone;
        t.wait_reqs.clear();
        --live_tasks_;
        // A finished rank's endpoint still owes the fabric liveness —
        // acks for peers' retransmits, keepalive replies — so keep it on
        // the periodic tick until every task is done.
        if (live_tasks_ > 0)
          schedule_progress(r, vtime_ + cfg_.progress_period_ns);
        return;
      case Step::Kind::kBlocked:
        t.state = Task::State::kBlocked;
        t.wait = st.wait;
        t.wait_reqs = std::move(st.reqs);
        if (wait_satisfied(t)) {
          make_runnable(r);
        } else {
          // Guaranteed wake-up source even if no further send targets this
          // rank: periodic progress drives RTOs/keepalives/watchdog and
          // re-evaluates the predicate.
          schedule_progress(r, vtime_ + cfg_.progress_period_ns);
        }
        return;
      case Step::Kind::kYield:
        break;  // next quantum slice (or requeue below)
    }
  }
  runnable_.push_back(r);
}

void WorldScheduler::progress_event(const Event& ev) {
  const auto idx = static_cast<std::size_t>(ev.rank);
  if (next_event_at_[idx] == ev.at) next_event_at_[idx] = kNoEvent;
  world_->proc(ev.rank).progress();
  ++events_;
  if (cfg_.step_hook) cfg_.step_hook();
  Task* t = task(ev.rank);
  if (t != nullptr && t->state == Task::State::kBlocked) {
    if (wait_satisfied(*t))
      make_runnable(ev.rank);
    else
      schedule_progress(ev.rank, vtime_ + cfg_.progress_period_ns);
  } else if (t != nullptr && t->state == Task::State::kDone &&
             live_tasks_ > 0) {
    // Done ranks keep ticking (ack/keepalive liveness for live peers).
    schedule_progress(ev.rank, vtime_ + cfg_.progress_period_ns);
  }
}

bool WorldScheduler::sweep_dead_peers() {
  bool drained = false;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    Task& t = tasks_[i];
    if (t.program == nullptr || t.state != Task::State::kBlocked) continue;
    const Rank r = static_cast<Rank>(i);
    Proc& p = world_->proc(r);
    if (t.wait == Step::Wait::kAny) {
      // Only safe when the whole list is receives from Dead peers — the
      // same all-or-nothing rule wait_any applies.
      if (p.fail_dead_peer_waits(t.wait_reqs)) {
        ++dead_drains_;
        drained = true;
      }
    } else {
      // wait-all: each incomplete receive naming a Dead peer blocks the
      // task forever on its own, so drain them individually.
      for (const Request q : t.wait_reqs) {
        if (p.request_done(q)) continue;
        if (p.fail_dead_peer_waits({&q, 1})) {
          ++dead_drains_;
          drained = true;
        }
      }
    }
    if (wait_satisfied(t)) make_runnable(r);
  }
  return drained;
}

std::size_t WorldScheduler::pick_runnable() {
  const std::size_t n = runnable_.size();
  if (n == 1) return 0;  // not a choice point: nothing to record or replay
  std::size_t pick;
  if (cfg_.pick_hook != nullptr) {
    pick = cfg_.pick_hook(n);
    if (pick >= n) pick = n - 1;
  } else if (replay_next_ < cfg_.replay_picks.size()) {
    pick = cfg_.replay_picks[replay_next_++];
    if (pick >= n) pick = n - 1;
  } else if (cfg_.seed == 0) {
    pick = 0;
  } else {
    pick = static_cast<std::size_t>(next_rng() % n);
  }
  pick_log_.push_back(static_cast<std::uint32_t>(pick));
  return pick;
}

std::uint64_t WorldScheduler::state_fingerprint() const noexcept {
  std::uint64_t h = mix64(vtime_ + 0x56u) ^ events_hash_;
  for (const Rank r : runnable_) h = mix64(h ^ static_cast<std::uint64_t>(r));
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    h = mix64(h ^ (static_cast<std::uint64_t>(t.state) << 32 | i));
    h = mix64(h ^ t.wait_reqs.size());
    h = mix64(h ^ next_event_at_[i]);
  }
  return h;
}

WorldScheduler::Outcome WorldScheduler::run() {
  last_useful_vt_ = vtime_;
  bool swept = false;  // dead-peer sweep already ran in this dry window
  while (live_tasks_ > 0) {
    if (!runnable_.empty()) {
      const std::size_t pick = pick_runnable();
      const Rank r = runnable_[pick];
      runnable_.erase(runnable_.begin() +
                      static_cast<std::deque<Rank>::difference_type>(pick));
      if (tasks_[static_cast<std::size_t>(r)].state != Task::State::kRunnable)
        continue;  // stale entry (rank re-queued then completed elsewhere)
      swept = false;
      run_task(r);
      continue;
    }
    if (!events_heap_.empty()) {
      const Event ev = events_heap_.top();
      events_heap_.pop();
      events_hash_ ^=
          mix64(ev.at * 0x9E37u + static_cast<std::uint64_t>(ev.rank) + 1);
      if (vtime_ < ev.at) vtime_ = ev.at;
      progress_event(ev);
      if (!runnable_.empty()) swept = false;
      if (runnable_.empty() &&
          vtime_ - last_useful_vt_ > cfg_.idle_timeout_ns) {
        if (sweep_dead_peers()) {
          swept = true;
          continue;
        }
        if (swept) return Outcome::kDeadlock;  // second dry window
        swept = true;
        last_useful_vt_ = vtime_;  // grant one more window before giving up
      }
      continue;
    }
    // No runnable task and no pending event: progress every blocked rank
    // once (idle sweep), then try the dead-peer drain, then give up.
    bool moved = false;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      Task& t = tasks_[i];
      if (t.program == nullptr || t.state != Task::State::kBlocked) continue;
      const Rank r = static_cast<Rank>(i);
      world_->proc(r).progress();
      if (wait_satisfied(t)) {
        make_runnable(r);
        moved = true;
      }
    }
    if (moved) continue;
    if (sweep_dead_peers()) continue;
    return Outcome::kDeadlock;
  }
  return Outcome::kCompleted;
}

}  // namespace otm::mpi
