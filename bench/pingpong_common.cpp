#include "pingpong_common.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "proto/wire.hpp"
#include "util/assert.hpp"

namespace otm::bench {
namespace {

constexpr Tag kAckTag = 30000;

Tag tag_for(const PingPongConfig& cfg, unsigned i) {
  return cfg.with_conflict ? 0 : static_cast<Tag>(i);
}

}  // namespace

PingPongResult run_optimistic_dpa(const PingPongConfig& cfg) {
  rdma::Fabric fabric(cfg.fabric);
  // The sender's own matcher only handles the ack, keep it minimal.
  MatchConfig sender_match;
  sender_match.bins = 16;
  sender_match.block_size = 1;
  sender_match.max_receives = 8;
  sender_match.max_unexpected = 8;
  proto::Endpoint sender(fabric, 0, cfg.endpoint, sender_match, cfg.dpa);
  proto::Endpoint receiver(fabric, 1, cfg.endpoint, cfg.match, cfg.dpa);
  sender.connect(receiver);
  if (cfg.obs != nullptr) {
    sender.attach_observability(cfg.obs, cfg.obs_prefix + "sender");
    receiver.attach_observability(cfg.obs, cfg.obs_prefix + "receiver");
  }

  const unsigned k = cfg.messages_per_seq;
  std::vector<std::byte> tx(cfg.payload_bytes);
  std::vector<std::vector<std::byte>> user(k,
                                           std::vector<std::byte>(cfg.payload_bytes));
  std::vector<std::byte> ack_buf(8);

  double total_ns = 0.0;
  std::vector<double> seq_samples;
  seq_samples.reserve(cfg.repetitions);
  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    for (unsigned i = 0; i < k; ++i) {
      const auto r = receiver.post_receive({0, tag_for(cfg, i), 0}, user[i], i);
      OTM_ASSERT_MSG(r.outcome == proto::Outcome::kPending,
                     "receive did not stay pending");
    }
    const auto ack_post = sender.post_receive({1, kAckTag, 0}, ack_buf, 0);
    OTM_ASSERT(ack_post.outcome == proto::Outcome::kPending);

    const std::uint64_t start = sender.now_ns();
    for (unsigned i = 0; i < k; ++i) {
      const auto s = sender.send(1, tag_for(cfg, i), 0, tx);
      OTM_ASSERT_MSG(s.ok, "ping send failed");
    }
    auto done = receiver.progress();
    // Under injected faults one progress pass is not enough: retransmission
    // timers live on the sender, so pump both sides until the sequence
    // completes. With a clean fabric the first pass already matched all k
    // and neither loop body runs.
    for (unsigned spin = 0; done.size() < k && receiver.reliable() &&
                            spin < 10'000'000; ++spin) {
      sender.progress();
      const auto more = receiver.progress();
      done.insert(done.end(), more.begin(), more.end());
    }
    OTM_ASSERT_MSG(done.size() == k, "not all messages matched");

    const auto ack = receiver.send(0, kAckTag, 0, std::span<const std::byte>(
                                                      ack_buf.data(), 8));
    OTM_ASSERT(ack.ok);
    auto acks = sender.progress();
    for (unsigned spin = 0; acks.empty() && receiver.reliable() &&
                            spin < 10'000'000; ++spin) {
      receiver.progress();
      const auto more = sender.progress();
      acks.insert(acks.end(), more.begin(), more.end());
    }
    OTM_ASSERT(acks.size() == 1);
    const auto ns = static_cast<double>(acks[0].completion_ns - start);
    total_ns += ns;
    seq_samples.push_back(ns);
  }

  const MatchStats& s = receiver.dpa().engine().stats();
  PingPongResult r;
  r.avg_seq_ns = total_ns / cfg.repetitions;
  r.msg_rate = static_cast<double>(k) * 1e9 / r.avg_seq_ns;
  r.host_match_cycles = receiver.dpa().host_matching_cycles();  // 0: offloaded
  r.conflicts = s.conflicts_detected;
  r.fast_path = s.fast_path_resolutions;
  r.slow_path = s.slow_path_resolutions;
  r.seq_ns = std::move(seq_samples);
  return r;
}

PingPongResult run_small_storm(const PingPongConfig& cfg, bool coalesced) {
  rdma::Fabric fabric(cfg.fabric);

  // The storm keeps 512 receives in flight. Keep the caller's table
  // geometry (block_size is also the hart-lane width: narrowing it would
  // throttle the match pipeline below the CQE savings under test) but make
  // sure the posting and unexpected budgets cover the burst.
  MatchConfig recv_match = cfg.match;
  recv_match.max_receives = std::max<std::size_t>(recv_match.max_receives,
                                                  2 * kStormMessages);
  recv_match.max_unexpected =
      std::max<std::size_t>(recv_match.max_unexpected, 64);
  MatchConfig sender_match;  // acks only
  sender_match.bins = 16;
  sender_match.block_size = 1;
  sender_match.max_receives = 8;
  sender_match.max_unexpected = 8;

  // Storm endpoints use a 4 KiB eager/bounce budget so a merged packet can
  // carry 32 sub-messages (32 x (48 B header + payload) exceeds the 1 KiB
  // default). Applied to both runs: for eager traffic the threshold only
  // sizes buffers, it has no modeled per-message cost.
  proto::EndpointConfig storm_ep = cfg.endpoint;
  storm_ep.eager_threshold = std::max<std::size_t>(storm_ep.eager_threshold,
                                                   4096);
  // The non-coalesced run keeps one wire packet (one bounce buffer, one CQ
  // slot) per in-flight message; recycling only happens on progress(), so
  // the pools must cover the whole burst.
  storm_ep.bounce_count = std::max<std::size_t>(storm_ep.bounce_count,
                                                2 * kStormMessages);
  storm_ep.cq_depth = std::max<std::size_t>(storm_ep.cq_depth,
                                            2 * kStormMessages);
  // Under injected faults the reliable channel must survive the whole
  // kStormMessages-deep burst: acks trail a full 256-packet window drain,
  // so the stock 20 us RTO fires spuriously (the lockstep caveat in
  // docs/RELIABILITY.md) and its 16-retry budget can kill a healthy
  // channel mid-storm. Scale the timeout and budget to the storm depth;
  // with faults off reliability stays inactive (kAuto) and the modeled
  // numbers are byte-identical.
  if (cfg.fabric.fault.enabled) {
    storm_ep.reliability.rto_ns =
        std::max<std::uint64_t>(storm_ep.reliability.rto_ns, 100'000);
    storm_ep.reliability.rto_max_ns =
        std::max<std::uint64_t>(storm_ep.reliability.rto_max_ns, 2'000'000);
    storm_ep.reliability.retry_budget =
        std::max<std::uint32_t>(storm_ep.reliability.retry_budget, 64);
  }
  // Only the sender coalesces: the receiver unpacks kMerged packets off the
  // wire flag regardless of its own config, and coalescing its lone ack
  // would just strand it in a buffer until the next doorbell.
  proto::EndpointConfig ep = storm_ep;
  ep.coalescing.enabled = coalesced;
  if (coalesced) {
    ep.coalescing.max_messages = 32;
    ep.coalescing.eligible_bytes = 64;
  }

  proto::Endpoint sender(fabric, 0, ep, sender_match, cfg.dpa);
  proto::Endpoint receiver(fabric, 1, storm_ep, recv_match, cfg.dpa);
  sender.connect(receiver);
  if (cfg.obs != nullptr) {
    sender.attach_observability(cfg.obs, cfg.obs_prefix + "sender");
    receiver.attach_observability(cfg.obs, cfg.obs_prefix + "receiver");
  }

  const unsigned k = kStormMessages;
  std::vector<std::byte> tx(cfg.payload_bytes);
  std::vector<std::vector<std::byte>> user(k,
                                           std::vector<std::byte>(cfg.payload_bytes));
  std::vector<std::byte> ack_buf(8);

  double total_ns = 0.0;
  std::vector<double> seq_samples;
  seq_samples.reserve(cfg.repetitions);
  const auto wall_start = std::chrono::steady_clock::now();
  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    for (unsigned i = 0; i < k; ++i) {
      const auto r = receiver.post_receive({0, static_cast<Tag>(i), 0},
                                           user[i], i);
      OTM_ASSERT_MSG(r.outcome == proto::Outcome::kPending,
                     "storm receive did not stay pending");
    }
    const auto ack_post = sender.post_receive({1, kAckTag, 0}, ack_buf, 0);
    OTM_ASSERT(ack_post.outcome == proto::Outcome::kPending);

    const std::uint64_t start = sender.now_ns();
    for (unsigned i = 0; i < k; ++i) {
      const auto s = sender.send(1, static_cast<Tag>(i), 0, tx);
      OTM_ASSERT_MSG(s.ok, "storm send failed");
    }
    // Doorbell-flush the coalescing tail (no-op without coalescing) and let
    // the receiver drain; under injected faults pump both sides like the
    // ping-pong scenario does.
    sender.progress();
    auto done = receiver.progress();
    for (unsigned spin = 0; done.size() < k && receiver.reliable() &&
                            spin < 10'000'000; ++spin) {
      sender.progress();
      const auto more = receiver.progress();
      done.insert(done.end(), more.begin(), more.end());
    }
    OTM_ASSERT_MSG(done.size() == k, "not all storm messages matched");

    const auto ack = receiver.send(0, kAckTag, 0, std::span<const std::byte>(
                                                      ack_buf.data(), 8));
    OTM_ASSERT(ack.ok);
    auto acks = sender.progress();
    for (unsigned spin = 0; acks.empty() && receiver.reliable() &&
                            spin < 10'000'000; ++spin) {
      receiver.progress();
      const auto more = sender.progress();
      acks.insert(acks.end(), more.begin(), more.end());
    }
    OTM_ASSERT(acks.size() == 1);
    const auto ns = static_cast<double>(acks[0].completion_ns - start);
    total_ns += ns;
    seq_samples.push_back(ns);
  }
  const auto wall_end = std::chrono::steady_clock::now();

  const MatchStats& s = receiver.dpa().engine().stats();
  PingPongResult r;
  r.avg_seq_ns = total_ns / cfg.repetitions;
  r.msg_rate = static_cast<double>(k) * 1e9 / r.avg_seq_ns;
  r.host_match_cycles = receiver.dpa().host_matching_cycles();  // 0: offloaded
  r.conflicts = s.conflicts_detected;
  r.fast_path = s.fast_path_resolutions;
  r.slow_path = s.slow_path_resolutions;
  r.seq_ns = std::move(seq_samples);
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end - wall_start)
          .count());
  return r;
}

PingPongResult run_sharded_incast(const PingPongConfig& cfg, unsigned shards,
                                  unsigned lanes) {
  rdma::Fabric fabric(cfg.fabric);
  MatchConfig recv_match = cfg.match;
  recv_match.shards = shards;
  MatchConfig sender_match;  // acks only
  sender_match.bins = 16;
  sender_match.block_size = 1;
  sender_match.max_receives = 8;
  sender_match.max_unexpected = 8;

  // Ingress lanes are world-symmetric (connect() asserts it), so the lane
  // count applies to senders too even though only the receiver fans out.
  proto::EndpointConfig ep = cfg.endpoint;
  ep.ingress_lanes = lanes;

  proto::Endpoint receiver(fabric, 0, ep, recv_match, cfg.dpa);
  std::vector<std::unique_ptr<proto::Endpoint>> senders;
  for (unsigned s = 0; s < kIncastSenders; ++s) {
    senders.push_back(std::make_unique<proto::Endpoint>(
        fabric, static_cast<Rank>(s + 1), ep, sender_match, cfg.dpa));
    senders.back()->connect(receiver);
  }
  if (cfg.obs != nullptr)
    receiver.attach_observability(cfg.obs, cfg.obs_prefix + "receiver");

  const unsigned k = cfg.messages_per_seq;
  OTM_ASSERT_MSG(k % kIncastSenders == 0,
                 "incast k must divide evenly across senders");
  std::vector<std::byte> tx(cfg.payload_bytes);
  std::vector<std::vector<std::byte>> user(k,
                                           std::vector<std::byte>(cfg.payload_bytes));
  std::vector<std::vector<std::byte>> ack_bufs(kIncastSenders,
                                               std::vector<std::byte>(8));

  double total_ns = 0.0;
  std::vector<double> seq_samples;
  seq_samples.reserve(cfg.repetitions);
  const auto wall_start = std::chrono::steady_clock::now();
  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    // Receive i targets sender 1 + (i % kIncastSenders): specific sources,
    // distinct tags, spread uniformly across the shard mask.
    for (unsigned i = 0; i < k; ++i) {
      const auto src = static_cast<Rank>(1 + i % kIncastSenders);
      const auto r = receiver.post_receive({src, static_cast<Tag>(i), 0},
                                           user[i], i);
      OTM_ASSERT_MSG(r.outcome == proto::Outcome::kPending,
                     "receive did not stay pending");
    }
    for (unsigned s = 0; s < kIncastSenders; ++s) {
      const auto ack_post =
          senders[s]->post_receive({0, kAckTag, 0}, ack_bufs[s], 0);
      OTM_ASSERT(ack_post.outcome == proto::Outcome::kPending);
    }

    std::uint64_t start = 0;
    for (const auto& s : senders) start = std::max(start, s->now_ns());
    // Round-robin across senders: the four streams progress concurrently,
    // which is what gives a sharded receiver distinct sources to fan out.
    for (unsigned i = 0; i < k; ++i) {
      const auto s = senders[i % kIncastSenders]->send(
          0, static_cast<Tag>(i), 0, tx);
      OTM_ASSERT_MSG(s.ok, "incast send failed");
    }
    auto done = receiver.progress();
    for (unsigned spin = 0; done.size() < k && receiver.reliable() &&
                            spin < 10'000'000; ++spin) {
      for (const auto& s : senders) s->progress();
      const auto more = receiver.progress();
      done.insert(done.end(), more.begin(), more.end());
    }
    OTM_ASSERT_MSG(done.size() == k, "not all incast messages matched");

    // Close the sequence: ack every sender (also re-syncs their clocks for
    // the next repetition).
    std::uint64_t end = 0;
    for (unsigned s = 0; s < kIncastSenders; ++s) {
      const auto ack = receiver.send(static_cast<Rank>(s + 1), kAckTag, 0,
                                     std::span<const std::byte>(
                                         ack_bufs[s].data(), 8));
      OTM_ASSERT(ack.ok);
      auto acks = senders[s]->progress();
      for (unsigned spin = 0; acks.empty() && receiver.reliable() &&
                              spin < 10'000'000; ++spin) {
        receiver.progress();
        const auto more = senders[s]->progress();
        acks.insert(acks.end(), more.begin(), more.end());
      }
      OTM_ASSERT(acks.size() == 1);
      end = std::max(end, acks[0].completion_ns);
    }
    const auto ns = static_cast<double>(end - start);
    total_ns += ns;
    seq_samples.push_back(ns);
  }

  const auto wall_end = std::chrono::steady_clock::now();

  const MatchStats s = receiver.dpa().sharded_engine().stats();
  PingPongResult r;
  r.avg_seq_ns = total_ns / cfg.repetitions;
  r.msg_rate = static_cast<double>(k) * 1e9 / r.avg_seq_ns;
  r.host_match_cycles = receiver.dpa().host_matching_cycles();  // 0: offloaded
  r.conflicts = s.conflicts_detected;
  r.fast_path = s.fast_path_resolutions;
  r.slow_path = s.slow_path_resolutions;
  r.seq_ns = std::move(seq_samples);
  r.wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end - wall_start)
          .count());
  for (unsigned l = 0; l < receiver.ingress_lanes(); ++l) {
    r.lane_cqes.push_back(receiver.lane_cqes(l));
    r.lane_doorbells.push_back(receiver.lane_doorbells(l));
  }
  return r;
}

namespace {

/// Shared two-node raw-RDMA scaffold for the host-side baselines.
struct HostScaffold {
  explicit HostScaffold(const PingPongConfig& cfg)
      : fabric(cfg.fabric),
        node_a(fabric.add_node()),
        node_b(fabric.add_node()),
        cq_a(4096),
        cq_b(4096),
        bounce_a(64, proto::kHeaderBytes + 256),
        bounce_b(4096, proto::kHeaderBytes + 256),
        qa(fabric, node_a, cq_a, reg_a, srq_a),
        qb(fabric, node_b, cq_b, reg_b, srq_b) {
    qa.connect(qb);
    for (std::size_t i = 0; i < bounce_b.capacity(); ++i) {
      const auto h = bounce_b.allocate();
      srq_b.post(*h, bounce_b.data(*h));
    }
    for (std::size_t i = 0; i < bounce_a.capacity(); ++i) {
      const auto h = bounce_a.allocate();
      srq_a.post(*h, bounce_a.data(*h));
    }
  }

  std::uint64_t send(rdma::QueuePair& qp, Rank src, Tag tag,
                     std::uint32_t bytes, std::uint64_t send_ns) {
    proto::WireHeader h;
    h.source = src;
    h.tag = tag;
    h.protocol = static_cast<std::uint8_t>(Protocol::kEager);
    h.payload_bytes = bytes;
    h.inline_bytes = bytes;
    std::vector<std::byte> packet(proto::kHeaderBytes + bytes);
    proto::encode_header(h, packet);
    const auto r = qp.post_send(packet, send_ns);
    OTM_ASSERT(r.delivered);
    return r.arrival_ns;
  }

  rdma::Fabric fabric;
  rdma::NodeId node_a, node_b;
  rdma::MemoryRegistry reg_a, reg_b;
  rdma::CompletionQueue cq_a, cq_b;
  rdma::SharedReceiveQueue srq_a, srq_b;
  rdma::BounceBufferPool bounce_a, bounce_b;
  rdma::QueuePair qa, qb;
};

PingPongResult run_host(const PingPongConfig& cfg, bool do_matching) {
  HostScaffold hs(cfg);
  const CostTable host_costs = CostTable::host_cpu();
  const double cpu_ghz = 2.0;
  const unsigned k = cfg.messages_per_seq;

  double total_ns = 0.0;
  std::uint64_t match_cycles = 0;
  std::uint64_t sender_ns = 0;
  std::uint64_t host_free_ns = 0;  // receiver CPU availability
  std::vector<double> seq_samples;
  seq_samples.reserve(cfg.repetitions);

  for (unsigned rep = 0; rep < cfg.repetitions; ++rep) {
    ListMatcher matcher;
    if (do_matching) {
      for (unsigned i = 0; i < k; ++i) matcher.post({0, tag_for(cfg, i), 0}, i);
    }

    const std::uint64_t start = sender_ns;
    std::uint64_t last_completion = 0;
    for (unsigned i = 0; i < k; ++i) {
      // Doorbell batching, same as the offloaded endpoint: the first send
      // of the burst rings the doorbell, the rest chain into the post list.
      sender_ns += static_cast<std::uint64_t>(
          i == 0 ? cfg.endpoint.send_overhead_ns : cfg.endpoint.send_post_ns);
      hs.send(hs.qa, 0, tag_for(cfg, i), cfg.payload_bytes, sender_ns);
    }
    // The receiver host drains its CQ serially: poll, decode, match, copy.
    for (unsigned i = 0; i < k; ++i) {
      const auto cqe = hs.cq_b.poll();
      OTM_ASSERT(cqe.has_value());
      const proto::WireHeader h = proto::decode_header(hs.bounce_b.data(cqe->wr_id));
      const std::uint64_t begin = std::max(cqe->timestamp_ns, host_free_ns);
      ThreadClock clock(&host_costs);
      clock.charge(host_costs.cqe_poll);
      if (do_matching) {
        matcher.set_clock(&clock);
        const auto m = matcher.arrive({h.source, h.tag, 0}, i);
        OTM_ASSERT_MSG(m.has_value(), "host baseline message went unexpected");
        clock.charge(host_costs.consume);
      }
      clock.charge_copy(h.payload_bytes);
      match_cycles += clock.cycles();
      const auto cost_ns =
          static_cast<std::uint64_t>(static_cast<double>(clock.cycles()) / cpu_ghz);
      host_free_ns = begin + cost_ns;
      last_completion = host_free_ns;
      hs.srq_b.post(cqe->wr_id, hs.bounce_b.data(cqe->wr_id));  // recycle
    }
    // Ack back to the sender.
    const std::uint64_t ack_send =
        last_completion + static_cast<std::uint64_t>(cfg.endpoint.send_overhead_ns);
    const std::uint64_t ack_arrival = hs.send(hs.qb, 1, kAckTag, 8, ack_send);
    const auto ack_cqe = hs.cq_a.poll();
    OTM_ASSERT(ack_cqe.has_value());
    hs.srq_a.post(ack_cqe->wr_id, hs.bounce_a.data(ack_cqe->wr_id));
    const std::uint64_t end =
        ack_arrival + static_cast<std::uint64_t>(
                          static_cast<double>(host_costs.cqe_poll) / cpu_ghz);
    sender_ns = end;
    total_ns += static_cast<double>(end - start);
    seq_samples.push_back(static_cast<double>(end - start));
  }

  PingPongResult r;
  r.avg_seq_ns = total_ns / cfg.repetitions;
  r.msg_rate = static_cast<double>(k) * 1e9 / r.avg_seq_ns;
  r.host_match_cycles = do_matching ? match_cycles : 0;
  r.seq_ns = std::move(seq_samples);
  return r;
}

}  // namespace

PingPongResult run_mpi_cpu(const PingPongConfig& cfg) {
  return run_host(cfg, /*do_matching=*/true);
}

PingPongResult run_rdma_cpu(const PingPongConfig& cfg) {
  return run_host(cfg, /*do_matching=*/false);
}

}  // namespace otm::bench
