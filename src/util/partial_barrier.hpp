// Partial barrier between block-matching threads (Sec. III-D-1).
//
// Thread i must wait only on threads j < i: later threads either match a
// different receive or lose any conflict to i by constraint C2, and waiting
// on *future* messages could stall the stream. Each thread publishes a value
// (e.g. its modeled clock at barrier entry) and then sets its bit; waiters
// spin until all lower bits are visible.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/assert.hpp"
#include "util/booking_bitmap.hpp"

namespace otm {

class PartialBarrier {
 public:
  explicit PartialBarrier(unsigned num_threads = kMaxBlockThreads) noexcept
      : num_threads_(num_threads) {
    OTM_ASSERT(num_threads_ <= kMaxBlockThreads);
  }

  void reset(unsigned num_threads) noexcept {
    OTM_ASSERT(num_threads <= kMaxBlockThreads);
    num_threads_ = num_threads;
    bits_.store(0, std::memory_order_relaxed);
    for (auto& v : published_) v.store(0, std::memory_order_relaxed);
  }

  /// Publish `value` and mark thread `tid` as arrived. The value is readable
  /// by any thread that has observed the bit (release/acquire pairing).
  void arrive(unsigned tid, std::uint64_t value = 0) noexcept {
    OTM_ASSERT(tid < num_threads_);
    published_[tid].store(value, std::memory_order_relaxed);
    bits_.fetch_or(1u << tid, std::memory_order_release);
  }

  /// Spin until all threads j < tid have arrived.
  void wait_lower(unsigned tid) const noexcept {
    const std::uint32_t mask = (tid == 0) ? 0u : ((1u << tid) - 1u);
    while ((bits_.load(std::memory_order_acquire) & mask) != mask) {
      // Busy-wait: block threads are short-lived, run-to-completion tasks.
    }
  }

  /// Value published by thread `tid` at arrival. Only meaningful after
  /// wait_lower() has returned for a tid greater than `tid`.
  std::uint64_t published(unsigned tid) const noexcept {
    OTM_ASSERT(tid < num_threads_);
    return published_[tid].load(std::memory_order_relaxed);
  }

  /// Max published value among threads j < tid (0 if tid == 0).
  std::uint64_t max_published_lower(unsigned tid) const noexcept {
    std::uint64_t m = 0;
    for (unsigned j = 0; j < tid; ++j) {
      const std::uint64_t v = published(j);
      if (v > m) m = v;
    }
    return m;
  }

  bool arrived(unsigned tid) const noexcept {
    return (bits_.load(std::memory_order_acquire) & (1u << tid)) != 0;
  }

  unsigned size() const noexcept { return num_threads_; }

 private:
  unsigned num_threads_;
  std::atomic<std::uint32_t> bits_{0};
  std::atomic<std::uint64_t> published_[kMaxBlockThreads] = {};
};

}  // namespace otm
