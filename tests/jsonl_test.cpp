// Tests for the JSON-lines trace format: round trips, cross-format
// equivalence with DUMPI text, analyzer parity, and malformed input.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/analyzer.hpp"
#include "trace/dumpi_text.hpp"
#include "trace/jsonl.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_builder.hpp"

namespace otm::trace {
namespace {

Trace sample() {
  TraceBuilder b("jsonl-sample", 2);
  b.irecv(1, 0, 5, 64);
  b.irecv(1, kAnySource, kAnyTag, 32);
  b.isend(0, 1, 5, 64);
  b.waitall(1, 2);
  b.collective_all(OpType::kAllreduce, 8);
  return b.finish();
}

TEST(Jsonl, RoundTrip) {
  const Trace t = sample();
  std::stringstream ss;
  write_jsonl(t, ss);
  const Trace parsed = parse_jsonl(ss);
  EXPECT_EQ(parsed.app_name, t.app_name);
  EXPECT_EQ(parsed.num_ranks, t.num_ranks);
  ASSERT_EQ(parsed.total_ops(), t.total_ops());
  for (int r = 0; r < t.num_ranks; ++r) {
    const auto& a = t.ranks[static_cast<std::size_t>(r)].ops;
    const auto& b = parsed.ranks[static_cast<std::size_t>(r)].ops;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].type, b[i].type);
      EXPECT_EQ(a[i].peer, b[i].peer);
      EXPECT_EQ(a[i].tag, b[i].tag);
      EXPECT_EQ(a[i].bytes, b[i].bytes);
      EXPECT_NEAR(a[i].start_ts, b[i].start_ts, 1e-9);
    }
  }
}

TEST(Jsonl, AnalyzerParityWithDumpiText) {
  // The same trace through both formats must analyze identically.
  const Trace t = make_amg();
  std::stringstream js;
  write_jsonl(t, js);
  const Trace via_jsonl = parse_jsonl(js);

  Trace via_dumpi;
  via_dumpi.app_name = t.app_name;
  via_dumpi.num_ranks = t.num_ranks;
  for (const auto& r : t.ranks) {
    std::stringstream ds;
    write_dumpi_text(r, ds);
    via_dumpi.ranks.push_back(parse_dumpi_text(ds, r.rank));
  }

  TraceAnalyzer analyzer{AnalyzerConfig{}};
  const auto a = analyzer.analyze(via_jsonl);
  const auto b = analyzer.analyze(via_dumpi);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.receives_posted, b.receives_posted);
  EXPECT_EQ(a.unexpected, b.unexpected);
  EXPECT_DOUBLE_EQ(a.avg_queue_depth, b.avg_queue_depth);
  EXPECT_EQ(a.calls.p2p, b.calls.p2p);
  EXPECT_EQ(a.calls.collective, b.calls.collective);
}

TEST(Jsonl, WhitespaceTolerated) {
  std::stringstream ss;
  ss << "{ \"app\" : \"x\" , \"ranks\" : 1 }\n"
     << "{ \"rank\" : 0 , \"op\" : \"MPI_Send\" , \"peer\" : 0, \"tag\": 3 }\n";
  const Trace t = parse_jsonl(ss);
  ASSERT_EQ(t.total_ops(), 1u);
  EXPECT_EQ(t.ranks[0].ops[0].tag, 3);
}

TEST(Jsonl, UnknownOpsAndKeysSkipped) {
  std::stringstream ss;
  ss << "{\"app\":\"x\",\"ranks\":1,\"extra\":\"ignored\"}\n"
     << "{\"rank\":0,\"op\":\"MPI_Comm_rank\"}\n"
     << "{\"rank\":0,\"op\":\"MPI_Send\",\"peer\":0,\"tag\":1,\"color\":7}\n";
  const Trace t = parse_jsonl(ss);
  EXPECT_EQ(t.total_ops(), 1u);
}

TEST(Jsonl, MalformedInputsThrow) {
  auto parse_str = [](const std::string& s) {
    std::stringstream ss(s);
    return parse_jsonl(ss);
  };
  EXPECT_THROW(parse_str(""), std::runtime_error);
  EXPECT_THROW(parse_str("not json\n"), std::runtime_error);
  EXPECT_THROW(parse_str("{\"ranks\":2}\n"), std::runtime_error);  // no app
  EXPECT_THROW(parse_str("{\"app\":\"x\",\"ranks\":0}\n"), std::runtime_error);
  EXPECT_THROW(parse_str("{\"app\":\"x\",\"ranks\":1}\n{\"op\":\"MPI_Send\"}\n"),
               std::runtime_error);  // record without rank
  EXPECT_THROW(
      parse_str("{\"app\":\"x\",\"ranks\":1}\n"
                "{\"rank\":5,\"op\":\"MPI_Send\"}\n"),
      std::runtime_error);  // rank out of range
  EXPECT_THROW(parse_str("{\"app\":\"x\",\"ranks\":1}\n{\"rank\":0,\n"),
               std::runtime_error);  // truncated record
}

}  // namespace
}  // namespace otm::trace
