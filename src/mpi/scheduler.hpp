// Event-driven rank scheduler (docs/SCALING.md): multiplexes N simulated
// ranks as cooperative run-to-completion state machines over one shared
// event queue, so 128-1024-rank worlds execute on a single OS thread
// instead of thread-per-rank (World::run).
//
// Each rank's program is a step function invoked repeatedly; every
// invocation runs to completion and returns what the rank does next —
// yield, finish, or block on a request list (wait-any / wait-all). Blocked
// ranks never poll: completions are driven by events. Proc::isend feeds a
// delivery event for (src, dst) through World's send listener (the
// send-complete / delivery edge); blocked ranks get periodic progress
// events (the keepalive / RTO / watchdog tick edge) so reliable-delivery
// retransmission, recovery, and DPA-watchdog state machines keep running
// in virtual time while a rank waits.
//
// Determinism: events are ordered by (virtual time, push sequence) and the
// runnable queue is FIFO, so a run is a pure function of the programs and
// the seed. A nonzero seed perturbs which runnable rank is picked each
// turn (schedule fuzz, tests/scheduler_test.cpp) without touching event
// order — fairness and starvation-freedom hold for every seed.
//
// Liveness: when no useful work (a task step or an unblock) happens for
// idle_timeout_ns of virtual time, the scheduler sweeps blocked ranks for
// receives naming Dead peers (Proc::drain_peer) and, failing that, stops
// and reports the deadlocked ranks instead of spinning.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"

namespace otm::mpi {

class WorldScheduler {
 public:
  struct Config {
    /// 0 = strict FIFO service of runnable ranks; nonzero seeds a
    /// deterministic perturbation of the pick (schedule fuzz).
    std::uint64_t seed = 0;
    /// Virtual-time delay between an isend and the progress event it
    /// schedules on the sender/receiver pair (the modeled wire hop).
    std::uint64_t delivery_delay_ns = 50;
    /// Re-progress period for blocked ranks: drives RTO retransmission,
    /// keepalives, recovery and watchdog ticks while a rank waits.
    std::uint64_t progress_period_ns = 200;
    /// Virtual time without a task step or an unblock before the
    /// dead-peer sweep runs; a second dry window declares deadlock.
    std::uint64_t idle_timeout_ns = 400'000;
    /// Consecutive steps a rank may take before it re-queues (quantum).
    std::uint32_t quantum = 1;
    /// Record every step into step_log() (determinism/fairness witness).
    /// Off by default: a 1024-rank replay takes millions of steps.
    bool log_steps = false;

    // --- Verification hooks (src/verify, docs/VERIFICATION.md) -------------

    /// External scheduling policy: when set, every runnable pick with more
    /// than one candidate asks the hook for an index in [0, n) instead of
    /// using the seed policy. The model checker's explorer enumerates this
    /// decision point; the hook sees exactly the choice points recorded in
    /// pick_log().
    std::function<std::size_t(std::size_t n_runnable)> pick_hook;
    /// Observation point fired after every task step and every progress
    /// event — the invariant oracles' checkpoint. Must not re-enter the
    /// scheduler.
    std::function<void()> step_hook;
    /// Deterministic replay of a recorded schedule: choice points consume
    /// these picks in order (clamped to the runnable count); past the end
    /// the scheduler falls back to strict FIFO. Ignored when pick_hook is
    /// set. The constructor also fills this from the counterexample file
    /// named by OTM_SCHED_TRACE (a .otmsched JSON, docs/VERIFICATION.md)
    /// when left empty.
    std::vector<std::uint32_t> replay_picks;
  };

  /// What a task does after one run-to-completion step.
  struct Step {
    enum class Kind : std::uint8_t { kDone, kYield, kBlocked };
    enum class Wait : std::uint8_t { kAll, kAny };
    Kind kind = Kind::kYield;
    Wait wait = Wait::kAll;
    std::vector<Request> reqs;  ///< kBlocked only

    static Step done() { return {Kind::kDone, Wait::kAll, {}}; }
    static Step yield() { return {Kind::kYield, Wait::kAll, {}}; }
    static Step wait_all(std::vector<Request> r) {
      return {Kind::kBlocked, Wait::kAll, std::move(r)};
    }
    static Step wait_any(std::vector<Request> r) {
      return {Kind::kBlocked, Wait::kAny, std::move(r)};
    }
  };

  /// One rank's program: called with its Proc, runs to completion, returns
  /// the rank's next state. Rank-local state lives in the closure.
  using Program = std::function<Step(Proc&)>;

  enum class Outcome : std::uint8_t {
    kCompleted,  ///< every task returned Step::done()
    kDeadlock,   ///< blocked tasks remained after the dead-peer sweep
  };

  explicit WorldScheduler(World& world) : WorldScheduler(world, Config{}) {}
  WorldScheduler(World& world, const Config& cfg);
  ~WorldScheduler();

  WorldScheduler(const WorldScheduler&) = delete;
  WorldScheduler& operator=(const WorldScheduler&) = delete;

  /// Register rank r's program. Every rank that participates must be added
  /// before run(); ranks without a task are progressed but never stepped.
  void add_task(Rank r, Program program);

  /// Drive all tasks to completion (or deadlock). Call once.
  Outcome run();

  // --- Introspection (tests, docs/SCALING.md) ------------------------------

  std::uint64_t virtual_now() const noexcept { return vtime_; }
  std::uint64_t events_processed() const noexcept { return events_; }
  std::uint64_t steps(Rank r) const;
  /// Order in which task steps ran — the determinism/fairness witness.
  const std::vector<Rank>& step_log() const noexcept { return step_log_; }
  /// Every runnable pick taken at a choice point (runnable count > 1), in
  /// order — the schedule half of a .otmsched counterexample. Recorded
  /// unconditionally: choice points are rare relative to steps.
  const std::vector<std::uint32_t>& pick_log() const noexcept {
    return pick_log_;
  }
  /// Order-insensitive digest of the pending event multiset plus the
  /// runnable/blocked/done partition — combined with per-endpoint state by
  /// the model checker's fingerprint cache (docs/VERIFICATION.md).
  std::uint64_t state_fingerprint() const noexcept;
  /// Requests failed kPeerDead by the idle-time dead-peer sweep.
  std::uint64_t dead_peer_drains() const noexcept { return dead_drains_; }
  /// Ranks still blocked when run() returned kDeadlock (empty otherwise).
  std::vector<Rank> blocked_ranks() const;

 private:
  struct Task {
    Program program;
    enum class State : std::uint8_t { kRunnable, kBlocked, kDone } state =
        State::kRunnable;
    Step::Wait wait = Step::Wait::kAll;
    std::vector<Request> wait_reqs;
    std::uint64_t steps = 0;
  };

  struct Event {
    std::uint64_t at = 0;   ///< virtual time
    std::uint64_t seq = 0;  ///< push order (total-order tiebreak)
    Rank rank = 0;          ///< rank to progress
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  Task* task(Rank r);
  bool wait_satisfied(Task& t);
  void make_runnable(Rank r);
  void run_task(Rank r);
  void schedule_progress(Rank r, std::uint64_t at);
  void progress_event(const Event& ev);
  bool sweep_dead_peers();
  std::size_t pick_runnable();
  std::uint64_t next_rng() noexcept;

  World* world_;
  Config cfg_;
  std::vector<Task> tasks_;  ///< indexed by rank; program==nullptr => none
  std::deque<Rank> runnable_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_heap_;
  std::vector<std::uint64_t> next_event_at_;  ///< pending event per rank
                                              ///< (kNoEvent = none queued)
  std::uint64_t vtime_ = 0;
  std::uint64_t event_seq_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t last_useful_vt_ = 0;
  std::uint64_t dead_drains_ = 0;
  std::uint64_t rng_;
  std::size_t live_tasks_ = 0;
  std::vector<Rank> step_log_;
  std::vector<std::uint32_t> pick_log_;  ///< choice-point picks (see pick_log())
  std::size_t replay_next_ = 0;          ///< next cfg_.replay_picks entry
  std::uint64_t events_hash_ = 0;        ///< XOR-fold of queued events

  static constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};
};

}  // namespace otm::mpi
