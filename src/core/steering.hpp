// The single RSS steering hash shared by every layer that routes on source.
//
// A (peer, tag-class) channel must map to exactly one matching shard AND
// exactly one ingress lane (QP/CQ pair + CQE-polling hart), or per-lane
// reliable-delivery windows would see holes and the per-shard engines would
// see cross-shard traffic. Centralizing the hash here makes that binding a
// one-liner to audit — otmlint R10 rejects ad-hoc `% lanes` / `& mask`
// routing outside this helper (docs/SHARDING.md §"Ingress lanes").
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace otm {

/// Lane/shard index for `source` under a power-of-two `mask` (= count - 1).
/// Identity-preserving: the low bits of the source rank, exactly the RSS
/// indirection a real NIC programs so one flow never migrates between queues.
constexpr unsigned steer_lane(Rank source, std::uint32_t mask) noexcept {
  return static_cast<unsigned>(static_cast<std::uint32_t>(source) & mask);
}

}  // namespace otm
