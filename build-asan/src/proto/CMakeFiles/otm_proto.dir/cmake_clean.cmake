file(REMOVE_RECURSE
  "CMakeFiles/otm_proto.dir/endpoint.cpp.o"
  "CMakeFiles/otm_proto.dir/endpoint.cpp.o.d"
  "libotm_proto.a"
  "libotm_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
