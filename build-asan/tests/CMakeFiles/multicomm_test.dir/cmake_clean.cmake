file(REMOVE_RECURSE
  "CMakeFiles/multicomm_test.dir/multicomm_test.cpp.o"
  "CMakeFiles/multicomm_test.dir/multicomm_test.cpp.o.d"
  "multicomm_test"
  "multicomm_test.pdb"
  "multicomm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicomm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
