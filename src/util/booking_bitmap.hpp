// Generation-tagged booking bitmap (Sec. III-C of the paper).
//
// Each receive descriptor carries an N-bit bitmap used by matching threads to
// tentatively "book" the receive during the optimistic phase. A fresh bitmap
// would have to be cleared after every block of messages; instead we pack a
// 32-bit block-generation tag next to a 32-bit thread bitmap in one atomic
// 64-bit word. Bits set under an older generation are logically zero, so no
// cleanup pass over touched receives is needed between blocks.
//
// The 32-bit bitmap limits a block to 32 concurrent matching threads, which
// matches the paper's prototype ("uses 32 DPA threads, limited by the
// bookkeeping bitmap size").
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace otm {

/// Maximum number of threads that can concurrently book one receive.
inline constexpr unsigned kMaxBlockThreads = 32;

class BookingBitmap {
 public:
  BookingBitmap() noexcept = default;

  /// Atomically set this thread's bit under generation `gen`.
  /// If the stored generation is older, the bitmap is restarted at this
  /// generation with only this thread's bit. Returns the bitmap of threads
  /// (including this one) booked under `gen` after the update.
  // otmlint: hot
  std::uint32_t book(std::uint32_t gen, unsigned thread_id) noexcept {
    OTM_ASSERT(thread_id < kMaxBlockThreads);
    const std::uint32_t bit = 1u << thread_id;
    // acquire: seed the CAS loop with a word at least as fresh as any bit
    // already published by another booking thread this block.
    std::uint64_t cur = word_.load(std::memory_order_acquire);
    for (;;) {
      std::uint64_t desired;
      if (generation(cur) == gen) {
        desired = cur | bit;
      } else {
        // Stale generation: restart the bitmap for the current block.
        desired = (static_cast<std::uint64_t>(gen) << 32) | bit;
      }
      // acq_rel on success: publish this thread's bit (release) and observe
      // all earlier bookings (acquire) in one edge — the partial-barrier
      // conflict check depends on both directions. acquire on failure: the
      // retry must see the word that beat us.
      if (word_.compare_exchange_weak(cur, desired, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return static_cast<std::uint32_t>(desired);
      }
    }
  }

  /// Bitmap of threads booked under generation `gen` (zero if the stored
  /// generation differs).
  // otmlint: hot
  std::uint32_t booked(std::uint32_t gen) const noexcept {
    // acquire: pairs with the release side of book()'s CAS so a reader that
    // sees a bit also sees the booking thread's prior work (C2 detection).
    const std::uint64_t cur = word_.load(std::memory_order_acquire);
    return generation(cur) == gen ? static_cast<std::uint32_t>(cur) : 0u;
  }

  /// True if any thread with id strictly lower than `thread_id` has booked
  /// this receive under generation `gen`. Used both for conflict detection
  /// and for the early-booking-check optimization (Sec. III-D).
  bool booked_by_lower(std::uint32_t gen, unsigned thread_id) const noexcept {
    const std::uint32_t mask = (thread_id == 0) ? 0u : ((1u << thread_id) - 1u);
    return (booked(gen) & mask) != 0u;
  }

  /// Lowest thread id booked under `gen`; kMaxBlockThreads if none.
  unsigned lowest_booker(std::uint32_t gen) const noexcept {
    const std::uint32_t bits = booked(gen);
    return bits == 0 ? kMaxBlockThreads
                     : static_cast<unsigned>(std::countr_zero(bits));
  }

  void reset() noexcept {
    // relaxed: reset only runs on the engine-serialized descriptor-release
    // path; no matching thread can hold a reference to this bitmap.
    word_.store(0, std::memory_order_relaxed);
  }

 private:
  static std::uint32_t generation(std::uint64_t word) noexcept {
    return static_cast<std::uint32_t>(word >> 32);
  }

  std::atomic<std::uint64_t> word_{0};
};

}  // namespace otm
