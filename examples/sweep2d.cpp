// KBA wavefront sweep — the PARTISN/SNAP communication pattern of Table II
// running over the real offloaded stack (not the trace analyzer): each
// octant sweeps a 2D process grid diagonally, every rank blocking on its
// upstream neighbors before forwarding downstream. Deep dependency chains,
// tiny messages, latency-bound — the opposite regime from halo exchange.
//
//   $ ./sweep2d [--px=4 --py=4 --iters=3 --kplanes=4]
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpi/mpi.hpp"
#include "util/args.hpp"

using namespace otm;

namespace {

struct SweepCell {
  double flux[4];  // one value per face quadrature point, say
};

std::span<const std::byte> bytes_of(const SweepCell& c) {
  return std::as_bytes(std::span(&c, 1));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const int px = static_cast<int>(args.get_int("px", 4));
  const int py = static_cast<int>(args.get_int("py", 4));
  const int iters = static_cast<int>(args.get_int("iters", 3));
  const int kplanes = static_cast<int>(args.get_int("kplanes", 4));

  std::printf("KBA sweep on a %dx%d grid, %d iterations x 4 octants x %d "
              "k-planes\n", px, py, iters, kplanes);

  mpi::World world(px * py, {});
  world.run([&](mpi::Proc& proc) {
    const mpi::Comm comm = proc.world_comm();
    const int x = proc.rank() % px;
    const int y = proc.rank() / px;
    const int octants[4][2] = {{+1, +1}, {-1, +1}, {+1, -1}, {-1, -1}};

    double local_flux = 1.0 + proc.rank();
    for (int iter = 0; iter < iters; ++iter) {
      for (int o = 0; o < 4; ++o) {
        const int sx = octants[o][0];
        const int sy = octants[o][1];
        const Tag tag = static_cast<Tag>(100 + o);
        for (int k = 0; k < kplanes; ++k) {
          SweepCell incoming_x{};
          SweepCell incoming_y{};
          const int upx = x - sx;
          const int upy = y - sy;
          // Blocking upstream receives: the wavefront dependency.
          if (upx >= 0 && upx < px) {
            std::vector<std::byte> buf(sizeof(SweepCell));
            proc.recv(buf, static_cast<Rank>(y * px + upx), tag, comm);
            std::memcpy(&incoming_x, buf.data(), sizeof(SweepCell));
          }
          if (upy >= 0 && upy < py) {
            std::vector<std::byte> buf(sizeof(SweepCell));
            proc.recv(buf, static_cast<Rank>(upy * px + x), tag, comm);
            std::memcpy(&incoming_y, buf.data(), sizeof(SweepCell));
          }
          // "Transport solve" for this plane.
          local_flux = 0.5 * local_flux + 0.25 * incoming_x.flux[0] +
                       0.25 * incoming_y.flux[0] + 0.01;
          SweepCell out{};
          out.flux[0] = local_flux;
          // Forward downstream.
          const int dnx = x + sx;
          const int dny = y + sy;
          if (dnx >= 0 && dnx < px)
            proc.send(bytes_of(out), static_cast<Rank>(y * px + dnx), tag, comm);
          if (dny >= 0 && dny < py)
            proc.send(bytes_of(out), static_cast<Rank>(dny * px + x), tag, comm);
        }
      }
      // Convergence check: a global residual reduction per iteration.
      const double in[1] = {local_flux};
      double out[1];
      proc.allreduce(in, out, mpi::Proc::ReduceOp::kMax, comm);
      if (proc.rank() == 0)
        std::printf("  iter %d: max flux %.4f\n", iter, out[0]);
    }
  });

  MatchStats total;
  for (Rank r = 0; r < px * py; ++r)
    if (const MatchStats* s = world.proc(r).match_stats()) total += *s;
  const double avg_attempts =
      static_cast<double>(total.match_attempts) /
      static_cast<double>(total.messages_processed + total.receives_posted);
  std::printf("\nsweep matched %llu messages on the NIC "
              "(%llu unexpected, %.2f attempts per matching op — the\n"
              "shallow-queue regime Fig. 7 shows for PARTISN/SNAP)\n",
              static_cast<unsigned long long>(total.messages_matched),
              static_cast<unsigned long long>(total.messages_unexpected),
              avg_attempts);
  return 0;
}
