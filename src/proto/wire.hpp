// Wire format of a matched-channel message (Sec. IV-A/B).
//
// Every message starts with a fixed-size header carrying the envelope, the
// sender-precomputed hash values (inline-hash optimization), the protocol
// selector and — for rendezvous — the rkey/offset the receiver needs for
// its RDMA read. Eager payload follows the header in the same packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

#include "core/types.hpp"
#include "util/assert.hpp"

namespace otm::proto {

struct WireHeader {
  Rank source = 0;
  Tag tag = 0;
  CommId comm = 0;
  std::uint8_t protocol = 0;  ///< otm::Protocol
  std::uint8_t has_inline_hashes = 1;
  std::uint16_t channel_class = 0;  ///< tag class of the carrying channel
  std::uint32_t payload_bytes = 0;  ///< full message payload size
  std::uint32_t inline_bytes = 0;   ///< payload bytes carried in this packet
  std::uint64_t sender_seq = 0;     ///< sender-side sequence (debug/trace)
  std::uint64_t hash_src_tag = 0;
  std::uint64_t hash_src = 0;
  std::uint64_t hash_tag = 0;
  std::uint32_t rkey = 0;            ///< rendezvous: send-buffer region
  std::uint32_t rkey_valid = 0;
  std::uint64_t remote_offset = 0;   ///< rendezvous: offset inside the region
  std::uint64_t channel_seq = 0;     ///< reliable delivery: per-channel seq
  std::uint32_t header_crc = 0;      ///< CRC-32C over packet (this field as 0)
  std::uint32_t flags = 0;           ///< kWireFlag* bits
};

/// The packet carries reliable-delivery framing (channel_seq + header_crc
/// are live); receivers run dedup/ordering/integrity checks on it.
inline constexpr std::uint32_t kWireFlagReliable = 1u << 0;

/// kMerged packet kind: the body is a sub-message table — a u32 count
/// followed by `count` (MergedSubHeader, payload) pairs — carrying several
/// coalesced eager sends in one wire message (docs/COALESCING.md). The
/// receiver unpacks the table into per-sub-message descriptors before any
/// matching runs; envelope order inside the table is the send order.
inline constexpr std::uint32_t kWireFlagMerged = 1u << 1;

/// Keepalive probe (fault recovery, docs/RELIABILITY.md): a sealed, reliable
/// packet that carries no payload and consumes no channel sequence number.
/// The receiver re-acks its current watermark and discards the packet —
/// liveness evidence for the peer-health state machine on idle channels.
inline constexpr std::uint32_t kWireFlagKeepalive = 1u << 2;

/// The channel epoch (fault recovery) rides in the high 16 bits of `flags`,
/// so epoch 0 — every channel before its first recovery — leaves the wire
/// bytes exactly what they were before epochs existed. A recovery bumps the
/// sender's epoch and replays the window under it; receivers fence anything
/// from an older epoch (stale retransmits) and senders fence stale acks.
inline constexpr unsigned kWireEpochShift = 16;
inline constexpr std::uint32_t kWireEpochMask = 0xFFFF'0000u;

/// Extract the channel epoch from a header's flags word.
inline constexpr std::uint16_t wire_epoch(std::uint32_t flags) noexcept {
  return static_cast<std::uint16_t>(flags >> kWireEpochShift);
}

/// Flag bits encoding `epoch` (OR into the rest of the flags).
inline constexpr std::uint32_t wire_epoch_bits(std::uint16_t epoch) noexcept {
  return static_cast<std::uint32_t>(epoch) << kWireEpochShift;
}

static_assert(std::is_trivially_copyable_v<WireHeader>);
inline constexpr std::size_t kHeaderBytes = sizeof(WireHeader);

/// Per-sub-message header inside a kMerged body. Source and channel class
/// come from the carrying WireHeader (one channel per merged packet); the
/// rest of the envelope plus the inline-hash triple travel per sub-message
/// so the unpacked descriptors are indistinguishable from plain eager ones.
struct MergedSubHeader {
  Tag tag = 0;
  CommId comm = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t reserved = 0;
  std::uint64_t sender_seq = 0;
  std::uint64_t hash_src_tag = 0;
  std::uint64_t hash_src = 0;
  std::uint64_t hash_tag = 0;
};

static_assert(std::is_trivially_copyable_v<MergedSubHeader>);
inline constexpr std::size_t kMergedSubBytes = sizeof(MergedSubHeader);
inline constexpr std::size_t kMergedCountBytes = sizeof(std::uint32_t);

/// Wire footprint of one coalesced sub-message of `payload` bytes.
inline constexpr std::size_t merged_sub_footprint(std::size_t payload) noexcept {
  return kMergedSubBytes + payload;
}

/// CRC-32C (Castagnoli, reflected), nibble-table variant: cheap enough for
/// the modeled NIC cores, strong enough to catch injected byte flips.
inline std::uint32_t crc32c_update(std::uint32_t crc,
                                   std::span<const std::byte> data) noexcept {
  static constexpr std::uint32_t kNibble[16] = {
      0x00000000u, 0x105ec76fu, 0x20bd8edeu, 0x30e349b1u,
      0x417b1dbcu, 0x5125dad3u, 0x61c69362u, 0x7198540du,
      0x82f63b78u, 0x92a8fc17u, 0xa24bb5a6u, 0xb21572c9u,
      0xc38d26c4u, 0xd3d3e1abu, 0xe330a81au, 0xf36e6f75u,
  };
  for (const std::byte b : data) {
    crc ^= static_cast<std::uint32_t>(b);
    crc = (crc >> 4) ^ kNibble[crc & 0xF];
    crc = (crc >> 4) ^ kNibble[crc & 0xF];
  }
  return crc;
}

/// CRC over a full encoded packet (header + staged payload) with the
/// header's crc field treated as zero.
inline std::uint32_t packet_crc(std::span<const std::byte> packet) noexcept {
  constexpr std::size_t off = offsetof(WireHeader, header_crc);
  constexpr std::byte zeros[sizeof(std::uint32_t)] = {};
  std::uint32_t crc = ~0u;
  crc = crc32c_update(crc, packet.first(off));
  crc = crc32c_update(crc, zeros);
  crc = crc32c_update(crc, packet.subspan(off + sizeof(std::uint32_t)));
  return ~crc;
}

/// Compute and patch the CRC into an encoded packet (crc field must be 0).
inline void seal_packet(std::span<std::byte> packet) noexcept {
  const std::uint32_t crc = packet_crc(packet);
  std::memcpy(packet.data() + offsetof(WireHeader, header_crc), &crc,
              sizeof(crc));
}

/// Re-stamp a sealed packet with a new channel epoch and re-seal it
/// (recovery replay: the replayed bytes stay identical except for the epoch
/// bits and the CRC covering them).
inline void restamp_epoch(std::span<std::byte> packet,
                          std::uint16_t epoch) noexcept {
  OTM_ASSERT(packet.size() >= kHeaderBytes);
  constexpr std::size_t flags_off = offsetof(WireHeader, flags);
  std::uint32_t flags = 0;
  std::memcpy(&flags, packet.data() + flags_off, sizeof(flags));
  flags = (flags & ~kWireEpochMask) | wire_epoch_bits(epoch);
  std::memcpy(packet.data() + flags_off, &flags, sizeof(flags));
  constexpr std::uint32_t zero = 0;
  std::memcpy(packet.data() + offsetof(WireHeader, header_crc), &zero,
              sizeof(zero));
  seal_packet(packet);
}

/// Verify a received packet against its embedded CRC.
inline bool packet_crc_ok(std::span<const std::byte> packet) noexcept {
  if (packet.size() < kHeaderBytes) return false;
  std::uint32_t stored = 0;
  std::memcpy(&stored, packet.data() + offsetof(WireHeader, header_crc),
              sizeof(stored));
  return stored == packet_crc(packet);
}

inline void encode_header(const WireHeader& h, std::span<std::byte> out) {
  OTM_ASSERT(out.size() >= kHeaderBytes);
  std::memcpy(out.data(), &h, kHeaderBytes);
}

inline WireHeader decode_header(std::span<const std::byte> in) {
  OTM_ASSERT(in.size() >= kHeaderBytes);
  WireHeader h;
  std::memcpy(&h, in.data(), kHeaderBytes);
  return h;
}

/// Build the engine-facing message descriptor from a staged packet.
inline IncomingMessage to_incoming(const WireHeader& h, std::uint64_t bounce_handle,
                                   std::uint64_t wire_seq) {
  IncomingMessage m;
  m.env = {h.source, h.tag, h.comm};
  m.hashes = {h.hash_src_tag, h.hash_src, h.hash_tag};
  m.has_inline_hashes = h.has_inline_hashes != 0;
  m.protocol = static_cast<Protocol>(h.protocol);
  m.payload_bytes = h.payload_bytes;
  m.inline_bytes = h.inline_bytes;
  m.wire_seq = wire_seq;
  m.bounce_handle = bounce_handle;
  m.remote_key = h.rkey_valid != 0 ? h.rkey : 0;
  m.remote_addr = h.remote_offset;
  return m;
}

inline void encode_sub_header(const MergedSubHeader& sh, std::span<std::byte> out) {
  OTM_ASSERT(out.size() >= kMergedSubBytes);
  std::memcpy(out.data(), &sh, kMergedSubBytes);
}

inline MergedSubHeader decode_sub_header(std::span<const std::byte> in) {
  OTM_ASSERT(in.size() >= kMergedSubBytes);
  MergedSubHeader sh;
  std::memcpy(&sh, in.data(), kMergedSubBytes);
  return sh;
}

/// Engine-facing descriptor for one sub-message unpacked from a kMerged
/// packet: its payload sits at `payload_offset` into the shared body, and
/// every sub after the first is dispatched by the unpack handler rather
/// than by its own CQE (`merged_sub` drives the DPA dispatch cost).
inline IncomingMessage sub_to_incoming(const WireHeader& carrier,
                                       const MergedSubHeader& sh,
                                       std::uint32_t payload_offset,
                                       bool merged_sub,
                                       std::uint64_t bounce_handle,
                                       std::uint64_t wire_seq) {
  IncomingMessage m;
  m.env = {carrier.source, sh.tag, sh.comm};
  m.hashes = {sh.hash_src_tag, sh.hash_src, sh.hash_tag};
  m.has_inline_hashes = true;
  m.protocol = Protocol::kEager;
  m.payload_bytes = sh.payload_bytes;
  m.inline_bytes = sh.payload_bytes;
  m.wire_seq = wire_seq;
  m.bounce_handle = bounce_handle;
  m.payload_offset = payload_offset;
  m.merged_sub = merged_sub;
  return m;
}

}  // namespace otm::proto
