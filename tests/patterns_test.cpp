// Integration tests driving real application communication patterns
// through the full offloaded stack (mini-MPI -> endpoint -> RDMA -> DPA
// matching), with data verification and matching-statistics checks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>

#include "mpi/mpi.hpp"

namespace otm::mpi {
namespace {

std::vector<std::byte> payload(int a, int b, std::size_t n = 32) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((static_cast<std::size_t>(a) * 37 +
                                   static_cast<std::size_t>(b) * 11 + i) &
                                  0xFF);
  return v;
}

MatchStats total_stats(World& world) {
  MatchStats total;
  for (Rank r = 0; r < world.size(); ++r)
    if (const MatchStats* s = world.proc(r).match_stats()) total += *s;
  return total;
}

TEST(Patterns, AllToAllPersonalized) {
  // BigFFT-style transpose: every rank exchanges a distinct block with
  // every other rank, receive-first.
  constexpr int kRanks = 8;
  World world(kRanks, {});
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    std::vector<std::vector<std::byte>> rx(kRanks, std::vector<std::byte>(32));
    std::vector<Request> reqs;
    for (int p = 0; p < kRanks; ++p) {
      if (p == proc.rank()) continue;
      reqs.push_back(proc.irecv(rx[static_cast<std::size_t>(p)],
                                static_cast<Rank>(p), 1, comm));
    }
    for (int p = 0; p < kRanks; ++p) {
      if (p == proc.rank()) continue;
      proc.send(payload(proc.rank(), p), static_cast<Rank>(p), 1, comm);
    }
    proc.wait_all(reqs);
    for (int p = 0; p < kRanks; ++p) {
      if (p == proc.rank()) continue;
      ASSERT_EQ(rx[static_cast<std::size_t>(p)], payload(p, proc.rank()))
          << "rank " << proc.rank() << " block from " << p;
    }
  });
  const MatchStats s = total_stats(world);
  EXPECT_EQ(s.messages_matched + s.receives_matched_unexpected,
            kRanks * (kRanks - 1));
}

TEST(Patterns, ManyToOneIncast) {
  // Gatherv-style incast (Sec. I): one rank absorbs a burst from all
  // peers; the fan-in lands as one large block on the root's DPA.
  constexpr int kRanks = 10;
  constexpr int kPerPeer = 5;
  World world(kRanks, {});
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    if (proc.rank() == 0) {
      std::vector<std::vector<std::byte>> rx(
          static_cast<std::size_t>((kRanks - 1) * kPerPeer),
          std::vector<std::byte>(32));
      std::vector<Request> reqs;
      std::size_t slot = 0;
      for (int p = 1; p < kRanks; ++p)
        for (int m = 0; m < kPerPeer; ++m)
          reqs.push_back(proc.irecv(rx[slot++], static_cast<Rank>(p),
                                    static_cast<Tag>(m), comm));
      proc.wait_all(reqs);
      slot = 0;
      for (int p = 1; p < kRanks; ++p)
        for (int m = 0; m < kPerPeer; ++m)
          ASSERT_EQ(rx[slot++], payload(p, m));
    } else {
      for (int m = 0; m < kPerPeer; ++m)
        proc.send(payload(proc.rank(), m), 0, static_cast<Tag>(m), comm);
    }
  });
}

TEST(Patterns, CompatibleSequenceBurst) {
  // The fast-path scenario end to end: the consumer posts a long run of
  // identical receives, the producer floods the same envelope.
  constexpr int kMsgs = 64;
  WorldOptions opts;
  opts.match.early_booking_check = false;  // surface conflicts
  World world(2, opts);
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    if (proc.rank() == 1) {
      std::vector<std::vector<std::byte>> rx(kMsgs, std::vector<std::byte>(32));
      std::vector<Request> reqs;
      for (int m = 0; m < kMsgs; ++m)
        reqs.push_back(proc.irecv(rx[static_cast<std::size_t>(m)], 0, 7, comm));
      proc.wait_all(reqs);
      // C2: payloads must land in send order.
      for (int m = 0; m < kMsgs; ++m)
        ASSERT_EQ(rx[static_cast<std::size_t>(m)], payload(m, 7)) << m;
    } else {
      for (int m = 0; m < kMsgs; ++m) proc.send(payload(m, 7), 1, 7, comm);
    }
  });
}

TEST(Patterns, CrystalRouterStages) {
  // Hypercube staged exchange with ANY_SOURCE receives.
  constexpr int kRanks = 8;
  World world(kRanks, {});
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    std::vector<std::byte> buf(32);
    for (int stage = 0; (1 << stage) < kRanks; ++stage) {
      const Rank partner = static_cast<Rank>(proc.rank() ^ (1 << stage));
      const Tag tag = static_cast<Tag>(600 + stage);
      auto req = proc.irecv(buf, kAnySource, tag, comm);
      proc.send(payload(proc.rank(), stage), partner, tag, comm);
      const Status st = proc.wait(req);
      ASSERT_EQ(st.source, partner) << "stage " << stage;
      ASSERT_EQ(buf, payload(partner, stage));
    }
  });
}

TEST(Patterns, RingPipelineManyRounds) {
  // Nearest-neighbor ring shifted for many rounds: steady-state load on
  // descriptor recycling.
  constexpr int kRanks = 6;
  constexpr int kRounds = 40;
  World world(kRanks, {});
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    const Rank next = static_cast<Rank>((proc.rank() + 1) % kRanks);
    const Rank prev = static_cast<Rank>((proc.rank() + kRanks - 1) % kRanks);
    std::vector<std::byte> token = payload(proc.rank(), 0);
    std::vector<std::byte> incoming(32);
    for (int round = 0; round < kRounds; ++round) {
      auto req = proc.irecv(incoming, prev, 1, comm);
      proc.send(token, next, 1, comm);
      proc.wait(req);
      token = incoming;  // pass the neighbor's token onward
    }
    // After kRounds shifts, the token originated kRounds hops upstream.
    const Rank origin =
        static_cast<Rank>(((proc.rank() - kRounds) % kRanks + kRanks) % kRanks);
    ASSERT_EQ(token, payload(origin, 0));
  });
  EXPECT_EQ(total_stats(world).messages_matched +
                total_stats(world).receives_matched_unexpected,
            kRanks * kRounds);
}

TEST(Patterns, MixedSizesCrossEagerRendezvous) {
  // Interleaved small/large messages on one flow: protocol selection must
  // never reorder same-envelope traffic (C2 spans protocols).
  WorldOptions opts;
  opts.endpoint.eager_threshold = 128;
  World world(2, opts);
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    constexpr int kMsgs = 12;
    if (proc.rank() == 1) {
      std::vector<std::vector<std::byte>> rx;
      std::vector<Request> reqs;
      for (int m = 0; m < kMsgs; ++m) {
        rx.emplace_back(m % 2 == 0 ? 64 : 4096);
        reqs.push_back(proc.irecv(rx.back(), 0, 3, comm));
      }
      proc.wait_all(reqs);
      for (int m = 0; m < kMsgs; ++m)
        ASSERT_EQ(rx[static_cast<std::size_t>(m)],
                  payload(m, 9, m % 2 == 0 ? 64 : 4096))
            << m;
    } else {
      for (int m = 0; m < kMsgs; ++m)
        proc.send(payload(m, 9, m % 2 == 0 ? 64 : 4096), 1, 3, comm);
    }
  });
}

TEST(Patterns, MultiThreadedRanksShareTheWorld) {
  // MPI_THREAD_MULTIPLE-style usage (the paper's Sec. I motivation):
  // two user threads per rank issue independent flows concurrently.
  World world(2, {});
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int flow = 0; flow < 2; ++flow) {
    threads.emplace_back([&world, flow, &ok] {
      const Tag tag = static_cast<Tag>(50 + flow);
      const Comm comm = world.proc(0).world_comm();
      for (int m = 0; m < 20; ++m) {
        std::vector<std::byte> rx(32);
        auto req = world.proc(1).irecv(rx, 0, tag, comm);
        world.proc(0).send(payload(flow, m), 1, tag, comm);
        world.proc(1).wait(req);
        if (rx != payload(flow, m)) return;
      }
      ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 2);
}

}  // namespace
}  // namespace otm::mpi
