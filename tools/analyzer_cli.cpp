// otm-analyzer: the MPI trace analyzer as a standalone tool (the paper's
// artifact A2 workflow). Takes DUMPI trace directories (meta files as
// positional arguments, or --traces=<dir> holding one subdirectory per
// application), replays each through the optimistic matching structures
// for every requested bin count, and writes one CSV per (application,
// bins) plus a cross-application summary.
//
//   $ otm-tracegen --out=traces
//   $ otm-analyzer --traces=traces --bins=1,2,8,32,128,256 --out=analysis
//
// Output layout (mirrors the artifact's "folder per application, one
// folder per bin count"):
//   analysis/<app>/<bins>/stats.csv
//   analysis/summary.csv
//
// Observability (--trace-out/--metrics-out/--samples-out): each replay
// additionally records matcher events, counters and queue-depth series;
// the named files receive a Chrome/Perfetto trace JSON, a metrics
// snapshot (JSON, or CSV when the name ends in .csv) and the raw depth
// samples. One observability context spans all (app, bins) runs, with
// metric names prefixed "<app>@<bins>.".
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "obs/observability.hpp"
#include "trace/analyzer.hpp"
#include "trace/cache.hpp"
#include "trace/jsonl.hpp"
#include "util/args.hpp"

using namespace otm;
using namespace otm::trace;

namespace fs = std::filesystem;

namespace {

void write_stats_csv(const AppAnalysis& a, const fs::path& file) {
  std::ofstream os(file);
  os << "metric,value\n";
  os << "app," << a.app << "\n";
  os << "ranks," << a.ranks << "\n";
  os << "bins," << a.bins << "\n";
  os << "avg_queue_depth," << a.avg_queue_depth << "\n";
  os << "max_queue_depth," << a.max_queue_depth << "\n";
  os << "avg_search_attempts," << a.avg_search_attempts << "\n";
  os << "empty_bin_fraction," << a.avg_empty_bin_fraction << "\n";
  os << "p2p_calls," << a.calls.p2p << "\n";
  os << "collective_calls," << a.calls.collective << "\n";
  os << "one_sided_calls," << a.calls.one_sided << "\n";
  os << "progress_calls," << a.calls.progress << "\n";
  os << "receives_posted," << a.receives_posted << "\n";
  os << "wildcard_receives," << a.wildcard_receives << "\n";
  os << "messages," << a.messages << "\n";
  os << "unexpected," << a.unexpected << "\n";
  os << "matched_at_post," << a.matched_at_post << "\n";
  os << "conflicts," << a.conflicts << "\n";
  os << "unique_src_tag_pairs," << a.unique_src_tag_pairs << "\n";
  os << "data_points," << a.data_points << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const auto bins_list = args.get_int_list("bins", {1, 2, 8, 32, 128, 256});
  const std::string out_dir = args.get("out", "analysis");
  const unsigned block = static_cast<unsigned>(args.get_int("block", 1));
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string samples_out = args.get("samples-out", "");

  std::unique_ptr<obs::Observability> obs;
  if (!trace_out.empty() || !metrics_out.empty() || !samples_out.empty()) {
    obs::ObsConfig oc = obs::ObsConfig::enabled(
        static_cast<std::size_t>(args.get_int("trace-capacity", 1 << 16)));
    obs = std::make_unique<obs::Observability>(oc);
  }

  // Collect meta files: positionals first, else scan --traces.
  std::vector<std::string> metas(args.positional());
  if (metas.empty()) {
    const std::string traces = args.get("traces", "traces");
    if (!fs::is_directory(traces)) {
      std::fprintf(stderr,
                   "usage: %s [meta files...] [--traces=dir] "
                   "[--bins=1,32,128] [--out=dir] [--block=N] "
                   "[--trace-out=f.json] [--metrics-out=f.json|f.csv] "
                   "[--samples-out=f.csv]\n",
                   args.program().c_str());
      return 2;
    }
    for (const auto& sub : fs::recursive_directory_iterator(traces))
      if (sub.is_regular_file() && (sub.path().extension() == ".meta" ||
                                    sub.path().extension() == ".jsonl"))
        metas.push_back(sub.path().string());
  }
  if (metas.empty()) {
    std::fprintf(stderr, "no .meta trace files found\n");
    return 2;
  }

  fs::create_directories(out_dir);
  std::ofstream summary(fs::path(out_dir) / "summary.csv");
  summary << "app,ranks,bins,avg_queue_depth,max_queue_depth,"
             "avg_search_attempts,pct_p2p,pct_collective,unexpected,"
             "conflicts,unique_src_tag_pairs\n";

  for (const std::string& meta : metas) {
    bool used_cache = false;
    Trace trace;
    try {
      if (fs::path(meta).extension() == ".jsonl") {
        std::ifstream js(meta);
        trace = parse_jsonl(js);
      } else {
        trace = load_trace_cached(meta, &used_cache);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "skipping %s: %s\n", meta.c_str(), e.what());
      continue;
    }
    std::printf("%-18s %5d ranks %9zu ops (%s)\n", trace.app_name.c_str(),
                trace.num_ranks, trace.total_ops(),
                used_cache ? "cache" : "parsed");

    for (const auto bins : bins_list) {
      AnalyzerConfig cfg;
      cfg.bins = static_cast<std::size_t>(bins);
      cfg.block_size = block;
      if (obs != nullptr) {
        cfg.obs = obs.get();
        cfg.obs_prefix =
            trace.app_name + "@" + std::to_string(bins) + ".";
      }
      const AppAnalysis a = TraceAnalyzer(cfg).analyze(trace);

      const fs::path dir =
          fs::path(out_dir) / trace.app_name / std::to_string(bins);
      fs::create_directories(dir);
      write_stats_csv(a, dir / "stats.csv");

      summary << a.app << ',' << a.ranks << ',' << a.bins << ','
              << a.avg_queue_depth << ',' << a.max_queue_depth << ','
              << a.avg_search_attempts << ',' << a.calls.pct_p2p() << ','
              << a.calls.pct_collective() << ',' << a.unexpected << ','
              << a.conflicts << ',' << a.unique_src_tag_pairs << "\n";
      std::printf("   bins=%-4lld avg=%-6.3f max=%llu\n",
                  static_cast<long long>(bins), a.avg_queue_depth,
                  static_cast<unsigned long long>(a.max_queue_depth));
    }
  }
  bool obs_write_failed = false;
  const auto report_write = [&obs_write_failed](const std::ofstream& os,
                                                const char* what,
                                                const std::string& file) {
    if (os.good()) {
      std::printf("%s written to %s\n", what, file.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s to %s\n", what, file.c_str());
      obs_write_failed = true;
    }
  };
  if (obs != nullptr) {
    if (!trace_out.empty()) {
      std::ofstream os(trace_out);
      obs->write_trace_json(os);
      report_write(os, "trace", trace_out);
    }
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      if (fs::path(metrics_out).extension() == ".csv")
        obs->write_metrics_csv(os);
      else
        obs->write_metrics_json(os);
      report_write(os, "metrics", metrics_out);
    }
    if (!samples_out.empty()) {
      std::ofstream os(samples_out);
      obs->write_samples_csv(os);
      report_write(os, "samples", samples_out);
    }
  }
  std::printf("analysis written to %s\n", out_dir.c_str());
  return obs_write_failed ? 1 : 0;
}
