#include "core/block_matcher.hpp"

#include <thread>

#include "util/assert.hpp"

namespace otm {

BlockMatcher::BlockMatcher(const MatchConfig& cfg, ReceiveStore& store,
                           const CostTable* costs)
    : cfg_(cfg), store_(store), costs_(costs) {}

BlockMatcher::BlockMatcher(const MatchConfig& cfg, ReceiveStore& store,
                           std::uint32_t generation,
                           std::span<const IncomingMessage> msgs,
                           const CostTable* costs,
                           std::span<const std::uint64_t> start_cycles)
    : BlockMatcher(cfg, store, costs) {
  begin_block(generation, msgs, start_cycles);
}

void BlockMatcher::begin_block(std::uint32_t generation,
                               std::span<const IncomingMessage> msgs,
                               std::span<const std::uint64_t> start_cycles) {
  OTM_ASSERT(msgs.size() >= 1 && msgs.size() <= kMaxBlockThreads);
  gen_ = generation;
  msgs_ = msgs;
  const unsigned n = num_threads();
  booked_barrier_.reset(n);
  detect_barrier_.reset(n);
  // relaxed: begin_block runs engine-serialized between blocks; no matching
  // thread observes the scratch until the executor starts them.
  first_loser_.store(n, std::memory_order_relaxed);
  resolved_bits_.store(0, std::memory_order_relaxed);
  for (unsigned t = 0; t < n; ++t) {
    threads_[t] = ThreadState{};
    const std::uint64_t start = t < start_cycles.size() ? start_cycles[t] : 0;
    threads_[t].clock = ThreadClock(costs_, start);
    results_[t] = ThreadResult{};
    // relaxed: same serialized-phase argument as above.
    resolved_time_[t].store(0, std::memory_order_relaxed);
  }
}

// otmlint: hot
void BlockMatcher::run_optimistic(unsigned tid) {
  ThreadState& st = threads_[tid];
  ThreadClock& clock = st.clock;
  OTM_CHARGE(clock, cqe_poll);

  if (cfg_.allow_overtaking) {
    // Sec. VII (mpi_assert_allow_overtaking): matching order is relaxed, so
    // no barriers and no ordered resolution — race on consuming a matching
    // receive with atomic state transitions, re-searching on loss.
    for (;;) {
      const std::uint32_t cand = store_.search(msgs_[tid], gen_, tid,
                                               /*early_skip=*/false, clock,
                                               results_[tid].search);
      if (results_[tid].first_candidate == kInvalidSlot)
        results_[tid].first_candidate = cand;
      if (cand == kInvalidSlot) {
        finalize(tid, kInvalidSlot, ResolutionPath::kOptimistic);
        break;
      }
      if (store_.desc(cand).try_consume()) {
        OTM_CHARGE(clock, consume);
        charge_removal(clock, cand);
        finalize(tid, cand, ResolutionPath::kOptimistic);
        break;
      }
      // Lost the race; the winner's consumed flag makes the re-search
      // skip this receive.
      results_[tid].conflicted = true;
      OTM_CHARGE(clock, research_overhead);
    }
    booked_barrier_.arrive(tid, clock.cycles());
    return;
  }

  st.candidate = store_.search(msgs_[tid], gen_, tid, cfg_.early_booking_check,
                               clock, results_[tid].search, &st.cursor);
  results_[tid].first_candidate = st.candidate;
  if (st.candidate != kInvalidSlot) {
    store_.desc(st.candidate).booking.book(gen_, tid);
    OTM_CHARGE(clock, booking_cas);
  }
  booked_barrier_.arrive(tid, clock.cycles());
}

// otmlint: hot
void BlockMatcher::run_detect(unsigned tid) {
  ThreadState& st = threads_[tid];
  ThreadClock& clock = st.clock;

  // Already finalized (allow-overtaking path): nothing to detect.
  // acquire: pairs with finalize()'s release fetch_or (own bit, same
  // thread, but keeps the idiom uniform and future-proof).
  if ((resolved_bits_.load(std::memory_order_acquire) & (1u << tid)) != 0) {
    detect_barrier_.arrive(tid, clock.cycles());
    return;
  }

  booked_barrier_.wait_lower(tid);
  if (clock.enabled()) {
    clock.sync_to(booked_barrier_.max_published_lower(tid));
    clock.charge(costs_->barrier_overhead);
  }

  if (st.candidate != kInvalidSlot) {
    st.lost = store_.desc(st.candidate).booking.booked_by_lower(gen_, tid);
    OTM_CHARGE(clock, conflict_check);
    if (st.lost) {
      // Publish the lowest losing thread id: every thread above it must
      // enter conflict resolution (a loser's re-booking can steal the
      // candidate of any later, apparently-unconflicted thread).
      // relaxed seed/failure: the fetch-min loop carries no payload of its
      // own; release on success pairs with run_resolve()'s acquire load,
      // ordered behind the detect barrier either way.
      std::uint32_t cur = first_loser_.load(std::memory_order_relaxed);
      while (tid < cur && !first_loser_.compare_exchange_weak(
                              cur, tid, std::memory_order_release,
                              std::memory_order_relaxed)) {
      }
    }
  }
  detect_barrier_.arrive(tid, clock.cycles());
}

// otmlint: hot
void BlockMatcher::run_resolve(unsigned tid) {
  ThreadState& st = threads_[tid];
  ThreadClock& clock = st.clock;

  // Already finalized (allow-overtaking path): nothing to resolve.
  // acquire: same pairing as in run_detect().
  if ((resolved_bits_.load(std::memory_order_acquire) & (1u << tid)) != 0)
    return;

  detect_barrier_.wait_lower(tid);
  if (clock.enabled()) {
    clock.sync_to(detect_barrier_.max_published_lower(tid));
    clock.charge(costs_->barrier_overhead);
  }

  // acquire: pairs with the release CAS in run_detect(); the detect barrier
  // already orders the phases, the acquire keeps the pairing explicit.
  const std::uint32_t first_loser = first_loser_.load(std::memory_order_acquire);
  results_[tid].conflicted = st.lost;

  // No candidate: the message is unexpected. Resolution by lower threads
  // only *consumes* receives, so a re-search cannot find anything new.
  if (st.candidate == kInvalidSlot) {
    finalize(tid, kInvalidSlot, ResolutionPath::kOptimistic);
    return;
  }

  // Below the first loser every booking is conflict-free and final.
  if (tid < first_loser) {
    const bool ok = store_.desc(st.candidate).try_consume();
    OTM_ASSERT_MSG(ok, "winner's candidate consumed by another thread");
    OTM_CHARGE(clock, consume);
    charge_removal(clock, st.candidate);
    finalize(tid, st.candidate, ResolutionPath::kOptimistic);
    return;
  }

  // --- Conflict resolution (Sec. III-D-3) --------------------------------

  // Fast path: if *all* threads of the block booked my candidate, they all
  // want the head of one compatible sequence; my replacement is the entry
  // shifted by my thread id, with no extra synchronization. The cursor
  // recorded by the optimistic search resumes the scan in place.
  if (cfg_.enable_fast_path && num_threads() > 1 &&
      store_.desc(st.candidate).booking.booked(gen_) == full_mask()) {
    const std::uint32_t shifted = store_.fast_path_candidate(
        st.cursor, msgs_[tid].env, tid, clock, results_[tid].search);
    if (shifted != kInvalidSlot) {
      const bool ok = store_.desc(shifted).try_consume();
      OTM_ASSERT_MSG(ok, "fast-path candidate consumed by another thread");
      OTM_CHARGE(clock, consume);
      charge_removal(clock, shifted);
      finalize(tid, shifted, ResolutionPath::kFastPath);
      return;
    }
    results_[tid].fast_path_aborted = true;
  }

  // Slow path: wait until every lower thread's decision is final, then
  // re-search with their consumptions visible. This reproduces the
  // sequential matching order exactly (constraints C1 + C2).
  if (tid > 0) {
    const std::uint32_t mask = (1u << tid) - 1u;
    // acquire: pairs with finalize()'s release fetch_or — once all lower
    // bits are visible, the lower threads' consumptions and resolved_time_
    // stores are too (the slow-path re-search depends on this, C1+C2).
    while ((resolved_bits_.load(std::memory_order_acquire) & mask) != mask) {
      // spin: lower threads always terminate (thread 0 never waits)
    }
    if (clock.enabled()) {
      std::uint64_t latest = 0;
      for (unsigned j = 0; j < tid; ++j) {
        // relaxed: ordered by the acquire spin above (resolved bit j set
        // implies resolved_time_[j] published).
        const std::uint64_t t = resolved_time_[j].load(std::memory_order_relaxed);
        if (t > latest) latest = t;
      }
      clock.sync_to(latest);
      clock.charge(costs_->slow_path_sync);
    }
  }
  OTM_CHARGE(clock, research_overhead);

  SearchLocal& local = results_[tid].search;
  const std::uint32_t again =
      store_.search(msgs_[tid], gen_, tid, /*early_skip=*/false, clock, local);
  if (again != kInvalidSlot) {
    const bool ok = store_.desc(again).try_consume();
    OTM_ASSERT_MSG(ok, "slow-path candidate consumed by another thread");
    OTM_CHARGE(clock, consume);
    charge_removal(clock, again);
  }
  finalize(tid, again, ResolutionPath::kSlowPath);
}

void BlockMatcher::finalize(unsigned tid, std::uint32_t slot,
                            ResolutionPath path) {
  ThreadResult& r = results_[tid];
  r.final_slot = slot;
  r.path = path;
  r.finish_cycles = threads_[tid].clock.cycles();
  // relaxed: published by the release fetch_or below (bit-then-value
  // protocol, same shape as PartialBarrier::arrive).
  resolved_time_[tid].store(r.finish_cycles, std::memory_order_relaxed);
  // release: pairs with the acquire loads in run_detect/run_resolve; makes
  // this thread's consumption and resolved_time_ visible to waiters.
  resolved_bits_.fetch_or(1u << tid, std::memory_order_release);
}

void LockstepExecutor::execute(BlockMatcher& m) {
  const unsigned n = m.num_threads();
  for (unsigned t = 0; t < n; ++t) m.run_optimistic(t);
  for (unsigned t = 0; t < n; ++t) m.run_detect(t);
  for (unsigned t = 0; t < n; ++t) m.run_resolve(t);
}

void ThreadedExecutor::execute(BlockMatcher& m) {
  const unsigned n = m.num_threads();
  if (n == 1) {
    m.run_all(0);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned t = 0; t < n; ++t)
    workers.emplace_back([&m, t] { m.run_all(t); });
  for (auto& w : workers) w.join();
}

void SequentialExecutor::execute(BlockMatcher& m) {
  const unsigned n = m.num_threads();
  for (unsigned t = 0; t < n; ++t) m.run_all(t);
}

}  // namespace otm
