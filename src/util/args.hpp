// Minimal command-line parser for bench/example binaries.
//
// Supports "--key=value", "--key value" and boolean "--flag" forms; unknown
// arguments are reported. Intentionally tiny — benches need a handful of
// sweep parameters, not a framework.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace otm {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated integer list, e.g. --bins=1,32,128.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> def) const;

  const std::vector<std::string>& positional() const noexcept { return positional_; }
  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace otm
