// JSON-lines trace format — the "other formats" extension point of
// Sec. V-A (the paper implements a DUMPI text reader but designs the
// parser stage to accept more).
//
// Layout: one self-describing line per record. The first line is a header,
// each following line one MPI call:
//
//   {"app":"LULESH","ranks":64}
//   {"rank":0,"op":"MPI_Isend","peer":3,"tag":42,"comm":0,"bytes":128,
//    "request":5,"t0":0.000001,"t1":0.000002}
//
// Unlike the DUMPI layout (one file per rank), a JSONL trace is a single
// stream — convenient for piping and for tools that emit merged logs.
#pragma once

#include <iosfwd>

#include "trace/ops.hpp"

namespace otm::trace {

void write_jsonl(const Trace& trace, std::ostream& os);

/// Parse a JSONL trace. Unknown keys and unknown op names are skipped;
/// malformed JSON or a missing/invalid header throws std::runtime_error.
Trace parse_jsonl(std::istream& is);

}  // namespace otm::trace
