// Edge-case coverage: type-level truth tables, descriptor-table
// concurrency, 32-thread block boundaries, cost-model arithmetic, and API
// misuse death tests.
#include <gtest/gtest.h>

#include <thread>

#include "core/descriptor_table.hpp"
#include "core/engine.hpp"
#include "mpi/mpi.hpp"

namespace otm {
namespace {

// --- MatchSpec / Envelope truth table ---------------------------------------

TEST(MatchSpecEdge, MatchTruthTable) {
  const Envelope env{3, 7, 2};
  struct Case {
    MatchSpec spec;
    bool matches;
  };
  const Case cases[] = {
      {{3, 7, 2}, true},
      {{3, 7, 0}, false},          // comm differs
      {{3, 8, 2}, false},          // tag differs
      {{4, 7, 2}, false},          // source differs
      {{kAnySource, 7, 2}, true},
      {{kAnySource, 8, 2}, false},
      {{3, kAnyTag, 2}, true},
      {{4, kAnyTag, 2}, false},
      {{kAnySource, kAnyTag, 2}, true},
      {{kAnySource, kAnyTag, 9}, false},  // wildcards never cross comms
  };
  for (const auto& c : cases)
    EXPECT_EQ(c.spec.matches(env), c.matches) << to_string(c.spec);
}

TEST(MatchSpecEdge, WildcardClassMapping) {
  EXPECT_EQ((MatchSpec{1, 2, 0}).wildcard_class(), WildcardClass::kNone);
  EXPECT_EQ((MatchSpec{kAnySource, 2, 0}).wildcard_class(),
            WildcardClass::kSourceWild);
  EXPECT_EQ((MatchSpec{1, kAnyTag, 0}).wildcard_class(), WildcardClass::kTagWild);
  EXPECT_EQ((MatchSpec{kAnySource, kAnyTag, 0}).wildcard_class(),
            WildcardClass::kBothWild);
}

TEST(MatchSpecEdge, CompatibilityIncludesWildcards) {
  EXPECT_TRUE((MatchSpec{1, 2, 0}).compatible_with({1, 2, 0}));
  EXPECT_FALSE((MatchSpec{1, 2, 0}).compatible_with({1, 3, 0}));
  EXPECT_FALSE((MatchSpec{1, 2, 0}).compatible_with({kAnySource, 2, 0}));
  EXPECT_TRUE(
      (MatchSpec{kAnySource, kAnyTag, 0}).compatible_with({kAnySource, kAnyTag, 0}));
  EXPECT_FALSE((MatchSpec{1, 2, 0}).compatible_with({1, 2, 1}));  // comm
}

TEST(MatchSpecEdge, InlineHashesMatchFreeFunctions) {
  const Envelope e{11, 22, 0};
  const auto h = InlineHashes::compute(e);
  EXPECT_EQ(h.src_tag, hash_src_tag(11, 22));
  EXPECT_EQ(h.src, hash_src(11));
  EXPECT_EQ(h.tag, hash_tag(22));
}

// --- DescriptorTable ----------------------------------------------------------

TEST(DescriptorTableEdge, ReleaseResetsDescriptor) {
  DescriptorTable<ReceiveDescriptor> table(4);
  const auto id = table.allocate();
  table[id].label = 42;
  table[id].state.store(ReceiveState::kPosted, std::memory_order_relaxed);
  table.release(id);
  const auto id2 = table.allocate();
  EXPECT_EQ(id2, id) << "LIFO free list reuses the slot";
  EXPECT_EQ(table[id2].label, 0u) << "released slot must be reset";
  EXPECT_EQ(table[id2].state.load(), ReceiveState::kFree);
}

TEST(DescriptorTableEdge, ConcurrentAllocateRelease) {
  DescriptorTable<ReceiveDescriptor> table(64);
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        const auto id = table.allocate();
        if (id == kInvalidSlot) continue;  // transient exhaustion is fine
        if (id >= table.capacity()) {
          failures.fetch_add(1);
          continue;
        }
        table.release(id);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(table.live(), 0u);
}

// --- 32-thread block boundary ---------------------------------------------------

TEST(BlockEdge, FullWidthBlockFastPath) {
  // Exactly kMaxBlockThreads messages against a 32-deep compatible
  // sequence: the full-bitmap fast path at its widest.
  MatchConfig cfg;
  cfg.bins = 16;
  cfg.block_size = kMaxBlockThreads;
  cfg.max_receives = 64;
  cfg.max_unexpected = 64;
  cfg.early_booking_check = false;
  MatchEngine eng(cfg);
  for (unsigned i = 0; i < kMaxBlockThreads; ++i)
    eng.post_receive({1, 5, 0}, 0, 0, i);
  std::vector<IncomingMessage> msgs(kMaxBlockThreads,
                                    IncomingMessage::make(1, 5, 0));
  LockstepExecutor ex;
  const auto outs = eng.process(msgs, ex);
  for (unsigned i = 0; i < kMaxBlockThreads; ++i) {
    ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kMatched);
    ASSERT_EQ(outs[i].match.receive_cookie, i);
  }
  EXPECT_EQ(eng.stats().fast_path_resolutions, kMaxBlockThreads - 1);
}

TEST(BlockEdge, EverySmallBlockSizeAgainstOracle) {
  // Exhaustive mini-oracle across block sizes 1..8 on a fixed scenario.
  for (unsigned block = 1; block <= 8; ++block) {
    MatchConfig cfg;
    cfg.bins = 4;
    cfg.block_size = block;
    cfg.max_receives = 64;
    cfg.max_unexpected = 64;
    cfg.early_booking_check = false;
    MatchEngine eng(cfg);
    LockstepExecutor ex;
    // 5 same-key receives + 1 wildcard, 8 same-key messages.
    for (unsigned i = 0; i < 5; ++i) eng.post_receive({1, 5, 0}, 0, 0, i);
    eng.post_receive({kAnySource, kAnyTag, 0}, 0, 0, 5);
    std::vector<IncomingMessage> msgs(8, IncomingMessage::make(1, 5, 0));
    const auto outs = eng.process(msgs, ex);
    for (unsigned i = 0; i < 6; ++i) {
      ASSERT_EQ(outs[i].kind, ArrivalOutcome::Kind::kMatched) << "block " << block;
      ASSERT_EQ(outs[i].match.receive_cookie, i) << "block " << block;
    }
    EXPECT_EQ(outs[6].kind, ArrivalOutcome::Kind::kUnexpected);
    EXPECT_EQ(outs[7].kind, ArrivalOutcome::Kind::kUnexpected);
  }
}

TEST(BlockEdge, ConfigValidation) {
  MatchConfig c;
  EXPECT_TRUE(c.valid());
  c.bins = 100;  // not a power of two
  EXPECT_FALSE(c.valid());
  c.bins = 128;
  c.block_size = kMaxBlockThreads + 1;
  EXPECT_FALSE(c.valid());
  c.block_size = 0;
  EXPECT_FALSE(c.valid());
  c.block_size = 1;
  c.max_receives = 0;
  EXPECT_FALSE(c.valid());
}

// --- Cost model -----------------------------------------------------------------

TEST(CostModelEdge, DisabledClockIsFree) {
  ThreadClock off;
  EXPECT_FALSE(off.enabled());
  OTM_CHARGE(off, chain_step);
  off.charge_copy(1 << 20);
  EXPECT_EQ(off.cycles(), 0u);
}

TEST(CostModelEdge, CopyChargeScalesWithBytes) {
  const CostTable costs = CostTable::dpa();
  ThreadClock clock(&costs);
  clock.charge_copy(1000);
  const auto one_kb = clock.cycles();
  clock.charge_copy(3000);
  EXPECT_EQ(clock.cycles(), one_kb * 4);
}

TEST(CostModelEdge, SyncToNeverRewinds) {
  ThreadClock clock(nullptr, 100);
  clock.sync_to(50);
  EXPECT_EQ(clock.cycles(), 100u);
  clock.sync_to(150);
  EXPECT_EQ(clock.cycles(), 150u);
}

TEST(CostModelEdge, DpaSlowerPerOpThanHost) {
  const CostTable dpa = CostTable::dpa();
  const CostTable host = CostTable::host_cpu();
  EXPECT_GT(dpa.chain_step, host.chain_step);
  EXPECT_GT(dpa.booking_cas, host.booking_cas);
  // ...but the host pays more to poll its PCIe-attached CQ.
  EXPECT_LT(dpa.cqe_poll, host.cqe_poll);
}

// --- API misuse ------------------------------------------------------------------

TEST(ApiMisuseDeath, InvalidRequestId) {
  mpi::World world(1, {});
  mpi::Request bogus{12345};
  EXPECT_DEATH(world.proc(0).test(bogus), "invalid request");
}

TEST(ApiMisuseDeath, NegativeSendTagRejected) {
  mpi::World world(2, {});
  std::vector<std::byte> buf(4);
  EXPECT_DEATH(world.proc(0).isend(buf, 1, -5, world.proc(0).world_comm()),
               "non-negative");
}

TEST(ApiMisuseDeath, ProcOutOfRange) {
  mpi::World world(2, {});
  EXPECT_DEATH(world.proc(7), "");
}

}  // namespace
}  // namespace otm
