file(REMOVE_RECURSE
  "CMakeFiles/otm_obs.dir/metrics.cpp.o"
  "CMakeFiles/otm_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/otm_obs.dir/observability.cpp.o"
  "CMakeFiles/otm_obs.dir/observability.cpp.o.d"
  "CMakeFiles/otm_obs.dir/sampler.cpp.o"
  "CMakeFiles/otm_obs.dir/sampler.cpp.o.d"
  "CMakeFiles/otm_obs.dir/tracer.cpp.o"
  "CMakeFiles/otm_obs.dir/tracer.cpp.o.d"
  "libotm_obs.a"
  "libotm_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
