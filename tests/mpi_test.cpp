// Tests for the mini-MPI layer: point-to-point semantics over the offloaded
// endpoint and the software baseline, wildcards, communicator assertions,
// flow-control deferral, and the threaded SPMD driver.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <numeric>
#include <span>

#include "mpi/mpi.hpp"

namespace otm::mpi {
namespace {

std::vector<std::byte> payload(std::size_t n, int seed = 0) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i + static_cast<std::size_t>(seed) * 17) & 0xFF);
  return v;
}

class MpiBackends : public ::testing::TestWithParam<Backend> {
 protected:
  WorldOptions options() const {
    WorldOptions o;
    o.backend = GetParam();
    o.match.max_receives = 64;
    o.match.max_unexpected = 64;
    o.match.bins = 32;
    o.match.block_size = 4;
    return o;
  }
};

TEST_P(MpiBackends, BasicSendRecv) {
  World world(2, options());
  const Comm comm = world.proc(0).world_comm();
  const auto tx = payload(128, 1);
  std::vector<std::byte> rx(128);

  auto req = world.proc(1).irecv(rx, 0, 7, comm);
  world.proc(0).send(tx, 1, 7, comm);
  const Status s = world.proc(1).wait(req);
  EXPECT_EQ(s.source, 0);
  EXPECT_EQ(s.tag, 7);
  EXPECT_EQ(s.bytes, 128u);
  EXPECT_EQ(tx, rx);
}

TEST_P(MpiBackends, UnexpectedMessageThenRecv) {
  World world(2, options());
  const Comm comm = world.proc(0).world_comm();
  const auto tx = payload(64, 2);
  std::vector<std::byte> rx(64);

  world.proc(0).send(tx, 1, 3, comm);
  world.proc(1).progress();  // message lands unexpected
  const Status s = world.proc(1).recv(rx, 0, 3, comm);
  EXPECT_EQ(s.bytes, 64u);
  EXPECT_EQ(tx, rx);
}

TEST_P(MpiBackends, AnySourceReceivesFromEitherPeer) {
  World world(3, options());
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(16);
  auto req = world.proc(0).irecv(rx, kAnySource, 5, comm);
  world.proc(2).send(payload(16, 9), 0, 5, comm);
  const Status s = world.proc(0).wait(req);
  EXPECT_EQ(s.source, 2);
  EXPECT_EQ(rx, payload(16, 9));
}

TEST_P(MpiBackends, AnyTagReceives) {
  World world(2, options());
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(16);
  auto req = world.proc(0).irecv(rx, 1, kAnyTag, comm);
  world.proc(1).send(payload(16, 3), 0, 42, comm);
  const Status s = world.proc(0).wait(req);
  EXPECT_EQ(s.tag, 42);
}

TEST_P(MpiBackends, NonOvertakingSameEnvelope) {
  // C2 at the API level: two sends with the same envelope complete the two
  // receives in posting order with matching payloads.
  World world(2, options());
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx1(8);
  std::vector<std::byte> rx2(8);
  auto r1 = world.proc(1).irecv(rx1, 0, 4, comm);
  auto r2 = world.proc(1).irecv(rx2, 0, 4, comm);
  world.proc(0).send(payload(8, 1), 1, 4, comm);
  world.proc(0).send(payload(8, 2), 1, 4, comm);
  world.proc(1).wait(r1);
  world.proc(1).wait(r2);
  EXPECT_EQ(rx1, payload(8, 1));
  EXPECT_EQ(rx2, payload(8, 2));
}

TEST_P(MpiBackends, CommunicatorsDoNotCross) {
  World world(2, options());
  Proc& p0 = world.proc(0);
  const Comm world_comm = p0.world_comm();
  const Comm other = p0.comm_create({});
  std::vector<std::byte> rx_world(8);
  std::vector<std::byte> rx_other(8);
  auto rw = world.proc(1).irecv(rx_world, 0, 1, world_comm);
  auto ro = world.proc(1).irecv(rx_other, 0, 1, other);
  // Send only on `other`: the world receive must stay pending.
  world.proc(0).send(payload(8, 5), 1, 1, other);
  world.proc(1).wait(ro);
  EXPECT_EQ(rx_other, payload(8, 5));
  EXPECT_FALSE(world.proc(1).test(rw));
}

TEST_P(MpiBackends, ManyToOneGather) {
  // The many-to-one pattern the paper calls out (e.g. MPI_Gatherv).
  constexpr int kRanks = 6;
  World world(kRanks, options());
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::vector<std::byte>> rx(kRanks - 1, std::vector<std::byte>(32));
  std::vector<Request> reqs;
  for (int r = 1; r < kRanks; ++r)
    reqs.push_back(world.proc(0).irecv(rx[static_cast<std::size_t>(r - 1)],
                                       static_cast<Rank>(r), 11, comm));
  for (int r = 1; r < kRanks; ++r)
    world.proc(static_cast<Rank>(r)).send(payload(32, r), 0, 11, comm);
  world.proc(0).wait_all(reqs);
  for (int r = 1; r < kRanks; ++r)
    EXPECT_EQ(rx[static_cast<std::size_t>(r - 1)], payload(32, r));
}

INSTANTIATE_TEST_SUITE_P(Backends, MpiBackends,
                         ::testing::Values(Backend::kOffloadDpa,
                                           Backend::kSoftwareList),
                         [](const auto& param_info) {
                           return param_info.param == Backend::kOffloadDpa
                                      ? "OffloadDpa"
                                      : "SoftwareList";
                         });

TEST(MpiOffload, LargeMessagesUseRendezvous) {
  WorldOptions o;
  o.endpoint.eager_threshold = 256;
  World world(2, o);
  const Comm comm = world.proc(0).world_comm();
  const auto tx = payload(8192, 3);
  std::vector<std::byte> rx(8192);
  auto req = world.proc(1).irecv(rx, 0, 2, comm);
  world.proc(0).send(tx, 1, 2, comm);
  world.proc(1).wait(req);
  EXPECT_EQ(tx, rx);
}

TEST(MpiOffload, DescriptorPressureDefersAndRecovers) {
  WorldOptions o;
  o.match.max_receives = 8;
  o.match.max_unexpected = 64;
  World world(2, o);
  const Comm comm = world.proc(0).world_comm();

  // Post 12 receives: 8 land on the NIC, 4 defer host-side in order.
  std::vector<std::vector<std::byte>> rx(12, std::vector<std::byte>(8));
  std::vector<Request> reqs;
  for (int i = 0; i < 12; ++i)
    reqs.push_back(world.proc(1).irecv(rx[static_cast<std::size_t>(i)], 0,
                                       static_cast<Tag>(i), comm));
  EXPECT_EQ(world.proc(1).pending_posts(), 4u);
  EXPECT_GE(world.proc(1).stats().fallback_deferrals, 4u);

  for (int i = 0; i < 12; ++i)
    world.proc(0).send(payload(8, i), 1, static_cast<Tag>(i), comm);
  world.proc(1).wait_all(reqs);
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], payload(8, i));
  EXPECT_EQ(world.proc(1).pending_posts(), 0u);
}

TEST(MpiOffload, DeferredPostsPreserveOrder) {
  // A deferred wildcard receive must still beat a later same-envelope one.
  WorldOptions o;
  o.match.max_receives = 2;
  World world(2, o);
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> b0(8), b1(8), b2(8), b3(8);
  auto r0 = world.proc(1).irecv(b0, 0, 0, comm);
  auto r1 = world.proc(1).irecv(b1, 0, 1, comm);
  auto r2 = world.proc(1).irecv(b2, 0, 9, comm);  // deferred
  auto r3 = world.proc(1).irecv(b3, 0, 9, comm);  // deferred behind r2
  EXPECT_EQ(world.proc(1).pending_posts(), 2u);

  // Complete the first two to free slots, then send two tag-9 messages.
  world.proc(0).send(payload(8, 0), 1, 0, comm);
  world.proc(0).send(payload(8, 1), 1, 1, comm);
  world.proc(1).wait(r0);
  world.proc(1).wait(r1);
  world.proc(0).send(payload(8, 2), 1, 9, comm);
  world.proc(0).send(payload(8, 3), 1, 9, comm);
  world.proc(1).wait(r2);
  world.proc(1).wait(r3);
  EXPECT_EQ(b2, payload(8, 2)) << "first posted tag-9 receive gets first message";
  EXPECT_EQ(b3, payload(8, 3));
}

TEST(MpiOffload, CommAssertionsRejectWildcards) {
  World world(2, {});
  CommInfo info;
  info.assert_no_any_source = true;
  info.assert_no_any_tag = true;
  const Comm comm = world.proc(0).comm_create(info);
  std::vector<std::byte> rx(8);
  EXPECT_DEATH(world.proc(0).irecv(rx, kAnySource, 1, comm), "no_any_source");
  EXPECT_DEATH(world.proc(0).irecv(rx, 1, kAnyTag, comm), "no_any_tag");
}

TEST_P(MpiBackends, WaitAnyReturnsCompletedRequest) {
  World world(2, options());
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx1(16), rx2(16);
  std::array<Request, 2> reqs = {world.proc(1).irecv(rx1, 0, 1, comm),
                                 world.proc(1).irecv(rx2, 0, 2, comm)};

  // Only the second request can complete; wait_any must pick it and fill
  // the status from the completed receive.
  world.proc(0).send(payload(16, 2), 1, 2, comm);
  Status s;
  EXPECT_EQ(world.proc(1).wait_any(reqs, &s), 1u);
  EXPECT_EQ(s.source, 0);
  EXPECT_EQ(s.tag, 2);
  EXPECT_EQ(s.bytes, 16u);
  EXPECT_EQ(rx2, payload(16, 2));

  world.proc(0).send(payload(16, 1), 1, 1, comm);
  EXPECT_EQ(world.proc(1).wait_any(std::span<const Request>(reqs.data(), 1)),
            0u);
  EXPECT_EQ(rx1, payload(16, 1));
}

TEST(MpiStatus, ProbeResultTranslatesByPrefixCopy) {
  ProbeResult pr;
  pr.source = 3;
  pr.tag = 77;
  pr.bytes = 4096;
  pr.comm = 2;
  pr.wire_seq = 99;
  const Status s = to_status(pr);
  EXPECT_EQ(s.source, 3);
  EXPECT_EQ(s.tag, 77);
  EXPECT_EQ(s.bytes, 4096u);
}

TEST(MpiOffload, ObservabilityThreadsThroughWorld) {
  WorldOptions o;
  o.obs = obs::ObsConfig::enabled();
  World world(2, o);
  ASSERT_NE(world.observability(), nullptr);

  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(32);
  auto req = world.proc(1).irecv(rx, 0, 7, comm);
  world.proc(0).send(payload(32), 1, 7, comm);
  world.proc(1).wait(req);

  obs::Observability& ob = *world.observability();
  EXPECT_GT(ob.tracer()->emitted(), 0u);
  // Per-rank namespacing: rank 1's matcher counted the post and the match.
  obs::MetricsRegistry& reg = *ob.metrics();
  EXPECT_EQ(reg.counter("rank1.dpa.comm0.receives_posted").value(), 1u);
  EXPECT_EQ(reg.counter("rank1.dpa.comm0.messages_matched").value(), 1u);
  EXPECT_EQ(reg.counter("rank0.sends").value(), 1u);
}

TEST(MpiOffload, DisabledObsLeavesWorldUninstrumented) {
  World world(2, {});  // default WorldOptions: observability all off
  EXPECT_EQ(world.observability(), nullptr);
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 1, comm);
  world.proc(0).send(payload(8), 1, 1, comm);
  world.proc(1).wait(req);
  EXPECT_EQ(rx, payload(8));
}

TEST(MpiOffload, MatchStatsExposed) {
  World world(2, {});
  const Comm comm = world.proc(0).world_comm();
  std::vector<std::byte> rx(8);
  auto req = world.proc(1).irecv(rx, 0, 1, comm);
  world.proc(0).send(payload(8), 1, 1, comm);
  world.proc(1).wait(req);
  const MatchStats* s = world.proc(1).match_stats();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->messages_matched, 1u);
}

TEST(MpiOffload, CoalescingThreadsThroughWorldOptions) {
  // WorldOptions.endpoint carries CoalescingConfig into every rank's
  // endpoint: a burst of small same-envelope sends rides merged packets and
  // still completes the receives in order with intact payloads.
  WorldOptions o;
  o.obs = obs::ObsConfig::enabled();
  o.endpoint.coalescing.enabled = true;
  o.endpoint.coalescing.max_messages = 8;
  o.endpoint.coalescing.eligible_bytes = 64;
  World world(2, o);
  const Comm comm = world.proc(0).world_comm();

  constexpr int kMsgs = 16;
  std::vector<std::vector<std::byte>> rx(kMsgs, std::vector<std::byte>(8));
  std::vector<Request> reqs;
  for (int i = 0; i < kMsgs; ++i)
    reqs.push_back(world.proc(1).irecv(rx[static_cast<std::size_t>(i)], 0, 7, comm));
  // isend, not send: the blocking wrapper waits, and waiting runs the
  // sender's progress() which doorbell-flushes after every message.
  std::vector<Request> sreqs;
  for (int i = 0; i < kMsgs; ++i)
    sreqs.push_back(world.proc(0).isend(payload(8, i), 1, 7, comm));
  world.proc(0).progress();  // doorbell-flush any partially filled buffer
  world.proc(0).wait_all(sreqs);
  world.proc(1).wait_all(reqs);

  for (int i = 0; i < kMsgs; ++i)
    EXPECT_EQ(rx[static_cast<std::size_t>(i)], payload(8, i)) << "msg " << i;

  obs::MetricsRegistry& reg = *world.observability()->metrics();
  EXPECT_EQ(reg.counter("rank0.coalesced_sends").value(),
            static_cast<std::uint64_t>(kMsgs));
  EXPECT_GT(reg.counter("rank0.merged_packets").value(), 0u);
  EXPECT_LT(reg.counter("rank0.merged_packets").value(),
            static_cast<std::uint64_t>(kMsgs));
}

TEST(MpiThreaded, SpmdPingPong) {
  World world(2, {});
  std::atomic<int> rounds{0};
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    std::vector<std::byte> buf(32);
    for (int i = 0; i < 20; ++i) {
      if (proc.rank() == 0) {
        proc.send(payload(32, i), 1, static_cast<Tag>(i), comm);
        proc.recv(buf, 1, static_cast<Tag>(i), comm);
        EXPECT_EQ(buf, payload(32, i + 1));
      } else {
        proc.recv(buf, 0, static_cast<Tag>(i), comm);
        EXPECT_EQ(buf, payload(32, i));
        proc.send(payload(32, i + 1), 0, static_cast<Tag>(i), comm);
        rounds.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(rounds.load(), 20);
}

TEST(MpiThreaded, SpmdRing) {
  constexpr int kRanks = 4;
  World world(kRanks, {});
  world.run([&](Proc& proc) {
    const Comm comm = proc.world_comm();
    const Rank next = static_cast<Rank>((proc.rank() + 1) % kRanks);
    const Rank prev = static_cast<Rank>((proc.rank() + kRanks - 1) % kRanks);
    std::vector<std::byte> buf(16);
    auto req = proc.irecv(buf, prev, 1, comm);
    proc.send(payload(16, proc.rank()), next, 1, comm);
    proc.wait(req);
    EXPECT_EQ(buf, payload(16, prev));
  });
}

}  // namespace
}  // namespace otm::mpi
