// Full-stack trace replay (docs/SCALING.md): drive a NERSC/DUMPI-style
// trace through the complete offloaded endpoint stack — proto::Endpoint
// channels, reliability windows, coalescing, the sharded DPA matcher —
// with every simulated rank multiplexed on one thread by the event-driven
// WorldScheduler (mpi/scheduler.hpp). This is how 128-1024-rank worlds
// run inside a single test process.
//
// Scaling a trace: the target world must be an integer multiple k of the
// trace's rank count T. The world is tiled with k independent instances of
// the application; instance i maps trace rank t to global rank i*T + t at
// issue time. Instances share the fabric, endpoints and matcher shards but
// exchange no messages, so instance 0 is bit-identical across world sizes
// — the cross-scale invariance witness (tests/soak_test.cpp).
//
// Replay semantics:
//  - isend/irecv/send/recv translate 1:1 (payloads clamped to
//    [8, max_payload_bytes] and stamped with a per-(src,dst,tag) stream
//    sequence number in the first 8 bytes).
//  - kWait waits its traced request; kWaitall/kWaitany wait everything the
//    rank has outstanding (the generators' waitall counts are array
//    lengths, not request identities — waiting all is the sync point the
//    apps express).
//  - Collectives replay as a dissemination barrier inside the instance
//    group (reserved tags >= 1'000'000), so every collective message goes
//    through the offloaded matcher too (paper Sec. VII).
//
// Verification riding along with every replay:
//  - exactly-once: every posted receive completes at most once and
//    nothing is left in flight after a completed run;
//  - FIFO: the k-th received message of each (source, dest, tag) stream
//    carries stamp k (MPI non-overtaking);
//  - ListMatcher differential oracle: a per-receiver two-queue reference
//    matcher is driven at issue time (post at irecv, arrive at isend) and
//    predicts the stamp each receive must observe. The prediction is
//    interleave-independent only for wildcard-free traces, so the strict
//    comparison arms only when the trace has no ANY_SOURCE/ANY_TAG.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/list_matcher.hpp"
#include "mpi/scheduler.hpp"
#include "trace/ops.hpp"

namespace otm::trace {

/// Cut `trace` at the global synchronization boundary nearest
/// `fraction * makespan` and keep only the ops that start before it. A
/// boundary is a time m where every op starting before m has also ended —
/// the generators emit matched send/receive pairs within one inter-sync
/// phase, so slicing there never strands half of a pair. Returns the trace
/// unchanged when fraction >= 1 or no interior boundary exists.
Trace slice_trace(const Trace& trace, double fraction);

struct ReplayConfig {
  /// Matcher shards for the default communicator (power of two, <= 8).
  unsigned shards = 1;
  /// WorldScheduler fuzz seed (0 = strict FIFO service).
  std::uint64_t sched_seed = 0;
  /// Enable the PR-2 fault injector plus channel recovery; retry budgets
  /// are sized so no message is ever dropped (the soak asserts it).
  bool faults = false;
  std::uint64_t fault_seed = 0xc7a05;
  /// Enable merged-message coalescing on every endpoint.
  bool coalescing = false;
  /// Run the ListMatcher differential oracle (strict only when the trace
  /// is wildcard-free).
  bool oracle = true;
  /// Payload clamp: trace byte counts map to [8, max_payload_bytes] so
  /// 1024 endpoints' buffers fit in one process. Keep <= eager threshold
  /// (512) unless the replay should exercise rendezvous.
  std::size_t max_payload_bytes = 512;
  /// Replay only the slice_trace() prefix of this fraction (1.0 = all).
  double slice = 1.0;
};

struct ReplayResult {
  bool completed = false;
  bool deadlock = false;
  std::vector<Rank> blocked;  ///< ranks stuck when deadlock is reported

  // Traffic.
  std::uint64_t messages_sent = 0;
  std::uint64_t recvs_posted = 0;
  std::uint64_t recvs_completed = 0;
  std::uint64_t sends_failed = 0;
  std::uint64_t recvs_failed = 0;  ///< drained (peer death) or cancelled

  // Scheduler / clock.
  std::uint64_t virtual_ns = 0;  ///< scheduler virtual time at completion
  std::uint64_t modeled_ns = 0;  ///< max endpoint clock (modeled msg rate)
  std::uint64_t events = 0;
  std::uint64_t scheduler_steps = 0;
  std::uint64_t dead_peer_drains = 0;

  // Matching / endpoint counters (summed over ranks).
  std::size_t queue_depth_max = 0;  ///< peak outstanding posted receives
  double queue_depth_avg = 0.0;     ///< mean depth sampled at every post
  std::uint64_t conflicts = 0;      ///< MatchStats.conflicts_detected
  std::uint64_t match_attempts = 0;
  std::uint64_t messages_dropped = 0;  ///< retry budgets exhausted
  std::uint64_t retransmits = 0;
  std::uint64_t epoch_bumps = 0;  ///< channel recoveries completed

  // Verification verdicts.
  bool oracle_strict = false;  ///< wildcard-free trace: mismatches armed
  std::uint64_t oracle_mismatches = 0;
  std::uint64_t fifo_violations = 0;
  std::uint64_t exactly_once_violations = 0;

  /// Instance-0 witness for cross-scale invariance: per trace rank, one
  /// fold of (source, tag, stamp, bytes) per completed receive in posting
  /// order, plus the per-rank completed-receive count.
  std::vector<std::vector<std::uint64_t>> fingerprints;
  std::vector<std::uint64_t> match_counts;
};

/// One replay of `trace` tiled onto `target_ranks` simulated ranks.
/// Construct, run() once, then inspect the result (and world() for
/// endpoint-level assertions).
class TraceReplayDriver {
 public:
  TraceReplayDriver(const Trace& trace, int target_ranks,
                    const ReplayConfig& cfg = {});
  ~TraceReplayDriver();

  TraceReplayDriver(const TraceReplayDriver&) = delete;
  TraceReplayDriver& operator=(const TraceReplayDriver&) = delete;

  ReplayResult run();

  mpi::World& world() { return *world_; }
  int target_ranks() const noexcept { return target_ranks_; }
  bool wildcard_free() const noexcept { return wildcard_free_; }

 private:
  struct ReqInfo;
  struct RankState;

  mpi::WorldScheduler::Step step(mpi::Proc& p, RankState& st);
  mpi::WorldScheduler::Step collective_step(mpi::Proc& p, RankState& st);
  mpi::WorldScheduler::Step wait_outstanding(RankState& st,
                                             std::size_t count);
  void harvest(mpi::Proc& p, RankState& st);
  mpi::Request issue_send(mpi::Proc& p, RankState& st, Rank dst, Tag tag,
                          std::uint32_t bytes);
  mpi::Request issue_recv(mpi::Proc& p, RankState& st, Rank src, Tag tag,
                          std::uint32_t bytes);
  void oracle_arrive(Rank dst, Rank src, Tag tag, std::uint64_t stamp);
  std::size_t payload_len(std::uint32_t bytes) const noexcept;
  void collect_counters();

  Trace trace_;  ///< sliced copy the programs execute
  int target_ranks_;
  int instances_;
  ReplayConfig cfg_;
  bool wildcard_free_ = true;
  std::unique_ptr<mpi::World> world_;
  std::vector<RankState> states_;

  // Stream bookkeeping, keyed by packed (src, dst, tag).
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq_;
  std::unordered_map<std::uint64_t, std::uint64_t> recv_seq_;

  // Differential oracle: one reference matcher per receiving rank plus the
  // cookie -> pending request-id map for posts that matched nothing yet.
  std::vector<ListMatcher> oracle_;
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> cookie_req_;
  std::uint64_t next_cookie_ = 1;

  std::uint64_t depth_sum_ = 0;
  std::uint64_t depth_samples_ = 0;
  ReplayResult result_;
};

}  // namespace otm::trace
