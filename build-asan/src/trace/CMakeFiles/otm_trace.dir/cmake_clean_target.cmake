file(REMOVE_RECURSE
  "libotm_trace.a"
)
