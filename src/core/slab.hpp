// Slab arena backing the per-bin packed hot-entry arrays (the cache-locality
// overhaul of the store indexes).
//
// The pointer-chasing per-bin descriptor chains made every probe step a
// dependent load into a 64-byte descriptor; the hot fields a scan actually
// needs (match key, posting label, live slot) now live in small packed
// arrays, one per bin, so an index probe is a linear scan over contiguous
// memory and the cold descriptor is touched only on a key match.
//
// All hot arrays of one store draw their storage from one SlabArena: a bump
// allocator over large slabs with power-of-two size-class recycling, so
// growing a bin never hits the global heap on the hot path and neighboring
// bins stay densely packed. Blocks are 64-byte (cache-line) granular.
//
// Concurrency contract (same as the stores): structural mutation — push,
// erase, grow — happens only on engine-serialized paths; matching threads
// scan concurrently but never mutate, so the arrays need no locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace otm {

class SlabArena {
 public:
  explicit SlabArena(std::size_t slab_bytes = 64 * 1024) noexcept
      : slab_bytes_(slab_bytes) {}

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Allocate `bytes` rounded up to a 64-byte-granular power-of-two class.
  void* allocate(std::size_t bytes) {
    const unsigned cls = size_class(bytes);
    if (cls < kClasses && !free_[cls].empty()) {
      void* p = free_[cls].back();
      free_[cls].pop_back();
      return p;
    }
    const std::size_t need = class_bytes(cls);
    if (slabs_.empty() || offset_ + need > current_bytes_) {
      current_bytes_ = need > slab_bytes_ ? need : slab_bytes_;
      slabs_.push_back(std::make_unique<std::byte[]>(current_bytes_));
      offset_ = 0;
    }
    void* p = slabs_.back().get() + offset_;
    offset_ += need;
    return p;
  }

  /// Return a block to its size-class free list for reuse.
  void deallocate(void* p, std::size_t bytes) {
    const unsigned cls = size_class(bytes);
    OTM_ASSERT(cls < kClasses);
    free_[cls].push_back(p);
  }

  /// Bytes reserved from the system (slabs), for footprint introspection.
  std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (std::size_t i = 0; i + 1 < slabs_.size(); ++i) total += slab_bytes_;
    if (!slabs_.empty()) total += current_bytes_;
    return total;
  }

  /// Rounded allocation size for a request of `bytes`.
  static std::size_t class_bytes(std::size_t bytes) noexcept {
    return class_bytes(size_class(bytes));
  }

 private:
  static constexpr unsigned kClasses = 24;  // 64 B .. 512 MiB

  static unsigned size_class(std::size_t bytes) noexcept {
    unsigned cls = 0;
    std::size_t cap = 64;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }

  static std::size_t class_bytes(unsigned cls) noexcept {
    return std::size_t{64} << cls;
  }

  std::size_t slab_bytes_;
  std::size_t current_bytes_ = 0;
  std::size_t offset_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<void*> free_[kClasses];
};

/// A packed, order-preserving array of trivially-copyable hot entries backed
/// by a SlabArena. Append-at-tail keeps posting/arrival order; erase
/// compacts with memmove so scans stay branchless over contiguous entries.
template <typename T>
class SlabVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SlabVec() noexcept = default;

  SlabVec(const SlabVec&) = delete;
  SlabVec& operator=(const SlabVec&) = delete;

  /// Bind the backing arena before first use (bins are default-constructed
  /// in bulk, then bound by the owning store).
  void bind(SlabArena* arena) noexcept { arena_ = arena; }

  std::uint32_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const T& operator[](std::uint32_t i) const noexcept { return data_[i]; }
  T& operator[](std::uint32_t i) noexcept { return data_[i]; }

  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data_[size_++] = v;
  }

  /// Remove entry `i`, shifting the tail down (order-preserving).
  void erase_at(std::uint32_t i) noexcept {
    OTM_ASSERT(i < size_);
    if (i + 1 < size_)
      std::memmove(data_ + i, data_ + i + 1, (size_ - i - 1) * sizeof(T));
    --size_;
  }

  /// Shrink to `n` entries (compaction passes rewrite in place, then trim).
  void truncate(std::uint32_t n) noexcept {
    OTM_ASSERT(n <= size_);
    size_ = n;
  }

 private:
  void grow() {
    OTM_ASSERT(arena_ != nullptr);
    const std::uint32_t new_cap = static_cast<std::uint32_t>(
        SlabArena::class_bytes((cap_ == 0 ? 2u : cap_ * 2u) * sizeof(T)) /
        sizeof(T));
    T* fresh = static_cast<T*>(arena_->allocate(new_cap * sizeof(T)));
    if (data_ != nullptr) {
      std::memcpy(fresh, data_, size_ * sizeof(T));
      arena_->deallocate(data_, cap_ * sizeof(T));
    }
    data_ = fresh;
    cap_ = new_cap;
  }

  SlabArena* arena_ = nullptr;
  T* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = 0;
};

}  // namespace otm
