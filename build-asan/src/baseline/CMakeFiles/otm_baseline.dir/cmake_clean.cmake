file(REMOVE_RECURSE
  "CMakeFiles/otm_baseline.dir/bin_matcher.cpp.o"
  "CMakeFiles/otm_baseline.dir/bin_matcher.cpp.o.d"
  "CMakeFiles/otm_baseline.dir/list_matcher.cpp.o"
  "CMakeFiles/otm_baseline.dir/list_matcher.cpp.o.d"
  "libotm_baseline.a"
  "libotm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
