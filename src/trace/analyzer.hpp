// Trace processing stage (Sec. V-A-b): replay a parsed MPI trace through
// the optimistic matching data structures and gather statistics.
//
// Every rank gets its own MatchEngine (the per-communicator structures of
// the offload design) configured with the bin count under study; p2p sends
// become incoming messages at the destination, receives are posted as in
// Fig. 1a, progress operations (wait/test) sample a data point. Collective
// and one-sided operations are counted for the call-type distribution
// (Fig. 6) and otherwise ignored, exactly as the paper's analyzer does.
//
// Queue-depth metrics (Fig. 7):
//   - avg_queue_depth: entries resident in the searched structure per bin,
//     sampled at every matching operation (PRQ occupancy/bins at each
//     arrival, UMQ occupancy/bins at each post). With 1 bin this is the
//     length of the traditional matching queue the operation must search.
//   - avg_search_attempts: chain entries actually examined per matching
//     operation (the work metric; secondary).
//   - max_queue_depth: deepest single-chain scan ever performed (e.g.
//     BoxLib CNS: ~25 -> ~3 -> ~1 for 1/32/128 bins).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "obs/observability.hpp"
#include "trace/ops.hpp"
#include "util/running_stats.hpp"

namespace otm::trace {

struct AnalyzerConfig {
  std::size_t bins = 128;
  unsigned block_size = 1;  ///< >1 also exercises conflict statistics
  std::size_t max_receives = 1 << 16;
  std::size_t max_unexpected = 1 << 16;
  bool enable_fast_path = true;
  bool early_booking_check = false;  ///< off: deterministic replay exposes conflicts

  /// Optional observability sink: each replayed rank's engine attaches
  /// under "<obs_prefix>rank<r>" (trace events, counters, depth series).
  obs::Observability* obs = nullptr;
  std::string obs_prefix;
};

/// Fig. 6 distribution of MPI call types.
struct CallDistribution {
  std::uint64_t p2p = 0;
  std::uint64_t collective = 0;
  std::uint64_t one_sided = 0;
  std::uint64_t progress = 0;
  std::uint64_t other = 0;

  std::uint64_t classified() const noexcept { return p2p + collective + one_sided; }
  double pct_p2p() const noexcept {
    const auto t = classified();
    return t == 0 ? 0.0 : 100.0 * static_cast<double>(p2p) / static_cast<double>(t);
  }
  double pct_collective() const noexcept {
    const auto t = classified();
    return t == 0 ? 0.0
                  : 100.0 * static_cast<double>(collective) / static_cast<double>(t);
  }
  double pct_one_sided() const noexcept {
    const auto t = classified();
    return t == 0 ? 0.0
                  : 100.0 * static_cast<double>(one_sided) / static_cast<double>(t);
  }
};

struct AppAnalysis {
  std::string app;
  int ranks = 0;
  std::size_t bins = 0;

  CallDistribution calls;

  // Matching-effort metrics.
  double avg_queue_depth = 0.0;      ///< searched-structure occupancy per bin
  double avg_search_attempts = 0.0;  ///< entries examined per matching op
  std::uint64_t max_queue_depth = 0; ///< deepest chain observed
  RunningStats depth_samples;       ///< per-progress-point max chain
  RunningStats umq_samples;         ///< per-progress-point UMQ entries
  double avg_empty_bin_fraction = 0.0;

  // Volume.
  std::uint64_t receives_posted = 0;
  std::uint64_t wildcard_receives = 0;
  std::uint64_t messages = 0;
  std::uint64_t unexpected = 0;
  std::uint64_t matched_at_post = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t dropped = 0;

  // Key diversity (the paper's conclusion: unique source/tag pairs are few,
  // so receives spread well over the hash bins).
  std::uint64_t unique_src_tag_pairs = 0;
  std::map<Tag, std::uint64_t> tag_usage;
  std::uint64_t data_points = 0;
};

class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(const AnalyzerConfig& cfg = {}) : cfg_(cfg) {}

  /// Replay `trace` and gather statistics (single pass, deterministic).
  AppAnalysis analyze(const Trace& trace) const;

 private:
  AnalyzerConfig cfg_;
};

}  // namespace otm::trace
