file(REMOVE_RECURSE
  "CMakeFiles/otm_core.dir/block_matcher.cpp.o"
  "CMakeFiles/otm_core.dir/block_matcher.cpp.o.d"
  "CMakeFiles/otm_core.dir/engine.cpp.o"
  "CMakeFiles/otm_core.dir/engine.cpp.o.d"
  "CMakeFiles/otm_core.dir/receive_store.cpp.o"
  "CMakeFiles/otm_core.dir/receive_store.cpp.o.d"
  "CMakeFiles/otm_core.dir/types.cpp.o"
  "CMakeFiles/otm_core.dir/types.cpp.o.d"
  "CMakeFiles/otm_core.dir/unexpected_store.cpp.o"
  "CMakeFiles/otm_core.dir/unexpected_store.cpp.o.d"
  "libotm_core.a"
  "libotm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
