#include "core/types.hpp"

#include <cstdio>

namespace otm {

const char* to_string(WildcardClass c) noexcept {
  switch (c) {
    case WildcardClass::kNone: return "none";
    case WildcardClass::kSourceWild: return "any-source";
    case WildcardClass::kTagWild: return "any-tag";
    case WildcardClass::kBothWild: return "any-both";
  }
  return "?";
}

std::string to_string(const Envelope& e) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(src=%d, tag=%d, comm=%u)", e.source, e.tag, e.comm);
  return buf;
}

std::string to_string(const MatchSpec& s) {
  char src[16];
  char tag[16];
  if (s.any_source()) {
    std::snprintf(src, sizeof(src), "ANY");
  } else {
    std::snprintf(src, sizeof(src), "%d", s.source);
  }
  if (s.any_tag()) {
    std::snprintf(tag, sizeof(tag), "ANY");
  } else {
    std::snprintf(tag, sizeof(tag), "%d", s.tag);
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(src=%s, tag=%s, comm=%u)", src, tag, s.comm);
  return buf;
}

}  // namespace otm
