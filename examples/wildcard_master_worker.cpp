// Master/worker with wildcards and communicator hints.
//
//   $ ./wildcard_master_worker [--workers=5 --tasks=24]
//
// The master hands out tasks and collects results with MPI_ANY_SOURCE —
// the wildcard pattern that serializes traditional matching (Sec. II-A).
// A second communicator created with mpi_assert_no_any_source /
// mpi_assert_no_any_tag (Sec. VII) carries the fully-specified shutdown
// messages, showing how applications hint the offloaded matcher.
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpi/mpi.hpp"
#include "util/args.hpp"

using namespace otm;

namespace {

constexpr Tag kTask = 1;
constexpr Tag kResult = 2;
constexpr Tag kShutdown = 3;

struct TaskMsg {
  std::int64_t id;
  std::int64_t value;
};

std::span<const std::byte> bytes_of(const TaskMsg& m) {
  return std::as_bytes(std::span(&m, 1));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const int workers = static_cast<int>(args.get_int("workers", 5));
  const int tasks = static_cast<int>(args.get_int("tasks", 24));

  mpi::World world(workers + 1, {});
  std::int64_t expected_sum = 0;
  for (int t = 0; t < tasks; ++t) expected_sum += 3 * t + 1;

  world.run([&](mpi::Proc& proc) {
    const mpi::Comm work_comm = proc.world_comm();
    // Control traffic never uses wildcards; assert it so an offloaded
    // matcher could skip the wildcard indexes entirely.
    mpi::CommInfo strict;
    strict.assert_no_any_source = true;
    strict.assert_no_any_tag = true;
    const mpi::Comm ctl_comm{100, strict};

    if (proc.rank() == 0) {
      // Master: initial round-robin distribution, then demand-driven
      // handout keyed on ANY_SOURCE results.
      std::int64_t sum = 0;
      int next_task = 0;
      int outstanding = 0;
      for (int w = 1; w <= workers && next_task < tasks; ++w) {
        const TaskMsg t{next_task++, 0};
        proc.send(bytes_of(t), static_cast<Rank>(w), kTask, work_comm);
        ++outstanding;
      }
      TaskMsg result{};
      std::vector<std::byte> buf(sizeof(TaskMsg));
      while (outstanding > 0) {
        const mpi::Status st =
            proc.recv(buf, mpi::kAnySource, kResult, work_comm);
        std::memcpy(&result, buf.data(), sizeof(result));
        sum += result.value;
        --outstanding;
        if (next_task < tasks) {
          const TaskMsg t{next_task++, 0};
          proc.send(bytes_of(t), st.source, kTask, work_comm);
          ++outstanding;
        } else {
          const TaskMsg bye{-1, 0};
          proc.send(bytes_of(bye), st.source, kShutdown, ctl_comm);
        }
      }
      std::printf("master: sum of %d task results = %lld (expected %lld) %s\n",
                  tasks, static_cast<long long>(sum),
                  static_cast<long long>(expected_sum),
                  sum == expected_sum ? "OK" : "MISMATCH");
      const MatchStats& s = *proc.match_stats();
      std::printf("master matching: %llu wildcard receives resolved on the "
                  "NIC, %llu conflicts\n",
                  static_cast<unsigned long long>(s.receives_posted),
                  static_cast<unsigned long long>(s.conflicts_detected));
    } else {
      // Worker: loop on task/shutdown. Task receives are fully specified
      // (master is rank 0); shutdown arrives on the strict communicator.
      // One shutdown receive stays posted for the whole run; task receives
      // are reposted after each completed task.
      std::vector<std::byte> buf(sizeof(TaskMsg));
      std::vector<std::byte> bye_buf(sizeof(TaskMsg));
      auto bye_req = proc.irecv(bye_buf, 0, kShutdown, ctl_comm);
      auto task_req = proc.irecv(buf, 0, kTask, work_comm);
      for (;;) {
        if (proc.test(task_req)) {
          TaskMsg t{};
          std::memcpy(&t, buf.data(), sizeof(t));
          const TaskMsg r{t.id, 3 * t.id + 1};  // the "work"
          proc.send(bytes_of(r), 0, kResult, work_comm);
          task_req = proc.irecv(buf, 0, kTask, work_comm);
        }
        if (proc.test(bye_req)) return;  // the final task receive stays
                                         // pending; the world tears it down
      }
    }
  });
  return 0;
}
